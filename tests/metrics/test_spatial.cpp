#include "metrics/spatial.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "topology/kary_ncube.hpp"

namespace wormsim::metrics {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(SpatialMetrics, NodeCountersAccumulate) {
  SpatialMetrics sm(4, 16, 3);
  sm.on_injected(1);
  sm.on_injected(1);
  sm.on_ejected_flit(2);
  sm.on_queue_sample(1, 4);
  sm.on_queue_sample(1, 10);
  sm.on_queue_sample(1, 1);

  EXPECT_EQ(sm.node_injected(1), 2u);
  EXPECT_EQ(sm.node_injected(0), 0u);
  EXPECT_EQ(sm.node_ejected_flits(2), 1u);
  EXPECT_DOUBLE_EQ(sm.node_queue_avg(1), 5.0);
  EXPECT_EQ(sm.node_queue_max(1), 10u);
  // Unsampled nodes report 0, not NaN.
  EXPECT_DOUBLE_EQ(sm.node_queue_avg(3), 0.0);
  EXPECT_EQ(sm.node_queue_max(3), 0u);
}

TEST(SpatialMetrics, MeanBusyVcsWeightsHistogram) {
  SpatialMetrics sm(4, 16, 3);
  // Two samples at 0 busy, one at 3 busy: mean = 3/3 = 1.0.
  sm.on_link_occupancy_sample(5, 0);
  sm.on_link_occupancy_sample(5, 0);
  sm.on_link_occupancy_sample(5, 3);
  EXPECT_EQ(sm.occupancy_samples(5, 0), 2u);
  EXPECT_EQ(sm.occupancy_samples(5, 3), 1u);
  EXPECT_DOUBLE_EQ(sm.mean_busy_vcs(5), 1.0);
  // Never-sampled link: 0, not a division by zero.
  EXPECT_DOUBLE_EQ(sm.mean_busy_vcs(6), 0.0);
}

TEST(SpatialMetrics, ResetClearsEverything) {
  SpatialMetrics sm(2, 8, 2);
  sm.on_injected(0);
  sm.on_queue_sample(0, 9);
  sm.on_link_occupancy_sample(3, 2);
  sm.set_link_flits(3, 1234);
  sm.reset();
  EXPECT_EQ(sm.node_injected(0), 0u);
  EXPECT_DOUBLE_EQ(sm.node_queue_avg(0), 0.0);
  EXPECT_EQ(sm.node_queue_max(0), 0u);
  EXPECT_EQ(sm.occupancy_samples(3, 2), 0u);
  EXPECT_EQ(sm.link_flits(3), 0u);
  EXPECT_DOUBLE_EQ(sm.mean_busy_vcs(3), 0.0);
}

TEST(SpatialMetrics, ChannelCsvShapeAndUtilization) {
  const topo::KAryNCube topo(4, 2);  // 16 nodes, 4 channels each
  SpatialMetrics sm(topo.num_nodes(),
                    static_cast<std::uint32_t>(topo.num_links()),
                    /*num_vcs=*/3);
  sm.set_link_flits(0, 500);

  std::ostringstream os;
  sm.write_channel_csv(os, topo, /*cycles=*/1000);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u + topo.num_links());
  EXPECT_EQ(lines[0],
            "link,src,dst,dim,dir,src_x,src_y,flits_carried,utilization,"
            "mean_busy_vcs");
  // Link 0 = node 0, channel 0 (dim 0, plus): dst is node 1 on a 4-ary
  // 2-cube; 500 flits / 1000 cycles = 0.5 utilization.
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
  EXPECT_NE(lines[1].find(",500,0.5,"), std::string::npos) << lines[1];
}

TEST(SpatialMetrics, NodeCsvShape) {
  const topo::KAryNCube topo(4, 2);
  SpatialMetrics sm(topo.num_nodes(),
                    static_cast<std::uint32_t>(topo.num_links()), 3);
  sm.on_injected(5);
  sm.on_ejected_flit(5);
  sm.on_ejected_flit(5);

  std::ostringstream os;
  sm.write_node_csv(os, topo, /*cycles=*/100);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u + topo.num_nodes());
  EXPECT_EQ(lines[0],
            "node,x,y,coords,injected_msgs,ejected_flits,"
            "ejected_flits_per_cycle,queue_avg,queue_max");
  // Node 5 on a 4-ary 2-cube sits at (1,1).
  EXPECT_NE(lines[6].find("5,1,1,"), std::string::npos) << lines[6];
  EXPECT_NE(lines[6].find(",1,2,0.02,"), std::string::npos) << lines[6];
}

TEST(SpatialMetrics, VcOccupancyCsvIsLongFormat) {
  const topo::KAryNCube topo(4, 2);
  SpatialMetrics sm(topo.num_nodes(),
                    static_cast<std::uint32_t>(topo.num_links()), 3);
  sm.on_link_occupancy_sample(2, 1);

  std::ostringstream os;
  sm.write_vc_occupancy_csv(os, topo);
  const auto lines = lines_of(os.str());
  // One row per (link, busy_vcs 0..num_vcs).
  ASSERT_EQ(lines.size(), 1u + topo.num_links() * 4);
  EXPECT_EQ(lines[0], "link,src,dst,dim,dir,busy_vcs,samples");
  bool found = false;
  for (const std::string& line : lines) {
    if (line.rfind("2,", 0) == 0 && line.find(",1,1") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << os.str();
}

}  // namespace
}  // namespace wormsim::metrics
