#include "metrics/spatial.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "topology/kary_ncube.hpp"

namespace wormsim::metrics {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(SpatialMetrics, NodeCountersAccumulate) {
  SpatialMetrics sm(4, 16, 3);
  sm.on_injected(1);
  sm.on_injected(1);
  sm.on_ejected_flit(2);
  sm.on_queue_sample(1, 4);
  sm.on_queue_sample(1, 10);
  sm.on_queue_sample(1, 1);

  EXPECT_EQ(sm.node_injected(1), 2u);
  EXPECT_EQ(sm.node_injected(0), 0u);
  EXPECT_EQ(sm.node_ejected_flits(2), 1u);
  EXPECT_DOUBLE_EQ(sm.node_queue_avg(1), 5.0);
  EXPECT_EQ(sm.node_queue_max(1), 10u);
  // Unsampled nodes report 0, not NaN.
  EXPECT_DOUBLE_EQ(sm.node_queue_avg(3), 0.0);
  EXPECT_EQ(sm.node_queue_max(3), 0u);
}

TEST(SpatialMetrics, MeanBusyVcsWeightsHistogram) {
  SpatialMetrics sm(4, 16, 3);
  // Two samples at 0 busy, one at 3 busy: mean = 3/3 = 1.0.
  sm.on_link_occupancy_sample(5, 0);
  sm.on_link_occupancy_sample(5, 0);
  sm.on_link_occupancy_sample(5, 3);
  EXPECT_EQ(sm.occupancy_samples(5, 0), 2u);
  EXPECT_EQ(sm.occupancy_samples(5, 3), 1u);
  EXPECT_DOUBLE_EQ(sm.mean_busy_vcs(5), 1.0);
  // Never-sampled link: 0, not a division by zero.
  EXPECT_DOUBLE_EQ(sm.mean_busy_vcs(6), 0.0);
}

TEST(SpatialMetrics, ResetClearsEverything) {
  SpatialMetrics sm(2, 8, 2);
  sm.on_injected(0);
  sm.on_queue_sample(0, 9);
  sm.on_link_occupancy_sample(3, 2);
  sm.set_link_flits(3, 1234);
  sm.reset();
  EXPECT_EQ(sm.node_injected(0), 0u);
  EXPECT_DOUBLE_EQ(sm.node_queue_avg(0), 0.0);
  EXPECT_EQ(sm.node_queue_max(0), 0u);
  EXPECT_EQ(sm.occupancy_samples(3, 2), 0u);
  EXPECT_EQ(sm.link_flits(3), 0u);
  EXPECT_DOUBLE_EQ(sm.mean_busy_vcs(3), 0.0);
}

/// Property behind the sharded sampler: feeding events through N
/// partial observers and merging them — in ANY merge order — must be
/// indistinguishable from one sequential observer seeing every event.
/// Counters and sums are associative/commutative; queue_max is a max.
TEST(SpatialMetrics, MergeIsOrderIndependentAndEqualsSequential) {
  constexpr std::uint32_t kNodes = 8, kLinks = 16;
  constexpr unsigned kVcs = 3, kShards = 4;
  // Deterministic event stream from a hand-rolled LCG (no global RNG).
  std::uint64_t state = 0x5EED5EED12345ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  SpatialMetrics sequential(kNodes, kLinks, kVcs);
  std::vector<SpatialMetrics> parts;
  for (unsigned s = 0; s < kShards; ++s) parts.emplace_back(kNodes, kLinks, kVcs);

  for (int ev = 0; ev < 4000; ++ev) {
    // Route each event to the shard owning its node/link, mirroring the
    // simulator's disjoint ownership (though merge does not require it).
    const std::uint32_t node = static_cast<std::uint32_t>(next() % kNodes);
    const std::uint32_t link = static_cast<std::uint32_t>(next() % kLinks);
    SpatialMetrics& node_part = parts[node % kShards];
    SpatialMetrics& link_part = parts[link % kShards];
    switch (next() % 4) {
      case 0:
        sequential.on_injected(node);
        node_part.on_injected(node);
        break;
      case 1:
        sequential.on_ejected_flit(node);
        node_part.on_ejected_flit(node);
        break;
      case 2: {
        const std::uint64_t depth = next() % 20;
        sequential.on_queue_sample(node, depth);
        node_part.on_queue_sample(node, depth);
        break;
      }
      default: {
        const unsigned busy = static_cast<unsigned>(next() % (kVcs + 1));
        sequential.on_link_occupancy_sample(link, busy);
        link_part.on_link_occupancy_sample(link, busy);
        break;
      }
    }
  }
  for (std::uint32_t l = 0; l < kLinks; ++l) {
    // Final link-flit copies live on exactly one shard; merge sums them.
    const std::uint64_t flits = next() % 100000;
    sequential.set_link_flits(l, flits);
    parts[l % kShards].set_link_flits(l, flits);
  }

  const auto expect_equal = [&](const SpatialMetrics& got,
                                const char* order) {
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      ASSERT_EQ(got.node_injected(n), sequential.node_injected(n))
          << order << " node " << n;
      ASSERT_EQ(got.node_ejected_flits(n), sequential.node_ejected_flits(n))
          << order << " node " << n;
      ASSERT_DOUBLE_EQ(got.node_queue_avg(n), sequential.node_queue_avg(n))
          << order << " node " << n;
      ASSERT_EQ(got.node_queue_max(n), sequential.node_queue_max(n))
          << order << " node " << n;
    }
    for (std::uint32_t l = 0; l < kLinks; ++l) {
      ASSERT_EQ(got.link_flits(l), sequential.link_flits(l))
          << order << " link " << l;
      for (unsigned v = 0; v <= kVcs; ++v) {
        ASSERT_EQ(got.occupancy_samples(l, v),
                  sequential.occupancy_samples(l, v))
            << order << " link " << l << " busy " << v;
      }
    }
  };

  // Ascending shard order (what the simulator's fold uses)...
  SpatialMetrics asc(kNodes, kLinks, kVcs);
  for (unsigned s = 0; s < kShards; ++s) asc.merge(parts[s]);
  expect_equal(asc, "ascending");
  // ...descending, and a tree-shaped ((0+2)+(3+1)) fold.
  SpatialMetrics desc(kNodes, kLinks, kVcs);
  for (unsigned s = kShards; s-- > 0;) desc.merge(parts[s]);
  expect_equal(desc, "descending");
  SpatialMetrics tree_a(kNodes, kLinks, kVcs), tree_b(kNodes, kLinks, kVcs);
  tree_a.merge(parts[0]);
  tree_a.merge(parts[2]);
  tree_b.merge(parts[3]);
  tree_b.merge(parts[1]);
  tree_a.merge(tree_b);
  expect_equal(tree_a, "tree");
}

TEST(SpatialMetrics, ChannelCsvShapeAndUtilization) {
  const topo::KAryNCube topo(4, 2);  // 16 nodes, 4 channels each
  SpatialMetrics sm(topo.num_nodes(),
                    static_cast<std::uint32_t>(topo.num_links()),
                    /*num_vcs=*/3);
  sm.set_link_flits(0, 500);

  std::ostringstream os;
  sm.write_channel_csv(os, topo, /*cycles=*/1000);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u + topo.num_links());
  EXPECT_EQ(lines[0],
            "link,src,dst,dim,dir,src_x,src_y,flits_carried,utilization,"
            "mean_busy_vcs");
  // Link 0 = node 0, channel 0 (dim 0, plus): dst is node 1 on a 4-ary
  // 2-cube; 500 flits / 1000 cycles = 0.5 utilization.
  EXPECT_EQ(lines[1].substr(0, 2), "0,");
  EXPECT_NE(lines[1].find(",500,0.5,"), std::string::npos) << lines[1];
}

TEST(SpatialMetrics, NodeCsvShape) {
  const topo::KAryNCube topo(4, 2);
  SpatialMetrics sm(topo.num_nodes(),
                    static_cast<std::uint32_t>(topo.num_links()), 3);
  sm.on_injected(5);
  sm.on_ejected_flit(5);
  sm.on_ejected_flit(5);

  std::ostringstream os;
  sm.write_node_csv(os, topo, /*cycles=*/100);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u + topo.num_nodes());
  EXPECT_EQ(lines[0],
            "node,x,y,coords,injected_msgs,ejected_flits,"
            "ejected_flits_per_cycle,queue_avg,queue_max");
  // Node 5 on a 4-ary 2-cube sits at (1,1).
  EXPECT_NE(lines[6].find("5,1,1,"), std::string::npos) << lines[6];
  EXPECT_NE(lines[6].find(",1,2,0.02,"), std::string::npos) << lines[6];
}

TEST(SpatialMetrics, VcOccupancyCsvIsLongFormat) {
  const topo::KAryNCube topo(4, 2);
  SpatialMetrics sm(topo.num_nodes(),
                    static_cast<std::uint32_t>(topo.num_links()), 3);
  sm.on_link_occupancy_sample(2, 1);

  std::ostringstream os;
  sm.write_vc_occupancy_csv(os, topo);
  const auto lines = lines_of(os.str());
  // One row per (link, busy_vcs 0..num_vcs).
  ASSERT_EQ(lines.size(), 1u + topo.num_links() * 4);
  EXPECT_EQ(lines[0], "link,src,dst,dim,dir,busy_vcs,samples");
  bool found = false;
  for (const std::string& line : lines) {
    if (line.rfind("2,", 0) == 0 && line.find(",1,1") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << os.str();
}

}  // namespace
}  // namespace wormsim::metrics
