// Unit tests for the online statistics engine: the log-bucketed latency
// histogram (exactness, bucket bounds, merge algebra), the windowed
// saturation-onset detector driven with synthetic windows, and the
// per-phase profiler.
#include "metrics/online/online_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "metrics/online/log_histogram.hpp"
#include "metrics/online/profiler.hpp"
#include "util/rng.hpp"

namespace wormsim::metrics {
namespace {

// ---------------------------------------------------------------- histogram

TEST(LogHistogram, ExactBelowSubBuckets) {
  // Every value below kSubBuckets gets its own bucket, so quantiles on
  // small values are integer-exact.
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_low(v), v);
    EXPECT_EQ(LogHistogram::bucket_high(v), v);
    h.add(v);
  }
  EXPECT_EQ(h.count(), LogHistogram::kSubBuckets);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 15u);  // ceil(0.5 * 32) = 16th of 0..31
  EXPECT_EQ(h.quantile(1.0), 31u);
}

TEST(LogHistogram, BucketBoundsContainValue) {
  // Across magnitudes: v lands in a bucket whose [lo, hi] contains it,
  // and lo/hi of that bucket map back to the same index.
  util::Rng rng(0xB0C4E75);
  for (int i = 0; i < 20000; ++i) {
    // Random magnitude up to 2^48, uniform in the exponent.
    const unsigned width = 1 + static_cast<unsigned>(rng.below(48));
    const std::uint64_t v = rng.bits() >> (64 - width);
    const std::size_t idx = LogHistogram::bucket_index(v);
    const std::uint64_t lo = LogHistogram::bucket_low(idx);
    const std::uint64_t hi = LogHistogram::bucket_high(idx);
    ASSERT_LE(lo, v) << "v=" << v;
    ASSERT_GE(hi, v) << "v=" << v;
    ASSERT_EQ(LogHistogram::bucket_index(lo), idx) << "v=" << v;
    ASSERT_EQ(LogHistogram::bucket_index(hi), idx) << "v=" << v;
    ASSERT_LE(hi - lo, std::max<std::uint64_t>(1, lo) / LogHistogram::kSubBuckets)
        << "relative bucket width exceeds 1/kSubBuckets at v=" << v;
  }
}

TEST(LogHistogram, QuantileRelativeErrorBounded) {
  // Against a sorted copy of the samples: the reported quantile is the
  // upper bound of the true value's bucket, so it can only overshoot,
  // and by at most one sub-bucket (~1/kSubBuckets relative).
  util::Rng rng(0xFEED);
  LogHistogram h;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(100000);
    vals.push_back(v);
    h.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(vals.size()))));
    const std::uint64_t exact = vals[rank - 1];
    const std::uint64_t est = h.quantile(q);
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(est),
              static_cast<double>(exact) *
                      (1.0 + 1.0 / LogHistogram::kSubBuckets) +
                  1.0)
        << "q=" << q;
  }
}

TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  // Property test: random samples split across random partitions and
  // merged in different orders always produce the same histogram as the
  // single-stream version — the guarantee sweep telemetry determinism
  // rests on.
  util::Rng rng(0x31337);
  for (int trial = 0; trial < 50; ++trial) {
    LogHistogram whole;
    std::vector<LogHistogram> parts(2 + rng.below(4));
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t v = rng.below(1u << 20);
      whole.add(v);
      parts[rng.below(parts.size())].add(v);
    }

    // Left fold: ((p0 + p1) + p2) + ...
    LogHistogram left;
    for (const auto& p : parts) left.merge(p);
    // Right-to-left fold in reverse order.
    LogHistogram right;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) right.merge(*it);

    EXPECT_TRUE(left == whole);
    EXPECT_TRUE(right == whole);
    EXPECT_EQ(left.quantile(0.99), whole.quantile(0.99));
    EXPECT_EQ(left.max_value(), whole.max_value());
  }
}

TEST(LogHistogram, MergeWithCounts) {
  LogHistogram a, b, sum;
  a.add(7, 3);
  b.add(7, 4);
  b.add(1000);
  sum.add(7, 7);
  sum.add(1000);
  a.merge(b);
  EXPECT_TRUE(a == sum);
  EXPECT_EQ(a.count(), 8u);
}

TEST(LogHistogram, ResetClearsCountsAndMax) {
  LogHistogram h;
  h.add(12345, 10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  EXPECT_TRUE(h == LogHistogram{});
  h.add(3);
  EXPECT_EQ(h.quantile(1.0), 3u);
}

TEST(LogHistogram, ForEachBucketVisitsInOrder) {
  LogHistogram h;
  h.add(2);
  h.add(100, 5);
  h.add(100000);
  std::uint64_t total = 0, last_lo = 0;
  int buckets = 0;
  h.for_each_bucket([&](const LogHistogram::Bucket& b) {
    EXPECT_GE(b.lo, last_lo);
    EXPECT_LE(b.lo, b.hi);
    last_lo = b.lo;
    total += b.count;
    ++buckets;
  });
  EXPECT_EQ(buckets, 3);
  EXPECT_EQ(total, 7u);
}

/// The sharded simulation core folds per-lane partial contributions
/// into one OnlineStats in ascending shard order: ejected-flit counts
/// arrive as one batch per lane instead of one call per flit, and the
/// window-close free-VC scan sums per-lane integer subtotals. Both are
/// plain integer addition, so any lane order and any batching must
/// reproduce the sequential per-event feed bit for bit — the property
/// the `wormsim.timeseries/1` byte-identity across shard counts rests
/// on.
TEST(OnlineStats, PerShardFoldIsOrderIndependentAndMatchesSequential) {
  OnlineConfig cfg;
  cfg.window_cycles = 64;
  constexpr unsigned kShards = 4;
  OnlineStats sequential(64, cfg);
  OnlineStats ascending(64, cfg);
  OnlineStats descending(64, cfg);
  util::Rng rng(0xF01DF01D);

  for (Cycle t = 0; t < 5 * cfg.window_cycles; ++t) {
    // Per-lane ejected-flit batches for this cycle.
    std::uint64_t lane_ejected[kShards];
    for (auto& n : lane_ejected) n = rng.below(6);
    // Sequential sees one hook call per flit, in node order; the
    // sharded folds see one batch per lane, in opposite lane orders.
    for (unsigned s = 0; s < kShards; ++s) {
      for (std::uint64_t f = 0; f < lane_ejected[s]; ++f) {
        sequential.on_flits_ejected(1);
      }
    }
    for (unsigned s = 0; s < kShards; ++s) {
      if (lane_ejected[s]) ascending.on_flits_ejected(lane_ejected[s]);
    }
    for (unsigned s = kShards; s-- > 0;) {
      if (lane_ejected[s]) descending.on_flits_ejected(lane_ejected[s]);
    }
    // Deliveries and generation are replayed in deterministic order by
    // the commit phase, so all three see the identical stream.
    const std::uint64_t gen = rng.below(4);
    const bool delivered = rng.below(3) == 0;
    const Cycle latency = 20 + rng.below(200);
    for (OnlineStats* o : {&sequential, &ascending, &descending}) {
      if (gen) o->on_generated(gen);
      if (delivered) o->on_delivered(latency, true);
    }
    if (sequential.window_closes(t)) {
      // Free-VC subtotals per lane, summed in opposite orders.
      std::uint64_t lane_free[kShards];
      for (auto& n : lane_free) n = rng.below(100);
      WindowSample up{}, down{};
      for (unsigned s = 0; s < kShards; ++s) up.free_vcs += lane_free[s];
      for (unsigned s = kShards; s-- > 0;) down.free_vcs += lane_free[s];
      up.total_vcs = down.total_vcs = 512;
      up.in_flight_flits = down.in_flight_flits = rng.below(1000);
      sequential.close_window(t, up);
      ascending.close_window(t, up);
      descending.close_window(t, down);
    }
  }

  ASSERT_EQ(sequential.windows().size(), 5u);
  for (const OnlineStats* o : {&ascending, &descending}) {
    ASSERT_EQ(o->windows().size(), sequential.windows().size());
    for (std::size_t i = 0; i < sequential.windows().size(); ++i) {
      const Window& a = sequential.windows()[i];
      const Window& b = o->windows()[i];
      EXPECT_EQ(a.start_cycle, b.start_cycle) << "window " << i;
      EXPECT_EQ(a.offered_flits, b.offered_flits) << "window " << i;
      EXPECT_EQ(a.accepted_flits, b.accepted_flits) << "window " << i;
      EXPECT_EQ(a.delivered, b.delivered) << "window " << i;
      EXPECT_EQ(a.latency_p99, b.latency_p99) << "window " << i;
      EXPECT_EQ(a.end.free_vcs, b.end.free_vcs) << "window " << i;
      EXPECT_EQ(a.saturating, b.saturating) << "window " << i;
    }
    EXPECT_TRUE(o->latency_hist() == sequential.latency_hist());
    EXPECT_EQ(o->saturated(), sequential.saturated());
  }
}

// ----------------------------------------------------------------- detector

constexpr std::uint64_t kWin = 100;

OnlineConfig detector_config() {
  OnlineConfig cfg;
  cfg.window_cycles = kWin;
  return cfg;  // defaults: settle 2, onset 3, floor 0.12, deficit 0.9
}

/// Feed one synthetic window: `offered` flits generated, `accepted`
/// ejected, closing with `free_vcs` of `total_vcs` virtual channels free.
void feed_window(OnlineStats& s, std::uint64_t index, std::uint64_t offered,
                 std::uint64_t accepted, std::uint64_t free_vcs,
                 std::uint64_t total_vcs = 1000) {
  s.on_generated(offered);
  s.on_flits_ejected(accepted);
  // A spread of delivery latencies so window p99 is meaningful.
  for (int i = 0; i < 16; ++i) s.on_delivered(20 + i, true);
  WindowSample sample;
  sample.free_vcs = free_vcs;
  sample.total_vcs = total_vcs;
  const std::uint64_t t = (index + 1) * kWin - 1;
  ASSERT_TRUE(s.window_closes(t));
  s.close_window(t, sample);
}

TEST(SaturationDetector, HealthyTrafficNeverLatches) {
  OnlineStats s(64, detector_config());
  for (std::uint64_t i = 0; i < 20; ++i) {
    feed_window(s, i, 1000, 1000, 500);
  }
  EXPECT_FALSE(s.saturated());
  EXPECT_FALSE(s.onset_cycle().has_value());
  ASSERT_EQ(s.windows().size(), 20u);
  for (const auto& w : s.windows()) EXPECT_FALSE(w.saturating);
}

TEST(SaturationDetector, StarvedDeficitRunLatchesWithOnsetCycle) {
  OnlineStats s(64, detector_config());
  // Healthy settle + baseline windows.
  for (std::uint64_t i = 0; i < 4; ++i) feed_window(s, i, 1000, 1000, 500);
  // Saturation: accepted collapses below the deficit ratio while the
  // network pins its VCs (free fraction 0.05 < 0.12 floor).
  for (std::uint64_t i = 4; i < 8; ++i) feed_window(s, i, 1000, 400, 50);
  EXPECT_TRUE(s.saturated());
  ASSERT_TRUE(s.onset_cycle().has_value());
  // Three consecutive saturating windows latch at window 6; the onset is
  // stamped at the start of the first window of the run (window 4).
  EXPECT_EQ(*s.onset_cycle(), 4 * kWin);
  EXPECT_TRUE(s.windows()[4].saturating);
  EXPECT_FALSE(s.windows()[3].saturating);
}

TEST(SaturationDetector, DeficitWithFreeVcsDoesNotLatch) {
  // The ALO signature: source-side overload (big deficit) but the
  // limiter keeps VC occupancy healthy — not network saturation.
  OnlineStats s(64, detector_config());
  for (std::uint64_t i = 0; i < 4; ++i) feed_window(s, i, 1000, 1000, 500);
  for (std::uint64_t i = 4; i < 12; ++i) feed_window(s, i, 1000, 400, 200);
  EXPECT_FALSE(s.saturated());
  for (const auto& w : s.windows()) EXPECT_FALSE(w.saturating);
}

TEST(SaturationDetector, StarvedWithoutDeficitDoesNotLatch) {
  // High occupancy alone (e.g. a well-utilized network still delivering
  // everything offered) must not read as saturation.
  OnlineStats s(64, detector_config());
  for (std::uint64_t i = 0; i < 10; ++i) feed_window(s, i, 1000, 1000, 50);
  EXPECT_FALSE(s.saturated());
}

TEST(SaturationDetector, IsolatedSaturatingWindowsDoNotLatch) {
  OnlineStats s(64, detector_config());
  for (std::uint64_t i = 0; i < 4; ++i) feed_window(s, i, 1000, 1000, 500);
  // saturating / healthy alternation: never 3 consecutive.
  for (std::uint64_t i = 4; i < 16; ++i) {
    if (i % 3 == 0) {
      feed_window(s, i, 1000, 400, 50);
    } else {
      feed_window(s, i, 1000, 1000, 500);
    }
  }
  EXPECT_FALSE(s.saturated());
}

TEST(SaturationDetector, SettleWindowsAreIgnored) {
  // Even an immediately-starved start cannot latch inside the settle
  // period, and the latch needs onset_windows eligible windows after it.
  OnlineConfig cfg = detector_config();
  cfg.settle_windows = 4;
  OnlineStats s(64, cfg);
  for (std::uint64_t i = 0; i < 4; ++i) feed_window(s, i, 1000, 400, 50);
  EXPECT_FALSE(s.saturated());
  for (std::uint64_t i = 4; i < 7; ++i) feed_window(s, i, 1000, 400, 50);
  EXPECT_TRUE(s.saturated());
  EXPECT_EQ(*s.onset_cycle(), 4 * kWin);
}

TEST(SaturationDetector, WindowAccountingAndCreditDeltas) {
  OnlineStats s(64, detector_config());
  s.on_generated(48);
  s.on_injected();
  s.on_injected();
  s.on_flits_ejected(16);
  s.on_delivered(40, true);
  s.on_deadlock();
  WindowSample first;
  first.credit_messages = 300;  // cumulative counter
  first.in_flight_flits = 32;
  first.total_vcs = 1000;
  first.free_vcs = 400;
  s.close_window(kWin - 1, first);

  s.on_generated(16);
  WindowSample second;
  second.credit_messages = 450;
  second.total_vcs = 1000;
  second.free_vcs = 500;
  s.close_window(2 * kWin - 1, second);

  ASSERT_EQ(s.windows().size(), 2u);
  const Window& w0 = s.windows()[0];
  EXPECT_EQ(w0.start_cycle, 0u);
  EXPECT_EQ(w0.cycles, kWin);
  EXPECT_EQ(w0.offered_flits, 48u);
  EXPECT_EQ(w0.accepted_flits, 16u);
  EXPECT_EQ(w0.injected, 2u);
  EXPECT_EQ(w0.delivered, 1u);
  EXPECT_EQ(w0.deadlocks, 1u);
  EXPECT_EQ(w0.credit_messages, 300u);  // delta from 0
  EXPECT_EQ(w0.end.in_flight_flits, 32u);
  EXPECT_EQ(w0.latency_count, 1u);
  EXPECT_EQ(w0.latency_p99, 40u);
  EXPECT_DOUBLE_EQ(w0.free_vc_fraction(), 0.4);

  const Window& w1 = s.windows()[1];
  EXPECT_EQ(w1.start_cycle, kWin);
  EXPECT_EQ(w1.offered_flits, 16u);
  EXPECT_EQ(w1.credit_messages, 150u);  // 450 - 300
  EXPECT_EQ(w1.latency_count, 0u);      // window histogram was reset
}

TEST(SaturationDetector, MeasuredFlagGatesRunHistogram) {
  // Warmup/drain deliveries feed the per-window histogram (the detector
  // needs them) but stay out of the whole-run latency distribution.
  OnlineStats s(64, detector_config());
  s.on_delivered(100, false);
  s.on_delivered(200, true);
  EXPECT_EQ(s.latency_hist().count(), 1u);
  EXPECT_EQ(s.latency_hist().max_value(), 200u);
}

TEST(SaturationDetector, FinishFlushesPartialWindowOnce) {
  OnlineStats s(64, detector_config());
  s.on_generated(10);
  WindowSample sample;
  sample.total_vcs = 1000;
  sample.free_vcs = 500;
  s.finish(42, sample);
  s.finish(42, sample);  // idempotent
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_EQ(s.windows()[0].start_cycle, 0u);
  EXPECT_EQ(s.windows()[0].cycles, 42u);
  EXPECT_EQ(s.windows()[0].offered_flits, 10u);
}

TEST(SaturationDetector, ProfileDueRespectsPeriod) {
  OnlineConfig cfg = detector_config();
  EXPECT_FALSE(OnlineStats(64, cfg).profile_enabled());
  cfg.profile_period = 64;
  OnlineStats s(64, cfg);
  EXPECT_TRUE(s.profile_enabled());
  EXPECT_TRUE(s.profile_due(0));
  EXPECT_FALSE(s.profile_due(1));
  EXPECT_TRUE(s.profile_due(128));
}

// ----------------------------------------------------------------- profiler

TEST(PhaseProfiler, AttributesTimeToPhases) {
  PhaseProfiler prof;
  EXPECT_EQ(prof.total_ns(), 0u);
  volatile std::uint64_t sink = 0;
  prof.time(Phase::Route, [&] {
    for (int i = 0; i < 100000; ++i) sink = sink + 1;
  });
  prof.time(Phase::Eject, [] {});
  prof.count_sample();
  EXPECT_EQ(prof.sampled_cycles(), 1u);
  EXPECT_GT(prof.phase_ns(Phase::Route), 0u);
  EXPECT_EQ(prof.total_ns(),
            prof.phase_ns(Phase::Route) + prof.phase_ns(Phase::Eject));
  EXPECT_GT(prof.share(Phase::Route), 0.5);
  double sum = 0.0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    sum += prof.share(static_cast<Phase>(p));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace wormsim::metrics
