#include "metrics/collector.hpp"

#include <gtest/gtest.h>

namespace wormsim::metrics {
namespace {

TEST(Collector, WindowGating) {
  Collector c(4, 100, 200);
  EXPECT_FALSE(c.in_window(99));
  EXPECT_TRUE(c.in_window(100));
  EXPECT_TRUE(c.in_window(199));
  EXPECT_FALSE(c.in_window(200));
}

TEST(Collector, LatencyOnlyFromMeasuredMessages) {
  Collector c(4, 0, 1000);
  c.on_delivered(/*gen=*/10, /*now=*/50, /*measured=*/true);
  c.on_delivered(/*gen=*/10, /*now=*/900, /*measured=*/false);
  const SimResult r = c.finish(4);
  EXPECT_EQ(r.measured_delivered, 1u);
  EXPECT_EQ(r.messages_delivered, 2u);
  EXPECT_DOUBLE_EQ(r.latency_mean, 40.0);
}

TEST(Collector, AcceptedTrafficNormalization) {
  Collector c(/*nodes=*/8, 100, 200);
  c.on_flits_ejected(150, 3);
  c.on_flits_ejected(199, 5);
  c.on_flits_ejected(50, 100);   // before window: ignored
  c.on_flits_ejected(200, 100);  // after window: ignored
  const SimResult r = c.finish(8);
  // 8 flits / (100 cycles * 8 nodes).
  EXPECT_DOUBLE_EQ(r.accepted_flits_per_node_cycle, 0.01);
}

TEST(Collector, DeadlockPctOverWindowInjections) {
  Collector c(2, 0, 100);
  for (int i = 0; i < 50; ++i) c.on_injected(0, 10, true);
  c.on_deadlock(20);
  c.on_deadlock(30);
  c.on_deadlock(200);  // outside window: ignored
  const SimResult r = c.finish(2);
  EXPECT_EQ(r.deadlock_detections, 2u);
  EXPECT_DOUBLE_EQ(r.deadlock_pct, 4.0);
}

TEST(Collector, DeadlockPctZeroWhenNothingInjected) {
  Collector c(2, 0, 100);
  c.on_deadlock(20);
  EXPECT_DOUBLE_EQ(c.finish(2).deadlock_pct, 0.0);
}

TEST(ProbeStats, ZeroSamplesYieldZeroPercentagesNotNan) {
  const ProbeStats p;
  EXPECT_EQ(p.samples, 0u);
  EXPECT_DOUBLE_EQ(p.pct_a(), 0.0);
  EXPECT_DOUBLE_EQ(p.pct_b(), 0.0);
  EXPECT_DOUBLE_EQ(p.pct_either(), 0.0);
}

TEST(ProbeStats, PercentagesScaleWithSamples) {
  ProbeStats p;
  p.samples = 8;
  p.rule_a = 2;
  p.rule_b = 4;
  p.either = 5;
  EXPECT_DOUBLE_EQ(p.pct_a(), 25.0);
  EXPECT_DOUBLE_EQ(p.pct_b(), 50.0);
  EXPECT_DOUBLE_EQ(p.pct_either(), 62.5);
}

TEST(Collector, ProbePercentages) {
  Collector c(2, 0, 100);
  c.on_probe(1, true, true);
  c.on_probe(2, true, false);
  c.on_probe(3, false, false);
  c.on_probe(4, false, true);
  const ProbeStats p = c.finish(2).probe;
  EXPECT_EQ(p.samples, 4u);
  EXPECT_DOUBLE_EQ(p.pct_a(), 50.0);
  EXPECT_DOUBLE_EQ(p.pct_b(), 50.0);
  EXPECT_DOUBLE_EQ(p.pct_either(), 75.0);
}

TEST(Collector, ProbeIgnoredOutsideWindow) {
  Collector c(2, 100, 200);
  c.on_probe(50, true, true);
  EXPECT_EQ(c.finish(2).probe.samples, 0u);
}

TEST(Collector, FairnessCountsOnlyWindowInjections) {
  Collector c(3, 100, 200);
  c.on_injected(1, 150, true);
  c.on_injected(1, 160, true);
  c.on_injected(2, 150, true);
  c.on_injected(1, 50, true);    // outside window
  c.on_injected(1, 150, false);  // re-injection: not fairness-relevant
  EXPECT_EQ(c.fairness().at(1), 2u);
  EXPECT_EQ(c.fairness().at(2), 1u);
  EXPECT_EQ(c.finish(3).messages_injected_window, 4u);
}

TEST(Collector, QueueStats) {
  Collector c(2, 0, 100);
  c.on_queue_sample(0);
  c.on_queue_sample(10);
  c.on_queue_sample(20);
  const SimResult r = c.finish(2);
  EXPECT_DOUBLE_EQ(r.avg_queue_len, 10.0);
  EXPECT_EQ(r.max_queue_len, 20u);
}

TEST(Collector, LatencyPercentilesOrdered) {
  Collector c(1, 0, 1000);
  for (int i = 1; i <= 1000; ++i) {
    c.on_delivered(0, static_cast<Cycle>(i), true);
  }
  const SimResult r = c.finish(1);
  EXPECT_LE(r.latency_p50, r.latency_p95);
  EXPECT_LE(r.latency_p95, r.latency_p99);
  EXPECT_NEAR(r.latency_p50, 500.0, 10.0);
  EXPECT_NEAR(r.latency_p99, 990.0, 10.0);
  EXPECT_DOUBLE_EQ(r.latency_min, 1.0);
  EXPECT_DOUBLE_EQ(r.latency_max, 1000.0);
}

}  // namespace
}  // namespace wormsim::metrics
