#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

namespace wormsim::metrics {
namespace {

TEST(TimeSeries, BucketsByInterval) {
  TimeSeries ts(100);
  ts.on_flits_ejected(0, 1);
  ts.on_flits_ejected(99, 2);
  ts.on_flits_ejected(100, 4);
  ts.on_flits_ejected(250, 8);
  ASSERT_EQ(ts.intervals().size(), 3u);
  EXPECT_EQ(ts.intervals()[0].flits_ejected, 3u);
  EXPECT_EQ(ts.intervals()[1].flits_ejected, 4u);
  EXPECT_EQ(ts.intervals()[2].flits_ejected, 8u);
  EXPECT_EQ(ts.intervals()[2].start_cycle, 200u);
}

TEST(TimeSeries, GapsCreateEmptyIntervals) {
  TimeSeries ts(10);
  ts.on_injected(5);
  ts.on_injected(45);
  ASSERT_EQ(ts.intervals().size(), 5u);
  EXPECT_EQ(ts.intervals()[1].messages_injected, 0u);
  EXPECT_EQ(ts.intervals()[4].messages_injected, 1u);
}

TEST(TimeSeries, AcceptedNormalization) {
  TimeSeries ts(200);
  ts.on_flits_ejected(10, 100);
  // 100 flits / (200 cycles * 10 nodes) = 0.05.
  EXPECT_DOUBLE_EQ(ts.accepted(0, 10), 0.05);
}

TEST(TimeSeries, LatencyPerInterval) {
  TimeSeries ts(50);
  ts.on_delivered(10, 30.0);
  ts.on_delivered(20, 50.0);
  ts.on_delivered(70, 100.0);
  ASSERT_EQ(ts.intervals().size(), 2u);
  EXPECT_DOUBLE_EQ(ts.intervals()[0].latency.mean(), 40.0);
  EXPECT_DOUBLE_EQ(ts.intervals()[1].latency.mean(), 100.0);
}

TEST(TimeSeries, DeadlocksAndQueue) {
  TimeSeries ts(10);
  ts.on_deadlock(3);
  ts.on_deadlock(4);
  ts.on_queue_sample(9, 42);
  EXPECT_EQ(ts.intervals()[0].deadlock_detections, 2u);
  EXPECT_EQ(ts.intervals()[0].queue_total, 42u);
}

TEST(TimeSeries, ExactBoundaryCyclesOpenTheNextInterval) {
  TimeSeries ts(100);
  // A cycle equal to a multiple of the interval belongs to the interval
  // it *starts*, never the one it ends.
  ts.on_queue_sample(100, 7);
  ASSERT_EQ(ts.intervals().size(), 2u);
  EXPECT_EQ(ts.intervals()[0].queue_total, 0u);
  EXPECT_EQ(ts.intervals()[1].queue_total, 7u);
  EXPECT_EQ(ts.intervals()[1].start_cycle, 100u);
  ts.on_deadlock(199);
  ts.on_deadlock(200);
  ASSERT_EQ(ts.intervals().size(), 3u);
  EXPECT_EQ(ts.intervals()[1].deadlock_detections, 1u);
  EXPECT_EQ(ts.intervals()[2].deadlock_detections, 1u);
}

TEST(TimeSeries, OutOfOrderQueueSamplesLandInTheirOwnInterval) {
  TimeSeries ts(10);
  ts.on_queue_sample(25, 50);  // creates intervals 0..2
  // A late-arriving sample for an earlier cycle must update the earlier
  // interval without disturbing the later one.
  ts.on_queue_sample(5, 3);
  ASSERT_EQ(ts.intervals().size(), 3u);
  EXPECT_EQ(ts.intervals()[0].queue_total, 3u);
  EXPECT_EQ(ts.intervals()[2].queue_total, 50u);
  // Within one interval, the newest sample wins (it is a point-in-time
  // snapshot, not an accumulator).
  ts.on_queue_sample(26, 60);
  EXPECT_EQ(ts.intervals()[2].queue_total, 60u);
}

TEST(TimeSeries, ZeroIntervalClampedToOne) {
  TimeSeries ts(0);
  EXPECT_EQ(ts.interval_cycles(), 1u);
  ts.on_injected(7);
  EXPECT_EQ(ts.intervals().size(), 8u);
}

}  // namespace
}  // namespace wormsim::metrics
