#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

namespace wormsim::metrics {
namespace {

TEST(TimeSeries, BucketsByInterval) {
  TimeSeries ts(100);
  ts.on_flits_ejected(0, 1);
  ts.on_flits_ejected(99, 2);
  ts.on_flits_ejected(100, 4);
  ts.on_flits_ejected(250, 8);
  ASSERT_EQ(ts.intervals().size(), 3u);
  EXPECT_EQ(ts.intervals()[0].flits_ejected, 3u);
  EXPECT_EQ(ts.intervals()[1].flits_ejected, 4u);
  EXPECT_EQ(ts.intervals()[2].flits_ejected, 8u);
  EXPECT_EQ(ts.intervals()[2].start_cycle, 200u);
}

TEST(TimeSeries, GapsCreateEmptyIntervals) {
  TimeSeries ts(10);
  ts.on_injected(5);
  ts.on_injected(45);
  ASSERT_EQ(ts.intervals().size(), 5u);
  EXPECT_EQ(ts.intervals()[1].messages_injected, 0u);
  EXPECT_EQ(ts.intervals()[4].messages_injected, 1u);
}

TEST(TimeSeries, AcceptedNormalization) {
  TimeSeries ts(200);
  ts.on_flits_ejected(10, 100);
  // 100 flits / (200 cycles * 10 nodes) = 0.05.
  EXPECT_DOUBLE_EQ(ts.accepted(0, 10), 0.05);
}

TEST(TimeSeries, LatencyPerInterval) {
  TimeSeries ts(50);
  ts.on_delivered(10, 30.0);
  ts.on_delivered(20, 50.0);
  ts.on_delivered(70, 100.0);
  ASSERT_EQ(ts.intervals().size(), 2u);
  EXPECT_DOUBLE_EQ(ts.intervals()[0].latency.mean(), 40.0);
  EXPECT_DOUBLE_EQ(ts.intervals()[1].latency.mean(), 100.0);
}

TEST(TimeSeries, DeadlocksAndQueue) {
  TimeSeries ts(10);
  ts.on_deadlock(3);
  ts.on_deadlock(4);
  ts.on_queue_sample(9, 42);
  EXPECT_EQ(ts.intervals()[0].deadlock_detections, 2u);
  EXPECT_EQ(ts.intervals()[0].queue_total, 42u);
}

TEST(TimeSeries, ZeroIntervalClampedToOne) {
  TimeSeries ts(0);
  EXPECT_EQ(ts.interval_cycles(), 1u);
  ts.on_injected(7);
  EXPECT_EQ(ts.intervals().size(), 8u);
}

}  // namespace
}  // namespace wormsim::metrics
