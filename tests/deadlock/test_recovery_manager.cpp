#include "deadlock/recovery.hpp"

#include <gtest/gtest.h>

namespace wormsim::deadlock {
namespace {

TEST(RecoveryManager, StartsEmpty) {
  RecoveryManager rm(4);
  EXPECT_EQ(rm.pending_total(), 0u);
  EXPECT_FALSE(rm.has_ready(0, 1000));
}

TEST(RecoveryManager, ReadyOnlyAfterDelay) {
  RecoveryManager rm(4);
  rm.enqueue(2, 7, /*ready=*/100);
  EXPECT_EQ(rm.pending(2), 1u);
  EXPECT_FALSE(rm.has_ready(2, 99));
  EXPECT_TRUE(rm.has_ready(2, 100));
  EXPECT_FALSE(rm.has_ready(1, 100));  // other node unaffected
}

TEST(RecoveryManager, FifoPerNode) {
  RecoveryManager rm(2);
  rm.enqueue(0, 10, 5);
  rm.enqueue(0, 11, 5);
  rm.enqueue(0, 12, 6);
  EXPECT_EQ(rm.pop(0), 10u);
  EXPECT_EQ(rm.pop(0), 11u);
  EXPECT_EQ(rm.pop(0), 12u);
  EXPECT_EQ(rm.pending_total(), 0u);
}

TEST(RecoveryManager, HeadBlocksReadiness) {
  // FIFO semantics: the head entry gates readiness even if a later
  // entry's deadline already passed.
  RecoveryManager rm(1);
  rm.enqueue(0, 1, 1000);
  rm.enqueue(0, 2, 10);
  EXPECT_FALSE(rm.has_ready(0, 500));
  EXPECT_TRUE(rm.has_ready(0, 1000));
}

TEST(RecoveryManager, PendingTotalsAcrossNodes) {
  RecoveryManager rm(3);
  rm.enqueue(0, 1, 0);
  rm.enqueue(1, 2, 0);
  rm.enqueue(1, 3, 0);
  EXPECT_EQ(rm.pending_total(), 3u);
  EXPECT_EQ(rm.pending(1), 2u);
  (void)rm.pop(1);
  EXPECT_EQ(rm.pending_total(), 2u);
}

TEST(RecoveryManager, ClearEmptiesEverything) {
  RecoveryManager rm(2);
  rm.enqueue(0, 1, 0);
  rm.enqueue(1, 2, 0);
  rm.clear();
  EXPECT_EQ(rm.pending_total(), 0u);
  EXPECT_FALSE(rm.has_ready(0, 100));
}

}  // namespace
}  // namespace wormsim::deadlock
