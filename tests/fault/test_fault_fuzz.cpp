// Seeded fuzz over the fault subsystem, mirroring the active-set
// fuzzer: ~100 randomized short runs on small tori per flow-control
// scheme, each with a random kill/restore schedule applied mid-flight,
// asserting every 64 cycles that flit/message conservation holds (with
// the lost-to-faults term), that the active-set bookkeeping stays
// coherent through the surgery, that the fault invariants hold (dead
// links hold no tenants and advertise no free VCs, dead nodes have
// empty queues and idle ports, no active message targets a dead
// destination), and — under credit flow control — that fault teardown
// neither strands nor double-frees credits.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "../sim/sim_test_util.hpp"
#include "../support/invariants.hpp"
#include "fault/schedule.hpp"
#include "sim/flow_control.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

struct FuzzConfig {
  unsigned k;
  unsigned n;
  unsigned vcs;
  double offered;
  std::uint32_t msg_len;
  traffic::PatternKind pattern;
  traffic::ProcessKind process;
  core::LimiterKind limiter;
  FlowControl scheme;
  unsigned credit_delay;
  fault::FaultSchedule schedule;
};

constexpr std::uint64_t kRunCycles = 1024;  // 16 blocks x 64 cycles

FuzzConfig draw_config(std::mt19937_64& rng, FlowControl scheme) {
  const auto pick = [&](auto... vals) {
    using T = std::common_type_t<decltype(vals)...>;
    const T options[] = {vals...};
    return options[rng() % (sizeof...(vals))];
  };
  FuzzConfig f;
  f.k = pick(2u, 3u, 4u);
  f.n = pick(1u, 2u);
  f.vcs = pick(1u, 2u, 3u);
  f.offered = pick(0.02, 0.15, 0.5, 1.0, 1.6);
  f.msg_len = pick(4u, 16u, 64u);
  f.pattern = f.k == 3 ? pick(traffic::PatternKind::Uniform,
                              traffic::PatternKind::Tornado)
                       : pick(traffic::PatternKind::Uniform,
                              traffic::PatternKind::Complement,
                              traffic::PatternKind::BitReversal,
                              traffic::PatternKind::Tornado);
  f.process = pick(traffic::ProcessKind::Exponential,
                   traffic::ProcessKind::Bernoulli,
                   traffic::ProcessKind::Bursty);
  f.limiter = pick(core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL);
  f.scheme = scheme;
  f.credit_delay = pick(0u, 1u, 2u, 5u);

  // Random kill/restore pairs: 1-4 faulty components, each killed at a
  // random cycle inside the run and restored later with probability
  // 2/3 (possibly past the end of the run, which must be harmless).
  const topo::KAryNCube topo(f.k, f.n);
  std::vector<fault::FaultEvent> events;
  const unsigned components = 1 + rng() % 4;
  for (unsigned i = 0; i < components; ++i) {
    const fault::Cycle kill_at = rng() % (kRunCycles - 64);
    const bool node_fault = rng() % 4 == 0;
    const topo::NodeId node =
        static_cast<topo::NodeId>(rng() % topo.num_nodes());
    const topo::ChannelId channel =
        static_cast<topo::ChannelId>(rng() % topo.num_channels());
    const auto kind =
        node_fault ? fault::FaultKind::NodeKill : fault::FaultKind::LinkKill;
    events.push_back({kill_at, kind, node, node_fault ? topo::ChannelId{0}
                                                      : channel});
    if (rng() % 3 != 0) {
      const fault::Cycle restore_at = kill_at + 64 + rng() % kRunCycles;
      events.push_back({restore_at,
                        node_fault ? fault::FaultKind::NodeRestore
                                   : fault::FaultKind::LinkRestore,
                        node, node_fault ? topo::ChannelId{0} : channel});
    }
  }
  f.schedule = fault::FaultSchedule(std::move(events));
  return f;
}

std::unique_ptr<Simulator> build(const FuzzConfig& f, std::uint64_t seed) {
  const topo::KAryNCube topo(f.k, f.n);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.net.num_vcs = f.vcs;
  cfg.limiter.kind = f.limiter;
  cfg.flow.scheme = f.scheme;
  cfg.flow.credit_return_delay = f.credit_delay;
  if (f.scheme == FlowControl::Vct) {
    // Whole-packet admission needs message-deep buffers.
    cfg.net.buf_flits = std::max(cfg.net.buf_flits, f.msg_len);
  }
  cfg.faults = f.schedule;
  traffic::WorkloadConfig wcfg;
  wcfg.pattern = f.pattern;
  wcfg.process = f.process;
  wcfg.offered_flits_per_node_cycle = f.offered;
  wcfg.length.fixed = f.msg_len;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, seed);
  return std::make_unique<Simulator>(topo, cfg, std::move(workload));
}

/// Param encodes flow-control scheme (param / 100) and seed index
/// (param % 100): the full fault matrix runs against wormhole, credit
/// and virtual cut-through alike.
class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, InvariantsHoldThroughRandomSchedules) {
  const auto scheme = static_cast<FlowControl>(GetParam() / 100);
  const int index = GetParam() % 100;
  const std::uint64_t seed = 0xFA017E57u + static_cast<unsigned>(index);
  std::mt19937_64 rng(seed);
  const FuzzConfig f = draw_config(rng, scheme);
  SCOPED_TRACE("scheme=" + std::string(flow_control_name(f.scheme)) +
               " k=" + std::to_string(f.k) + " n=" + std::to_string(f.n) +
               " vcs=" + std::to_string(f.vcs) +
               " offered=" + std::to_string(f.offered) +
               " len=" + std::to_string(f.msg_len) + " pattern=" +
               std::string(traffic::pattern_name(f.pattern)) + " process=" +
               std::string(traffic::process_name(f.process)) + " limiter=" +
               std::string(core::limiter_name(f.limiter)) +
               " credit-delay=" + std::to_string(f.credit_delay) +
               " fault_events=" + std::to_string(f.schedule.size()));
  auto sim = build(f, seed);

  for (std::uint64_t block = 0; block < kRunCycles / 64; ++block) {
    sim->step_cycles(64);
    ASSERT_TRUE(testing::check_all_invariants(*sim));
  }

  // Aggregate conservation through the public counters, including the
  // lost-to-faults term.
  EXPECT_TRUE(testing::check_aggregate_conservation(*sim));
  // The schedule's past-due events were all consumed.
  const fault::FaultManager* mgr = sim->fault_manager();
  ASSERT_NE(mgr, nullptr);
  std::uint64_t due = 0;
  for (const fault::FaultEvent& e : f.schedule.events()) {
    if (e.cycle < sim->cycle()) ++due;
  }
  EXPECT_EQ(mgr->events_applied(), due);
}

INSTANTIATE_TEST_SUITE_P(HundredSeedsPerScheme, FaultFuzz,
                         ::testing::Range(0, 300));

/// A restored network keeps working: kill every fault in the schedule,
/// restore them all, then check traffic still delivers end to end.
TEST(FaultFuzz, TrafficFlowsAfterFullRestore) {
  const topo::KAryNCube topo(4, 2);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.faults = fault::FaultSchedule({
      {100, fault::FaultKind::LinkKill, 3, 0},
      {100, fault::FaultKind::NodeKill, 9, 0},
      {400, fault::FaultKind::LinkRestore, 3, 0},
      {400, fault::FaultKind::NodeRestore, 9, 0},
  });
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.3;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 777);
  Simulator sim(topo, cfg, std::move(workload));

  sim.step_cycles(600);
  ASSERT_EQ(sim.fault_events_applied(), 4u);
  EXPECT_EQ(sim.lut_rebuilds(), 2u);  // one per fault cycle
  const std::uint64_t delivered_at_restore = sim.total_delivered();
  sim.step_cycles(600);
  EXPECT_GT(sim.total_delivered(), delivered_at_restore);
  EXPECT_TRUE(testing::check_all_invariants(sim));
}

}  // namespace
}  // namespace wormsim::sim
