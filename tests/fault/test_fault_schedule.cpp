// Unit coverage for the fault-injection primitives: the FaultMask's
// symmetric link semantics and node-kill layering, the schedule-file
// parser (round-trip plus malformed-input diagnostics), the seeded
// transient preset, the --faults spec resolver, and the Network's
// dead-link state (vc field, free mask, epoch bump).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fault/manager.hpp"
#include "fault/schedule.hpp"
#include "sim/network.hpp"
#include "topology/fault_mask.hpp"

namespace wormsim::fault {
namespace {

TEST(FaultMask, LinkKillIsSymmetricAndIdempotent) {
  const topo::KAryNCube t(4, 2);
  topo::FaultMask mask(t);
  EXPECT_FALSE(mask.any());

  const topo::NodeId node = 5;
  const topo::ChannelId c = 2;  // dim 1, positive direction
  const topo::NodeId nbr = t.neighbor(node, c);
  mask.kill_link(node, c);
  EXPECT_TRUE(mask.any());
  EXPECT_TRUE(mask.link_killed(node, c));
  EXPECT_TRUE(mask.link_killed(nbr, c ^ 1));  // reverse direction too
  EXPECT_TRUE(mask.link_dead(node, c));
  EXPECT_TRUE(mask.link_dead(nbr, c ^ 1));
  EXPECT_EQ(mask.killed_links(), 2u);  // directed count, 2 per physical

  mask.kill_link(nbr, c ^ 1);  // same physical link, other direction
  EXPECT_EQ(mask.killed_links(), 2u);
  mask.kill_link(node, c);
  EXPECT_EQ(mask.killed_links(), 2u);

  mask.restore_link(nbr, c ^ 1);  // restore via either direction
  EXPECT_FALSE(mask.link_killed(node, c));
  EXPECT_FALSE(mask.link_killed(nbr, c ^ 1));
  EXPECT_EQ(mask.killed_links(), 0u);
  EXPECT_FALSE(mask.any());
  mask.restore_link(node, c);  // idempotent
  EXPECT_EQ(mask.killed_links(), 0u);
}

TEST(FaultMask, NodeKillLayersOverLinkState) {
  const topo::KAryNCube t(4, 2);
  topo::FaultMask mask(t);
  const topo::NodeId node = 3;

  // Explicitly kill one of the node's links, then kill the node.
  mask.kill_link(node, 0);
  mask.kill_node(node);
  EXPECT_TRUE(mask.node_dead(node));
  EXPECT_EQ(mask.dead_nodes(), 1u);
  mask.kill_node(node);  // idempotent
  EXPECT_EQ(mask.dead_nodes(), 1u);

  // Every link touching the dead node is dead, from both endpoints,
  // but only the explicitly killed one carries the raw kill bit.
  for (topo::ChannelId c = 0; c < t.num_channels(); ++c) {
    EXPECT_TRUE(mask.link_dead(node, c));
    const topo::NodeId nbr = t.neighbor(node, c);
    EXPECT_TRUE(mask.link_dead(nbr, c ^ 1));
    if (c != 0) EXPECT_FALSE(mask.link_killed(node, c));
  }

  // Restoring the node revives exactly the links not killed outright.
  mask.restore_node(node);
  EXPECT_FALSE(mask.node_dead(node));
  EXPECT_TRUE(mask.link_dead(node, 0));
  for (topo::ChannelId c = 1; c < t.num_channels(); ++c) {
    EXPECT_FALSE(mask.link_dead(node, c));
  }
}

TEST(FaultSchedule, ConstructorStableSortsByCycle) {
  const std::vector<FaultEvent> in = {
      {200, FaultKind::LinkRestore, 1, 0},
      {100, FaultKind::LinkKill, 1, 0},
      {100, FaultKind::LinkKill, 2, 3},
  };
  const FaultSchedule s(in);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0], (FaultEvent{100, FaultKind::LinkKill, 1, 0}));
  EXPECT_EQ(s.events()[1], (FaultEvent{100, FaultKind::LinkKill, 2, 3}));
  EXPECT_EQ(s.events()[2], (FaultEvent{200, FaultKind::LinkRestore, 1, 0}));
}

TEST(FaultSchedule, ParseRoundTripsThroughWrite) {
  std::istringstream in(
      "# comment line\n"
      "\n"
      "100 kill-link 5 2   # trailing comment\n"
      "150 kill-node 9\n"
      "300 restore-link 5 2\n"
      "400 restore-node 9\n");
  const FaultSchedule s = parse_schedule(in);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.events()[0], (FaultEvent{100, FaultKind::LinkKill, 5, 2}));
  EXPECT_EQ(s.events()[1], (FaultEvent{150, FaultKind::NodeKill, 9, 0}));
  EXPECT_EQ(s.events()[2], (FaultEvent{300, FaultKind::LinkRestore, 5, 2}));
  EXPECT_EQ(s.events()[3], (FaultEvent{400, FaultKind::NodeRestore, 9, 0}));

  std::ostringstream out;
  s.write(out);
  std::istringstream in2(out.str());
  const FaultSchedule s2 = parse_schedule(in2);
  EXPECT_EQ(s.events(), s2.events());
}

TEST(FaultSchedule, ParseRejectsMalformedLinesWithLineNumbers) {
  const auto expect_throw_with = [](const std::string& text,
                                    const std::string& needle) {
    std::istringstream in(text);
    try {
      parse_schedule(in);
      FAIL() << "expected std::invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_throw_with("100 melt-link 0 0\n", "line 1");
  expect_throw_with("# ok\nnonsense\n", "line 2");
  expect_throw_with("100 kill-link 0\n", "line 1");    // missing channel
  expect_throw_with("100 kill-node\n", "line 1");      // missing node
  expect_throw_with("100 kill-node 0 junk\n", "line 1");  // trailing text
  expect_throw_with("100 kill-link 0 999\n", "line 1");   // channel > 255
}

TEST(MakeTransient, DeterministicDistinctLinksWithRestores) {
  const topo::KAryNCube t(4, 2);
  const FaultSchedule a = make_transient(t, 3, 1000, 500, 42);
  const FaultSchedule b = make_transient(t, 3, 1000, 500, 42);
  EXPECT_EQ(a.events(), b.events());  // seed-reproducible

  ASSERT_EQ(a.size(), 6u);  // 3 kills + 3 restores
  std::set<std::size_t> physical;
  for (const FaultEvent& e : a.events()) {
    if (e.kind == FaultKind::LinkKill) {
      EXPECT_EQ(e.cycle, 1000u);
      const std::size_t fwd = e.node * t.num_channels() + e.channel;
      const std::size_t rev =
          t.neighbor(e.node, e.channel) * t.num_channels() + (e.channel ^ 1);
      physical.insert(std::min(fwd, rev));
    } else {
      ASSERT_EQ(e.kind, FaultKind::LinkRestore);
      EXPECT_EQ(e.cycle, 1500u);
    }
  }
  EXPECT_EQ(physical.size(), 3u);  // distinct physical links

  const FaultSchedule c = make_transient(t, 3, 1000, 500, 43);
  EXPECT_NE(a.events(), c.events());  // seed actually matters

  const FaultSchedule no_restore = make_transient(t, 2, 1000, 0, 42);
  EXPECT_EQ(no_restore.size(), 2u);  // duration 0 = never restored

  // More links than physical links exist is a spec error.
  EXPECT_THROW(make_transient(t, 10000, 0, 0, 1), std::invalid_argument);
}

TEST(LoadFaults, ResolvesPresetAndFile) {
  const topo::KAryNCube t(4, 2);
  const FaultSchedule preset = load_faults("transient:2@750+250", t, 7);
  ASSERT_EQ(preset.size(), 4u);
  EXPECT_EQ(preset.events().front().cycle, 750u);
  EXPECT_EQ(preset.events().back().cycle, 1000u);
  EXPECT_EQ(preset.events(), make_transient(t, 2, 750, 250, 7).events());

  EXPECT_THROW(load_faults("transient:nope", t, 7), std::invalid_argument);
  EXPECT_THROW(load_faults("/nonexistent/schedule.txt", t, 7),
               std::invalid_argument);

  const std::string path =
      ::testing::TempDir() + "wormsim_fault_schedule_test.txt";
  {
    std::ofstream out(path);
    out << "10 kill-link 1 0\n20 restore-link 1 0\n";
  }
  const FaultSchedule from_file = load_faults(path, t, 7);
  std::remove(path.c_str());
  ASSERT_EQ(from_file.size(), 2u);
  EXPECT_EQ(from_file.events()[0], (FaultEvent{10, FaultKind::LinkKill, 1, 0}));
}

TEST(Validate, RejectsOutOfRangeComponents) {
  const topo::KAryNCube t(4, 2);  // 16 nodes, 4 channels
  EXPECT_NO_THROW(validate(
      FaultSchedule({{1, FaultKind::LinkKill, 15, 3}}), t));
  EXPECT_THROW(validate(FaultSchedule({{1, FaultKind::LinkKill, 16, 0}}), t),
               std::invalid_argument);
  EXPECT_THROW(validate(FaultSchedule({{1, FaultKind::LinkKill, 0, 4}}), t),
               std::invalid_argument);
  EXPECT_THROW(validate(FaultSchedule({{1, FaultKind::NodeKill, 99, 0}}), t),
               std::invalid_argument);
}

TEST(FaultManager, CursorAppliesEventsInOrder) {
  const topo::KAryNCube t(4, 2);
  FaultManager mgr(t, FaultSchedule({
                          {100, FaultKind::LinkKill, 2, 0},
                          {100, FaultKind::NodeKill, 7, 0},
                          {500, FaultKind::LinkRestore, 2, 0},
                      }));
  EXPECT_FALSE(mgr.due(99));
  EXPECT_TRUE(mgr.due(100));

  std::vector<FaultEvent> out;
  mgr.take_due(100, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(mgr.events_applied(), 2u);
  EXPECT_TRUE(mgr.mask().link_killed(2, 0));
  EXPECT_TRUE(mgr.mask().node_dead(7));
  EXPECT_FALSE(mgr.due(100));
  EXPECT_FALSE(mgr.due(499));

  out.clear();
  mgr.take_due(1000, out);  // past the last event: applies the restore
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(mgr.events_applied(), 3u);
  EXPECT_FALSE(mgr.mask().link_killed(2, 0));
  EXPECT_TRUE(mgr.mask().node_dead(7));
  EXPECT_FALSE(mgr.due(~std::uint64_t{0}));
}

TEST(NetworkDeadLink, KillZeroesFreeMaskAndBumpsEpoch) {
  const topo::KAryNCube t(4, 2);
  sim::NetworkParams params;
  params.num_vcs = 3;
  params.buf_flits = 4;
  params.inj_channels = 2;
  params.eje_channels = 2;
  params.link_delay = 2;
  sim::Network net(t, params);

  const sim::LinkId link = net.net_link(0, 1);
  const std::uint32_t full = (1u << params.num_vcs) - 1u;
  ASSERT_EQ(net.free_vc_mask(0, 1), full);
  ASSERT_FALSE(net.link_dead(link));

  const std::uint64_t epoch = net.link_epoch(link);
  net.set_link_dead(link, true);
  EXPECT_TRUE(net.link_dead(link));
  EXPECT_EQ(net.free_vc_mask(0, 1), 0u);  // nothing selectable
  EXPECT_EQ(net.link_epoch(link), epoch + 1);  // memoized routes invalidate

  net.set_link_dead(link, false);
  EXPECT_FALSE(net.link_dead(link));
  EXPECT_EQ(net.free_vc_mask(0, 1), full);
  EXPECT_EQ(net.link_epoch(link), epoch + 2);

  // bump_all_epochs touches every network link (rebuilds change routes
  // everywhere, not just at the failed component).
  const std::uint64_t e0 = net.link_epoch(0);
  const std::uint64_t eN = net.link_epoch(net.num_net_links() - 1);
  net.bump_all_epochs();
  EXPECT_EQ(net.link_epoch(0), e0 + 1);
  EXPECT_EQ(net.link_epoch(net.num_net_links() - 1), eN + 1);
}

}  // namespace
}  // namespace wormsim::fault
