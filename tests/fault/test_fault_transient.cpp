// Degraded-operation soak: 20k cycles of Bursty traffic at saturation
// load under ALO, with two physical links killed a few thousand cycles
// in. The network must ride through the reconfiguration transient and
// settle back to a steady-state accepted throughput comparable to the
// pre-fault level — the testable core of the ISSUE-6 headline sweep.
// Parametrized over the flow-control schemes: credit backpressure and
// VCT admission must survive the same surgery deadlock-free.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../sim/sim_test_util.hpp"
#include "../support/invariants.hpp"
#include "fault/schedule.hpp"
#include "metrics/timeseries.hpp"
#include "sim/flow_control.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

class FaultTransientSoak : public ::testing::TestWithParam<FlowControl> {};

TEST_P(FaultTransientSoak, BurstyThroughputRecoversAfterLinkKills) {
  constexpr std::uint64_t kKillCycle = 3000;
  constexpr std::uint64_t kSoakCycles = 20000;
  constexpr std::uint64_t kInterval = 500;

  const topo::KAryNCube topo(8, 2);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.limiter.kind = core::LimiterKind::ALO;
  cfg.flow.scheme = GetParam();
  if (GetParam() == FlowControl::Vct) {
    cfg.net.buf_flits = 16;  // whole-packet admission needs deep buffers
  }
  cfg.faults = fault::make_transient(topo, 2, kKillCycle, 0, 0xB5E5);
  traffic::WorkloadConfig wcfg;
  wcfg.process = traffic::ProcessKind::Bursty;
  wcfg.offered_flits_per_node_cycle = 1.0;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 0xB5E5);
  Simulator sim(topo, cfg, std::move(workload));
  sim.enable_timeseries(kInterval);

  sim.step_cycles(kSoakCycles);
  ASSERT_EQ(sim.fault_events_applied(), 2u);
  ASSERT_EQ(sim.lut_rebuilds(), 1u);
  ASSERT_TRUE(testing::check_all_invariants(sim));

  const metrics::TimeSeries* ts = sim.timeseries();
  ASSERT_NE(ts, nullptr);
  const std::uint32_t nodes = topo.num_nodes();
  const auto mean_accepted = [&](std::uint64_t from, std::uint64_t to) {
    double sum = 0.0;
    unsigned count = 0;
    const auto& intervals = ts->intervals();
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      const std::uint64_t start = intervals[i].start_cycle;
      if (start >= from && start + kInterval <= to) {
        sum += ts->accepted(i, nodes);
        ++count;
      }
    }
    EXPECT_GT(count, 0u);
    return count ? sum / count : 0.0;
  };

  // Skip the cold start; compare warm pre-fault throughput against the
  // degraded steady state well after the rebuild transient.
  const double pre = mean_accepted(1000, kKillCycle);
  const double post = mean_accepted(10000, kSoakCycles);
  EXPECT_GT(pre, 0.1);
  EXPECT_GE(post, 0.8 * pre)
      << "degraded steady state " << post
      << " fell more than 20% below pre-fault throughput " << pre;
}

INSTANTIATE_TEST_SUITE_P(Schemes, FaultTransientSoak,
                         ::testing::Values(FlowControl::Wormhole,
                                           FlowControl::Credit,
                                           FlowControl::Vct),
                         [](const auto& info) {
                           return std::string(
                               flow_control_name(info.param));
                         });

}  // namespace
}  // namespace wormsim::sim
