#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace wormsim::obs {
namespace {

TEST(Tracer, RecordsInOrder) {
  Tracer t(16);
  t.record(5, EventKind::QueueEnqueue, 3, 1, 16, 99);
  t.record(6, EventKind::GateAllow, 3);
  t.record(7, EventKind::VcAlloc, 12, 2, 0, 99);
  EXPECT_EQ(t.events_recorded(), 3u);
  EXPECT_EQ(t.events_dropped(), 0u);

  const auto evs = t.snapshot();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].cycle, 5u);
  EXPECT_EQ(evs[0].kind, EventKind::QueueEnqueue);
  EXPECT_EQ(evs[0].node, 3u);
  EXPECT_EQ(evs[0].aux8, 1u);
  EXPECT_EQ(evs[0].aux16, 16u);
  EXPECT_EQ(evs[0].aux32, 99u);
  EXPECT_EQ(evs[1].kind, EventKind::GateAllow);
  EXPECT_EQ(evs[2].kind, EventKind::VcAlloc);
  // Per-thread sequence numbers are strictly increasing.
  EXPECT_LT(evs[0].seq, evs[1].seq);
  EXPECT_LT(evs[1].seq, evs[2].seq);
}

TEST(Tracer, RingWrapKeepsNewestAndCountsDrops) {
  Tracer t(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    t.record(i, EventKind::GateBlock, i);
  }
  EXPECT_EQ(t.events_recorded(), 10u);
  EXPECT_EQ(t.events_dropped(), 6u);

  const auto evs = t.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // Keep-latest policy: the last four records survive, oldest first.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].cycle, 6u + i);
    EXPECT_EQ(evs[i].node, 6u + i);
  }
}

TEST(Tracer, PointBracketingStampsPid) {
  Tracer t(64);
  t.begin_point(0, "none @ 0.1");
  t.record(1, EventKind::GateAllow, 0);
  t.end_point(0, 100);
  t.begin_point(1, "alo @ 0.2");
  t.record(2, EventKind::GateBlock, 0);
  t.end_point(1, 200);

  const auto evs = t.snapshot();
  ASSERT_EQ(evs.size(), 6u);  // 2 events + 2 begin + 2 end markers
  for (const TraceEvent& e : evs) {
    if (e.kind == EventKind::GateAllow) {
      EXPECT_EQ(e.pid, 0u);
    } else if (e.kind == EventKind::GateBlock) {
      EXPECT_EQ(e.pid, 1u);
    }
  }
  // Snapshot is sorted by pid first.
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LE(evs[i - 1].pid, evs[i].pid);
  }
}

TEST(Tracer, ConcurrentRecordingLosesNothing) {
  Tracer t(std::size_t{1} << 12);
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&t, w] {
      t.begin_point(static_cast<std::uint32_t>(w), "pt");
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        t.record(i, EventKind::QueueDequeue, static_cast<std::uint32_t>(w));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(t.events_recorded(), kThreads * (kPerThread + 1u));
  EXPECT_EQ(t.events_dropped(), 0u);
  const auto evs = t.snapshot();
  ASSERT_EQ(evs.size(), kThreads * (kPerThread + 1u));
  // Within each pid (one recording thread each), order is by seq.
  for (std::size_t i = 1; i < evs.size(); ++i) {
    ASSERT_LE(evs[i - 1].pid, evs[i].pid);
    if (evs[i - 1].pid == evs[i].pid) {
      ASSERT_LT(evs[i - 1].seq, evs[i].seq);
    }
  }
}

TEST(Tracer, EventKindNamesAreUnique) {
  const EventKind all[] = {
      EventKind::GateAllow,       EventKind::GateBlock,
      EventKind::AloProbe,        EventKind::VcAlloc,
      EventKind::VcRelease,       EventKind::DeadlockDetect,
      EventKind::RecoveryReinject, EventKind::QueueEnqueue,
      EventKind::QueueDequeue,    EventKind::PointBegin,
      EventKind::PointEnd,
  };
  std::vector<std::string> names;
  for (const EventKind k : all) {
    names.emplace_back(event_kind_name(k));
    EXPECT_FALSE(names.back().empty());
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(Tracer, ChromeTraceIsValidJson) {
  Tracer t(64);
  t.begin_point(0, "none @ 0.4");
  t.record(10, EventKind::GateBlock, 7, 0, 16, 120);
  t.record(11, EventKind::VcAlloc, 21, 1, 0, 5);
  t.record(12, EventKind::DeadlockDetect, 7, 0, 16, 5);
  t.end_point(0, 500);

  std::ostringstream os;
  t.write_chrome_trace(os);
  std::string err;
  const auto doc = util::json_parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;

  const util::JsonValue* events = doc->find("traceEvents");
  ASSERT_TRUE(events && events->is_array());
  bool saw_process_name = false;
  bool saw_point_span = false;
  bool saw_instant = false;
  for (const util::JsonValue& e : events->array) {
    const util::JsonValue* ph = e.find("ph");
    ASSERT_TRUE(ph && ph->is_string());
    if (ph->str == "M" && e.find("name")->str == "process_name") {
      saw_process_name = true;
      EXPECT_EQ(e.at_path("args.name")->str, "none @ 0.4");
    }
    if (ph->str == "X") saw_point_span = true;
    if (ph->str == "i") saw_instant = true;
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_point_span);
  EXPECT_TRUE(saw_instant);
}

TEST(Tracer, ChromeTraceReportsDrops) {
  Tracer t(2);
  t.begin_point(0, "p");
  for (int i = 0; i < 50; ++i) {
    t.record(static_cast<std::uint64_t>(i), EventKind::GateAllow, 0);
  }
  t.end_point(0, 50);
  EXPECT_GT(t.events_dropped(), 0u);

  std::ostringstream os;
  t.write_chrome_trace(os);
  std::string err;
  const auto doc = util::json_parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->find("traceEvents")->is_array());
}

}  // namespace
}  // namespace wormsim::obs
