#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wormsim::obs {
namespace {

/// Restores the process-wide level so tests cannot leak into each other.
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
}

TEST(Log, ParseRejectsUnknownNames) {
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW(parse_log_level(""), std::invalid_argument);
  EXPECT_THROW(parse_log_level("INFO "), std::invalid_argument);
}

TEST(Log, NamesRoundTrip) {
  for (const LogLevel lv : {LogLevel::Error, LogLevel::Warn, LogLevel::Info,
                            LogLevel::Debug}) {
    EXPECT_EQ(parse_log_level(log_level_name(lv)), lv);
  }
}

TEST(Log, EnabledFollowsThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  EXPECT_TRUE(log_enabled(LogLevel::Error));
  EXPECT_TRUE(log_enabled(LogLevel::Warn));
  EXPECT_FALSE(log_enabled(LogLevel::Info));
  EXPECT_FALSE(log_enabled(LogLevel::Debug));

  set_log_level(LogLevel::Debug);
  EXPECT_TRUE(log_enabled(LogLevel::Debug));

  set_log_level(LogLevel::Error);
  EXPECT_FALSE(log_enabled(LogLevel::Warn));
}

TEST(Log, FilteredMessagesAreDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  // Nothing observable to assert beyond "does not crash": the message
  // must be formatted-and-discarded without touching stderr state.
  logf(LogLevel::Debug, "dropped %d %s\n", 42, "entirely");
  logf(LogLevel::Info, "also dropped\n");
}

}  // namespace
}  // namespace wormsim::obs
