// Golden determinism regression: a fixed configuration and seed must
// produce bit-identical aggregate results across refactors. If a code
// change intentionally alters simulation behaviour (timing model, RNG,
// phase order), update the constants below and note it in the change
// description — silent drift is what this test exists to catch.
#include <gtest/gtest.h>

#include "config/presets.hpp"

namespace wormsim {
namespace {

TEST(Golden, SmallUniformRunFingerprint) {
  config::SimConfig cfg = config::small_base();
  cfg.workload.offered_flits_per_node_cycle = 0.5;
  cfg.sim.limiter.kind = core::LimiterKind::ALO;
  cfg.protocol.warmup = 1000;
  cfg.protocol.measure = 4000;
  cfg.protocol.drain_max = 4000;
  cfg.seed = 0xC0FFEE;

  auto sim = config::build_simulator(cfg);
  const auto r = sim->run(cfg.protocol);

  // Structural facts that must never drift silently.
  EXPECT_TRUE(r.fully_drained);
  EXPECT_EQ(r.deadlock_detections, 0u);

  // Exact fingerprint of this configuration (updated 2026-07: initial
  // release baseline).
  EXPECT_EQ(r.messages_generated, 10255u);
  EXPECT_EQ(r.measured_generated, 8119u);
  EXPECT_EQ(r.measured_delivered, 8119u);
  EXPECT_NEAR(r.latency_mean, 47.3, 2.0);
  EXPECT_NEAR(r.accepted_flits_per_node_cycle, 0.5, 0.01);
}

TEST(Golden, RerunIsBitIdentical) {
  config::SimConfig cfg = config::small_base();
  cfg.workload.offered_flits_per_node_cycle = 0.7;
  cfg.protocol.warmup = 500;
  cfg.protocol.measure = 2000;
  cfg.protocol.drain_max = 3000;
  const auto a = config::run_experiment(cfg);
  const auto b = config::run_experiment(cfg);
  EXPECT_EQ(a.messages_generated, b.messages_generated);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.deadlock_detections, b.deadlock_detections);
  EXPECT_DOUBLE_EQ(a.latency_mean, b.latency_mean);
  EXPECT_DOUBLE_EQ(a.latency_stddev, b.latency_stddev);
  EXPECT_DOUBLE_EQ(a.accepted_flits_per_node_cycle,
                   b.accepted_flits_per_node_cycle);
}

}  // namespace
}  // namespace wormsim
