// End-to-end validation of the machine-readable telemetry surface: a
// FAST-sized sweep with a tracer attached must emit one schema-valid
// JSONL record per sweep point plus a summary, the records must be
// deterministic for a fixed seed across --jobs counts (modulo the
// quarantined "perf"/"trace" sections), the Chrome trace export must be
// valid JSON, and the spatial capture must produce parseable CSVs.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "harness/sweep.hpp"
#include "harness/telemetry.hpp"
#include "obs/tracer.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace wormsim::harness {
namespace {

config::SimConfig telemetry_base() {
  config::SimConfig cfg = config::small_base();
  cfg.protocol.warmup = 200;
  cfg.protocol.measure = 400;
  cfg.protocol.drain_max = 600;
  cfg.seed = 0x0B5E11E7;
  return cfg;
}

SweepSpec telemetry_spec(unsigned jobs, obs::Tracer* tracer) {
  SweepSpec spec;
  spec.base = telemetry_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.1, 0.6, 1.2};
  spec.jobs = jobs;
  spec.tracer = tracer;
  return spec;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Telemetry text for one full sweep (runs the simulations).
std::string run_and_serialize(unsigned jobs) {
  obs::Tracer tracer(1u << 10);
  SweepSpec spec = telemetry_spec(jobs, &tracer);
  metrics::SweepStats stats;
  spec.stats = &stats;
  const auto points = run_sweep(spec);
  std::ostringstream os;
  write_sweep_telemetry(os, spec, points, &stats);
  return os.str();
}

TEST(Telemetry, OneSchemaValidRecordPerPointPlusSummary) {
  obs::Tracer tracer(1u << 12);
  SweepSpec spec = telemetry_spec(1, &tracer);
  metrics::SweepStats stats;
  spec.stats = &stats;
  const auto points = run_sweep(spec);
  ASSERT_EQ(points.size(), 6u);

  std::ostringstream os;
  write_sweep_telemetry(os, spec, points, &stats);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), points.size() + 1);

  for (std::size_t i = 0; i < points.size(); ++i) {
    std::string err;
    const auto rec = util::json_parse(lines[i], &err);
    ASSERT_TRUE(rec.has_value()) << "line " << i << ": " << err;
    ASSERT_TRUE(rec->is_object());
    EXPECT_EQ(rec->find("schema")->str, kTelemetrySchema);
    EXPECT_EQ(rec->find("kind")->str, "point");
    EXPECT_DOUBLE_EQ(rec->find("point")->number, static_cast<double>(i));
    EXPECT_EQ(rec->find("mechanism")->str,
              core::limiter_name(points[i].limiter));
    EXPECT_DOUBLE_EQ(rec->find("offered")->number, points[i].offered);
    // Config echo carries the per-point derived seed, not the base seed.
    EXPECT_DOUBLE_EQ(
        rec->at_path("config.seed")->number,
        static_cast<double>(util::derive_stream_seed(spec.base.seed, i)));
    EXPECT_EQ(rec->at_path("config.k")->number, spec.base.k);
    // Result section mirrors the SimResult for this point.
    EXPECT_DOUBLE_EQ(rec->at_path("result.total_cycles")->number,
                     static_cast<double>(points[i].result.total_cycles));
    EXPECT_DOUBLE_EQ(rec->at_path("result.accepted_flits_per_node_cycle")
                         ->number,
                     points[i].result.accepted_flits_per_node_cycle);
    EXPECT_EQ(rec->at_path("result.saturated")->boolean,
              points[i].result.saturated);
    // Wall-clock-dependent fields live only under "perf".
    ASSERT_NE(rec->find("perf"), nullptr);
    EXPECT_NE(rec->at_path("perf.cycles_per_second"), nullptr);
    EXPECT_NE(rec->at_path("perf.wall_seconds"), nullptr);
  }

  std::string err;
  const auto summary = util::json_parse(lines.back(), &err);
  ASSERT_TRUE(summary.has_value()) << err;
  EXPECT_EQ(summary->find("kind")->str, "summary");
  EXPECT_EQ(summary->find("schema")->str, kTelemetrySchema);
  EXPECT_DOUBLE_EQ(summary->find("points")->number, 6.0);
  EXPECT_DOUBLE_EQ(summary->find("simulations")->number, 6.0);
  EXPECT_GT(summary->find("sim_cycles")->number, 0.0);
  // The tracer was attached, so drop accounting must be present.
  ASSERT_NE(summary->find("trace"), nullptr);
  EXPECT_GT(summary->at_path("trace.events_recorded")->number, 0.0);
}

TEST(Telemetry, DeterministicAcrossJobCounts) {
  const auto strip_volatile = [](std::string line) {
    // "perf" (and in the summary, the jobs-dependent "trace" block that
    // follows it) is always the record's tail; everything before it is
    // the reproducible part...
    const std::size_t pos = line.find(",\"perf\":");
    if (pos != std::string::npos) line.resize(pos);
    // ...except the summary's worker-count echo, which differs by
    // construction here.
    const std::size_t jobs = line.find("\"jobs\":");
    if (jobs != std::string::npos) {
      std::size_t end = jobs + 7;
      while (end < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      line.erase(jobs, end - jobs);
    }
    return line;
  };
  const auto serial = lines_of(run_and_serialize(1));
  const auto parallel = lines_of(run_and_serialize(2));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(strip_volatile(serial[i]), strip_volatile(parallel[i]))
        << "record " << i;
  }
}

TEST(Telemetry, SweepCsvUnchangedByInstrumentation) {
  metrics::SweepStats stats;
  SweepSpec plain = telemetry_spec(2, nullptr);
  const auto base_points = run_sweep(plain);

  obs::Tracer tracer(1u << 10);
  SweepSpec traced = telemetry_spec(2, &tracer);
  traced.stats = &stats;
  const auto traced_points = run_sweep(traced);
  EXPECT_GT(tracer.events_recorded(), 0u);

  std::ostringstream plain_csv;
  write_sweep_csv(plain_csv, base_points);
  std::ostringstream traced_csv;
  write_sweep_csv(traced_csv, traced_points);
  EXPECT_EQ(plain_csv.str(), traced_csv.str());
}

TEST(Telemetry, ChromeTraceFromSweepIsValidJson) {
  obs::Tracer tracer(1u << 12);
  SweepSpec spec = telemetry_spec(1, &tracer);
  run_sweep(spec);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  std::string err;
  const auto doc = util::json_parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const util::JsonValue* events = doc->find("traceEvents");
  ASSERT_TRUE(events && events->is_array());
  EXPECT_FALSE(events->array.empty());
  EXPECT_EQ(doc->at_path("otherData.schema")->str, "wormsim.trace/1");
}

TEST(Telemetry, CaptureSpatialWritesParseableCsvs) {
  const std::string prefix = ::testing::TempDir() + "wormsim_spatial_test";
  config::SimConfig base = telemetry_base();
  capture_spatial(base, core::LimiterKind::ALO, 1.2, prefix);

  const topo::KAryNCube topo(base.k, base.n);
  const struct {
    const char* suffix;
    const char* header;
    std::size_t rows;
  } tables[] = {
      {"_channels.csv",
       "link,src,dst,dim,dir,src_x,src_y,flits_carried,utilization,"
       "mean_busy_vcs",
       static_cast<std::size_t>(topo.num_links())},
      {"_nodes.csv",
       "node,x,y,coords,injected_msgs,ejected_flits,ejected_flits_per_cycle,"
       "queue_avg,queue_max",
       topo.num_nodes()},
      {"_vc_occupancy.csv", "link,src,dst,dim,dir,busy_vcs,samples",
       static_cast<std::size_t>(topo.num_links()) *
           (base.sim.net.num_vcs + 1)},
  };
  for (const auto& t : tables) {
    const std::string path = prefix + t.suffix;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, t.header) << path;
    std::size_t rows = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) ++rows;
    }
    EXPECT_EQ(rows, t.rows) << path;
    in.close();
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace wormsim::harness
