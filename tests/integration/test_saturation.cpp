// Integration: the paper's Figure-1 phenomenology on a reduced-scale
// network (8-ary 2-cube keeps runtimes CI-friendly; the full 512-node
// experiments live in bench/).
#include <gtest/gtest.h>

#include "config/presets.hpp"

namespace wormsim {
namespace {

config::SimConfig test_base() {
  config::SimConfig cfg = config::small_base();
  cfg.protocol.warmup = 3000;
  cfg.protocol.measure = 8000;
  cfg.protocol.drain_max = 8000;
  return cfg;
}

metrics::SimResult run_at(double offered, core::LimiterKind limiter,
                          config::SimConfig cfg = test_base()) {
  cfg.workload.offered_flits_per_node_cycle = offered;
  cfg.sim.limiter.kind = limiter;
  return config::run_experiment(cfg);
}

TEST(Saturation, LowLoadUnaffectedByMechanism) {
  // Paper §4.2: "with low traffic rates message injection limitation
  // mechanisms do not impose any restriction".
  const auto none = run_at(0.2, core::LimiterKind::None);
  const auto alo = run_at(0.2, core::LimiterKind::ALO);
  EXPECT_NEAR(none.accepted_flits_per_node_cycle, 0.2, 0.02);
  EXPECT_NEAR(alo.accepted_flits_per_node_cycle, 0.2, 0.02);
  EXPECT_NEAR(alo.latency_mean, none.latency_mean,
              0.05 * none.latency_mean + 2.0);
  EXPECT_FALSE(none.saturated);
  EXPECT_TRUE(none.fully_drained);
}

TEST(Saturation, AcceptedTracksOfferedBelowSaturation) {
  for (const double offered : {0.1, 0.3, 0.5}) {
    const auto r = run_at(offered, core::LimiterKind::None);
    EXPECT_NEAR(r.accepted_flits_per_node_cycle, offered, 0.03) << offered;
    EXPECT_LT(r.deadlock_pct, 0.5) << offered;
  }
}

TEST(Saturation, ThroughputCollapsesWithoutLimitation) {
  // The core motivation (Figure 1): beyond saturation, accepted traffic
  // drops below the peak and latency explodes.
  const auto near_peak = run_at(0.7, core::LimiterKind::None);
  const auto beyond = run_at(1.1, core::LimiterKind::None);
  EXPECT_TRUE(beyond.saturated);
  EXPECT_LT(beyond.accepted_flits_per_node_cycle,
            near_peak.accepted_flits_per_node_cycle * 0.97);
  EXPECT_GT(beyond.latency_mean, near_peak.latency_mean * 5);
  EXPECT_GT(beyond.deadlock_pct, 1.0);
}

TEST(Saturation, AloPreventsTheCollapse) {
  // Paper conclusion: with ALO the performance degradation is removed —
  // accepted traffic stays at (or above) the no-limitation peak even
  // far beyond saturation, and detected deadlocks become negligible.
  const auto none_beyond = run_at(1.1, core::LimiterKind::None);
  const auto alo_beyond = run_at(1.1, core::LimiterKind::ALO);
  EXPECT_GT(alo_beyond.accepted_flits_per_node_cycle,
            none_beyond.accepted_flits_per_node_cycle * 1.05);
  EXPECT_LT(alo_beyond.deadlock_pct, 0.6);  // paper: 0.6% worst case
}

TEST(Saturation, AloThroughputStaysFlatBeyondSaturation) {
  const auto at_09 = run_at(0.9, core::LimiterKind::ALO);
  const auto at_12 = run_at(1.2, core::LimiterKind::ALO);
  EXPECT_NEAR(at_12.accepted_flits_per_node_cycle,
              at_09.accepted_flits_per_node_cycle,
              0.05 * at_09.accepted_flits_per_node_cycle);
}

TEST(Saturation, DeadlockRateGrowsThenVanishesWithAlo) {
  const auto none = run_at(1.0, core::LimiterKind::None);
  const auto alo = run_at(1.0, core::LimiterKind::ALO);
  EXPECT_GT(none.deadlock_pct, alo.deadlock_pct * 3);
}

TEST(Saturation, PermutationPatternCollapsesHarderThanUniform) {
  // Paper §4.2 reports huge no-limitation deadlock rates for complement
  // traffic. Complement concentrates load on the bisection, so
  // saturation arrives earlier than uniform.
  config::SimConfig cfg = test_base();
  cfg.workload.pattern = traffic::PatternKind::Complement;
  const auto comp = run_at(0.6, core::LimiterKind::None, cfg);
  EXPECT_TRUE(comp.saturated);
  EXPECT_GT(comp.deadlock_pct, 0.5);
  // ALO considerably reduces detections (paper §4.2) — the sub-1%
  // figure is only claimed for uniform traffic at full 512-node scale.
  const auto alo = run_at(0.6, core::LimiterKind::ALO, cfg);
  EXPECT_LT(alo.deadlock_pct, comp.deadlock_pct / 2);
  EXPECT_GE(alo.accepted_flits_per_node_cycle,
            comp.accepted_flits_per_node_cycle);
}

TEST(Saturation, Figure2ProbeTrendsDownWithLoad) {
  // Figure 2: the fraction of routing occurrences satisfying the ALO
  // conditions decreases as traffic grows.
  const auto low = run_at(0.1, core::LimiterKind::None);
  const auto high = run_at(0.7, core::LimiterKind::None);
  EXPECT_GT(low.probe.pct_either(), 95.0);
  EXPECT_LT(high.probe.pct_either(), low.probe.pct_either());
  // Rule (a) alone is satisfied less often than (a OR b).
  EXPECT_LE(high.probe.pct_a(), high.probe.pct_either());
}

}  // namespace
}  // namespace wormsim
