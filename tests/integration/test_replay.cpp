// Trace replay equivalence: replaying a recorded workload trace must
// reproduce the live simulation exactly.
#include <gtest/gtest.h>

#include "harness/replay.hpp"
#include "sim/utilization.hpp"

namespace wormsim {
namespace {

sim::SimulatorConfig sim_cfg() {
  sim::SimulatorConfig cfg;
  cfg.detection.threshold = 32;
  return cfg;
}

traffic::WorkloadConfig workload_cfg(double offered) {
  traffic::WorkloadConfig cfg;
  cfg.offered_flits_per_node_cycle = offered;
  cfg.length.fixed = 16;
  return cfg;
}

TEST(Replay, MatchesLiveWorkloadExactly) {
  const topo::KAryNCube topo(4, 2);
  const auto wcfg = workload_cfg(0.6);
  constexpr std::uint64_t kCycles = 4000;

  // Live run.
  auto live_workload = std::make_unique<traffic::Workload>(topo, wcfg, 7);
  sim::Simulator live(topo, sim_cfg(), std::move(live_workload));
  live.step_cycles(kCycles);

  // Recorded + replayed run.
  const traffic::Trace trace =
      traffic::Trace::from_workload(topo, wcfg, 7, kCycles);
  sim::Simulator replay(topo, sim_cfg(), nullptr);
  harness::TraceReplayer replayer(trace);
  while (replay.cycle() < kCycles) replayer.pump_and_step(replay);

  EXPECT_TRUE(replayer.exhausted());
  const auto rl = live.collector().finish(16);
  const auto rr = replay.collector().finish(16);
  EXPECT_EQ(rl.messages_generated, rr.messages_generated);
  EXPECT_EQ(rl.messages_delivered, rr.messages_delivered);
  EXPECT_DOUBLE_EQ(rl.latency_mean, rr.latency_mean);
  EXPECT_EQ(live.total_deadlock_detections(),
            replay.total_deadlock_detections());
  EXPECT_EQ(live.network().flits_in_network(),
            replay.network().flits_in_network());
}

TEST(Replay, RunToCompletionDrains) {
  const topo::KAryNCube topo(4, 2);
  const traffic::Trace trace =
      traffic::Trace::from_workload(topo, workload_cfg(0.3), 9, 1500);
  sim::Simulator sim(topo, sim_cfg(), nullptr);
  harness::TraceReplayer replayer(trace);
  replayer.run_to_completion(sim, 20000);
  EXPECT_EQ(replayer.replayed(), trace.size());
  EXPECT_TRUE(sim.network().quiescent());
  EXPECT_EQ(sim.total_delivered(), trace.size());
}

TEST(Replay, UtilizationCountersMatchLiveRun) {
  const topo::KAryNCube topo(4, 2);
  const auto wcfg = workload_cfg(0.5);
  constexpr std::uint64_t kCycles = 3000;

  auto live_workload = std::make_unique<traffic::Workload>(topo, wcfg, 3);
  sim::Simulator live(topo, sim_cfg(), std::move(live_workload));
  live.step_cycles(kCycles);

  const auto trace = traffic::Trace::from_workload(topo, wcfg, 3, kCycles);
  sim::Simulator replay(topo, sim_cfg(), nullptr);
  harness::TraceReplayer replayer(trace);
  while (replay.cycle() < kCycles) replayer.pump_and_step(replay);

  const auto ul = sim::summarize_utilization(live.network(), kCycles);
  const auto ur = sim::summarize_utilization(replay.network(), kCycles);
  EXPECT_DOUBLE_EQ(ul.mean, ur.mean);
  EXPECT_DOUBLE_EQ(ul.max, ur.max);
}

}  // namespace
}  // namespace wormsim
