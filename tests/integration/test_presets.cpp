// Config presets, validation and the sweep harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "config/presets.hpp"
#include "harness/sweep.hpp"

namespace wormsim {
namespace {

TEST(Presets, PaperBaseMatchesSection41) {
  const auto cfg = config::paper_base();
  EXPECT_EQ(cfg.k, 8u);
  EXPECT_EQ(cfg.n, 3u);
  EXPECT_EQ(topo::KAryNCube(cfg.k, cfg.n).num_nodes(), 512u);
  EXPECT_EQ(cfg.sim.net.num_vcs, 3u);
  EXPECT_EQ(cfg.sim.net.buf_flits, 4u);
  EXPECT_EQ(cfg.sim.net.inj_channels, 4u);
  EXPECT_EQ(cfg.sim.net.eje_channels, 4u);
  EXPECT_EQ(cfg.sim.algorithm, routing::Algorithm::TFAR);
  EXPECT_TRUE(cfg.sim.detection.enabled);
  EXPECT_EQ(cfg.sim.detection.threshold, 32u);
  EXPECT_EQ(cfg.workload.length.fixed, 16u);
  EXPECT_NO_THROW(config::validate(cfg));
}

TEST(Presets, SmallBaseIsValid) {
  EXPECT_NO_THROW(config::validate(config::small_base()));
  EXPECT_EQ(topo::KAryNCube(config::small_base().k, config::small_base().n)
                .num_nodes(),
            64u);
}

TEST(Presets, ValidationCatchesBadConfigs) {
  auto cfg = config::small_base();
  cfg.k = 1;
  EXPECT_THROW(config::validate(cfg), std::invalid_argument);

  cfg = config::small_base();
  cfg.sim.detection.enabled = false;  // TFAR needs recovery
  EXPECT_THROW(config::validate(cfg), std::invalid_argument);

  cfg = config::small_base();
  cfg.sim.algorithm = routing::Algorithm::Duato;
  cfg.sim.detection.enabled = false;  // fine: Duato is deadlock-free
  EXPECT_NO_THROW(config::validate(cfg));

  cfg = config::small_base();
  cfg.sim.net.num_vcs = 2;
  cfg.sim.algorithm = routing::Algorithm::Duato;  // needs >= 3 VCs
  EXPECT_THROW(config::validate(cfg), std::invalid_argument);

  cfg = config::small_base();
  cfg.protocol.measure = 0;
  EXPECT_THROW(config::validate(cfg), std::invalid_argument);
}

TEST(Presets, BuildSimulatorProducesRunnableInstance) {
  auto cfg = config::small_base();
  cfg.workload.offered_flits_per_node_cycle = 0.1;
  auto sim = config::build_simulator(cfg);
  sim->step_cycles(500);
  EXPECT_GT(sim->collector().finish(64).messages_generated, 0u);
}

TEST(Sweep, LoadRange) {
  const auto r = harness::load_range(0.1, 0.5, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r.front(), 0.1);
  EXPECT_DOUBLE_EQ(r.back(), 0.5);
  EXPECT_DOUBLE_EQ(r[2], 0.3);
  EXPECT_EQ(harness::load_range(0.1, 0.5, 1).size(), 1u);
  EXPECT_TRUE(harness::load_range(0.1, 0.5, 0).empty());
}

TEST(Sweep, RunsEveryPointAndEmitsCsv) {
  harness::SweepSpec spec;
  spec.base = config::small_base();
  spec.base.protocol.warmup = 500;
  spec.base.protocol.measure = 1500;
  spec.base.protocol.drain_max = 2000;
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.05, 0.15};
  unsigned seen = 0;
  spec.on_point = [&](const harness::SweepPoint&) { ++seen; };

  const auto points = harness::run_sweep(spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(seen, 4u);
  for (const auto& p : points) {
    EXPECT_GT(p.result.messages_generated, 0u);
  }

  std::ostringstream os;
  harness::write_sweep_csv(os, points);
  const std::string out = os.str();
  EXPECT_NE(out.find("mechanism,offered"), std::string::npos);
  EXPECT_NE(out.find("none,"), std::string::npos);
  EXPECT_NE(out.find("alo,"), std::string::npos);
  // Header + 4 data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Sweep, ReplicatedSweepAggregatesRuns) {
  harness::SweepSpec spec;
  spec.base = config::small_base();
  spec.base.protocol.warmup = 500;
  spec.base.protocol.measure = 1500;
  spec.base.protocol.drain_max = 2000;
  spec.limiters = {core::LimiterKind::ALO};
  spec.offered_loads = {0.2};
  const auto points = harness::run_replicated_sweep(spec, 3);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].replications, 3u);
  EXPECT_EQ(points[0].latency.count(), 3u);
  // Independent seeds: some run-to-run spread, but a stable mean.
  EXPECT_GT(points[0].latency.sample_variance(), 0.0);
  EXPECT_NEAR(points[0].accepted.mean(), 0.2, 0.02);

  std::ostringstream os;
  harness::write_replicated_csv(os, points);
  EXPECT_NE(os.str().find("replications"), std::string::npos);
  EXPECT_NE(os.str().find("alo,"), std::string::npos);
}

TEST(Sweep, ReplicatedSweepZeroReplicationsEmpty) {
  harness::SweepSpec spec;
  spec.base = config::small_base();
  spec.limiters = {core::LimiterKind::ALO};
  spec.offered_loads = {0.2};
  EXPECT_TRUE(harness::run_replicated_sweep(spec, 0).empty());
}

TEST(Sweep, CommonFlagsOverrideConfig) {
  const char* argv[] = {"prog",          "--k=4",        "--n=2",
                        "--vcs=2",       "--msg-len=32", "--pattern=butterfly",
                        "--routing=dor", "--seed=99",    "--measure=1234"};
  util::ArgParser args(9, argv);
  auto cfg = config::paper_base();
  harness::apply_common_flags(cfg, args);
  EXPECT_EQ(cfg.k, 4u);
  EXPECT_EQ(cfg.n, 2u);
  EXPECT_EQ(cfg.sim.net.num_vcs, 2u);
  EXPECT_EQ(cfg.workload.length.fixed, 32u);
  EXPECT_EQ(cfg.workload.pattern, traffic::PatternKind::Butterfly);
  EXPECT_EQ(cfg.sim.algorithm, routing::Algorithm::DOR);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.protocol.measure, 1234u);
}

TEST(Sweep, DescribeMentionsKeyParameters) {
  const auto s = harness::describe(config::paper_base());
  EXPECT_NE(s.find("8-ary 3-cube"), std::string::npos);
  EXPECT_NE(s.find("512 nodes"), std::string::npos);
  EXPECT_NE(s.find("tfar"), std::string::npos);
}

}  // namespace
}  // namespace wormsim
