// End-to-end validation of the online statistics engine inside the
// sweep harness: telemetry v2 and the timeseries stream must be
// byte-identical across --jobs counts (histograms and detector verdicts
// included), attaching the engine must never change the sweep CSV, and
// the saturation-onset detector must reproduce the offline knee on the
// FAST fig05 operating point — flagging the unlimited network within
// one sweep step of where accepted throughput visibly falls away from
// offered, and never flagging ALO.
#include <gtest/gtest.h>

#include <cctype>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "harness/sweep.hpp"
#include "harness/telemetry.hpp"
#include "metrics/spatial.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace wormsim::harness {
namespace {

config::SimConfig online_base() {
  config::SimConfig cfg = config::small_base();
  cfg.protocol.warmup = 200;
  cfg.protocol.measure = 400;
  cfg.protocol.drain_max = 600;
  cfg.seed = 0x0A11E57A7;
  return cfg;
}

SweepSpec online_spec(unsigned jobs) {
  SweepSpec spec;
  spec.base = online_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.1, 0.6, 1.2};
  spec.jobs = jobs;
  spec.online = true;
  spec.online_config.window_cycles = 128;
  return spec;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Drop the volatile tail ("perf" onward) and the summary's worker-count
/// echo — same quarantine as the telemetry determinism test.
std::string strip_volatile(std::string line) {
  const std::size_t pos = line.find(",\"perf\":");
  if (pos != std::string::npos) line.resize(pos);
  const std::size_t jobs = line.find("\"jobs\":");
  if (jobs != std::string::npos) {
    std::size_t end = jobs + 7;
    while (end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    line.erase(jobs, end - jobs);
  }
  return line;
}

TEST(OnlineSweep, TelemetryAndTimeseriesDeterministicAcrossJobCounts) {
  std::string telemetry[2], timeseries[2];
  const unsigned job_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    SweepSpec spec = online_spec(job_counts[i]);
    const auto points = run_sweep(spec);
    std::ostringstream tel, ts;
    write_sweep_telemetry(tel, spec, points, nullptr);
    write_sweep_timeseries(ts, spec, points);
    telemetry[i] = tel.str();
    timeseries[i] = ts.str();
  }

  // The timeseries stream carries no wall-clock fields at all, so it is
  // byte-identical with nothing stripped.
  EXPECT_EQ(timeseries[0], timeseries[1]);

  const auto serial = lines_of(telemetry[0]);
  const auto parallel = lines_of(telemetry[1]);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(strip_volatile(serial[i]), strip_volatile(parallel[i]))
        << "record " << i;
  }
}

/// `wormsim.timeseries/1` byte-identity across the shards x jobs
/// matrix: the sharded core samples OnlineStats through per-lane
/// integer partial sums and batched ejection counts, and spatial
/// metrics through an element-local parallel sweep — all folded in
/// associative operations — so the serialized stream must not differ
/// by a single byte from the sequential sampler's. The shard axis runs
/// through run_experiment directly (the sweep harness clamps shard
/// requests on small hosts); the jobs axis runs through run_sweep, and
/// the two are cross-checked against each other.
TEST(OnlineSweep, TimeseriesByteIdenticalAcrossShardsAndJobs) {
  config::SimConfig base = online_base();
  base.k = 16;  // 256 nodes: genuine 2- and 4-way shard partitions
  SweepSpec spec;
  spec.base = base;
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.1, 1.2};
  spec.online = true;
  spec.online_config.window_cycles = 128;

  const topo::KAryNCube topo(base.k, base.n);
  std::string timeseries[2], node_csv[2], channel_csv[2];
  const unsigned shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    std::vector<SweepPoint> points;
    metrics::SpatialMetrics spatial(
        topo.num_nodes(), topo.num_nodes() * topo.num_channels(),
        base.sim.net.num_vcs);
    std::uint64_t stream = 0;
    std::uint64_t cycles = 0;
    for (const auto limiter : spec.limiters) {
      for (const double offered : spec.offered_loads) {
        config::SimConfig cfg = base;
        cfg.sim.limiter.kind = limiter;
        cfg.workload.offered_flits_per_node_cycle = offered;
        cfg.seed = util::derive_stream_seed(base.seed, stream++);
        cfg.sim.shards = shard_counts[i];
        auto online = std::make_shared<metrics::OnlineStats>(
            topo.num_nodes(), spec.online_config);
        config::RunHooks hooks;
        hooks.online = online.get();
        hooks.spatial = &spatial;
        const metrics::SimResult r = config::run_experiment(cfg, hooks);
        cycles += r.total_cycles;
        points.push_back(SweepPoint{limiter, offered, r, online});
      }
    }
    std::ostringstream ts, nodes, channels;
    write_sweep_timeseries(ts, spec, points);
    spatial.write_node_csv(nodes, topo, cycles);
    spatial.write_channel_csv(channels, topo, cycles);
    timeseries[i] = ts.str();
    node_csv[i] = nodes.str();
    channel_csv[i] = channels.str();
  }
  EXPECT_EQ(timeseries[0], timeseries[1]);
  EXPECT_EQ(node_csv[0], node_csv[1]);
  EXPECT_EQ(channel_csv[0], channel_csv[1]);

  // Jobs axis via the harness, with a sharded base request (the
  // oversubscription clamp may shrink it — bit-exactness at any shard
  // count means the stream still cannot change).
  std::string by_jobs[2];
  const unsigned job_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    SweepSpec s = spec;
    s.base.sim.shards = 2;
    s.jobs = job_counts[i];
    const auto points = run_sweep(s);
    std::ostringstream ts;
    write_sweep_timeseries(ts, s, points);
    by_jobs[i] = ts.str();
  }
  EXPECT_EQ(by_jobs[0], by_jobs[1]);
  // The two halves of the matrix agree with each other too: same grid,
  // same seeds, so the streams must be the same bytes.
  EXPECT_EQ(by_jobs[0], timeseries[0]);
}

TEST(OnlineSweep, PointRecordsCarryHistogramAndVerdict) {
  SweepSpec spec = online_spec(1);
  const auto points = run_sweep(spec);
  ASSERT_EQ(points.size(), 6u);
  std::ostringstream os;
  write_sweep_telemetry(os, spec, points, nullptr);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), points.size() + 1);

  for (std::size_t i = 0; i < points.size(); ++i) {
    std::string err;
    const auto rec = util::json_parse(lines[i], &err);
    ASSERT_TRUE(rec.has_value()) << "line " << i << ": " << err;
    ASSERT_NE(rec->find("latency_hist"), nullptr) << "line " << i;
    EXPECT_EQ(rec->at_path("latency_hist.count")->number,
              static_cast<double>(points[i].online->latency_hist().count()));
    EXPECT_EQ(rec->at_path("latency_hist.p99")->number,
              static_cast<double>(points[i].online->latency_hist()
                                      .quantile(0.99)));
    ASSERT_NE(rec->find("saturation"), nullptr) << "line " << i;
    EXPECT_EQ(rec->at_path("saturation.saturated")->boolean,
              points[i].online->saturated());
    EXPECT_EQ(rec->at_path("saturation.windows")->number,
              static_cast<double>(points[i].online->windows().size()));
  }

  // Summary gains the per-mechanism onset map (null when never flagged).
  std::string err;
  const auto summary = util::json_parse(lines.back(), &err);
  ASSERT_TRUE(summary.has_value()) << err;
  ASSERT_NE(summary->find("saturation_load"), nullptr);
  EXPECT_NE(summary->at_path("saturation_load.none"), nullptr);
  EXPECT_NE(summary->at_path("saturation_load.alo"), nullptr);
}

TEST(OnlineSweep, SweepCsvUnchangedByOnlineStats) {
  SweepSpec plain = online_spec(2);
  plain.online = false;
  const auto base_points = run_sweep(plain);

  SweepSpec instrumented = online_spec(2);
  instrumented.online_config.profile_period = 64;
  const auto online_points = run_sweep(instrumented);
  ASSERT_NE(online_points[0].online, nullptr);
  EXPECT_FALSE(online_points[0].online->windows().empty());

  std::ostringstream plain_csv, online_csv;
  write_sweep_csv(plain_csv, base_points);
  write_sweep_csv(online_csv, online_points);
  EXPECT_EQ(plain_csv.str(), online_csv.str());
}

TEST(OnlineSweep, TimeseriesWindowRecordsAreSchemaValid) {
  SweepSpec spec = online_spec(1);
  const auto points = run_sweep(spec);
  std::ostringstream os;
  write_sweep_timeseries(os, spec, points);
  const auto lines = lines_of(os.str());
  ASSERT_GT(lines.size(), 1u);

  std::size_t windows = 0;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    std::string err;
    const auto rec = util::json_parse(lines[i], &err);
    ASSERT_TRUE(rec.has_value()) << "line " << i << ": " << err;
    EXPECT_EQ(rec->find("schema")->str, kTimeseriesSchema);
    EXPECT_EQ(rec->find("kind")->str, "window");
    EXPECT_NE(rec->find("mechanism"), nullptr);
    EXPECT_NE(rec->find("start_cycle"), nullptr);
    EXPECT_NE(rec->find("accepted_flits_node_cycle"), nullptr);
    EXPECT_NE(rec->find("free_vc_fraction"), nullptr);
    EXPECT_NE(rec->find("saturating"), nullptr);
    ++windows;
  }
  std::string err;
  const auto summary = util::json_parse(lines.back(), &err);
  ASSERT_TRUE(summary.has_value()) << err;
  EXPECT_EQ(summary->find("kind")->str, "summary");
  EXPECT_EQ(summary->find("windows")->number, static_cast<double>(windows));
}

/// The detector-vs-offline-knee golden on the FAST fig05 operating
/// point (8-ary 2-cube, uniform, 16-flit messages, bench windows). The
/// offline knee is the first load where the unlimited network's
/// accepted throughput falls below 90% of offered — the criterion a
/// human would read off the printed throughput curve. The online
/// detector, which sees none of the other loads, must land within one
/// sweep step of it, and must never flag ALO (whose whole point is to
/// hold the network out of saturation).
TEST(OnlineSweep, DetectorMatchesOfflineKneeOnFastFig05) {
  SweepSpec spec;
  spec.base = config::paper_base();
  spec.base.n = 2;
  spec.base.protocol.warmup = 3000;
  spec.base.protocol.measure = 8000;
  spec.base.protocol.drain_max = 8000;
  spec.base.workload.pattern = traffic::PatternKind::Uniform;
  spec.base.workload.length.fixed = 16;
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = load_range(0.1, 1.2, 7);
  spec.jobs = 4;
  spec.online = true;
  const auto points = run_sweep(spec);

  const double step = spec.offered_loads[1] - spec.offered_loads[0];
  std::optional<double> offline_knee, detected;
  for (const auto& p : points) {
    if (p.limiter == core::LimiterKind::None) {
      if (!offline_knee &&
          p.result.accepted_flits_per_node_cycle < 0.9 * p.offered) {
        offline_knee = p.offered;
      }
      if (!detected && p.online->saturated()) detected = p.offered;
    } else {
      EXPECT_FALSE(p.online->saturated())
          << "ALO flagged saturated at offered " << p.offered;
    }
  }
  ASSERT_TRUE(offline_knee.has_value())
      << "unlimited network never saturated — operating point too small";
  ASSERT_TRUE(detected.has_value())
      << "detector never latched on the unlimited network";
  EXPECT_NEAR(*detected, *offline_knee, step + 1e-9)
      << "detected onset more than one sweep step from the offline knee";

  // The detector also stamps where in the run saturation began: past
  // warmup ramp but within the simulated horizon.
  for (const auto& p : points) {
    if (p.limiter == core::LimiterKind::None && p.online->saturated()) {
      ASSERT_TRUE(p.online->onset_cycle().has_value());
      EXPECT_LT(*p.online->onset_cycle(), p.result.total_cycles);
    }
  }
}

}  // namespace
}  // namespace wormsim::harness
