// Parallel sweep engine: the CSV a sweep produces must be byte-for-byte
// identical for every job count (the whole point of per-point seed
// streams and slot-indexed result collection), replicated statistics
// must not depend on completion order, and the derived per-point RNG
// streams must be decorrelated.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/sweep.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wormsim {
namespace {

config::SimConfig tiny_base() {
  config::SimConfig cfg = config::small_base();
  cfg.protocol.warmup = 300;
  cfg.protocol.measure = 1000;
  cfg.protocol.drain_max = 1500;
  cfg.seed = 0xFEEDFACE;
  return cfg;
}

harness::SweepSpec tiny_spec() {
  harness::SweepSpec spec;
  spec.base = tiny_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.05, 0.15, 0.25};
  return spec;
}

std::string sweep_csv(unsigned jobs) {
  harness::SweepSpec spec = tiny_spec();
  spec.jobs = jobs;
  std::ostringstream os;
  harness::write_sweep_csv(os, harness::run_sweep(spec));
  return os.str();
}

TEST(ParallelSweep, GoldenCsvIsByteIdenticalAcrossJobCounts) {
  const std::string serial = sweep_csv(1);
  const std::string four = sweep_csv(4);
  const std::string hw = sweep_csv(std::max(
      1u, std::thread::hardware_concurrency()));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hw);
}

TEST(ParallelSweep, StatsReportTimingAndJobCount) {
  harness::SweepSpec spec = tiny_spec();
  spec.jobs = 2;
  metrics::SweepStats stats;
  spec.stats = &stats;
  const auto points = harness::run_sweep(spec);
  EXPECT_EQ(stats.points, points.size());
  EXPECT_EQ(stats.simulations, points.size());
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.points_per_second(), 0.0);
  EXPECT_NE(stats.summary().find("points"), std::string::npos);
}

TEST(ParallelSweep, ProgressCallbackIsSerializedAndCoversEveryPoint) {
  harness::SweepSpec spec = tiny_spec();
  spec.jobs = 4;
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::atomic<unsigned> seen{0};
  spec.on_point = [&](const harness::SweepPoint&) {
    if (inside.fetch_add(1) != 0) overlapped = true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    ++seen;
    inside.fetch_sub(1);
  };
  const auto points = harness::run_sweep(spec);
  EXPECT_EQ(seen.load(), points.size());
  EXPECT_FALSE(overlapped.load());
}

TEST(ParallelSweep, ReplicatedStatsIdenticalAcrossJobCounts) {
  // Under jobs > 1 replications finish in arbitrary order; the harness
  // must fold per-replication results in index order so the reported
  // mean/sd are exactly those of the serial engine (Welford folds are
  // order-sensitive in the last float bits).
  auto run = [](unsigned jobs) {
    harness::SweepSpec spec = tiny_spec();
    spec.limiters = {core::LimiterKind::ALO};
    spec.offered_loads = {0.1, 0.2};
    spec.jobs = jobs;
    return harness::run_replicated_sweep(spec, 4);
  };
  const auto serial = run(1);
  for (const unsigned jobs : {2u, 4u, 5u}) {
    const auto parallel = run(jobs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel[i].latency.mean(), serial[i].latency.mean());
      EXPECT_DOUBLE_EQ(parallel[i].latency.sample_variance(),
                       serial[i].latency.sample_variance());
      EXPECT_DOUBLE_EQ(parallel[i].accepted.mean(),
                       serial[i].accepted.mean());
      EXPECT_DOUBLE_EQ(parallel[i].accepted.sample_variance(),
                       serial[i].accepted.sample_variance());
      EXPECT_DOUBLE_EQ(parallel[i].deadlock_pct.mean(),
                       serial[i].deadlock_pct.mean());
    }
    std::ostringstream a, b;
    harness::write_replicated_csv(a, serial);
    harness::write_replicated_csv(b, parallel);
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(ParallelSweep, DerivedStreamsDoNotCollide) {
  // A 10x10 sweep grid with 5 replications = 500 per-simulation
  // streams; every derived seed and every initial generator output must
  // be pairwise distinct.
  const std::uint64_t base = 20000501;  // the paper preset's seed
  constexpr std::uint64_t kStreams = 10 * 10 * 5;
  std::set<std::uint64_t> seeds;
  std::set<std::uint64_t> first_outputs;
  for (std::uint64_t i = 0; i < kStreams; ++i) {
    const std::uint64_t seed = util::derive_stream_seed(base, i);
    seeds.insert(seed);
    first_outputs.insert(util::Rng(seed).bits());
  }
  EXPECT_EQ(seeds.size(), kStreams);
  EXPECT_EQ(first_outputs.size(), kStreams);
  // Neighbouring base seeds must not alias each other's streams.
  EXPECT_EQ(seeds.count(util::derive_stream_seed(base + 1, 0)), 0u);
}

TEST(ParallelSweep, DerivedStreamFirstOutputsLookUniform) {
  // Chi-square sanity check: the first uniform01() draw of 2000 derived
  // streams, 10 equi-probable bins, 9 degrees of freedom. 33.7 is the
  // p = 0.0001 critical value — a generous bound that still catches
  // any systematic correlation between stream index and first output.
  constexpr int kStreams = 2000;
  constexpr int kBins = 10;
  int bins[kBins] = {};
  for (int i = 0; i < kStreams; ++i) {
    util::Rng rng(util::derive_stream_seed(0xABCDEF,
                                           static_cast<std::uint64_t>(i)));
    const double u = rng.uniform01();
    const int b = std::min(kBins - 1, static_cast<int>(u * kBins));
    ++bins[b];
  }
  const double expected = static_cast<double>(kStreams) / kBins;
  double chi2 = 0.0;
  for (const int b : bins) {
    const double d = static_cast<double>(b) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 33.7) << "first outputs of derived streams look biased";
}

TEST(ParallelSweep, SeedsDependOnPointIndexNotExecutionOrder) {
  // Two identical specs must produce identical per-point results even
  // though the second runs with a different (over-subscribed) job
  // count; this pins the index->seed mapping itself, not just the CSV.
  harness::SweepSpec spec = tiny_spec();
  spec.jobs = 1;
  const auto a = harness::run_sweep(spec);
  spec.jobs = 7;  // deliberately not a divisor of the 6-point grid
  const auto b = harness::run_sweep(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].limiter, b[i].limiter);
    EXPECT_DOUBLE_EQ(a[i].offered, b[i].offered);
    EXPECT_EQ(a[i].result.messages_generated, b[i].result.messages_generated);
    EXPECT_EQ(a[i].result.messages_delivered, b[i].result.messages_delivered);
    EXPECT_DOUBLE_EQ(a[i].result.latency_mean, b[i].result.latency_mean);
    EXPECT_DOUBLE_EQ(a[i].result.accepted_flits_per_node_cycle,
                     b[i].result.accepted_flits_per_node_cycle);
  }
}

}  // namespace
}  // namespace wormsim
