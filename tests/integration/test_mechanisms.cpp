// Integration: comparative behaviour of the three injection-limitation
// mechanisms (ALO vs LF vs DRIL), mirroring the paper's §4.2 claims at
// reduced scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "config/presets.hpp"

namespace wormsim {
namespace {

config::SimConfig test_base() {
  config::SimConfig cfg = config::small_base();
  cfg.protocol.warmup = 3000;
  cfg.protocol.measure = 8000;
  cfg.protocol.drain_max = 8000;
  return cfg;
}

metrics::SimResult run_at(double offered, core::LimiterKind limiter,
                          config::SimConfig cfg = test_base()) {
  cfg.workload.offered_flits_per_node_cycle = offered;
  cfg.sim.limiter.kind = limiter;
  return config::run_experiment(cfg);
}

TEST(Mechanisms, AllLimitersPreventDegradation) {
  const auto none = run_at(1.1, core::LimiterKind::None);
  ASSERT_GT(none.deadlock_pct, 2.0);
  for (const auto kind :
       {core::LimiterKind::ALO, core::LimiterKind::LF,
        core::LimiterKind::DRIL}) {
    const auto r = run_at(1.1, kind);
    EXPECT_GE(r.accepted_flits_per_node_cycle,
              none.accepted_flits_per_node_cycle)
        << core::limiter_name(kind);
    EXPECT_LT(r.deadlock_pct, none.deadlock_pct / 2)
        << core::limiter_name(kind);
  }
}

TEST(Mechanisms, NoneOfThemThrottleAtLowLoad) {
  for (const auto kind :
       {core::LimiterKind::ALO, core::LimiterKind::LF,
        core::LimiterKind::DRIL}) {
    const auto r = run_at(0.15, kind);
    EXPECT_NEAR(r.accepted_flits_per_node_cycle, 0.15, 0.02)
        << core::limiter_name(kind);
    EXPECT_TRUE(r.fully_drained) << core::limiter_name(kind);
  }
}

TEST(Mechanisms, AloFairnessBeatsDril) {
  // Paper Figure 4: ALO's per-node sent-message spread is within a few
  // percent while DRIL shows tens of percent. Saturating load, uniform.
  config::SimConfig cfg = test_base();
  cfg.workload.length.fixed = 64;
  cfg.protocol.measure = 12000;
  cfg.workload.offered_flits_per_node_cycle = 1.0;

  cfg.sim.limiter.kind = core::LimiterKind::ALO;
  auto alo_sim = config::build_simulator(cfg);
  alo_sim->run(cfg.protocol);
  const double alo_dev =
      alo_sim->collector().fairness().max_abs_deviation_pct();
  const double alo_jain = alo_sim->collector().fairness().jain_index();

  cfg.sim.limiter.kind = core::LimiterKind::DRIL;
  auto dril_sim = config::build_simulator(cfg);
  dril_sim->run(cfg.protocol);
  const double dril_dev =
      dril_sim->collector().fairness().max_abs_deviation_pct();
  const double dril_jain = dril_sim->collector().fairness().jain_index();

  EXPECT_LT(alo_dev, dril_dev);
  EXPECT_GE(alo_jain, dril_jain);
}

TEST(Mechanisms, AloNeedsNoTuningAcrossPatterns) {
  // ALO (threshold-free) keeps deadlocks negligible on every paper
  // pattern without any parameter change.
  for (const auto pattern :
       {traffic::PatternKind::Uniform, traffic::PatternKind::Butterfly,
        traffic::PatternKind::Complement, traffic::PatternKind::BitReversal,
        traffic::PatternKind::PerfectShuffle}) {
    config::SimConfig cfg = test_base();
    cfg.workload.pattern = pattern;
    const auto none = run_at(0.9, core::LimiterKind::None, cfg);
    const auto alo = run_at(0.9, core::LimiterKind::ALO, cfg);
    // Without tuning anything, ALO cuts the detection rate at least in
    // half on every paper pattern (the paper's sub-percent figures need
    // the 512-node 3-cube's extra adaptivity; see bench/fig05..fig10).
    EXPECT_LT(alo.deadlock_pct,
              std::max(0.6, none.deadlock_pct / 2))
        << traffic::pattern_name(pattern);
  }
}

TEST(Mechanisms, AloSustainsCompetitiveThroughput) {
  // Paper: ALO usually reaches the highest throughput; when another
  // mechanism wins, ALO stays close. Allow 10% slack at reduced scale.
  const double alo =
      run_at(1.1, core::LimiterKind::ALO).accepted_flits_per_node_cycle;
  for (const auto kind : {core::LimiterKind::LF, core::LimiterKind::DRIL}) {
    const double other =
        run_at(1.1, kind).accepted_flits_per_node_cycle;
    EXPECT_GT(alo, other * 0.9) << core::limiter_name(kind);
  }
}

TEST(Mechanisms, LimiterDelaysShowUpAsQueueing) {
  // Throttled messages wait at the source: with ALO at saturating load
  // the average source queue is non-trivial while deadlocks stay ~0.
  const auto r = run_at(1.1, core::LimiterKind::ALO);
  EXPECT_GT(r.avg_queue_len, 1.0);
  EXPECT_LT(r.deadlock_pct, 0.6);
}

}  // namespace
}  // namespace wormsim
