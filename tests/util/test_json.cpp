#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

namespace wormsim::util {
namespace {

std::string written(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os);
  body(w);
  return os.str();
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(written([](JsonWriter& w) {
              w.begin_object();
              w.end_object();
            }),
            "{}");
  EXPECT_EQ(written([](JsonWriter& w) {
              w.begin_array();
              w.end_array();
            }),
            "[]");
}

TEST(JsonWriter, ObjectFieldsGetCommas) {
  const std::string out = written([](JsonWriter& w) {
    w.begin_object();
    w.field("a", 1);
    w.field("b", "x");
    w.field("c", true);
    w.key("d");
    w.value_null();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(JsonWriter, NestedStructures) {
  const std::string out = written([](JsonWriter& w) {
    w.begin_object();
    w.key("pts");
    w.begin_array();
    w.value(std::int64_t{1});
    w.begin_object();
    w.field("k", 2u);
    w.end_object();
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"pts":[1,{"k":2}]})");
}

TEST(JsonWriter, NeverEmitsNewlines) {
  // JSONL depends on records being single physical lines.
  const std::string out = written([](JsonWriter& w) {
    w.begin_object();
    w.field("s", "line1\nline2");
    w.key("arr");
    w.begin_array();
    for (int i = 0; i < 20; ++i) w.value(i);
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(out.find('\n'), std::string::npos);
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("\n\t\r"), "\\n\\t\\r");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonWriter::format_double(std::nan("")), "null");
  EXPECT_EQ(
      JsonWriter::format_double(std::numeric_limits<double>::infinity()),
      "null");
  EXPECT_EQ(
      JsonWriter::format_double(-std::numeric_limits<double>::infinity()),
      "null");
}

TEST(JsonWriter, DoubleFormattingRoundTrips) {
  for (const double v : {0.0, 1.5, -2.25, 0.1, 1e300, 1e-300, 123456.789}) {
    const std::string s = JsonWriter::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(JsonParse, ScalarsAndStructure) {
  std::string err;
  const auto v = json_parse(
      R"({"a": 1.5, "b": [true, null, "s\n"], "c": {"d": -3}})", &err);
  ASSERT_TRUE(v.has_value()) << err;
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->find("a")->number, 1.5);
  const JsonValue* b = v->find("b");
  ASSERT_TRUE(b && b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_TRUE(b->array[1].is_null());
  EXPECT_EQ(b->array[2].str, "s\n");
  EXPECT_DOUBLE_EQ(v->at_path("c.d")->number, -3.0);
}

TEST(JsonParse, AtPathMissesReturnNull) {
  const auto v = json_parse(R"({"a": {"b": 1}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at_path("a.c"), nullptr);
  EXPECT_EQ(v->at_path("z"), nullptr);
  EXPECT_EQ(v->at_path("a.b.c"), nullptr);  // descending through a number
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "01", "\"unterminated",
                          "tru", "{\"a\":1} extra", ""}) {
    std::string err;
    EXPECT_FALSE(json_parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonParse, WriterOutputRoundTrips) {
  const std::string doc = written([](JsonWriter& w) {
    w.begin_object();
    w.field("schema", "wormsim.telemetry/1");
    w.field("pi", 3.14159);
    w.field("neg", std::int64_t{-7});
    w.field("big", std::uint64_t{1} << 53);
    w.field("text", "quote \" backslash \\ tab \t");
    w.end_object();
  });
  std::string err;
  const auto v = json_parse(doc, &err);
  ASSERT_TRUE(v.has_value()) << err << " in " << doc;
  EXPECT_EQ(v->find("schema")->str, "wormsim.telemetry/1");
  EXPECT_DOUBLE_EQ(v->find("pi")->number, 3.14159);
  EXPECT_DOUBLE_EQ(v->find("neg")->number, -7.0);
  EXPECT_EQ(v->find("text")->str, "quote \" backslash \\ tab \t");
}

}  // namespace
}  // namespace wormsim::util
