#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace wormsim::util {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"a", "b", "c"});
  csv.row(1, 2.5, "x");
  EXPECT_EQ(os.str(), "a,b,c\n1,2.5,x\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesCommasAndQuotes) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, DoubleFormattingRoundTrips) {
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
  EXPECT_EQ(CsvWriter::format(0.0), "0");
  const std::string s = CsvWriter::format(1.0 / 3.0);
  EXPECT_NEAR(std::stod(s), 1.0 / 3.0, 1e-9);
}

TEST(Csv, SpecialDoubles) {
  EXPECT_EQ(CsvWriter::format(std::nan("")), "nan");
  EXPECT_EQ(CsvWriter::format(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(CsvWriter::format(-std::numeric_limits<double>::infinity()),
            "-inf");
}

TEST(Csv, IntegerTypes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(std::uint64_t{18446744073709551615ULL}, -42, std::uint8_t{7});
  EXPECT_EQ(os.str(), "18446744073709551615,-42,7\n");
}

}  // namespace
}  // namespace wormsim::util
