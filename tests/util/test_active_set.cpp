// ActiveSet: membership bookkeeping, iteration order, and the snapshot
// semantics the simulator's phase loops rely on.
#include <gtest/gtest.h>

#include <vector>

#include "util/active_set.hpp"

namespace wormsim::util {
namespace {

TEST(ActiveSet, StartsEmpty) {
  ActiveSet s(100);
  EXPECT_EQ(s.capacity(), 100u);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(s.contains(i));
}

TEST(ActiveSet, InsertEraseContains) {
  ActiveSet s(130);  // spans three words
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(129);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(129));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.contains(65));

  s.erase(63);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.contains(63));
}

TEST(ActiveSet, InsertAndEraseAreIdempotent) {
  ActiveSet s(64);
  s.insert(7);
  s.insert(7);
  s.insert(7);
  EXPECT_EQ(s.size(), 1u);
  s.erase(7);
  s.erase(7);
  EXPECT_EQ(s.size(), 0u);
  s.erase(13);  // never inserted
  EXPECT_EQ(s.size(), 0u);
}

TEST(ActiveSet, ForEachVisitsAscending) {
  ActiveSet s(200);
  const std::vector<std::size_t> members = {5, 0, 199, 64, 63, 128, 100};
  for (const auto m : members) s.insert(m);
  std::vector<std::size_t> visited;
  s.for_each([&](std::size_t i) { visited.push_back(i); });
  const std::vector<std::size_t> expected = {0, 5, 63, 64, 100, 128, 199};
  EXPECT_EQ(visited, expected);
}

TEST(ActiveSet, CallbackMayEraseCurrentMember) {
  ActiveSet s(128);
  for (std::size_t i = 0; i < 128; i += 3) s.insert(i);
  std::vector<std::size_t> visited;
  s.for_each([&](std::size_t i) {
    visited.push_back(i);
    s.erase(i);  // lazy retirement, as the phase loops do
  });
  EXPECT_EQ(visited.size(), 43u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.recount(), 0u);
}

TEST(ActiveSet, InsertIntoSnapshotWordIsDeferredToNextPass) {
  ActiveSet s(64);  // single word: every insert hits the snapshot word
  s.insert(10);
  std::vector<std::size_t> first_pass;
  s.for_each([&](std::size_t i) {
    first_pass.push_back(i);
    if (i == 10) s.insert(20);  // must not be visited this pass
  });
  EXPECT_EQ(first_pass, (std::vector<std::size_t>{10}));
  std::vector<std::size_t> second_pass;
  s.for_each([&](std::size_t i) { second_pass.push_back(i); });
  EXPECT_EQ(second_pass, (std::vector<std::size_t>{10, 20}));
}

TEST(ActiveSet, InsertIntoLaterWordIsVisitedSamePass) {
  ActiveSet s(256);
  s.insert(3);
  std::vector<std::size_t> visited;
  s.for_each([&](std::size_t i) {
    visited.push_back(i);
    if (i == 3) s.insert(200);  // word 3: still ahead of the cursor
  });
  EXPECT_EQ(visited, (std::vector<std::size_t>{3, 200}));
}

TEST(ActiveSet, ClearAndReset) {
  ActiveSet s(64);
  s.insert(1);
  s.insert(2);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(1));

  s.insert(5);
  s.reset(32);
  EXPECT_EQ(s.capacity(), 32u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(5));
}

TEST(ActiveSet, RecountMatchesSize) {
  ActiveSet s(300);
  for (std::size_t i = 0; i < 300; i += 7) s.insert(i);
  EXPECT_EQ(s.recount(), s.size());
  for (std::size_t i = 0; i < 300; i += 14) s.erase(i);
  EXPECT_EQ(s.recount(), s.size());
}

}  // namespace
}  // namespace wormsim::util
