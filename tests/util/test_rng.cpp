#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace wormsim::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, JumpChangesStream) {
  Xoshiro256 a(7), b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 4 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(Rng, Uniform01Range) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const double rate = 0.05;
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(rate);
  // Mean should be 1/rate = 20 within a few standard errors.
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.3);
}

TEST(Rng, GeometricMeanMatchesP) {
  Rng rng(19);
  const double p = 0.1;
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  // E[geometric(p) failures before success] = (1-p)/p = 9.
  EXPECT_NEAR(sum / kDraws, (1 - p) / p, 0.25);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(99);
  Rng a = parent.split();
  Rng b = parent.split();
  int equal = 0;
  for (int i = 0; i < 256; ++i) equal += (a.bits() == b.bits());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SplitStreamsAreNotShiftedCopies) {
  // Regression test for the jump-commutes-with-stepping bug: child
  // streams must not be one-draw-shifted copies of each other.
  Rng parent(99);
  Rng a = parent.split();
  Rng b = parent.split();
  std::vector<std::uint64_t> sa, sb;
  for (int i = 0; i < 64; ++i) {
    sa.push_back(a.bits());
    sb.push_back(b.bits());
  }
  for (std::size_t shift = 1; shift <= 4; ++shift) {
    int matches = 0;
    for (std::size_t i = 0; i + shift < 64; ++i) {
      matches += (sa[i + shift] == sb[i]);
    }
    EXPECT_EQ(matches, 0) << "streams shifted by " << shift << " coincide";
  }
}

TEST(Rng, ManySplitsAllDistinct) {
  Rng parent(7);
  std::set<std::uint64_t> firsts;
  for (int i = 0; i < 512; ++i) {
    Rng child = parent.split();
    firsts.insert(child.bits());
  }
  EXPECT_EQ(firsts.size(), 512u);
}

}  // namespace
}  // namespace wormsim::util
