// Work-stealing thread pool: completion under contention, exception
// propagation to the joining thread, graceful shutdown with queued
// tasks, and the WORMSIM_JOBS=1 serial degeneration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace wormsim::util {
namespace {

/// Scoped WORMSIM_JOBS override (restores the previous value on exit so
/// tests cannot leak environment into each other).
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* old = std::getenv("WORMSIM_JOBS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("WORMSIM_JOBS", value, 1);
    } else {
      ::unsetenv("WORMSIM_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (had_old_) {
      ::setenv("WORMSIM_JOBS", old_.c_str(), 1);
    } else {
      ::unsetenv("WORMSIM_JOBS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ThreadPool, CompletesEveryTaskUnderContention) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, StealsWorkWhenOneQueueIsLong) {
  // Round-robin submission puts slow tasks on every queue; with one
  // worker artificially delayed, the others must steal its backlog for
  // the batch to finish promptly. Correctness (not timing) is asserted.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count, i] {
      if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      ++ran;
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // All tasks still ran (an exception cancels nothing)...
  EXPECT_EQ(ran.load(), 8);
  // ...and the error slot is cleared: the pool remains usable.
  pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, ExceptionMessageSurvivesPropagation) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait();
    FAIL() << "wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait(): destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DefaultJobsHonoursEnvOverride) {
  {
    ScopedJobsEnv env("3");
    EXPECT_EQ(ThreadPool::default_jobs(), 3u);
    EXPECT_EQ(ThreadPool::resolve_jobs(0), 3u);
    EXPECT_EQ(ThreadPool::resolve_jobs(7), 7u);  // explicit wins
  }
  {
    // Garbage and non-positive values fall back to hardware concurrency.
    ScopedJobsEnv env("not-a-number");
    EXPECT_GE(ThreadPool::default_jobs(), 1u);
  }
  {
    ScopedJobsEnv env("0");
    EXPECT_GE(ThreadPool::default_jobs(), 1u);
  }
}

TEST(ThreadPool, ClampShardsForJobsGuardsOversubscription) {
  // Fits: jobs x shards <= hardware passes the request through.
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(4, 2, 8), 4u);
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(8, 1, 8), 8u);
  // Oversubscribed: clamp to hardware / jobs, never grow.
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(8, 2, 8), 4u);
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(4, 4, 8), 2u);
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(3, 3, 8), 2u);
  // shards == 0 means "one per hardware thread"; any parallel sweep on
  // top of that must shrink the crews to fit.
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(0, 1, 8), 8u);
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(0, 4, 8), 2u);
  // Floor of 1 even when jobs alone exceed the machine, and degenerate
  // hardware/jobs inputs are treated as 1.
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(4, 16, 8), 1u);
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(4, 16, 1), 1u);
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(4, 0, 4), 4u);
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(0, 0, 0), 1u);
  // The sequential request (shards == 1) is always left alone.
  EXPECT_EQ(ThreadPool::clamp_shards_for_jobs(1, 64, 2), 1u);
}

TEST(ThreadPool, Jobs1DegeneratesToSerialOnCallingThread) {
  ScopedJobsEnv env("1");
  ASSERT_EQ(ThreadPool::default_jobs(), 1u);
  // jobs=0 resolves to the env override of 1 -> inline execution, in
  // order, on the calling thread, with no pool constructed.
  std::vector<std::thread::id> ids;
  std::vector<std::size_t> order;
  parallel_for(8, 0, [&](std::size_t i) {
    ids.push_back(std::this_thread::get_id());
    order.push_back(i);
  });
  ASSERT_EQ(ids.size(), 8u);
  for (const auto id : ids) EXPECT_EQ(id, std::this_thread::get_id());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(16, 4,
                   [](std::size_t i) {
                     if (i == 5) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

TEST(ParallelFor, ZeroAndSingleElementRunInline) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::thread::id id;
  parallel_for(1, 4, [&](std::size_t) { id = std::this_thread::get_id(); });
  EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(ShardCrew, SliceIsAPartitionWithBalancedSizes) {
  for (std::size_t total : {0u, 1u, 7u, 64u, 513u}) {
    for (unsigned shards : {1u, 2u, 3u, 8u}) {
      std::size_t expect_lo = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const auto [lo, hi] = ShardCrew::slice(total, s, shards);
        EXPECT_EQ(lo, expect_lo);  // contiguous, no gap, no overlap
        EXPECT_GE(hi, lo);
        EXPECT_LE(hi - lo, total / shards + 1);  // sizes differ by <= 1
        expect_lo = hi;
      }
      EXPECT_EQ(expect_lo, total);  // covers everything
    }
  }
}

TEST(ShardCrew, EveryShardRunsOnceAndShard0OnCaller) {
  ShardCrew crew(4);
  ASSERT_EQ(crew.shards(), 4u);
  std::vector<std::atomic<int>> runs(4);
  std::thread::id shard0_id;
  crew.run([&](unsigned s) {
    runs[s].fetch_add(1, std::memory_order_relaxed);
    if (s == 0) shard0_id = std::this_thread::get_id();
  });
  for (auto& r : runs) EXPECT_EQ(r.load(), 1);
  EXPECT_EQ(shard0_id, std::this_thread::get_id());
}

TEST(ShardCrew, DeterministicSliceWritesUnderContention) {
  // Hammer the per-cycle pattern: each shard repeatedly fills its slice
  // of a shared vector while siblings do the same next door. Any
  // off-by-one in the split, or a join barrier that lets the caller
  // read early, shows up as a wrong or torn value.
  constexpr std::size_t kTotal = 1013;  // prime: uneven slices
  ShardCrew crew(4);
  std::vector<std::uint64_t> data(kTotal);
  for (int round = 0; round < 200; ++round) {
    crew.run([&](unsigned s) {
      const auto [lo, hi] = ShardCrew::slice(kTotal, s, 4);
      for (std::size_t i = lo; i < hi; ++i) {
        data[i] = static_cast<std::uint64_t>(round) * kTotal + i;
      }
    });
    // The join barrier published every shard's writes.
    for (std::size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(data[i], static_cast<std::uint64_t>(round) * kTotal + i)
          << "round " << round << " index " << i;
    }
  }
}

TEST(ShardCrew, RethrowsLowestShardExceptionAndStaysUsable) {
  ShardCrew crew(4);
  std::atomic<int> ran{0};
  try {
    crew.run([&](unsigned s) {
      ++ran;
      if (s == 1) throw std::runtime_error("shard 1");
      if (s == 3) throw std::runtime_error("shard 3");
    });
    FAIL() << "run() should have rethrown";
  } catch (const std::runtime_error& e) {
    // Deterministic choice: the LOWEST failing shard wins, regardless
    // of which thread threw first in wall-clock order.
    EXPECT_STREQ(e.what(), "shard 1");
  }
  EXPECT_EQ(ran.load(), 4);  // an exception cancels no sibling shard
  // Error slots were cleared: the crew remains usable afterwards.
  crew.run([&](unsigned) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ShardCrew, NestedRunIsRejected) {
  ShardCrew outer(2);
  ShardCrew inner(2);
  // Self-nesting and cross-crew nesting both deadlock if allowed; the
  // crew must refuse with logic_error from inside any shard body.
  EXPECT_THROW(
      outer.run([&](unsigned) { outer.run([](unsigned) {}); }),
      std::logic_error);
  EXPECT_THROW(
      outer.run([&](unsigned) { inner.run([](unsigned) {}); }),
      std::logic_error);
  // And single-shard crews enforce the same rule on their inline path.
  ShardCrew solo(1);
  EXPECT_THROW(solo.run([&](unsigned) { solo.run([](unsigned) {}); }),
               std::logic_error);
  // All three crews are intact after the rejection.
  int ok = 0;
  outer.run([&](unsigned s) {
    if (s == 0) ++ok;
  });
  solo.run([&](unsigned) { ++ok; });
  EXPECT_EQ(ok, 2);
}

TEST(ShardCrew, SingleShardRunsInlineWithNaturalExceptions) {
  ShardCrew crew(1);
  std::thread::id id;
  crew.run([&](unsigned s) {
    EXPECT_EQ(s, 0u);
    id = std::this_thread::get_id();
  });
  EXPECT_EQ(id, std::this_thread::get_id());
  EXPECT_THROW(crew.run([](unsigned) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // Usable after the inline throw, and the tls nesting flag was reset.
  int calls = 0;
  crew.run([&](unsigned) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace wormsim::util
