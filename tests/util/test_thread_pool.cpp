// Work-stealing thread pool: completion under contention, exception
// propagation to the joining thread, graceful shutdown with queued
// tasks, and the WORMSIM_JOBS=1 serial degeneration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace wormsim::util {
namespace {

/// Scoped WORMSIM_JOBS override (restores the previous value on exit so
/// tests cannot leak environment into each other).
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* old = std::getenv("WORMSIM_JOBS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("WORMSIM_JOBS", value, 1);
    } else {
      ::unsetenv("WORMSIM_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (had_old_) {
      ::setenv("WORMSIM_JOBS", old_.c_str(), 1);
    } else {
      ::unsetenv("WORMSIM_JOBS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ThreadPool, CompletesEveryTaskUnderContention) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  constexpr int kTasks = 2000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, StealsWorkWhenOneQueueIsLong) {
  // Round-robin submission puts slow tasks on every queue; with one
  // worker artificially delayed, the others must steal its backlog for
  // the batch to finish promptly. Correctness (not timing) is asserted.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count, i] {
      if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      ++ran;
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // All tasks still ran (an exception cancels nothing)...
  EXPECT_EQ(ran.load(), 8);
  // ...and the error slot is cleared: the pool remains usable.
  pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, ExceptionMessageSurvivesPropagation) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait();
    FAIL() << "wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait(): destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DefaultJobsHonoursEnvOverride) {
  {
    ScopedJobsEnv env("3");
    EXPECT_EQ(ThreadPool::default_jobs(), 3u);
    EXPECT_EQ(ThreadPool::resolve_jobs(0), 3u);
    EXPECT_EQ(ThreadPool::resolve_jobs(7), 7u);  // explicit wins
  }
  {
    // Garbage and non-positive values fall back to hardware concurrency.
    ScopedJobsEnv env("not-a-number");
    EXPECT_GE(ThreadPool::default_jobs(), 1u);
  }
  {
    ScopedJobsEnv env("0");
    EXPECT_GE(ThreadPool::default_jobs(), 1u);
  }
}

TEST(ThreadPool, Jobs1DegeneratesToSerialOnCallingThread) {
  ScopedJobsEnv env("1");
  ASSERT_EQ(ThreadPool::default_jobs(), 1u);
  // jobs=0 resolves to the env override of 1 -> inline execution, in
  // order, on the calling thread, with no pool constructed.
  std::vector<std::thread::id> ids;
  std::vector<std::size_t> order;
  parallel_for(8, 0, [&](std::size_t i) {
    ids.push_back(std::this_thread::get_id());
    order.push_back(i);
  });
  ASSERT_EQ(ids.size(), 8u);
  for (const auto id : ids) EXPECT_EQ(id, std::this_thread::get_id());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(16, 4,
                   [](std::size_t i) {
                     if (i == 5) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

TEST(ParallelFor, ZeroAndSingleElementRunInline) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::thread::id id;
  parallel_for(1, 4, [&](std::size_t) { id = std::this_thread::get_id(); });
  EXPECT_EQ(id, std::this_thread::get_id());
}

}  // namespace
}  // namespace wormsim::util
