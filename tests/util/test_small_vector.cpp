#include "util/small_vector.hpp"

#include <gtest/gtest.h>

namespace wormsim::util {
namespace {

TEST(SmallVector, StartsEmpty) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushAndIndex) {
  SmallVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(SmallVector, FullAndClear) {
  SmallVector<int, 2> v;
  v.push_back(1);
  EXPECT_FALSE(v.full());
  v.push_back(2);
  EXPECT_TRUE(v.full());
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, PopBack) {
  SmallVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 1);
}

TEST(SmallVector, RangeFor) {
  SmallVector<int, 8> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 10);
}

TEST(SmallVector, EmplaceAggregate) {
  struct P {
    int a;
    int b;
  };
  SmallVector<P, 2> v;
  v.emplace_back(1, 2);
  EXPECT_EQ(v[0].a, 1);
  EXPECT_EQ(v[0].b, 2);
}

}  // namespace
}  // namespace wormsim::util
