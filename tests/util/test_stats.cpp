#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace wormsim::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100 - 50;
    xs.push_back(x);
    s.add(x);
  }
  double sum = 0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), ss / static_cast<double>(xs.size()), 1e-9);
  EXPECT_NEAR(s.sample_variance(), ss / static_cast<double>(xs.size() - 1),
              1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(6);
  RunningStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform01() * 10;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(1.0);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, BinWidthScaling) {
  Histogram h(10.0);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 500.0, 15.0);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(1.0, /*max_bins=*/10);
  h.add(5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h(1.0);
  h.add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bins()[0], 1u);
}

TEST(FairnessCounters, PerfectlyFair) {
  FairnessCounters f(4);
  for (std::size_t n = 0; n < 4; ++n) {
    for (int i = 0; i < 10; ++i) f.increment(n);
  }
  EXPECT_DOUBLE_EQ(f.mean(), 10.0);
  EXPECT_DOUBLE_EQ(f.max_abs_deviation_pct(), 0.0);
  EXPECT_DOUBLE_EQ(f.jain_index(), 1.0);
}

TEST(FairnessCounters, DeviationPct) {
  FairnessCounters f(2);
  for (int i = 0; i < 15; ++i) f.increment(0);
  for (int i = 0; i < 5; ++i) f.increment(1);
  // Mean 10: node 0 is +50%, node 1 is -50%.
  EXPECT_DOUBLE_EQ(f.deviation_pct(0), 50.0);
  EXPECT_DOUBLE_EQ(f.deviation_pct(1), -50.0);
  EXPECT_DOUBLE_EQ(f.max_abs_deviation_pct(), 50.0);
  EXPECT_LT(f.jain_index(), 1.0);
}

TEST(FairnessCounters, JainIndexKnownValue) {
  // Jain index of (1, 0): (1)^2 / (2 * 1) = 0.5.
  FairnessCounters f(2);
  f.increment(0);
  EXPECT_DOUBLE_EQ(f.jain_index(), 0.5);
}

}  // namespace
}  // namespace wormsim::util
