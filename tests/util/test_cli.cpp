#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace wormsim::util {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(Cli, KeyEqualsValue) {
  auto args = parse({"prog", "--k=8", "--offered=0.5"});
  EXPECT_EQ(args.get_int("k", 0), 8);
  EXPECT_DOUBLE_EQ(args.get_double("offered", 0), 0.5);
}

TEST(Cli, KeySpaceValue) {
  auto args = parse({"prog", "--k", "8", "--name", "hello"});
  EXPECT_EQ(args.get_int("k", 0), 8);
  EXPECT_EQ(args.get_string("name", ""), "hello");
}

TEST(Cli, BareFlagIsTrue) {
  auto args = parse({"prog", "--verbose", "--k=3"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
}

TEST(Cli, FlagFollowedByFlag) {
  auto args = parse({"prog", "--a", "--b"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_TRUE(args.get_bool("b", false));
}

TEST(Cli, Defaults) {
  auto args = parse({"prog"});
  EXPECT_EQ(args.get_int("k", 42), 42);
  EXPECT_EQ(args.get_string("s", "d"), "d");
  EXPECT_FALSE(args.get_bool("b", false));
}

TEST(Cli, Positional) {
  auto args = parse({"prog", "input.txt", "--k=2", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(Cli, BadIntegerThrows) {
  auto args = parse({"prog", "--k=abc"});
  EXPECT_THROW(args.get_int("k", 0), std::invalid_argument);
}

TEST(Cli, BadDoubleThrows) {
  auto args = parse({"prog", "--x=1.2.3"});
  EXPECT_THROW(args.get_double("x", 0), std::invalid_argument);
}

TEST(Cli, NegativeUintThrows) {
  auto args = parse({"prog", "--k=-1"});
  EXPECT_THROW(args.get_uint("k", 0), std::invalid_argument);
}

TEST(Cli, BoolSpellings) {
  auto args = parse({"prog", "--a=yes", "--b=0", "--c=on", "--d=false"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Cli, UnusedDetectsTypos) {
  auto args = parse({"prog", "--kk=8", "--used=1"});
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "kk");
}

}  // namespace
}  // namespace wormsim::util
