// Whole-simulator invariants under random traffic: conservation of
// messages and flits, buffer bounds, clean drain, and determinism.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;
using testing::make_traffic_sim;

void check_structural_invariants(const Simulator& sim) {
  const Network& net = sim.network();
  const auto cap = net.params().buf_flits;
  for (LinkId l = 0; l < net.num_links(); ++l) {
    for (unsigned v = 0; v < net.vcs_on(l); ++v) {
      const VcState& vc = net.vc({l, static_cast<std::uint8_t>(v)});
      if (vc.free()) {
        ASSERT_EQ(vc.buffered(), 0u);
        ASSERT_EQ(vc.occupancy, 0u);
        ASSERT_EQ(net.link(l).active_vc_mask & (1u << v), 0u)
            << "free VC marked active";
      } else {
        ASSERT_NE(net.link(l).active_vc_mask & (1u << v), 0u)
            << "tenant VC not marked active";
        ASSERT_LE(vc.out_count, vc.in_count);
        ASSERT_LE(vc.buffered(), cap);
        ASSERT_LE(vc.buffered(), vc.occupancy);
        ASSERT_LE(vc.occupancy, cap);
        const Message& m = sim.message(vc.msg);
        ASSERT_LE(vc.in_count, m.length);
        // Worm chain consistency: a valid upstream must point back here.
        if (vc.upstream.valid()) {
          const VcState& up = net.vc(vc.upstream);
          ASSERT_EQ(up.msg, vc.msg);
          ASSERT_EQ(up.out_kind, VcState::OutKind::Vc);
          ASSERT_EQ(up.out.link, l);
          ASSERT_EQ(up.out.vc, v);
        }
      }
    }
  }
}

class InvariantTest
    : public ::testing::TestWithParam<std::tuple<double, unsigned>> {};

TEST_P(InvariantTest, HoldThroughoutRandomRun) {
  const auto [offered, vcs] = GetParam();
  SimulatorConfig cfg = default_config();
  cfg.net.num_vcs = vcs;
  auto sim = make_traffic_sim(4, 2, offered, 16, cfg);
  for (int block = 0; block < 40; ++block) {
    sim->step_cycles(100);
    check_structural_invariants(*sim);
  }
  // Conservation: generated = delivered + in flight + queued + pending
  // recovery.
  const auto r = sim->collector().finish(16);
  EXPECT_EQ(r.messages_generated,
            r.messages_delivered + sim->messages_in_flight() +
                sim->source_queue_total());
}

INSTANTIATE_TEST_SUITE_P(
    Loads, InvariantTest,
    ::testing::Values(std::make_tuple(0.1, 3u), std::make_tuple(0.5, 3u),
                      std::make_tuple(0.9, 3u), std::make_tuple(1.5, 3u),
                      std::make_tuple(0.7, 1u), std::make_tuple(0.7, 2u)));

TEST(Invariants, NetworkDrainsWhenTrafficStops) {
  auto sim = make_traffic_sim(4, 2, 0.5, 16, default_config());
  sim->step_cycles(5000);
  sim->workload()->set_offered_load(0.0);
  // Everything in flight and queued must eventually deliver.
  std::uint64_t limit = sim->cycle() + 50000;
  while ((sim->messages_in_flight() > 0 || sim->source_queue_total() > 0 ||
          sim->recovery_pending() > 0) &&
         sim->cycle() < limit) {
    sim->step();
  }
  EXPECT_EQ(sim->messages_in_flight(), 0u);
  EXPECT_EQ(sim->source_queue_total(), 0u);
  EXPECT_TRUE(sim->network().quiescent());
  const auto r = sim->collector().finish(16);
  EXPECT_EQ(r.messages_generated, r.messages_delivered);
}

TEST(Invariants, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    auto sim = make_traffic_sim(4, 2, 0.8, 16, default_config(),
                                traffic::PatternKind::Uniform, seed);
    sim->step_cycles(8000);
    const auto r = sim->collector().finish(16);
    return std::make_tuple(r.messages_generated, r.messages_delivered,
                           sim->total_deadlock_detections(),
                           r.latency_mean);
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(Invariants, MeasuredLatencyOnlyCountsWindowMessages) {
  const topo::KAryNCube topo(4, 2);
  SimulatorConfig cfg = default_config();
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.3;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 7);
  Simulator sim(topo, cfg, std::move(workload));
  RunProtocol protocol;
  protocol.warmup = 2000;
  protocol.measure = 5000;
  protocol.drain_max = 20000;
  const auto r = sim.run(protocol);
  EXPECT_GT(r.measured_generated, 0u);
  EXPECT_EQ(r.measured_delivered, r.measured_generated);
  EXPECT_TRUE(r.fully_drained);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.latency_mean, 0.0);
  EXPECT_NEAR(r.accepted_flits_per_node_cycle, 0.3, 0.02);
}

TEST(Invariants, ProbeCountsAccumulate) {
  const topo::KAryNCube topo(4, 2);
  SimulatorConfig cfg = default_config();
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.4;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 9);
  Simulator sim(topo, cfg, std::move(workload));
  RunProtocol protocol;
  protocol.warmup = 1000;
  protocol.measure = 4000;
  const auto r = sim.run(protocol);
  EXPECT_GT(r.probe.samples, 0u);
  EXPECT_GE(r.probe.pct_either(), r.probe.pct_a());
  EXPECT_GE(r.probe.pct_either(), r.probe.pct_b());
  EXPECT_LE(r.probe.pct_either(), 100.0);
}

TEST(Invariants, FairnessCountsMatchInjections) {
  const topo::KAryNCube topo(4, 2);
  SimulatorConfig cfg = default_config();
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.2;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 11);
  Simulator sim(topo, cfg, std::move(workload));
  RunProtocol protocol;
  protocol.warmup = 500;
  protocol.measure = 3000;
  const auto r = sim.run(protocol);
  std::uint64_t fairness_total = 0;
  for (topo::NodeId n = 0; n < 16; ++n) {
    fairness_total += sim.collector().fairness().at(n);
  }
  EXPECT_EQ(fairness_total, r.messages_injected_window);
}

}  // namespace
}  // namespace wormsim::sim
