// Deadlock construction, FC3D-style detection and software-based
// recovery.
//
// The canonical deterministic deadlock: on a 5-ring with one VC, five
// messages i -> i+2 injected simultaneously each allocate link i->i+1
// and then wait for link i+1->i+2, which the next message holds — a
// 5-cycle in the channel wait-for graph that can never resolve on its
// own.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;
using testing::make_sim;
using testing::make_traffic_sim;
using testing::run_until_delivered;

SimulatorConfig ring_config(bool detection) {
  SimulatorConfig cfg = default_config();
  cfg.net.num_vcs = 1;
  cfg.detection.enabled = detection;
  cfg.detection.threshold = 32;
  cfg.recovery.base_delay = 32;
  return cfg;
}

void inject_ring_deadlock(Simulator& sim, std::uint32_t len = 16) {
  for (topo::NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(sim.push_message(i, (i + 2) % 5, len));
  }
}

TEST(DeadlockRecovery, RingDeadlockIsRealWithoutDetection) {
  auto sim = make_sim(5, 1, ring_config(/*detection=*/false));
  inject_ring_deadlock(*sim);
  sim->step_cycles(5000);
  EXPECT_EQ(sim->total_delivered(), 0u);
  EXPECT_EQ(sim->messages_in_flight(), 5u);
  EXPECT_EQ(sim->total_deadlock_detections(), 0u);
}

TEST(DeadlockRecovery, DetectionBreaksRingDeadlock) {
  auto sim = make_sim(5, 1, ring_config(/*detection=*/true));
  inject_ring_deadlock(*sim);
  EXPECT_TRUE(run_until_delivered(*sim, 5, 20000));
  EXPECT_GE(sim->total_deadlock_detections(), 1u);
  EXPECT_TRUE(sim->network().quiescent());
  EXPECT_EQ(sim->recovery_pending(), 0u);
}

TEST(DeadlockRecovery, DetectionLatencyRespectsThreshold) {
  // No detection can fire before the threshold has elapsed.
  auto sim = make_sim(5, 1, ring_config(true));
  inject_ring_deadlock(*sim);
  sim->step_cycles(32);  // threshold cycles from t=0
  EXPECT_EQ(sim->total_deadlock_detections(), 0u);
  sim->step_cycles(200);
  EXPECT_GE(sim->total_deadlock_detections(), 1u);
}

TEST(DeadlockRecovery, RecoveredLatencyIncludesStallTime) {
  auto sim = make_sim(5, 1, ring_config(true));
  inject_ring_deadlock(*sim);
  ASSERT_TRUE(run_until_delivered(*sim, 5, 20000));
  const auto r = sim->collector().finish(5);
  // Every delivered message carries at least the detection threshold of
  // stall (generation time is preserved across absorption).
  EXPECT_GT(r.latency_min, 32.0);
}

TEST(DeadlockRecovery, AbsorptionCleansEveryHeldResource) {
  auto sim = make_sim(5, 1, ring_config(true));
  inject_ring_deadlock(*sim, /*len=*/64);
  ASSERT_TRUE(run_until_delivered(*sim, 5, 40000));
  EXPECT_TRUE(sim->network().quiescent());
  EXPECT_EQ(sim->network().flits_in_network(), 0u);
  EXPECT_EQ(sim->messages_in_flight(), 0u);
}

TEST(DeadlockRecovery, LongMessagesRecoverToo) {
  auto sim = make_sim(5, 1, ring_config(true));
  inject_ring_deadlock(*sim, /*len=*/128);
  EXPECT_TRUE(run_until_delivered(*sim, 5, 60000));
}

TEST(DeadlockRecovery, BlockedButAliveWormIsNotFalselyDetected) {
  // One worm blocked behind another that keeps draining: FC3D must not
  // fire because the requested channel shows flit activity.
  auto cfg = ring_config(true);
  auto sim = make_sim(5, 1, cfg);
  sim->push_message(0, 2, 256);  // long worm holding 1->2 for ~256 cycles
  sim->push_message(1, 3, 16);   // blocked behind it well beyond threshold
  ASSERT_TRUE(run_until_delivered(*sim, 2, 5000));
  EXPECT_EQ(sim->total_deadlock_detections(), 0u);
}

TEST(DeadlockRecovery, HeaderInInjectionChannelIsExempt)
{
  // A message that cannot even enter the network holds no network
  // channel and must not be absorbed, no matter how long it waits.
  auto cfg = ring_config(true);
  auto sim = make_sim(5, 1, cfg);
  inject_ring_deadlock(*sim);            // consumes all first-hop VCs
  sim->push_message(0, 1, 16);           // waits in an injection channel
  sim->step_cycles(31);
  // After the ring resolves everything must deliver, and detections must
  // not exceed what the 5-cycle deadlock (and any re-formed cycles among
  // those 5 messages) accounts for.
  ASSERT_TRUE(run_until_delivered(*sim, 6, 30000));
  EXPECT_TRUE(sim->network().quiescent());
}

TEST(DeadlockRecovery, DeadlockFreeAlgorithmsNeverDetect) {
  // DOR and Duato under sustained moderate load with detection armed:
  // zero detections expected (they are deadlock-free by construction,
  // and live congestion must not look like deadlock).
  for (const auto algo : {routing::Algorithm::DOR, routing::Algorithm::Duato}) {
    SimulatorConfig cfg = default_config();
    cfg.algorithm = algo;
    cfg.detection.enabled = true;
    auto sim = make_traffic_sim(4, 2, /*offered=*/0.3, /*len=*/16, cfg);
    sim->step_cycles(20000);
    EXPECT_EQ(sim->total_deadlock_detections(), 0u)
        << routing::algorithm_name(algo);
    EXPECT_GT(sim->total_delivered(), 1000u);
  }
}

TEST(DeadlockRecovery, ReinjectionHappensAtAbsorptionNode) {
  // After recovery the message is re-injected where its header was
  // absorbed; it still reaches the original destination.
  auto sim = make_sim(5, 1, ring_config(true));
  inject_ring_deadlock(*sim);
  ASSERT_TRUE(run_until_delivered(*sim, 5, 20000));
  // Delivery implies correct destination; fairness counters recorded 5
  // injections from the 5 original sources (re-injections do not count
  // as fairness-relevant sends).
  const auto& fairness = sim->collector().fairness();
  for (topo::NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(fairness.at(i), 1u);
  }
}

TEST(DeadlockRecovery, RepeatedDeadlocksEventuallyResolve) {
  // Sustained TFAR traffic on a tiny 1-VC ring deadlocks repeatedly;
  // recovery must keep the network live and keep delivering.
  auto cfg = ring_config(true);
  auto sim = make_traffic_sim(5, 1, /*offered=*/0.5, /*len=*/16, cfg);
  sim->step_cycles(30000);
  EXPECT_GT(sim->total_delivered(), 500u);
  EXPECT_GT(sim->total_deadlock_detections(), 0u);
}

}  // namespace
}  // namespace wormsim::sim
