// End-to-end timing of isolated messages: exact latency per the
// documented model (3 cycles per hop + ejection binding + length).
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;
using testing::ideal_latency;
using testing::make_sim;
using testing::run_until_delivered;

TEST(SingleMessage, DeliversOnIdleNetwork) {
  auto sim = make_sim(4, 2);
  ASSERT_TRUE(sim->push_message(0, 5, 16));
  EXPECT_TRUE(run_until_delivered(*sim, 1, 1000));
  EXPECT_TRUE(sim->network().quiescent());
  EXPECT_EQ(sim->messages_in_flight(), 0u);
}

TEST(SingleMessage, RejectsSelfAndZeroLength) {
  auto sim = make_sim(4, 2);
  EXPECT_FALSE(sim->push_message(3, 3, 16));
  EXPECT_FALSE(sim->push_message(0, 1, 0));
}

TEST(SingleMessage, ExactLatencyOneHop) {
  auto sim = make_sim(4, 2);
  const topo::NodeId dst = sim->topology().neighbor(0, 0);
  sim->push_message(0, dst, 16);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  const auto r = sim->collector().finish(16);
  EXPECT_DOUBLE_EQ(r.latency_mean,
                   static_cast<double>(ideal_latency(*sim, 0, dst, 16)));
}

struct LatencyCase {
  unsigned k, n;
  std::uint32_t src_raw, dst_raw;
  std::uint32_t length;
};

class ExactLatencyTest : public ::testing::TestWithParam<LatencyCase> {};

TEST_P(ExactLatencyTest, MatchesClosedForm) {
  const auto& p = GetParam();
  auto sim = make_sim(p.k, p.n);
  const topo::NodeId src = p.src_raw % sim->topology().num_nodes();
  topo::NodeId dst = p.dst_raw % sim->topology().num_nodes();
  if (dst == src) dst = (dst + 1) % sim->topology().num_nodes();
  sim->push_message(src, dst, p.length);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 5000));
  const auto r = sim->collector().finish(sim->topology().num_nodes());
  EXPECT_DOUBLE_EQ(
      r.latency_mean,
      static_cast<double>(ideal_latency(*sim, src, dst, p.length)))
      << "src=" << src << " dst=" << dst;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExactLatencyTest,
    ::testing::Values(LatencyCase{4, 2, 0, 1, 1},    // single flit, 1 hop
                      LatencyCase{4, 2, 0, 5, 16},   // diagonal
                      LatencyCase{4, 2, 0, 10, 16},  // max distance (2+2)
                      LatencyCase{8, 1, 0, 4, 16},   // half-ring tie
                      LatencyCase{8, 3, 0, 511, 64},
                      LatencyCase{8, 3, 7, 100, 16},
                      LatencyCase{4, 3, 0, 42, 32},
                      LatencyCase{2, 2, 0, 3, 16}));

TEST(SingleMessage, LongerMessageAddsExactlyItsFlits) {
  auto sim16 = make_sim(4, 2);
  auto sim64 = make_sim(4, 2);
  sim16->push_message(0, 5, 16);
  sim64->push_message(0, 5, 64);
  ASSERT_TRUE(run_until_delivered(*sim16, 1, 2000));
  ASSERT_TRUE(run_until_delivered(*sim64, 1, 2000));
  const double l16 = sim16->collector().finish(16).latency_mean;
  const double l64 = sim64->collector().finish(16).latency_mean;
  EXPECT_DOUBLE_EQ(l64 - l16, 48.0);
}

TEST(SingleMessage, DorAndDuatoDeliverToo) {
  for (const auto algo : {routing::Algorithm::DOR, routing::Algorithm::Duato}) {
    SimulatorConfig cfg = default_config();
    cfg.algorithm = algo;
    cfg.detection.enabled = false;  // deadlock-free algorithms
    auto sim = make_sim(4, 2, cfg);
    sim->push_message(1, 14, 16);
    EXPECT_TRUE(run_until_delivered(*sim, 1, 2000))
        << routing::algorithm_name(algo);
    // Minimal routing: same closed-form latency as TFAR when alone.
    const auto r = sim->collector().finish(16);
    EXPECT_DOUBLE_EQ(r.latency_mean,
                     static_cast<double>(ideal_latency(*sim, 1, 14, 16)));
  }
}

TEST(SingleMessage, ManySequentialMessagesAllDelivered) {
  auto sim = make_sim(4, 2);
  unsigned count = 0;
  for (topo::NodeId src = 0; src < 16; ++src) {
    for (topo::NodeId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      sim->push_message(src, dst, 4);
      ++count;
      ASSERT_TRUE(run_until_delivered(*sim, count, 2000));
    }
  }
  EXPECT_EQ(sim->total_delivered(), count);
  EXPECT_TRUE(sim->network().quiescent());
}

TEST(SingleMessage, FourInjectionChannelsLimitConcurrentStreams) {
  // Five simultaneous messages from one node: only four injection
  // channels exist, so the fifth starts one tenancy later.
  auto sim = make_sim(4, 2);
  for (int i = 0; i < 5; ++i) sim->push_message(0, 5, 8);
  sim->step();  // injection happens this cycle
  EXPECT_EQ(sim->messages_in_flight(), 4u);
  EXPECT_EQ(sim->source_queue_len(0), 1u);
  ASSERT_TRUE(run_until_delivered(*sim, 5, 2000));
}

TEST(SingleMessage, GenTimeIncludesSourceQueueing) {
  // Four messages leave on the node's four distinct output links without
  // contention; the fifth must wait for a free injection channel, and
  // its latency includes that source-queue wait (paper §4 definition).
  auto sim = make_sim(4, 2);
  for (unsigned c = 0; c < 4; ++c) {
    sim->push_message(0, sim->topology().neighbor(0, static_cast<topo::ChannelId>(c)), 8);
  }
  const topo::NodeId first_dst = sim->topology().neighbor(0, 0);
  sim->push_message(0, first_dst, 8);
  ASSERT_TRUE(run_until_delivered(*sim, 5, 2000));
  const auto r = sim->collector().finish(16);
  const auto ideal = static_cast<double>(ideal_latency(*sim, 0, first_dst, 8));
  EXPECT_DOUBLE_EQ(r.latency_min, ideal);
  EXPECT_GT(r.latency_max, ideal);
}

}  // namespace
}  // namespace wormsim::sim
