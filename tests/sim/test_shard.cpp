// Differential harness for the sharded simulation core: the active
// core with shards > 1 must be indistinguishable from its own
// sequential execution — equal channel-level state in lock-step, equal
// aggregates through fault transients, and invariant-clean across a
// wide seed fuzz. The topology is a 16-ary 2-cube (256 nodes = 4
// bitmap words) throughout, so 2/3/4-way splits genuinely partition
// the node and link words instead of clamping to one lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "../support/invariants.hpp"
#include "fault/schedule.hpp"
#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

constexpr unsigned kK = 16, kN = 2;  // 256 nodes

std::unique_ptr<Simulator> make_sharded(unsigned shards, double offered,
                                        std::uint64_t seed,
                                        fault::FaultSchedule faults = {},
                                        FlowControl scheme =
                                            FlowControl::Wormhole) {
  const topo::KAryNCube topo(kK, kN);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.shards = shards;
  cfg.limiter.kind = core::LimiterKind::ALO;
  cfg.flow.scheme = scheme;
  if (scheme == FlowControl::Vct) {
    // Whole-packet admission needs message-deep buffers.
    cfg.net.buf_flits = std::max(cfg.net.buf_flits, 16u);
  }
  cfg.faults = std::move(faults);
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = offered;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, seed);
  return std::make_unique<Simulator>(topo, cfg, std::move(workload));
}

/// Complete channel-level comparison (the same microscope the
/// dense-vs-active lock-step uses): any divergence in VC bookkeeping,
/// arbitration cursors or in-flight pipelines is a sharding bug.
void expect_networks_equal(const Simulator& ss, const Simulator& ps,
                           Cycle at) {
  const Network& s = ss.network();
  const Network& p = ps.network();
  ASSERT_EQ(s.num_links(), p.num_links());
  for (LinkId l = 0; l < s.num_links(); ++l) {
    const Link& sl = s.link(l);
    const Link& pl = p.link(l);
    ASSERT_EQ(sl.active_vc_mask, pl.active_vc_mask)
        << "link " << l << " cycle " << at;
    ASSERT_EQ(sl.rr_next, pl.rr_next) << "link " << l << " cycle " << at;
    ASSERT_EQ(sl.in_flight.size(), pl.in_flight.size())
        << "link " << l << " cycle " << at;
    ASSERT_EQ(sl.flits_carried, pl.flits_carried)
        << "link " << l << " cycle " << at;
    for (unsigned v = 0; v < s.vcs_on(l); ++v) {
      const VcRef ref{l, static_cast<std::uint8_t>(v)};
      const VcState& sv = s.vc(ref);
      const VcState& pv = p.vc(ref);
      ASSERT_EQ(sv.msg == kNoMsg, pv.msg == kNoMsg)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(sv.in_count, pv.in_count)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(sv.out_count, pv.out_count)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(sv.occupancy, pv.occupancy)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(sv.header_arrival, pv.header_arrival)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(sv.last_activity, pv.last_activity)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(sv.pending_route, pv.pending_route)
          << "vc " << l << "/" << v << " cycle " << at;
    }
  }
  ASSERT_EQ(s.flits_in_network(), p.flits_in_network()) << "cycle " << at;
}

/// Lock-step microscope past saturation: sequential (shards=1) and
/// sharded (shards=4) simulators advance together from identical seeds
/// with deadlock detection/recovery and the ALO limiter hot; complete
/// channel state must agree at every comparison point.
TEST(ShardLockStep, ChannelStateAgreesEveryCyclePastSaturation) {
  auto seq = make_sharded(1, 1.1, 777);
  auto par = make_sharded(4, 1.1, 777);
  ASSERT_EQ(par->shards(), 4u);  // 256 nodes: no clamping

  for (int block = 0; block < 40; ++block) {
    for (int i = 0; i < 10; ++i) {
      seq->step();
      par->step();
    }
    const Cycle at = seq->cycle();
    ASSERT_EQ(at, par->cycle());
    expect_networks_equal(*seq, *par, at);
    ASSERT_EQ(seq->total_delivered(), par->total_delivered());
    ASSERT_EQ(seq->messages_in_flight(), par->messages_in_flight());
    ASSERT_EQ(seq->source_queue_total(), par->source_queue_total());
    ASSERT_EQ(seq->recovery_pending(), par->recovery_pending());
    ASSERT_EQ(seq->total_deadlock_detections(),
              par->total_deadlock_detections());
    ASSERT_TRUE(testing::check_all_invariants(*seq));
    ASSERT_TRUE(testing::check_all_invariants(*par));
  }
}

/// An uneven split (3 shards over 4 words: slice sizes 2/1/1) must be
/// just as exact as the even ones — the remainder handling in the word
/// partition is where off-by-ones would live.
TEST(ShardLockStep, UnevenShardSplitAgrees) {
  auto seq = make_sharded(1, 0.9, 4242);
  auto par = make_sharded(3, 0.9, 4242);
  ASSERT_EQ(par->shards(), 3u);
  for (int block = 0; block < 30; ++block) {
    for (int i = 0; i < 10; ++i) {
      seq->step();
      par->step();
    }
    expect_networks_equal(*seq, *par, seq->cycle());
    ASSERT_EQ(seq->total_delivered(), par->total_delivered());
    ASSERT_EQ(seq->source_queue_total(), par->source_queue_total());
  }
}

/// Requesting more shards than there are bitmap words must clamp, not
/// crash or skew: a 64-node network has one node word, so any request
/// degenerates to sequential execution and reports shards() == 1.
TEST(ShardLockStep, SmallNetworkClampsToOneShard) {
  const topo::KAryNCube topo(8, 2);  // 64 nodes = 1 word
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.shards = 8;
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.5;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 99);
  Simulator sim(topo, cfg, std::move(workload));
  EXPECT_EQ(sim.shards(), 1u);
  for (int i = 0; i < 200; ++i) sim.step();
  EXPECT_TRUE(testing::check_all_invariants(sim));
}

/// Lock-step equivalence through live fault surgery: the sharded core
/// takes the same kills and restores mid-traffic as its sequential
/// twin and must agree on channel state, the lost-message count and
/// the LUT rebuild count at every comparison point.
TEST(ShardLockStep, AgreesThroughFaultTransients) {
  const fault::FaultSchedule schedule({
      {100, fault::FaultKind::LinkKill, 5, 1},
      {180, fault::FaultKind::NodeKill, 130, 0},
      {260, fault::FaultKind::LinkRestore, 5, 1},
      {340, fault::FaultKind::NodeRestore, 130, 0},
  });
  auto seq = make_sharded(1, 1.1, 777, schedule);
  auto par = make_sharded(4, 1.1, 777, schedule);

  for (int block = 0; block < 40; ++block) {
    for (int i = 0; i < 10; ++i) {
      seq->step();
      par->step();
    }
    const Cycle at = seq->cycle();
    expect_networks_equal(*seq, *par, at);
    ASSERT_EQ(seq->total_delivered(), par->total_delivered());
    ASSERT_EQ(seq->total_lost(), par->total_lost());
    ASSERT_EQ(seq->fault_events_applied(), par->fault_events_applied());
    ASSERT_EQ(seq->lut_rebuilds(), par->lut_rebuilds());
    ASSERT_TRUE(testing::check_all_invariants(*seq));
    ASSERT_TRUE(testing::check_all_invariants(*par));
  }
  EXPECT_EQ(par->fault_events_applied(), 4u);
}

/// Seed fuzz: 100 random workload seeds, each run a short stretch at a
/// load drawn from the seed, on 1 vs 3 shards. End-state aggregates
/// must match exactly and the full invariant battery must hold on the
/// sharded instance. Cheap per seed, broad across traffic shapes, and
/// — like the fault fuzz matrix — run once per flow-control scheme,
/// since each scheme drives different commit-phase side effects
/// (credit returns, whole-packet admission) through the speculative
/// evaluate/commit protocol.
class ShardFuzz : public ::testing::TestWithParam<FlowControl> {};

TEST_P(ShardFuzz, HundredSeedsAgreeAndHoldInvariants) {
  const FlowControl scheme = GetParam();
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Deterministic seed-derived load in [0.2, 1.2): covers drained,
    // near-saturation and oversaturated regimes across the fuzz.
    const double offered = 0.2 + static_cast<double>(seed % 10) * 0.1;
    auto seq = make_sharded(1, offered, seed, {}, scheme);
    auto par = make_sharded(2 + seed % 3, offered, seed, {}, scheme);
    for (int i = 0; i < 350; ++i) {
      seq->step();
      par->step();
    }
    ASSERT_EQ(seq->total_delivered(), par->total_delivered());
    ASSERT_EQ(seq->messages_in_flight(), par->messages_in_flight());
    ASSERT_EQ(seq->source_queue_total(), par->source_queue_total());
    ASSERT_EQ(seq->total_deadlock_detections(),
              par->total_deadlock_detections());
    ASSERT_EQ(seq->network().flits_in_network(),
              par->network().flits_in_network());
    ASSERT_TRUE(testing::check_all_invariants(*par));
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, ShardFuzz,
                         ::testing::Values(FlowControl::Wormhole,
                                           FlowControl::Credit,
                                           FlowControl::Vct),
                         [](const auto& info) {
                           return std::string(
                               flow_control_name(info.param));
                         });

}  // namespace
}  // namespace wormsim::sim
