// Seeded fuzz over the active-set core: ~100 randomized short runs
// asserting the structural invariants the incremental bookkeeping must
// preserve — flit/message conservation (generated = delivered +
// in-flight + queued), no duplicate active-set membership (incremental
// counts match a bitmap recount), and that lazily retired links/nodes
// re-activate on the next event touching them.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "../support/invariants.hpp"
#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

struct FuzzConfig {
  unsigned k;
  unsigned n;
  unsigned vcs;
  double offered;
  std::uint32_t msg_len;
  traffic::PatternKind pattern;
  traffic::ProcessKind process;
  core::LimiterKind limiter;
  bool mutate_load;  // exercise the set_offered_load epoch path
};

FuzzConfig draw_config(std::mt19937_64& rng) {
  const auto pick = [&](auto... vals) {
    using T = std::common_type_t<decltype(vals)...>;
    const T options[] = {vals...};
    return options[rng() % (sizeof...(vals))];
  };
  FuzzConfig f;
  f.k = pick(2u, 3u, 4u);
  f.n = pick(1u, 2u);
  f.vcs = pick(1u, 2u, 3u);
  // Mix genuinely idle, moderate and saturating systems; idle ones are
  // where stale set members and missed re-activations would hide.
  f.offered = pick(0.0, 0.02, 0.15, 0.5, 1.0, 1.6);
  f.msg_len = pick(4u, 16u, 64u);
  // Bit-permutation patterns need a power-of-two node count, which a
  // 3-ary cube is not.
  f.pattern = f.k == 3 ? pick(traffic::PatternKind::Uniform,
                              traffic::PatternKind::Tornado)
                       : pick(traffic::PatternKind::Uniform,
                              traffic::PatternKind::Complement,
                              traffic::PatternKind::BitReversal,
                              traffic::PatternKind::Tornado);
  f.process = pick(traffic::ProcessKind::Exponential,
                   traffic::ProcessKind::Bernoulli,
                   traffic::ProcessKind::Bursty);
  f.limiter = pick(core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL);
  f.mutate_load = rng() % 3 == 0;
  return f;
}

std::unique_ptr<Simulator> build(const FuzzConfig& f, std::uint64_t seed) {
  const topo::KAryNCube topo(f.k, f.n);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.net.num_vcs = f.vcs;
  cfg.limiter.kind = f.limiter;
  traffic::WorkloadConfig wcfg;
  wcfg.pattern = f.pattern;
  wcfg.process = f.process;
  wcfg.offered_flits_per_node_cycle = f.offered;
  wcfg.length.fixed = f.msg_len;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, seed);
  return std::make_unique<Simulator>(topo, cfg, std::move(workload));
}

class ActiveSetFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ActiveSetFuzz, InvariantsHoldUnderRandomConfig) {
  const std::uint64_t seed = 0xF022ED00u + static_cast<unsigned>(GetParam());
  std::mt19937_64 rng(seed);
  const FuzzConfig f = draw_config(rng);
  SCOPED_TRACE("k=" + std::to_string(f.k) + " n=" + std::to_string(f.n) +
               " vcs=" + std::to_string(f.vcs) +
               " offered=" + std::to_string(f.offered) +
               " len=" + std::to_string(f.msg_len) + " pattern=" +
               std::string(traffic::pattern_name(f.pattern)) + " process=" +
               std::string(traffic::process_name(f.process)) + " limiter=" +
               std::string(core::limiter_name(f.limiter)) +
               (f.mutate_load ? " +load-mutation" : ""));
  auto sim = build(f, seed);

  for (int block = 0; block < 12; ++block) {
    sim->step_cycles(100);
    ASSERT_TRUE(testing::check_all_invariants(*sim));
    if (f.mutate_load && block == 5) {
      // Cross the epoch boundary mid-flight: stale generation hints must
      // be torn down, not serviced.
      sim->workload()->set_offered_load(f.offered > 0.2 ? 0.01 : 0.9);
    }
  }
  // Aggregate conservation, visible through the public counters too.
  EXPECT_TRUE(testing::check_aggregate_conservation(*sim));
}

INSTANTIATE_TEST_SUITE_P(HundredSeeds, ActiveSetFuzz,
                         ::testing::Range(0, 100));

/// Retirement is not forever: drain the system to full quiescence (all
/// active sets allowed to lazily empty), then hit one node with a fresh
/// message. If any retired link/node failed to re-activate, the message
/// could never traverse or deliver.
TEST(ActiveSetFuzz, RetiredComponentsReactivateOnNextEvent) {
  const topo::KAryNCube topo(4, 2);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.4;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 2026);
  Simulator sim(topo, cfg, std::move(workload));

  sim.step_cycles(2000);
  sim.workload()->set_offered_load(0.0);
  const Cycle limit = sim.cycle() + 50000;
  while ((sim.messages_in_flight() > 0 || sim.source_queue_total() > 0 ||
          sim.recovery_pending() > 0) &&
         sim.cycle() < limit) {
    sim.step();
  }
  ASSERT_EQ(sim.messages_in_flight(), 0u);
  ASSERT_TRUE(sim.network().quiescent());
  // Let every lazily-pruned set drain while the system is idle.
  sim.step_cycles(200);
  std::string why;
  ASSERT_TRUE(sim.check_active_sets(&why)) << why;
  ASSERT_TRUE(sim.check_conservation(&why)) << why;

  const std::uint64_t delivered_before = sim.total_delivered();
  ASSERT_TRUE(sim.push_message(0, 15, 16));
  ASSERT_TRUE(testing::run_until_delivered(sim, delivered_before + 1, 2000));
  ASSERT_TRUE(sim.check_active_sets(&why)) << why;
  ASSERT_TRUE(sim.check_conservation(&why)) << why;

  // And again from a different corner of the machine, crossing links
  // that have been idle (and retired) for thousands of cycles.
  ASSERT_TRUE(sim.push_message(10, 5, 64));
  ASSERT_TRUE(testing::run_until_delivered(sim, delivered_before + 2, 2000));
  EXPECT_TRUE(sim.network().quiescent());
}

/// Zero-rate sources unsubscribe from generation entirely (kNeverPoll);
/// a later load increase must resubscribe every node through the epoch
/// bump — generation resumes, it does not stay dark.
TEST(ActiveSetFuzz, RateZeroThenRampGeneratesAgain) {
  const topo::KAryNCube topo(4, 2);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.0;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 31337);
  Simulator sim(topo, cfg, std::move(workload));

  sim.step_cycles(500);
  EXPECT_EQ(sim.collector().measured_generated() + sim.source_queue_total() +
                sim.messages_in_flight() + sim.total_delivered(),
            0u);
  sim.workload()->set_offered_load(0.5);
  sim.step_cycles(1000);
  EXPECT_GT(sim.total_delivered(), 0u);
  std::string why;
  EXPECT_TRUE(sim.check_active_sets(&why)) << why;
  EXPECT_TRUE(sim.check_conservation(&why)) << why;
}

}  // namespace
}  // namespace wormsim::sim
