#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace wormsim::sim {
namespace {

NetworkParams small_params() {
  NetworkParams p;
  p.num_vcs = 3;
  p.buf_flits = 4;
  p.inj_channels = 2;
  p.eje_channels = 2;
  p.link_delay = 2;
  return p;
}

class NetworkTest : public ::testing::Test {
 protected:
  topo::KAryNCube topo_{4, 2};
  Network net_{topo_, small_params()};
};

TEST_F(NetworkTest, LinkCounts) {
  EXPECT_EQ(net_.num_net_links(), 16u * 4u);
  EXPECT_EQ(net_.num_inj_links(), 16u * 2u);
  EXPECT_EQ(net_.num_links(), 96u);
}

TEST_F(NetworkTest, ParamsValidation) {
  NetworkParams bad = small_params();
  bad.num_vcs = 0;
  EXPECT_THROW(Network(topo_, bad), std::invalid_argument);
  bad = small_params();
  bad.num_vcs = 9;
  EXPECT_THROW(Network(topo_, bad), std::invalid_argument);
  bad = small_params();
  bad.link_delay = 0;
  EXPECT_THROW(Network(topo_, bad), std::invalid_argument);
  bad = small_params();
  bad.buf_flits = 0;
  EXPECT_THROW(Network(topo_, bad), std::invalid_argument);
}

TEST_F(NetworkTest, LinkEndpointsMatchTopology) {
  for (topo::NodeId node = 0; node < topo_.num_nodes(); ++node) {
    for (unsigned c = 0; c < topo_.num_channels(); ++c) {
      const Link& l = net_.link(net_.net_link(node, static_cast<topo::ChannelId>(c)));
      EXPECT_EQ(l.src, node);
      EXPECT_EQ(l.dst, topo_.neighbor(node, static_cast<topo::ChannelId>(c)));
      EXPECT_EQ(l.src_channel, c);
    }
    for (unsigned i = 0; i < 2; ++i) {
      const Link& l = net_.link(net_.inj_link(node, i));
      EXPECT_EQ(l.src, topo::kInvalidNode);
      EXPECT_EQ(l.dst, node);
      EXPECT_TRUE(net_.is_injection(net_.inj_link(node, i)));
    }
  }
}

TEST_F(NetworkTest, FreshNetworkFullyFree) {
  EXPECT_TRUE(net_.quiescent());
  EXPECT_EQ(net_.flits_in_network(), 0u);
  for (topo::NodeId node = 0; node < topo_.num_nodes(); ++node) {
    for (unsigned c = 0; c < topo_.num_channels(); ++c) {
      EXPECT_EQ(net_.free_vc_mask(node, static_cast<topo::ChannelId>(c)),
                0b111u);
    }
    EXPECT_EQ(net_.find_free_eject_port(node), 0);
    EXPECT_EQ(net_.find_free_inj_channel(node), 0);
  }
}

TEST_F(NetworkTest, AllocationUpdatesStatusRegister) {
  const VcRef from{net_.inj_link(0, 0), 0};
  net_.vc(from).msg = 7;
  net_.set_active(from, true);

  const VcRef out{net_.net_link(0, 2), 1};
  net_.allocate_out_vc(from, out, 7, /*now=*/5);

  EXPECT_EQ(net_.free_vc_mask(0, 2), 0b101u);  // VC 1 now busy
  EXPECT_EQ(net_.vc(out).msg, 7u);
  EXPECT_EQ(net_.vc(out).upstream.link, from.link);
  EXPECT_EQ(net_.vc(from).out_kind, VcState::OutKind::Vc);
  EXPECT_FALSE(net_.quiescent());
}

TEST_F(NetworkTest, TransmitMovesOneFlitAndReservesSpace) {
  const VcRef from{net_.inj_link(0, 0), 0};
  VcState& u = net_.vc(from);
  u.msg = 3;
  u.in_count = 4;  // four flits written, 16 total
  u.occupancy = 4;
  net_.set_active(from, true);

  const VcRef out{net_.net_link(0, 0), 0};
  net_.allocate_out_vc(from, out, 3, 0);

  EXPECT_FALSE(net_.transmit_flit(from, /*msg_length=*/16, /*now=*/10));
  EXPECT_EQ(u.out_count, 1u);
  EXPECT_EQ(u.occupancy, 3u);
  EXPECT_EQ(net_.vc(out).occupancy, 1u);   // reserved while in flight
  EXPECT_EQ(net_.vc(out).in_count, 0u);    // not arrived yet
  EXPECT_EQ(net_.link(out.link).in_flight.size(), 1u);

  // Arrival lands after link_delay.
  bool header_seen = false;
  net_.process_arrivals(out.link, 11, [&](VcRef) { header_seen = true; });
  EXPECT_FALSE(header_seen);
  EXPECT_EQ(net_.vc(out).in_count, 0u);
  net_.process_arrivals(out.link, 12, [&](VcRef r) {
    header_seen = true;
    EXPECT_EQ(r.link, out.link);
    EXPECT_EQ(r.vc, out.vc);
  });
  EXPECT_TRUE(header_seen);
  EXPECT_EQ(net_.vc(out).in_count, 1u);
  EXPECT_EQ(net_.vc(out).buffered(), 1u);
  EXPECT_EQ(net_.vc(out).header_arrival, 12u);
}

TEST_F(NetworkTest, TailDepartureFreesVc) {
  const VcRef from{net_.inj_link(0, 0), 0};
  VcState& u = net_.vc(from);
  u.msg = 3;
  u.in_count = 2;  // a 2-flit message fully buffered
  u.occupancy = 2;
  net_.set_active(from, true);

  const VcRef out{net_.net_link(0, 0), 2};
  net_.allocate_out_vc(from, out, 3, 0);

  EXPECT_FALSE(net_.transmit_flit(from, 2, 0));
  EXPECT_TRUE(net_.transmit_flit(from, 2, 1));  // tail left
  EXPECT_TRUE(net_.vc(from).free());
  EXPECT_EQ(net_.find_free_inj_channel(0), 0);
  // Downstream keeps its tenancy but loses the upstream reference.
  EXPECT_EQ(net_.vc(out).msg, 3u);
  EXPECT_FALSE(net_.vc(out).upstream.valid());
}

TEST_F(NetworkTest, ForceFreeClearsDownstreamBacklink) {
  const VcRef a{net_.inj_link(0, 0), 0};
  net_.vc(a).msg = 9;
  net_.vc(a).in_count = 1;
  net_.vc(a).occupancy = 1;
  net_.set_active(a, true);
  const VcRef b{net_.net_link(0, 1), 0};
  net_.allocate_out_vc(a, b, 9, 0);

  net_.force_free(a);
  EXPECT_TRUE(net_.vc(a).free());
  EXPECT_FALSE(net_.vc(b).upstream.valid());
  EXPECT_EQ(net_.vc(b).msg, 9u);  // b itself untouched
}

TEST_F(NetworkTest, EjectPortBinding) {
  const VcRef from{net_.net_link(1, 0), 0};
  net_.vc(from).msg = 5;
  net_.set_active(from, true);
  const topo::NodeId node = net_.link(from.link).dst;
  net_.bind_eject(from, node, 1, 5);
  EXPECT_TRUE(net_.eject_port(node, 1).busy());
  EXPECT_EQ(net_.eject_port(node, 1).msg, 5u);
  EXPECT_EQ(net_.find_free_eject_port(node), 0);
  EXPECT_EQ(net_.vc(from).out_kind, VcState::OutKind::Eject);
}

TEST(InFlightQueueTest, FifoOrder) {
  InFlightQueue q;
  q.push(10, 0, 1);
  q.push(11, 1, 2);
  q.push(12, 2, 3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front().arrival, 10u);
  q.pop();
  EXPECT_EQ(q.front().msg, 2u);
}

TEST(InFlightQueueTest, DropMessageKeepsOthersInOrder) {
  InFlightQueue q;
  q.push(10, 0, 1);
  q.push(11, 1, 2);
  q.push(12, 2, 1);
  q.push(13, 0, 3);
  EXPECT_EQ(q.drop_message(1), 2u);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().msg, 2u);
  q.pop();
  EXPECT_EQ(q.front().msg, 3u);
  EXPECT_EQ(q.front().arrival, 13u);
}

TEST(InFlightQueueTest, DropOnEmptyIsZero) {
  InFlightQueue q;
  EXPECT_EQ(q.drop_message(1), 0u);
}

}  // namespace
}  // namespace wormsim::sim
