// Edge behaviours: wraparound traversal, adaptive avoidance of blocked
// channels, recovery/limiter interplay, and mid-run load changes.
#include <gtest/gtest.h>

#include "core/alo.hpp"
#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;
using testing::ideal_latency;
using testing::make_sim;
using testing::make_traffic_sim;
using testing::run_until_delivered;

TEST(EdgeBehavior, WraparoundPathIsMinimal) {
  // 7 -> 1 on an 8-ring: minimal route crosses the wraparound (2 hops
  // Plus), not the 6-hop interior path.
  auto sim = make_sim(8, 1);
  sim->push_message(7, 1, 16);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  const auto r = sim->collector().finish(8);
  EXPECT_DOUBLE_EQ(r.latency_mean,
                   static_cast<double>(ideal_latency(*sim, 7, 1, 16)));
  // The wrap link 7->0 (dim 0 Plus) carried all 16 flits.
  const auto wrap = sim->network().net_link(
      7, topo::make_channel(0, topo::Dir::Plus));
  EXPECT_EQ(sim->network().link(wrap).flits_carried, 16u);
}

TEST(EdgeBehavior, DorCrossesDatelineWithoutDeadlockDetectionArmed) {
  // Moderate load: dateline crossings happen constantly, and the armed
  // FC3D-style detector must stay silent. (Close to ring saturation the
  // detector does show false positives on DOR — stalled-but-live chains
  // longer than the threshold — which is the documented limitation of
  // threshold-based presumption that FC3D's threshold tuning addresses.)
  SimulatorConfig cfg = default_config();
  cfg.algorithm = routing::Algorithm::DOR;
  cfg.detection.enabled = true;
  auto sim = make_traffic_sim(8, 1, 0.25, 16, cfg);
  sim->step_cycles(10000);
  EXPECT_EQ(sim->total_deadlock_detections(), 0u);
  EXPECT_GT(sim->total_delivered(), 1000u);
}

TEST(EdgeBehavior, TfarRoutesAroundOccupiedChannel) {
  // Two-dimension adaptivity: with the preferred dim-0 channel fully
  // occupied by a long worm, a second message to a diagonal destination
  // proceeds through dim 1 instead of waiting.
  auto cfg = default_config();
  cfg.net.num_vcs = 1;
  auto sim = make_sim(4, 2, cfg);
  // Blocker: 0 -> 2 straight along dim 0 (through (1,0)), long.
  sim->push_message(0, 2, 200);
  sim->step_cycles(6);  // blocker owns link 0->(1,0)
  // Contender: 0 -> 5 = (1,1); useful channels: dim0+ (busy) and dim1+.
  sim->push_message(0, 5, 16);
  const Cycle start = sim->cycle();
  ASSERT_TRUE(run_until_delivered(*sim, 1, 2000));
  // Delivered while the blocker is still transferring -> it adapted.
  const Cycle elapsed = sim->cycle() - start;
  EXPECT_LT(elapsed, 60u);
  EXPECT_EQ(sim->total_delivered(), 1u);
}

TEST(EdgeBehavior, RecoveredMessagesBypassTheLimiter) {
  // Force deadlocks on a 1-VC ring with the ALO limiter active: the
  // absorbed messages must be re-injected (and delivered) even though
  // the local channels look congested to ALO at that moment.
  auto cfg = default_config();
  cfg.net.num_vcs = 1;
  cfg.limiter.kind = core::LimiterKind::ALO;
  auto sim = make_sim(5, 1, cfg);
  for (topo::NodeId i = 0; i < 5; ++i) {
    // Bypass generation-side throttling by injecting all at once: ALO
    // allows the first injection on an idle network.
    ASSERT_TRUE(sim->push_message(i, (i + 2) % 5, 16));
  }
  EXPECT_TRUE(run_until_delivered(*sim, 5, 30000));
  EXPECT_GE(sim->total_deadlock_detections(), 1u);
}

TEST(EdgeBehavior, MidRunLoadChangeTakesEffect) {
  auto sim = make_traffic_sim(4, 2, 0.1, 16);
  sim->step_cycles(3000);
  const auto low = sim->collector().finish(16).messages_generated;
  sim->workload()->set_offered_load(0.8);
  sim->step_cycles(3000);
  const auto total = sim->collector().finish(16).messages_generated;
  // Second half at 8x the rate: generation in that window must dominate.
  EXPECT_GT(total - low, 4 * low);
}

TEST(EdgeBehavior, TwoByTwoTorusWorks) {
  // Smallest torus: k=2 rings where Plus and Minus reach the same
  // neighbor. Everything must still route and drain.
  auto sim = make_sim(2, 2);
  unsigned count = 0;
  for (topo::NodeId s = 0; s < 4; ++s) {
    for (topo::NodeId d = 0; d < 4; ++d) {
      if (s != d) {
        sim->push_message(s, d, 8);
        ++count;
      }
    }
  }
  ASSERT_TRUE(run_until_delivered(*sim, count, 5000));
  EXPECT_TRUE(sim->network().quiescent());
}

TEST(EdgeBehavior, EightAryThreeCubeSmoke) {
  // Paper-scale topology, brief run: sanity that the 512-node network
  // sustains traffic with ALO and stays deadlock-clean at moderate load.
  SimulatorConfig cfg = default_config();
  cfg.limiter.kind = core::LimiterKind::ALO;
  auto sim = make_traffic_sim(8, 3, 0.3, 16, cfg);
  sim->step_cycles(2000);
  EXPECT_GT(sim->total_delivered(), 10000u);
  EXPECT_EQ(sim->total_deadlock_detections(), 0u);
}

}  // namespace
}  // namespace wormsim::sim
