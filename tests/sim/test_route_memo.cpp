// The blocked-header route memo and its invalidation machinery.
//
// The memo's correctness argument rests on the per-link epoch counters:
// set_active is the sole writer of active_vc_mask, it bumps the owning
// link's epoch on every call, and an unchanged epoch sum over a
// header's candidate links therefore proves the free-VC masks those
// candidates see are unchanged — the header is still blocked and both
// re-route and re-selection can be skipped. These tests pin the epoch
// contract directly and then check, by lock-step differential runs,
// that memoization never changes a single bit of simulation state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/schedule.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim_test_util.hpp"
#include "traffic/workload.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

NetworkParams small_params() {
  NetworkParams p;
  p.num_vcs = 3;
  p.buf_flits = 4;
  p.inj_channels = 2;
  p.eje_channels = 2;
  p.link_delay = 2;
  return p;
}

TEST(LinkEpoch, BumpsOnEverySetActiveOfANetLink) {
  const topo::KAryNCube topo(4, 2);
  Network net(topo, small_params());
  const LinkId l = net.net_link(/*node=*/5, /*out_channel=*/1);
  const VcRef ref{l, 1};

  const std::uint64_t before = net.link_epoch(l);
  net.set_active(ref, true);
  EXPECT_EQ(net.link_epoch(l), before + 1);
  // Deactivation may also change the free mask, so it must bump too.
  net.set_active(ref, false);
  EXPECT_EQ(net.link_epoch(l), before + 2);
}

TEST(LinkEpoch, OtherLinksAndInjectionLinksStayUntouched) {
  const topo::KAryNCube topo(4, 2);
  Network net(topo, small_params());
  std::vector<std::uint64_t> before(net.num_net_links());
  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    before[l] = net.link_epoch(l);
  }

  const LinkId touched = net.net_link(3, 2);
  net.set_active(VcRef{touched, 0}, true);
  // Injection links carry no epoch (the memo never keys on them);
  // touching one must not disturb any net-link epoch.
  net.set_active(VcRef{net.inj_link(7, 0), 0}, true);

  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    EXPECT_EQ(net.link_epoch(l), before[l] + (l == touched ? 1u : 0u))
        << "link " << l;
  }
}

TEST(LinkEpoch, RowViewAliasesPerLinkCounters) {
  const topo::KAryNCube topo(3, 3);
  Network net(topo, small_params());
  net.set_active(VcRef{net.net_link(4, 3), 2}, true);
  net.set_active(VcRef{net.net_link(4, 3), 1}, true);
  for (NodeId node = 0; node < topo.num_nodes(); ++node) {
    const std::uint64_t* row = net.link_epoch_row(node);
    for (unsigned c = 0; c < topo.num_channels(); ++c) {
      EXPECT_EQ(row[c],
                net.link_epoch(net.net_link(node, static_cast<ChannelId>(c))))
          << node << "/" << c;
    }
  }
}

/// Epoch-equality really means mask-equality: any transition that can
/// change a link's free-VC mask goes through set_active, so two
/// observations with equal epochs must see equal masks. Exercised over
/// a saturated run rather than synthetic mutations.
TEST(LinkEpoch, EqualEpochImpliesEqualFreeMaskAcrossCycles) {
  auto sim = testing::make_traffic_sim(4, 2, 1.1, 16);
  const Network& net = sim->network();
  const LinkId links = net.num_net_links();
  std::vector<std::uint64_t> epoch(links);
  std::vector<std::uint8_t> mask(links);
  const auto snap = [&] {
    for (LinkId l = 0; l < links; ++l) {
      epoch[l] = net.link_epoch(l);
      mask[l] = static_cast<std::uint8_t>(
          net.free_vc_mask(net.link(l).src, net.link(l).src_channel));
    }
  };
  sim->step_cycles(500);  // well into saturation
  snap();
  for (int i = 0; i < 400; ++i) {
    sim->step();
    for (LinkId l = 0; l < links; ++l) {
      const std::uint64_t e = net.link_epoch(l);
      const auto m = static_cast<std::uint8_t>(
          net.free_vc_mask(net.link(l).src, net.link(l).src_channel));
      if (e == epoch[l]) {
        ASSERT_EQ(m, mask[l]) << "link " << l << " cycle " << sim->cycle();
      }
      epoch[l] = e;
      mask[l] = m;
    }
  }
}

/// Lock-step differential: the memoized active core against the
/// memo-off active core and the dense reference, past saturation with
/// deadlock detection/recovery firing. Complete channel-state equality
/// every cycle — a stale memo hit (missed invalidation, stale tenancy
/// key, wrong no-detect bound) would diverge within a few cycles.
TEST(RouteMemo, LockStepIdenticalToMemoOffAndDense) {
  const topo::KAryNCube topo(4, 2);
  const auto make = [&](SimCore core, bool memo) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    cfg.fastpath.route_memo = memo;
    // Unlimited TFAR on a single VC: past saturation this deadlocks
    // repeatedly, which is what makes the no-detect bounds in the memo
    // load-bearing (a premature skip would delay a detection).
    cfg.limiter.kind = core::LimiterKind::None;
    cfg.net.num_vcs = 1;
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.2;
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 99);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto memo_on = make(SimCore::Active, true);
  auto memo_off = make(SimCore::Active, false);
  auto dense = make(SimCore::Dense, true);  // toggles are no-ops on Dense

  for (int block = 0; block < 200; ++block) {
    for (int i = 0; i < 10; ++i) {
      memo_on->step();
      memo_off->step();
      dense->step();
    }
    const Cycle at = memo_on->cycle();
    for (const Simulator* other : {memo_off.get(), dense.get()}) {
      const Network& a = memo_on->network();
      const Network& b = other->network();
      for (LinkId l = 0; l < a.num_links(); ++l) {
        ASSERT_EQ(a.link(l).active_vc_mask, b.link(l).active_vc_mask)
            << "link " << l << " cycle " << at;
        for (unsigned v = 0; v < a.vcs_on(l); ++v) {
          const VcRef ref{l, static_cast<std::uint8_t>(v)};
          ASSERT_EQ(a.vc(ref).msg, b.vc(ref).msg)
              << "vc " << l << "/" << v << " cycle " << at;
          ASSERT_EQ(a.vc(ref).occupancy, b.vc(ref).occupancy)
              << "vc " << l << "/" << v << " cycle " << at;
          ASSERT_EQ(a.vc(ref).last_activity, b.vc(ref).last_activity)
              << "vc " << l << "/" << v << " cycle " << at;
        }
      }
    }
    ASSERT_EQ(memo_on->total_delivered(), memo_off->total_delivered());
    ASSERT_EQ(memo_on->total_delivered(), dense->total_delivered());
    ASSERT_EQ(memo_on->total_deadlock_detections(),
              memo_off->total_deadlock_detections());
    ASSERT_EQ(memo_on->total_deadlock_detections(),
              dense->total_deadlock_detections());
  }
  // The run actually exercised the memo: deadlocks fired (so the
  // no-detect bounds mattered) and a meaningful share of route queries
  // were answered from the memo.
  EXPECT_GT(memo_on->total_deadlock_detections(), 0u);
  EXPECT_GT(memo_on->scan_stats().route_memo_hits, 0u);
  EXPECT_EQ(memo_off->scan_stats().route_memo_hits, 0u);
  EXPECT_EQ(dense->scan_stats().route_memo_hits, 0u);
}

/// Fault surgery participates in the same epoch contract: marking a
/// link dead (or alive again) changes its free-VC mask, so it must bump
/// that link's epoch exactly like set_active, and a whole-table rebuild
/// invalidates every memoized route via bump_all_epochs.
TEST(LinkEpoch, DeadLinkTransitionsBumpLikeSetActive) {
  const topo::KAryNCube topo(4, 2);
  Network net(topo, small_params());
  const LinkId l = net.net_link(2, 3);
  std::vector<std::uint64_t> before(net.num_net_links());
  for (LinkId i = 0; i < net.num_net_links(); ++i) {
    before[i] = net.link_epoch(i);
  }

  net.set_link_dead(l, true);
  EXPECT_EQ(net.free_vc_mask(net.link(l).src, net.link(l).src_channel), 0u);
  net.set_link_dead(l, false);
  for (LinkId i = 0; i < net.num_net_links(); ++i) {
    EXPECT_EQ(net.link_epoch(i), before[i] + (i == l ? 2u : 0u))
        << "link " << i;
  }

  net.bump_all_epochs();
  for (LinkId i = 0; i < net.num_net_links(); ++i) {
    EXPECT_EQ(net.link_epoch(i), before[i] + (i == l ? 3u : 1u))
        << "link " << i;
  }
}

/// The recovery-transient soak the epoch contract exists for: the same
/// physical link dies and heals three times while the 1-VC network
/// deadlocks repeatedly, so fault surgery, LUT rebuilds, route-memo
/// flushes and deadlock recovery all interleave. The memoized core must
/// stay bit-identical to the memo-off core and the dense reference
/// throughout — a memo entry surviving a rebuild would diverge at the
/// first stale route.
TEST(RouteMemo, KillRestoreThroughRepeatedDeadlockEpisodes) {
  const topo::KAryNCube topo(4, 2);
  const fault::FaultSchedule schedule({
      {300, fault::FaultKind::LinkKill, 6, 2},
      {600, fault::FaultKind::LinkRestore, 6, 2},
      {900, fault::FaultKind::LinkKill, 6, 2},
      {1200, fault::FaultKind::LinkRestore, 6, 2},
      {1500, fault::FaultKind::LinkKill, 6, 2},
      {1800, fault::FaultKind::LinkRestore, 6, 2},
  });
  const auto make = [&](SimCore core, bool memo) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    cfg.fastpath.route_memo = memo;
    cfg.limiter.kind = core::LimiterKind::None;
    cfg.net.num_vcs = 1;  // deadlocks repeatedly past saturation
    cfg.faults = schedule;
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.2;
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 99);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto memo_on = make(SimCore::Active, true);
  auto memo_off = make(SimCore::Active, false);
  auto dense = make(SimCore::Dense, true);

  for (int block = 0; block < 200; ++block) {
    for (int i = 0; i < 10; ++i) {
      memo_on->step();
      memo_off->step();
      dense->step();
    }
    const Cycle at = memo_on->cycle();
    for (const Simulator* other : {memo_off.get(), dense.get()}) {
      const Network& a = memo_on->network();
      const Network& b = other->network();
      for (LinkId l = 0; l < a.num_links(); ++l) {
        ASSERT_EQ(a.link(l).active_vc_mask, b.link(l).active_vc_mask)
            << "link " << l << " cycle " << at;
        for (unsigned v = 0; v < a.vcs_on(l); ++v) {
          const VcRef ref{l, static_cast<std::uint8_t>(v)};
          ASSERT_EQ(a.vc(ref).msg, b.vc(ref).msg)
              << "vc " << l << "/" << v << " cycle " << at;
          ASSERT_EQ(a.vc(ref).occupancy, b.vc(ref).occupancy)
              << "vc " << l << "/" << v << " cycle " << at;
        }
      }
      ASSERT_EQ(memo_on->total_delivered(), other->total_delivered())
          << "cycle " << at;
      ASSERT_EQ(memo_on->total_lost(), other->total_lost())
          << "cycle " << at;
      ASSERT_EQ(memo_on->total_deadlock_detections(),
                other->total_deadlock_detections())
          << "cycle " << at;
    }
    std::string why;
    ASSERT_TRUE(memo_on->check_fault_invariants(&why)) << why;
  }

  // The soak exercised what it claims: all six fault events applied
  // (with a rebuild each), deadlock recovery fired across the episodes,
  // and the memo answered real queries between the flushes.
  EXPECT_EQ(memo_on->fault_events_applied(), 6u);
  EXPECT_EQ(memo_on->lut_rebuilds(), 6u);
  EXPECT_EQ(dense->fault_events_applied(), 6u);
  EXPECT_GT(memo_on->total_deadlock_detections(), 3u);
  EXPECT_GT(memo_on->scan_stats().route_memo_hits, 0u);
  EXPECT_EQ(memo_off->scan_stats().route_memo_hits, 0u);
}

/// The memo under the shard-parallel evaluate/commit core: past
/// saturation on a network wide enough for genuine 2- and 4-way word
/// partitions, most route decisions are memo tenancy hits evaluated
/// speculatively against pre-cycle state, and earlier commits routinely
/// dirty them (a teardown or allocation at the same node mid-cycle).
/// The commit phase must detect each conflict, discard the memoized
/// decision, and re-run the entry inline — with results bit-identical
/// to the sequential core at every cycle, which is exactly what a stale
/// speculative memo hit surviving to commit would break.
TEST(RouteMemo, ShardedCommitConflictsReplayMemoizedRoutesExactly) {
  const topo::KAryNCube topo(16, 2);  // 256 nodes = 4 ownership words
  const auto make = [&](unsigned shards) {
    SimulatorConfig cfg = default_config();
    cfg.core = SimCore::Active;
    cfg.fastpath.route_memo = true;
    cfg.limiter.kind = core::LimiterKind::None;
    cfg.net.num_vcs = 1;  // deadlocks repeatedly past saturation
    cfg.shards = shards;
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.2;
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 99);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto seq = make(1);
  auto two = make(2);
  auto four = make(4);

  for (int block = 0; block < 60; ++block) {
    for (int i = 0; i < 10; ++i) {
      seq->step();
      two->step();
      four->step();
    }
    const Cycle at = seq->cycle();
    for (const Simulator* other : {two.get(), four.get()}) {
      const Network& a = seq->network();
      const Network& b = other->network();
      for (LinkId l = 0; l < a.num_links(); ++l) {
        ASSERT_EQ(a.link(l).active_vc_mask, b.link(l).active_vc_mask)
            << "link " << l << " cycle " << at;
        for (unsigned v = 0; v < a.vcs_on(l); ++v) {
          const VcRef ref{l, static_cast<std::uint8_t>(v)};
          ASSERT_EQ(a.vc(ref).msg, b.vc(ref).msg)
              << "vc " << l << "/" << v << " cycle " << at;
          ASSERT_EQ(a.vc(ref).occupancy, b.vc(ref).occupancy)
              << "vc " << l << "/" << v << " cycle " << at;
          ASSERT_EQ(a.vc(ref).last_activity, b.vc(ref).last_activity)
              << "vc " << l << "/" << v << " cycle " << at;
        }
      }
      ASSERT_EQ(seq->total_delivered(), other->total_delivered())
          << "cycle " << at;
      ASSERT_EQ(seq->total_deadlock_detections(),
                other->total_deadlock_detections())
          << "cycle " << at;
    }
  }
  // The run exercised exactly the interaction under test: deadlocks
  // fired, route queries were answered from the memo, and the commit
  // phase hit real conflicts that forced inline re-evaluation. The
  // sequential core never speculates, so its conflict count pins the
  // counter's zero baseline.
  EXPECT_GT(seq->total_deadlock_detections(), 0u);
  EXPECT_GT(seq->scan_stats().route_memo_hits, 0u);
  EXPECT_EQ(seq->scan_stats().commit_decisions, 0u);
  EXPECT_EQ(seq->scan_stats().commit_conflicts, 0u);
  for (const Simulator* sharded : {two.get(), four.get()}) {
    EXPECT_GT(sharded->scan_stats().route_memo_hits, 0u);
    EXPECT_GT(sharded->scan_stats().commit_decisions, 0u);
    EXPECT_GT(sharded->scan_stats().commit_conflicts, 0u);
  }
}

/// Memo accounting: hits only ever come from headers that blocked at
/// least once, so a message crossing an otherwise empty network
/// reports none even with the memo enabled.
TEST(RouteMemo, NoHitsWithoutContention) {
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  auto sim = testing::make_sim(4, 2, cfg);
  ASSERT_TRUE(sim->push_message(0, 5, 8));
  ASSERT_TRUE(testing::run_until_delivered(*sim, 1));
  EXPECT_EQ(sim->scan_stats().route_memo_hits, 0u);
}

}  // namespace
}  // namespace wormsim::sim
