// Wormhole switching semantics: pipelining, link bandwidth, VC
// multiplexing, blocking and ejection contention.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;
using testing::ideal_latency;
using testing::make_sim;
using testing::run_until_delivered;

TEST(Wormhole, LinkSaturatesAtOneFlitPerCycle) {
  // Back-to-back messages across one link: n messages of length L need
  // about n*L cycles of link time (pipelined), not n * full-latency.
  auto sim = make_sim(5, 1);
  const topo::NodeId dst = sim->topology().neighbor(0, 0);
  constexpr int kMsgs = 20;
  constexpr std::uint32_t kLen = 16;
  for (int i = 0; i < kMsgs; ++i) sim->push_message(0, dst, kLen);
  ASSERT_TRUE(run_until_delivered(*sim, kMsgs, 10000));
  const auto total = sim->cycle();
  // Lower bound: serialization of all flits over one ejection-side VC;
  // upper bound allows per-message header overhead but must be far
  // below fully serialized end-to-end latency.
  EXPECT_GE(total, kMsgs * kLen);
  EXPECT_LE(total, kMsgs * kLen + 100);
}

TEST(Wormhole, WormSpansMultipleRouters) {
  // A 64-flit message over a 6-hop path with 4-flit buffers must occupy
  // several VCs at once mid-flight.
  auto sim = make_sim(8, 1, [] {
    auto cfg = default_config();
    cfg.net.num_vcs = 1;
    return cfg;
  }());
  sim->push_message(0, 3, 64);
  // Step into the middle of the transfer and count held VCs.
  sim->step_cycles(20);
  std::uint64_t held = 0;
  const auto& net = sim->network();
  for (LinkId l = 0; l < net.num_links(); ++l) {
    for (unsigned v = 0; v < net.vcs_on(l); ++v) {
      if (!net.vc({l, static_cast<std::uint8_t>(v)}).free()) ++held;
    }
  }
  EXPECT_GE(held, 3u);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 2000));
  EXPECT_TRUE(sim->network().quiescent());
}

TEST(Wormhole, SingleVcBlocksSecondWorm) {
  // k=5 ring, 1 VC: 0->2 and 1->3 share link 1->2. The second worm must
  // wait for the first tail to release the VC.
  auto cfg = default_config();
  cfg.net.num_vcs = 1;
  auto solo = make_sim(5, 1, cfg);
  solo->push_message(1, 3, 32);
  ASSERT_TRUE(run_until_delivered(*solo, 1, 2000));
  const double solo_lat = solo->collector().finish(5).latency_mean;

  auto sim = make_sim(5, 1, cfg);
  sim->push_message(0, 2, 32);
  sim->push_message(1, 3, 32);
  ASSERT_TRUE(run_until_delivered(*sim, 2, 5000));
  const auto r = sim->collector().finish(5);
  // Message 1->3 blocked behind 0->2's worm: its latency exceeds solo.
  EXPECT_GT(r.latency_max, solo_lat + 10);
}

TEST(Wormhole, TwoVcsMultiplexTheLink) {
  // Same conflict with 2 VCs: both worms advance, sharing bandwidth.
  auto cfg = default_config();
  cfg.net.num_vcs = 2;
  auto sim = make_sim(5, 1, cfg);
  sim->push_message(0, 2, 32);
  sim->push_message(1, 3, 32);
  ASSERT_TRUE(run_until_delivered(*sim, 2, 5000));
  const auto r = sim->collector().finish(5);

  auto cfg1 = default_config();
  cfg1.net.num_vcs = 1;
  auto blocked = make_sim(5, 1, cfg1);
  blocked->push_message(0, 2, 32);
  blocked->push_message(1, 3, 32);
  ASSERT_TRUE(run_until_delivered(*blocked, 2, 5000));
  const auto rb = blocked->collector().finish(5);

  // VC multiplexing strictly improves the blocked worm's completion.
  EXPECT_LT(r.latency_max, rb.latency_max);
}

TEST(Wormhole, RoundRobinSharesBandwidthFairly) {
  // Two long worms multiplexing one link should finish close together.
  auto cfg = default_config();
  cfg.net.num_vcs = 2;
  auto sim = make_sim(5, 1, cfg);
  sim->push_message(0, 2, 64);
  sim->push_message(1, 3, 64);
  ASSERT_TRUE(run_until_delivered(*sim, 2, 5000));
  const auto r = sim->collector().finish(5);
  // Demand-slotted round robin: both take ~2x the solo time; the spread
  // between the two must be small compared to the message length.
  EXPECT_LT(r.latency_max - r.latency_min, 64.0);
}

TEST(Wormhole, EjectionPortsLimitSinkBandwidth) {
  // 6 long messages to one destination with 2 ejection ports: the sink
  // drains at most 2 flits/cycle.
  auto cfg = default_config();
  cfg.net.eje_channels = 2;
  auto sim = make_sim(4, 2, cfg);
  constexpr std::uint32_t kLen = 32;
  // Six different sources, same destination 5.
  for (const topo::NodeId src : {0u, 1u, 2u, 3u, 8u, 12u}) {
    sim->push_message(src, 5, kLen);
  }
  ASSERT_TRUE(run_until_delivered(*sim, 6, 5000));
  // 6*32 = 192 flits through 2 ports >= 96 cycles.
  EXPECT_GE(sim->cycle(), 96u);
}

TEST(Wormhole, BodyFollowsHeaderPath) {
  // After delivery the network must be fully clean — no stranded flits
  // anywhere along the multi-hop path.
  auto sim = make_sim(4, 3);
  sim->push_message(0, 42 % 64, 64);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 3000));
  EXPECT_EQ(sim->network().flits_in_network(), 0u);
  EXPECT_TRUE(sim->network().quiescent());
}

TEST(Wormhole, ManyParallelWormsAllComplete) {
  auto sim = make_sim(4, 2);
  unsigned count = 0;
  for (topo::NodeId src = 0; src < 16; ++src) {
    const topo::NodeId dst = (src + 5) % 16;
    if (dst == src) continue;
    sim->push_message(src, dst, 24);
    ++count;
  }
  ASSERT_TRUE(run_until_delivered(*sim, count, 10000));
  EXPECT_TRUE(sim->network().quiescent());
  EXPECT_EQ(sim->total_deadlock_detections(), 0u);
}

TEST(Wormhole, HeaderWaitsForRoutingDelay) {
  // Doubling the routing delay adds one cycle per hop.
  auto cfg = default_config();
  cfg.routing_delay = 2;
  auto sim = make_sim(4, 2, cfg);
  sim->push_message(0, 5, 16);  // distance 2
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  const auto r = sim->collector().finish(16);
  EXPECT_DOUBLE_EQ(r.latency_mean,
                   static_cast<double>(ideal_latency(*sim, 0, 5, 16)));
}

TEST(Wormhole, LinkDelayScalesPerHop) {
  auto cfg = default_config();
  cfg.net.link_delay = 4;
  cfg.net.buf_flits = 8;  // buffer must cover the credit round-trip
  auto sim = make_sim(4, 2, cfg);
  sim->push_message(0, 5, 16);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  const auto r = sim->collector().finish(16);
  EXPECT_DOUBLE_EQ(r.latency_mean,
                   static_cast<double>(ideal_latency(*sim, 0, 5, 16)));
}

TEST(Wormhole, ShallowBuffersAddCreditStalls) {
  // With buf_flits == link_delay the buffer cannot cover the credit
  // round-trip, costing one bubble per hop — a real router effect the
  // simulator must reproduce.
  auto cfg = default_config();
  cfg.net.link_delay = 4;
  cfg.net.buf_flits = 4;
  auto sim = make_sim(4, 2, cfg);
  sim->push_message(0, 5, 16);  // 2 hops
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  const auto r = sim->collector().finish(16);
  EXPECT_GT(r.latency_mean,
            static_cast<double>(ideal_latency(*sim, 0, 5, 16)));
}

}  // namespace
}  // namespace wormsim::sim
