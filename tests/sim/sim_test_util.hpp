// Shared helpers for simulator tests.
#pragma once

#include <memory>

#include "sim/simulator.hpp"
#include "traffic/workload.hpp"

namespace wormsim::sim::testing {

inline SimulatorConfig default_config() {
  SimulatorConfig cfg;
  cfg.net.num_vcs = 3;
  cfg.net.buf_flits = 4;
  cfg.net.inj_channels = 4;
  cfg.net.eje_channels = 4;
  cfg.net.link_delay = 2;
  cfg.routing_delay = 1;
  cfg.algorithm = routing::Algorithm::TFAR;
  cfg.selection = routing::SelectionPolicy::MaxFreeVcs;
  cfg.detection.enabled = true;
  cfg.detection.threshold = 32;
  cfg.recovery.base_delay = 32;
  cfg.limiter.kind = core::LimiterKind::None;
  return cfg;
}

/// Simulator over a k-ary n-cube with no autonomous traffic; tests drive
/// it via push_message().
inline std::unique_ptr<Simulator> make_sim(unsigned k, unsigned n,
                                           SimulatorConfig cfg = default_config()) {
  const topo::KAryNCube topo(k, n);
  return std::make_unique<Simulator>(topo, cfg, nullptr);
}

/// Simulator with an autonomous workload (uniform by default).
inline std::unique_ptr<Simulator> make_traffic_sim(
    unsigned k, unsigned n, double offered_flits, std::uint32_t msg_len,
    SimulatorConfig cfg = default_config(),
    traffic::PatternKind pattern = traffic::PatternKind::Uniform,
    std::uint64_t seed = 12345) {
  const topo::KAryNCube topo(k, n);
  traffic::WorkloadConfig wcfg;
  wcfg.pattern = pattern;
  wcfg.offered_flits_per_node_cycle = offered_flits;
  wcfg.length.fixed = msg_len;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, seed);
  return std::make_unique<Simulator>(topo, cfg, std::move(workload));
}

/// Step until the simulator has delivered `count` messages or `limit`
/// cycles elapse; returns true on success.
inline bool run_until_delivered(Simulator& sim, std::uint64_t count,
                                std::uint64_t limit = 100000) {
  const std::uint64_t deadline = sim.cycle() + limit;
  while (sim.total_delivered() < count && sim.cycle() < deadline) {
    sim.step();
  }
  return sim.total_delivered() >= count;
}

/// Expected no-contention latency of one message in this codebase's
/// timing model: per hop routing_delay + link_delay, plus routing_delay
/// for the ejection-port binding at the destination, plus `length`
/// cycles of ejection serialization. Valid when the per-VC buffer
/// exceeds the credit round-trip (buf_flits > link_delay); shallower
/// buffers add genuine credit-stall bubbles.
inline std::uint64_t ideal_latency(const Simulator& sim, topo::NodeId src,
                                   topo::NodeId dst, std::uint32_t length) {
  const unsigned hops = sim.topology().distance(src, dst);
  const auto& cfg = sim.config();
  return static_cast<std::uint64_t>(hops) *
             (cfg.routing_delay + cfg.net.link_delay) +
         cfg.routing_delay + length;
}

}  // namespace wormsim::sim::testing
