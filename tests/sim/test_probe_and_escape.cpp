// Focused behaviours: the Figure-2 probe samples exactly once per hop,
// and Duato's escape layer actually carries traffic when the adaptive
// VCs are exhausted.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;
using testing::make_sim;
using testing::make_traffic_sim;
using testing::run_until_delivered;

TEST(Probe, SamplesOncePerRoutingHop) {
  // A lone message at distance H triggers exactly H routing occurrences
  // at routers where it is not yet at its destination (source router
  // included, destination router excluded).
  auto sim = make_sim(4, 2);
  const topo::NodeId dst = 9;  // (1,2): distance(0, 9) == 3 on the 4x4 torus
  ASSERT_EQ(sim->topology().distance(0, dst), 3u);
  sim->push_message(0, dst, 8);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  EXPECT_EQ(sim->collector().finish(16).probe.samples, 3u);
}

TEST(Probe, BlockedHeaderDoesNotResample) {
  // Two worms colliding on a 1-VC ring: the blocked header retries its
  // routing every cycle but the probe must count one occurrence per hop,
  // so total samples = total hops across both messages.
  auto cfg = default_config();
  cfg.net.num_vcs = 1;
  auto sim = make_sim(5, 1, cfg);
  sim->push_message(0, 2, 32);  // 2 hops
  sim->push_message(1, 3, 32);  // 2 hops, blocked behind the first
  ASSERT_TRUE(run_until_delivered(*sim, 2, 5000));
  EXPECT_EQ(sim->collector().finish(5).probe.samples, 4u);
}

TEST(Probe, IdleNetworkSatisfiesBothRules) {
  auto sim = make_sim(4, 2);
  sim->push_message(0, 5, 8);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  const auto probe = sim->collector().finish(16).probe;
  EXPECT_EQ(probe.samples, probe.rule_a);
  EXPECT_EQ(probe.samples, probe.rule_b);
  EXPECT_DOUBLE_EQ(probe.pct_either(), 100.0);
}

TEST(DuatoEscape, EscapeLayerCarriesTrafficUnderContention) {
  // Saturate a Duato-routed network and verify VC0/VC1 (escape layer)
  // actually carried flits: without a live escape layer the protocol's
  // deadlock-freedom argument would be vacuous.
  SimulatorConfig cfg = default_config();
  cfg.algorithm = routing::Algorithm::Duato;
  cfg.detection.enabled = false;
  auto sim = make_traffic_sim(4, 2, /*offered=*/0.8, /*len=*/16, cfg);
  sim->step_cycles(6000);

  // Count tenancies observed on escape vs adaptive VCs right now, plus
  // deliveries as a liveness check.
  const Network& net = sim->network();
  unsigned escape_busy = 0, adaptive_busy = 0;
  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    const auto mask = net.link(l).active_vc_mask;
    escape_busy += (mask & 0b011) != 0;
    adaptive_busy += (mask & 0b100) != 0;
  }
  EXPECT_GT(adaptive_busy, 0u);
  EXPECT_GT(escape_busy, 0u);
  EXPECT_GT(sim->total_delivered(), 2000u);
  EXPECT_EQ(sim->total_deadlock_detections(), 0u);
}

TEST(DuatoEscape, LowLoadPrefersAdaptiveVcs) {
  SimulatorConfig cfg = default_config();
  cfg.algorithm = routing::Algorithm::Duato;
  cfg.detection.enabled = false;
  auto sim = make_sim(4, 2, cfg);
  sim->push_message(0, 5, 16);
  sim->step_cycles(4);
  // The first hop allocation must be on the adaptive VC (VC 2).
  const Network& net = sim->network();
  unsigned adaptive = 0, escape = 0;
  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    const auto mask = net.link(l).active_vc_mask;
    escape += (mask & 0b011) != 0;
    adaptive += (mask & 0b100) != 0;
  }
  EXPECT_EQ(escape, 0u);
  EXPECT_GE(adaptive, 1u);
}

TEST(EjectionSharing, PortsReleasedAndReused) {
  // Sequential bursts to one node must reuse ejection ports cleanly.
  auto cfg = default_config();
  cfg.net.eje_channels = 1;
  auto sim = make_sim(4, 2, cfg);
  for (int round = 0; round < 3; ++round) {
    for (const topo::NodeId src : {1u, 2u, 4u, 8u}) {
      sim->push_message(src, 0, 8);
    }
    ASSERT_TRUE(run_until_delivered(
        *sim, static_cast<std::uint64_t>(4 * (round + 1)), 5000));
    EXPECT_TRUE(sim->network().quiescent());
  }
}

}  // namespace
}  // namespace wormsim::sim
