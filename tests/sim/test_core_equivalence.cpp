// Differential harness for the two simulation cores: SimCore::Dense
// (reference full scan) versus SimCore::Active (active-set iteration)
// must be indistinguishable in results — byte-identical sweep CSVs,
// exactly equal SimResult fields, and equal microarchitectural state in
// lock-step execution. Any divergence is a bug in the active-set
// bookkeeping, never an acceptable approximation.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "../support/invariants.hpp"
#include "config/presets.hpp"
#include "fault/schedule.hpp"
#include "harness/sweep.hpp"
#include "harness/telemetry.hpp"
#include "metrics/spatial.hpp"
#include "obs/tracer.hpp"
#include "sim/flow_control.hpp"
#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

/// FAST-sized experiment base: 64 nodes, short windows. Small enough
/// that the full differential matrix stays test-suite friendly, long
/// enough that near-saturation and oversaturated points exercise
/// deadlock detection/recovery and limiter state.
config::SimConfig equivalence_base() {
  config::SimConfig cfg = config::small_base();
  cfg.protocol.warmup = 300;
  cfg.protocol.measure = 1000;
  cfg.protocol.drain_max = 1200;
  cfg.seed = 0xD1FF0001;
  return cfg;
}

void expect_results_identical(const metrics::SimResult& d,
                              const metrics::SimResult& a,
                              const std::string& label) {
  SCOPED_TRACE(label);
  // Volume counters.
  EXPECT_EQ(d.messages_generated, a.messages_generated);
  EXPECT_EQ(d.messages_injected, a.messages_injected);
  EXPECT_EQ(d.messages_delivered, a.messages_delivered);
  EXPECT_EQ(d.measured_generated, a.measured_generated);
  EXPECT_EQ(d.measured_delivered, a.measured_delivered);
  EXPECT_EQ(d.messages_injected_window, a.messages_injected_window);
  // Latency statistics are accumulated in the same order from the same
  // values, so even the floating-point results are exactly equal.
  EXPECT_EQ(d.latency_mean, a.latency_mean);
  EXPECT_EQ(d.latency_stddev, a.latency_stddev);
  EXPECT_EQ(d.latency_min, a.latency_min);
  EXPECT_EQ(d.latency_max, a.latency_max);
  EXPECT_EQ(d.latency_p50, a.latency_p50);
  EXPECT_EQ(d.latency_p95, a.latency_p95);
  EXPECT_EQ(d.latency_p99, a.latency_p99);
  EXPECT_EQ(d.accepted_flits_per_node_cycle, a.accepted_flits_per_node_cycle);
  // Deadlocks, queues, probes.
  EXPECT_EQ(d.deadlock_detections, a.deadlock_detections);
  EXPECT_EQ(d.deadlock_pct, a.deadlock_pct);
  EXPECT_EQ(d.avg_queue_len, a.avg_queue_len);
  EXPECT_EQ(d.max_queue_len, a.max_queue_len);
  EXPECT_EQ(d.probe.samples, a.probe.samples);
  EXPECT_EQ(d.probe.rule_a, a.probe.rule_a);
  EXPECT_EQ(d.probe.rule_b, a.probe.rule_b);
  EXPECT_EQ(d.probe.either, a.probe.either);
  // Run shape.
  EXPECT_EQ(d.total_cycles, a.total_cycles);
  EXPECT_EQ(d.fully_drained, a.fully_drained);
  EXPECT_EQ(d.saturated, a.saturated);
  // The occupied-link average is exact simulation state, not an
  // active-set diagnostic, so it must match across cores too.
  EXPECT_EQ(d.avg_active_links, a.avg_active_links);
}

void expect_networks_equal(const Simulator& ds, const Simulator& as, Cycle at);

/// The full differential matrix the PR promises: every limitation
/// mechanism under three traffic patterns at a low, a near-saturation
/// and an oversaturated load, as one sweep per core per pattern. The
/// sweep CSV — the artifact figures are drawn from — must be
/// byte-identical.
class CoreEquivalence
    : public ::testing::TestWithParam<traffic::PatternKind> {};

TEST_P(CoreEquivalence, SweepCsvIsByteIdentical) {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.base.workload.pattern = GetParam();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL};
  spec.offered_loads = {0.1, 0.45, 1.0};
  spec.jobs = 1;

  spec.base.sim.core = SimCore::Dense;
  const auto dense = harness::run_sweep(spec);
  spec.base.sim.core = SimCore::Active;
  const auto active = harness::run_sweep(spec);

  ASSERT_EQ(dense.size(), active.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    expect_results_identical(
        dense[i].result, active[i].result,
        std::string(core::limiter_name(dense[i].limiter)) + " @ " +
            std::to_string(dense[i].offered));
  }

  std::ostringstream dense_csv;
  harness::write_sweep_csv(dense_csv, dense);
  std::ostringstream active_csv;
  harness::write_sweep_csv(active_csv, active);
  EXPECT_EQ(dense_csv.str(), active_csv.str());
}

INSTANTIATE_TEST_SUITE_P(Patterns, CoreEquivalence,
                         ::testing::Values(traffic::PatternKind::Uniform,
                                           traffic::PatternKind::Complement,
                                           traffic::PatternKind::BitReversal),
                         [](const auto& info) {
                           std::string name(traffic::pattern_name(info.param));
                           // gtest param names must be alphanumeric.
                           std::erase_if(name,
                                         [](char c) { return !std::isalnum(
                                               static_cast<unsigned char>(c)); });
                           return name;
                         });

/// Every fast-path toggle combination of the active core must emit the
/// same sweep CSV as the dense reference: the routing LUT, the
/// blocked-header route memo and the static limiter/selection dispatch
/// are pure speedups, never approximations. One sweep per
/// configuration over the full limiter matrix, compared byte-for-byte.
TEST(CoreEquivalence, FastPathTogglesKeepSweepCsvByteIdentical) {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL};
  spec.offered_loads = {0.1, 1.0};
  spec.jobs = 1;

  spec.base.sim.core = SimCore::Dense;
  std::ostringstream reference;
  harness::write_sweep_csv(reference, harness::run_sweep(spec));

  struct Toggle {
    const char* label;
    FastPathConfig fp;
  };
  const Toggle toggles[] = {
      {"all-on", {}},
      {"lut-off", {.routing_lut = false}},
      {"memo-off", {.route_memo = false}},
      {"dispatch-off", {.static_dispatch = false}},
      {"fc-dispatch-off", {.fc_dispatch = false}},
      {"all-off",
       {.routing_lut = false, .route_memo = false, .static_dispatch = false,
        .fc_dispatch = false}},
  };
  spec.base.sim.core = SimCore::Active;
  for (const auto& t : toggles) {
    SCOPED_TRACE(t.label);
    spec.base.sim.fastpath = t.fp;
    std::ostringstream csv;
    harness::write_sweep_csv(csv, harness::run_sweep(spec));
    EXPECT_EQ(reference.str(), csv.str());
  }
}

/// Sweep CSV captured from the pre-flow-control-refactor tree (commit
/// 1a11c95) for the exact configuration below: equivalence_base(), all
/// four limiters, loads {0.1, 1.0}, serial sweep on the dense core.
/// The FlowControlScheme extraction promises the default wormhole
/// scheme is byte-identical to the fused pre-refactor channel logic;
/// this string is the proof anchor — it must never be regenerated to
/// make a refactor pass.
constexpr const char* kWormholeGoldenCsv =
    "mechanism,offered_flits_node_cycle,latency_avg_cycles,"
    "latency_sd_cycles,latency_p99_cycles,accepted_flits_node_cycle,"
    "deadlock_pct,avg_queue_len,fully_drained,saturated\n"
    "none,0.1,30.64231738,6.605701123,47,0.0989375,0,0,1,0\n"
    "none,1,414.6392016,253.9850793,1145.5,0.670890625,3.313911143,"
    "1384.65,0,1\n"
    "alo,0.1,30.83957219,6.563220794,47.66666667,0.092234375,0,0,1,0\n"
    "alo,1,298.2652809,159.7969833,752,0.762109375,0,970.4444444,1,1\n"
    "lf,0.1,31.0719603,6.811702299,50,0.101734375,0,0,1,0\n"
    "lf,1,355.2577475,212.3022723,1005,0.733390625,0,1278.125,0,1\n"
    "dril,0.1,31.18537859,6.400032254,48.33333333,0.0976875,0,0,1,0\n"
    "dril,1,338.1130166,312.0642251,1433,0.71309375,0,1393.1,0,1\n";

harness::SweepSpec golden_sweep_spec() {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL};
  spec.offered_loads = {0.1, 1.0};
  spec.jobs = 1;
  return spec;
}

std::string sweep_csv(const harness::SweepSpec& spec) {
  std::ostringstream csv;
  harness::write_sweep_csv(csv, harness::run_sweep(spec));
  return csv.str();
}

/// The tentpole guarantee: wormhole-through-the-interface reproduces
/// the pre-refactor sweep byte-for-byte on every core, with the
/// flow-control fast-path dispatch on and off, and under any --jobs
/// count. Any diff here means the interface extraction changed
/// behavior, which it is never allowed to do.
TEST(FlowControl, WormholeViaInterfaceMatchesPreRefactorGolden) {
  harness::SweepSpec spec = golden_sweep_spec();
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    for (const bool fc_dispatch : {true, false}) {
      for (const unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE(std::string(sim_core_name(core)) +
                     (fc_dispatch ? " fc-dispatch" : " fc-virtual") +
                     " jobs=" + std::to_string(jobs));
        spec.base.sim.core = core;
        spec.base.sim.fastpath.fc_dispatch = fc_dispatch;
        spec.jobs = jobs;
        EXPECT_EQ(kWormholeGoldenCsv, sweep_csv(spec));
      }
    }
  }
}

/// Attaching the online statistics engine — latency histograms, the
/// windowed series, the saturation detector, and even the wall-clock
/// phase profiler — must not perturb the simulation: the golden sweep
/// CSV stays byte-identical with it enabled, on both cores, at any
/// --jobs count. The observers only ever read simulation state.
TEST(CoreEquivalence, OnlineStatsKeepSweepCsvByteIdentical) {
  harness::SweepSpec spec = golden_sweep_spec();
  spec.online = true;
  spec.online_config.window_cycles = 128;
  spec.online_config.profile_period = 64;
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    for (const unsigned jobs : {1u, 4u}) {
      SCOPED_TRACE(std::string(sim_core_name(core)) +
                   " jobs=" + std::to_string(jobs));
      spec.base.sim.core = core;
      spec.jobs = jobs;
      EXPECT_EQ(kWormholeGoldenCsv, sweep_csv(spec));
    }
  }
}

/// Credit-based flow control with zero return latency is wormhole: the
/// credit counter then equals the receiver occupancy the wormhole gate
/// reads directly, so the schemes must produce the byte-identical CSV
/// — including the credit bookkeeping, generation tags and teardown
/// resets running hot underneath.
TEST(FlowControl, CreditZeroDelayIsByteIdenticalToWormhole) {
  harness::SweepSpec spec = golden_sweep_spec();
  spec.base.sim.flow.scheme = FlowControl::Credit;
  spec.base.sim.flow.credit_return_delay = 0;
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    SCOPED_TRACE(sim_core_name(core));
    spec.base.sim.core = core;
    EXPECT_EQ(kWormholeGoldenCsv, sweep_csv(spec));
  }
}

/// With buffers at least one whole message deep, virtual cut-through's
/// whole-packet admission test always passes exactly when wormhole's
/// free-VC claim does (a free VC has occupancy zero), so the two
/// schemes coincide — byte-identical CSVs at buf_flits = msg_len.
TEST(FlowControl, VctIsByteIdenticalToWormholeAtDeepBuffers) {
  harness::SweepSpec spec = golden_sweep_spec();
  spec.base.sim.net.buf_flits = 16;  // == message length
  spec.base.sim.core = SimCore::Dense;
  const std::string reference = sweep_csv(spec);

  spec.base.sim.flow.scheme = FlowControl::Vct;
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    SCOPED_TRACE(sim_core_name(core));
    spec.base.sim.core = core;
    EXPECT_EQ(reference, sweep_csv(spec));
  }
}

/// The dense-vs-active and serial-vs-parallel equivalence contracts
/// extend to the alternative schemes: credit (with a real return
/// latency) and VCT each emit one CSV, independent of core, dispatch
/// mode and job count.
TEST(FlowControl, AlternativeSchemesAgreeAcrossCoresAndJobs) {
  struct Scheme {
    const char* label;
    FlowControl scheme;
    unsigned credit_delay;
    std::uint32_t buf_flits;
  };
  const Scheme schemes[] = {
      {"credit-delay2", FlowControl::Credit, 2, 4},
      {"vct", FlowControl::Vct, 0, 16},
  };
  for (const auto& s : schemes) {
    SCOPED_TRACE(s.label);
    harness::SweepSpec spec = golden_sweep_spec();
    spec.base.sim.flow.scheme = s.scheme;
    spec.base.sim.flow.credit_return_delay = s.credit_delay;
    spec.base.sim.net.buf_flits = s.buf_flits;
    spec.base.sim.core = SimCore::Dense;
    const std::string reference = sweep_csv(spec);
    for (const auto core : {SimCore::Dense, SimCore::Active}) {
      for (const unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE(std::string(sim_core_name(core)) + " jobs=" +
                     std::to_string(jobs));
        spec.base.sim.core = core;
        spec.jobs = jobs;
        EXPECT_EQ(reference, sweep_csv(spec));
      }
    }
  }
}

/// Cross-scheme statistical sanity at low load: every scheme drains
/// completely and delivers every generated message; generation is
/// workload-side, so the delivered counts agree across schemes; and
/// the latency ordering is physical — credit's non-zero return latency
/// can only slow streaming down relative to ideal wormhole credits,
/// and VCT with message-deep buffers can never be slower than it.
TEST(FlowControl, SchemesConserveAndOrderLatencyAtLowLoad) {
  struct Run {
    const char* label;
    FlowControl scheme;
    unsigned credit_delay;
    std::uint32_t buf_flits;
    metrics::SimResult result;
  };
  Run runs[] = {
      {"wormhole", FlowControl::Wormhole, 0, 4, {}},
      {"credit-delay2", FlowControl::Credit, 2, 4, {}},
      {"vct", FlowControl::Vct, 0, 16, {}},
  };
  for (auto& r : runs) {
    SCOPED_TRACE(r.label);
    config::SimConfig cfg = equivalence_base();
    cfg.workload.offered_flits_per_node_cycle = 0.1;
    cfg.sim.flow.scheme = r.scheme;
    cfg.sim.flow.credit_return_delay = r.credit_delay;
    cfg.sim.net.buf_flits = r.buf_flits;
    r.result = config::run_experiment(cfg);
    // Full drain: every message generated in the measurement window
    // was delivered (generation keeps running during the drain phase,
    // so the total counters intentionally disagree).
    EXPECT_TRUE(r.result.fully_drained);
    EXPECT_EQ(r.result.measured_generated, r.result.measured_delivered);
    EXPECT_EQ(r.result.deadlock_detections, 0u);
  }
  // Same seed, same workload: generation is independent of the scheme,
  // so the delivered measured cohort is identical in size.
  EXPECT_EQ(runs[0].result.measured_delivered,
            runs[1].result.measured_delivered);
  EXPECT_EQ(runs[0].result.measured_delivered,
            runs[2].result.measured_delivered);
  // wormhole <= credit: delayed credit returns only ever add stalls.
  EXPECT_LE(runs[0].result.latency_mean, runs[1].result.latency_mean);
  // vct (deep buffers) ~<= wormhole (shallow): whole-message buffers
  // remove downstream backpressure bubbles. At this load contention is
  // rare, so the schemes nearly tie — allow sub-cycle noise, but catch
  // any systematic slowdown.
  EXPECT_LE(runs[2].result.latency_mean, runs[0].result.latency_mean + 0.5);
}

/// Lock-step microscope over the schemes themselves: for each scheme
/// the dense core (always routed through the virtual FlowControlScheme
/// interface) and the active core (devirtualized fast path) must agree
/// on complete channel-level state every cycle, with the full shared
/// invariant battery — including credit conservation — green on both.
class FlowControlLockStep : public ::testing::TestWithParam<FlowControl> {};

TEST_P(FlowControlLockStep, ChannelStateAgreesEveryCycle) {
  const topo::KAryNCube topo(4, 2);
  const auto make = [&](SimCore core) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    cfg.limiter.kind = core::LimiterKind::ALO;
    cfg.flow.scheme = GetParam();
    if (GetParam() == FlowControl::Vct) {
      cfg.net.buf_flits = 16;  // admission needs message-deep buffers
    }
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.1;  // well past saturation
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 901);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto dense = make(SimCore::Dense);
  auto active = make(SimCore::Active);

  for (int block = 0; block < 200; ++block) {
    for (int i = 0; i < 10; ++i) {
      dense->step();
      active->step();
    }
    const Cycle at = dense->cycle();
    ASSERT_EQ(at, active->cycle());
    expect_networks_equal(*dense, *active, at);
    ASSERT_EQ(dense->total_delivered(), active->total_delivered());
    ASSERT_EQ(dense->messages_in_flight(), active->messages_in_flight());
    ASSERT_EQ(dense->source_queue_total(), active->source_queue_total());
    ASSERT_EQ(dense->total_deadlock_detections(),
              active->total_deadlock_detections());
    ASSERT_TRUE(testing::check_all_invariants(*dense));
    ASSERT_TRUE(testing::check_all_invariants(*active));
  }
  // The devirtualized path must account credit messages identically.
  ASSERT_EQ(dense->flow_control().credit_messages(),
            active->flow_control().credit_messages());
  if (GetParam() == FlowControl::Credit) {
    EXPECT_GT(dense->flow_control().credit_messages(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, FlowControlLockStep,
                         ::testing::Values(FlowControl::Wormhole,
                                           FlowControl::Credit,
                                           FlowControl::Vct),
                         [](const auto& info) {
                           return std::string(
                               flow_control_name(info.param));
                         });

/// Observability must observe, never participate: attaching a tracer
/// and spatial metrics to a run cannot change a single result field on
/// either core, even with deadlock recovery and limiter state hot.
TEST(CoreEquivalence, InstrumentationDoesNotPerturbResults) {
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    config::SimConfig base = equivalence_base();
    base.sim.core = core;
    base.sim.limiter.kind = core::LimiterKind::ALO;
    base.workload.offered_flits_per_node_cycle = 1.0;  // past saturation

    const auto plain = config::run_experiment(base);

    obs::Tracer tracer(1u << 12);
    const topo::KAryNCube topo(base.k, base.n);
    metrics::SpatialMetrics spatial(
        topo.num_nodes(), topo.num_nodes() * topo.num_channels(),
        base.sim.net.num_vcs);
    config::RunHooks hooks;
    hooks.tracer = &tracer;
    hooks.spatial = &spatial;
    const auto instrumented = config::run_experiment(base, hooks);

    // The hooks saw real traffic...
    EXPECT_GT(tracer.events_recorded(), 0u);
    std::uint64_t ejected = 0;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      ejected += spatial.node_ejected_flits(n);
    }
    EXPECT_GT(ejected, 0u);
    // ...and the results are exactly what the plain run produced.
    expect_results_identical(
        plain, instrumented,
        "instrumented " + std::string(sim_core_name(core)));
  }
}

/// Lock-step microscope: one dense and one active simulator advance a
/// cycle at a time from identical seeds; their complete channel-level
/// state must agree at every comparison point, not just the end-of-run
/// aggregates. High offered load keeps deadlock recovery and limiter
/// paths hot.
class LockStep : public ::testing::TestWithParam<core::LimiterKind> {};

void expect_networks_equal(const Simulator& ds, const Simulator& as,
                           Cycle at) {
  const Network& d = ds.network();
  const Network& a = as.network();
  ASSERT_EQ(d.num_links(), a.num_links());
  for (LinkId l = 0; l < d.num_links(); ++l) {
    const Link& dl = d.link(l);
    const Link& al = a.link(l);
    ASSERT_EQ(dl.active_vc_mask, al.active_vc_mask)
        << "link " << l << " cycle " << at;
    ASSERT_EQ(dl.rr_next, al.rr_next) << "link " << l << " cycle " << at;
    ASSERT_EQ(dl.in_flight.size(), al.in_flight.size())
        << "link " << l << " cycle " << at;
    ASSERT_EQ(dl.flits_carried, al.flits_carried)
        << "link " << l << " cycle " << at;
    for (unsigned v = 0; v < d.vcs_on(l); ++v) {
      const VcRef ref{l, static_cast<std::uint8_t>(v)};
      const VcState& dv = d.vc(ref);
      const VcState& av = a.vc(ref);
      ASSERT_EQ(dv.msg == kNoMsg, av.msg == kNoMsg)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.in_count, av.in_count)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.out_count, av.out_count)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.occupancy, av.occupancy)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.header_arrival, av.header_arrival)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.last_activity, av.last_activity)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.pending_route, av.pending_route)
          << "vc " << l << "/" << v << " cycle " << at;
    }
  }
  ASSERT_EQ(d.flits_in_network(), a.flits_in_network()) << "cycle " << at;
}

TEST_P(LockStep, ChannelStateAgreesEveryCycle) {
  const unsigned k = 4, n = 2;
  const topo::KAryNCube topo(k, n);
  const auto make = [&](SimCore core) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    cfg.limiter.kind = GetParam();
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.1;  // well past saturation
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 777);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto dense = make(SimCore::Dense);
  auto active = make(SimCore::Active);

  for (int block = 0; block < 300; ++block) {
    for (int i = 0; i < 10; ++i) {
      dense->step();
      active->step();
    }
    const Cycle at = dense->cycle();
    ASSERT_EQ(at, active->cycle());
    expect_networks_equal(*dense, *active, at);
    ASSERT_EQ(dense->total_delivered(), active->total_delivered());
    ASSERT_EQ(dense->messages_in_flight(), active->messages_in_flight());
    ASSERT_EQ(dense->source_queue_total(), active->source_queue_total());
    ASSERT_EQ(dense->recovery_pending(), active->recovery_pending());
    ASSERT_EQ(dense->total_deadlock_detections(),
              active->total_deadlock_detections());
    for (NodeId node = 0; node < topo.num_nodes(); ++node) {
      ASSERT_EQ(dense->source_queue_len(node), active->source_queue_len(node))
          << "node " << node << " cycle " << at;
      ASSERT_EQ(dense->collector().fairness().at(node),
                active->collector().fairness().at(node))
          << "node " << node << " cycle " << at;
    }
    std::string why;
    ASSERT_TRUE(active->check_active_sets(&why)) << why;
    ASSERT_TRUE(active->check_conservation(&why)) << why;
    ASSERT_TRUE(dense->check_active_sets(&why)) << why;
    ASSERT_TRUE(dense->check_conservation(&why)) << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Limiters, LockStep,
                         ::testing::Values(core::LimiterKind::None,
                                           core::LimiterKind::ALO,
                                           core::LimiterKind::LF,
                                           core::LimiterKind::DRIL),
                         [](const auto& info) {
                           return std::string(
                               core::limiter_name(info.param));
                         });

/// The sharded core's headline contract: the golden sweep CSV is
/// byte-identical for every --shards x --jobs combination. At this
/// 64-node scale the effective shard count clamps to the single bitmap
/// word (the sharded machinery engages but degenerates to one lane);
/// RealPartitionKeepsSweepCsvByteIdentical below covers true
/// multi-lane execution.
TEST(ShardEquivalence, GoldenSweepCsvByteIdenticalAcrossShardsAndJobs) {
  harness::SweepSpec spec = golden_sweep_spec();
  spec.base.sim.core = SimCore::Active;
  for (const unsigned shards : {1u, 2u, 4u}) {
    for (const unsigned jobs : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " jobs=" + std::to_string(jobs));
      spec.base.sim.shards = shards;
      spec.jobs = jobs;
      EXPECT_EQ(kWormholeGoldenCsv, sweep_csv(spec));
    }
  }
}

/// True multi-lane equivalence: a 16-ary 2-cube (256 nodes = 4 bitmap
/// words) genuinely splits across 2 and 4 shards. The sweep CSV must
/// match the sequential active core byte-for-byte, at a drained low
/// load and an oversaturated point with deadlock recovery hot.
TEST(ShardEquivalence, RealPartitionKeepsSweepCsvByteIdentical) {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.base.k = 16;  // 256 nodes
  spec.base.sim.core = SimCore::Active;
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.1, 1.0};
  spec.jobs = 1;

  spec.base.sim.shards = 1;
  const std::string reference = sweep_csv(spec);
  for (const unsigned shards : {2u, 4u}) {
    for (const unsigned jobs : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " jobs=" + std::to_string(jobs));
      spec.base.sim.shards = shards;
      spec.jobs = jobs;
      EXPECT_EQ(reference, sweep_csv(spec));
    }
  }
}

/// Telemetry across shard counts: every record must be byte-identical
/// once the volatile "perf" tail (which deliberately echoes the shard
/// count and the memory estimate) is stripped — the same contract the
/// --jobs determinism test enforces.
TEST(ShardEquivalence, TelemetryByteIdenticalOutsidePerf) {
  const auto serialize = [](unsigned shards) {
    harness::SweepSpec spec;
    spec.base = equivalence_base();
    spec.base.k = 16;  // 256 nodes: real partitioning
    spec.base.sim.core = SimCore::Active;
    spec.base.sim.shards = shards;
    spec.limiters = {core::LimiterKind::ALO};
    spec.offered_loads = {0.1, 1.0};
    spec.jobs = 1;
    std::ostringstream out;
    harness::write_sweep_telemetry(out, spec, harness::run_sweep(spec),
                                   nullptr);
    return out.str();
  };
  const auto lines_of = [](const std::string& s) {
    std::vector<std::string> lines;
    std::istringstream in(s);
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    return lines;
  };
  const auto strip_perf = [](std::string line) {
    const std::size_t pos = line.find(",\"perf\":");
    if (pos != std::string::npos) line.resize(pos);
    return line;
  };
  const auto seq = lines_of(serialize(1));
  const auto sharded = lines_of(serialize(4));
  ASSERT_EQ(seq.size(), sharded.size());
  bool saw_shards_field = false;
  bool saw_conflict_field = false;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(strip_perf(seq[i]), strip_perf(sharded[i])) << "record " << i;
    saw_shards_field |=
        sharded[i].find("\"shards\":{\"count\":4") != std::string::npos;
    saw_conflict_field |=
        sharded[i].find("\"commit_conflicts\":") != std::string::npos;
  }
  // And the perf section does report the execution strategy, including
  // the evaluate/commit speculation counters.
  EXPECT_TRUE(saw_shards_field);
  EXPECT_TRUE(saw_conflict_field);
}

/// The dense reference core stays single-threaded by design; asking it
/// to shard must be rejected up front, not silently ignored.
TEST(ShardEquivalence, DenseCoreRejectsSharding) {
  config::SimConfig cfg = equivalence_base();
  cfg.sim.core = SimCore::Dense;
  cfg.sim.shards = 2;
  EXPECT_THROW(config::validate(cfg), std::invalid_argument);
  EXPECT_THROW((void)config::build_simulator(cfg), std::invalid_argument);
}

/// The fault subsystem at rest must be invisible: a sweep whose base
/// config carries an empty schedule (no FaultManager at all) and one
/// whose schedule only fires beyond the run horizon (manager wired in,
/// per-cycle due() gate armed, routing LUT forced on both cores) must
/// both emit the byte-identical CSV of the plain no-fault sweep, on
/// either core and for any --jobs count.
TEST(CoreEquivalence, FaultNoopKeepsSweepCsvByteIdentical) {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.1, 1.0};
  spec.jobs = 1;

  spec.base.sim.core = SimCore::Dense;
  std::ostringstream reference;
  harness::write_sweep_csv(reference, harness::run_sweep(spec));

  const fault::FaultSchedule beyond_horizon(
      {{std::uint64_t{1} << 40, fault::FaultKind::LinkKill, 0, 0}});
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    for (const unsigned jobs : {1u, 2u}) {
      SCOPED_TRACE(std::string(sim_core_name(core)) + " jobs=" +
                   std::to_string(jobs));
      spec.base.sim.core = core;
      spec.jobs = jobs;
      spec.base.sim.faults = fault::FaultSchedule{};
      std::ostringstream empty_csv;
      harness::write_sweep_csv(empty_csv, harness::run_sweep(spec));
      EXPECT_EQ(reference.str(), empty_csv.str());

      spec.base.sim.faults = beyond_horizon;
      std::ostringstream armed_csv;
      harness::write_sweep_csv(armed_csv, harness::run_sweep(spec));
      EXPECT_EQ(reference.str(), armed_csv.str());
    }
  }
}

/// Lock-step equivalence through live fault surgery: both cores take
/// the same kills and restores mid-traffic and must agree on complete
/// channel-level state, the lost-message count and the rebuild count at
/// every comparison point. Parametrized over the flow-control schemes
/// so fault teardown is exercised against credit bookkeeping and VCT
/// admission too.
class FaultLockStep : public ::testing::TestWithParam<FlowControl> {};

TEST_P(FaultLockStep, AgreesThroughFaultTransients) {
  const topo::KAryNCube topo(4, 2);
  const fault::FaultSchedule schedule({
      {400, fault::FaultKind::LinkKill, 5, 1},
      {700, fault::FaultKind::NodeKill, 10, 0},
      {1400, fault::FaultKind::LinkRestore, 5, 1},
      {1800, fault::FaultKind::NodeRestore, 10, 0},
  });
  const auto make = [&](SimCore core) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    cfg.limiter.kind = core::LimiterKind::ALO;
    cfg.flow.scheme = GetParam();
    if (GetParam() == FlowControl::Vct) {
      cfg.net.buf_flits = 16;  // admission needs message-deep buffers
    }
    cfg.faults = schedule;
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.1;  // well past saturation
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 777);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto dense = make(SimCore::Dense);
  auto active = make(SimCore::Active);

  for (int block = 0; block < 250; ++block) {
    for (int i = 0; i < 10; ++i) {
      dense->step();
      active->step();
    }
    const Cycle at = dense->cycle();
    ASSERT_EQ(at, active->cycle());
    expect_networks_equal(*dense, *active, at);
    ASSERT_EQ(dense->total_delivered(), active->total_delivered());
    ASSERT_EQ(dense->total_lost(), active->total_lost());
    ASSERT_EQ(dense->messages_in_flight(), active->messages_in_flight());
    ASSERT_EQ(dense->source_queue_total(), active->source_queue_total());
    ASSERT_EQ(dense->recovery_pending(), active->recovery_pending());
    ASSERT_EQ(dense->fault_events_applied(), active->fault_events_applied());
    ASSERT_EQ(dense->lut_rebuilds(), active->lut_rebuilds());
    ASSERT_TRUE(testing::check_all_invariants(*dense));
    ASSERT_TRUE(testing::check_all_invariants(*active));
  }
  EXPECT_EQ(dense->fault_events_applied(), 4u);
  EXPECT_EQ(dense->lut_rebuilds(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, FaultLockStep,
                         ::testing::Values(FlowControl::Wormhole,
                                           FlowControl::Credit,
                                           FlowControl::Vct),
                         [](const auto& info) {
                           return std::string(
                               flow_control_name(info.param));
                         });

/// A mid-run offered-load change (the epoch path): dense re-polls
/// naturally, the active core must tear down stale generation
/// subscriptions. End state has to agree exactly.
TEST(CoreEquivalence, LoadChangeMidRunStaysIdentical) {
  const topo::KAryNCube topo(4, 2);
  const auto make = [&](SimCore core) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 0.05;  // sparse: hints skip a lot
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 4242);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto dense = make(SimCore::Dense);
  auto active = make(SimCore::Active);
  const auto lockstep = [&](Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      dense->step();
      active->step();
    }
  };
  lockstep(1500);
  dense->workload()->set_offered_load(0.8);
  active->workload()->set_offered_load(0.8);
  lockstep(1500);
  dense->workload()->set_offered_load(0.0);
  active->workload()->set_offered_load(0.0);
  lockstep(3000);
  expect_networks_equal(*dense, *active, dense->cycle());
  EXPECT_EQ(dense->total_delivered(), active->total_delivered());
  EXPECT_EQ(dense->source_queue_total(), active->source_queue_total());
  EXPECT_EQ(dense->collector().measured_generated(),
            active->collector().measured_generated());
}

/// Same matrix point under the bursty ON/OFF process, whose poll hints
/// are phase-bounded — a distinct skip-logic path from the plain
/// exponential process.
TEST(CoreEquivalence, BurstyProcessStaysIdentical) {
  config::SimConfig base = equivalence_base();
  base.workload.process = traffic::ProcessKind::Bursty;
  base.workload.offered_flits_per_node_cycle = 0.3;
  base.sim.core = SimCore::Dense;
  const auto d = config::run_experiment(base);
  base.sim.core = SimCore::Active;
  const auto a = config::run_experiment(base);
  expect_results_identical(d, a, "bursty");
}

/// Bernoulli polls every cycle by contract (its hint is always now+1),
/// so the active core must not skip any of its RNG draws.
TEST(CoreEquivalence, BernoulliProcessStaysIdentical) {
  config::SimConfig base = equivalence_base();
  base.workload.process = traffic::ProcessKind::Bernoulli;
  base.workload.offered_flits_per_node_cycle = 0.4;
  base.sim.core = SimCore::Dense;
  const auto d = config::run_experiment(base);
  base.sim.core = SimCore::Active;
  const auto a = config::run_experiment(base);
  expect_results_identical(d, a, "bernoulli");
}

}  // namespace
}  // namespace wormsim::sim
