// Differential harness for the two simulation cores: SimCore::Dense
// (reference full scan) versus SimCore::Active (active-set iteration)
// must be indistinguishable in results — byte-identical sweep CSVs,
// exactly equal SimResult fields, and equal microarchitectural state in
// lock-step execution. Any divergence is a bug in the active-set
// bookkeeping, never an acceptable approximation.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "config/presets.hpp"
#include "fault/schedule.hpp"
#include "harness/sweep.hpp"
#include "metrics/spatial.hpp"
#include "obs/tracer.hpp"
#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

/// FAST-sized experiment base: 64 nodes, short windows. Small enough
/// that the full differential matrix stays test-suite friendly, long
/// enough that near-saturation and oversaturated points exercise
/// deadlock detection/recovery and limiter state.
config::SimConfig equivalence_base() {
  config::SimConfig cfg = config::small_base();
  cfg.protocol.warmup = 300;
  cfg.protocol.measure = 1000;
  cfg.protocol.drain_max = 1200;
  cfg.seed = 0xD1FF0001;
  return cfg;
}

void expect_results_identical(const metrics::SimResult& d,
                              const metrics::SimResult& a,
                              const std::string& label) {
  SCOPED_TRACE(label);
  // Volume counters.
  EXPECT_EQ(d.messages_generated, a.messages_generated);
  EXPECT_EQ(d.messages_injected, a.messages_injected);
  EXPECT_EQ(d.messages_delivered, a.messages_delivered);
  EXPECT_EQ(d.measured_generated, a.measured_generated);
  EXPECT_EQ(d.measured_delivered, a.measured_delivered);
  EXPECT_EQ(d.messages_injected_window, a.messages_injected_window);
  // Latency statistics are accumulated in the same order from the same
  // values, so even the floating-point results are exactly equal.
  EXPECT_EQ(d.latency_mean, a.latency_mean);
  EXPECT_EQ(d.latency_stddev, a.latency_stddev);
  EXPECT_EQ(d.latency_min, a.latency_min);
  EXPECT_EQ(d.latency_max, a.latency_max);
  EXPECT_EQ(d.latency_p50, a.latency_p50);
  EXPECT_EQ(d.latency_p95, a.latency_p95);
  EXPECT_EQ(d.latency_p99, a.latency_p99);
  EXPECT_EQ(d.accepted_flits_per_node_cycle, a.accepted_flits_per_node_cycle);
  // Deadlocks, queues, probes.
  EXPECT_EQ(d.deadlock_detections, a.deadlock_detections);
  EXPECT_EQ(d.deadlock_pct, a.deadlock_pct);
  EXPECT_EQ(d.avg_queue_len, a.avg_queue_len);
  EXPECT_EQ(d.max_queue_len, a.max_queue_len);
  EXPECT_EQ(d.probe.samples, a.probe.samples);
  EXPECT_EQ(d.probe.rule_a, a.probe.rule_a);
  EXPECT_EQ(d.probe.rule_b, a.probe.rule_b);
  EXPECT_EQ(d.probe.either, a.probe.either);
  // Run shape.
  EXPECT_EQ(d.total_cycles, a.total_cycles);
  EXPECT_EQ(d.fully_drained, a.fully_drained);
  EXPECT_EQ(d.saturated, a.saturated);
  // The occupied-link average is exact simulation state, not an
  // active-set diagnostic, so it must match across cores too.
  EXPECT_EQ(d.avg_active_links, a.avg_active_links);
}

/// The full differential matrix the PR promises: every limitation
/// mechanism under three traffic patterns at a low, a near-saturation
/// and an oversaturated load, as one sweep per core per pattern. The
/// sweep CSV — the artifact figures are drawn from — must be
/// byte-identical.
class CoreEquivalence
    : public ::testing::TestWithParam<traffic::PatternKind> {};

TEST_P(CoreEquivalence, SweepCsvIsByteIdentical) {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.base.workload.pattern = GetParam();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL};
  spec.offered_loads = {0.1, 0.45, 1.0};
  spec.jobs = 1;

  spec.base.sim.core = SimCore::Dense;
  const auto dense = harness::run_sweep(spec);
  spec.base.sim.core = SimCore::Active;
  const auto active = harness::run_sweep(spec);

  ASSERT_EQ(dense.size(), active.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    expect_results_identical(
        dense[i].result, active[i].result,
        std::string(core::limiter_name(dense[i].limiter)) + " @ " +
            std::to_string(dense[i].offered));
  }

  std::ostringstream dense_csv;
  harness::write_sweep_csv(dense_csv, dense);
  std::ostringstream active_csv;
  harness::write_sweep_csv(active_csv, active);
  EXPECT_EQ(dense_csv.str(), active_csv.str());
}

INSTANTIATE_TEST_SUITE_P(Patterns, CoreEquivalence,
                         ::testing::Values(traffic::PatternKind::Uniform,
                                           traffic::PatternKind::Complement,
                                           traffic::PatternKind::BitReversal),
                         [](const auto& info) {
                           std::string name(traffic::pattern_name(info.param));
                           // gtest param names must be alphanumeric.
                           std::erase_if(name,
                                         [](char c) { return !std::isalnum(
                                               static_cast<unsigned char>(c)); });
                           return name;
                         });

/// Every fast-path toggle combination of the active core must emit the
/// same sweep CSV as the dense reference: the routing LUT, the
/// blocked-header route memo and the static limiter/selection dispatch
/// are pure speedups, never approximations. One sweep per
/// configuration over the full limiter matrix, compared byte-for-byte.
TEST(CoreEquivalence, FastPathTogglesKeepSweepCsvByteIdentical) {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL};
  spec.offered_loads = {0.1, 1.0};
  spec.jobs = 1;

  spec.base.sim.core = SimCore::Dense;
  std::ostringstream reference;
  harness::write_sweep_csv(reference, harness::run_sweep(spec));

  struct Toggle {
    const char* label;
    FastPathConfig fp;
  };
  const Toggle toggles[] = {
      {"all-on", {}},
      {"lut-off", {.routing_lut = false}},
      {"memo-off", {.route_memo = false}},
      {"dispatch-off", {.static_dispatch = false}},
      {"all-off",
       {.routing_lut = false, .route_memo = false, .static_dispatch = false}},
  };
  spec.base.sim.core = SimCore::Active;
  for (const auto& t : toggles) {
    SCOPED_TRACE(t.label);
    spec.base.sim.fastpath = t.fp;
    std::ostringstream csv;
    harness::write_sweep_csv(csv, harness::run_sweep(spec));
    EXPECT_EQ(reference.str(), csv.str());
  }
}

/// Observability must observe, never participate: attaching a tracer
/// and spatial metrics to a run cannot change a single result field on
/// either core, even with deadlock recovery and limiter state hot.
TEST(CoreEquivalence, InstrumentationDoesNotPerturbResults) {
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    config::SimConfig base = equivalence_base();
    base.sim.core = core;
    base.sim.limiter.kind = core::LimiterKind::ALO;
    base.workload.offered_flits_per_node_cycle = 1.0;  // past saturation

    const auto plain = config::run_experiment(base);

    obs::Tracer tracer(1u << 12);
    const topo::KAryNCube topo(base.k, base.n);
    metrics::SpatialMetrics spatial(
        topo.num_nodes(), topo.num_nodes() * topo.num_channels(),
        base.sim.net.num_vcs);
    config::RunHooks hooks;
    hooks.tracer = &tracer;
    hooks.spatial = &spatial;
    const auto instrumented = config::run_experiment(base, hooks);

    // The hooks saw real traffic...
    EXPECT_GT(tracer.events_recorded(), 0u);
    std::uint64_t ejected = 0;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      ejected += spatial.node_ejected_flits(n);
    }
    EXPECT_GT(ejected, 0u);
    // ...and the results are exactly what the plain run produced.
    expect_results_identical(
        plain, instrumented,
        "instrumented " + std::string(sim_core_name(core)));
  }
}

/// Lock-step microscope: one dense and one active simulator advance a
/// cycle at a time from identical seeds; their complete channel-level
/// state must agree at every comparison point, not just the end-of-run
/// aggregates. High offered load keeps deadlock recovery and limiter
/// paths hot.
class LockStep : public ::testing::TestWithParam<core::LimiterKind> {};

void expect_networks_equal(const Simulator& ds, const Simulator& as,
                           Cycle at) {
  const Network& d = ds.network();
  const Network& a = as.network();
  ASSERT_EQ(d.num_links(), a.num_links());
  for (LinkId l = 0; l < d.num_links(); ++l) {
    const Link& dl = d.link(l);
    const Link& al = a.link(l);
    ASSERT_EQ(dl.active_vc_mask, al.active_vc_mask)
        << "link " << l << " cycle " << at;
    ASSERT_EQ(dl.rr_next, al.rr_next) << "link " << l << " cycle " << at;
    ASSERT_EQ(dl.in_flight.size(), al.in_flight.size())
        << "link " << l << " cycle " << at;
    ASSERT_EQ(dl.flits_carried, al.flits_carried)
        << "link " << l << " cycle " << at;
    for (unsigned v = 0; v < d.vcs_on(l); ++v) {
      const VcRef ref{l, static_cast<std::uint8_t>(v)};
      const VcState& dv = d.vc(ref);
      const VcState& av = a.vc(ref);
      ASSERT_EQ(dv.msg == kNoMsg, av.msg == kNoMsg)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.in_count, av.in_count)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.out_count, av.out_count)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.occupancy, av.occupancy)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.header_arrival, av.header_arrival)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.last_activity, av.last_activity)
          << "vc " << l << "/" << v << " cycle " << at;
      ASSERT_EQ(dv.pending_route, av.pending_route)
          << "vc " << l << "/" << v << " cycle " << at;
    }
  }
  ASSERT_EQ(d.flits_in_network(), a.flits_in_network()) << "cycle " << at;
}

TEST_P(LockStep, ChannelStateAgreesEveryCycle) {
  const unsigned k = 4, n = 2;
  const topo::KAryNCube topo(k, n);
  const auto make = [&](SimCore core) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    cfg.limiter.kind = GetParam();
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.1;  // well past saturation
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 777);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto dense = make(SimCore::Dense);
  auto active = make(SimCore::Active);

  for (int block = 0; block < 300; ++block) {
    for (int i = 0; i < 10; ++i) {
      dense->step();
      active->step();
    }
    const Cycle at = dense->cycle();
    ASSERT_EQ(at, active->cycle());
    expect_networks_equal(*dense, *active, at);
    ASSERT_EQ(dense->total_delivered(), active->total_delivered());
    ASSERT_EQ(dense->messages_in_flight(), active->messages_in_flight());
    ASSERT_EQ(dense->source_queue_total(), active->source_queue_total());
    ASSERT_EQ(dense->recovery_pending(), active->recovery_pending());
    ASSERT_EQ(dense->total_deadlock_detections(),
              active->total_deadlock_detections());
    for (NodeId node = 0; node < topo.num_nodes(); ++node) {
      ASSERT_EQ(dense->source_queue_len(node), active->source_queue_len(node))
          << "node " << node << " cycle " << at;
      ASSERT_EQ(dense->collector().fairness().at(node),
                active->collector().fairness().at(node))
          << "node " << node << " cycle " << at;
    }
    std::string why;
    ASSERT_TRUE(active->check_active_sets(&why)) << why;
    ASSERT_TRUE(active->check_conservation(&why)) << why;
    ASSERT_TRUE(dense->check_active_sets(&why)) << why;
    ASSERT_TRUE(dense->check_conservation(&why)) << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Limiters, LockStep,
                         ::testing::Values(core::LimiterKind::None,
                                           core::LimiterKind::ALO,
                                           core::LimiterKind::LF,
                                           core::LimiterKind::DRIL),
                         [](const auto& info) {
                           return std::string(
                               core::limiter_name(info.param));
                         });

/// The fault subsystem at rest must be invisible: a sweep whose base
/// config carries an empty schedule (no FaultManager at all) and one
/// whose schedule only fires beyond the run horizon (manager wired in,
/// per-cycle due() gate armed, routing LUT forced on both cores) must
/// both emit the byte-identical CSV of the plain no-fault sweep, on
/// either core and for any --jobs count.
TEST(CoreEquivalence, FaultNoopKeepsSweepCsvByteIdentical) {
  harness::SweepSpec spec;
  spec.base = equivalence_base();
  spec.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  spec.offered_loads = {0.1, 1.0};
  spec.jobs = 1;

  spec.base.sim.core = SimCore::Dense;
  std::ostringstream reference;
  harness::write_sweep_csv(reference, harness::run_sweep(spec));

  const fault::FaultSchedule beyond_horizon(
      {{std::uint64_t{1} << 40, fault::FaultKind::LinkKill, 0, 0}});
  for (const auto core : {SimCore::Dense, SimCore::Active}) {
    for (const unsigned jobs : {1u, 2u}) {
      SCOPED_TRACE(std::string(sim_core_name(core)) + " jobs=" +
                   std::to_string(jobs));
      spec.base.sim.core = core;
      spec.jobs = jobs;
      spec.base.sim.faults = fault::FaultSchedule{};
      std::ostringstream empty_csv;
      harness::write_sweep_csv(empty_csv, harness::run_sweep(spec));
      EXPECT_EQ(reference.str(), empty_csv.str());

      spec.base.sim.faults = beyond_horizon;
      std::ostringstream armed_csv;
      harness::write_sweep_csv(armed_csv, harness::run_sweep(spec));
      EXPECT_EQ(reference.str(), armed_csv.str());
    }
  }
}

/// Lock-step equivalence through live fault surgery: both cores take
/// the same kills and restores mid-traffic and must agree on complete
/// channel-level state, the lost-message count and the rebuild count at
/// every comparison point.
TEST(CoreEquivalence, LockStepAgreesThroughFaultTransients) {
  const topo::KAryNCube topo(4, 2);
  const fault::FaultSchedule schedule({
      {400, fault::FaultKind::LinkKill, 5, 1},
      {700, fault::FaultKind::NodeKill, 10, 0},
      {1400, fault::FaultKind::LinkRestore, 5, 1},
      {1800, fault::FaultKind::NodeRestore, 10, 0},
  });
  const auto make = [&](SimCore core) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    cfg.limiter.kind = core::LimiterKind::ALO;
    cfg.faults = schedule;
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 1.1;  // well past saturation
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 777);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto dense = make(SimCore::Dense);
  auto active = make(SimCore::Active);

  for (int block = 0; block < 250; ++block) {
    for (int i = 0; i < 10; ++i) {
      dense->step();
      active->step();
    }
    const Cycle at = dense->cycle();
    ASSERT_EQ(at, active->cycle());
    expect_networks_equal(*dense, *active, at);
    ASSERT_EQ(dense->total_delivered(), active->total_delivered());
    ASSERT_EQ(dense->total_lost(), active->total_lost());
    ASSERT_EQ(dense->messages_in_flight(), active->messages_in_flight());
    ASSERT_EQ(dense->source_queue_total(), active->source_queue_total());
    ASSERT_EQ(dense->recovery_pending(), active->recovery_pending());
    ASSERT_EQ(dense->fault_events_applied(), active->fault_events_applied());
    ASSERT_EQ(dense->lut_rebuilds(), active->lut_rebuilds());
    std::string why;
    ASSERT_TRUE(active->check_active_sets(&why)) << why;
    ASSERT_TRUE(active->check_conservation(&why)) << why;
    ASSERT_TRUE(active->check_fault_invariants(&why)) << why;
    ASSERT_TRUE(dense->check_conservation(&why)) << why;
    ASSERT_TRUE(dense->check_fault_invariants(&why)) << why;
  }
  EXPECT_EQ(dense->fault_events_applied(), 4u);
  EXPECT_EQ(dense->lut_rebuilds(), 4u);
}

/// A mid-run offered-load change (the epoch path): dense re-polls
/// naturally, the active core must tear down stale generation
/// subscriptions. End state has to agree exactly.
TEST(CoreEquivalence, LoadChangeMidRunStaysIdentical) {
  const topo::KAryNCube topo(4, 2);
  const auto make = [&](SimCore core) {
    SimulatorConfig cfg = default_config();
    cfg.core = core;
    traffic::WorkloadConfig wcfg;
    wcfg.offered_flits_per_node_cycle = 0.05;  // sparse: hints skip a lot
    wcfg.length.fixed = 16;
    auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 4242);
    return std::make_unique<Simulator>(topo, cfg, std::move(workload));
  };
  auto dense = make(SimCore::Dense);
  auto active = make(SimCore::Active);
  const auto lockstep = [&](Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      dense->step();
      active->step();
    }
  };
  lockstep(1500);
  dense->workload()->set_offered_load(0.8);
  active->workload()->set_offered_load(0.8);
  lockstep(1500);
  dense->workload()->set_offered_load(0.0);
  active->workload()->set_offered_load(0.0);
  lockstep(3000);
  expect_networks_equal(*dense, *active, dense->cycle());
  EXPECT_EQ(dense->total_delivered(), active->total_delivered());
  EXPECT_EQ(dense->source_queue_total(), active->source_queue_total());
  EXPECT_EQ(dense->collector().measured_generated(),
            active->collector().measured_generated());
}

/// Same matrix point under the bursty ON/OFF process, whose poll hints
/// are phase-bounded — a distinct skip-logic path from the plain
/// exponential process.
TEST(CoreEquivalence, BurstyProcessStaysIdentical) {
  config::SimConfig base = equivalence_base();
  base.workload.process = traffic::ProcessKind::Bursty;
  base.workload.offered_flits_per_node_cycle = 0.3;
  base.sim.core = SimCore::Dense;
  const auto d = config::run_experiment(base);
  base.sim.core = SimCore::Active;
  const auto a = config::run_experiment(base);
  expect_results_identical(d, a, "bursty");
}

/// Bernoulli polls every cycle by contract (its hint is always now+1),
/// so the active core must not skip any of its RNG draws.
TEST(CoreEquivalence, BernoulliProcessStaysIdentical) {
  config::SimConfig base = equivalence_base();
  base.workload.process = traffic::ProcessKind::Bernoulli;
  base.workload.offered_flits_per_node_cycle = 0.4;
  base.sim.core = SimCore::Dense;
  const auto d = config::run_experiment(base);
  base.sim.core = SimCore::Active;
  const auto a = config::run_experiment(base);
  expect_results_identical(d, a, "bernoulli");
}

}  // namespace
}  // namespace wormsim::sim
