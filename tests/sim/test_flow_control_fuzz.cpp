// Seeded fuzz over the flow-control schemes: ~100 randomized short
// runs per scheme (wormhole / credit / virtual cut-through) asserting
// the shared structural-invariant battery every 64 cycles — buffer
// occupancy within bounds, flit conservation per VC, credit counters
// exactly accounting for buffered plus in-return-flight flits, and
// active-set coherence on the fast-path core. The credit scheme draws
// its return latency (including 0, the wormhole-equivalent point) and
// VCT sizes buffers to the drawn message length, so every admission
// regime is exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>

#include "../support/invariants.hpp"
#include "config/presets.hpp"
#include "sim/flow_control.hpp"
#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::default_config;

struct FuzzConfig {
  unsigned k;
  unsigned n;
  unsigned vcs;
  double offered;
  std::uint32_t msg_len;
  traffic::PatternKind pattern;
  traffic::ProcessKind process;
  core::LimiterKind limiter;
  FlowControl scheme;
  unsigned credit_delay;
  bool mutate_load;  // exercise the set_offered_load epoch path
};

FuzzConfig draw_config(std::mt19937_64& rng, FlowControl scheme) {
  const auto pick = [&](auto... vals) {
    using T = std::common_type_t<decltype(vals)...>;
    const T options[] = {vals...};
    return options[rng() % (sizeof...(vals))];
  };
  FuzzConfig f;
  f.k = pick(2u, 3u, 4u);
  f.n = pick(1u, 2u);
  f.vcs = pick(1u, 2u, 3u);
  // Idle through oversaturated: the interesting credit/admission states
  // (counters pinned at the cap, whole-packet admission failing for
  // cycles on end) only show up under sustained backpressure.
  f.offered = pick(0.0, 0.02, 0.15, 0.5, 1.0, 1.6);
  f.msg_len = pick(4u, 16u, 64u);
  // Bit-permutation patterns need a power-of-two node count, which a
  // 3-ary cube is not.
  f.pattern = f.k == 3 ? pick(traffic::PatternKind::Uniform,
                              traffic::PatternKind::Tornado)
                       : pick(traffic::PatternKind::Uniform,
                              traffic::PatternKind::Complement,
                              traffic::PatternKind::BitReversal,
                              traffic::PatternKind::Tornado);
  f.process = pick(traffic::ProcessKind::Exponential,
                   traffic::ProcessKind::Bernoulli,
                   traffic::ProcessKind::Bursty);
  f.limiter = pick(core::LimiterKind::None, core::LimiterKind::ALO,
                   core::LimiterKind::LF, core::LimiterKind::DRIL);
  f.scheme = scheme;
  // Delay 0 is the wormhole-equivalence point; 5 exceeds the default
  // link delay so returns pile up behind streaming flits.
  f.credit_delay = pick(0u, 1u, 2u, 5u);
  f.mutate_load = rng() % 3 == 0;
  return f;
}

std::unique_ptr<Simulator> build(const FuzzConfig& f, std::uint64_t seed) {
  const topo::KAryNCube topo(f.k, f.n);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.net.num_vcs = f.vcs;
  cfg.limiter.kind = f.limiter;
  cfg.flow.scheme = f.scheme;
  cfg.flow.credit_return_delay = f.credit_delay;
  if (f.scheme == FlowControl::Vct) {
    // Whole-packet admission needs message-deep buffers or nothing is
    // ever admitted; mirror the config-layer validation rule.
    cfg.net.buf_flits = std::max(cfg.net.buf_flits, f.msg_len);
  }
  traffic::WorkloadConfig wcfg;
  wcfg.pattern = f.pattern;
  wcfg.process = f.process;
  wcfg.offered_flits_per_node_cycle = f.offered;
  wcfg.length.fixed = f.msg_len;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, seed);
  return std::make_unique<Simulator>(topo, cfg, std::move(workload));
}

/// Param encodes scheme (param / 100) and seed index (param % 100):
/// one hundred randomized configurations per flow-control scheme.
class FlowControlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FlowControlFuzz, InvariantsHoldUnderRandomConfig) {
  const auto scheme = static_cast<FlowControl>(GetParam() / 100);
  const int index = GetParam() % 100;
  const std::uint64_t seed = 0xF10C7210u + static_cast<unsigned>(index);
  std::mt19937_64 rng(seed);
  const FuzzConfig f = draw_config(rng, scheme);
  SCOPED_TRACE("scheme=" + std::string(flow_control_name(f.scheme)) +
               " k=" + std::to_string(f.k) + " n=" + std::to_string(f.n) +
               " vcs=" + std::to_string(f.vcs) +
               " offered=" + std::to_string(f.offered) +
               " len=" + std::to_string(f.msg_len) + " pattern=" +
               std::string(traffic::pattern_name(f.pattern)) + " process=" +
               std::string(traffic::process_name(f.process)) + " limiter=" +
               std::string(core::limiter_name(f.limiter)) +
               " credit-delay=" + std::to_string(f.credit_delay) +
               (f.mutate_load ? " +load-mutation" : ""));
  auto sim = build(f, seed);

  for (int block = 0; block < 16; ++block) {
    sim->step_cycles(64);
    ASSERT_TRUE(testing::check_all_invariants(*sim));
    if (f.mutate_load && block == 7) {
      // Cross the epoch boundary mid-flight: stale generation hints must
      // be torn down, not serviced — and under credit flow control the
      // teardown path must not strand or double-free credits.
      sim->workload()->set_offered_load(f.offered > 0.2 ? 0.01 : 0.9);
    }
  }
  EXPECT_TRUE(testing::check_aggregate_conservation(*sim));
}

INSTANTIATE_TEST_SUITE_P(HundredSeedsPerScheme, FlowControlFuzz,
                         ::testing::Range(0, 300));

/// Credits must come home: drain a credit-flow-control system to full
/// quiescence and every in_use counter has to return to zero (via the
/// delayed-return queue), with the conservation check green throughout.
/// A leaked credit would permanently shrink a VC's usable buffer.
TEST(FlowControlFuzz, CreditsAllReturnAtQuiescence) {
  const topo::KAryNCube topo(4, 2);
  SimulatorConfig cfg = default_config();
  cfg.core = SimCore::Active;
  cfg.flow.scheme = FlowControl::Credit;
  cfg.flow.credit_return_delay = 5;
  traffic::WorkloadConfig wcfg;
  wcfg.offered_flits_per_node_cycle = 0.6;
  wcfg.length.fixed = 16;
  auto workload = std::make_unique<traffic::Workload>(topo, wcfg, 6021);
  Simulator sim(topo, cfg, std::move(workload));

  sim.step_cycles(2000);
  EXPECT_GT(sim.flow_control().credit_messages(), 0u);
  sim.workload()->set_offered_load(0.0);
  const Cycle limit = sim.cycle() + 50000;
  while ((sim.messages_in_flight() > 0 || sim.source_queue_total() > 0 ||
          sim.recovery_pending() > 0) &&
         sim.cycle() < limit) {
    sim.step();
  }
  ASSERT_EQ(sim.messages_in_flight(), 0u);
  ASSERT_TRUE(sim.network().quiescent());
  // Outrun the return latency so the last credits land, then the
  // invariant check pins every counter to the (empty) buffer state.
  sim.step_cycles(64);
  ASSERT_TRUE(testing::check_all_invariants(sim));
}

/// The config layer refuses VCT setups that could never admit a
/// packet: buffers shallower than the longest message would wedge
/// every source forever (detection/recovery cannot help a message that
/// is never admitted).
TEST(FlowControlFuzz, VctValidationRejectsShallowBuffers) {
  config::SimConfig cfg = config::small_base();
  cfg.sim.flow.scheme = FlowControl::Vct;
  cfg.workload.length.fixed = 16;
  cfg.sim.net.buf_flits = 4;
  EXPECT_THROW(config::validate(cfg), std::invalid_argument);
  cfg.sim.net.buf_flits = 16;
  EXPECT_NO_THROW(config::validate(cfg));
  // Bimodal lengths gate on the longer mode.
  cfg.workload.length.kind = traffic::LengthDist::Kind::Bimodal;
  cfg.workload.length.short_len = 4;
  cfg.workload.length.long_len = 64;
  EXPECT_THROW(config::validate(cfg), std::invalid_argument);
  cfg.sim.net.buf_flits = 64;
  EXPECT_NO_THROW(config::validate(cfg));
}

}  // namespace
}  // namespace wormsim::sim
