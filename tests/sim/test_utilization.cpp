#include "sim/utilization.hpp"

#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace wormsim::sim {
namespace {

using testing::make_sim;
using testing::make_traffic_sim;
using testing::run_until_delivered;

TEST(Utilization, SingleMessageCountsExactlyItsFlitHops) {
  auto sim = make_sim(5, 1);
  // 0 -> 2 on a 5-ring: traverses links 0->1 and 1->2, 16 flits each.
  sim->push_message(0, 2, 16);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  const Network& net = sim->network();
  std::uint64_t total = 0;
  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    total += net.link(l).flits_carried;
  }
  EXPECT_EQ(total, 32u);
  const auto plus0 = net.net_link(0, topo::make_channel(0, topo::Dir::Plus));
  const auto plus1 = net.net_link(1, topo::make_channel(0, topo::Dir::Plus));
  EXPECT_EQ(net.link(plus0).flits_carried, 16u);
  EXPECT_EQ(net.link(plus1).flits_carried, 16u);
}

TEST(Utilization, SummaryFieldsConsistent) {
  auto sim = make_traffic_sim(4, 2, 0.4, 16);
  sim->step_cycles(5000);
  const auto s = summarize_utilization(sim->network(), 5000);
  EXPECT_GT(s.mean, 0.0);
  EXPECT_GE(s.max, s.mean);
  EXPECT_LE(s.min, s.mean);
  EXPECT_GE(s.imbalance, 1.0);
  ASSERT_EQ(s.per_dim.size(), 2u);
  // Uniform traffic loads both dimensions about equally.
  EXPECT_NEAR(s.per_dim[0], s.per_dim[1], 0.15 * s.per_dim[0]);
  EXPECT_LT(s.idle_fraction, 0.05);
}

TEST(Utilization, NeighborTrafficLoadsOnlyDimZeroPlus) {
  sim::SimulatorConfig cfg = testing::default_config();
  auto sim = make_traffic_sim(4, 2, 0.3, 16, cfg,
                              traffic::PatternKind::NeighborPlus);
  sim->step_cycles(4000);
  const auto s = summarize_utilization(sim->network(), 4000);
  EXPECT_GT(s.per_dim[0], 0.0);
  EXPECT_DOUBLE_EQ(s.per_dim[1], 0.0);
  // Half the links (dim 1 + dim0-minus) never carry anything.
  EXPECT_GE(s.idle_fraction, 0.5);
}

TEST(Utilization, ResetClearsCounters) {
  auto sim = make_sim(4, 2);
  sim->push_message(0, 5, 16);
  ASSERT_TRUE(run_until_delivered(*sim, 1, 1000));
  reset_utilization(sim->network());
  const auto s = summarize_utilization(sim->network(), 100);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.idle_fraction, 1.0);
}

TEST(Utilization, ZeroCyclesYieldsEmptySummary) {
  auto sim = make_sim(4, 2);
  const auto s = summarize_utilization(sim->network(), 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_TRUE(s.per_dim.empty());
}

TEST(TimeSeriesIntegration, CapturesBurstDynamics) {
  // Enable the per-interval series on a live simulator and check it
  // accounts for every delivered flit.
  auto sim = make_traffic_sim(4, 2, 0.4, 16);
  sim->enable_timeseries(256);
  sim->step_cycles(4096);
  ASSERT_NE(sim->timeseries(), nullptr);
  const auto& intervals = sim->timeseries()->intervals();
  ASSERT_GE(intervals.size(), 16u);
  std::uint64_t flits = 0, delivered = 0;
  for (const auto& iv : intervals) {
    flits += iv.flits_ejected;
    delivered += iv.messages_delivered;
  }
  EXPECT_EQ(delivered, sim->total_delivered());
  // Every delivered message ejected 16 flits; messages still mid-ejection
  // at the cutoff may add a partial worm each.
  EXPECT_GE(flits, sim->total_delivered() * 16);
  EXPECT_LT(flits, sim->total_delivered() * 16 + 16 * 64);
  // Steady state: later intervals all show nonzero throughput.
  for (std::size_t i = 4; i < intervals.size(); ++i) {
    EXPECT_GT(intervals[i].flits_ejected, 0u) << "interval " << i;
  }
}

TEST(TimeSeriesIntegration, DisableDropsSeries) {
  auto sim = make_traffic_sim(4, 2, 0.2, 16);
  sim->enable_timeseries(100);
  sim->step_cycles(500);
  sim->enable_timeseries(0);
  EXPECT_EQ(sim->timeseries(), nullptr);
}

}  // namespace
}  // namespace wormsim::sim
