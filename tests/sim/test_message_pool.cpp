#include "sim/message.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wormsim::sim {
namespace {

TEST(MessagePool, AllocateGivesFreshSlots) {
  MessagePool pool;
  const MsgId a = pool.allocate();
  const MsgId b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live(), 2u);
}

TEST(MessagePool, ReleaseReusesSlot) {
  MessagePool pool;
  const MsgId a = pool.allocate();
  pool[a].length = 99;
  pool.release(a);
  const MsgId b = pool.allocate();
  EXPECT_EQ(a, b);
  // Reused slot is reset to a fresh Message.
  EXPECT_EQ(pool[b].length, 0u);
  EXPECT_FALSE(pool[b].in_network);
}

TEST(MessagePool, CapacityGrowsOnlyWhenNeeded) {
  MessagePool pool;
  std::set<MsgId> ids;
  for (int i = 0; i < 100; ++i) ids.insert(pool.allocate());
  EXPECT_EQ(ids.size(), 100u);
  EXPECT_EQ(pool.capacity(), 100u);
  for (const MsgId id : ids) pool.release(id);
  EXPECT_EQ(pool.live(), 0u);
  for (int i = 0; i < 100; ++i) pool.allocate();
  EXPECT_EQ(pool.capacity(), 100u);  // fully recycled
}

TEST(MessagePool, FieldsIndependentAcrossSlots) {
  MessagePool pool;
  const MsgId a = pool.allocate();
  const MsgId b = pool.allocate();
  pool[a].dst = 5;
  pool[b].dst = 9;
  EXPECT_EQ(pool[a].dst, 5u);
  EXPECT_EQ(pool[b].dst, 9u);
}

TEST(VcRefTest, ValidityAndEquality) {
  VcRef none;
  EXPECT_FALSE(none.valid());
  VcRef a{3, 1}, b{3, 1}, c{3, 2};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace wormsim::sim
