// Shared test double for core::ChannelStatus.
#pragma once

#include <vector>

#include "core/limiter.hpp"

namespace wormsim::core::testing {

/// Per-node, per-channel free-VC masks set directly by tests.
class FakeStatus final : public ChannelStatus {
 public:
  FakeStatus(unsigned nodes, unsigned channels, unsigned vcs)
      : channels_(channels),
        vcs_(vcs),
        masks_(static_cast<std::size_t>(nodes) * channels,
               (1u << vcs) - 1u) {}

  unsigned num_phys_channels() const override { return channels_; }
  unsigned num_vcs() const override { return vcs_; }
  std::uint32_t free_vc_mask(NodeId node, ChannelId c) const override {
    return masks_[static_cast<std::size_t>(node) * channels_ + c];
  }

  void set_free(NodeId node, ChannelId c, std::uint32_t mask) {
    masks_[static_cast<std::size_t>(node) * channels_ + c] = mask;
  }
  /// Make every channel of `node` have exactly `free_per_channel` free
  /// VCs (the lowest ones).
  void fill_uniform(NodeId node, unsigned free_per_channel) {
    for (unsigned c = 0; c < channels_; ++c) {
      set_free(node, static_cast<ChannelId>(c),
               (1u << free_per_channel) - 1u);
    }
  }

 private:
  unsigned channels_;
  unsigned vcs_;
  std::vector<std::uint32_t> masks_;
};

/// RouteResult with the given useful channel indices, all VCs usable.
inline routing::RouteResult make_route(std::initializer_list<unsigned> chans,
                                       unsigned vcs) {
  routing::RouteResult r;
  for (unsigned c : chans) {
    r.candidates.push_back(
        {static_cast<topo::ChannelId>(c), (1u << vcs) - 1u, false});
    r.useful_phys_mask |= 1u << c;
  }
  return r;
}

inline InjectionRequest make_request(NodeId node,
                                     const routing::RouteResult& route) {
  InjectionRequest req;
  req.node = node;
  req.dst = node + 1;
  req.length_flits = 16;
  req.route = &route;
  return req;
}

}  // namespace wormsim::core::testing
