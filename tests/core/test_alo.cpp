#include "core/alo.hpp"

#include <gtest/gtest.h>

#include "fake_status.hpp"
#include "util/rng.hpp"

namespace wormsim::core {
namespace {

using testing::FakeStatus;
using testing::make_request;
using testing::make_route;

class AloTest : public ::testing::Test {
 protected:
  FakeStatus status_{4, 6, 3};  // 4 nodes, 6 channels (8-ary 3-cube), 3 VCs
  AloLimiter alo_;
};

TEST_F(AloTest, AllowsWhenEverythingFree) {
  const auto route = make_route({0, 2, 4}, 3);
  EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
}

TEST_F(AloTest, RuleA_AllUsefulChannelsHaveOneFreeVc) {
  // Every useful channel keeps exactly one free VC: rule (a) holds.
  for (unsigned c : {0u, 2u, 4u}) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b001);
  }
  const auto route = make_route({0, 2, 4}, 3);
  const auto cond = evaluate_alo(status_, 0, route.useful_phys_mask);
  EXPECT_TRUE(cond.all_useful_partially_free);
  EXPECT_FALSE(cond.any_useful_completely_free);
  EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
}

TEST_F(AloTest, DeniesWhenOneUsefulChannelFullyBusy) {
  status_.set_free(0, 0, 0b000);  // channel 0 fully busy
  status_.set_free(0, 2, 0b011);
  status_.set_free(0, 4, 0b001);
  const auto route = make_route({0, 2, 4}, 3);
  const auto cond = evaluate_alo(status_, 0, route.useful_phys_mask);
  EXPECT_FALSE(cond.all_useful_partially_free);
  EXPECT_FALSE(cond.any_useful_completely_free);
  EXPECT_FALSE(alo_.allow(make_request(0, route), status_));
}

TEST_F(AloTest, RuleB_OneCompletelyFreeChannelOverridesBusyOnes) {
  status_.set_free(0, 0, 0b000);  // fully busy
  status_.set_free(0, 2, 0b111);  // completely free -> rule (b)
  status_.set_free(0, 4, 0b001);
  const auto route = make_route({0, 2, 4}, 3);
  const auto cond = evaluate_alo(status_, 0, route.useful_phys_mask);
  EXPECT_FALSE(cond.all_useful_partially_free);
  EXPECT_TRUE(cond.any_useful_completely_free);
  EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
}

TEST_F(AloTest, IgnoresChannelsOutsideUsefulMask) {
  // Congested areas the message will not traverse must not block it
  // (paper §3: "it does not matter that some network areas are
  // congested if they are not likely to be used by the message").
  for (unsigned c = 0; c < 6; ++c) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b000);
  }
  status_.set_free(0, 3, 0b001);
  const auto route = make_route({3}, 3);
  EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
}

TEST_F(AloTest, ButterflyStyleTwoChannelExample) {
  // Paper §3 example: a butterfly message uses channels in two
  // dimensions; injection allowed with >= 1 free VC in each, or one of
  // them completely free.
  const auto route = make_route({0, 2}, 3);
  status_.set_free(0, 0, 0b010);
  status_.set_free(0, 2, 0b100);
  EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
  status_.set_free(0, 2, 0b000);
  EXPECT_FALSE(alo_.allow(make_request(0, route), status_));
  status_.set_free(0, 0, 0b111);  // completely free -> rule (b)
  EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
}

TEST_F(AloTest, EmptyUsefulMaskVacuouslyAllows) {
  const auto cond = evaluate_alo(status_, 0, 0);
  EXPECT_TRUE(cond.allow());
}

TEST_F(AloTest, PerNodeIndependence) {
  status_.set_free(1, 0, 0b000);
  const auto route = make_route({0}, 3);
  EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
  EXPECT_FALSE(alo_.allow(make_request(1, route), status_));
}

TEST_F(AloTest, NoThresholdNoState) {
  // ALO is stateless: the same status always yields the same answer,
  // regardless of history.
  const auto route = make_route({0, 2}, 3);
  status_.set_free(0, 0, 0b000);
  status_.set_free(0, 2, 0b011);  // partially (not completely) free
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(alo_.allow(make_request(0, route), status_));
  }
  status_.set_free(0, 0, 0b001);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(alo_.allow(make_request(0, route), status_));
  }
}

TEST(AloRouted, ReducesToUnmaskedFormForTfarStyleMasks) {
  // When every candidate offers all VCs (TFAR), the routed evaluation
  // must agree with the paper's formulation on every status register.
  FakeStatus status(1, 6, 3);
  util::Rng rng(31);
  for (int iter = 0; iter < 5000; ++iter) {
    for (unsigned c = 0; c < 6; ++c) {
      status.set_free(0, static_cast<ChannelId>(c),
                      static_cast<std::uint32_t>(rng.below(8)));
    }
    const auto chans = static_cast<std::uint32_t>(rng.between(1, 0b111111));
    routing::RouteResult route;
    for (unsigned c = 0; c < 6; ++c) {
      if (chans & (1u << c)) {
        route.candidates.push_back(
            {static_cast<ChannelId>(c), 0b111, false});
        route.useful_phys_mask |= 1u << c;
      }
    }
    const auto plain = evaluate_alo(status, 0, route.useful_phys_mask);
    const auto routed = evaluate_alo_routed(status, 0, route);
    ASSERT_EQ(plain.allow(), routed.allow()) << "iteration " << iter;
    ASSERT_EQ(plain.all_useful_partially_free,
              routed.all_useful_partially_free);
    ASSERT_EQ(plain.any_useful_completely_free,
              routed.any_useful_completely_free);
  }
}

TEST(AloRouted, IdleEscapeVcsDoNotMaskCongestion) {
  // Duato-style restriction: adaptive traffic may only use VC 2; the
  // escape VCs (0, 1) on non-DOR channels are structurally idle. With
  // every adaptive VC busy, rule (a) must fail even though each channel
  // still shows "free" escape VCs.
  FakeStatus status(1, 4, 3);
  routing::RouteResult route;
  route.candidates.push_back({0, 0b100, false});  // adaptive VC2 only
  route.candidates.push_back({2, 0b100, false});
  route.candidates.push_back({0, 0b001, true});   // escape on DOR channel
  route.useful_phys_mask = 0b101;

  // Adaptive VC2 busy everywhere; escape VC0 busy on the DOR channel;
  // VC1s idle.
  status.set_free(0, 0, 0b010);
  status.set_free(0, 2, 0b011);
  const auto cond = evaluate_alo_routed(status, 0, route);
  EXPECT_FALSE(cond.all_useful_partially_free);
  EXPECT_FALSE(cond.any_useful_completely_free);
  EXPECT_FALSE(cond.allow());
  // The paper's unmasked form would wrongly allow here (footnote 1).
  EXPECT_TRUE(evaluate_alo(status, 0, route.useful_phys_mask).allow());

  // Freeing an adaptive VC on every useful channel restores rule (a).
  status.set_free(0, 0, 0b110);
  status.set_free(0, 2, 0b111);
  EXPECT_TRUE(evaluate_alo_routed(status, 0, route).allow());
}

/// Property: the row-based evaluators (the devirtualized cycle-loop
/// path) agree with the ChannelStatus evaluators on random status
/// registers and random routes — both rules, not just the final allow.
TEST(AloRowTwin, MatchesChannelStatusEvaluatorsOnRandomState) {
  constexpr unsigned kChannels = 6;
  constexpr unsigned kVcs = 3;
  FakeStatus status(1, kChannels, kVcs);
  util::Rng rng(0xA10);
  for (int iter = 0; iter < 5000; ++iter) {
    std::uint8_t row[kChannels];
    for (unsigned c = 0; c < kChannels; ++c) {
      const auto mask = static_cast<std::uint32_t>(rng.below(1u << kVcs));
      status.set_free(0, static_cast<ChannelId>(c), mask);
      row[c] = static_cast<std::uint8_t>(mask);
    }
    // Unmasked form over a random useful set (zero included: vacuous).
    const auto useful = static_cast<std::uint32_t>(rng.below(1u << kChannels));
    const AloConditions v = evaluate_alo(status, 0, useful);
    const AloConditions r = evaluate_alo_row(row, kVcs, useful);
    ASSERT_EQ(v.all_useful_partially_free, r.all_useful_partially_free)
        << "iter " << iter << " useful " << useful;
    ASSERT_EQ(v.any_useful_completely_free, r.any_useful_completely_free)
        << "iter " << iter << " useful " << useful;

    // Routed form over a random candidate set with random VC masks and
    // an optional trailing escape candidate (the Duato shape).
    routing::RouteResult route;
    const unsigned cands = 1 + static_cast<unsigned>(rng.below(kChannels));
    for (unsigned i = 0; i < cands; ++i) {
      const auto vc_mask =
          static_cast<std::uint32_t>(rng.between(1, (1u << kVcs) - 1));
      const bool escape = (i == cands - 1) && rng.bernoulli(0.5);
      route.candidates.push_back(
          {static_cast<ChannelId>(i), vc_mask, escape});
      route.useful_phys_mask |= 1u << i;
    }
    const AloConditions vr = evaluate_alo_routed(status, 0, route);
    const AloConditions rr = evaluate_alo_routed_row(row, kVcs, route);
    ASSERT_EQ(vr.all_useful_partially_free, rr.all_useful_partially_free)
        << "iter " << iter;
    ASSERT_EQ(vr.any_useful_completely_free, rr.any_useful_completely_free)
        << "iter " << iter;
  }
}

TEST(AloUniformExample, PaperSixChannelScenario) {
  // Paper §3: with uniform traffic in a k-ary 3-cube a message may use
  // all 6 physical channels; rule (a) needs >= 6 free VCs spread one per
  // channel.
  testing::FakeStatus status(1, 6, 3);
  AloLimiter alo;
  auto route = make_route({0, 1, 2, 3, 4, 5}, 3);
  for (unsigned c = 0; c < 6; ++c) {
    status.set_free(0, static_cast<ChannelId>(c), 0b100);
  }
  EXPECT_TRUE(alo.allow(make_request(0, route), status));
  // Losing the last free VC of one channel flips the decision.
  status.set_free(0, 5, 0b000);
  EXPECT_FALSE(alo.allow(make_request(0, route), status));
}

}  // namespace
}  // namespace wormsim::core
