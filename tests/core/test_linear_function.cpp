#include "core/linear_function.hpp"

#include <gtest/gtest.h>

#include "fake_status.hpp"

namespace wormsim::core {
namespace {

using testing::FakeStatus;
using testing::make_request;
using testing::make_route;

TEST(LinearFunction, ValidatesAlpha) {
  EXPECT_THROW(LinearFunctionLimiter(-0.1), std::invalid_argument);
  EXPECT_THROW(LinearFunctionLimiter(1.1), std::invalid_argument);
  EXPECT_NO_THROW(LinearFunctionLimiter(0.0));
  EXPECT_NO_THROW(LinearFunctionLimiter(1.0));
}

TEST(LinearFunction, CountsOnlyUsefulChannels) {
  FakeStatus status(1, 6, 3);
  status.set_free(0, 0, 0b001);  // 2 busy
  status.set_free(0, 2, 0b000);  // 3 busy
  status.set_free(0, 4, 0b111);  // 0 busy
  status.set_free(0, 1, 0b000);  // 3 busy but NOT useful
  const auto route = make_route({0, 2, 4}, 3);
  const auto counts =
      LinearFunctionLimiter::count_useful(status, 0, route);
  EXPECT_EQ(counts.total, 9u);
  EXPECT_EQ(counts.busy, 5u);
}

TEST(LinearFunction, ThresholdScalesWithUsefulVcs) {
  LinearFunctionLimiter lf(0.5);
  FakeStatus status(1, 6, 3);
  const auto route = make_route({0, 2}, 3);  // 6 useful VCs, threshold 3

  status.set_free(0, 0, 0b001);  // 2 busy
  status.set_free(0, 2, 0b011);  // 1 busy -> total 3 busy <= 3
  EXPECT_TRUE(lf.allow(make_request(0, route), status));

  status.set_free(0, 2, 0b001);  // 2 busy -> total 4 busy > 3
  EXPECT_FALSE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, AlphaOneNeverRestrictsUntilSaturated) {
  LinearFunctionLimiter lf(1.0);
  FakeStatus status(1, 6, 3);
  const auto route = make_route({0}, 3);
  status.set_free(0, 0, 0b000);  // all busy: busy == total == threshold
  EXPECT_TRUE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, AlphaZeroRequiresAllFree) {
  LinearFunctionLimiter lf(0.0);
  FakeStatus status(1, 6, 3);
  const auto route = make_route({0, 2}, 3);
  EXPECT_TRUE(lf.allow(make_request(0, route), status));
  status.set_free(0, 0, 0b011);  // one busy VC
  EXPECT_FALSE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, VacuousWithNoUsefulChannels) {
  LinearFunctionLimiter lf(0.5);
  FakeStatus status(1, 6, 3);
  routing::RouteResult route;  // empty
  EXPECT_TRUE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, AdaptsToPatternFootprint) {
  // A butterfly-style 2-channel request and a uniform 6-channel request
  // see different absolute thresholds from the same alpha.
  LinearFunctionLimiter lf(0.625);
  FakeStatus status(1, 6, 3);
  // 6 channels x 3 VCs = 18 useful, threshold floor(11.25) = 11.
  const auto uniform = make_route({0, 1, 2, 3, 4, 5}, 3);
  // 2 channels x 3 VCs = 6 useful, threshold floor(3.75) = 3.
  const auto butterfly = make_route({0, 2}, 3);

  // 4 busy VCs on channels 0 and 2 (2 each): uniform passes (4 <= 11),
  // butterfly fails (4 > 3).
  status.set_free(0, 0, 0b001);
  status.set_free(0, 2, 0b100);
  EXPECT_TRUE(lf.allow(make_request(0, uniform), status));
  EXPECT_FALSE(lf.allow(make_request(0, butterfly), status));
}

}  // namespace
}  // namespace wormsim::core
