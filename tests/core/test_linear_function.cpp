#include "core/linear_function.hpp"

#include <gtest/gtest.h>

#include "fake_status.hpp"
#include "util/rng.hpp"

namespace wormsim::core {
namespace {

using testing::FakeStatus;
using testing::make_request;
using testing::make_route;

TEST(LinearFunction, ValidatesAlpha) {
  EXPECT_THROW(LinearFunctionLimiter(-0.1), std::invalid_argument);
  EXPECT_THROW(LinearFunctionLimiter(1.1), std::invalid_argument);
  EXPECT_NO_THROW(LinearFunctionLimiter(0.0));
  EXPECT_NO_THROW(LinearFunctionLimiter(1.0));
}

TEST(LinearFunction, CountsOnlyUsefulChannels) {
  FakeStatus status(1, 6, 3);
  status.set_free(0, 0, 0b001);  // 2 busy
  status.set_free(0, 2, 0b000);  // 3 busy
  status.set_free(0, 4, 0b111);  // 0 busy
  status.set_free(0, 1, 0b000);  // 3 busy but NOT useful
  const auto route = make_route({0, 2, 4}, 3);
  const auto counts =
      LinearFunctionLimiter::count_useful(status, 0, route);
  EXPECT_EQ(counts.total, 9u);
  EXPECT_EQ(counts.busy, 5u);
}

TEST(LinearFunction, ThresholdScalesWithUsefulVcs) {
  LinearFunctionLimiter lf(0.5);
  FakeStatus status(1, 6, 3);
  const auto route = make_route({0, 2}, 3);  // 6 useful VCs, threshold 3

  status.set_free(0, 0, 0b001);  // 2 busy
  status.set_free(0, 2, 0b011);  // 1 busy -> total 3 busy <= 3
  EXPECT_TRUE(lf.allow(make_request(0, route), status));

  status.set_free(0, 2, 0b001);  // 2 busy -> total 4 busy > 3
  EXPECT_FALSE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, AlphaOneNeverRestrictsUntilSaturated) {
  LinearFunctionLimiter lf(1.0);
  FakeStatus status(1, 6, 3);
  const auto route = make_route({0}, 3);
  status.set_free(0, 0, 0b000);  // all busy: busy == total == threshold
  EXPECT_TRUE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, AlphaZeroRequiresAllFree) {
  LinearFunctionLimiter lf(0.0);
  FakeStatus status(1, 6, 3);
  const auto route = make_route({0, 2}, 3);
  EXPECT_TRUE(lf.allow(make_request(0, route), status));
  status.set_free(0, 0, 0b011);  // one busy VC
  EXPECT_FALSE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, VacuousWithNoUsefulChannels) {
  LinearFunctionLimiter lf(0.5);
  FakeStatus status(1, 6, 3);
  routing::RouteResult route;  // empty
  EXPECT_TRUE(lf.allow(make_request(0, route), status));
}

TEST(LinearFunction, AdaptsToPatternFootprint) {
  // A butterfly-style 2-channel request and a uniform 6-channel request
  // see different absolute thresholds from the same alpha.
  LinearFunctionLimiter lf(0.625);
  FakeStatus status(1, 6, 3);
  // 6 channels x 3 VCs = 18 useful, threshold floor(11.25) = 11.
  const auto uniform = make_route({0, 1, 2, 3, 4, 5}, 3);
  // 2 channels x 3 VCs = 6 useful, threshold floor(3.75) = 3.
  const auto butterfly = make_route({0, 2}, 3);

  // 4 busy VCs on channels 0 and 2 (2 each): uniform passes (4 <= 11),
  // butterfly fails (4 > 3).
  status.set_free(0, 0, 0b001);
  status.set_free(0, 2, 0b100);
  EXPECT_TRUE(lf.allow(make_request(0, uniform), status));
  EXPECT_FALSE(lf.allow(make_request(0, butterfly), status));
}

/// Property: count_useful_row / allow_row (the devirtualized cycle-loop
/// path) agree with the ChannelStatus versions on random state. LF is
/// stateless, so one limiter instance can answer both forms.
TEST(LinearFunctionRowTwin, MatchesChannelStatusPathOnRandomState) {
  constexpr unsigned kChannels = 6;
  constexpr unsigned kVcs = 3;
  FakeStatus status(1, kChannels, kVcs);
  util::Rng rng(0x1F);
  for (int iter = 0; iter < 5000; ++iter) {
    std::uint8_t row[kChannels];
    for (unsigned c = 0; c < kChannels; ++c) {
      const auto mask = static_cast<std::uint32_t>(rng.below(1u << kVcs));
      status.set_free(0, static_cast<ChannelId>(c), mask);
      row[c] = static_cast<std::uint8_t>(mask);
    }
    routing::RouteResult route;
    const unsigned cands = static_cast<unsigned>(rng.below(kChannels + 1));
    for (unsigned i = 0; i < cands; ++i) {
      route.candidates.push_back(
          {static_cast<ChannelId>(i), (1u << kVcs) - 1u, false});
      route.useful_phys_mask |= 1u << i;
    }
    const auto vc = LinearFunctionLimiter::count_useful(status, 0, route);
    const auto rc = LinearFunctionLimiter::count_useful_row(
        row, kVcs, route.useful_phys_mask);
    ASSERT_EQ(vc.busy, rc.busy) << "iter " << iter;
    ASSERT_EQ(vc.total, rc.total) << "iter " << iter;

    LinearFunctionLimiter lf(static_cast<double>(rng.below(11)) / 10.0);
    const auto req = make_request(0, route);
    ASSERT_EQ(lf.allow(req, status), lf.allow_row(req, row, kVcs))
        << "iter " << iter << " alpha " << lf.alpha();
  }
}

}  // namespace
}  // namespace wormsim::core
