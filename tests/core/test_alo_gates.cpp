#include "core/alo_gates.hpp"

#include <gtest/gtest.h>

#include "core/alo.hpp"
#include "fake_status.hpp"
#include "util/rng.hpp"

namespace wormsim::core {
namespace {

TEST(AloGates, ValidatesDimensions) {
  EXPECT_THROW(AloGateCircuit(0, 3), std::invalid_argument);
  EXPECT_THROW(AloGateCircuit(6, 0), std::invalid_argument);
  EXPECT_THROW(AloGateCircuit(33, 2), std::invalid_argument);
  EXPECT_THROW(AloGateCircuit(32, 3), std::invalid_argument);  // 96 bits
  EXPECT_NO_THROW(AloGateCircuit(6, 3));
}

TEST(AloGates, WiresOnIdleNetwork) {
  const AloGateCircuit circuit(6, 3);
  const auto w = circuit.trace(/*busy=*/0, /*useful=*/0b000101);
  EXPECT_EQ(w.c_gates, 0b111111u);  // every channel has free VCs
  EXPECT_EQ(w.d_gates, 0b111111u);  // every channel completely free
  EXPECT_EQ(w.b_gates, 0b111111u);
  EXPECT_EQ(w.e_gates, 0b000101u);
  EXPECT_TRUE(w.a_gate);
  EXPECT_TRUE(w.f_gate);
  EXPECT_TRUE(w.g_gate);
}

TEST(AloGates, WiresOnSaturatedUsefulChannel) {
  const AloGateCircuit circuit(6, 3);
  // Channel 0 fully busy (bits 0..2), channel 2 has one busy VC.
  const std::uint64_t busy = 0b111ULL | (0b001ULL << 6);
  const auto w = circuit.trace(busy, /*useful=*/0b000101);
  EXPECT_EQ(w.c_gates & 0b1u, 0u);       // channel 0 has no free VC
  EXPECT_NE(w.c_gates & 0b100u, 0u);     // channel 2 still has free VCs
  EXPECT_EQ(w.d_gates & 0b101u, 0u);     // neither useful channel empty
  EXPECT_FALSE(w.a_gate);
  EXPECT_FALSE(w.f_gate);
  EXPECT_FALSE(w.g_gate);
}

TEST(AloGates, RuleBRescues) {
  const AloGateCircuit circuit(6, 3);
  // Channel 0 fully busy but channel 2 completely free.
  const std::uint64_t busy = 0b111ULL;
  const auto w = circuit.trace(busy, /*useful=*/0b000101);
  EXPECT_FALSE(w.a_gate);
  EXPECT_TRUE(w.f_gate);
  EXPECT_TRUE(w.g_gate);
}

TEST(AloGates, EquivalentToBehaviouralPredicateExhaustive) {
  // Small configuration (3 channels x 2 VCs = 6 status bits): check all
  // 2^6 status registers x 2^3 useful masks against evaluate_alo().
  const unsigned channels = 3, vcs = 2;
  const AloGateCircuit circuit(channels, vcs);
  testing::FakeStatus status(1, channels, vcs);
  for (std::uint64_t busy = 0; busy < (1u << (channels * vcs)); ++busy) {
    for (std::uint32_t useful = 0; useful < (1u << channels); ++useful) {
      for (unsigned c = 0; c < channels; ++c) {
        const auto busy_c = (busy >> (c * vcs)) & 0b11;
        status.set_free(0, static_cast<ChannelId>(c),
                        static_cast<std::uint32_t>(~busy_c & 0b11));
      }
      const bool behavioural = evaluate_alo(status, 0, useful).allow();
      const bool gates = circuit.evaluate(busy, useful);
      ASSERT_EQ(gates, behavioural)
          << "busy=" << busy << " useful=" << useful;
    }
  }
}

TEST(AloGates, EquivalentToBehaviouralPredicateRandomPaperSize) {
  // Paper configuration: 6 channels x 3 VCs. Randomized equivalence.
  const unsigned channels = 6, vcs = 3;
  const AloGateCircuit circuit(channels, vcs);
  testing::FakeStatus status(1, channels, vcs);
  util::Rng rng(77);
  for (int iter = 0; iter < 20000; ++iter) {
    const std::uint64_t busy = rng.bits() & ((1ULL << (channels * vcs)) - 1);
    const auto useful =
        static_cast<std::uint32_t>(rng.bits() & ((1u << channels) - 1));
    for (unsigned c = 0; c < channels; ++c) {
      const auto busy_c = (busy >> (c * vcs)) & 0b111;
      status.set_free(0, static_cast<ChannelId>(c),
                      static_cast<std::uint32_t>(~busy_c & 0b111));
    }
    const bool behavioural = evaluate_alo(status, 0, useful).allow();
    ASSERT_EQ(circuit.evaluate(busy, useful), behavioural)
        << "busy=" << busy << " useful=" << useful;
  }
}

TEST(AloGates, PackBusyBitsMatchesStatus) {
  testing::FakeStatus status(2, 4, 3);
  status.set_free(1, 0, 0b010);  // busy = 101
  status.set_free(1, 2, 0b000);  // busy = 111
  const std::uint64_t bits = AloGateCircuit::pack_busy_bits(status, 1);
  EXPECT_EQ((bits >> 0) & 0b111, 0b101u);
  EXPECT_EQ((bits >> 3) & 0b111, 0b000u);
  EXPECT_EQ((bits >> 6) & 0b111, 0b111u);
}

TEST(AloGates, GateCountIsSmall) {
  // The paper's cost claim: pure combinational logic. For the 8-ary
  // 3-cube router (6 channels, 3 VCs) the whole mechanism is well under
  // a hundred two-input-gate equivalents.
  const AloGateCircuit circuit(6, 3);
  EXPECT_GT(circuit.gate_count(), 0u);
  EXPECT_LT(circuit.gate_count(), 100u);
}

}  // namespace
}  // namespace wormsim::core
