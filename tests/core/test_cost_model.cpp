#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace wormsim::core {
namespace {

TEST(CostModel, CountBits) {
  EXPECT_EQ(count_bits(0), 0u);  // counts 0..0 need no storage
  EXPECT_EQ(count_bits(1), 1u);
  EXPECT_EQ(count_bits(2), 2u);
  EXPECT_EQ(count_bits(3), 2u);
  EXPECT_EQ(count_bits(18), 5u);
  EXPECT_EQ(count_bits(31), 5u);
  EXPECT_EQ(count_bits(32), 6u);
}

TEST(CostModel, NoneIsFree) {
  const auto c = estimate_cost(LimiterKind::None, 6, 3);
  EXPECT_EQ(c.total_gate_equivalents(), 0u);
}

TEST(CostModel, AloHasNoSequentialState) {
  // The paper's §3 claim, verbatim: no thresholds, so no registers and
  // no comparators — only some logic gates.
  const auto c = estimate_cost(LimiterKind::ALO, 6, 3);
  EXPECT_GT(c.combinational_gates, 0u);
  EXPECT_FALSE(c.needs_registers());
  EXPECT_FALSE(c.needs_comparators());
  EXPECT_EQ(c.adder_bits, 0u);
}

TEST(CostModel, LfNeedsCountersAndComparator) {
  const auto c = estimate_cost(LimiterKind::LF, 6, 3);
  EXPECT_TRUE(c.needs_comparators());
  EXPECT_GT(c.adder_bits, 0u);
  EXPECT_FALSE(c.needs_registers());  // threshold is combinational in LF
}

TEST(CostModel, DrilNeedsRegistersToo) {
  const auto c = estimate_cost(LimiterKind::DRIL, 6, 3);
  EXPECT_TRUE(c.needs_registers());
  EXPECT_TRUE(c.needs_comparators());
}

TEST(CostModel, PaperOrderingAloCheapest) {
  // For the paper's router (6 channels, 3 VCs): ALO < LF < DRIL in
  // total gate equivalents — "its implementation is much simpler than
  // any of the previous approaches".
  const auto alo = estimate_cost(LimiterKind::ALO, 6, 3);
  const auto lf = estimate_cost(LimiterKind::LF, 6, 3);
  const auto dril = estimate_cost(LimiterKind::DRIL, 6, 3);
  EXPECT_LT(alo.total_gate_equivalents(), lf.total_gate_equivalents());
  EXPECT_LT(lf.total_gate_equivalents(), dril.total_gate_equivalents());
}

class CostScalingTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(CostScalingTest, OrderingHoldsAcrossRouterShapes) {
  const auto [channels, vcs] = GetParam();
  const auto alo = estimate_cost(LimiterKind::ALO, channels, vcs);
  const auto lf = estimate_cost(LimiterKind::LF, channels, vcs);
  const auto dril = estimate_cost(LimiterKind::DRIL, channels, vcs);
  EXPECT_LT(alo.total_gate_equivalents(), lf.total_gate_equivalents());
  EXPECT_LT(lf.total_gate_equivalents(), dril.total_gate_equivalents());
  EXPECT_FALSE(alo.needs_registers());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CostScalingTest,
    ::testing::Values(std::make_pair(4u, 2u), std::make_pair(4u, 3u),
                      std::make_pair(6u, 3u), std::make_pair(8u, 4u),
                      std::make_pair(12u, 4u)));

TEST(CostModel, AloCostGrowsLinearlyWithStatusBits) {
  const auto small = estimate_cost(LimiterKind::ALO, 4, 2);
  const auto big = estimate_cost(LimiterKind::ALO, 8, 4);
  // 4x the status bits should cost roughly 4x the gates (within 2x
  // slack for the reduction trees).
  EXPECT_GT(big.combinational_gates, 2 * small.combinational_gates);
  EXPECT_LT(big.combinational_gates, 8 * small.combinational_gates);
}

}  // namespace
}  // namespace wormsim::core
