#include "core/dril.hpp"

#include <gtest/gtest.h>

#include "fake_status.hpp"
#include "util/rng.hpp"

namespace wormsim::core {
namespace {

using testing::FakeStatus;
using testing::make_route;

InjectionRequest request_at(NodeId node, const routing::RouteResult& route,
                            std::uint64_t cycle, std::uint64_t head_wait) {
  InjectionRequest req;
  req.node = node;
  req.dst = node + 1;
  req.length_flits = 16;
  req.route = &route;
  req.cycle = cycle;
  req.head_wait = head_wait;
  return req;
}

class DrilTest : public ::testing::Test {
 protected:
  FakeStatus status_{4, 6, 3};
  DrilLimiter dril_{4, /*detect_wait=*/16, /*margin=*/1,
                    /*relax_period=*/1000};
  routing::RouteResult route_ = make_route({0, 2, 4}, 3);
};

TEST_F(DrilTest, UnrestrictedBeforeSaturation) {
  // Heavy occupancy but short head wait: no freeze, always allowed.
  status_.fill_uniform(0, 0);
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_TRUE(dril_.allow(request_at(0, route_, t, 5), status_));
  }
  EXPECT_FALSE(dril_.frozen(0));
}

TEST_F(DrilTest, FreezesThresholdOnLongHeadWait) {
  // 12 busy VCs at freeze time, margin 1 -> threshold 11.
  for (unsigned c = 0; c < 6; ++c) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b001);  // 2 busy each
  }
  // The freezing call itself already restricts: 12 busy >= threshold 11.
  EXPECT_FALSE(dril_.allow(request_at(0, route_, 100, 17), status_));
  EXPECT_TRUE(dril_.frozen(0));
  EXPECT_EQ(dril_.threshold(0), 11u);
}

TEST_F(DrilTest, RestrictsWhileBusyAboveThreshold) {
  for (unsigned c = 0; c < 6; ++c) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b001);
  }
  (void)dril_.allow(request_at(0, route_, 100, 17), status_);  // freeze @ 11
  // Still 12 busy: restricted.
  EXPECT_FALSE(dril_.allow(request_at(0, route_, 101, 0), status_));
  // Load drains to 6 busy (< 11): allowed again.
  for (unsigned c = 0; c < 6; ++c) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b011);
  }
  EXPECT_TRUE(dril_.allow(request_at(0, route_, 102, 0), status_));
}

TEST_F(DrilTest, RelaxationEventuallyUnfreezes) {
  for (unsigned c = 0; c < 6; ++c) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b001);
  }
  (void)dril_.allow(request_at(0, route_, 0, 17), status_);
  ASSERT_TRUE(dril_.frozen(0));
  const unsigned t0 = dril_.threshold(0);
  // After one relax period the threshold grows by one.
  (void)dril_.allow(request_at(0, route_, 1000, 0), status_);
  EXPECT_EQ(dril_.threshold(0), t0 + 1);
  // After enough periods the node unfreezes entirely (total 18 VCs).
  (void)dril_.allow(request_at(0, route_, 1000 * 20, 0), status_);
  EXPECT_FALSE(dril_.frozen(0));
}

TEST_F(DrilTest, NodesFreezeIndependently) {
  for (unsigned c = 0; c < 6; ++c) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b001);  // 12 busy
    status_.set_free(1, static_cast<ChannelId>(c), 0b000);  // 18 busy
  }
  (void)dril_.allow(request_at(0, route_, 10, 20), status_);
  (void)dril_.allow(request_at(1, route_, 500, 20), status_);
  EXPECT_TRUE(dril_.frozen(0));
  EXPECT_TRUE(dril_.frozen(1));
  // Different busy counts at freeze time -> different thresholds (the
  // source of DRIL's unfairness in the paper's Figure 4).
  EXPECT_NE(dril_.threshold(0), dril_.threshold(1));
  EXPECT_FALSE(dril_.frozen(2));
}

TEST_F(DrilTest, ResetClearsAllState) {
  for (unsigned c = 0; c < 6; ++c) {
    status_.set_free(0, static_cast<ChannelId>(c), 0b001);
  }
  (void)dril_.allow(request_at(0, route_, 10, 20), status_);
  ASSERT_TRUE(dril_.frozen(0));
  dril_.reset();
  EXPECT_FALSE(dril_.frozen(0));
}

TEST_F(DrilTest, BusyTotalCountsAllChannels) {
  status_.fill_uniform(2, 1);  // 1 free per channel -> 2 busy x 6 = 12
  EXPECT_EQ(DrilLimiter::busy_total(status_, 2), 12u);
  status_.fill_uniform(2, 3);
  EXPECT_EQ(DrilLimiter::busy_total(status_, 2), 0u);
}

TEST_F(DrilTest, ThresholdClampedToAtLeastOne) {
  // Freeze with almost nothing busy: threshold still >= 1.
  status_.fill_uniform(3, 3);
  (void)dril_.allow(request_at(3, route_, 10, 20), status_);
  EXPECT_TRUE(dril_.frozen(3));
  EXPECT_GE(dril_.threshold(3), 1u);
}

/// Property: the row-based path (busy_total_row / allow_row, the
/// devirtualized cycle loop) tracks the ChannelStatus path bit for bit.
/// DRIL is stateful (frozen thresholds, relax timers), so two instances
/// are fed the identical random request stream and must stay in
/// lock-step on every decision and every piece of introspectable state.
TEST(DrilRowTwin, LockStepWithChannelStatusPathOnRandomStream) {
  constexpr unsigned kNodes = 4;
  constexpr unsigned kChannels = 6;
  constexpr unsigned kVcs = 3;
  FakeStatus status(kNodes, kChannels, kVcs);
  DrilLimiter via_status(kNodes, /*detect_wait=*/16, /*margin=*/1,
                         /*relax_period=*/50);
  DrilLimiter via_row(kNodes, 16, 1, 50);
  util::Rng rng(0xD211);
  const auto route = make_route({0, 2, 4}, kVcs);

  for (std::uint64_t t = 0; t < 4000; ++t) {
    const auto node = static_cast<NodeId>(rng.below(kNodes));
    std::uint8_t row[kChannels];
    for (unsigned c = 0; c < kChannels; ++c) {
      const auto mask = static_cast<std::uint32_t>(rng.below(1u << kVcs));
      status.set_free(node, static_cast<ChannelId>(c), mask);
      row[c] = static_cast<std::uint8_t>(mask);
    }
    ASSERT_EQ(DrilLimiter::busy_total(status, node),
              DrilLimiter::busy_total_row(row, kChannels, kVcs))
        << "cycle " << t;
    // Long head waits appear often enough to freeze and relax repeatedly.
    const std::uint64_t head_wait = rng.below(40);
    const auto req = request_at(node, route, t, head_wait);
    ASSERT_EQ(via_status.allow(req, status),
              via_row.allow_row(req, row, kChannels, kVcs))
        << "cycle " << t << " node " << node;
    for (NodeId n = 0; n < kNodes; ++n) {
      ASSERT_EQ(via_status.frozen(n), via_row.frozen(n))
          << "cycle " << t << " node " << n;
      if (via_status.frozen(n)) {
        ASSERT_EQ(via_status.threshold(n), via_row.threshold(n))
            << "cycle " << t << " node " << n;
      }
    }
  }
}

TEST(DrilFactory, MakeLimiterWiresParams) {
  LimiterConfig cfg;
  cfg.kind = LimiterKind::DRIL;
  cfg.dril_detect_wait = 8;
  auto limiter = make_limiter(cfg, 16);
  EXPECT_EQ(limiter->kind(), LimiterKind::DRIL);
}

TEST(LimiterFactory, AllKindsConstructible) {
  for (const auto kind : {LimiterKind::None, LimiterKind::ALO, LimiterKind::LF,
                          LimiterKind::DRIL}) {
    LimiterConfig cfg;
    cfg.kind = kind;
    auto limiter = make_limiter(cfg, 8);
    ASSERT_NE(limiter, nullptr);
    EXPECT_EQ(limiter->kind(), kind);
  }
}

TEST(LimiterNames, ParseRoundTrip) {
  for (const auto kind : {LimiterKind::None, LimiterKind::ALO, LimiterKind::LF,
                          LimiterKind::DRIL}) {
    EXPECT_EQ(parse_limiter(limiter_name(kind)), kind);
  }
  EXPECT_THROW(parse_limiter("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace wormsim::core
