// Shared structural-invariant checker for fuzz/soak suites.
//
// The active-set and fault fuzzers each grew their own copy of the
// "assert every check_* the simulator exposes" block, and the copies
// drifted (the active-set fuzzer never ran the fault invariants, the
// fault fuzzer never re-ran them after adding flow control). This is
// the single source of truth: every suite calls check_all_invariants()
// and automatically picks up new simulator invariants.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.hpp"

namespace wormsim::sim::testing {

/// Every structural invariant the Simulator exposes, in one assertion:
/// active-set coherence, message/flit conservation (including the
/// lost-to-faults term), fault invariants (trivially true without a
/// schedule), and flow-control invariants (buffer bounds; credit
/// conservation under the Credit scheme).
inline ::testing::AssertionResult check_all_invariants(const Simulator& sim) {
  std::string why;
  if (!sim.check_active_sets(&why)) {
    return ::testing::AssertionFailure() << "active sets: " << why;
  }
  if (!sim.check_conservation(&why)) {
    return ::testing::AssertionFailure() << "conservation: " << why;
  }
  if (!sim.check_fault_invariants(&why)) {
    return ::testing::AssertionFailure() << "fault invariants: " << why;
  }
  if (!sim.check_flow_control(&why)) {
    return ::testing::AssertionFailure() << "flow control: " << why;
  }
  return ::testing::AssertionSuccess();
}

/// Aggregate message conservation through the public counters: every
/// message ever generated is delivered, in flight, source-queued, or
/// lost to faults. (The fuzzers previously disagreed on the lost term;
/// including it is correct in both cases — it is 0 without faults.)
inline ::testing::AssertionResult check_aggregate_conservation(
    const Simulator& sim) {
  const auto r = sim.collector().finish(sim.topology().num_nodes());
  const std::uint64_t accounted = r.messages_delivered +
                                  sim.messages_in_flight() +
                                  sim.source_queue_total() + sim.total_lost();
  if (r.messages_generated != accounted) {
    return ::testing::AssertionFailure()
           << "generated " << r.messages_generated << " != delivered "
           << r.messages_delivered << " + in-flight "
           << sim.messages_in_flight() << " + queued "
           << sim.source_queue_total() << " + lost " << sim.total_lost();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace wormsim::sim::testing
