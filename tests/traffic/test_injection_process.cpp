#include "traffic/injection_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace wormsim::traffic {
namespace {

TEST(InjectionProcess, ParseNames) {
  EXPECT_EQ(parse_process("exponential"), ProcessKind::Exponential);
  EXPECT_EQ(parse_process("poisson"), ProcessKind::Exponential);
  EXPECT_EQ(parse_process("bernoulli"), ProcessKind::Bernoulli);
  EXPECT_THROW(parse_process("wat"), std::invalid_argument);
}

TEST(InjectionProcess, RejectsNegativeRate) {
  EXPECT_THROW(ExponentialProcess(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliProcess(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliProcess(1.5), std::invalid_argument);
}

TEST(InjectionProcess, ZeroRateNeverFires) {
  util::Rng rng(1);
  ExponentialProcess p(0.0);
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(p.arrivals(t, rng), 0u);
  }
}

class RateTest : public ::testing::TestWithParam<double> {};

TEST_P(RateTest, ExponentialLongRunRateMatches) {
  const double rate = GetParam();
  util::Rng rng(42);
  ExponentialProcess p(rate);
  constexpr std::uint64_t kCycles = 200000;
  std::uint64_t total = 0;
  for (std::uint64_t t = 0; t < kCycles; ++t) total += p.arrivals(t, rng);
  const double measured = static_cast<double>(total) / kCycles;
  EXPECT_NEAR(measured, rate, 5 * std::sqrt(rate / kCycles) + 1e-6);
}

TEST_P(RateTest, BernoulliLongRunRateMatches) {
  const double rate = GetParam();
  if (rate > 1.0) GTEST_SKIP();
  util::Rng rng(43);
  BernoulliProcess p(rate);
  constexpr std::uint64_t kCycles = 200000;
  std::uint64_t total = 0;
  for (std::uint64_t t = 0; t < kCycles; ++t) total += p.arrivals(t, rng);
  EXPECT_NEAR(static_cast<double>(total) / kCycles, rate,
              5 * std::sqrt(rate / kCycles) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateTest,
                         ::testing::Values(0.003125, 0.0125, 0.05, 0.2, 0.9));

TEST(InjectionProcess, ExponentialAllowsMultipleArrivalsPerCycle) {
  util::Rng rng(7);
  ExponentialProcess p(3.0);  // mean 3 arrivals per cycle
  bool saw_multi = false;
  std::uint64_t total = 0;
  for (std::uint64_t t = 0; t < 2000; ++t) {
    const unsigned a = p.arrivals(t, rng);
    total += a;
    saw_multi |= (a > 1);
  }
  EXPECT_TRUE(saw_multi);
  EXPECT_NEAR(static_cast<double>(total) / 2000.0, 3.0, 0.3);
}

TEST(InjectionProcess, SetRateTakesEffect) {
  util::Rng rng(9);
  ExponentialProcess p(0.01);
  std::uint64_t low = 0;
  for (std::uint64_t t = 0; t < 50000; ++t) low += p.arrivals(t, rng);
  p.set_rate(0.1);
  std::uint64_t high = 0;
  for (std::uint64_t t = 50000; t < 100000; ++t) high += p.arrivals(t, rng);
  EXPECT_GT(high, low * 5);
}

TEST(BurstyProcess, ValidatesParams) {
  EXPECT_THROW(BurstyProcess(0.1, {.duty_cycle = 0.0}), std::invalid_argument);
  EXPECT_THROW(BurstyProcess(0.1, {.duty_cycle = 1.5}), std::invalid_argument);
  EXPECT_THROW(BurstyProcess(0.1, {.duty_cycle = 0.5, .mean_burst_cycles = 0}),
               std::invalid_argument);
  EXPECT_THROW(BurstyProcess(-0.1, {}), std::invalid_argument);
}

TEST(BurstyProcess, LongRunRateMatchesMean) {
  util::Rng rng(55);
  BurstyProcess p(0.02, {.duty_cycle = 0.25, .mean_burst_cycles = 400});
  constexpr std::uint64_t kCycles = 2000000;
  std::uint64_t total = 0;
  for (std::uint64_t t = 0; t < kCycles; ++t) total += p.arrivals(t, rng);
  EXPECT_NEAR(static_cast<double>(total) / kCycles, 0.02, 0.003);
}

TEST(BurstyProcess, BurstRateExceedsMeanRate) {
  BurstyProcess p(0.02, {.duty_cycle = 0.25, .mean_burst_cycles = 400});
  EXPECT_DOUBLE_EQ(p.burst_rate(), 0.08);
}

TEST(BurstyProcess, ArrivalsAreClustered) {
  // Index of dispersion of per-window counts must far exceed Poisson's.
  util::Rng rng_b(77), rng_e(77);
  BurstyProcess bursty(0.02, {.duty_cycle = 0.2, .mean_burst_cycles = 500});
  ExponentialProcess smooth(0.02);
  constexpr std::uint64_t kWindow = 250, kWindows = 2000;
  util::RunningStats wb, we;
  for (std::uint64_t w = 0; w < kWindows; ++w) {
    std::uint64_t cb = 0, ce = 0;
    for (std::uint64_t i = 0; i < kWindow; ++i) {
      cb += bursty.arrivals(w * kWindow + i, rng_b);
      ce += smooth.arrivals(w * kWindow + i, rng_e);
    }
    wb.add(static_cast<double>(cb));
    we.add(static_cast<double>(ce));
  }
  const double disp_bursty = wb.variance() / wb.mean();
  const double disp_smooth = we.variance() / we.mean();
  EXPECT_GT(disp_bursty, 3.0 * disp_smooth);
}

TEST(BurstyProcess, FullDutyCycleBehavesLikePoisson) {
  util::Rng rng(11);
  BurstyProcess p(0.05, {.duty_cycle = 1.0, .mean_burst_cycles = 100});
  std::uint64_t total = 0;
  constexpr std::uint64_t kCycles = 200000;
  for (std::uint64_t t = 0; t < kCycles; ++t) total += p.arrivals(t, rng);
  EXPECT_NEAR(static_cast<double>(total) / kCycles, 0.05, 0.005);
}

TEST(BurstyProcess, SharedPhaseSeedSynchronizesSchedules) {
  // Two processes with the same phase seed but different arrival
  // streams must be ON/OFF in lockstep.
  util::Rng rng_a(1), rng_b(2);
  BurstyProcess::Params p{.duty_cycle = 0.3,
                          .mean_burst_cycles = 200,
                          .synchronized = true,
                          .phase_seed = 42};
  BurstyProcess a(0.05, p), b(0.05, p);
  for (std::uint64_t t = 0; t < 20000; ++t) {
    (void)a.arrivals(t, rng_a);
    (void)b.arrivals(t, rng_b);
    ASSERT_EQ(a.on(), b.on()) << "cycle " << t;
  }
}

TEST(BurstyProcess, DistinctPhaseSeedsDecorrelate) {
  util::Rng rng_a(1), rng_b(2);
  BurstyProcess::Params pa{.duty_cycle = 0.3, .mean_burst_cycles = 200,
                           .phase_seed = 1};
  BurstyProcess::Params pb = pa;
  pb.phase_seed = 2;
  BurstyProcess a(0.05, pa), b(0.05, pb);
  unsigned disagreements = 0;
  for (std::uint64_t t = 0; t < 20000; ++t) {
    (void)a.arrivals(t, rng_a);
    (void)b.arrivals(t, rng_b);
    disagreements += (a.on() != b.on());
  }
  EXPECT_GT(disagreements, 1000u);
}

TEST(BurstyProcess, ParseName) {
  EXPECT_EQ(parse_process("bursty"), ProcessKind::Bursty);
  EXPECT_EQ(process_name(ProcessKind::Bursty), "bursty");
}

TEST(InjectionProcess, InterArrivalsAreExponentialShaped) {
  // Coefficient of variation of exponential inter-arrivals is 1.
  util::Rng rng(21);
  ExponentialProcess p(0.02);
  std::uint64_t last = 0;
  util::RunningStats gaps;
  for (std::uint64_t t = 0; t < 500000; ++t) {
    const unsigned a = p.arrivals(t, rng);
    for (unsigned i = 0; i < a; ++i) {
      if (last != 0) gaps.add(static_cast<double>(t - last));
      last = t;
    }
  }
  ASSERT_GT(gaps.count(), 1000u);
  const double cv = gaps.stddev() / gaps.mean();
  EXPECT_NEAR(cv, 1.0, 0.1);
  EXPECT_NEAR(gaps.mean(), 50.0, 3.0);
}

}  // namespace
}  // namespace wormsim::traffic
