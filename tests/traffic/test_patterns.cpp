#include "traffic/patterns.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace wormsim::traffic {
namespace {

using topo::KAryNCube;

class PatternTest : public ::testing::Test {
 protected:
  KAryNCube topo_{8, 3};  // 512 nodes = 2^9
  util::Rng rng_{1};
};

TEST_F(PatternTest, ParseRoundTrip) {
  for (const auto kind :
       {PatternKind::Uniform, PatternKind::Butterfly, PatternKind::Complement,
        PatternKind::BitReversal, PatternKind::PerfectShuffle,
        PatternKind::Transpose, PatternKind::Tornado,
        PatternKind::NeighborPlus, PatternKind::Hotspot}) {
    EXPECT_EQ(parse_pattern(pattern_name(kind)), kind);
  }
  EXPECT_THROW(parse_pattern("nope"), std::invalid_argument);
}

TEST_F(PatternTest, UniformCoversAllDestinationsExceptSelf) {
  const KAryNCube small(4, 2);
  auto p = make_pattern(PatternKind::Uniform, small);
  std::set<NodeId> seen;
  for (int i = 0; i < 5000; ++i) {
    const NodeId d = p->destination(7, rng_);
    EXPECT_NE(d, 7u);
    EXPECT_LT(d, small.num_nodes());
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), small.num_nodes() - 1);
}

TEST_F(PatternTest, UniformIsUnbiased) {
  const KAryNCube small(4, 1);
  auto p = make_pattern(PatternKind::Uniform, small);
  std::map<NodeId, int> counts;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) ++counts[p->destination(0, rng_)];
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count, kDraws / 3, 400) << "node " << node;
  }
}

TEST_F(PatternTest, ComplementInvertsBits) {
  auto p = make_pattern(PatternKind::Complement, topo_);
  EXPECT_EQ(p->destination(0, rng_), 511u);
  EXPECT_EQ(p->destination(511, rng_), 0u);
  EXPECT_EQ(p->destination(0b101010101, rng_), 0b010101010u);
}

TEST_F(PatternTest, ComplementIsInvolution) {
  auto p = make_pattern(PatternKind::Complement, topo_);
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    EXPECT_EQ(p->destination(p->destination(n, rng_), rng_), n);
  }
}

TEST_F(PatternTest, ButterflySwapsEndBits) {
  auto p = make_pattern(PatternKind::Butterfly, topo_);
  // 9 address bits: swap bit 0 and bit 8.
  EXPECT_EQ(p->destination(0b000000001, rng_), 0b100000000u);
  EXPECT_EQ(p->destination(0b100000000, rng_), 0b000000001u);
  EXPECT_EQ(p->destination(0b100000001, rng_), 0b100000001u);  // fixed point
  EXPECT_EQ(p->destination(0b010101010, rng_), 0b010101010u);  // middle bits
}

TEST_F(PatternTest, ButterflyIsInvolution) {
  auto p = make_pattern(PatternKind::Butterfly, topo_);
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    EXPECT_EQ(p->destination(p->destination(n, rng_), rng_), n);
  }
}

TEST_F(PatternTest, BitReversalReverses) {
  auto p = make_pattern(PatternKind::BitReversal, topo_);
  EXPECT_EQ(p->destination(0b000000001, rng_), 0b100000000u);
  EXPECT_EQ(p->destination(0b110000000, rng_), 0b000000011u);
  EXPECT_EQ(p->destination(0b000010000, rng_), 0b000010000u);  // palindrome
}

TEST_F(PatternTest, BitReversalIsInvolution) {
  auto p = make_pattern(PatternKind::BitReversal, topo_);
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    EXPECT_EQ(p->destination(p->destination(n, rng_), rng_), n);
  }
}

TEST_F(PatternTest, PerfectShuffleRotatesLeft) {
  auto p = make_pattern(PatternKind::PerfectShuffle, topo_);
  EXPECT_EQ(p->destination(0b100000000, rng_), 0b000000001u);
  EXPECT_EQ(p->destination(0b000000001, rng_), 0b000000010u);
  EXPECT_EQ(p->destination(0b010000001, rng_), 0b100000010u);
}

TEST_F(PatternTest, PerfectShuffleOrderDividesBits) {
  // Applying the shuffle 9 times (= address width) returns to start.
  auto p = make_pattern(PatternKind::PerfectShuffle, topo_);
  for (NodeId n = 0; n < topo_.num_nodes(); n += 13) {
    NodeId x = n;
    for (int i = 0; i < 9; ++i) x = p->destination(x, rng_);
    EXPECT_EQ(x, n);
  }
}

TEST_F(PatternTest, AllBitPermutationsArePermutations) {
  for (const auto kind : {PatternKind::Butterfly, PatternKind::Complement,
                          PatternKind::BitReversal, PatternKind::PerfectShuffle,
                          PatternKind::Transpose}) {
    auto p = make_pattern(kind, topo_);
    std::set<NodeId> image;
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      image.insert(p->destination(n, rng_));
    }
    EXPECT_EQ(image.size(), topo_.num_nodes())
        << pattern_name(kind) << " is not a bijection";
  }
}

TEST_F(PatternTest, BitPatternsRequirePowerOfTwoNodes) {
  const KAryNCube odd(3, 3);  // 27 nodes
  EXPECT_THROW(make_pattern(PatternKind::Butterfly, odd),
               std::invalid_argument);
  EXPECT_THROW(make_pattern(PatternKind::BitReversal, odd),
               std::invalid_argument);
  // Uniform and tornado do not care.
  EXPECT_NO_THROW(make_pattern(PatternKind::Uniform, odd));
  EXPECT_NO_THROW(make_pattern(PatternKind::Tornado, odd));
}

TEST_F(PatternTest, TornadoMovesNearHalfwayEachDim) {
  auto p = make_pattern(PatternKind::Tornado, topo_);
  const NodeId src = topo_.node_at({1, 2, 3});
  const NodeId dst = p->destination(src, rng_);
  const auto c = topo_.coords_of(dst);
  EXPECT_EQ(c[0], 4);  // +3 (= ceil(8/2)-1)
  EXPECT_EQ(c[1], 5);
  EXPECT_EQ(c[2], 6);
}

TEST_F(PatternTest, NeighborPlusIsDim0Successor) {
  auto p = make_pattern(PatternKind::NeighborPlus, topo_);
  EXPECT_EQ(p->destination(topo_.node_at({7, 0, 0}), rng_),
            topo_.node_at({0, 0, 0}));
  EXPECT_EQ(p->destination(topo_.node_at({2, 5, 1}), rng_),
            topo_.node_at({3, 5, 1}));
}

TEST_F(PatternTest, HotspotFraction) {
  HotspotParams hp{.hotspot = 9, .fraction = 0.5};
  auto p = make_pattern(PatternKind::Hotspot, topo_, hp);
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    hits += (p->destination(3, rng_) == 9);
  }
  // 50% direct + small uniform probability of hitting 9 by chance.
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.5, 0.02);
}

TEST_F(PatternTest, HotspotValidatesParams) {
  EXPECT_THROW(
      make_pattern(PatternKind::Hotspot, topo_, {.hotspot = 9999}),
      std::invalid_argument);
  EXPECT_THROW(make_pattern(PatternKind::Hotspot, topo_,
                            {.hotspot = 0, .fraction = 1.5}),
               std::invalid_argument);
}

TEST_F(PatternTest, ActiveNodeFraction) {
  util::Rng rng(2);
  // Complement: no fixed points (bits flip) -> all nodes active.
  auto comp = make_pattern(PatternKind::Complement, topo_);
  EXPECT_DOUBLE_EQ(active_node_fraction(*comp, topo_, rng), 1.0);
  // Bit-reversal on 9 bits: palindromic ids are fixed points. There are
  // 2^5 = 32 palindromes of 9 bits -> 480/512 active.
  auto rev = make_pattern(PatternKind::BitReversal, topo_);
  EXPECT_DOUBLE_EQ(active_node_fraction(*rev, topo_, rng), 480.0 / 512.0);
}

}  // namespace
}  // namespace wormsim::traffic
