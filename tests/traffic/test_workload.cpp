#include "traffic/workload.hpp"

#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace wormsim::traffic {
namespace {

using topo::KAryNCube;

WorkloadConfig base_config(double offered, std::uint32_t len = 16) {
  WorkloadConfig cfg;
  cfg.pattern = PatternKind::Uniform;
  cfg.process = ProcessKind::Exponential;
  cfg.offered_flits_per_node_cycle = offered;
  cfg.length.fixed = len;
  return cfg;
}

TEST(Workload, MessageRateDerivedFromFlitLoad) {
  const KAryNCube topo(4, 2);
  const Workload w(topo, base_config(0.32, 16), 1);
  EXPECT_DOUBLE_EQ(w.message_rate(), 0.02);
}

TEST(Workload, GeneratesAtConfiguredRate) {
  const KAryNCube topo(4, 2);
  Workload w(topo, base_config(0.16, 16), 7);  // 0.01 msgs/node/cycle
  std::uint64_t total = 0;
  util::SmallVector<GeneratedMessage, 8> buf;
  constexpr std::uint64_t kCycles = 20000;
  for (std::uint64_t t = 0; t < kCycles; ++t) {
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      buf.clear();
      w.poll(n, t, buf);
      total += buf.size();
    }
  }
  const double per_node_cycle =
      static_cast<double>(total) / (kCycles * topo.num_nodes());
  EXPECT_NEAR(per_node_cycle, 0.01, 0.001);
}

TEST(Workload, NodesAreIndependentStreams) {
  const KAryNCube topo(4, 2);
  // Polling only node 3 yields the same messages regardless of whether
  // other nodes are polled.
  Workload w1(topo, base_config(0.5), 11);
  Workload w2(topo, base_config(0.5), 11);
  util::SmallVector<GeneratedMessage, 8> a, b;
  for (std::uint64_t t = 0; t < 2000; ++t) {
    a.clear();
    w1.poll(3, t, a);
    // w2: poll every node, keep node 3's output.
    b.clear();
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (n == 3) {
        w2.poll(3, t, b);
      } else {
        util::SmallVector<GeneratedMessage, 8> scratch;
        w2.poll(n, t, scratch);
      }
    }
    ASSERT_EQ(a.size(), b.size()) << "cycle " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].dst, b[i].dst);
      EXPECT_EQ(a[i].length_flits, b[i].length_flits);
    }
  }
}

TEST(Workload, SameSeedSameTrace) {
  const KAryNCube topo(4, 2);
  Workload w1(topo, base_config(0.4), 3);
  Workload w2(topo, base_config(0.4), 3);
  util::SmallVector<GeneratedMessage, 8> a, b;
  for (std::uint64_t t = 0; t < 500; ++t) {
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      a.clear();
      b.clear();
      w1.poll(n, t, a);
      w2.poll(n, t, b);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].dst, b[i].dst);
      }
    }
  }
}

TEST(Workload, DifferentSeedDifferentTrace) {
  const KAryNCube topo(4, 2);
  Workload w1(topo, base_config(0.4), 3);
  Workload w2(topo, base_config(0.4), 4);
  util::SmallVector<GeneratedMessage, 8> a, b;
  unsigned diffs = 0;
  for (std::uint64_t t = 0; t < 500; ++t) {
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      a.clear();
      b.clear();
      w1.poll(n, t, a);
      w2.poll(n, t, b);
      if (a.size() != b.size()) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0u);
}

TEST(Workload, NeverGeneratesSelfTraffic) {
  const KAryNCube topo(8, 2);  // 64 = 2^6, bit patterns OK
  for (const auto kind : {PatternKind::Uniform, PatternKind::BitReversal}) {
    WorkloadConfig cfg = base_config(1.0);
    cfg.pattern = kind;
    Workload w(topo, cfg, 5);
    util::SmallVector<GeneratedMessage, 8> buf;
    for (std::uint64_t t = 0; t < 200; ++t) {
      for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
        buf.clear();
        w.poll(n, t, buf);
        for (const auto& g : buf) EXPECT_NE(g.dst, n);
      }
    }
  }
}

TEST(Workload, SetOfferedLoadRescalesRate) {
  const KAryNCube topo(4, 2);
  Workload w(topo, base_config(0.16, 16), 9);
  w.set_offered_load(0.64);
  EXPECT_DOUBLE_EQ(w.message_rate(), 0.04);
  EXPECT_DOUBLE_EQ(w.config().offered_flits_per_node_cycle, 0.64);
}

TEST(Workload, BimodalLengths) {
  const KAryNCube topo(4, 2);
  WorkloadConfig cfg = base_config(1.0);
  cfg.length.kind = LengthDist::Kind::Bimodal;
  cfg.length.short_len = 8;
  cfg.length.long_len = 64;
  cfg.length.long_fraction = 0.25;
  EXPECT_DOUBLE_EQ(cfg.length.mean(), 0.25 * 64 + 0.75 * 8);
  Workload w(topo, cfg, 13);
  util::SmallVector<GeneratedMessage, 8> buf;
  std::uint64_t shorts = 0, longs = 0;
  for (std::uint64_t t = 0; t < 5000; ++t) {
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      buf.clear();
      w.poll(n, t, buf);
      for (const auto& g : buf) {
        if (g.length_flits == 8) ++shorts;
        else if (g.length_flits == 64) ++longs;
        else FAIL() << "unexpected length " << g.length_flits;
      }
    }
  }
  const double frac =
      static_cast<double>(longs) / static_cast<double>(longs + shorts);
  EXPECT_NEAR(frac, 0.25, 0.03);
}

TEST(Workload, SynchronizedBurstsCorrelateAcrossNodes) {
  // With synchronized bursts, per-window generation counts across the
  // whole machine must swing together: the index of dispersion of the
  // aggregate is far above the independent-burst case.
  const KAryNCube topo(4, 2);
  auto measure_dispersion = [&](bool sync) {
    WorkloadConfig cfg = base_config(0.5);
    cfg.process = ProcessKind::Bursty;
    cfg.bursty.duty_cycle = 0.25;
    cfg.bursty.mean_burst_cycles = 400;
    cfg.bursty.synchronized = sync;
    Workload w(topo, cfg, 77);
    util::SmallVector<GeneratedMessage, 8> buf;
    util::RunningStats windows;
    constexpr std::uint64_t kWindow = 200, kWindows = 400;
    for (std::uint64_t win = 0; win < kWindows; ++win) {
      std::uint64_t count = 0;
      for (std::uint64_t i = 0; i < kWindow; ++i) {
        for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
          buf.clear();
          w.poll(n, win * kWindow + i, buf);
          count += buf.size();
        }
      }
      windows.add(static_cast<double>(count));
    }
    return windows.variance() / windows.mean();
  };
  const double sync_disp = measure_dispersion(true);
  const double indep_disp = measure_dispersion(false);
  EXPECT_GT(sync_disp, 4.0 * indep_disp);
}

TEST(Workload, RejectsZeroLength) {
  const KAryNCube topo(4, 2);
  WorkloadConfig cfg = base_config(0.1, 0);
  EXPECT_THROW(Workload(topo, cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace wormsim::traffic
