#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wormsim::traffic {
namespace {

TEST(Trace, AddKeepsCycleOrder) {
  Trace t;
  t.add({0, 0, 1, 16});
  t.add({5, 1, 2, 16});
  t.add({5, 2, 3, 16});  // tie OK
  EXPECT_THROW(t.add({4, 0, 1, 16}), std::invalid_argument);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.horizon(), 5u);
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace t;
  t.add({0, 0, 5, 16});
  t.add({3, 2, 7, 64});
  t.add({100, 15, 0, 1});
  std::stringstream ss;
  t.save(ss);
  const Trace loaded = Trace::load(ss);
  ASSERT_EQ(loaded.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(loaded.records()[i], t.records()[i]);
  }
}

TEST(Trace, LoadRejectsMissingHeader) {
  std::stringstream ss("0 0 1 16\n");
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadRejectsMalformedLine) {
  std::stringstream ss("#wormsim-trace v1\n0 0 zebra 16\n");
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadSkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "#wormsim-trace v1\n\n# a comment\n7 1 2 16\n\n9 3 4 8\n");
  const Trace t = Trace::load(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.records()[1].cycle, 9u);
  EXPECT_EQ(t.records()[1].length, 8u);
}

TEST(Trace, ValidateCatchesBadRecords) {
  const topo::KAryNCube topo(4, 2);  // 16 nodes
  {
    Trace t;
    t.add({0, 99, 1, 16});
    EXPECT_THROW(t.validate(topo), std::invalid_argument);
  }
  {
    Trace t;
    t.add({0, 3, 3, 16});
    EXPECT_THROW(t.validate(topo), std::invalid_argument);
  }
  {
    Trace t;
    t.add({0, 3, 4, 0});
    EXPECT_THROW(t.validate(topo), std::invalid_argument);
  }
  {
    Trace t;
    t.add({0, 3, 4, 16});
    t.add({1, 0, 15, 64});
    EXPECT_NO_THROW(t.validate(topo));
  }
}

TEST(Trace, FromWorkloadIsDeterministicAndValid) {
  const topo::KAryNCube topo(4, 2);
  WorkloadConfig cfg;
  cfg.offered_flits_per_node_cycle = 0.4;
  cfg.length.fixed = 16;
  const Trace a = Trace::from_workload(topo, cfg, 42, 2000);
  const Trace b = Trace::from_workload(topo, cfg, 42, 2000);
  EXPECT_GT(a.size(), 100u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.records()[i], b.records()[i]);
  }
  EXPECT_NO_THROW(a.validate(topo));
  // Rate sanity: 16 nodes * 2000 cycles * 0.025 msgs = ~800.
  EXPECT_NEAR(static_cast<double>(a.size()), 800.0, 120.0);
}

}  // namespace
}  // namespace wormsim::traffic
