#include "topology/kary_ncube.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wormsim::topo {
namespace {

TEST(KAryNCube, NodeCount) {
  EXPECT_EQ(KAryNCube(8, 3).num_nodes(), 512u);
  EXPECT_EQ(KAryNCube(4, 2).num_nodes(), 16u);
  EXPECT_EQ(KAryNCube(2, 4).num_nodes(), 16u);
  EXPECT_EQ(KAryNCube(3, 3).num_nodes(), 27u);
}

TEST(KAryNCube, RejectsBadShapes) {
  EXPECT_THROW(KAryNCube(1, 3), std::invalid_argument);
  EXPECT_THROW(KAryNCube(4, 0), std::invalid_argument);
  EXPECT_THROW(KAryNCube(4, 99), std::invalid_argument);
}

TEST(KAryNCube, CoordsRoundTrip) {
  const KAryNCube t(5, 3);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.node_at(t.coords_of(n)), n);
  }
}

TEST(KAryNCube, CoordsLittleEndian) {
  const KAryNCube t(8, 3);
  const Coords c = t.coords_of(8 * 8 * 2 + 8 * 3 + 5);
  EXPECT_EQ(c[0], 5);
  EXPECT_EQ(c[1], 3);
  EXPECT_EQ(c[2], 2);
}

TEST(KAryNCube, ChannelEncoding) {
  EXPECT_EQ(make_channel(0, Dir::Plus), 0);
  EXPECT_EQ(make_channel(0, Dir::Minus), 1);
  EXPECT_EQ(make_channel(2, Dir::Plus), 4);
  EXPECT_EQ(channel_dim(5), 2u);
  EXPECT_EQ(channel_dir(5), Dir::Minus);
}

TEST(KAryNCube, NeighborWrapsAround) {
  const KAryNCube t(4, 2);
  // Node (3, 0): +dim0 wraps to (0, 0).
  const NodeId n = t.node_at({3, 0});
  EXPECT_EQ(t.neighbor(n, make_channel(0, Dir::Plus)), t.node_at({0, 0}));
  EXPECT_EQ(t.neighbor(n, make_channel(0, Dir::Minus)), t.node_at({2, 0}));
  EXPECT_EQ(t.neighbor(n, make_channel(1, Dir::Minus)), t.node_at({3, 3}));
}

TEST(KAryNCube, NeighborIsInvolutionViaOppositeChannel) {
  const KAryNCube t(5, 3);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (unsigned c = 0; c < t.num_channels(); ++c) {
      const NodeId m = t.neighbor(n, static_cast<ChannelId>(c));
      const ChannelId back = static_cast<ChannelId>(c ^ 1u);  // flip dir
      EXPECT_EQ(t.neighbor(m, back), n);
    }
  }
}

TEST(KAryNCube, DimRouteShortestWay) {
  const KAryNCube t(8, 1);
  // 1 -> 3: forward 2 hops.
  auto r = t.dim_route(1, 3);
  EXPECT_EQ(r.distance, 2);
  EXPECT_EQ(r.dirs_mask, 0b01);
  // 1 -> 7: backward 2 hops (forward would be 6).
  r = t.dim_route(1, 7);
  EXPECT_EQ(r.distance, 2);
  EXPECT_EQ(r.dirs_mask, 0b10);
  // 1 -> 5: tie at distance 4, both directions minimal.
  r = t.dim_route(1, 5);
  EXPECT_EQ(r.distance, 4);
  EXPECT_EQ(r.dirs_mask, 0b11);
  // Same coordinate: no movement.
  r = t.dim_route(4, 4);
  EXPECT_EQ(r.distance, 0);
  EXPECT_EQ(r.dirs_mask, 0);
}

TEST(KAryNCube, OddRadixNeverTies) {
  const KAryNCube t(5, 1);
  for (std::uint16_t a = 0; a < 5; ++a) {
    for (std::uint16_t b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_NE(t.dim_route(a, b).dirs_mask, 0b11);
    }
  }
}

TEST(KAryNCube, DistanceSymmetricAndTriangle) {
  const KAryNCube t(4, 3);
  for (NodeId a = 0; a < t.num_nodes(); a += 7) {
    for (NodeId b = 0; b < t.num_nodes(); b += 5) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
      EXPECT_EQ(t.distance(a, a), 0u);
    }
  }
}

TEST(KAryNCube, DistanceMatchesBfsOnSmallTorus) {
  const KAryNCube t(4, 2);
  // BFS from node 0.
  std::vector<unsigned> dist(t.num_nodes(), ~0u);
  std::vector<NodeId> frontier{0};
  dist[0] = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId n : frontier) {
      for (unsigned c = 0; c < t.num_channels(); ++c) {
        const NodeId m = t.neighbor(n, static_cast<ChannelId>(c));
        if (dist[m] == ~0u) {
          dist[m] = dist[n] + 1;
          next.push_back(m);
        }
      }
    }
    frontier = std::move(next);
  }
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.distance(0, n), dist[n]) << "node " << n;
  }
}

TEST(KAryNCube, UsefulChannelsMoveCloser) {
  const KAryNCube t(8, 3);
  for (NodeId a = 0; a < t.num_nodes(); a += 37) {
    for (NodeId b = 0; b < t.num_nodes(); b += 41) {
      if (a == b) continue;
      const std::uint32_t mask = t.useful_channels_mask(a, b);
      ASSERT_NE(mask, 0u);
      for (unsigned c = 0; c < t.num_channels(); ++c) {
        const NodeId via = t.neighbor(a, static_cast<ChannelId>(c));
        if (mask & (1u << c)) {
          EXPECT_EQ(t.distance(via, b), t.distance(a, b) - 1);
        } else {
          EXPECT_GE(t.distance(via, b) + 1, t.distance(a, b));
        }
      }
    }
  }
}

TEST(KAryNCube, UsefulChannelsEmptyAtDestination) {
  const KAryNCube t(4, 2);
  EXPECT_EQ(t.useful_channels_mask(5, 5), 0u);
}

TEST(KAryNCube, AverageDistanceFormula) {
  EXPECT_DOUBLE_EQ(KAryNCube(8, 3).average_distance_uniform(), 6.0);
  EXPECT_DOUBLE_EQ(KAryNCube(4, 2).average_distance_uniform(), 2.0);
  // Odd radix: n*(k^2-1)/(4k) = 1 * 24 / 20 = 1.2.
  EXPECT_DOUBLE_EQ(KAryNCube(5, 1).average_distance_uniform(), 1.2);
}

TEST(KAryNCube, AverageDistanceMatchesExhaustive) {
  const KAryNCube t(4, 2);
  double sum = 0;
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      sum += t.distance(a, b);
    }
  }
  const double avg =
      sum / (static_cast<double>(t.num_nodes()) * t.num_nodes());
  EXPECT_NEAR(avg, t.average_distance_uniform(), 1e-12);
}

TEST(KAryNCube, DatelineClassBreaksRingCycle) {
  // Going Plus on an 8-ring: class 0 before the wraparound, 1 after.
  EXPECT_EQ(KAryNCube::dateline_class(6, 2, Dir::Plus), 0);  // will wrap
  EXPECT_EQ(KAryNCube::dateline_class(1, 2, Dir::Plus), 1);  // won't wrap
  EXPECT_EQ(KAryNCube::dateline_class(2, 6, Dir::Minus), 0);
  EXPECT_EQ(KAryNCube::dateline_class(6, 2, Dir::Minus), 1);
}

TEST(KAryNCube, AllNodesReachableEveryChannelUsedBySomePair) {
  const KAryNCube t(3, 2);
  std::set<std::pair<NodeId, unsigned>> used;
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      if (a == b) continue;
      const auto mask = t.useful_channels_mask(a, b);
      for (unsigned c = 0; c < t.num_channels(); ++c) {
        if (mask & (1u << c)) used.insert({a, c});
      }
    }
  }
  // Every output channel of every node is useful for some destination.
  EXPECT_EQ(used.size(), t.num_nodes() * t.num_channels());
}

}  // namespace
}  // namespace wormsim::topo
