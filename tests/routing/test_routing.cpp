#include "routing/routing.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace wormsim::routing {
namespace {

using topo::ChannelId;
using topo::KAryNCube;
using topo::NodeId;

TEST(Routing, ParseNames) {
  EXPECT_EQ(parse_algorithm("tfar"), Algorithm::TFAR);
  EXPECT_EQ(parse_algorithm("dor"), Algorithm::DOR);
  EXPECT_EQ(parse_algorithm("duato"), Algorithm::Duato);
  EXPECT_THROW(parse_algorithm("xy"), std::invalid_argument);
}

TEST(Routing, FactoryValidatesVcCounts) {
  const KAryNCube t(4, 2);
  EXPECT_THROW(make_routing(Algorithm::DOR, t, 1), std::invalid_argument);
  EXPECT_THROW(make_routing(Algorithm::Duato, t, 2), std::invalid_argument);
  EXPECT_NO_THROW(make_routing(Algorithm::TFAR, t, 1));
  EXPECT_NO_THROW(make_routing(Algorithm::DOR, t, 2));
  EXPECT_NO_THROW(make_routing(Algorithm::Duato, t, 3));
}

TEST(Routing, RecoveryRequirementFlags) {
  const KAryNCube t(4, 2);
  EXPECT_TRUE(make_routing(Algorithm::TFAR, t, 3)->needs_deadlock_recovery());
  EXPECT_FALSE(make_routing(Algorithm::DOR, t, 3)->needs_deadlock_recovery());
  EXPECT_FALSE(
      make_routing(Algorithm::Duato, t, 3)->needs_deadlock_recovery());
}

class RoutingMinimalityTest
    : public ::testing::TestWithParam<Algorithm> {};

TEST_P(RoutingMinimalityTest, EveryCandidateMovesCloser) {
  const KAryNCube t(5, 2);
  auto r = make_routing(GetParam(), t, 3);
  RouteResult res;
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      if (a == b) continue;
      r->route(a, b, res);
      ASSERT_FALSE(res.candidates.empty()) << a << "->" << b;
      for (const auto& cand : res.candidates) {
        const NodeId via = t.neighbor(a, cand.channel);
        EXPECT_EQ(t.distance(via, b), t.distance(a, b) - 1)
            << algorithm_name(GetParam()) << " " << a << "->" << b;
        EXPECT_NE(cand.vc_mask, 0u);
      }
    }
  }
}

TEST_P(RoutingMinimalityTest, UsefulMaskMatchesTopology) {
  const KAryNCube t(4, 3);
  auto r = make_routing(GetParam(), t, 3);
  RouteResult res;
  for (NodeId a = 0; a < t.num_nodes(); a += 3) {
    for (NodeId b = 0; b < t.num_nodes(); b += 5) {
      if (a == b) continue;
      r->route(a, b, res);
      EXPECT_EQ(res.useful_phys_mask, t.useful_channels_mask(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RoutingMinimalityTest,
                         ::testing::Values(Algorithm::TFAR, Algorithm::DOR,
                                           Algorithm::Duato));

TEST(Tfar, OffersEveryVcOfEveryUsefulChannel) {
  const KAryNCube t(8, 3);
  auto r = make_routing(Algorithm::TFAR, t, 3);
  RouteResult res;
  r->route(0, t.node_at({3, 2, 1}), res);
  EXPECT_EQ(res.candidates.size(), 3u);  // three dims, one direction each
  for (const auto& cand : res.candidates) {
    EXPECT_EQ(cand.vc_mask, 0b111u);
    EXPECT_FALSE(cand.escape);
  }
}

TEST(Tfar, TieOffersBothDirections) {
  const KAryNCube t(8, 1);
  auto r = make_routing(Algorithm::TFAR, t, 2);
  RouteResult res;
  r->route(0, 4, res);  // distance 4 both ways on an 8-ring
  EXPECT_EQ(res.candidates.size(), 2u);
}

TEST(Dor, SingleCandidateLowestDimensionFirst) {
  const KAryNCube t(8, 3);
  auto r = make_routing(Algorithm::DOR, t, 3);
  RouteResult res;
  // Differs in all three dims: must route in dim 0 first.
  r->route(t.node_at({0, 0, 0}), t.node_at({2, 3, 4}), res);
  ASSERT_EQ(res.candidates.size(), 1u);
  EXPECT_EQ(topo::channel_dim(res.candidates[0].channel), 0u);
  // Dim 0 aligned: dim 1 next.
  r->route(t.node_at({2, 0, 0}), t.node_at({2, 3, 4}), res);
  ASSERT_EQ(res.candidates.size(), 1u);
  EXPECT_EQ(topo::channel_dim(res.candidates[0].channel), 1u);
}

TEST(Dor, DatelineClassSelectsVcSet) {
  const KAryNCube t(8, 1);
  auto r = make_routing(Algorithm::DOR, t, 3);
  RouteResult res;
  // 6 -> 2 going Plus crosses the wraparound: class 0 = VC {0}.
  r->route(6, 2, res);
  ASSERT_EQ(res.candidates.size(), 1u);
  EXPECT_EQ(res.candidates[0].vc_mask, 0b001u);
  // 1 -> 3 going Plus does not wrap: class 1 = VCs {1, 2}.
  r->route(1, 3, res);
  ASSERT_EQ(res.candidates.size(), 1u);
  EXPECT_EQ(res.candidates[0].vc_mask, 0b110u);
}

TEST(Dor, IsDeterministic) {
  const KAryNCube t(6, 2);
  auto r = make_routing(Algorithm::DOR, t, 2);
  RouteResult a, b;
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      r->route(s, d, a);
      r->route(s, d, b);
      ASSERT_EQ(a.candidates.size(), 1u);
      EXPECT_EQ(a.candidates[0].channel, b.candidates[0].channel);
      EXPECT_EQ(a.candidates[0].vc_mask, b.candidates[0].vc_mask);
    }
  }
}

TEST(Duato, AdaptiveFirstEscapeLast) {
  const KAryNCube t(8, 3);
  auto r = make_routing(Algorithm::Duato, t, 3);
  RouteResult res;
  r->route(t.node_at({0, 0, 0}), t.node_at({2, 3, 0}), res);
  ASSERT_EQ(res.candidates.size(), 3u);  // 2 adaptive + 1 escape
  EXPECT_FALSE(res.candidates[0].escape);
  EXPECT_FALSE(res.candidates[1].escape);
  EXPECT_TRUE(res.candidates[2].escape);
  // Adaptive candidates use only VC 2 with 3 VCs.
  EXPECT_EQ(res.candidates[0].vc_mask, 0b100u);
  // Escape uses dateline VC 0 or 1 on the DOR channel.
  EXPECT_TRUE(res.candidates[2].vc_mask == 0b01u ||
              res.candidates[2].vc_mask == 0b10u);
}

TEST(Duato, EscapeAlwaysPresent) {
  const KAryNCube t(4, 2);
  auto r = make_routing(Algorithm::Duato, t, 3);
  RouteResult res;
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      r->route(s, d, res);
      unsigned escapes = 0;
      for (const auto& c : res.candidates) escapes += c.escape;
      EXPECT_EQ(escapes, 1u) << s << "->" << d;
    }
  }
}

TEST(Duato, MoreVcsWidenAdaptiveSet) {
  const KAryNCube t(4, 2);
  auto r = make_routing(Algorithm::Duato, t, 4);
  RouteResult res;
  r->route(0, 5, res);
  for (const auto& c : res.candidates) {
    if (!c.escape) {
      EXPECT_EQ(c.vc_mask, 0b1100u);
    }
  }
}

}  // namespace
}  // namespace wormsim::routing
