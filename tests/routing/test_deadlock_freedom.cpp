// Channel-dependency-graph (CDG) analysis of the routing functions
// [Dally/Seitz'87; Duato'93].
//
// A vertex is one virtual channel (link, vc). For every (current node,
// destination) pair and every admissible candidate at the current node,
// we add edges from each VC the message may hold there to each VC it may
// request at the next hop toward the same destination. Deterministic DOR
// must yield an acyclic CDG; Duato's protocol requires the *escape
// sub-CDG* to be acyclic; TFAR is expected to be cyclic (which is why it
// pairs with deadlock recovery).
#include <gtest/gtest.h>

#include <vector>

#include "routing/routing.hpp"

namespace wormsim::routing {
namespace {

using topo::KAryNCube;
using topo::NodeId;

struct Cdg {
  std::size_t vertices = 0;
  std::vector<std::vector<std::uint32_t>> adj;

  void add_edge(std::uint32_t from, std::uint32_t to) {
    adj[from].push_back(to);
  }

  bool has_cycle() const {
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(vertices, White);
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    for (std::uint32_t s = 0; s < vertices; ++s) {
      if (color[s] != White) continue;
      stack.emplace_back(s, 0);
      color[s] = Grey;
      while (!stack.empty()) {
        auto& [v, idx] = stack.back();
        if (idx < adj[v].size()) {
          const std::uint32_t w = adj[v][idx++];
          if (color[w] == Grey) return true;
          if (color[w] == White) {
            color[w] = Grey;
            stack.emplace_back(w, 0);
          }
        } else {
          color[v] = Black;
          stack.pop_back();
        }
      }
    }
    return false;
  }
};

/// Build the CDG induced by a routing function. `escape_only` restricts
/// both hop candidate sets to escape candidates (Duato's subfunction).
Cdg build_cdg(const KAryNCube& t, const RoutingFunction& r, unsigned vcs,
              bool escape_only) {
  Cdg g;
  g.vertices = static_cast<std::size_t>(t.num_nodes()) * t.num_channels() * vcs;
  g.adj.resize(g.vertices);
  const auto vertex = [&](NodeId node, topo::ChannelId c, unsigned v) {
    return static_cast<std::uint32_t>(
        (static_cast<std::size_t>(node) * t.num_channels() + c) * vcs + v);
  };

  RouteResult here_route, next_route;
  for (NodeId here = 0; here < t.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < t.num_nodes(); ++dst) {
      if (here == dst) continue;
      r.route(here, dst, here_route);
      for (const auto& c1 : here_route.candidates) {
        if (escape_only && !c1.escape) continue;
        const NodeId next = t.neighbor(here, c1.channel);
        if (next == dst) continue;  // delivered: no further dependency
        r.route(next, dst, next_route);
        for (const auto& c2 : next_route.candidates) {
          if (escape_only && !c2.escape) continue;
          for (unsigned v1 = 0; v1 < vcs; ++v1) {
            if (!(c1.vc_mask & (1u << v1))) continue;
            for (unsigned v2 = 0; v2 < vcs; ++v2) {
              if (!(c2.vc_mask & (1u << v2))) continue;
              g.add_edge(vertex(here, c1.channel, v1),
                         vertex(next, c2.channel, v2));
            }
          }
        }
      }
    }
  }
  return g;
}

class DorAcyclicityTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {
};

TEST_P(DorAcyclicityTest, CdgIsAcyclic) {
  const auto [k, n, vcs] = GetParam();
  const KAryNCube t(k, n);
  auto r = make_routing(Algorithm::DOR, t, vcs);
  const Cdg g = build_cdg(t, *r, vcs, /*escape_only=*/false);
  EXPECT_FALSE(g.has_cycle())
      << "DOR CDG has a cycle on " << k << "-ary " << n << "-cube, " << vcs
      << " VCs";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DorAcyclicityTest,
    ::testing::Values(std::make_tuple(4u, 1u, 2u), std::make_tuple(8u, 1u, 2u),
                      std::make_tuple(8u, 1u, 3u), std::make_tuple(4u, 2u, 2u),
                      std::make_tuple(4u, 2u, 3u), std::make_tuple(5u, 2u, 3u),
                      std::make_tuple(3u, 3u, 2u),
                      std::make_tuple(4u, 3u, 3u)));

class DuatoEscapeTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(DuatoEscapeTest, EscapeSubCdgIsAcyclic) {
  const auto [k, n] = GetParam();
  const KAryNCube t(k, n);
  auto r = make_routing(Algorithm::Duato, t, 3);
  const Cdg g = build_cdg(t, *r, 3, /*escape_only=*/true);
  EXPECT_FALSE(g.has_cycle());
}

INSTANTIATE_TEST_SUITE_P(Shapes, DuatoEscapeTest,
                         ::testing::Values(std::make_tuple(4u, 1u),
                                           std::make_tuple(8u, 1u),
                                           std::make_tuple(4u, 2u),
                                           std::make_tuple(5u, 2u),
                                           std::make_tuple(3u, 3u)));

TEST(TfarCdg, HasCyclesOnRing) {
  // TFAR admits cyclic channel dependencies (all VCs, both directions):
  // that is exactly why it needs deadlock detection + recovery.
  const KAryNCube t(4, 1);
  auto r = make_routing(Algorithm::TFAR, t, 2);
  const Cdg g = build_cdg(t, *r, 2, /*escape_only=*/false);
  EXPECT_TRUE(g.has_cycle());
}

TEST(TfarCdg, HasCyclesOnTorus) {
  const KAryNCube t(4, 2);
  auto r = make_routing(Algorithm::TFAR, t, 3);
  const Cdg g = build_cdg(t, *r, 3, /*escape_only=*/false);
  EXPECT_TRUE(g.has_cycle());
}

TEST(DuatoFullCdg, FullGraphMayCycleButEscapeLayerSaves) {
  // Sanity for the theory: the full Duato CDG (adaptive + escape) is
  // allowed to contain cycles; deadlock freedom comes from the acyclic,
  // always-reachable escape layer.
  const KAryNCube t(4, 2);
  auto r = make_routing(Algorithm::Duato, t, 3);
  const Cdg full = build_cdg(t, *r, 3, /*escape_only=*/false);
  const Cdg escape = build_cdg(t, *r, 3, /*escape_only=*/true);
  EXPECT_TRUE(full.has_cycle());
  EXPECT_FALSE(escape.has_cycle());
}

}  // namespace
}  // namespace wormsim::routing
