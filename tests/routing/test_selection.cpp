#include "routing/selection.hpp"

#include <gtest/gtest.h>

#include <map>

namespace wormsim::routing {
namespace {

/// Test double: fixed free-VC masks per channel.
class FakeView final : public FreeVcView {
 public:
  std::uint32_t free_vc_mask(topo::ChannelId c) const override {
    const auto it = masks_.find(c);
    return it == masks_.end() ? 0u : it->second;
  }
  std::map<topo::ChannelId, std::uint32_t> masks_;
};

RouteResult two_channel_route(std::uint32_t mask0, std::uint32_t mask2,
                              bool second_escape = false) {
  RouteResult r;
  r.candidates.push_back({0, mask0, false});
  r.candidates.push_back({2, mask2, second_escape});
  r.useful_phys_mask = 0b101;
  return r;
}

TEST(Selection, ParseNames) {
  EXPECT_EQ(parse_selection("max-free"), SelectionPolicy::MaxFreeVcs);
  EXPECT_EQ(parse_selection("first-fit"), SelectionPolicy::FirstFit);
  EXPECT_EQ(parse_selection("round-robin"), SelectionPolicy::RoundRobin);
  EXPECT_THROW(parse_selection("best"), std::invalid_argument);
}

TEST(Selection, NoFreeVcReturnsNullopt) {
  const Selector sel(SelectionPolicy::FirstFit);
  FakeView view;  // everything busy
  const auto r = two_channel_route(0b111, 0b111);
  EXPECT_FALSE(sel.select(r, view, 0).has_value());
}

TEST(Selection, FirstFitTakesFirstCandidate) {
  const Selector sel(SelectionPolicy::FirstFit);
  FakeView view;
  view.masks_[0] = 0b010;
  view.masks_[2] = 0b111;
  const auto pick = sel.select(two_channel_route(0b111, 0b111), view, 5);
  ASSERT_TRUE(pick);
  EXPECT_EQ(pick->channel, 0);
  EXPECT_EQ(pick->vc, 1);  // lowest free usable VC
}

TEST(Selection, FirstFitSkipsFullyBusyChannel) {
  const Selector sel(SelectionPolicy::FirstFit);
  FakeView view;
  view.masks_[0] = 0;
  view.masks_[2] = 0b100;
  const auto pick = sel.select(two_channel_route(0b111, 0b111), view, 0);
  ASSERT_TRUE(pick);
  EXPECT_EQ(pick->channel, 2);
  EXPECT_EQ(pick->vc, 2);
}

TEST(Selection, RespectsVcMaskRestrictions) {
  const Selector sel(SelectionPolicy::FirstFit);
  FakeView view;
  view.masks_[0] = 0b001;  // VC0 free
  view.masks_[2] = 0b010;  // VC1 free
  // Candidate masks forbid exactly those free VCs.
  const auto pick = sel.select(two_channel_route(0b110, 0b101), view, 0);
  EXPECT_FALSE(pick.has_value());
}

TEST(Selection, MaxFreePrefersEmptierChannel) {
  const Selector sel(SelectionPolicy::MaxFreeVcs);
  FakeView view;
  view.masks_[0] = 0b001;  // one free VC
  view.masks_[2] = 0b111;  // three free VCs
  const auto pick = sel.select(two_channel_route(0b111, 0b111), view, 0);
  ASSERT_TRUE(pick);
  EXPECT_EQ(pick->channel, 2);
}

TEST(Selection, MaxFreeCountsOnlyUsableVcs) {
  const Selector sel(SelectionPolicy::MaxFreeVcs);
  FakeView view;
  view.masks_[0] = 0b011;  // two free, both usable
  view.masks_[2] = 0b111;  // three free but only one usable below
  const auto pick = sel.select(two_channel_route(0b011, 0b100), view, 0);
  ASSERT_TRUE(pick);
  EXPECT_EQ(pick->channel, 0);
}

TEST(Selection, MaxFreeRotatesTies) {
  const Selector sel(SelectionPolicy::MaxFreeVcs);
  FakeView view;
  view.masks_[0] = 0b111;
  view.masks_[2] = 0b111;
  const auto r = two_channel_route(0b111, 0b111);
  const auto p0 = sel.select(r, view, 0);
  const auto p1 = sel.select(r, view, 1);
  ASSERT_TRUE(p0 && p1);
  EXPECT_NE(p0->channel, p1->channel);
}

TEST(Selection, RoundRobinCyclesCandidates) {
  const Selector sel(SelectionPolicy::RoundRobin);
  FakeView view;
  view.masks_[0] = 0b111;
  view.masks_[2] = 0b111;
  const auto r = two_channel_route(0b111, 0b111);
  const auto p0 = sel.select(r, view, 0);
  const auto p1 = sel.select(r, view, 1);
  const auto p2 = sel.select(r, view, 2);
  ASSERT_TRUE(p0 && p1 && p2);
  EXPECT_EQ(p0->channel, 0);
  EXPECT_EQ(p1->channel, 2);
  EXPECT_EQ(p2->channel, p0->channel);
}

TEST(Selection, AdaptivePreferredOverEscape) {
  const Selector sel(SelectionPolicy::MaxFreeVcs);
  FakeView view;
  view.masks_[0] = 0b001;  // adaptive: one free VC
  view.masks_[2] = 0b111;  // escape channel completely free
  const auto pick =
      sel.select(two_channel_route(0b111, 0b111, /*second_escape=*/true),
                 view, 0);
  ASSERT_TRUE(pick);
  EXPECT_EQ(pick->channel, 0);
  EXPECT_FALSE(pick->escape);
}

TEST(Selection, FallsBackToEscapeWhenAdaptiveBusy) {
  const Selector sel(SelectionPolicy::MaxFreeVcs);
  FakeView view;
  view.masks_[0] = 0;      // adaptive exhausted
  view.masks_[2] = 0b010;  // escape VC 1 free
  const auto pick =
      sel.select(two_channel_route(0b111, 0b010, /*second_escape=*/true),
                 view, 0);
  ASSERT_TRUE(pick);
  EXPECT_EQ(pick->channel, 2);
  EXPECT_TRUE(pick->escape);
  EXPECT_EQ(pick->vc, 1);
}

TEST(Selection, EmptyRouteReturnsNullopt) {
  const Selector sel(SelectionPolicy::MaxFreeVcs);
  FakeView view;
  RouteResult r;
  EXPECT_FALSE(sel.select(r, view, 0).has_value());
}

}  // namespace
}  // namespace wormsim::routing
