// RoutingLut must be a drop-in for the routing function it wraps: for
// every (here, dst) pair the expanded RouteResult — candidate order,
// per-candidate VC masks, escape flags and the useful-channel mask —
// equals what fn.route() computes on the fly. The simulator relies on
// this equality for bit-identical sweep CSVs when fastpath.routing_lut
// toggles, so the comparison here is exact, not structural.
#include "routing/routing_lut.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "routing/routing.hpp"
#include "topology/fault_mask.hpp"

namespace wormsim::routing {
namespace {

using topo::KAryNCube;
using topo::NodeId;

void expect_routes_equal(const RouteResult& expect, const RouteResult& got,
                         NodeId here, NodeId dst, const char* label) {
  SCOPED_TRACE(::testing::Message() << label << " " << here << "->" << dst);
  ASSERT_EQ(expect.candidates.size(), got.candidates.size());
  for (std::size_t i = 0; i < expect.candidates.size(); ++i) {
    EXPECT_EQ(expect.candidates[i].channel, got.candidates[i].channel)
        << "candidate " << i;
    EXPECT_EQ(expect.candidates[i].vc_mask, got.candidates[i].vc_mask)
        << "candidate " << i;
    EXPECT_EQ(expect.candidates[i].escape, got.candidates[i].escape)
        << "candidate " << i;
  }
  EXPECT_EQ(expect.useful_phys_mask, got.useful_phys_mask);
}

/// The shipped algorithms crossed with the torus shapes whose routing
/// differs structurally: k = 2 (the degenerate wrap where +d and -d
/// reach the same neighbor), odd k (no antipodal tie, asymmetric
/// halves), even k > 2, and dimensions 1..3.
class RoutingLutEquivalence
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, unsigned /*k*/, unsigned /*n*/>> {};

TEST_P(RoutingLutEquivalence, MatchesOnTheFlyRouteExhaustively) {
  const auto [algo, k, n] = GetParam();
  const KAryNCube topo(k, n);
  const unsigned num_vcs = 3;  // minimum every algorithm accepts
  const auto fn = make_routing(algo, topo, num_vcs);
  const RoutingLut lut(*fn, topo);
  ASSERT_TRUE(lut.tabulated());
  EXPECT_EQ(lut.algorithm(), algo);

  RouteResult expect, got;
  for (NodeId here = 0; here < topo.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (here == dst) continue;
      fn->route(here, dst, expect);
      lut.route(here, dst, got);
      expect_routes_equal(expect, got, here, dst, algorithm_name(algo).data());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsTimesShapes, RoutingLutEquivalence,
    ::testing::Combine(::testing::Values(Algorithm::TFAR, Algorithm::DOR,
                                         Algorithm::Duato),
                       ::testing::Values(2u, 3u, 4u, 5u),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(algorithm_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param));
    });

/// Larger network, more VCs (distinct Duato adaptive/escape split),
/// random pair sample instead of the full N^2 product.
TEST(RoutingLut, MatchesOnRandomPairsLargeNetwork) {
  const KAryNCube topo(8, 3);  // the paper's full-scale 512-node cube
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_int_distribution<NodeId> pick(0, topo.num_nodes() - 1);
  for (const auto algo : {Algorithm::TFAR, Algorithm::DOR, Algorithm::Duato}) {
    for (const unsigned num_vcs : {3u, 4u, 6u}) {
      const auto fn = make_routing(algo, topo, num_vcs);
      const RoutingLut lut(*fn, topo);
      ASSERT_TRUE(lut.tabulated());
      RouteResult expect, got;
      for (int trial = 0; trial < 4000; ++trial) {
        const NodeId here = pick(rng);
        NodeId dst = pick(rng);
        if (here == dst) dst = (dst + 1) % topo.num_nodes();
        fn->route(here, dst, expect);
        lut.route(here, dst, got);
        expect_routes_equal(expect, got, here, dst,
                            algorithm_name(algo).data());
      }
    }
  }
}

/// A budget below nodes^2 selects the passthrough mode: tabulated() is
/// false and route() forwards verbatim, so oversized networks keep
/// working without the caller caring.
TEST(RoutingLut, PassthroughBelowBudgetStillRoutesIdentically) {
  const KAryNCube topo(4, 2);
  const auto fn = make_routing(Algorithm::TFAR, topo, 3);
  const RoutingLut lut(*fn, topo, /*max_entries=*/topo.num_nodes() - 1);
  EXPECT_FALSE(lut.tabulated());
  RouteResult expect, got;
  for (NodeId here = 0; here < topo.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (here == dst) continue;
      fn->route(here, dst, expect);
      lut.route(here, dst, got);
      expect_routes_equal(expect, got, here, dst, "passthrough");
    }
  }
}

/// The exact boundary budget (nodes^2) must still tabulate.
TEST(RoutingLut, ExactBudgetTabulates) {
  const KAryNCube topo(3, 2);
  const auto fn = make_routing(Algorithm::DOR, topo, 3);
  const std::size_t pairs =
      static_cast<std::size_t>(topo.num_nodes()) * topo.num_nodes();
  EXPECT_TRUE(RoutingLut(*fn, topo, pairs).tabulated());
  EXPECT_FALSE(RoutingLut(*fn, topo, pairs - 1).tabulated());
}

/// All (here, dst) routes of a LUT, for exact before/after comparison.
std::vector<RouteResult> snapshot_routes(const RoutingLut& lut,
                                         const KAryNCube& topo) {
  std::vector<RouteResult> routes;
  routes.reserve(static_cast<std::size_t>(topo.num_nodes()) *
                 topo.num_nodes());
  for (NodeId here = 0; here < topo.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      RouteResult r;
      if (here != dst) lut.route(here, dst, r);
      routes.push_back(std::move(r));
    }
  }
  return routes;
}

void expect_snapshots_equal(const std::vector<RouteResult>& expect,
                            const std::vector<RouteResult>& got,
                            const KAryNCube& topo, const char* label) {
  ASSERT_EQ(expect.size(), got.size());
  for (NodeId here = 0; here < topo.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      const std::size_t i =
          static_cast<std::size_t>(here) * topo.num_nodes() + dst;
      expect_routes_equal(expect[i], got[i], here, dst, label);
    }
  }
}

/// rebuild() with no faults — null mask, an all-clear mask, or a mask
/// whose faults were all restored — must reproduce the construction-
/// time table bit-exactly for every algorithm, so a heal-and-rebuild
/// cycle leaves memoization-free routing indistinguishable from a fresh
/// simulator.
TEST(RoutingLutRebuild, HealthyRebuildRestoresRoutesBitExact) {
  const KAryNCube topo(4, 2);
  for (const auto algo : {Algorithm::TFAR, Algorithm::DOR, Algorithm::Duato}) {
    SCOPED_TRACE(algorithm_name(algo));
    const auto fn = make_routing(algo, topo, 3);
    RoutingLut lut(*fn, topo);
    const auto original = snapshot_routes(lut, topo);

    lut.rebuild(nullptr);
    expect_snapshots_equal(original, snapshot_routes(lut, topo), topo,
                           "rebuild(nullptr)");

    topo::FaultMask clear(topo);
    lut.rebuild(&clear);
    expect_snapshots_equal(original, snapshot_routes(lut, topo), topo,
                           "rebuild(all-clear)");
  }

  // Kill, rebuild around the fault, restore, rebuild again: the healthy
  // table must come back bit-exact (TFAR only — the deterministic
  // algorithms reject fault-aware rebuilds).
  const auto fn = make_routing(Algorithm::TFAR, topo, 3);
  RoutingLut lut(*fn, topo);
  const auto original = snapshot_routes(lut, topo);
  topo::FaultMask mask(topo);
  mask.kill_link(0, 0);
  lut.rebuild(&mask);
  RouteResult degraded;
  lut.route(0, topo.neighbor(0, 0), degraded);
  EXPECT_EQ(degraded.useful_phys_mask & 1u, 0u);  // route bends around
  mask.restore_link(0, 0);
  lut.rebuild(&mask);
  expect_snapshots_equal(original, snapshot_routes(lut, topo), topo,
                         "restore-rebuild");
}

/// Fault-aware TFAR rebuild: no surviving route crosses a dead channel,
/// every connected pair keeps a non-empty useful mask, pairs through a
/// fully-severed cut report unreachable, and reachable() mirrors the
/// useful masks.
TEST(RoutingLutRebuild, TfarRoutesAvoidDeadComponents) {
  const KAryNCube topo(4, 2);
  const auto fn = make_routing(Algorithm::TFAR, topo, 3);
  RoutingLut lut(*fn, topo);
  topo::FaultMask mask(topo);
  mask.kill_link(5, 0);
  mask.kill_link(9, 3);
  lut.rebuild(&mask);

  RouteResult r;
  for (NodeId here = 0; here < topo.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (here == dst) continue;
      lut.route(here, dst, r);
      // Two link faults cannot disconnect this torus.
      EXPECT_TRUE(lut.reachable(here, dst)) << here << "->" << dst;
      ASSERT_FALSE(r.candidates.empty()) << here << "->" << dst;
      for (const Candidate& c : r.candidates) {
        EXPECT_FALSE(mask.link_dead(here, c.channel))
            << here << "->" << dst << " via dead channel "
            << static_cast<unsigned>(c.channel);
      }
    }
  }
}

TEST(RoutingLutRebuild, SeveredNodeBecomesUnreachable) {
  const KAryNCube topo(4, 1);  // ring 0-1-2-3
  const auto fn = make_routing(Algorithm::TFAR, topo, 3);
  RoutingLut lut(*fn, topo);
  topo::FaultMask mask(topo);
  mask.kill_link(0, 0);  // 0 <-> 1
  mask.kill_link(0, 1);  // 0 <-> 3
  lut.rebuild(&mask);

  for (NodeId other = 1; other < 4; ++other) {
    EXPECT_FALSE(lut.reachable(0, other));
    EXPECT_FALSE(lut.reachable(other, 0));
    RouteResult r;
    lut.route(0, other, r);
    EXPECT_TRUE(r.candidates.empty());
  }
  // The surviving 1-2-3 chain still routes (including the pair whose
  // shortest healthy path ran through node 0).
  EXPECT_TRUE(lut.reachable(1, 3));
  RouteResult r;
  lut.route(1, 3, r);
  ASSERT_FALSE(r.candidates.empty());
  EXPECT_TRUE(lut.reachable(2, 1));
  EXPECT_TRUE(lut.reachable(1, 1));  // self stays trivially reachable
}

TEST(RoutingLutRebuild, DeadNodeUnreachableBothWaysUntilRestored) {
  const KAryNCube topo(4, 2);
  const auto fn = make_routing(Algorithm::TFAR, topo, 3);
  RoutingLut lut(*fn, topo);
  const auto original = snapshot_routes(lut, topo);
  topo::FaultMask mask(topo);
  mask.kill_node(6);
  lut.rebuild(&mask);

  for (NodeId other = 0; other < topo.num_nodes(); ++other) {
    if (other == 6) continue;
    EXPECT_FALSE(lut.reachable(6, other));
    EXPECT_FALSE(lut.reachable(other, 6));
    EXPECT_TRUE(lut.reachable(other, (other + 1) % topo.num_nodes() == 6
                                         ? (other + 2) % topo.num_nodes()
                                         : (other + 1) % topo.num_nodes()));
    RouteResult r;
    lut.route(other, 6, r);
    EXPECT_TRUE(r.candidates.empty());
  }

  mask.restore_node(6);
  lut.rebuild(&mask);
  expect_snapshots_equal(original, snapshot_routes(lut, topo), topo,
                         "node-restore-rebuild");
}

TEST(RoutingLutRebuild, RejectsUnsupportedModes) {
  const KAryNCube topo(4, 2);
  topo::FaultMask mask(topo);
  mask.kill_link(0, 0);

  // Passthrough (untabulated) LUTs cannot host fault-aware routes.
  const auto tfar = make_routing(Algorithm::TFAR, topo, 3);
  RoutingLut passthrough(*tfar, topo, /*max_entries=*/1);
  ASSERT_FALSE(passthrough.tabulated());
  EXPECT_NO_THROW(passthrough.rebuild(nullptr));
  EXPECT_THROW(passthrough.rebuild(&mask), std::invalid_argument);

  // Deterministic algorithms have no alternative paths to offer.
  for (const auto algo : {Algorithm::DOR, Algorithm::Duato}) {
    const auto fn = make_routing(algo, topo, 3);
    RoutingLut lut(*fn, topo);
    EXPECT_THROW(lut.rebuild(&mask), std::invalid_argument);
  }
}

}  // namespace
}  // namespace wormsim::routing
