// RoutingLut must be a drop-in for the routing function it wraps: for
// every (here, dst) pair the expanded RouteResult — candidate order,
// per-candidate VC masks, escape flags and the useful-channel mask —
// equals what fn.route() computes on the fly. The simulator relies on
// this equality for bit-identical sweep CSVs when fastpath.routing_lut
// toggles, so the comparison here is exact, not structural.
#include "routing/routing_lut.hpp"

#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

#include "routing/routing.hpp"

namespace wormsim::routing {
namespace {

using topo::KAryNCube;
using topo::NodeId;

void expect_routes_equal(const RouteResult& expect, const RouteResult& got,
                         NodeId here, NodeId dst, const char* label) {
  SCOPED_TRACE(::testing::Message() << label << " " << here << "->" << dst);
  ASSERT_EQ(expect.candidates.size(), got.candidates.size());
  for (std::size_t i = 0; i < expect.candidates.size(); ++i) {
    EXPECT_EQ(expect.candidates[i].channel, got.candidates[i].channel)
        << "candidate " << i;
    EXPECT_EQ(expect.candidates[i].vc_mask, got.candidates[i].vc_mask)
        << "candidate " << i;
    EXPECT_EQ(expect.candidates[i].escape, got.candidates[i].escape)
        << "candidate " << i;
  }
  EXPECT_EQ(expect.useful_phys_mask, got.useful_phys_mask);
}

/// The shipped algorithms crossed with the torus shapes whose routing
/// differs structurally: k = 2 (the degenerate wrap where +d and -d
/// reach the same neighbor), odd k (no antipodal tie, asymmetric
/// halves), even k > 2, and dimensions 1..3.
class RoutingLutEquivalence
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, unsigned /*k*/, unsigned /*n*/>> {};

TEST_P(RoutingLutEquivalence, MatchesOnTheFlyRouteExhaustively) {
  const auto [algo, k, n] = GetParam();
  const KAryNCube topo(k, n);
  const unsigned num_vcs = 3;  // minimum every algorithm accepts
  const auto fn = make_routing(algo, topo, num_vcs);
  const RoutingLut lut(*fn, topo);
  ASSERT_TRUE(lut.tabulated());
  EXPECT_EQ(lut.algorithm(), algo);

  RouteResult expect, got;
  for (NodeId here = 0; here < topo.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (here == dst) continue;
      fn->route(here, dst, expect);
      lut.route(here, dst, got);
      expect_routes_equal(expect, got, here, dst, algorithm_name(algo).data());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsTimesShapes, RoutingLutEquivalence,
    ::testing::Combine(::testing::Values(Algorithm::TFAR, Algorithm::DOR,
                                         Algorithm::Duato),
                       ::testing::Values(2u, 3u, 4u, 5u),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(algorithm_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param));
    });

/// Larger network, more VCs (distinct Duato adaptive/escape split),
/// random pair sample instead of the full N^2 product.
TEST(RoutingLut, MatchesOnRandomPairsLargeNetwork) {
  const KAryNCube topo(8, 3);  // the paper's full-scale 512-node cube
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_int_distribution<NodeId> pick(0, topo.num_nodes() - 1);
  for (const auto algo : {Algorithm::TFAR, Algorithm::DOR, Algorithm::Duato}) {
    for (const unsigned num_vcs : {3u, 4u, 6u}) {
      const auto fn = make_routing(algo, topo, num_vcs);
      const RoutingLut lut(*fn, topo);
      ASSERT_TRUE(lut.tabulated());
      RouteResult expect, got;
      for (int trial = 0; trial < 4000; ++trial) {
        const NodeId here = pick(rng);
        NodeId dst = pick(rng);
        if (here == dst) dst = (dst + 1) % topo.num_nodes();
        fn->route(here, dst, expect);
        lut.route(here, dst, got);
        expect_routes_equal(expect, got, here, dst,
                            algorithm_name(algo).data());
      }
    }
  }
}

/// A budget below nodes^2 selects the passthrough mode: tabulated() is
/// false and route() forwards verbatim, so oversized networks keep
/// working without the caller caring.
TEST(RoutingLut, PassthroughBelowBudgetStillRoutesIdentically) {
  const KAryNCube topo(4, 2);
  const auto fn = make_routing(Algorithm::TFAR, topo, 3);
  const RoutingLut lut(*fn, topo, /*max_entries=*/topo.num_nodes() - 1);
  EXPECT_FALSE(lut.tabulated());
  RouteResult expect, got;
  for (NodeId here = 0; here < topo.num_nodes(); ++here) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (here == dst) continue;
      fn->route(here, dst, expect);
      lut.route(here, dst, got);
      expect_routes_equal(expect, got, here, dst, "passthrough");
    }
  }
}

/// The exact boundary budget (nodes^2) must still tabulate.
TEST(RoutingLut, ExactBudgetTabulates) {
  const KAryNCube topo(3, 2);
  const auto fn = make_routing(Algorithm::DOR, topo, 3);
  const std::size_t pairs =
      static_cast<std::size_t>(topo.num_nodes()) * topo.num_nodes();
  EXPECT_TRUE(RoutingLut(*fn, topo, pairs).tabulated());
  EXPECT_FALSE(RoutingLut(*fn, topo, pairs - 1).tabulated());
}

}  // namespace
}  // namespace wormsim::routing
