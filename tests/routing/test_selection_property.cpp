// Property tests: for random status registers and candidate sets, every
// Pick a Selector returns must be admissible (free + usable), and the
// three policies must agree on *feasibility* (all succeed or all fail).
#include <gtest/gtest.h>

#include <map>

#include "routing/selection.hpp"
#include "util/rng.hpp"

namespace wormsim::routing {
namespace {

class RandomView final : public FreeVcView {
 public:
  std::uint32_t free_vc_mask(topo::ChannelId c) const override {
    const auto it = masks_.find(c);
    return it == masks_.end() ? 0u : it->second;
  }
  std::map<topo::ChannelId, std::uint32_t> masks_;
};

class SelectionPropertyTest : public ::testing::TestWithParam<SelectionPolicy> {
};

TEST_P(SelectionPropertyTest, PicksAreAlwaysAdmissible) {
  const Selector sel(GetParam());
  util::Rng rng(1234);
  constexpr unsigned kVcs = 3;
  for (int iter = 0; iter < 5000; ++iter) {
    RandomView view;
    RouteResult route;
    const unsigned num_cands = 1 + static_cast<unsigned>(rng.below(6));
    bool feasible = false;
    for (unsigned i = 0; i < num_cands; ++i) {
      const auto ch = static_cast<topo::ChannelId>(i);
      const auto vc_mask =
          static_cast<std::uint32_t>(rng.between(1, (1u << kVcs) - 1));
      const auto free =
          static_cast<std::uint32_t>(rng.below(1u << kVcs));
      view.masks_[ch] = free;
      // Escape candidates must come last; make the final one escape
      // half the time.
      const bool escape = (i == num_cands - 1) && rng.bernoulli(0.5);
      route.candidates.push_back({ch, vc_mask, escape});
      route.useful_phys_mask |= 1u << ch;
      feasible |= (vc_mask & free) != 0;
    }
    const auto rr = static_cast<std::uint32_t>(rng.below(16));
    const auto pick = sel.select(route, view, rr);
    ASSERT_EQ(pick.has_value(), feasible) << "iteration " << iter;
    if (pick) {
      // The picked VC must be free and usable on the picked channel.
      const Candidate* cand = nullptr;
      for (const auto& c : route.candidates) {
        if (c.channel == pick->channel && c.escape == pick->escape) cand = &c;
      }
      ASSERT_NE(cand, nullptr);
      EXPECT_TRUE(cand->vc_mask & (1u << pick->vc));
      EXPECT_TRUE(view.free_vc_mask(pick->channel) & (1u << pick->vc));
    }
  }
}

TEST_P(SelectionPropertyTest, EscapeOnlyChosenWhenNoAdaptiveOption) {
  const Selector sel(GetParam());
  util::Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    RandomView view;
    RouteResult route;
    const auto adaptive_free = static_cast<std::uint32_t>(rng.below(8));
    view.masks_[0] = adaptive_free;
    view.masks_[2] = 0b111;
    route.candidates.push_back({0, 0b111, false});
    route.candidates.push_back({2, 0b011, true});
    route.useful_phys_mask = 0b101;
    const auto pick = sel.select(route, view, static_cast<std::uint32_t>(iter));
    ASSERT_TRUE(pick.has_value());
    if (adaptive_free != 0) {
      EXPECT_FALSE(pick->escape) << "adaptive VC was free but escape taken";
    } else {
      EXPECT_TRUE(pick->escape);
    }
  }
}

/// Property: the row-based select overload (the devirtualized
/// cycle-loop path, fed a contiguous free-mask array instead of a
/// FreeVcView) returns the identical Pick — channel, VC and escape flag
/// — for random candidate sets, masks and round-robin states.
TEST_P(SelectionPropertyTest, RowOverloadMatchesVirtualView) {
  const Selector sel(GetParam());
  util::Rng rng(0x5E1);
  constexpr unsigned kVcs = 3;
  constexpr unsigned kChannels = 6;
  for (int iter = 0; iter < 5000; ++iter) {
    RandomView view;
    std::uint8_t row[kChannels] = {};
    RouteResult route;
    const unsigned num_cands =
        1 + static_cast<unsigned>(rng.below(kChannels));
    for (unsigned i = 0; i < num_cands; ++i) {
      const auto ch = static_cast<topo::ChannelId>(i);
      const auto vc_mask =
          static_cast<std::uint32_t>(rng.between(1, (1u << kVcs) - 1));
      const auto free = static_cast<std::uint32_t>(rng.below(1u << kVcs));
      view.masks_[ch] = free;
      row[i] = static_cast<std::uint8_t>(free);
      const bool escape = (i == num_cands - 1) && rng.bernoulli(0.5);
      route.candidates.push_back({ch, vc_mask, escape});
      route.useful_phys_mask |= 1u << i;
    }
    const auto rr = static_cast<std::uint32_t>(rng.below(16));
    const auto via_view = sel.select(route, view, rr);
    const auto via_row = sel.select(route, row, rr);
    ASSERT_EQ(via_view.has_value(), via_row.has_value()) << "iter " << iter;
    if (via_view) {
      ASSERT_EQ(via_view->channel, via_row->channel) << "iter " << iter;
      ASSERT_EQ(via_view->vc, via_row->vc) << "iter " << iter;
      ASSERT_EQ(via_view->escape, via_row->escape) << "iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, SelectionPropertyTest,
                         ::testing::Values(SelectionPolicy::MaxFreeVcs,
                                           SelectionPolicy::FirstFit,
                                           SelectionPolicy::RoundRobin));

}  // namespace
}  // namespace wormsim::routing
