// Micro-benchmarks (google-benchmark): per-operation cost of the ALO
// decision (behavioural predicate and gate-circuit model), the LF and
// DRIL checks, the routing functions and the selection function — the
// hardware-cost claims of §3 translated to software terms, plus overall
// simulator cycle throughput for both simulation cores.
//
// Besides the google-benchmark suite, `--hotpath-json [path]` runs the
// dense-vs-active hot-path comparison at the FAST fig05 low-load and
// saturation points and emits a JSON record (see BENCH_hotpath.json at
// the repo root for the committed baseline), and
// `--obs-overhead-json [path]` measures the cost of the observability
// hooks at the same operating points: the instrumented-off baseline
// (branch-on-null checks only) is measured in-process in the same
// interleaved batch as the online-statistics, tracing-on and
// tracing+spatial modes, so the reported overheads compare like with
// like on the same machine state. The off (A/A control) and online
// modes additionally get tight CPU-time-ratio gates using the
// alternating-pair method of the fc-dispatch gate (see
// BENCH_obs_overhead.json for the committed record).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "config/presets.hpp"
#include "core/alo.hpp"
#include "core/alo_gates.hpp"
#include "core/dril.hpp"
#include "core/linear_function.hpp"
#include "metrics/spatial.hpp"
#include "obs/log.hpp"
#include "obs/tracer.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace wormsim;

/// Synthetic channel-status register with pseudo-random occupancy.
class SyntheticStatus final : public core::ChannelStatus {
 public:
  SyntheticStatus(unsigned channels, unsigned vcs, std::uint64_t seed)
      : channels_(channels), vcs_(vcs), rng_(seed) {
    masks_.resize(1024);
    for (auto& m : masks_) {
      m = static_cast<std::uint32_t>(rng_.bits() & ((1u << vcs) - 1));
    }
  }
  unsigned num_phys_channels() const override { return channels_; }
  unsigned num_vcs() const override { return vcs_; }
  std::uint32_t free_vc_mask(core::NodeId node,
                             core::ChannelId c) const override {
    return masks_[(node * channels_ + c) % masks_.size()];
  }

 private:
  unsigned channels_;
  unsigned vcs_;
  util::Rng rng_;
  std::vector<std::uint32_t> masks_;
};

void BM_AloPredicate(benchmark::State& state) {
  SyntheticStatus status(6, 3, 1);
  std::uint32_t node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::evaluate_alo(status, node++ % 512, 0b010101));
  }
}
BENCHMARK(BM_AloPredicate);

void BM_AloGateCircuit(benchmark::State& state) {
  core::AloGateCircuit circuit(6, 3);
  util::Rng rng(2);
  std::uint64_t busy = rng.bits();
  for (auto _ : state) {
    busy = busy * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(
        circuit.evaluate(busy & ((1ULL << 18) - 1), 0b010101));
  }
}
BENCHMARK(BM_AloGateCircuit);

void BM_LinearFunctionCheck(benchmark::State& state) {
  SyntheticStatus status(6, 3, 3);
  core::LinearFunctionLimiter lf(0.625);
  routing::RouteResult route;
  for (unsigned c = 0; c < 6; c += 2) {
    route.candidates.push_back({static_cast<topo::ChannelId>(c), 0b111, false});
    route.useful_phys_mask |= 1u << c;
  }
  core::InjectionRequest req;
  req.route = &route;
  std::uint32_t node = 0;
  for (auto _ : state) {
    req.node = node++ % 512;
    benchmark::DoNotOptimize(lf.allow(req, status));
  }
}
BENCHMARK(BM_LinearFunctionCheck);

void BM_DrilCheck(benchmark::State& state) {
  SyntheticStatus status(6, 3, 4);
  core::DrilLimiter dril(512, 16, 1, 2048);
  routing::RouteResult route;
  route.useful_phys_mask = 0b111111;
  core::InjectionRequest req;
  req.route = &route;
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    req.node = static_cast<core::NodeId>(cycle % 512);
    req.cycle = ++cycle;
    req.head_wait = cycle % 40;
    benchmark::DoNotOptimize(dril.allow(req, status));
  }
}
BENCHMARK(BM_DrilCheck);

void BM_RoutingFunction(benchmark::State& state) {
  const topo::KAryNCube topo(8, 3);
  const auto algo = static_cast<routing::Algorithm>(state.range(0));
  auto routing = routing::make_routing(algo, topo, 3);
  routing::RouteResult out;
  util::Rng rng(5);
  for (auto _ : state) {
    const auto src = static_cast<topo::NodeId>(rng.below(512));
    auto dst = static_cast<topo::NodeId>(rng.below(512));
    if (dst == src) dst = (dst + 1) % 512;
    routing->route(src, dst, out);
    benchmark::DoNotOptimize(out.useful_phys_mask);
  }
}
BENCHMARK(BM_RoutingFunction)
    ->Arg(static_cast<int>(routing::Algorithm::TFAR))
    ->Arg(static_cast<int>(routing::Algorithm::DOR))
    ->Arg(static_cast<int>(routing::Algorithm::Duato));

void BM_SimulatorCycle(benchmark::State& state) {
  // Whole-simulator throughput: node-cycles per second on the
  // configured cube size (range(0) = n) under the selected core
  // (range(1): 0 = dense, 1 = active) at the given offered load
  // (range(2), in hundredths of a flit/node/cycle). The dense/active
  // pairs at the same (n, load) are the skip-idle-work speedup.
  config::SimConfig cfg = config::paper_base();
  cfg.n = static_cast<unsigned>(state.range(0));
  cfg.sim.core = state.range(1) ? sim::SimCore::Active : sim::SimCore::Dense;
  cfg.workload.offered_flits_per_node_cycle =
      static_cast<double>(state.range(2)) / 100.0;
  auto sim = config::build_simulator(cfg);
  sim->step_cycles(500);  // warm into steady state
  const auto nodes = sim->topology().num_nodes();
  for (auto _ : state) {
    sim->step();
  }
  state.SetItemsProcessed(state.iterations() * nodes);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["skip_ratio"] = sim->scan_stats().skipped_scan_ratio();
  state.SetLabel(std::string(sim_core_name(sim->core())));
}
BENCHMARK(BM_SimulatorCycle)
    ->Args({2, 0, 10})
    ->Args({2, 1, 10})
    ->Args({2, 0, 40})
    ->Args({2, 1, 40})
    ->Args({3, 0, 40})
    ->Args({3, 1, 40})
    ->Unit(benchmark::kMicrosecond);

// --- Hot-path JSON mode ------------------------------------------------

/// One core × load measurement at the FAST fig05 operating point.
struct HotpathSample {
  metrics::SimResult result;
};

config::SimConfig hotpath_base() {
  // The fig05 bench under WORMSIM_FAST=1: 8-ary 2-cube, uniform
  // traffic, 16-flit messages, bench-sized windows.
  config::SimConfig cfg = config::paper_base();
  cfg.n = 2;
  cfg.protocol.warmup = 3000;
  cfg.protocol.measure = 8000;
  cfg.protocol.drain_max = 8000;
  cfg.workload.pattern = traffic::PatternKind::Uniform;
  cfg.workload.length.fixed = 16;
  return cfg;
}

metrics::SimResult run_point(sim::SimCore core, double offered,
                             bool fc_dispatch = true,
                             unsigned window_scale = 1) {
  config::SimConfig cfg = hotpath_base();
  cfg.sim.core = core;
  cfg.sim.fastpath.fc_dispatch = fc_dispatch;
  cfg.workload.offered_flits_per_node_cycle = offered;
  cfg.protocol.warmup *= window_scale;
  cfg.protocol.measure *= window_scale;
  cfg.protocol.drain_max *= window_scale;
  return config::run_experiment(cfg);
}

void keep_best(metrics::SimResult& best, metrics::SimResult r, bool first) {
  if (first || r.cycles_per_second > best.cycles_per_second) {
    best = std::move(r);
  }
}

/// Measure both cores at one load, repetitions interleaved and the
/// order reversed on odd reps (ABBA): under progressive frequency
/// throttling a fixed order hands the same mode the hottest slot of
/// every rep, which reads as a systematic speed difference. Keep each
/// mode's best rep. Results are deterministic — only the wall clock
/// varies between repetitions.
std::pair<metrics::SimResult, metrics::SimResult> measure_pair(
    double offered, int reps) {
  metrics::SimResult dense, active;
  run_point(sim::SimCore::Dense, offered);  // thermal/cache warmup, discarded
  for (int i = 0; i < reps; ++i) {
    if (i % 2 == 0) {
      keep_best(dense, run_point(sim::SimCore::Dense, offered), i == 0);
      keep_best(active, run_point(sim::SimCore::Active, offered), i == 0);
    } else {
      keep_best(active, run_point(sim::SimCore::Active, offered), false);
      keep_best(dense, run_point(sim::SimCore::Dense, offered), false);
    }
  }
  return {std::move(dense), std::move(active)};
}

struct FcOverhead {
  metrics::SimResult fc_virtual;  // best rep, for the JSON sample
  double overhead_pct = 0.0;
};

/// CPU seconds consumed by this process so far. The fc-overhead gate
/// compares two throughputs a couple percent apart; on a shared CI
/// vCPU, wall clock carries multi-second preemption phases that dwarf
/// the effect, while process CPU time is immune to them (frequency
/// drift remains, which the alternating pair order cancels).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Active core with fc_dispatch on vs off — the wormhole scheme routed
/// through the virtual FlowControlScheme interface on every transmit
/// gate, measuring what the devirtualized fast path saves. Run
/// back-to-back on/off pairs (order alternating per pair, so slow
/// thermal/frequency drift cancels) and gate on the ratio of TOTAL
/// CPU time per side: with broadband timing noise far larger than the
/// effect, the aggregate ratio's error shrinks with the number of
/// pairs, where a per-pair median cannot average at all.
FcOverhead measure_fc_overhead(double offered, int pairs) {
  FcOverhead out;
  // Scale the low-load point's windows so a run is long enough to
  // measure; an A/A control (same config on both sides) showed ±1% on
  // the aggregate ratio at 20 pairs — the gate's margin must sit above
  // that floor, not above the true effect alone.
  const unsigned scale = offered < 0.5 ? 4 : 1;
  double a_cpu = 0.0, v_cpu = 0.0;
  for (int i = 0; i < pairs; ++i) {
    metrics::SimResult v;
    if (i % 2 == 0) {
      const double t0 = cpu_seconds();
      run_point(sim::SimCore::Active, offered, true, scale);
      const double t1 = cpu_seconds();
      v = run_point(sim::SimCore::Active, offered, false, scale);
      a_cpu += t1 - t0;
      v_cpu += cpu_seconds() - t1;
    } else {
      const double t0 = cpu_seconds();
      v = run_point(sim::SimCore::Active, offered, false, scale);
      const double t1 = cpu_seconds();
      run_point(sim::SimCore::Active, offered, true, scale);
      v_cpu += t1 - t0;
      a_cpu += cpu_seconds() - t1;
    }
    if (scale == 1) keep_best(out.fc_virtual, std::move(v), i == 0);
  }
  if (a_cpu > 0.0) out.overhead_pct = (v_cpu / a_cpu - 1.0) * 100.0;
  // When the gate pairs ran with stretched windows, they are the wrong
  // material for the JSON sample: its total_cycles must describe the
  // same protocol as the dense/active samples next to it. Take the
  // sample from a few dedicated unscaled reps instead.
  if (scale != 1) {
    for (int i = 0; i < 3; ++i) {
      keep_best(out.fc_virtual,
                run_point(sim::SimCore::Active, offered, false), i == 0);
    }
  }
  return out;
}

void emit_sample(std::ostream& os, const metrics::SimResult& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"cycles_per_second\": %.0f, \"scan_skip_ratio\": %.4f, "
                "\"avg_active_links\": %.2f, \"avg_active_nodes\": %.2f, "
                "\"route_memo_hit_rate\": %.4f, "
                "\"total_cycles\": %llu, \"wall_seconds\": %.4f}",
                r.cycles_per_second, r.scan_skip_ratio, r.avg_active_links,
                r.avg_active_nodes, r.route_memo_hit_rate,
                static_cast<unsigned long long>(r.total_cycles),
                r.wall_seconds);
  os << buf;
}

int run_hotpath_json(const char* path) {
  const int reps = 5;
  const int fc_pairs = 20;
  // The two acceptance points: the lowest-load fig05 point (where
  // skipping idle work should dominate) and the oversaturated end of
  // the sweep (where nothing is idle, so the gains must come from the
  // routing LUT, the blocked-header route memo and the devirtualized
  // selection/limiter dispatch).
  const double loads[] = {0.1, 1.2};

  std::ostream* os = &std::cout;
  std::ofstream file;
  if (path) {
    file.open(path);
    if (!file) {
      obs::logf(obs::LogLevel::Error, "error: cannot write %s\n", path);
      return 1;
    }
    os = &file;
  }

  *os << "{\n  \"schema\": \"wormsim.bench/1\",\n  \"bench\": \"hotpath\",\n"
      << "  \"config\": \"fig05 FAST point: 8-ary 2-cube (64 nodes), "
         "uniform, 16-flit messages, warmup 3000, measure 8000, "
         "drain 8000, best of "
      << reps << " runs; fc overhead = CPU-time ratio over " << fc_pairs
      << " alternating on/off pairs\",\n  \"points\": [\n";
  bool ok = true;
  for (std::size_t i = 0; i < 2; ++i) {
    const double offered = loads[i];
    obs::logf(obs::LogLevel::Info, "# hotpath: offered=%.2f (interleaved x%d)...\n",
                 offered, reps);
    const auto [dense, active] = measure_pair(offered, reps);
    const double speedup =
        dense.cycles_per_second > 0.0
            ? active.cycles_per_second / dense.cycles_per_second
            : 0.0;
    // Cost of routing the wormhole transmit gate through the virtual
    // FlowControlScheme interface instead of the devirtualized fast
    // path; positive = the interface mode is slower.
    const FcOverhead fc = measure_fc_overhead(offered, fc_pairs);
    const metrics::SimResult& fc_virtual = fc.fc_virtual;
    const double fc_overhead_pct = fc.overhead_pct;
    *os << "    {\"offered_flits_node_cycle\": " << offered
        << ", \"dense\": ";
    emit_sample(*os, dense);
    *os << ", \"active\": ";
    emit_sample(*os, active);
    *os << ", \"active_fc_virtual\": ";
    emit_sample(*os, fc_virtual);
    char sp[96];
    std::snprintf(sp, sizeof(sp),
                  ", \"active_speedup\": %.2f, "
                  "\"fc_virtual_overhead_pct\": %.2f}",
                  speedup, fc_overhead_pct);
    *os << sp << (i + 1 < 2 ? ",\n" : "\n");
    obs::logf(obs::LogLevel::Info, "# hotpath: offered=%.2f speedup=%.2fx "
                 "(active skip ratio %.3f, fc-virtual %+.2f%%)\n",
                 offered, speedup, active.scan_skip_ratio, fc_overhead_pct);
    // Acceptance gates: >= 2x at the low-load point (active-set
    // skipping), >= 1.5x at saturation (routing LUT, blocked-header
    // route memo and devirtualized dispatch), and the flow-control
    // interface costs the fast path at most 3%.
    if (i == 0 && speedup < 2.0) ok = false;
    if (i == 1 && speedup < 1.5) ok = false;
    if (fc_overhead_pct > 3.0) ok = false;
  }
  *os << "  ],\n  \"criteria\": {\"low_load_speedup_min\": 2.0, "
         "\"saturation_speedup_min\": 1.5, "
         "\"fc_virtual_overhead_max_pct\": 3.0}\n}\n";
  if (!ok) {
    obs::logf(obs::LogLevel::Error, "# hotpath: ACCEPTANCE CRITERIA NOT MET\n");
    return 2;
  }
  return 0;
}

// --- Observability-overhead JSON mode ----------------------------------

enum class ObsMode { Off, Online, Tracing, TracingSpatial };

metrics::SimResult run_obs_point(double offered, ObsMode mode,
                                 std::uint64_t* events_recorded,
                                 std::uint64_t* events_dropped,
                                 unsigned window_scale = 1) {
  config::SimConfig cfg = hotpath_base();
  cfg.sim.core = sim::SimCore::Active;
  cfg.workload.offered_flits_per_node_cycle = offered;
  cfg.protocol.warmup *= window_scale;
  cfg.protocol.measure *= window_scale;
  cfg.protocol.drain_max *= window_scale;
  if (mode == ObsMode::Off) return config::run_experiment(cfg);

  const topo::KAryNCube topo(cfg.k, cfg.n);
  if (mode == ObsMode::Online) {
    // The streaming-statistics engine exactly as --metrics-out /
    // --timeseries-out attach it: latency histograms plus the windowed
    // recorder and onset detector (profiler off — it is opt-in).
    metrics::OnlineStats online(topo.num_nodes());
    config::RunHooks hooks;
    hooks.online = &online;
    return config::run_experiment(cfg, hooks);
  }
  obs::Tracer tracer;
  metrics::SpatialMetrics spatial(topo.num_nodes(),
                                  topo.num_nodes() * topo.num_channels(),
                                  cfg.sim.net.num_vcs);
  config::RunHooks hooks;
  hooks.tracer = &tracer;
  if (mode == ObsMode::TracingSpatial) hooks.spatial = &spatial;
  metrics::SimResult r = config::run_experiment(cfg, hooks);
  if (events_recorded) *events_recorded = tracer.events_recorded();
  if (events_dropped) *events_dropped = tracer.events_dropped();
  return r;
}

/// Aggregate-CPU-time ratio of `mode` vs the instrumented-off baseline
/// over alternating back-to-back pairs — the same methodology as the
/// fc-dispatch gate (see measure_fc_overhead): process CPU time is
/// immune to preemption, alternating order cancels frequency drift,
/// and the aggregate ratio's error shrinks with the pair count
/// (empirically ±1% at 20 pairs). With mode == Off this is an A/A
/// control: it measures the method's noise floor, which is what the
/// instrumented-off ≤2% gate bounds.
double measure_obs_cpu_overhead(double offered, int pairs, ObsMode mode) {
  const unsigned scale = offered < 0.5 ? 4 : 1;
  double base_cpu = 0.0, mode_cpu = 0.0;
  for (int i = 0; i < pairs; ++i) {
    if (i % 2 == 0) {
      const double t0 = cpu_seconds();
      run_obs_point(offered, ObsMode::Off, nullptr, nullptr, scale);
      const double t1 = cpu_seconds();
      run_obs_point(offered, mode, nullptr, nullptr, scale);
      base_cpu += t1 - t0;
      mode_cpu += cpu_seconds() - t1;
    } else {
      const double t0 = cpu_seconds();
      run_obs_point(offered, mode, nullptr, nullptr, scale);
      const double t1 = cpu_seconds();
      run_obs_point(offered, ObsMode::Off, nullptr, nullptr, scale);
      mode_cpu += t1 - t0;
      base_cpu += cpu_seconds() - t1;
    }
  }
  return base_cpu > 0.0 ? (mode_cpu / base_cpu - 1.0) * 100.0 : 0.0;
}

int run_obs_overhead_json(const char* path) {
  const int reps = 3;
  const int cpu_pairs = 20;
  const double loads[] = {0.1, 1.2};
  // Tight CPU-time gates: the A/A control bounds the instrumented-off
  // noise floor (the branch-on-null hook checks plus measurement
  // noise), and the online gate bounds the streaming histograms +
  // windowed-recorder + detector cost.
  constexpr double kMaxOffOverheadPct = 2.0;
  constexpr double kMaxOnlineOverheadPct = 5.0;
  // Wall-clock tracing gates, relative to the in-process
  // instrumented-off baseline. Generous: these exist to catch
  // pathological regressions (a hook on the per-flit path, say), not
  // to benchmark the tracer.
  constexpr double kMaxTracingOverheadPct = 25.0;
  constexpr double kMaxTracingSpatialOverheadPct = 50.0;

  std::ostream* os = &std::cout;
  std::ofstream file;
  if (path) {
    file.open(path);
    if (!file) {
      obs::logf(obs::LogLevel::Error, "error: cannot write %s\n", path);
      return 1;
    }
    os = &file;
  }

  util::JsonWriter w(*os);
  w.begin_object();
  w.field("schema", "wormsim.bench/1");
  w.field("bench", "obs_overhead");
  w.field("config",
          "fig05 FAST point: 8-ary 2-cube (64 nodes), uniform, 16-flit "
          "messages, warmup 3000, measure 8000, drain 8000, active core; "
          "tracing modes best of 3 interleaved wall-clock runs; off/online "
          "overheads = CPU-time ratio over 20 alternating pairs (off is an "
          "A/A control bounding the noise floor)");
  w.field("baseline_source", "instrumented-off run, same process and batch");
  w.key("points");
  w.begin_array();

  bool ok = true;
  const auto emit_mode = [&](const char* name, const metrics::SimResult& r,
                             std::uint64_t recorded, std::uint64_t dropped,
                             bool traced) {
    w.key(name);
    w.begin_object();
    w.field("cycles_per_second", r.cycles_per_second);
    w.field("wall_seconds", r.wall_seconds);
    w.field("total_cycles", r.total_cycles);
    if (traced) {
      w.field("events_recorded", recorded);
      w.field("events_dropped", dropped);
    }
    w.end_object();
  };

  for (const double offered : loads) {
    obs::logf(obs::LogLevel::Info,
              "# obs-overhead: offered=%.2f (interleaved x%d)...\n", offered,
              reps);
    metrics::SimResult off, online, tracing, both;
    std::uint64_t rec_t = 0, drop_t = 0, rec_b = 0, drop_b = 0;
    run_obs_point(offered, ObsMode::Off, nullptr, nullptr);  // warmup
    for (int i = 0; i < reps; ++i) {
      metrics::SimResult o = run_obs_point(offered, ObsMode::Off, nullptr,
                                           nullptr);
      metrics::SimResult h =
          run_obs_point(offered, ObsMode::Online, nullptr, nullptr);
      metrics::SimResult t =
          run_obs_point(offered, ObsMode::Tracing, &rec_t, &drop_t);
      metrics::SimResult b =
          run_obs_point(offered, ObsMode::TracingSpatial, &rec_b, &drop_b);
      if (i == 0 || o.cycles_per_second > off.cycles_per_second) {
        off = std::move(o);
      }
      if (i == 0 || h.cycles_per_second > online.cycles_per_second) {
        online = std::move(h);
      }
      if (i == 0 || t.cycles_per_second > tracing.cycles_per_second) {
        tracing = std::move(t);
      }
      if (i == 0 || b.cycles_per_second > both.cycles_per_second) {
        both = std::move(b);
      }
    }

    // Positive = the instrumented mode is slower than the
    // instrumented-off baseline measured in this same batch.
    const double tracing_overhead_pct =
        off.cycles_per_second > 0.0
            ? (off.cycles_per_second / tracing.cycles_per_second - 1.0) * 100.0
            : 0.0;
    const double spatial_overhead_pct =
        off.cycles_per_second > 0.0
            ? (off.cycles_per_second / both.cycles_per_second - 1.0) * 100.0
            : 0.0;

    // Tight gates use the CPU-time pair method, which resolves effects
    // the best-of-3 wall-clock comparison cannot.
    const double off_overhead_pct =
        measure_obs_cpu_overhead(offered, cpu_pairs, ObsMode::Off);
    const double online_overhead_pct =
        measure_obs_cpu_overhead(offered, cpu_pairs, ObsMode::Online);

    w.begin_object();
    w.field("offered_flits_node_cycle", offered);
    emit_mode("off", off, 0, 0, false);
    emit_mode("online", online, 0, 0, false);
    emit_mode("tracing", tracing, rec_t, drop_t, true);
    emit_mode("tracing_spatial", both, rec_b, drop_b, true);
    w.field("off_overhead_pct", off_overhead_pct);
    w.field("online_overhead_pct", online_overhead_pct);
    w.field("tracing_overhead_pct", tracing_overhead_pct);
    w.field("tracing_spatial_overhead_pct", spatial_overhead_pct);
    w.end_object();

    obs::logf(obs::LogLevel::Info,
              "# obs-overhead: offered=%.2f off=%.0f c/s, off(A/A) %+.2f%%, "
              "online %+.2f%%, tracing %+.2f%%, +spatial %+.2f%%\n",
              offered, off.cycles_per_second, off_overhead_pct,
              online_overhead_pct, tracing_overhead_pct, spatial_overhead_pct);
    if (off_overhead_pct > kMaxOffOverheadPct) ok = false;
    if (online_overhead_pct > kMaxOnlineOverheadPct) ok = false;
    if (tracing_overhead_pct > kMaxTracingOverheadPct) ok = false;
    if (spatial_overhead_pct > kMaxTracingSpatialOverheadPct) ok = false;
  }

  w.end_array();
  w.key("criteria");
  w.begin_object();
  w.field("off_overhead_max_pct", kMaxOffOverheadPct);
  w.field("online_overhead_max_pct", kMaxOnlineOverheadPct);
  w.field("tracing_overhead_max_pct", kMaxTracingOverheadPct);
  w.field("tracing_spatial_overhead_max_pct", kMaxTracingSpatialOverheadPct);
  w.end_object();
  w.end_object();
  *os << "\n";
  if (!ok) {
    obs::logf(obs::LogLevel::Error,
              "# obs-overhead: ACCEPTANCE CRITERIA NOT MET\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hotpath-json") == 0) {
      return run_hotpath_json(i + 1 < argc ? argv[i + 1] : nullptr);
    }
    if (std::strcmp(argv[i], "--obs-overhead-json") == 0) {
      return run_obs_overhead_json(i + 1 < argc ? argv[i + 1] : nullptr);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
