// Micro-benchmarks (google-benchmark): per-operation cost of the ALO
// decision (behavioural predicate and gate-circuit model), the LF and
// DRIL checks, the routing functions and the selection function — the
// hardware-cost claims of §3 translated to software terms, plus overall
// simulator cycle throughput for both simulation cores.
//
// Besides the google-benchmark suite, `--hotpath-json [path]` runs the
// dense-vs-active hot-path comparison at the FAST fig05 low-load and
// saturation points and emits a JSON record (see BENCH_hotpath.json at
// the repo root for the committed baseline).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "config/presets.hpp"
#include "core/alo.hpp"
#include "core/alo_gates.hpp"
#include "core/dril.hpp"
#include "core/linear_function.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace wormsim;

/// Synthetic channel-status register with pseudo-random occupancy.
class SyntheticStatus final : public core::ChannelStatus {
 public:
  SyntheticStatus(unsigned channels, unsigned vcs, std::uint64_t seed)
      : channels_(channels), vcs_(vcs), rng_(seed) {
    masks_.resize(1024);
    for (auto& m : masks_) {
      m = static_cast<std::uint32_t>(rng_.bits() & ((1u << vcs) - 1));
    }
  }
  unsigned num_phys_channels() const override { return channels_; }
  unsigned num_vcs() const override { return vcs_; }
  std::uint32_t free_vc_mask(core::NodeId node,
                             core::ChannelId c) const override {
    return masks_[(node * channels_ + c) % masks_.size()];
  }

 private:
  unsigned channels_;
  unsigned vcs_;
  util::Rng rng_;
  std::vector<std::uint32_t> masks_;
};

void BM_AloPredicate(benchmark::State& state) {
  SyntheticStatus status(6, 3, 1);
  std::uint32_t node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::evaluate_alo(status, node++ % 512, 0b010101));
  }
}
BENCHMARK(BM_AloPredicate);

void BM_AloGateCircuit(benchmark::State& state) {
  core::AloGateCircuit circuit(6, 3);
  util::Rng rng(2);
  std::uint64_t busy = rng.bits();
  for (auto _ : state) {
    busy = busy * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(
        circuit.evaluate(busy & ((1ULL << 18) - 1), 0b010101));
  }
}
BENCHMARK(BM_AloGateCircuit);

void BM_LinearFunctionCheck(benchmark::State& state) {
  SyntheticStatus status(6, 3, 3);
  core::LinearFunctionLimiter lf(0.625);
  routing::RouteResult route;
  for (unsigned c = 0; c < 6; c += 2) {
    route.candidates.push_back({static_cast<topo::ChannelId>(c), 0b111, false});
    route.useful_phys_mask |= 1u << c;
  }
  core::InjectionRequest req;
  req.route = &route;
  std::uint32_t node = 0;
  for (auto _ : state) {
    req.node = node++ % 512;
    benchmark::DoNotOptimize(lf.allow(req, status));
  }
}
BENCHMARK(BM_LinearFunctionCheck);

void BM_DrilCheck(benchmark::State& state) {
  SyntheticStatus status(6, 3, 4);
  core::DrilLimiter dril(512, 16, 1, 2048);
  routing::RouteResult route;
  route.useful_phys_mask = 0b111111;
  core::InjectionRequest req;
  req.route = &route;
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    req.node = static_cast<core::NodeId>(cycle % 512);
    req.cycle = ++cycle;
    req.head_wait = cycle % 40;
    benchmark::DoNotOptimize(dril.allow(req, status));
  }
}
BENCHMARK(BM_DrilCheck);

void BM_RoutingFunction(benchmark::State& state) {
  const topo::KAryNCube topo(8, 3);
  const auto algo = static_cast<routing::Algorithm>(state.range(0));
  auto routing = routing::make_routing(algo, topo, 3);
  routing::RouteResult out;
  util::Rng rng(5);
  for (auto _ : state) {
    const auto src = static_cast<topo::NodeId>(rng.below(512));
    auto dst = static_cast<topo::NodeId>(rng.below(512));
    if (dst == src) dst = (dst + 1) % 512;
    routing->route(src, dst, out);
    benchmark::DoNotOptimize(out.useful_phys_mask);
  }
}
BENCHMARK(BM_RoutingFunction)
    ->Arg(static_cast<int>(routing::Algorithm::TFAR))
    ->Arg(static_cast<int>(routing::Algorithm::DOR))
    ->Arg(static_cast<int>(routing::Algorithm::Duato));

void BM_SimulatorCycle(benchmark::State& state) {
  // Whole-simulator throughput: node-cycles per second on the
  // configured cube size (range(0) = n) under the selected core
  // (range(1): 0 = dense, 1 = active) at the given offered load
  // (range(2), in hundredths of a flit/node/cycle). The dense/active
  // pairs at the same (n, load) are the skip-idle-work speedup.
  config::SimConfig cfg = config::paper_base();
  cfg.n = static_cast<unsigned>(state.range(0));
  cfg.sim.core = state.range(1) ? sim::SimCore::Active : sim::SimCore::Dense;
  cfg.workload.offered_flits_per_node_cycle =
      static_cast<double>(state.range(2)) / 100.0;
  auto sim = config::build_simulator(cfg);
  sim->step_cycles(500);  // warm into steady state
  const auto nodes = sim->topology().num_nodes();
  for (auto _ : state) {
    sim->step();
  }
  state.SetItemsProcessed(state.iterations() * nodes);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["skip_ratio"] = sim->scan_stats().skipped_scan_ratio();
  state.SetLabel(std::string(sim_core_name(sim->core())));
}
BENCHMARK(BM_SimulatorCycle)
    ->Args({2, 0, 10})
    ->Args({2, 1, 10})
    ->Args({2, 0, 40})
    ->Args({2, 1, 40})
    ->Args({3, 0, 40})
    ->Args({3, 1, 40})
    ->Unit(benchmark::kMicrosecond);

// --- Hot-path JSON mode ------------------------------------------------

/// One core × load measurement at the FAST fig05 operating point.
struct HotpathSample {
  metrics::SimResult result;
};

config::SimConfig hotpath_base() {
  // The fig05 bench under WORMSIM_FAST=1: 8-ary 2-cube, uniform
  // traffic, 16-flit messages, bench-sized windows.
  config::SimConfig cfg = config::paper_base();
  cfg.n = 2;
  cfg.protocol.warmup = 3000;
  cfg.protocol.measure = 8000;
  cfg.protocol.drain_max = 8000;
  cfg.workload.pattern = traffic::PatternKind::Uniform;
  cfg.workload.length.fixed = 16;
  return cfg;
}

metrics::SimResult run_point(sim::SimCore core, double offered) {
  config::SimConfig cfg = hotpath_base();
  cfg.sim.core = core;
  cfg.workload.offered_flits_per_node_cycle = offered;
  return config::run_experiment(cfg);
}

/// Measure both cores at one load, repetitions interleaved
/// (dense/active/dense/active/...) so frequency scaling and cache state
/// bias neither side; keep each core's best rep. Results are
/// deterministic — only the wall clock varies between repetitions.
std::pair<metrics::SimResult, metrics::SimResult> measure_pair(
    double offered, int reps) {
  metrics::SimResult dense, active;
  run_point(sim::SimCore::Dense, offered);  // thermal/cache warmup, discarded
  for (int i = 0; i < reps; ++i) {
    metrics::SimResult d = run_point(sim::SimCore::Dense, offered);
    metrics::SimResult a = run_point(sim::SimCore::Active, offered);
    if (i == 0 || d.cycles_per_second > dense.cycles_per_second) {
      dense = std::move(d);
    }
    if (i == 0 || a.cycles_per_second > active.cycles_per_second) {
      active = std::move(a);
    }
  }
  return {std::move(dense), std::move(active)};
}

void emit_sample(std::ostream& os, const metrics::SimResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"cycles_per_second\": %.0f, \"scan_skip_ratio\": %.4f, "
                "\"avg_active_links\": %.2f, \"avg_active_nodes\": %.2f, "
                "\"total_cycles\": %llu, \"wall_seconds\": %.4f}",
                r.cycles_per_second, r.scan_skip_ratio, r.avg_active_links,
                r.avg_active_nodes,
                static_cast<unsigned long long>(r.total_cycles),
                r.wall_seconds);
  os << buf;
}

int run_hotpath_json(const char* path) {
  const int reps = 3;
  // The two acceptance points: the lowest-load fig05 point (where
  // skipping idle work should dominate) and the oversaturated end of
  // the sweep (where nothing is idle and the set bookkeeping must not
  // cost more than the dense scan saves).
  const double loads[] = {0.1, 1.2};

  std::ostream* os = &std::cout;
  std::ofstream file;
  if (path) {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", path);
      return 1;
    }
    os = &file;
  }

  *os << "{\n  \"bench\": \"hotpath\",\n"
      << "  \"config\": \"fig05 FAST point: 8-ary 2-cube (64 nodes), "
         "uniform, 16-flit messages, warmup 3000, measure 8000, "
         "drain 8000, best of "
      << reps << " runs\",\n  \"points\": [\n";
  bool ok = true;
  for (std::size_t i = 0; i < 2; ++i) {
    const double offered = loads[i];
    std::fprintf(stderr, "# hotpath: offered=%.2f (interleaved x%d)...\n",
                 offered, reps);
    const auto [dense, active] = measure_pair(offered, reps);
    const double speedup =
        dense.cycles_per_second > 0.0
            ? active.cycles_per_second / dense.cycles_per_second
            : 0.0;
    *os << "    {\"offered_flits_node_cycle\": " << offered
        << ", \"dense\": ";
    emit_sample(*os, dense);
    *os << ", \"active\": ";
    emit_sample(*os, active);
    char sp[64];
    std::snprintf(sp, sizeof(sp), ", \"active_speedup\": %.2f}", speedup);
    *os << sp << (i + 1 < 2 ? ",\n" : "\n");
    std::fprintf(stderr, "# hotpath: offered=%.2f speedup=%.2fx "
                 "(active skip ratio %.3f)\n",
                 offered, speedup, active.scan_skip_ratio);
    // Acceptance gates: >= 2x at the low-load point, no more than 5%
    // regression at saturation.
    if (i == 0 && speedup < 2.0) ok = false;
    if (i == 1 && speedup < 0.95) ok = false;
  }
  *os << "  ],\n  \"criteria\": {\"low_load_speedup_min\": 2.0, "
         "\"saturation_regression_max_pct\": 5.0}\n}\n";
  if (!ok) {
    std::fprintf(stderr, "# hotpath: ACCEPTANCE CRITERIA NOT MET\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hotpath-json") == 0) {
      return run_hotpath_json(i + 1 < argc ? argv[i + 1] : nullptr);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
