// Micro-benchmarks (google-benchmark): per-operation cost of the ALO
// decision (behavioural predicate and gate-circuit model), the LF and
// DRIL checks, the routing functions and the selection function — the
// hardware-cost claims of §3 translated to software terms, plus overall
// simulator cycle throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "config/presets.hpp"
#include "core/alo.hpp"
#include "core/alo_gates.hpp"
#include "core/dril.hpp"
#include "core/linear_function.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace wormsim;

/// Synthetic channel-status register with pseudo-random occupancy.
class SyntheticStatus final : public core::ChannelStatus {
 public:
  SyntheticStatus(unsigned channels, unsigned vcs, std::uint64_t seed)
      : channels_(channels), vcs_(vcs), rng_(seed) {
    masks_.resize(1024);
    for (auto& m : masks_) {
      m = static_cast<std::uint32_t>(rng_.bits() & ((1u << vcs) - 1));
    }
  }
  unsigned num_phys_channels() const override { return channels_; }
  unsigned num_vcs() const override { return vcs_; }
  std::uint32_t free_vc_mask(core::NodeId node,
                             core::ChannelId c) const override {
    return masks_[(node * channels_ + c) % masks_.size()];
  }

 private:
  unsigned channels_;
  unsigned vcs_;
  util::Rng rng_;
  std::vector<std::uint32_t> masks_;
};

void BM_AloPredicate(benchmark::State& state) {
  SyntheticStatus status(6, 3, 1);
  std::uint32_t node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::evaluate_alo(status, node++ % 512, 0b010101));
  }
}
BENCHMARK(BM_AloPredicate);

void BM_AloGateCircuit(benchmark::State& state) {
  core::AloGateCircuit circuit(6, 3);
  util::Rng rng(2);
  std::uint64_t busy = rng.bits();
  for (auto _ : state) {
    busy = busy * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(
        circuit.evaluate(busy & ((1ULL << 18) - 1), 0b010101));
  }
}
BENCHMARK(BM_AloGateCircuit);

void BM_LinearFunctionCheck(benchmark::State& state) {
  SyntheticStatus status(6, 3, 3);
  core::LinearFunctionLimiter lf(0.625);
  routing::RouteResult route;
  for (unsigned c = 0; c < 6; c += 2) {
    route.candidates.push_back({static_cast<topo::ChannelId>(c), 0b111, false});
    route.useful_phys_mask |= 1u << c;
  }
  core::InjectionRequest req;
  req.route = &route;
  std::uint32_t node = 0;
  for (auto _ : state) {
    req.node = node++ % 512;
    benchmark::DoNotOptimize(lf.allow(req, status));
  }
}
BENCHMARK(BM_LinearFunctionCheck);

void BM_DrilCheck(benchmark::State& state) {
  SyntheticStatus status(6, 3, 4);
  core::DrilLimiter dril(512, 16, 1, 2048);
  routing::RouteResult route;
  route.useful_phys_mask = 0b111111;
  core::InjectionRequest req;
  req.route = &route;
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    req.node = static_cast<core::NodeId>(cycle % 512);
    req.cycle = ++cycle;
    req.head_wait = cycle % 40;
    benchmark::DoNotOptimize(dril.allow(req, status));
  }
}
BENCHMARK(BM_DrilCheck);

void BM_RoutingFunction(benchmark::State& state) {
  const topo::KAryNCube topo(8, 3);
  const auto algo = static_cast<routing::Algorithm>(state.range(0));
  auto routing = routing::make_routing(algo, topo, 3);
  routing::RouteResult out;
  util::Rng rng(5);
  for (auto _ : state) {
    const auto src = static_cast<topo::NodeId>(rng.below(512));
    auto dst = static_cast<topo::NodeId>(rng.below(512));
    if (dst == src) dst = (dst + 1) % 512;
    routing->route(src, dst, out);
    benchmark::DoNotOptimize(out.useful_phys_mask);
  }
}
BENCHMARK(BM_RoutingFunction)
    ->Arg(static_cast<int>(routing::Algorithm::TFAR))
    ->Arg(static_cast<int>(routing::Algorithm::DOR))
    ->Arg(static_cast<int>(routing::Algorithm::Duato));

void BM_SimulatorCycle(benchmark::State& state) {
  // Whole-simulator throughput: node-cycles per second at a moderate
  // load on the configured cube size (range(0) = n).
  config::SimConfig cfg = config::paper_base();
  cfg.n = static_cast<unsigned>(state.range(0));
  cfg.workload.offered_flits_per_node_cycle = 0.4;
  auto sim = config::build_simulator(cfg);
  sim->step_cycles(500);  // warm into steady state
  const auto nodes = sim->topology().num_nodes();
  for (auto _ : state) {
    sim->step();
  }
  state.SetItemsProcessed(state.iterations() * nodes);
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_SimulatorCycle)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
