// Degraded-operation bench: kill links mid-measurement at saturation
// load and watch whether the injection limiters hold the network out of
// saturation through the reconfiguration transient (ISSUE 6 headline
// experiment).
//
// Default mode runs a None/ALO sweep at one offered load with a fault
// schedule folded into every point (2 random links die halfway through
// the measurement window unless --faults overrides the schedule) and
// prints the standard sweep CSV plus per-mechanism transient summaries;
// the usual observability flags (--metrics-out/--trace/--spatial-out)
// apply, so the run can drop JSONL telemetry and spatial heatmap CSVs
// of the degraded network.
//
// `--json [path]` runs the gated acceptance mode at the FAST operating
// point (8-ary 2-cube) and emits a JSON record with an embedded
// criteria block for tools/check_bench.py:
//   recovery_cycles_max          ALO throughput must return to >= 80%
//                                of its pre-fault mean within this many
//                                cycles of the kill
//   post_rebuild_cps_ratio_min   simulation throughput on the degraded
//                                network (2 dead links, rebuilt LUT)
//                                must stay within this fraction of the
//                                healthy network's cycles/s
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>

#include "fault/schedule.hpp"
#include "fig_common.hpp"
#include "util/stats.hpp"

namespace wormsim::bench {
namespace {

/// Time-series interval width for the transient analysis; coarse enough
/// that per-interval accepted traffic is not shot noise, fine enough to
/// bound the recovery time usefully.
constexpr std::uint64_t kIntervalCycles = 250;

struct TransientMetrics {
  double pre_accepted = 0.0;   // mean accepted traffic before the kill
  double post_accepted = 0.0;  // mean accepted traffic after recovery
  std::uint64_t recovery_cycles = 0;
  bool recovered = false;
};

/// One instrumented run of `cfg` (which carries a fault schedule whose
/// first event is the kill): per-interval accepted traffic before the
/// kill versus after, and the first interval boundary at which
/// throughput is back above 80% of the pre-fault mean.
TransientMetrics measure_transient(const config::SimConfig& cfg) {
  const std::uint64_t kill_cycle = cfg.sim.faults.events().front().cycle;
  auto simulator = config::build_simulator(cfg);
  simulator->enable_timeseries(kIntervalCycles);
  simulator->run(cfg.protocol);
  const metrics::TimeSeries* ts = simulator->timeseries();
  const topo::KAryNCube topo(cfg.k, cfg.n);
  const std::uint32_t nodes = topo.num_nodes();
  const std::uint64_t window_end = cfg.protocol.warmup + cfg.protocol.measure;

  TransientMetrics m;
  util::RunningStats pre;
  const auto& intervals = ts->intervals();
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const std::uint64_t start = intervals[i].start_cycle;
    if (start >= cfg.protocol.warmup &&
        start + kIntervalCycles <= kill_cycle) {
      pre.add(ts->accepted(i, nodes));
    }
  }
  m.pre_accepted = pre.mean();

  const double recovery_floor = 0.8 * m.pre_accepted;
  util::RunningStats post;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const std::uint64_t start = intervals[i].start_cycle;
    if (start < kill_cycle || start + kIntervalCycles > window_end) continue;
    const double accepted = ts->accepted(i, nodes);
    if (!m.recovered && accepted >= recovery_floor) {
      m.recovered = true;
      m.recovery_cycles = start + kIntervalCycles - kill_cycle;
    }
    if (m.recovered) post.add(ts->accepted(i, nodes));
  }
  m.post_accepted = post.mean();
  if (!m.recovered) m.recovery_cycles = window_end - kill_cycle;
  return m;
}

config::SimConfig transient_base() {
  // The hotpath FAST operating point: 8-ary 2-cube, uniform traffic,
  // 16-flit messages, bench-sized windows, ALO at saturation load.
  config::SimConfig cfg = config::paper_base();
  cfg.n = 2;
  cfg.protocol.warmup = 3000;
  cfg.protocol.measure = 8000;
  cfg.protocol.drain_max = 8000;
  cfg.sim.limiter.kind = core::LimiterKind::ALO;
  cfg.workload.offered_flits_per_node_cycle = 1.0;
  return cfg;
}

/// Best-of-`reps` simulation throughput (deterministic results; only
/// the wall clock varies between repetitions).
double best_cps(const config::SimConfig& cfg, int reps) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    best = std::max(best, config::run_experiment(cfg).cycles_per_second);
  }
  return best;
}

int run_transient_json(const char* path) {
  constexpr std::uint64_t kRecoveryCyclesMax = 2000;
  constexpr double kPostRebuildCpsRatioMin = 0.5;
  const int reps = 3;

  std::ostream* os = &std::cout;
  std::ofstream file;
  if (path) {
    file.open(path);
    if (!file) {
      obs::logf(obs::LogLevel::Error, "error: cannot write %s\n", path);
      return 1;
    }
    os = &file;
  }

  const config::SimConfig healthy = transient_base();
  const topo::KAryNCube topo(healthy.k, healthy.n);

  // Recovery transient: 2 links die halfway through the measurement.
  config::SimConfig faulty = healthy;
  const std::uint64_t kill_cycle =
      healthy.protocol.warmup + healthy.protocol.measure / 2;
  faulty.sim.faults =
      fault::make_transient(topo, 2, kill_cycle, 0, healthy.seed);
  obs::logf(obs::LogLevel::Info,
            "# fault_transient: ALO @ 1.0, 2 links killed at cycle %llu\n",
            static_cast<unsigned long long>(kill_cycle));
  const TransientMetrics m = measure_transient(faulty);

  // Post-rebuild engine throughput: same point with the links dead (and
  // the LUT rebuilt) from cycle 0, against the healthy network.
  config::SimConfig degraded = healthy;
  degraded.sim.faults = fault::make_transient(topo, 2, 0, 0, healthy.seed);
  best_cps(healthy, 1);  // thermal/cache warmup, discarded
  const double healthy_cps = best_cps(healthy, reps);
  const double degraded_cps = best_cps(degraded, reps);
  const double ratio = healthy_cps > 0.0 ? degraded_cps / healthy_cps : 0.0;

  obs::logf(obs::LogLevel::Info,
            "# fault_transient: pre=%.4f post=%.4f recovery=%llu cycles, "
            "degraded %.0f cps vs healthy %.0f cps (ratio %.2f)\n",
            m.pre_accepted, m.post_accepted,
            static_cast<unsigned long long>(m.recovery_cycles), degraded_cps,
            healthy_cps, ratio);

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n  \"schema\": \"wormsim.bench/1\",\n"
      "  \"bench\": \"fault_transient\",\n"
      "  \"config\": \"ALO FAST point: 8-ary 2-cube (64 nodes), uniform, "
      "16-flit messages, load 1.0, 2 links killed mid-measure, best of %d "
      "runs for cps\",\n"
      "  \"points\": [\n"
      "    {\"offered_flits_node_cycle\": 1.0, \"mechanism\": \"alo\", "
      "\"pre_fault_accepted\": %.4f, \"post_fault_accepted\": %.4f, "
      "\"recovered\": %s, \"recovery_cycles\": %llu, "
      "\"post_rebuild_cycles_per_second\": %.0f, "
      "\"healthy_cycles_per_second\": %.0f, "
      "\"post_rebuild_cps_ratio\": %.3f}\n"
      "  ],\n"
      "  \"criteria\": {\"recovery_cycles_max\": %llu, "
      "\"post_rebuild_cps_ratio_min\": %.2f}\n}\n",
      reps, m.pre_accepted, m.post_accepted, m.recovered ? "true" : "false",
      static_cast<unsigned long long>(m.recovery_cycles), degraded_cps,
      healthy_cps, ratio, static_cast<unsigned long long>(kRecoveryCyclesMax),
      kPostRebuildCpsRatioMin);
  *os << buf;

  if (!m.recovered || m.recovery_cycles > kRecoveryCyclesMax ||
      ratio < kPostRebuildCpsRatioMin) {
    obs::logf(obs::LogLevel::Error,
              "# fault_transient: ACCEPTANCE CRITERIA NOT MET\n");
    return 2;
  }
  return 0;
}

int run_demo(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  config::SimConfig cfg = config::paper_base();
  cfg.protocol.warmup = 3000;
  cfg.protocol.measure = 8000;
  cfg.protocol.drain_max = 8000;
  harness::apply_common_flags(cfg, args);
  harness::apply_scale_env(cfg);
  harness::apply_fault_flag(cfg, args);
  if (cfg.sim.faults.empty()) {
    // Default schedule: 2 random links die halfway through measurement
    // and stay dead, so the CSV reflects degraded steady state.
    const topo::KAryNCube topo(cfg.k, cfg.n);
    cfg.sim.faults = fault::make_transient(
        topo, 2, cfg.protocol.warmup + cfg.protocol.measure / 2, 0, cfg.seed);
  }

  harness::SweepSpec sweep;
  sweep.base = cfg;
  sweep.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
  sweep.offered_loads = {args.get_double("load", 1.0)};
  sweep.jobs = harness::jobs_flag(args);
  metrics::SweepStats stats;
  sweep.stats = &stats;
  sweep.progress = true;
  harness::ObsSession session(args);
  session.attach(sweep);

  std::cout << "# Degraded operation — " << cfg.sim.faults.size()
            << "-event fault schedule, first event at cycle "
            << cfg.sim.faults.events().front().cycle << "\n";
  std::cout << "# expectation: ALO re-stabilizes throughput within a "
               "bounded transient; None collapses further\n";
  std::cout << harness::describe(cfg) << "\n";
  const auto points = harness::run_sweep(sweep);
  harness::write_sweep_csv(std::cout, points);

  // Per-mechanism transient summaries from instrumented reruns.
  for (const auto limiter : sweep.limiters) {
    config::SimConfig point_cfg = cfg;
    point_cfg.sim.limiter.kind = limiter;
    point_cfg.workload.offered_flits_per_node_cycle = sweep.offered_loads[0];
    const TransientMetrics m = measure_transient(point_cfg);
    std::cout << "# transient " << core::limiter_name(limiter)
              << ": pre_accepted=" << m.pre_accepted
              << " post_accepted=" << m.post_accepted
              << " recovered=" << (m.recovered ? 1 : 0)
              << " recovery_cycles=" << m.recovery_cycles << "\n";
  }
  obs::logf(obs::LogLevel::Info, "# %s\n", stats.summary().c_str());
  session.finish(sweep, points, &stats);
  return 0;
}

}  // namespace
}  // namespace wormsim::bench

int main(int argc, char** argv) {
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        return wormsim::bench::run_transient_json(i + 1 < argc ? argv[i + 1]
                                                               : nullptr);
      }
    }
    return wormsim::bench::run_demo(argc, argv);
  } catch (const std::exception& e) {
    wormsim::obs::logf(wormsim::obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
