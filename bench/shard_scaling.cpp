// Shard-count scaling for the sharded single-simulation core, plus the
// 32-ary 3-cube (32,768-node) scale demonstration.
//
// Two claims are measured and gated (see BENCH_shard.json):
//
//  1. `--shards 1` carries no overhead versus the sequential active
//     core. In this build shards=1 dispatches to the unmodified
//     sequential step path (no crew, no barriers, no mailboxes), so
//     the alternating A/B CPU-time pair below is the runtime proof:
//     the aggregate ratio must stay within measurement noise, and the
//     <= 5% gate fails loudly if a future change makes shards=1
//     engage the sharded machinery.
//
//  2. On multi-core hosts, multi-shard execution must not be slower
//     than sequential (speedup >= 1). Single-core hosts record the
//     shard-2 throughput informationally — there the per-cycle
//     barriers serialize onto one CPU and a speedup gate would only
//     measure the scheduler — and emit no speedup criterion.
//
// The scale demo runs one low-load 32-ary 3-cube sweep point end to
// end through the standard experiment harness (the LUT auto-degrades
// to passthrough above its size budget; the memory estimate is
// reported alongside).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <thread>

#include "config/presets.hpp"
#include "harness/sweep.hpp"
#include "obs/log.hpp"

namespace wormsim::bench {
namespace {

/// 16-ary 2-cube (256 nodes = 4 bitmap words): the smallest network
/// where 2- and 4-way splits genuinely partition the node and link
/// words, with equivalence-harness-sized windows so a run is cheap
/// enough for alternating-pair timing.
config::SimConfig scaling_base() {
  config::SimConfig cfg = config::small_base();
  cfg.k = 16;
  cfg.protocol.warmup = 300;
  cfg.protocol.measure = 1000;
  cfg.protocol.drain_max = 1200;
  cfg.sim.limiter.kind = core::LimiterKind::ALO;
  cfg.seed = 0x5A4DD001;
  return cfg;
}

/// CPU seconds consumed by this process so far; immune to the
/// preemption phases that dominate wall clock on shared CI vCPUs (same
/// rationale as micro_mechanism's fc-overhead gate).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct OverheadPoint {
  double baseline_cps = 0.0;  // best sequential-run throughput
  double overhead_pct = 0.0;  // aggregate CPU-time ratio, A vs B
};

/// Alternating A/B pairs at one offered load: A is the active core as
/// configured by default, B is the same config with `--shards 1` set
/// explicitly. The two must run the same code; the aggregate CPU-time
/// ratio measures any divergence plus timing noise.
OverheadPoint measure_shard1_overhead(double offered, int pairs) {
  config::SimConfig cfg = scaling_base();
  cfg.workload.offered_flits_per_node_cycle = offered;
  OverheadPoint out;
  double a_cpu = 0.0, b_cpu = 0.0;
  config::run_experiment(cfg);  // thermal/cache warmup, discarded
  for (int i = 0; i < pairs; ++i) {
    cfg.sim.shards = 1;
    metrics::SimResult a, b;
    if (i % 2 == 0) {
      const double t0 = cpu_seconds();
      a = config::run_experiment(cfg);
      const double t1 = cpu_seconds();
      b = config::run_experiment(cfg);
      a_cpu += t1 - t0;
      b_cpu += cpu_seconds() - t1;
    } else {
      const double t0 = cpu_seconds();
      b = config::run_experiment(cfg);
      const double t1 = cpu_seconds();
      a = config::run_experiment(cfg);
      b_cpu += t1 - t0;
      a_cpu += cpu_seconds() - t1;
    }
    out.baseline_cps = std::max(out.baseline_cps, a.cycles_per_second);
  }
  if (a_cpu > 0.0) out.overhead_pct = (b_cpu / a_cpu - 1.0) * 100.0;
  return out;
}

/// Best-of-`reps` wall-clock throughput at a shard count.
double best_cps(unsigned shards, double offered, int reps) {
  config::SimConfig cfg = scaling_base();
  cfg.sim.shards = shards;
  cfg.workload.offered_flits_per_node_cycle = offered;
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    best = std::max(best, config::run_experiment(cfg).cycles_per_second);
  }
  return best;
}

/// Fraction of evaluate/commit decisions that were invalidated and
/// re-evaluated inline at a fixed 4-way split (the 16-ary 2-cube's
/// maximum genuine partition). Reported per point but not gated: the
/// rate characterises how often the optimistic evaluate phase loses,
/// which grows with load, while correctness never depends on it.
double conflict_rate(double offered) {
  config::SimConfig cfg = scaling_base();
  cfg.sim.shards = 4;
  cfg.workload.offered_flits_per_node_cycle = offered;
  const metrics::SimResult r = config::run_experiment(cfg);
  return static_cast<double>(r.commit_conflicts) /
         static_cast<double>(
             std::max<std::uint64_t>(1, r.commit_decisions));
}

/// One 32-ary 3-cube sweep point through the standard harness: short
/// windows at a drained low load — the point is that 32,768 nodes
/// construct, simulate and tear down cleanly, not a long measurement.
config::SimConfig scale_demo_config() {
  config::SimConfig cfg = config::paper_base();
  cfg.k = 32;  // 32-ary 3-cube: 32,768 nodes
  cfg.workload.offered_flits_per_node_cycle = 0.03;
  cfg.protocol.warmup = 100;
  cfg.protocol.measure = 300;
  cfg.protocol.drain_max = 600;
  cfg.sim.shards = 0;  // one shard per hardware thread
  return cfg;
}

int run_json(const char* path) {
  constexpr double kShard1OverheadMaxPct = 5.0;
  constexpr double kMultishardSpeedupMin = 1.0;
  const int pairs = 12;
  const int reps = 3;
  const unsigned host_cores =
      std::max(1u, std::thread::hardware_concurrency());
  const bool multi_core = host_cores > 1;
  const unsigned multi_shards = std::min(4u, host_cores);
  // Drained, at saturation onset, and past saturation: the 1.2 point
  // exercises the evaluate/commit machinery where speculation conflicts
  // actually occur (a drained network routes almost nothing per cycle).
  const double loads[] = {0.1, 1.0, 1.2};
  constexpr std::size_t kNumLoads = sizeof(loads) / sizeof(loads[0]);

  std::ostream* os = &std::cout;
  std::ofstream file;
  if (path) {
    file.open(path);
    if (!file) {
      obs::logf(obs::LogLevel::Error, "error: cannot write %s\n", path);
      return 1;
    }
    os = &file;
  }

  *os << "{\n  \"schema\": \"wormsim.bench/1\",\n"
      << "  \"bench\": \"shard_scaling\",\n"
      << "  \"config\": \"16-ary 2-cube (256 nodes), uniform, 16-flit "
         "messages, ALO, warmup 300, measure 1000, drain 1200; shard1 "
         "overhead = aggregate CPU-time ratio over "
      << pairs
      << " alternating A/B pairs (both sides run the sequential path by "
         "construction); multi-shard speedup = best-of-"
      << reps
      << " wall-clock cps, gated only on multi-core hosts; "
         "commit_conflict_rate = invalidated decisions / total decisions "
         "of the shard-parallel evaluate + deterministic-commit protocol "
         "at a 4-way split (informational, ungated)\",\n"
      << "  \"host_cores\": " << host_cores << ",\n  \"points\": [\n";
  bool ok = true;
  for (std::size_t i = 0; i < kNumLoads; ++i) {
    const double offered = loads[i];
    obs::logf(obs::LogLevel::Info,
              "# shard_scaling: offered=%.2f (x%d pairs)...\n", offered,
              pairs);
    const OverheadPoint o = measure_shard1_overhead(offered, pairs);
    const double conflicts = conflict_rate(offered);
    double multishard_cps = 0.0, speedup = 0.0;
    if (multi_core) {
      multishard_cps = best_cps(multi_shards, offered, reps);
      const double seq_cps = best_cps(1, offered, reps);
      speedup = seq_cps > 0.0 ? multishard_cps / seq_cps : 0.0;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"offered_flits_node_cycle\": %g, "
                  "\"baseline_cycles_per_second\": %.0f, "
                  "\"shard1_overhead_pct\": %.2f, "
                  "\"commit_conflict_rate\": %.4f",
                  offered, o.baseline_cps, o.overhead_pct, conflicts);
    *os << buf;
    if (multi_core) {
      std::snprintf(buf, sizeof(buf),
                    ", \"shards\": %u, \"multishard_cycles_per_second\": "
                    "%.0f, \"multishard_speedup\": %.2f",
                    multi_shards, multishard_cps, speedup);
      *os << buf;
    }
    *os << "}" << (i + 1 < kNumLoads ? ",\n" : "\n");
    obs::logf(obs::LogLevel::Info,
              "# shard_scaling: offered=%.2f shard1 %+.2f%% (%.0f cps) "
              "conflict rate %.4f%s\n",
              offered, o.overhead_pct, o.baseline_cps, conflicts,
              multi_core ? " + multishard measured" : "");
    ok = ok && o.overhead_pct <= kShard1OverheadMaxPct;
    if (multi_core) ok = ok && speedup >= kMultishardSpeedupMin;
  }
  *os << "  ],\n";

  obs::logf(obs::LogLevel::Info,
            "# shard_scaling: 32-ary 3-cube scale demo (32768 nodes)...\n");
  const config::SimConfig demo = scale_demo_config();
  const config::MemoryFootprint mem = config::estimate_memory(demo);
  const metrics::SimResult r = config::run_experiment(demo);
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "  \"scale_demo\": {\"k\": 32, \"n\": 3, \"nodes\": 32768, "
      "\"offered_flits_node_cycle\": %g, \"total_cycles\": %llu, "
      "\"messages_delivered\": %llu, \"latency_mean\": %.2f, "
      "\"fully_drained\": %s, \"cycles_per_second\": %.0f, "
      "\"estimated_bytes_per_node\": %.1f, \"estimated_total_mib\": %.1f},\n",
      demo.workload.offered_flits_per_node_cycle,
      static_cast<unsigned long long>(r.total_cycles),
      static_cast<unsigned long long>(r.messages_delivered), r.latency_mean,
      r.fully_drained ? "true" : "false", r.cycles_per_second,
      mem.bytes_per_node(),
      static_cast<double>(mem.total_bytes()) / (1024.0 * 1024.0));
  *os << buf;
  obs::logf(obs::LogLevel::Info,
            "# shard_scaling: scale demo done: %llu cycles, %llu delivered, "
            "%.0f cps\n",
            static_cast<unsigned long long>(r.total_cycles),
            static_cast<unsigned long long>(r.messages_delivered),
            r.cycles_per_second);

  *os << "  \"criteria\": {\"shard1_overhead_max_pct\": "
      << kShard1OverheadMaxPct;
  if (multi_core) {
    *os << ", \"multishard_speedup_min\": " << kMultishardSpeedupMin;
  }
  *os << "}\n}\n";
  if (!ok) {
    obs::logf(obs::LogLevel::Error,
              "# shard_scaling: ACCEPTANCE GATE FAILED\n");
  }
  return ok ? 0 : 1;
}

/// Human-readable mode: one line per shard count per load, plus the
/// scale demo.
int run_demo() {
  config::SimConfig cfg = scaling_base();
  std::cout << harness::describe(cfg) << "\n";
  std::printf("offered,shards,cycles_per_second,latency_mean\n");
  for (const double offered : {0.1, 1.0, 1.2}) {
    for (const unsigned shards : {1u, 2u, 4u}) {
      cfg.sim.shards = shards;
      cfg.workload.offered_flits_per_node_cycle = offered;
      const metrics::SimResult r = config::run_experiment(cfg);
      std::printf("%g,%u,%.0f,%.2f\n", offered, shards, r.cycles_per_second,
                  r.latency_mean);
    }
  }
  const config::SimConfig demo = scale_demo_config();
  std::cout << harness::describe(demo) << "\n";
  const metrics::SimResult r = config::run_experiment(demo);
  std::printf("scale_demo: %llu cycles, %llu delivered, %.0f cps\n",
              static_cast<unsigned long long>(r.total_cycles),
              static_cast<unsigned long long>(r.messages_delivered),
              r.cycles_per_second);
  return 0;
}

}  // namespace
}  // namespace wormsim::bench

int main(int argc, char** argv) {
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        return wormsim::bench::run_json(i + 1 < argc ? argv[i + 1]
                                                     : nullptr);
      }
    }
    return wormsim::bench::run_demo();
  } catch (const std::exception& e) {
    wormsim::obs::logf(wormsim::obs::LogLevel::Error, "error: %s\n",
                       e.what());
    return 1;
  }
}
