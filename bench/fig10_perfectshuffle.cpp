// Figure 10: average message latency versus traffic, perfect-shuffle
// permutation (rotate address bits left), 16-flit messages. Paper: >35%
// detected deadlocks at saturation without limitation.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  wormsim::bench::FigureSpec spec;
  spec.figure = "Figure 10";
  spec.expectation =
      "limiters prevent degradation and cut the deadlock-detection rate "
      "drastically; ALO keeps throughput at or near the best";
  spec.pattern = wormsim::traffic::PatternKind::PerfectShuffle;
  spec.msg_len = 16;
  spec.min_load = 0.05;
  spec.max_load = 0.8;
  return wormsim::bench::run_figure(spec, argc, argv);
}
