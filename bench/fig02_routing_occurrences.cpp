// Figure 2: percentage of routing occurrences that satisfy (a) "every
// useful physical output channel has at least one free VC", (b) "at
// least one useful physical channel is completely free", and (a OR b),
// versus network traffic. This is the measurement that motivates the
// ALO mechanism: condition (a) holds for almost all routings at low
// load and degrades as traffic grows; (a OR b) is the better congestion
// indicator.
#include "fig_common.hpp"
#include "util/csv.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Figure 2";
    spec.expectation =
        "rule (a) satisfied for ~100% of routings at low load, "
        "decreasing with traffic; (a OR b) lies above (a) alone";
    config::SimConfig cfg = bench::figure_base(spec, args);
    cfg.sim.limiter.kind = core::LimiterKind::None;

    const auto loads = harness::load_range(
        args.get_double("min-load", 0.05),
        args.get_double("max-load", 0.8),
        static_cast<unsigned>(args.get_uint("loads", 8)));

    std::cout << "# Figure 2 — ALO routing-occurrence probe, uniform "
                 "16-flit messages, no limitation\n";
    std::cout << "# paper expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(cfg) << "\n";
    util::CsvWriter csv(std::cout);
    csv.header({"offered_flits_node_cycle", "accepted_flits_node_cycle",
                "pct_rule_a", "pct_rule_b", "pct_a_or_b", "probe_samples"});
    unsigned index = 0;
    for (const double offered : loads) {
      config::SimConfig point = cfg;
      point.workload.offered_flits_per_node_cycle = offered;
      point.seed = cfg.seed + 0x9e3779b9ULL * ++index;
      const auto r = config::run_experiment(point);
      obs::logf(obs::LogLevel::Info, "  [probe @ %.3f] a=%.1f%% b=%.1f%% either=%.1f%%\n",
                   offered, r.probe.pct_a(), r.probe.pct_b(),
                   r.probe.pct_either());
      csv.row(offered, r.accepted_flits_per_node_cycle, r.probe.pct_a(),
              r.probe.pct_b(), r.probe.pct_either(), r.probe.samples);
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
