// Hardware-cost table: the paper's §3 implementation-cost claim in
// numbers. ALO is pure combinational logic on the VC status register
// (Figure 3); LF needs busy-VC popcounts and a comparator; DRIL adds
// per-node threshold/timer registers. Costs are per router.
#include <cstdio>
#include <exception>
#include <iostream>

#include "core/cost_model.hpp"
#include "util/cli.hpp"
#include "obs/log.hpp"
#include "util/csv.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    std::cout << "# Hardware cost per router (two-input-gate equivalents; "
                 "conventions in core/cost_model.hpp)\n";
    std::cout << "# paper expectation: ALO needs only some logic gates — "
                 "no registers, no comparators; LF/DRIL need counting and "
                 "thresholds\n";
    util::CsvWriter csv(std::cout);
    csv.header({"channels", "vcs", "mechanism", "comb_gates",
                "register_bits", "comparator_bits", "adder_bits",
                "total_gate_equiv"});
    const unsigned shapes[][2] = {{4, 2}, {4, 3}, {6, 3}, {8, 3}, {8, 4}};
    for (const auto& shape : shapes) {
      for (const auto kind :
           {core::LimiterKind::ALO, core::LimiterKind::LF,
            core::LimiterKind::DRIL}) {
        const auto c = core::estimate_cost(kind, shape[0], shape[1]);
        csv.row(shape[0], shape[1], core::limiter_name(kind),
                c.combinational_gates, c.register_bits, c.comparator_bits,
                c.adder_bits, c.total_gate_equivalents());
      }
    }
    (void)args;
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
