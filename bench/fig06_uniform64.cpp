// Figure 6: average message latency versus traffic, uniform
// destinations, 64-flit messages.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  wormsim::bench::FigureSpec spec;
  spec.figure = "Figure 6";
  spec.expectation =
      "same ordering as Figure 5 with longer messages: limiters prevent "
      "saturation collapse; ALO keeps the lowest latency penalty";
  spec.pattern = wormsim::traffic::PatternKind::Uniform;
  spec.msg_len = 64;
  spec.min_load = 0.1;
  spec.max_load = 1.2;
  return wormsim::bench::run_figure(spec, argc, argv);
}
