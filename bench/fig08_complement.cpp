// Figure 8: average message latency versus traffic, complement
// permutation (invert all address bits — bisection-limited), 16-flit
// messages. Without limitation the paper reports deadlock detection
// rates above 70% at saturation for this pattern.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  wormsim::bench::FigureSpec spec;
  spec.figure = "Figure 8";
  spec.expectation =
      "without limitation the network collapses with a very high "
      "detected-deadlock rate (paper: >70%); all limiters restore flat "
      "post-saturation throughput";
  spec.pattern = wormsim::traffic::PatternKind::Complement;
  spec.msg_len = 16;
  spec.min_load = 0.05;
  spec.max_load = 0.7;
  return wormsim::bench::run_figure(spec, argc, argv);
}
