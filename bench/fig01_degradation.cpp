// Figure 1: performance degradation without any injection limitation.
// Latency, accepted traffic and % detected deadlocks versus offered
// traffic on the deadlock-recovery 8-ary 3-cube, uniform 16-flit
// messages. Accepted traffic must collapse below its peak and latency
// and deadlock detections must blow up once offered load passes
// saturation.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  wormsim::bench::FigureSpec spec;
  spec.figure = "Figure 1";
  spec.expectation =
      "beyond saturation, accepted traffic drops below its peak while "
      "latency and the deadlock-detection rate increase sharply";
  spec.pattern = wormsim::traffic::PatternKind::Uniform;
  spec.msg_len = 16;
  spec.limiters = {wormsim::core::LimiterKind::None};
  spec.min_load = 0.1;
  spec.max_load = 1.3;
  spec.loads = 10;
  return wormsim::bench::run_figure(spec, argc, argv);
}
