// Extension experiment: injection limitation under deadlock AVOIDANCE.
//
// The paper's opening claim covers both deadlock-handling families:
// "Both deadlock avoidance and recovery techniques suffer from severe
// performance degradation when the network is close to or beyond
// saturation" — with avoidance, messages do not deadlock but "spend a
// long time blocked in the network" faster than escape paths drain
// them. This bench swaps TFAR+recovery for Duato's protocol (adaptive
// VCs + dateline-DOR escape layer, provably deadlock-free — detection
// disabled) and sweeps None vs ALO.
//
// Expectation: the None curve still degrades beyond saturation (less
// violently than TFAR since escape paths always drain), deadlock
// detections are structurally zero, and ALO again pins throughput at
// the peak.
#include "fig_common.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Extension: deadlock avoidance (Duato's protocol)";
    spec.expectation =
        "degradation beyond saturation also appears under deadlock "
        "avoidance; ALO removes it; zero deadlock detections by "
        "construction";
    config::SimConfig cfg = bench::figure_base(spec, args);
    cfg.sim.algorithm = routing::Algorithm::Duato;
    cfg.sim.detection.enabled = false;  // deadlock-free by construction

    harness::SweepSpec sweep;
    sweep.base = cfg;
    sweep.limiters = {core::LimiterKind::None, core::LimiterKind::ALO};
    sweep.offered_loads = harness::load_range(
        args.get_double("min-load", 0.1), args.get_double("max-load", 1.2),
        static_cast<unsigned>(args.get_uint("loads", 7)));
    sweep.jobs = harness::jobs_flag(args);
    metrics::SweepStats stats;
    sweep.stats = &stats;
    sweep.progress = true;
    harness::ObsSession session(args);
    session.attach(sweep);

    std::cout << "# " << spec.figure << "\n";
    std::cout << "# expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(cfg) << "\n";
    const auto points = harness::run_sweep(sweep);
    harness::write_sweep_csv(std::cout, points);
    obs::logf(obs::LogLevel::Info, "# %s\n", stats.summary().c_str());
    session.finish(sweep, points, &stats);
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
