// Ablation: virtual-channel count and buffer depth.
//
// The paper (§1) notes that adding virtual channels is the classic
// alternative to injection limitation but "makes hardware more complex,
// possibly leading to a reduction in clock frequency" [Chien'93]. This
// bench quantifies the trade: peak accepted traffic and post-saturation
// behaviour for 1..4 VCs (None vs ALO), and for 2/4/8-flit buffers at 3
// VCs.
#include "fig_common.hpp"
#include "util/csv.hpp"

using namespace wormsim;

namespace {

metrics::SimResult run_point(config::SimConfig cfg, unsigned vcs,
                             unsigned buf, core::LimiterKind limiter,
                             double offered, std::uint64_t salt) {
  cfg.sim.net.num_vcs = vcs;
  cfg.sim.net.buf_flits = buf;
  cfg.sim.limiter.kind = limiter;
  cfg.workload.offered_flits_per_node_cycle = offered;
  cfg.seed += 0x9e3779b9ULL * salt;
  return config::run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Ablation: VCs and buffers";
    spec.expectation =
        "more VCs raise the saturation point but do not remove the "
        "collapse; ALO removes the collapse at every VC count";
    config::SimConfig base = bench::figure_base(spec, args);

    const double low = args.get_double("low", 0.55);
    const double high = args.get_double("high", 1.2);

    std::cout << "# Ablation — VC count / buffer depth (uniform 16-flit); "
                 "accepted traffic at a moderate and a beyond-saturation "
                 "load\n";
    std::cout << "# expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(base) << "\n";
    util::CsvWriter csv(std::cout);
    csv.header({"vcs", "buf_flits", "mechanism", "offered",
                "accepted_flits_node_cycle", "latency_avg_cycles",
                "deadlock_pct"});

    std::uint64_t salt = 0;
    const auto emit = [&](unsigned vcs, unsigned buf,
                          core::LimiterKind limiter, double offered) {
      const auto r = run_point(base, vcs, buf, limiter, offered, ++salt);
      std::fprintf(stderr, "  [vcs=%u buf=%u %s @ %.2f] accepted=%.3f\n", vcs,
                   buf, std::string(core::limiter_name(limiter)).c_str(),
                   offered, r.accepted_flits_per_node_cycle);
      csv.row(vcs, buf, core::limiter_name(limiter), offered,
              r.accepted_flits_per_node_cycle, r.latency_mean,
              r.deadlock_pct);
    };

    for (const unsigned vcs : {1u, 2u, 3u, 4u}) {
      for (const auto limiter :
           {core::LimiterKind::None, core::LimiterKind::ALO}) {
        emit(vcs, base.sim.net.buf_flits, limiter, low);
        emit(vcs, base.sim.net.buf_flits, limiter, high);
      }
    }
    for (const unsigned buf : {2u, 4u, 8u}) {
      for (const auto limiter :
           {core::LimiterKind::None, core::LimiterKind::ALO}) {
        emit(3, buf, limiter, high);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
