// Ablation: virtual-channel count and buffer depth.
//
// The paper (§1) notes that adding virtual channels is the classic
// alternative to injection limitation but "makes hardware more complex,
// possibly leading to a reduction in clock frequency" [Chien'93]. This
// bench quantifies the trade: peak accepted traffic and post-saturation
// behaviour for 1..4 VCs (None vs ALO), and for 2/4/8-flit buffers at 3
// VCs.
#include <mutex>
#include <vector>

#include "fig_common.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace wormsim;

namespace {

metrics::SimResult run_point(config::SimConfig cfg, unsigned vcs,
                             unsigned buf, core::LimiterKind limiter,
                             double offered, std::uint64_t stream) {
  cfg.sim.net.num_vcs = vcs;
  cfg.sim.net.buf_flits = buf;
  cfg.sim.limiter.kind = limiter;
  cfg.workload.offered_flits_per_node_cycle = offered;
  cfg.seed = util::derive_stream_seed(cfg.seed, stream);
  return config::run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Ablation: VCs and buffers";
    spec.expectation =
        "more VCs raise the saturation point but do not remove the "
        "collapse; ALO removes the collapse at every VC count";
    config::SimConfig base = bench::figure_base(spec, args);

    const double low = args.get_double("low", 0.55);
    const double high = args.get_double("high", 1.2);

    std::cout << "# Ablation — VC count / buffer depth (uniform 16-flit); "
                 "accepted traffic at a moderate and a beyond-saturation "
                 "load\n";
    std::cout << "# expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(base) << "\n";
    util::CsvWriter csv(std::cout);
    csv.header({"vcs", "buf_flits", "mechanism", "offered",
                "accepted_flits_node_cycle", "latency_avg_cycles",
                "deadlock_pct"});

    // Enumerate the grid first (the enumeration order fixes both the
    // row order and each point's RNG stream), then run the points on
    // the shared thread pool and emit rows from their slots.
    struct Cell {
      unsigned vcs;
      unsigned buf;
      core::LimiterKind limiter;
      double offered;
    };
    std::vector<Cell> grid;
    for (const unsigned vcs : {1u, 2u, 3u, 4u}) {
      for (const auto limiter :
           {core::LimiterKind::None, core::LimiterKind::ALO}) {
        grid.push_back({vcs, base.sim.net.buf_flits, limiter, low});
        grid.push_back({vcs, base.sim.net.buf_flits, limiter, high});
      }
    }
    for (const unsigned buf : {2u, 4u, 8u}) {
      for (const auto limiter :
           {core::LimiterKind::None, core::LimiterKind::ALO}) {
        grid.push_back({3, buf, limiter, high});
      }
    }

    std::vector<metrics::SimResult> results(grid.size());
    std::mutex progress_mu;
    util::parallel_for(
        grid.size(), harness::jobs_flag(args), [&](std::size_t i) {
          const Cell& c = grid[i];
          results[i] = run_point(base, c.vcs, c.buf, c.limiter, c.offered, i);
          const std::lock_guard<std::mutex> lock(progress_mu);
          obs::logf(obs::LogLevel::Info, "  [vcs=%u buf=%u %s @ %.2f] accepted=%.3f\n",
                       c.vcs, c.buf,
                       std::string(core::limiter_name(c.limiter)).c_str(),
                       c.offered, results[i].accepted_flits_per_node_cycle);
        });
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const Cell& c = grid[i];
      csv.row(c.vcs, c.buf, core::limiter_name(c.limiter), c.offered,
              results[i].accepted_flits_per_node_cycle,
              results[i].latency_mean, results[i].deadlock_pct);
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
