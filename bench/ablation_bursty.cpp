// Extension experiment: bursty application traffic.
//
// The paper's introduction motivates saturation prevention with studies
// showing that "network traffic is bursty and peak traffic may saturate
// the network" [Flich'99, Silla'98], transiently driving the network
// into the degraded regime even when the *average* load is moderate.
// This bench uses a Markov-modulated on/off workload whose long-run
// average sits below uniform saturation but whose burst rate sits well
// above it, and compares None vs ALO on delivered traffic and latency
// tails.
//
// Expectation: with bursts, the unrestricted network repeatedly enters
// the degraded regime (deadlock detections, latency tail blow-up) and
// delivers less than ALO; with smooth traffic at the same mean both
// mechanisms behave identically.
#include <mutex>
#include <vector>

#include "fig_common.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Extension: bursty traffic";
    spec.expectation =
        "bursty peaks saturate the network: None degrades (deadlocks, "
        "huge p99), ALO absorbs the bursts into source queues";
    config::SimConfig base = bench::figure_base(spec, args);
    // Long window: synchronized bursts have a ~burst-len/duty period, so
    // the measurement must span many of them.
    base.protocol.measure =
        args.get_uint("measure", std::max<std::uint64_t>(
                                     base.protocol.measure, 24000));
    base.workload.bursty.duty_cycle = args.get_double("duty", 0.3);
    base.workload.bursty.mean_burst_cycles =
        args.get_double("burst-len", 800.0);
    // Application-phase behaviour: the whole machine bursts together.
    // (Independent per-node bursts average out at 512 nodes and never
    // saturate the network; pass --sync=false to see that control.)
    base.workload.bursty.synchronized = args.get_bool("sync", true);

    const auto means = harness::load_range(
        args.get_double("min-load", 0.2), args.get_double("max-load", 0.5),
        static_cast<unsigned>(args.get_uint("loads", 4)));

    std::cout << "# Extension — bursty on/off traffic (duty "
              << base.workload.bursty.duty_cycle << ", mean burst "
              << base.workload.bursty.mean_burst_cycles
              << " cycles): burst-rate = mean/duty\n";
    std::cout << "# expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(base) << "\n";
    util::CsvWriter csv(std::cout);
    csv.header({"process", "mechanism", "mean_offered", "burst_offered",
                "accepted_flits_node_cycle", "latency_avg_cycles",
                "latency_p99_cycles", "deadlock_pct"});

    struct Cell {
      const char* process;
      core::LimiterKind limiter;
      double mean;
      std::uint64_t load_stream;  // seed stream: depends on the load ONLY
    };
    std::vector<Cell> grid;
    for (const char* process : {"exponential", "bursty"}) {
      for (const auto limiter :
           {core::LimiterKind::None, core::LimiterKind::ALO}) {
        for (std::size_t li = 0; li < means.size(); ++li) {
          grid.push_back({process, limiter, means[li], li});
        }
      }
    }

    std::vector<metrics::SimResult> results(grid.size());
    std::mutex progress_mu;
    util::parallel_for(
        grid.size(), harness::jobs_flag(args), [&](std::size_t i) {
          const Cell& c = grid[i];
          config::SimConfig cfg = base;
          cfg.workload.process = traffic::parse_process(c.process);
          cfg.workload.offered_flits_per_node_cycle = c.mean;
          cfg.sim.limiter.kind = c.limiter;
          // Seed depends on the load only: mechanisms compared at the
          // same point see the identical workload and burst schedule.
          cfg.seed = util::derive_stream_seed(base.seed, c.load_stream);
          results[i] = config::run_experiment(cfg);
          const std::lock_guard<std::mutex> lock(progress_mu);
          obs::logf(obs::LogLevel::Info,
                       "  [%s/%s @ %.2f] accepted=%.3f p99=%.0f dl=%.2f%%\n",
                       c.process,
                       std::string(core::limiter_name(c.limiter)).c_str(),
                       c.mean, results[i].accepted_flits_per_node_cycle,
                       results[i].latency_p99, results[i].deadlock_pct);
        });
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const Cell& c = grid[i];
      const auto& r = results[i];
      const double burst = traffic::parse_process(c.process) ==
                                   traffic::ProcessKind::Bursty
                               ? c.mean / base.workload.bursty.duty_cycle
                               : c.mean;
      csv.row(c.process, core::limiter_name(c.limiter), c.mean, burst,
              r.accepted_flits_per_node_cycle, r.latency_mean,
              r.latency_p99, r.deadlock_pct);
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
