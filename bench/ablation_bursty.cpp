// Extension experiment: bursty application traffic.
//
// The paper's introduction motivates saturation prevention with studies
// showing that "network traffic is bursty and peak traffic may saturate
// the network" [Flich'99, Silla'98], transiently driving the network
// into the degraded regime even when the *average* load is moderate.
// This bench uses a Markov-modulated on/off workload whose long-run
// average sits below uniform saturation but whose burst rate sits well
// above it, and compares None vs ALO on delivered traffic and latency
// tails.
//
// Expectation: with bursts, the unrestricted network repeatedly enters
// the degraded regime (deadlock detections, latency tail blow-up) and
// delivers less than ALO; with smooth traffic at the same mean both
// mechanisms behave identically.
#include "fig_common.hpp"
#include "util/csv.hpp"

using namespace wormsim;

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Extension: bursty traffic";
    spec.expectation =
        "bursty peaks saturate the network: None degrades (deadlocks, "
        "huge p99), ALO absorbs the bursts into source queues";
    config::SimConfig base = bench::figure_base(spec, args);
    // Long window: synchronized bursts have a ~burst-len/duty period, so
    // the measurement must span many of them.
    base.protocol.measure =
        args.get_uint("measure", std::max<std::uint64_t>(
                                     base.protocol.measure, 24000));
    base.workload.bursty.duty_cycle = args.get_double("duty", 0.3);
    base.workload.bursty.mean_burst_cycles =
        args.get_double("burst-len", 800.0);
    // Application-phase behaviour: the whole machine bursts together.
    // (Independent per-node bursts average out at 512 nodes and never
    // saturate the network; pass --sync=false to see that control.)
    base.workload.bursty.synchronized = args.get_bool("sync", true);

    const auto means = harness::load_range(
        args.get_double("min-load", 0.2), args.get_double("max-load", 0.5),
        static_cast<unsigned>(args.get_uint("loads", 4)));

    std::cout << "# Extension — bursty on/off traffic (duty "
              << base.workload.bursty.duty_cycle << ", mean burst "
              << base.workload.bursty.mean_burst_cycles
              << " cycles): burst-rate = mean/duty\n";
    std::cout << "# expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(base) << "\n";
    util::CsvWriter csv(std::cout);
    csv.header({"process", "mechanism", "mean_offered", "burst_offered",
                "accepted_flits_node_cycle", "latency_avg_cycles",
                "latency_p99_cycles", "deadlock_pct"});

    for (const char* process : {"exponential", "bursty"}) {
      for (const auto limiter :
           {core::LimiterKind::None, core::LimiterKind::ALO}) {
        std::uint64_t load_index = 0;
        for (const double mean : means) {
          config::SimConfig cfg = base;
          cfg.workload.process = traffic::parse_process(process);
          cfg.workload.offered_flits_per_node_cycle = mean;
          cfg.sim.limiter.kind = limiter;
          // Seed depends on the load only: mechanisms compared at the
          // same point see the identical workload and burst schedule.
          cfg.seed = base.seed + 0x9e3779b9ULL * ++load_index;
          const auto r = config::run_experiment(cfg);
          const double burst =
              cfg.workload.process == traffic::ProcessKind::Bursty
                  ? mean / cfg.workload.bursty.duty_cycle
                  : mean;
          std::fprintf(stderr,
                       "  [%s/%s @ %.2f] accepted=%.3f p99=%.0f dl=%.2f%%\n",
                       process,
                       std::string(core::limiter_name(limiter)).c_str(), mean,
                       r.accepted_flits_per_node_cycle, r.latency_p99,
                       r.deadlock_pct);
          csv.row(process, core::limiter_name(limiter), mean, burst,
                  r.accepted_flits_per_node_cycle, r.latency_mean,
                  r.latency_p99, r.deadlock_pct);
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
