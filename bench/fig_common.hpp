// Shared scaffolding for the per-figure bench binaries.
//
// Every figure bench reproduces one figure of the paper at full scale
// (8-ary 3-cube, 512 nodes) by default. Environment/flags:
//   WORMSIM_FAST=1        shrink to the 64-node preset (CI-sized)
//   WORMSIM_JOBS=N        default sweep parallelism (--jobs overrides)
//   --jobs N              worker threads (0 = auto, 1 = serial engine)
//   --loads N             number of offered-load points (default 7)
//   --min-load/--max-load sweep range in flits/node/cycle
//   --warmup/--measure/--drain, --k/--n/--vcs/--msg-len/--pattern/--seed
//   --core dense|active   cycle-loop implementation (default: active;
//                         results are bit-identical, only speed differs)
//   --flow-control SCHEME wormhole (default) | credit | vct; credit adds
//                         --credit-delay N return-latency cycles, vct
//                         needs --buf >= the longest message

//   --faults SPEC         fault schedule: a file path or a preset like
//                         transient:2@5000+2000 (kill 2 random links at
//                         cycle 5000, restore them 2000 cycles later)
//   --log-level LEVEL     stderr verbosity (error|warn|info|debug);
//                         WORMSIM_LOG sets the default
//   --metrics-out FILE    JSONL telemetry, one record per sweep point
//                         (with latency histogram + saturation-onset
//                         verdicts from the online statistics engine)
//   --timeseries-out FILE wormsim.timeseries/1 JSONL: one record per
//                         recording window of every sweep point
//   --online-window N     online recording-window width in cycles
//                         (default 256)
//   --profile [N]         per-phase cycle-loop self-profiler, timing
//                         every N-th cycle (bare flag: 64); results are
//                         wall-clock and live under telemetry "perf"
//   --trace FILE          Chrome trace-event JSON (open in Perfetto)
//   --spatial-out PREFIX  per-channel/per-node heatmap CSVs from one
//                         extra instrumented run (--spatial-load,
//                         --spatial-limiter select the point)
//
// Output: a banner line, the expectation note from the paper, then CSV
// on stdout; per-point progress/ETA and the sweep's wall-clock/points-
// per-second summary on stderr. CSV contents are identical for every
// job count (per-point seed streams are split from the base seed by
// index) and unchanged by any of the observability flags.
#pragma once

#include <exception>
#include <iostream>
#include <string>

#include "harness/sweep.hpp"
#include "harness/telemetry.hpp"
#include "obs/log.hpp"
#include "util/cli.hpp"

namespace wormsim::bench {

struct FigureSpec {
  const char* figure;       // e.g. "Figure 5"
  const char* expectation;  // the paper's qualitative claim
  traffic::PatternKind pattern = traffic::PatternKind::Uniform;
  std::uint32_t msg_len = 16;
  std::vector<core::LimiterKind> limiters = {
      core::LimiterKind::None, core::LimiterKind::ALO, core::LimiterKind::LF,
      core::LimiterKind::DRIL};
  double min_load = 0.1;
  double max_load = 1.2;
  unsigned loads = 7;
};

inline config::SimConfig figure_base(const FigureSpec& spec,
                                     const util::ArgParser& args) {
  config::SimConfig cfg = config::paper_base();
  // Bench-sized windows: long enough for ~100k messages per point at
  // 512 nodes, short enough to sweep dozens of points.
  cfg.protocol.warmup = 3000;
  cfg.protocol.measure = 8000;
  cfg.protocol.drain_max = 8000;
  cfg.workload.pattern = spec.pattern;
  cfg.workload.length.fixed = spec.msg_len;
  harness::apply_common_flags(cfg, args);
  harness::apply_scale_env(cfg);
  // After scale env on purpose: WORMSIM_FAST shrinks the topology, and
  // fault presets pick links from the final one.
  harness::apply_fault_flag(cfg, args);
  return cfg;
}

/// Standard latency/throughput/deadlock sweep figure.
inline int run_figure(const FigureSpec& spec, int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    config::SimConfig cfg = figure_base(spec, args);
    harness::SweepSpec sweep;
    sweep.base = cfg;
    sweep.limiters = spec.limiters;
    sweep.offered_loads = harness::load_range(
        args.get_double("min-load", spec.min_load),
        args.get_double("max-load", spec.max_load),
        static_cast<unsigned>(args.get_uint("loads", spec.loads)));
    sweep.jobs = harness::jobs_flag(args);
    metrics::SweepStats stats;
    sweep.stats = &stats;
    sweep.progress = true;
    harness::ObsSession session(args);
    session.attach(sweep);

    std::cout << "# " << spec.figure << " — "
              << traffic::pattern_name(spec.pattern) << " traffic, "
              << spec.msg_len << "-flit messages\n";
    std::cout << "# paper expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(cfg) << "\n";
    const auto points = harness::run_sweep(sweep);
    harness::write_sweep_csv(std::cout, points);
    obs::logf(obs::LogLevel::Info, "# %s\n", stats.summary().c_str());
    session.finish(sweep, points, &stats);
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace wormsim::bench
