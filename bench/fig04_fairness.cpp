// Figure 4: differences in sent messages per node (percent deviation
// from the all-node mean) for the LF, DRIL and ALO mechanisms. Uniform
// destinations, 64-flit messages, offered traffic 0.65 flits/node/cycle
// (a saturating load where the limiters actively throttle).
//
// Paper expectation: ALO within about ±3%, LF up to about ±20%, DRIL
// with some nodes 60–80% below the mean.
#include <cmath>

#include "fig_common.hpp"
#include "util/csv.hpp"

using namespace wormsim;

namespace {

struct FairnessRun {
  std::vector<double> deviations;
  double max_abs = 0.0;
  double jain = 1.0;
  double mean_msgs = 0.0;
  /// Pure sampling noise floor: Poisson-ish per-node counts give a
  /// relative sigma of 100/sqrt(mean) percent; deviations below ~3x
  /// this are indistinguishable from noise. Structural unfairness (the
  /// paper's DRIL result) sits far above it.
  double noise_floor_sigma_pct = 0.0;
};

FairnessRun run_fairness(config::SimConfig cfg, core::LimiterKind kind) {
  cfg.sim.limiter.kind = kind;
  auto sim = config::build_simulator(cfg);
  sim->run(cfg.protocol);
  const auto& fairness = sim->collector().fairness();
  FairnessRun out;
  const auto nodes = sim->topology().num_nodes();
  out.deviations.reserve(nodes);
  for (topo::NodeId n = 0; n < nodes; ++n) {
    out.deviations.push_back(fairness.deviation_pct(n));
  }
  out.max_abs = fairness.max_abs_deviation_pct();
  out.jain = fairness.jain_index();
  out.mean_msgs = fairness.mean();
  out.noise_floor_sigma_pct =
      out.mean_msgs > 0 ? 100.0 / std::sqrt(out.mean_msgs) : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Figure 4";
    spec.msg_len = 64;
    spec.expectation =
        "ALO per-node sent-message deviation within a few percent; LF up "
        "to ~20%; DRIL grossly unfair (some nodes 60-80% under the mean)";
    config::SimConfig cfg = bench::figure_base(spec, args);
    // Long window so per-node message counts are statistically stable
    // (the sampling noise floor is printed alongside the results).
    cfg.protocol.measure =
        args.get_uint("measure", std::max<std::uint64_t>(
                                     cfg.protocol.measure, 30000));
    cfg.workload.offered_flits_per_node_cycle =
        args.get_double("offered", 0.65);
    cfg.protocol.drain_max = 4000;
    // DRIL's unfairness comes from thresholds staying frozen at the
    // node-dependent values sampled when each node first saw saturation
    // (paper §4.2). The library default relaxes thresholds quickly,
    // trading that unfairness for throughput; this figure uses the
    // faithful slow relaxation so the published behaviour is visible.
    cfg.sim.limiter.dril_relax_period = args.get_uint("dril-relax", 16384);

    std::cout << "# Figure 4 — per-node sent-message deviation (%), "
                 "uniform, 64-flit, offered "
              << cfg.workload.offered_flits_per_node_cycle
              << " flits/node/cycle\n";
    std::cout << "# paper expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(cfg) << "\n";

    const auto lf = run_fairness(cfg, core::LimiterKind::LF);
    obs::logf(obs::LogLevel::Info, "  [lf]   max|dev|=%.1f%% jain=%.4f\n", lf.max_abs,
                 lf.jain);
    const auto dril = run_fairness(cfg, core::LimiterKind::DRIL);
    obs::logf(obs::LogLevel::Info, "  [dril] max|dev|=%.1f%% jain=%.4f\n", dril.max_abs,
                 dril.jain);
    const auto alo = run_fairness(cfg, core::LimiterKind::ALO);
    obs::logf(obs::LogLevel::Info, "  [alo]  max|dev|=%.1f%% jain=%.4f\n", alo.max_abs,
                 alo.jain);
    std::printf(
        "# sampling noise floor: %.0f msgs/node -> sigma = %.1f%% "
        "(deviations under ~%.0f%% are statistical noise)\n",
        alo.mean_msgs, alo.noise_floor_sigma_pct,
        3.0 * alo.noise_floor_sigma_pct);

    util::CsvWriter csv(std::cout);
    csv.header({"node", "lf_dev_pct", "dril_dev_pct", "alo_dev_pct"});
    for (std::size_t n = 0; n < alo.deviations.size(); ++n) {
      csv.row(n, lf.deviations[n], dril.deviations[n], alo.deviations[n]);
    }
    csv.row("max_abs", lf.max_abs, dril.max_abs, alo.max_abs);
    csv.row("jain_index", lf.jain, dril.jain, alo.jain);
    csv.row("noise_floor_sigma", lf.noise_floor_sigma_pct,
            dril.noise_floor_sigma_pct, alo.noise_floor_sigma_pct);
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
