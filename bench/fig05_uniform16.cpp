// Figure 5: average message latency and its standard deviation versus
// traffic, uniform destinations, 16-flit messages, for None / ALO / LF
// / DRIL.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  wormsim::bench::FigureSpec spec;
  spec.figure = "Figure 5";
  spec.expectation =
      "all three limiters remove the performance degradation; ALO shows "
      "the lowest latency penalty and the highest sustained throughput; "
      "deadlock detections drop to negligible values";
  spec.pattern = wormsim::traffic::PatternKind::Uniform;
  spec.msg_len = 16;
  spec.min_load = 0.1;
  spec.max_load = 1.2;
  return wormsim::bench::run_figure(spec, argc, argv);
}
