// Figure 7: average message latency versus traffic, butterfly
// permutation (swap most/least significant address bits), 16-flit
// messages.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  wormsim::bench::FigureSpec spec;
  spec.figure = "Figure 7";
  spec.expectation =
      "injection limitation is mandatory to avoid severe degradation; "
      "ALO reaches the highest (or near-highest) throughput";
  spec.pattern = wormsim::traffic::PatternKind::Butterfly;
  spec.msg_len = 16;
  spec.min_load = 0.05;
  spec.max_load = 0.8;
  return wormsim::bench::run_figure(spec, argc, argv);
}
