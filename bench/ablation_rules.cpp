// Ablation: the two ALO rules in isolation.
//
// The paper's Figure 2 argues rule (b) ("some useful channel completely
// free") alone is a worse congestion indicator, and that (a OR b)
// improves on rule (a) alone by not blocking injection when one useful
// channel is busy while another is totally idle. This bench runs
// rule-a-only, rule-b-only and full ALO side by side (plus None as the
// reference) and prints the usual sweep columns.
#include <memory>
#include <mutex>
#include <vector>

#include "core/alo.hpp"
#include "fig_common.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace wormsim;

namespace {

enum class RuleSet { AOnly, BOnly, Both };

class RuleAblationLimiter final : public core::InjectionLimiter {
 public:
  explicit RuleAblationLimiter(RuleSet rules) : rules_(rules) {}

  bool allow(const core::InjectionRequest& req,
             const core::ChannelStatus& status) override {
    const auto cond = core::evaluate_alo(status, req.node,
                                         req.route->useful_phys_mask);
    switch (rules_) {
      case RuleSet::AOnly: return cond.all_useful_partially_free;
      case RuleSet::BOnly: return cond.any_useful_completely_free ||
                                  req.route->useful_phys_mask == 0;
      case RuleSet::Both: return cond.allow();
    }
    return true;
  }
  core::LimiterKind kind() const noexcept override {
    return core::LimiterKind::ALO;
  }

 private:
  RuleSet rules_;
};

metrics::SimResult run_point(const config::SimConfig& cfg,
                             const char* variant) {
  const topo::KAryNCube topo(cfg.k, cfg.n);
  auto workload =
      std::make_unique<traffic::Workload>(topo, cfg.workload, cfg.seed);
  sim::Simulator sim(topo, cfg.sim, std::move(workload));
  const std::string v(variant);
  if (v == "rule-a") {
    sim.set_limiter(std::make_unique<RuleAblationLimiter>(RuleSet::AOnly));
  } else if (v == "rule-b") {
    sim.set_limiter(std::make_unique<RuleAblationLimiter>(RuleSet::BOnly));
  } else if (v == "alo") {
    sim.set_limiter(std::make_unique<RuleAblationLimiter>(RuleSet::Both));
  }  // "none": keep the default no-limit mechanism
  return sim.run(cfg.protocol);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParser args(argc, argv);
    bench::FigureSpec spec;
    spec.figure = "Ablation: ALO rules";
    spec.expectation =
        "rule (a) alone over-throttles once any useful channel fills; "
        "rule (b) alone under-throttles; (a OR b) = ALO dominates both";
    config::SimConfig base = bench::figure_base(spec, args);

    const auto loads = harness::load_range(
        args.get_double("min-load", 0.3), args.get_double("max-load", 1.2),
        static_cast<unsigned>(args.get_uint("loads", 5)));

    std::cout << "# Ablation — ALO rule decomposition, uniform 16-flit\n";
    std::cout << "# expectation: " << spec.expectation << "\n";
    std::cout << harness::describe(base) << "\n";
    util::CsvWriter csv(std::cout);
    csv.header({"variant", "offered_flits_node_cycle", "latency_avg_cycles",
                "accepted_flits_node_cycle", "deadlock_pct",
                "avg_queue_len"});

    // Flatten the variant × load grid and run the points on the shared
    // thread pool; slots are indexed by grid position (which also fixes
    // each point's RNG stream), so rows print in the serial order for
    // any --jobs value.
    struct Cell {
      const char* variant;
      double offered;
    };
    std::vector<Cell> grid;
    for (const char* variant : {"none", "rule-a", "rule-b", "alo"}) {
      for (const double offered : loads) grid.push_back({variant, offered});
    }
    std::vector<metrics::SimResult> results(grid.size());
    std::mutex progress_mu;
    util::parallel_for(
        grid.size(), harness::jobs_flag(args), [&](std::size_t i) {
          config::SimConfig cfg = base;
          cfg.workload.offered_flits_per_node_cycle = grid[i].offered;
          cfg.seed = util::derive_stream_seed(base.seed, i);
          results[i] = run_point(cfg, grid[i].variant);
          const std::lock_guard<std::mutex> lock(progress_mu);
          obs::logf(obs::LogLevel::Info, "  [%s @ %.3f] accepted=%.3f latency=%.1f\n",
                       grid[i].variant, grid[i].offered,
                       results[i].accepted_flits_per_node_cycle,
                       results[i].latency_mean);
        });
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& r = results[i];
      csv.row(grid[i].variant, grid[i].offered, r.latency_mean,
              r.accepted_flits_per_node_cycle, r.deadlock_pct,
              r.avg_queue_len);
    }
    return 0;
  } catch (const std::exception& e) {
    obs::logf(obs::LogLevel::Error, "error: %s\n", e.what());
    return 1;
  }
}
