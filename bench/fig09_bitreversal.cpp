// Figure 9: average message latency versus traffic, bit-reversal
// permutation, 16-flit messages. Paper: >20% detected deadlocks at
// saturation without limitation.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  wormsim::bench::FigureSpec spec;
  spec.figure = "Figure 9";
  spec.expectation =
      "limiters prevent degradation; ALO competitive on throughput "
      "though another mechanism may edge it out on this pattern";
  spec.pattern = wormsim::traffic::PatternKind::BitReversal;
  spec.msg_len = 16;
  spec.min_load = 0.05;
  spec.max_load = 0.8;
  return wormsim::bench::run_figure(spec, argc, argv);
}
