#!/usr/bin/env python3
"""Validate a bench JSON file against its embedded `criteria` block.

Usage: check_bench.py BENCH_JSON [BENCH_JSON ...]

Each bench binary that emits machine-readable output (today:
`micro_mechanism --hotpath-json` and `--obs-overhead-json`) embeds the
pass/fail thresholds it was built with in a top-level `criteria` object.
This script re-applies those thresholds to the measured points, so a
perf regression in a freshly produced file fails loudly even if the
producing binary's own exit code was ignored (e.g. inside a `for` loop
in run_benches.sh).

Criteria keys are interpreted as follows:

  *_max_pct   -> every point's matching `<stem>_pct` field must be <=
                 the threshold (e.g. tracing_overhead_max_pct checks
                 point["tracing_overhead_pct"]).
  low_load_speedup_min    -> active_speedup of the point with the
                 smallest offered_flits_node_cycle must be >= threshold.
  saturation_speedup_min  -> active_speedup of the point with the
                 largest offered_flits_node_cycle must be >= threshold.
  *_max       -> every point's `<stem>` field must be <= the threshold
                 (e.g. recovery_cycles_max checks
                 point["recovery_cycles"]).
  *_min       -> every point's `<stem>` field must be >= the threshold
                 (e.g. post_rebuild_cps_ratio_min checks
                 point["post_rebuild_cps_ratio"]).

Unknown criteria keys are an error: a renamed gate must not silently
stop being enforced. Exits non-zero on any violation.
"""

import json
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    return 1


def check_speedup_point(data, point, key, threshold, regime):
    speedup = point.get("active_speedup")
    if speedup is None:
        return fail(f"{regime} point has no active_speedup field")
    if speedup < threshold:
        return fail(
            f"{key}: active_speedup {speedup:.3f} < {threshold} at "
            f"offered load {point.get('offered_flits_node_cycle')}"
        )
    print(
        f"check_bench: ok: {key}: active_speedup {speedup:.3f} >= "
        f"{threshold} ({regime})"
    )
    return 0


def check_file(path):
    with open(path) as f:
        data = json.load(f)

    criteria = data.get("criteria")
    if not isinstance(criteria, dict) or not criteria:
        return fail(f"{path}: no embedded criteria block")
    points = data.get("points")
    if not isinstance(points, list) or not points:
        return fail(f"{path}: no points to validate")

    bench = data.get("bench", "?")
    print(f"check_bench: {path}: bench={bench}, {len(points)} points, "
          f"criteria={json.dumps(criteria)}")

    rc = 0
    by_load = sorted(
        points, key=lambda p: p.get("offered_flits_node_cycle", 0.0)
    )
    for key, threshold in criteria.items():
        if key == "low_load_speedup_min":
            rc |= check_speedup_point(data, by_load[0], key, threshold,
                                      "low load")
        elif key == "saturation_speedup_min":
            rc |= check_speedup_point(data, by_load[-1], key, threshold,
                                      "saturation")
        elif key.endswith("_max_pct"):
            field = key[: -len("_max_pct")] + "_pct"
            for point in points:
                value = point.get(field)
                load = point.get("offered_flits_node_cycle")
                if value is None:
                    rc |= fail(f"{key}: point at load {load} has no "
                               f"{field} field")
                elif value > threshold:
                    rc |= fail(f"{key}: {field} {value:.2f} > {threshold} "
                               f"at offered load {load}")
                else:
                    print(f"check_bench: ok: {key}: {field} {value:.2f} "
                          f"<= {threshold} at load {load}")
        elif key.endswith("_max") or key.endswith("_min"):
            # Generic per-point bound: <stem>_max / <stem>_min against
            # point["<stem>"]. Order matters: the named speedup keys and
            # *_max_pct were already matched above.
            is_max = key.endswith("_max")
            field = key[: -len("_max")]
            for point in points:
                value = point.get(field)
                load = point.get("offered_flits_node_cycle")
                if value is None:
                    rc |= fail(f"{key}: point at load {load} has no "
                               f"{field} field")
                elif (value > threshold) if is_max else (value < threshold):
                    op = ">" if is_max else "<"
                    rc |= fail(f"{key}: {field} {value} {op} {threshold} "
                               f"at offered load {load}")
                else:
                    op = "<=" if is_max else ">="
                    print(f"check_bench: ok: {key}: {field} {value} "
                          f"{op} {threshold} at load {load}")
        else:
            rc |= fail(f"{path}: unknown criteria key '{key}'")
    return rc


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_file(path)
    if rc == 0:
        print("check_bench: all criteria satisfied")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
