#!/usr/bin/env python3
"""Validate a bench JSON file against its embedded `criteria` block.

Usage: check_bench.py BENCH_JSON [BENCH_JSON ...]

Each bench binary that emits machine-readable output (today:
`micro_mechanism --hotpath-json` and `--obs-overhead-json`) embeds the
pass/fail thresholds it was built with in a top-level `criteria` object.
This script re-applies those thresholds to the measured points, so a
perf regression in a freshly produced file fails loudly even if the
producing binary's own exit code was ignored (e.g. inside a `for` loop
in run_benches.sh).

Criteria keys are interpreted as follows:

  *_max_pct   -> every point's matching `<stem>_pct` field must be <=
                 the threshold (e.g. tracing_overhead_max_pct checks
                 point["tracing_overhead_pct"]).
  low_load_speedup_min    -> active_speedup of the point with the
                 smallest offered_flits_node_cycle must be >= threshold.
  saturation_speedup_min  -> active_speedup of the point with the
                 largest offered_flits_node_cycle must be >= threshold.
  *_max       -> every point's `<stem>` field must be <= the threshold
                 (e.g. recovery_cycles_max checks
                 point["recovery_cycles"]).
  *_min       -> every point's `<stem>` field must be >= the threshold
                 (e.g. post_rebuild_cps_ratio_min checks
                 point["post_rebuild_cps_ratio"]).

Every file must also carry `"schema": "wormsim.bench/1"` next to the
criteria block, so consumers can detect format drift.

Unknown criteria keys are an error: a renamed gate must not silently
stop being enforced. Exits non-zero on any violation.

`check_bench.py --self-test` validates the checker itself against
synthetic pass/fail fixtures (run from run_benches.sh before any real
file is checked).
"""

import json
import os
import sys
import tempfile

SCHEMA = "wormsim.bench/1"


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    return 1


def check_speedup_point(data, point, key, threshold, regime):
    speedup = point.get("active_speedup")
    if speedup is None:
        return fail(f"{regime} point has no active_speedup field")
    if speedup < threshold:
        return fail(
            f"{key}: active_speedup {speedup:.3f} < {threshold} at "
            f"offered load {point.get('offered_flits_node_cycle')}"
        )
    print(
        f"check_bench: ok: {key}: active_speedup {speedup:.3f} >= "
        f"{threshold} ({regime})"
    )
    return 0


def check_file(path):
    with open(path) as f:
        data = json.load(f)

    schema = data.get("schema")
    if schema != SCHEMA:
        return fail(f"{path}: schema is {schema!r}, expected {SCHEMA!r}")
    criteria = data.get("criteria")
    if not isinstance(criteria, dict) or not criteria:
        return fail(f"{path}: no embedded criteria block")
    points = data.get("points")
    if not isinstance(points, list) or not points:
        return fail(f"{path}: no points to validate")

    bench = data.get("bench", "?")
    print(f"check_bench: {path}: bench={bench}, {len(points)} points, "
          f"criteria={json.dumps(criteria)}")

    rc = 0
    by_load = sorted(
        points, key=lambda p: p.get("offered_flits_node_cycle", 0.0)
    )
    for key, threshold in criteria.items():
        if key == "low_load_speedup_min":
            rc |= check_speedup_point(data, by_load[0], key, threshold,
                                      "low load")
        elif key == "saturation_speedup_min":
            rc |= check_speedup_point(data, by_load[-1], key, threshold,
                                      "saturation")
        elif key.endswith("_max_pct"):
            field = key[: -len("_max_pct")] + "_pct"
            for point in points:
                value = point.get(field)
                load = point.get("offered_flits_node_cycle")
                if value is None:
                    rc |= fail(f"{key}: point at load {load} has no "
                               f"{field} field")
                elif value > threshold:
                    rc |= fail(f"{key}: {field} {value:.2f} > {threshold} "
                               f"at offered load {load}")
                else:
                    print(f"check_bench: ok: {key}: {field} {value:.2f} "
                          f"<= {threshold} at load {load}")
        elif key.endswith("_max") or key.endswith("_min"):
            # Generic per-point bound: <stem>_max / <stem>_min against
            # point["<stem>"]. Order matters: the named speedup keys and
            # *_max_pct were already matched above.
            is_max = key.endswith("_max")
            field = key[: -len("_max")]
            for point in points:
                value = point.get(field)
                load = point.get("offered_flits_node_cycle")
                if value is None:
                    rc |= fail(f"{key}: point at load {load} has no "
                               f"{field} field")
                elif (value > threshold) if is_max else (value < threshold):
                    op = ">" if is_max else "<"
                    rc |= fail(f"{key}: {field} {value} {op} {threshold} "
                               f"at offered load {load}")
                else:
                    op = "<=" if is_max else ">="
                    print(f"check_bench: ok: {key}: {field} {value} "
                          f"{op} {threshold} at load {load}")
        else:
            rc |= fail(f"{path}: unknown criteria key '{key}'")
    return rc


def _expect(fixture, want_rc, label):
    """Run check_file on an in-memory fixture; 0 if its verdict matches."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as f:
        json.dump(fixture, f)
        path = f.name
    try:
        got = check_file(path)
    finally:
        os.unlink(path)
    ok = (got == 0) == (want_rc == 0)
    verdict = "pass" if got == 0 else "fail"
    wanted = "pass" if want_rc == 0 else "fail"
    print(f"check_bench: self-test {'ok' if ok else 'FAIL'}: {label} "
          f"(got {verdict}, wanted {wanted})")
    return 0 if ok else 1


def self_test():
    """Exercise every checker code path on synthetic fixtures."""
    good = {
        "schema": SCHEMA,
        "bench": "synthetic",
        "points": [
            {
                "offered_flits_node_cycle": 0.1,
                "active_speedup": 2.5,
                "x_overhead_pct": 1.0,
                "recovery_cycles": 100,
                "ratio": 0.9,
            },
            {
                "offered_flits_node_cycle": 1.2,
                "active_speedup": 1.8,
                "x_overhead_pct": 1.5,
                "recovery_cycles": 120,
                "ratio": 0.8,
            },
        ],
        "criteria": {
            "low_load_speedup_min": 2.0,
            "saturation_speedup_min": 1.5,
            "x_overhead_max_pct": 2.0,
            "recovery_cycles_max": 200,
            "ratio_min": 0.5,
        },
    }
    rc = 0
    rc |= _expect(good, 0, "all gates pass")

    def variant(**kw):
        v = json.loads(json.dumps(good))
        v.update(kw)
        return v

    bad_pct = variant()
    bad_pct["points"][1]["x_overhead_pct"] = 9.0
    rc |= _expect(bad_pct, 1, "pct gate over threshold")

    bad_speedup = variant()
    bad_speedup["points"][0]["active_speedup"] = 1.0
    rc |= _expect(bad_speedup, 1, "low-load speedup under threshold")

    bad_min = variant()
    bad_min["points"][0]["ratio"] = 0.1
    rc |= _expect(bad_min, 1, "generic *_min gate under threshold")

    missing_field = variant()
    del missing_field["points"][0]["recovery_cycles"]
    rc |= _expect(missing_field, 1, "criteria field missing from point")

    # Conditional gates (e.g. shard_scaling's multishard_speedup_min,
    # emitted only on multi-core hosts): when both the criteria key and
    # the per-point field are absent, the gate is simply off and the
    # file passes; re-adding just the key re-arms it, so a producer that
    # emits the criterion without the measurements fails loudly.
    conditional = variant()
    for p in conditional["points"]:
        del p["ratio"]
    del conditional["criteria"]["ratio_min"]
    rc |= _expect(conditional, 0, "conditional gate absent: not enforced")

    armed = json.loads(json.dumps(conditional))
    armed["criteria"]["ratio_min"] = 0.5
    rc |= _expect(armed, 1, "conditional gate armed without its field")

    rc |= _expect(variant(schema="wormsim.bench/999"), 1, "wrong schema")
    no_schema = variant()
    del no_schema["schema"]
    rc |= _expect(no_schema, 1, "missing schema")

    unknown = variant()
    unknown["criteria"]["renamed_gate"] = 1
    rc |= _expect(unknown, 1, "unknown criteria key")

    rc |= _expect(variant(criteria={}), 1, "empty criteria block")
    rc |= _expect(variant(points=[]), 1, "no points")

    if rc == 0:
        print("check_bench: self-test passed")
    else:
        print("check_bench: SELF-TEST FAILED")
    return rc


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_file(path)
    if rc == 0:
        print("check_bench: all criteria satisfied")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
