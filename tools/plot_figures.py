#!/usr/bin/env python3
"""Render the bench CSV/JSONL outputs as standalone SVG figures.

Dependency-free (standard library only) so it runs on bare build boxes.

Usage:
    build/bench/fig05_uniform16 > fig05.csv
    tools/plot_figures.py fig05.csv -o fig05.svg
    tools/plot_figures.py fig05.csv --y accepted_flits_node_cycle -o thr.svg

The default (line) mode reads the standard sweep CSV
(``mechanism,offered_...`` columns, '#' comment lines ignored) and draws
one line series per mechanism.

``--heatmap`` reads a spatial CSV produced by ``--spatial-out``
(``*_channels.csv`` or ``*_nodes.csv``: rows carry grid coordinates) and
renders a colored x/y grid of ``--value`` (default: ``utilization`` for
channel tables, ``queue_avg`` for node tables; rows sharing a cell are
averaged, so the four channels of a node fold into one cell):

    tools/plot_figures.py sat_channels.csv --heatmap -o heat.svg
    tools/plot_figures.py sat_nodes.csv --heatmap --value queue_max

``--timeline`` reads the JSONL telemetry from ``--metrics-out`` (one
record per sweep point) and plots any dotted-path field against another,
one series per mechanism:

    tools/plot_figures.py fig05.jsonl --timeline \
        --y perf.cycles_per_second -o speed.svg
    tools/plot_figures.py fig05.jsonl --timeline --y result.latency_p99

``--timeline`` also understands the ``wormsim.timeseries/1`` JSONL from
``--timeseries-out`` (one record per recording window): when the input
carries ``kind == "window"`` records it defaults to plotting
``accepted_flits_node_cycle`` against ``start_cycle``, one series per
(mechanism, offered load):

    tools/plot_figures.py fig05.timeseries.jsonl --timeline -o windows.svg
    tools/plot_figures.py fig05.timeseries.jsonl --timeline \
        --y free_vc_fraction

``--saturation`` reads ``--metrics-out`` telemetry (v2, with the online
saturation detector's verdicts) and draws the fig-style accepted-vs-
offered throughput curves with a dashed vertical onset marker at each
mechanism's detected ``saturation_load``; detector-flagged points are
drawn hollow:

    tools/plot_figures.py fig05.jsonl --saturation -o sat.svg
"""

import argparse
import csv
import json
import sys

PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#a463f2", "#97bbf5"]


def open_input(path, **kwargs):
    """Open an input file, turning OS errors into a one-line message
    instead of a traceback — bench outputs and telemetry are optional
    artifacts that only exist after the corresponding run."""
    try:
        return open(path, **kwargs)
    except OSError as e:
        raise SystemExit(
            f"{path}: {e.strerror or e} — this input is produced by a "
            "bench/sweep run (see EXPERIMENTS.md); nothing to plot")


def read_rows(path):
    rows = []
    with open_input(path, newline="") as f:
        header = None
        for raw in f:
            if not raw.strip() or raw.startswith("#"):
                continue
            cells = next(csv.reader([raw]))
            if header is None:
                header = cells
                continue
            rows.append(dict(zip(header, cells)))
    if header is None:
        raise SystemExit(f"{path}: no CSV header found")
    return header, rows


def fmt(v):
    return f"{v:.6g}"


def nice_ticks(lo, hi, count=5):
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = span / max(1, count - 1)
    return [lo + i * step for i in range(count)]


def render_svg(series, xlabel, ylabel, title, logy=False, vlines=(),
               hollow=None):
    """Line plot. ``vlines`` is a list of (x, label, color) dashed
    vertical markers; ``hollow`` maps a series name to a set of x values
    whose point markers are drawn as open circles."""
    import math

    width, height = 720, 480
    ml, mr, mt, mb = 70, 160, 40, 55
    pw, ph = width - ml - mr, height - mt - mb

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts if not logy or y > 0]
    if not xs or not ys:
        raise SystemExit("nothing to plot")
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if logy:
        y0, y1 = math.log10(max(y0, 1e-9)), math.log10(max(y1, 1e-9))
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    def px(x):
        return ml + (x - x0) / (x1 - x0) * pw

    def py(y):
        if logy:
            y = math.log10(max(y, 1e-9))
        return mt + ph - (y - y0) / (y1 - y0) * ph

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{ml}" y="22" font-size="14" font-weight="bold">{title}</text>',
    ]
    # Axes and ticks.
    out.append(
        f'<line x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" y2="{mt + ph}" '
        'stroke="black"/>'
    )
    out.append(f'<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{mt + ph}" stroke="black"/>')
    for tx in nice_ticks(x0, x1):
        out.append(
            f'<line x1="{fmt(px(tx))}" y1="{mt + ph}" x2="{fmt(px(tx))}" '
            f'y2="{mt + ph + 4}" stroke="black"/>'
        )
        out.append(
            f'<text x="{fmt(px(tx))}" y="{mt + ph + 18}" '
            f'text-anchor="middle">{tx:.3g}</text>'
        )
    for ty in nice_ticks(y0, y1):
        disp = 10**ty if logy else ty
        yy = mt + ph - (ty - y0) / (y1 - y0) * ph
        out.append(
            f'<line x1="{ml - 4}" y1="{fmt(yy)}" x2="{ml}" y2="{fmt(yy)}" '
            'stroke="black"/>'
        )
        out.append(
            f'<text x="{ml - 8}" y="{fmt(yy + 4)}" '
            f'text-anchor="end">{disp:.3g}</text>'
        )
    out.append(
        f'<text x="{ml + pw / 2}" y="{height - 12}" '
        f'text-anchor="middle">{xlabel}</text>'
    )
    out.append(
        f'<text x="18" y="{mt + ph / 2}" text-anchor="middle" '
        f'transform="rotate(-90 18 {mt + ph / 2})">{ylabel}</text>'
    )

    for x, label, color in vlines:
        if not x0 <= x <= x1:
            continue
        out.append(
            f'<line x1="{fmt(px(x))}" y1="{mt}" x2="{fmt(px(x))}" '
            f'y2="{mt + ph}" stroke="{color}" stroke-width="1.5" '
            'stroke-dasharray="6,4"/>'
        )
        out.append(
            f'<text x="{fmt(px(x) + 4)}" y="{mt + 12}" font-size="11" '
            f'fill="{color}">{label}</text>'
        )

    for i, (name, pts) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        pts = sorted(pts)
        path = " ".join(
            f"{'M' if j == 0 else 'L'}{fmt(px(x))},{fmt(py(y))}"
            for j, (x, y) in enumerate(pts)
        )
        out.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        open_xs = (hollow or {}).get(name, ())
        for x, y in pts:
            if x in open_xs:
                out.append(
                    f'<circle cx="{fmt(px(x))}" cy="{fmt(py(y))}" r="4" '
                    f'fill="white" stroke="{color}" stroke-width="2"/>'
                )
            else:
                out.append(
                    f'<circle cx="{fmt(px(x))}" cy="{fmt(py(y))}" r="3" fill="{color}"/>'
                )
        ly = mt + 14 + i * 18
        out.append(
            f'<line x1="{ml + pw + 12}" y1="{ly - 4}" x2="{ml + pw + 36}" '
            f'y2="{ly - 4}" stroke="{color}" stroke-width="2"/>'
        )
        out.append(f'<text x="{ml + pw + 42}" y="{ly}">{name}</text>')

    out.append("</svg>")
    return "\n".join(out)


# Five-stop blue→yellow ramp (viridis-like) for heatmap cells.
HEAT_STOPS = [
    (0.00, (68, 1, 84)),
    (0.25, (59, 82, 139)),
    (0.50, (33, 145, 140)),
    (0.75, (94, 201, 98)),
    (1.00, (253, 231, 37)),
]


def heat_color(t):
    t = min(1.0, max(0.0, t))
    for (t0, c0), (t1, c1) in zip(HEAT_STOPS, HEAT_STOPS[1:]):
        if t <= t1:
            f = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
            r, g, b = (round(a + (b_ - a) * f) for a, b_ in zip(c0, c1))
            return f"rgb({r},{g},{b})"
    return "rgb(253,231,37)"


def render_heatmap(cells, xlabel, ylabel, value_label, title):
    xs = sorted({x for x, _ in cells})
    ys = sorted({y for _, y in cells})
    vals = list(cells.values())
    v0, v1 = min(vals), max(vals)
    if v1 == v0:
        v1 = v0 + 1.0

    cell = 48
    ml, mt, mr, mb = 70, 50, 110, 55
    width = ml + cell * len(xs) + mr
    height = mt + cell * len(ys) + mb
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{ml}" y="24" font-size="14" font-weight="bold">{title}</text>',
    ]
    for (x, y), v in sorted(cells.items()):
        cx = ml + xs.index(x) * cell
        # y grows upward, matching torus coordinates.
        cy = mt + (len(ys) - 1 - ys.index(y)) * cell
        t = (v - v0) / (v1 - v0)
        out.append(
            f'<rect x="{cx}" y="{cy}" width="{cell}" height="{cell}" '
            f'fill="{heat_color(t)}" stroke="white"/>'
        )
        text_fill = "white" if t < 0.5 else "black"
        out.append(
            f'<text x="{cx + cell / 2}" y="{cy + cell / 2 + 4}" '
            f'text-anchor="middle" fill="{text_fill}" '
            f'font-size="10">{v:.3g}</text>'
        )
    for i, x in enumerate(xs):
        out.append(
            f'<text x="{ml + i * cell + cell / 2}" '
            f'y="{mt + len(ys) * cell + 16}" text-anchor="middle">{x}</text>'
        )
    for j, y in enumerate(ys):
        out.append(
            f'<text x="{ml - 8}" '
            f'y="{mt + (len(ys) - 1 - j) * cell + cell / 2 + 4}" '
            f'text-anchor="end">{y}</text>'
        )
    out.append(
        f'<text x="{ml + len(xs) * cell / 2}" y="{height - 12}" '
        f'text-anchor="middle">{xlabel}</text>'
    )
    out.append(
        f'<text x="18" y="{mt + len(ys) * cell / 2}" text-anchor="middle" '
        f'transform="rotate(-90 18 {mt + len(ys) * cell / 2})">{ylabel}</text>'
    )
    # Color bar.
    bar_x, bar_h = ml + len(xs) * cell + 24, len(ys) * cell
    for i in range(bar_h):
        t = 1.0 - i / max(1, bar_h - 1)
        out.append(
            f'<rect x="{bar_x}" y="{mt + i}" width="14" height="1.5" '
            f'fill="{heat_color(t)}"/>'
        )
    out.append(f'<text x="{bar_x + 20}" y="{mt + 8}">{v1:.3g}</text>')
    out.append(f'<text x="{bar_x + 20}" y="{mt + bar_h}">{v0:.3g}</text>')
    out.append(
        f'<text x="{bar_x}" y="{mt - 8}" font-size="11">{value_label}</text>'
    )
    out.append("</svg>")
    return "\n".join(out)


def json_at_path(obj, dotted):
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def read_jsonl(path):
    """All records of a telemetry/timeseries JSONL file."""
    records = []
    with open_input(path) as f:
        for i, line in enumerate(f, 1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{i}: invalid JSON: {e}")
            records.append(rec)
    if not records:
        raise SystemExit(f"{path}: no JSONL records")
    return records


def read_telemetry(path, kinds=("point",)):
    """Records of the given kind(s) from a JSONL telemetry file."""
    records = [r for r in read_jsonl(path) if r.get("kind") in kinds]
    if not records:
        raise SystemExit(f"{path}: no telemetry {'/'.join(kinds)} records")
    return records


def run_heatmap(args):
    header, rows = read_rows(args.input)
    # Channel tables carry grid coordinates as src_x/src_y, node tables
    # as x/y; fall through to whichever pair the file has.
    if args.x == "x" and "x" not in header and "src_x" in header:
        args.x, args.y = "src_x", "src_y"
    value = args.value
    if value is None:
        value = "utilization" if "utilization" in header else "queue_avg"
    for col in (args.x, args.y, value):
        if col not in header:
            raise SystemExit(f"column {col!r} not in CSV header {header}")
    sums, counts = {}, {}
    for row in rows:
        try:
            key = (int(row[args.x]), int(row[args.y]))
            v = float(row[value])
        except ValueError:
            continue
        sums[key] = sums.get(key, 0.0) + v
        counts[key] = counts.get(key, 0) + 1
    if not sums:
        raise SystemExit("nothing to plot")
    cells = {k: sums[k] / counts[k] for k in sums}
    return render_heatmap(cells, args.x, args.y, value,
                          args.title or f"{args.input}: {value}")


def run_timeline(args):
    records = read_telemetry(args.input, kinds=("point", "window"))
    windowed = records[0].get("kind") == "window"
    if windowed:
        # wormsim.timeseries/1: one record per recording window, keyed by
        # (mechanism, offered load) so multiple sweep points separate.
        records = [r for r in records if r.get("kind") == "window"]
        x_key = args.x if args.x is not None else "start_cycle"
        y_key = args.y if args.y is not None else "accepted_flits_node_cycle"
    else:
        x_key = args.x if args.x is not None else "offered"
        y_key = args.y if args.y is not None else "perf.cycles_per_second"
    series = {}
    for rec in records:
        x = json_at_path(rec, x_key)
        y = json_at_path(rec, y_key)
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            continue
        if windowed and args.series == "mechanism":
            key = f"{rec.get('mechanism', 'data')}@{rec.get('offered')}"
        else:
            key = json_at_path(rec, args.series) or "data"
        series.setdefault(str(key), []).append((float(x), float(y)))
    if not series:
        raise SystemExit(f"no numeric ({x_key}, {y_key}) pairs in telemetry")
    return render_svg(series, x_key, y_key,
                      args.title or f"{args.input}: {y_key}", args.logy)


def run_saturation(args):
    """Accepted-vs-offered curves with online-detector annotations.

    Hollow markers: sweep points whose per-run detector latched
    ``saturation.saturated``. Dashed vlines: the summary record's
    per-mechanism ``saturation_load`` (first flagged offered load)."""
    records = read_jsonl(args.input)
    points = [r for r in records if r.get("kind") == "point"]
    if not points:
        raise SystemExit(f"{args.input}: no telemetry point records")
    y_key = args.y if args.y is not None else \
        "result.accepted_flits_per_node_cycle"

    series, hollow, order = {}, {}, []
    for rec in points:
        mech = str(rec.get("mechanism", "data"))
        x = rec.get("offered")
        y = json_at_path(rec, y_key)
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            continue
        if mech not in series:
            order.append(mech)
        series.setdefault(mech, []).append((float(x), float(y)))
        if json_at_path(rec, "saturation.saturated"):
            hollow.setdefault(mech, set()).add(float(x))
    if not series:
        raise SystemExit(f"no numeric (offered, {y_key}) pairs in telemetry")

    vlines = []
    for rec in records:
        if rec.get("kind") != "summary":
            continue
        for mech, load in (rec.get("saturation_load") or {}).items():
            if isinstance(load, (int, float)) and mech in series:
                color = PALETTE[order.index(mech) % len(PALETTE)]
                vlines.append((float(load), f"{mech} onset", color))
    return render_svg({m: series[m] for m in order}, "offered", y_key,
                      args.title or f"{args.input}: saturation onset",
                      args.logy, vlines=vlines, hollow=hollow)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("input", metavar="csv",
                    help="sweep CSV, spatial CSV (--heatmap) or "
                         "telemetry JSONL (--timeline)")
    ap.add_argument("-o", "--output", default=None, help="output SVG path")
    ap.add_argument("--x", default=None,
                    help="x column / dotted JSON path "
                         "(default: offered_flits_node_cycle, heatmap: x, "
                         "timeline: offered)")
    ap.add_argument("--y", default=None,
                    help="y column / dotted JSON path "
                         "(default: latency_avg_cycles, heatmap: y, "
                         "timeline: perf.cycles_per_second)")
    ap.add_argument("--series", default="mechanism",
                    help="column/path naming the series (omit if absent)")
    ap.add_argument("--logy", action="store_true",
                    help="log-scale y (useful for latency blow-ups)")
    ap.add_argument("--title", default=None)
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--heatmap", action="store_true",
                      help="render a spatial CSV as an x/y grid")
    mode.add_argument("--timeline", action="store_true",
                      help="plot telemetry/timeseries JSONL records")
    mode.add_argument("--saturation", action="store_true",
                      help="throughput curves with detected saturation-"
                           "onset markers from telemetry JSONL")
    ap.add_argument("--value", default=None,
                    help="heatmap cell value column (default: utilization "
                         "or queue_avg)")
    ap.add_argument("--missing-ok", action="store_true",
                    help="exit 0 with a note when the input is missing or "
                         "empty (for scripts plotting optional artifacts)")
    args = ap.parse_args()

    try:
        if args.heatmap:
            if args.x is None:
                args.x = "x"
            if args.y is None:
                args.y = "y"
            svg = run_heatmap(args)
        elif args.timeline:
            svg = run_timeline(args)
        elif args.saturation:
            svg = run_saturation(args)
        else:
            if args.x is None:
                args.x = "offered_flits_node_cycle"
            if args.y is None:
                args.y = "latency_avg_cycles"
            svg = line_mode(args)
    except SystemExit as e:
        if args.missing_ok:
            print(f"skipping: {e}", file=sys.stderr)
            return
        raise
    out = args.output or args.input.rsplit(".", 1)[0] + ".svg"
    with open(out, "w") as f:
        f.write(svg)
    print(f"wrote {out}", file=sys.stderr)


def line_mode(args):
    header, rows = read_rows(args.input)
    if args.x not in header or args.y not in header:
        raise SystemExit(
            f"columns {args.x!r}/{args.y!r} not in CSV header {header}")
    series = {}
    for row in rows:
        try:
            x, y = float(row[args.x]), float(row[args.y])
        except ValueError:
            continue  # summary/footer rows
        key = row.get(args.series, "data") if args.series in header else "data"
        series.setdefault(key, []).append((x, y))

    return render_svg(series, args.x, args.y,
                      args.title or f"{args.input}: {args.y}", args.logy)


if __name__ == "__main__":
    main()
