#!/usr/bin/env python3
"""Render the bench CSV outputs as standalone SVG figures.

Dependency-free (standard library only) so it runs on bare build boxes.

Usage:
    build/bench/fig05_uniform16 > fig05.csv
    tools/plot_figures.py fig05.csv -o fig05.svg
    tools/plot_figures.py fig05.csv --y accepted_flits_node_cycle -o thr.svg

The input is the standard sweep CSV (``mechanism,offered_...`` columns,
'#' comment lines ignored). One line series is drawn per mechanism.
"""

import argparse
import csv
import sys

PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#a463f2", "#97bbf5"]


def read_rows(path):
    rows = []
    with open(path, newline="") as f:
        header = None
        for raw in f:
            if not raw.strip() or raw.startswith("#"):
                continue
            cells = next(csv.reader([raw]))
            if header is None:
                header = cells
                continue
            rows.append(dict(zip(header, cells)))
    if header is None:
        raise SystemExit(f"{path}: no CSV header found")
    return header, rows


def fmt(v):
    return f"{v:.6g}"


def nice_ticks(lo, hi, count=5):
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = span / max(1, count - 1)
    return [lo + i * step for i in range(count)]


def render_svg(series, xlabel, ylabel, title, logy=False):
    import math

    width, height = 720, 480
    ml, mr, mt, mb = 70, 160, 40, 55
    pw, ph = width - ml - mr, height - mt - mb

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts if not logy or y > 0]
    if not xs or not ys:
        raise SystemExit("nothing to plot")
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if logy:
        y0, y1 = math.log10(max(y0, 1e-9)), math.log10(max(y1, 1e-9))
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    def px(x):
        return ml + (x - x0) / (x1 - x0) * pw

    def py(y):
        if logy:
            y = math.log10(max(y, 1e-9))
        return mt + ph - (y - y0) / (y1 - y0) * ph

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{ml}" y="22" font-size="14" font-weight="bold">{title}</text>',
    ]
    # Axes and ticks.
    out.append(
        f'<line x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" y2="{mt + ph}" '
        'stroke="black"/>'
    )
    out.append(f'<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{mt + ph}" stroke="black"/>')
    for tx in nice_ticks(x0, x1):
        out.append(
            f'<line x1="{fmt(px(tx))}" y1="{mt + ph}" x2="{fmt(px(tx))}" '
            f'y2="{mt + ph + 4}" stroke="black"/>'
        )
        out.append(
            f'<text x="{fmt(px(tx))}" y="{mt + ph + 18}" '
            f'text-anchor="middle">{tx:.3g}</text>'
        )
    for ty in nice_ticks(y0, y1):
        disp = 10**ty if logy else ty
        yy = mt + ph - (ty - y0) / (y1 - y0) * ph
        out.append(
            f'<line x1="{ml - 4}" y1="{fmt(yy)}" x2="{ml}" y2="{fmt(yy)}" '
            'stroke="black"/>'
        )
        out.append(
            f'<text x="{ml - 8}" y="{fmt(yy + 4)}" '
            f'text-anchor="end">{disp:.3g}</text>'
        )
    out.append(
        f'<text x="{ml + pw / 2}" y="{height - 12}" '
        f'text-anchor="middle">{xlabel}</text>'
    )
    out.append(
        f'<text x="18" y="{mt + ph / 2}" text-anchor="middle" '
        f'transform="rotate(-90 18 {mt + ph / 2})">{ylabel}</text>'
    )

    for i, (name, pts) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        pts = sorted(pts)
        path = " ".join(
            f"{'M' if j == 0 else 'L'}{fmt(px(x))},{fmt(py(y))}"
            for j, (x, y) in enumerate(pts)
        )
        out.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            out.append(
                f'<circle cx="{fmt(px(x))}" cy="{fmt(py(y))}" r="3" fill="{color}"/>'
            )
        ly = mt + 14 + i * 18
        out.append(
            f'<line x1="{ml + pw + 12}" y1="{ly - 4}" x2="{ml + pw + 36}" '
            f'y2="{ly - 4}" stroke="{color}" stroke-width="2"/>'
        )
        out.append(f'<text x="{ml + pw + 42}" y="{ly}">{name}</text>')

    out.append("</svg>")
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", help="sweep CSV from a bench binary")
    ap.add_argument("-o", "--output", default=None, help="output SVG path")
    ap.add_argument("--x", default="offered_flits_node_cycle")
    ap.add_argument("--y", default="latency_avg_cycles")
    ap.add_argument("--series", default="mechanism",
                    help="column naming the series (omit if absent)")
    ap.add_argument("--logy", action="store_true",
                    help="log-scale y (useful for latency blow-ups)")
    ap.add_argument("--title", default=None)
    args = ap.parse_args()

    header, rows = read_rows(args.csv)
    if args.x not in header or args.y not in header:
        raise SystemExit(
            f"columns {args.x!r}/{args.y!r} not in CSV header {header}")
    series = {}
    for row in rows:
        try:
            x, y = float(row[args.x]), float(row[args.y])
        except ValueError:
            continue  # summary/footer rows
        key = row.get(args.series, "data") if args.series in header else "data"
        series.setdefault(key, []).append((x, y))

    svg = render_svg(series, args.x, args.y,
                     args.title or f"{args.csv}: {args.y}", args.logy)
    out = args.output or args.csv.rsplit(".", 1)[0] + ".svg"
    with open(out, "w") as f:
        f.write(svg)
    print(f"wrote {out}", file=sys.stderr)


if __name__ == "__main__":
    main()
