#include "obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace wormsim::obs {

namespace {

std::atomic<int>& level_store() noexcept {
  // First touch seeds the level from the environment; set_log_level and
  // --log-level overwrite it afterwards.
  static std::atomic<int> level = [] {
    int lvl = static_cast<int>(LogLevel::Info);
    if (const char* env = std::getenv("WORMSIM_LOG")) {
      try {
        lvl = static_cast<int>(parse_log_level(env));
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr,
                     "warning: ignoring invalid WORMSIM_LOG value '%s' "
                     "(expected error|warn|info|debug)\n",
                     env);
      }
    }
    return lvl;
  }();
  return level;
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "error") return LogLevel::Error;
  if (name == "warn" || name == "warning") return LogLevel::Warn;
  if (name == "info") return LogLevel::Info;
  if (name == "debug") return LogLevel::Debug;
  throw std::invalid_argument("unknown log level (error|warn|info|debug): " +
                              std::string(name));
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Error: return "error";
    case LogLevel::Warn: return "warn";
    case LogLevel::Info: return "info";
    case LogLevel::Debug: return "debug";
  }
  return "unknown";
}

void vlogf(LogLevel level, const char* fmt, std::va_list args) {
  if (!log_enabled(level)) return;
  char stack_buf[512];
  std::va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, copy);
  va_end(copy);
  if (n < 0) return;
  if (static_cast<std::size_t>(n) < sizeof(stack_buf)) {
    std::fwrite(stack_buf, 1, static_cast<std::size_t>(n), stderr);
    return;
  }
  std::vector<char> heap_buf(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, args);
  std::fwrite(heap_buf.data(), 1, static_cast<std::size_t>(n), stderr);
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  std::va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

}  // namespace wormsim::obs
