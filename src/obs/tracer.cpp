#include "obs/tracer.hpp"

#include <algorithm>
#include <atomic>

#include "util/json.hpp"

namespace wormsim::obs {

namespace {

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local registry of (tracer generation → buffer) so a thread can
/// record into several tracers over its lifetime without locking after
/// the first record into each. Generations are process-unique and never
/// reused, so a stale entry for a destroyed tracer can never be hit by
/// a live one that reuses the same address.
struct TlsEntry {
  std::uint64_t gen;
  void* buf;
};
thread_local std::vector<TlsEntry> tls_bufs;

}  // namespace

std::string_view event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::GateAllow: return "gate_allow";
    case EventKind::GateBlock: return "gate_block";
    case EventKind::AloProbe: return "alo_probe";
    case EventKind::VcAlloc: return "vc_alloc";
    case EventKind::VcRelease: return "vc_release";
    case EventKind::DeadlockDetect: return "deadlock_detect";
    case EventKind::RecoveryReinject: return "recovery_reinject";
    case EventKind::QueueEnqueue: return "queue_enqueue";
    case EventKind::QueueDequeue: return "queue_dequeue";
    case EventKind::PointBegin: return "point_begin";
    case EventKind::PointEnd: return "point_end";
    case EventKind::FaultLinkKill: return "fault_link_kill";
    case EventKind::FaultLinkRestore: return "fault_link_restore";
    case EventKind::FaultNodeKill: return "fault_node_kill";
    case EventKind::FaultNodeRestore: return "fault_node_restore";
    case EventKind::FaultLutRebuild: return "fault_lut_rebuild";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity_per_thread)
    : cap_(capacity_per_thread ? capacity_per_thread : 1),
      gen_(next_generation()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuf& Tracer::local() {
  for (const TlsEntry& e : tls_bufs) {
    if (e.gen == gen_) return *static_cast<ThreadBuf*>(e.buf);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  bufs_.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf& buf = *bufs_.back();
  buf.ring.resize(cap_);
  tls_bufs.push_back({gen_, &buf});
  return buf;
}

void Tracer::record(std::uint64_t cycle, EventKind kind, std::uint32_t node,
                    std::uint8_t aux8, std::uint16_t aux16,
                    std::uint32_t aux32) {
  ThreadBuf& b = local();
  TraceEvent& e = b.ring[b.recorded % cap_];
  e.cycle = cycle;
  e.seq = b.seq++;
  e.pid = b.cur_pid;
  e.node = node;
  e.aux32 = aux32;
  e.aux16 = aux16;
  e.kind = kind;
  e.aux8 = aux8;
  ++b.recorded;
}

void Tracer::begin_point(std::uint32_t pid, std::string label) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    point_labels_.emplace_back(pid, std::move(label));
  }
  ThreadBuf& b = local();
  b.cur_pid = pid;
  record(0, EventKind::PointBegin, 0);
}

void Tracer::end_point(std::uint32_t pid, std::uint64_t total_cycles) {
  ThreadBuf& b = local();
  b.cur_pid = pid;
  record(total_cycles, EventKind::PointEnd, 0);
}

std::uint64_t Tracer::events_recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& b : bufs_) total += b->recorded;
  return total;
}

std::uint64_t Tracer::events_dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& b : bufs_) {
    if (b->recorded > cap_) dropped += b->recorded - cap_;
  }
  return dropped;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : bufs_) {
      const std::uint64_t kept = std::min<std::uint64_t>(b->recorded, cap_);
      const std::uint64_t start = b->recorded - kept;
      for (std::uint64_t i = 0; i < kept; ++i) {
        events.push_back(b->ring[(start + i) % cap_]);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.pid != b.pid) return a.pid < b.pid;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.cycle < b.cycle;  // cross-thread same-pid tiebreak
            });
  return events;
}

namespace {

/// Category lane ("thread" row) each event kind renders on.
struct Lane {
  int tid;
  const char* name;
  const char* category;
};

Lane lane_of(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::GateAllow:
    case EventKind::GateBlock:
    case EventKind::AloProbe: return {1, "injection gate", "gate"};
    case EventKind::QueueEnqueue:
    case EventKind::QueueDequeue: return {2, "source queues", "queue"};
    case EventKind::VcAlloc:
    case EventKind::VcRelease: return {3, "virtual channels", "vc"};
    case EventKind::DeadlockDetect:
    case EventKind::RecoveryReinject: return {4, "deadlock", "deadlock"};
    case EventKind::FaultLinkKill:
    case EventKind::FaultLinkRestore:
    case EventKind::FaultNodeKill:
    case EventKind::FaultNodeRestore:
    case EventKind::FaultLutRebuild: return {5, "faults", "fault"};
    case EventKind::PointBegin:
    case EventKind::PointEnd: return {0, "sweep point", "sweep"};
  }
  return {0, "sweep point", "sweep"};
}

void emit_args(util::JsonWriter& w, const TraceEvent& e) {
  w.key("args");
  w.begin_object();
  switch (e.kind) {
    case EventKind::GateAllow:
    case EventKind::GateBlock:
      w.field("node", e.node);
      w.field("limiter", static_cast<unsigned>(e.aux8));
      w.field("head_wait", e.aux32);
      break;
    case EventKind::AloProbe:
      w.field("node", e.node);
      w.field("rule_a", (e.aux8 & 1u) != 0);
      w.field("rule_b", (e.aux8 & 2u) != 0);
      break;
    case EventKind::VcAlloc:
    case EventKind::VcRelease:
      w.field("link", e.node);
      w.field("vc", static_cast<unsigned>(e.aux8));
      w.field("msg", e.aux32);
      break;
    case EventKind::DeadlockDetect:
      w.field("node", e.node);
      w.field("msg", e.aux32);
      w.field("length", static_cast<unsigned>(e.aux16));
      break;
    case EventKind::RecoveryReinject:
      w.field("node", e.node);
      w.field("msg", e.aux32);
      break;
    case EventKind::QueueEnqueue:
    case EventKind::QueueDequeue:
      w.field("node", e.node);
      w.field("queue_len", e.aux32);
      w.field("length", static_cast<unsigned>(e.aux16));
      break;
    case EventKind::FaultLinkKill:
    case EventKind::FaultLinkRestore:
      w.field("node", e.node);
      w.field("channel", static_cast<unsigned>(e.aux8));
      break;
    case EventKind::FaultNodeKill:
    case EventKind::FaultNodeRestore:
      w.field("node", e.node);
      break;
    case EventKind::FaultLutRebuild:
      w.field("dead_links", e.aux32);
      w.field("dead_nodes", static_cast<unsigned>(e.aux16));
      break;
    case EventKind::PointBegin:
    case EventKind::PointEnd: break;
  }
  w.end_object();
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  std::vector<std::pair<std::uint32_t, std::string>> labels;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    labels = point_labels_;
  }
  std::sort(labels.begin(), labels.end());

  util::JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Process/lane naming metadata. Every labelled sweep point becomes a
  // named trace process; lanes are named once per pid on first use.
  for (const auto& [pid, label] : labels) {
    w.begin_object();
    w.field("ph", "M");
    w.field("name", "process_name");
    w.field("pid", pid);
    w.field("tid", 0);
    w.key("args");
    w.begin_object();
    w.field("name", label);
    w.end_object();
    w.end_object();
  }
  std::vector<std::pair<std::uint32_t, int>> named_lanes;
  for (const TraceEvent& e : events) {
    const Lane lane = lane_of(e.kind);
    const std::pair<std::uint32_t, int> key{e.pid, lane.tid};
    if (std::find(named_lanes.begin(), named_lanes.end(), key) !=
        named_lanes.end()) {
      continue;
    }
    named_lanes.push_back(key);
    w.begin_object();
    w.field("ph", "M");
    w.field("name", "thread_name");
    w.field("pid", e.pid);
    w.field("tid", lane.tid);
    w.key("args");
    w.begin_object();
    w.field("name", lane.name);
    w.end_object();
    w.end_object();
  }

  for (const TraceEvent& e : events) {
    const Lane lane = lane_of(e.kind);
    if (e.kind == EventKind::PointBegin) continue;  // folded into the X event
    w.begin_object();
    if (e.kind == EventKind::PointEnd) {
      // One "complete" span covering the whole sweep point.
      w.field("name", "simulate");
      w.field("cat", lane.category);
      w.field("ph", "X");
      w.field("ts", std::uint64_t{0});
      w.field("dur", e.cycle);
    } else {
      w.field("name", event_kind_name(e.kind));
      w.field("cat", lane.category);
      w.field("ph", "i");
      w.field("s", "t");
      w.field("ts", e.cycle);
    }
    w.field("pid", e.pid);
    w.field("tid", lane.tid);
    emit_args(w, e);
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.field("schema", "wormsim.trace/1");
  w.field("timestamp_unit", "simulated cycles (shown as us)");
  w.field("events_recorded", events_recorded());
  w.field("events_dropped", events_dropped());
  w.end_object();
  w.end_object();
  out << "\n";
}

}  // namespace wormsim::obs
