// Leveled diagnostic logging for benches, examples and the harness.
//
// One process-wide level filters everything written through logf();
// the default (Info) matches the stderr chatter the benches have always
// produced, so output is unchanged unless the user asks for more or
// less. Controls, in increasing precedence:
//   * WORMSIM_LOG=error|warn|info|debug   environment default
//   * --log-level <name>                  per-invocation override
//     (wired through harness::apply_common_flags)
//   * obs::set_log_level(...)             programmatic
//
// logf() formats with printf semantics and writes the whole line to
// stderr in a single call, so concurrent sweep workers never interleave
// mid-line. No prefixes or timestamps are added: bench stderr stays
// byte-compatible with what the figure scripts already expect.
#pragma once

#include <cstdarg>
#include <string_view>

namespace wormsim::obs {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Current threshold (lazily initialized from WORMSIM_LOG on first use).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Throws std::invalid_argument for unknown names.
LogLevel parse_log_level(std::string_view name);
std::string_view log_level_name(LogLevel level) noexcept;

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// printf-style message at `level`; dropped entirely when filtered.
/// The caller supplies its own trailing newline (matching the fprintf
/// call sites this replaces).
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

void vlogf(LogLevel level, const char* fmt, std::va_list args);

}  // namespace wormsim::obs
