// Low-overhead structured event tracing for the simulator and the sweep
// harness, with a Chrome trace-event (Perfetto-loadable) JSON exporter.
//
// Design constraints (the core-equivalence guarantees depend on them):
//   * Observation only — recording never touches simulation state, so
//     sweep CSVs are byte-identical with tracing on or off.
//   * Zero cost when disabled — every hook in the simulator is a
//     branch-on-null pointer check; no Tracer exists unless a harness
//     attaches one (gated by bench/micro_mechanism --obs-overhead-json).
//   * Thread-safe recording without locks on the hot path — each thread
//     registers a private fixed-capacity ring buffer on first record;
//     when a ring wraps, the oldest events are overwritten and counted
//     as dropped (keep-latest is the right policy for post-mortems of a
//     saturation collapse).
//
// Sweep integration: the harness brackets every sweep point with
// begin_point()/end_point(). Each point becomes one trace "process"
// (pid = sweep-point index, named after its mechanism/load), with
// category lanes (gate / queue / vc / deadlock) as threads underneath,
// so a whole sweep opens as a navigable timeline in chrome://tracing or
// https://ui.perfetto.dev. Timestamps are simulated cycles expressed as
// microseconds. Because one point runs entirely on one worker thread,
// the export (sorted by point, then per-thread sequence number) is
// byte-identical for any --jobs count as long as no events were
// dropped.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wormsim::obs {

enum class EventKind : std::uint8_t {
  GateAllow,         // injection limiter admitted the queue head
  GateBlock,         // injection limiter refused the queue head
  AloProbe,          // ALO condition sampled (aux8: bit0 rule a, bit1 rule b)
  VcAlloc,           // virtual channel claimed (node=link, aux8=vc, aux32=msg)
  VcRelease,         // virtual channel freed (node=link, aux8=vc, aux32=msg)
  DeadlockDetect,    // message presumed deadlocked and absorbed
  RecoveryReinject,  // absorbed message re-entered an injection channel
  QueueEnqueue,      // message generated into a source queue
  QueueDequeue,      // message left a source queue for the network
  PointBegin,        // sweep point started (cycle 0)
  PointEnd,          // sweep point finished (cycle = total cycles)
  FaultLinkKill,     // physical link failed (node, aux8 = channel)
  FaultLinkRestore,  // physical link repaired (node, aux8 = channel)
  FaultNodeKill,     // node failed
  FaultNodeRestore,  // node repaired
  FaultLutRebuild,   // routing table rebuilt (aux32 = dead directed
                     // links, aux16 = dead nodes after the rebuild)
};

std::string_view event_kind_name(EventKind kind) noexcept;

/// One recorded event; aux fields are kind-specific (see EventKind).
struct TraceEvent {
  std::uint64_t cycle = 0;
  std::uint64_t seq = 0;   // per-thread order, for deterministic export
  std::uint32_t pid = 0;   // sweep-point index (0 outside a sweep)
  std::uint32_t node = 0;  // node id, or link id for VC events
  std::uint32_t aux32 = 0;
  std::uint16_t aux16 = 0;
  EventKind kind = EventKind::GateAllow;
  std::uint8_t aux8 = 0;
};

class Tracer {
 public:
  /// `capacity_per_thread` events are retained per recording thread
  /// (newest win); must be >= 1.
  explicit Tracer(std::size_t capacity_per_thread = std::size_t{1} << 16);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Record one event (lock-free after a thread's first record).
  void record(std::uint64_t cycle, EventKind kind, std::uint32_t node,
              std::uint8_t aux8 = 0, std::uint16_t aux16 = 0,
              std::uint32_t aux32 = 0);

  /// Mark the start of sweep point `pid` on the calling thread: labels
  /// the trace process and stamps subsequent events with this pid.
  void begin_point(std::uint32_t pid, std::string label);
  /// Mark the end of sweep point `pid` after `total_cycles` cycles.
  void end_point(std::uint32_t pid, std::uint64_t total_cycles);

  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  /// All retained events, oldest first per thread, sorted by
  /// (pid, seq) — deterministic across worker schedules when each pid
  /// is recorded by a single thread (the sweep engine's contract).
  std::vector<TraceEvent> snapshot() const;

  /// Emit the Chrome trace-event JSON document. Not thread-safe against
  /// concurrent record(); call after the traced work has finished.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct ThreadBuf {
    std::vector<TraceEvent> ring;
    std::uint64_t recorded = 0;  // total ever; ring holds min(recorded, cap)
    std::uint64_t seq = 0;
    std::uint32_t cur_pid = 0;
  };

  ThreadBuf& local();

  const std::size_t cap_;
  const std::uint64_t gen_;  // process-unique id for thread-local caching
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::vector<std::pair<std::uint32_t, std::string>> point_labels_;
};

}  // namespace wormsim::obs
