// FaultManager: the schedule cursor plus the cumulative dead-component
// mask. The simulator's per-cycle gate is a single branch on a null
// manager pointer followed (when faults are configured) by due(); the
// network surgery, table rebuild and message purge all happen in the
// simulator, which owns the affected state.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/schedule.hpp"
#include "topology/fault_mask.hpp"

namespace wormsim::fault {

class FaultManager {
 public:
  FaultManager(const topo::KAryNCube& topo, FaultSchedule schedule)
      : schedule_(std::move(schedule)), mask_(topo) {}

  bool due(Cycle t) const noexcept {
    return next_ < schedule_.events().size() &&
           schedule_.events()[next_].cycle <= t;
  }

  /// Apply every event with cycle <= t to the mask, in schedule order,
  /// appending them to `out` for the caller's network surgery.
  void take_due(Cycle t, std::vector<FaultEvent>& out);

  const FaultSchedule& schedule() const noexcept { return schedule_; }
  const topo::FaultMask& mask() const noexcept { return mask_; }
  std::uint64_t events_applied() const noexcept { return applied_; }

 private:
  FaultSchedule schedule_;
  topo::FaultMask mask_;
  std::size_t next_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace wormsim::fault
