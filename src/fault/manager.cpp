#include "fault/manager.hpp"

namespace wormsim::fault {

void FaultManager::take_due(Cycle t, std::vector<FaultEvent>& out) {
  const auto& events = schedule_.events();
  while (next_ < events.size() && events[next_].cycle <= t) {
    const FaultEvent& e = events[next_];
    switch (e.kind) {
      case FaultKind::LinkKill:
        mask_.kill_link(e.node, e.channel);
        break;
      case FaultKind::LinkRestore:
        mask_.restore_link(e.node, e.channel);
        break;
      case FaultKind::NodeKill:
        mask_.kill_node(e.node);
        break;
      case FaultKind::NodeRestore:
        mask_.restore_node(e.node);
        break;
    }
    out.push_back(e);
    ++next_;
    ++applied_;
  }
}

}  // namespace wormsim::fault
