#include "fault/schedule.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace wormsim::fault {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::LinkKill:
      return "kill-link";
    case FaultKind::LinkRestore:
      return "restore-link";
    case FaultKind::NodeKill:
      return "kill-node";
    case FaultKind::NodeRestore:
      return "restore-node";
  }
  return "?";
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
}

void FaultSchedule::write(std::ostream& out) const {
  for (const FaultEvent& e : events_) {
    out << e.cycle << ' ' << fault_kind_name(e.kind) << ' ' << e.node;
    if (e.kind == FaultKind::LinkKill || e.kind == FaultKind::LinkRestore) {
      out << ' ' << static_cast<unsigned>(e.channel);
    }
    out << '\n';
  }
}

FaultSchedule parse_schedule(std::istream& in) {
  std::vector<FaultEvent> events;
  std::string line;
  std::size_t lineno = 0;
  const auto bad = [&lineno](const std::string& what) {
    throw std::invalid_argument("fault schedule line " +
                                std::to_string(lineno) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    FaultEvent e;
    std::string word;
    if (!(ls >> e.cycle)) {
      if (ls.eof()) continue;  // blank / comment-only line
      bad("expected a cycle number");
    }
    if (!(ls >> word)) bad("expected an event kind after the cycle");
    bool link_event = false;
    if (word == "kill-link") {
      e.kind = FaultKind::LinkKill;
      link_event = true;
    } else if (word == "restore-link") {
      e.kind = FaultKind::LinkRestore;
      link_event = true;
    } else if (word == "kill-node") {
      e.kind = FaultKind::NodeKill;
    } else if (word == "restore-node") {
      e.kind = FaultKind::NodeRestore;
    } else {
      bad("unknown event kind '" + word + "'");
    }
    if (!(ls >> e.node)) bad("expected a node id");
    if (link_event) {
      unsigned channel = 0;
      if (!(ls >> channel)) bad("expected a channel after the node");
      if (channel > 0xFFu) bad("channel out of range");
      e.channel = static_cast<ChannelId>(channel);
    }
    if (ls >> word) bad("trailing text '" + word + "'");
    events.push_back(e);
  }
  return FaultSchedule(std::move(events));
}

FaultSchedule make_transient(const topo::KAryNCube& topo, unsigned links,
                             Cycle at, Cycle duration, std::uint64_t seed) {
  // Physical (undirected) links: each directed (node, c) pairs with
  // (neighbor, c ^ 1), except k = 2 where both directions of a
  // dimension reach the same neighbor yet are still distinct cables.
  const std::size_t physical =
      static_cast<std::size_t>(topo.num_nodes()) * topo.num_channels() / 2;
  if (links > physical) {
    throw std::invalid_argument("transient preset: asked for " +
                                std::to_string(links) + " links but topology has " +
                                std::to_string(physical));
  }
  util::SplitMix64 rng(seed);
  std::set<std::uint64_t> chosen;  // canonical directed index per physical link
  std::vector<FaultEvent> events;
  while (chosen.size() < links) {
    const auto node = static_cast<NodeId>(rng.next() % topo.num_nodes());
    const auto channel =
        static_cast<ChannelId>(rng.next() % topo.num_channels());
    const std::uint64_t fwd =
        static_cast<std::uint64_t>(node) * topo.num_channels() + channel;
    const std::uint64_t rev =
        static_cast<std::uint64_t>(topo.neighbor(node, channel)) *
            topo.num_channels() +
        (channel ^ 1u);
    if (!chosen.insert(std::min(fwd, rev)).second) continue;
    events.push_back({at, FaultKind::LinkKill, node, channel});
    if (duration > 0) {
      events.push_back({at + duration, FaultKind::LinkRestore, node, channel});
    }
  }
  return FaultSchedule(std::move(events));
}

namespace {

Cycle parse_number(std::string_view text, const char* what) {
  Cycle value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument(std::string("--faults transient preset: bad ") +
                                what + " '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

FaultSchedule load_faults(std::string_view spec, const topo::KAryNCube& topo,
                          std::uint64_t seed) {
  constexpr std::string_view kTransient = "transient:";
  FaultSchedule schedule;
  if (spec.substr(0, kTransient.size()) == kTransient) {
    std::string_view rest = spec.substr(kTransient.size());
    const auto at_pos = rest.find('@');
    if (at_pos == std::string_view::npos) {
      throw std::invalid_argument(
          "--faults: expected transient:<links>@<cycle>[+<duration>]");
    }
    std::string_view cycle_part = rest.substr(at_pos + 1);
    Cycle duration = 0;
    if (const auto plus = cycle_part.find('+');
        plus != std::string_view::npos) {
      duration = parse_number(cycle_part.substr(plus + 1), "duration");
      cycle_part = cycle_part.substr(0, plus);
    }
    const Cycle links = parse_number(rest.substr(0, at_pos), "link count");
    const Cycle at = parse_number(cycle_part, "cycle");
    schedule = make_transient(topo, static_cast<unsigned>(links), at, duration,
                              seed);
  } else {
    std::ifstream in{std::string(spec)};
    if (!in) {
      throw std::invalid_argument("--faults: cannot open schedule file '" +
                                  std::string(spec) + "'");
    }
    schedule = parse_schedule(in);
  }
  validate(schedule, topo);
  return schedule;
}

void validate(const FaultSchedule& schedule, const topo::KAryNCube& topo) {
  for (const FaultEvent& e : schedule.events()) {
    if (e.node >= topo.num_nodes()) {
      throw std::invalid_argument(
          "fault schedule: node " + std::to_string(e.node) +
          " out of range for " + std::to_string(topo.num_nodes()) + " nodes");
    }
    if ((e.kind == FaultKind::LinkKill || e.kind == FaultKind::LinkRestore) &&
        e.channel >= topo.num_channels()) {
      throw std::invalid_argument(
          "fault schedule: channel " + std::to_string(e.channel) +
          " out of range for " + std::to_string(topo.num_channels()) +
          " channels");
    }
  }
}

}  // namespace wormsim::fault
