// Deterministic fault schedules: an ordered list of link/node kill and
// restore events with absolute cycle timestamps. Schedules come from
// three sources, all reproducible from (spec, seed):
//
//   * a schedule file, one event per line:
//         <cycle> kill-link <node> <channel>
//         <cycle> restore-link <node> <channel>
//         <cycle> kill-node <node>
//         <cycle> restore-node <node>
//     with '#' comments and blank lines ignored;
//   * the CLI preset "transient:<links>@<cycle>[+<duration>]", which
//     kills <links> seed-chosen distinct physical links at <cycle> and
//     restores them <duration> cycles later (omitted = never);
//   * tests constructing event vectors directly.
//
// Link events name a directed channel (node, channel); the FaultMask
// applies them to both directions of the physical link.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "topology/kary_ncube.hpp"

namespace wormsim::fault {

using topo::ChannelId;
using topo::NodeId;
using Cycle = std::uint64_t;

enum class FaultKind : std::uint8_t {
  LinkKill,
  LinkRestore,
  NodeKill,
  NodeRestore,
};

std::string_view fault_kind_name(FaultKind kind) noexcept;

struct FaultEvent {
  Cycle cycle = 0;
  FaultKind kind = FaultKind::LinkKill;
  NodeId node = 0;
  ChannelId channel = 0;  // link events only; 0 for node events

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Immutable-after-construction event sequence, stable-sorted by cycle
/// (input order preserved among same-cycle events).
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events);

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// Serialize in the schedule-file format; parse_schedule round-trips.
  void write(std::ostream& out) const;

 private:
  std::vector<FaultEvent> events_;
};

/// Parse the schedule-file format above. Throws std::invalid_argument
/// on malformed input (with a line number).
FaultSchedule parse_schedule(std::istream& in);

/// Seed-chosen transient: `links` distinct physical links killed at
/// `at`, each restored `duration` cycles later (duration 0 = never).
FaultSchedule make_transient(const topo::KAryNCube& topo, unsigned links,
                             Cycle at, Cycle duration, std::uint64_t seed);

/// Resolve a --faults spec: the "transient:..." preset, else a path to
/// a schedule file. The result is validated against `topo`.
FaultSchedule load_faults(std::string_view spec, const topo::KAryNCube& topo,
                          std::uint64_t seed);

/// Throws std::invalid_argument when an event references a node or
/// channel outside `topo`.
void validate(const FaultSchedule& schedule, const topo::KAryNCube& topo);

}  // namespace wormsim::fault
