#include "traffic/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace wormsim::traffic {

namespace {
constexpr const char* kHeader = "#wormsim-trace v1";
}

void Trace::add(const TraceRecord& r) {
  if (!records_.empty() && r.cycle < records_.back().cycle) {
    throw std::invalid_argument("trace records must be added in cycle order");
  }
  records_.push_back(r);
}

void Trace::validate(const topo::KAryNCube& topo) const {
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TraceRecord& r = records_[i];
    const auto where = " at record " + std::to_string(i);
    if (r.src >= topo.num_nodes() || r.dst >= topo.num_nodes()) {
      throw std::invalid_argument("trace node id out of range" + where);
    }
    if (r.src == r.dst) {
      throw std::invalid_argument("trace record is self-addressed" + where);
    }
    if (r.length == 0) {
      throw std::invalid_argument("trace record has zero length" + where);
    }
    if (r.cycle < last) {
      throw std::invalid_argument("trace records out of order" + where);
    }
    last = r.cycle;
  }
}

void Trace::save(std::ostream& out) const {
  out << kHeader << '\n';
  for (const TraceRecord& r : records_) {
    out << r.cycle << ' ' << r.src << ' ' << r.dst << ' ' << r.length << '\n';
  }
}

Trace Trace::load(std::istream& in) {
  Trace trace;
  std::string line;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kHeader) saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    TraceRecord r;
    if (!(ls >> r.cycle >> r.src >> r.dst >> r.length)) {
      throw std::invalid_argument("malformed trace line " +
                                  std::to_string(lineno) + ": " + line);
    }
    trace.add(r);
  }
  if (!saw_header) {
    throw std::invalid_argument("missing '#wormsim-trace v1' header");
  }
  return trace;
}

Trace Trace::from_workload(const topo::KAryNCube& topo,
                           const WorkloadConfig& cfg, std::uint64_t seed,
                           std::uint64_t cycles) {
  Workload workload(topo, cfg, seed);
  Trace trace;
  util::SmallVector<GeneratedMessage, 8> buf;
  for (std::uint64_t t = 0; t < cycles; ++t) {
    for (NodeId node = 0; node < topo.num_nodes(); ++node) {
      buf.clear();
      workload.poll(node, t, buf);
      for (const auto& g : buf) {
        trace.add({t, node, g.dst, g.length_flits});
      }
    }
  }
  return trace;
}

}  // namespace wormsim::traffic
