// Message-destination distributions.
//
// The paper evaluates: Uniform, Butterfly, Complement, Bit-reversal and
// Perfect-shuffle (§4.1). Transpose, Tornado, NeighborPlus and Hotspot
// are provided as extensions for wider workload studies.
//
// The bit-permutation patterns (butterfly, complement, bit-reversal,
// perfect-shuffle, transpose) operate on the binary representation of
// the node id and therefore require the node count to be a power of two
// (true for the paper's 8-ary 3-cube: 512 = 2^9).
//
// A pattern may map a node onto itself (e.g. palindromic ids under
// bit-reversal). Following standard practice, such nodes simply generate
// no traffic; callers must check `destination() != src`.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "topology/kary_ncube.hpp"
#include "util/rng.hpp"

namespace wormsim::traffic {

using topo::NodeId;

enum class PatternKind {
  Uniform,
  Butterfly,
  Complement,
  BitReversal,
  PerfectShuffle,
  Transpose,
  Tornado,
  NeighborPlus,
  Hotspot,
};

/// Parses a pattern name ("uniform", "butterfly", "complement",
/// "bit-reversal", "perfect-shuffle", "transpose", "tornado",
/// "neighbor", "hotspot"); throws std::invalid_argument on unknown names.
PatternKind parse_pattern(std::string_view name);
std::string_view pattern_name(PatternKind kind);

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Destination for a message generated at `src`. Random patterns draw
  /// from `rng`; deterministic ones ignore it. May return `src`, meaning
  /// this node generates no traffic under this pattern.
  virtual NodeId destination(NodeId src, util::Rng& rng) const = 0;

  virtual PatternKind kind() const noexcept = 0;
  /// True if destination() is a pure function of src.
  virtual bool deterministic() const noexcept { return true; }
};

struct HotspotParams {
  NodeId hotspot = 0;
  double fraction = 0.1;  // probability a message targets the hotspot
};

/// Factory. `params` is only read for Hotspot.
std::unique_ptr<TrafficPattern> make_pattern(
    PatternKind kind, const topo::KAryNCube& topo,
    const HotspotParams& params = {});

/// Fraction of nodes whose pattern destination differs from themselves
/// (1.0 for uniform/complement; can be < 1 for bit permutations).
double active_node_fraction(const TrafficPattern& pattern,
                            const topo::KAryNCube& topo, util::Rng& rng);

}  // namespace wormsim::traffic
