// Message traces: record a workload's generation events to a portable
// text format and replay them later (or feed in traces captured from
// real applications — the paper's motivating studies [Flich'99,
// Silla'98] are execution-driven).
//
// Format (line-oriented, '#' comments allowed):
//   #wormsim-trace v1
//   <cycle> <src> <dst> <length_flits>
// Records must be sorted by cycle (ties keep file order).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "topology/kary_ncube.hpp"
#include "traffic/workload.hpp"

namespace wormsim::traffic {

struct TraceRecord {
  std::uint64_t cycle = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t length = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class Trace {
 public:
  void add(const TraceRecord& r);
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  /// Last generation cycle (0 for an empty trace).
  std::uint64_t horizon() const noexcept {
    return records_.empty() ? 0 : records_.back().cycle;
  }

  /// Throws std::invalid_argument if any record is out of range for the
  /// topology, self-addressed, zero-length, or out of cycle order.
  void validate(const topo::KAryNCube& topo) const;

  void save(std::ostream& out) const;
  static Trace load(std::istream& in);

  /// Record `cycles` cycles of a Workload's generation events offline
  /// (deterministic: the same seed yields the same trace the live
  /// Workload would feed the simulator).
  static Trace from_workload(const topo::KAryNCube& topo,
                             const WorkloadConfig& cfg, std::uint64_t seed,
                             std::uint64_t cycles);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace wormsim::traffic
