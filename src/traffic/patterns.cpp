#include "traffic/patterns.hpp"

#include <bit>
#include <stdexcept>

namespace wormsim::traffic {

namespace {

/// Number of address bits for bit-permutation patterns; throws if the
/// node count is not a power of two.
unsigned address_bits(const topo::KAryNCube& topo) {
  const auto nodes = topo.num_nodes();
  if (!std::has_single_bit(nodes)) {
    throw std::invalid_argument(
        "bit-permutation traffic patterns require a power-of-two node "
        "count");
  }
  return static_cast<unsigned>(std::countr_zero(nodes));
}

class UniformPattern final : public TrafficPattern {
 public:
  explicit UniformPattern(NodeId num_nodes) : num_nodes_(num_nodes) {}
  NodeId destination(NodeId src, util::Rng& rng) const override {
    // Uniform over all nodes except src.
    auto d = static_cast<NodeId>(rng.below(num_nodes_ - 1));
    return d >= src ? d + 1 : d;
  }
  PatternKind kind() const noexcept override { return PatternKind::Uniform; }
  bool deterministic() const noexcept override { return false; }

 private:
  NodeId num_nodes_;
};

class BitPermutationPattern : public TrafficPattern {
 public:
  explicit BitPermutationPattern(unsigned bits) : bits_(bits) {}
  NodeId destination(NodeId src, util::Rng&) const override {
    return permute(src);
  }

 protected:
  virtual NodeId permute(NodeId src) const = 0;
  unsigned bits_;
};

/// Butterfly: swap the most and least significant address bits (§3).
class ButterflyPattern final : public BitPermutationPattern {
 public:
  using BitPermutationPattern::BitPermutationPattern;
  PatternKind kind() const noexcept override { return PatternKind::Butterfly; }

 protected:
  NodeId permute(NodeId src) const override {
    const NodeId lo = src & 1u;
    const NodeId hi = (src >> (bits_ - 1)) & 1u;
    NodeId dst = src & ~((1u << (bits_ - 1)) | 1u);
    dst |= lo << (bits_ - 1);
    dst |= hi;
    return dst;
  }
};

/// Complement: invert every address bit.
class ComplementPattern final : public BitPermutationPattern {
 public:
  using BitPermutationPattern::BitPermutationPattern;
  PatternKind kind() const noexcept override { return PatternKind::Complement; }

 protected:
  NodeId permute(NodeId src) const override {
    return ~src & ((1u << bits_) - 1u);
  }
};

/// Bit-reversal: reverse the address bit order.
class BitReversalPattern final : public BitPermutationPattern {
 public:
  using BitPermutationPattern::BitPermutationPattern;
  PatternKind kind() const noexcept override {
    return PatternKind::BitReversal;
  }

 protected:
  NodeId permute(NodeId src) const override {
    NodeId dst = 0;
    for (unsigned b = 0; b < bits_; ++b) {
      dst |= ((src >> b) & 1u) << (bits_ - 1 - b);
    }
    return dst;
  }
};

/// Perfect shuffle: rotate the address bits left by one.
class PerfectShufflePattern final : public BitPermutationPattern {
 public:
  using BitPermutationPattern::BitPermutationPattern;
  PatternKind kind() const noexcept override {
    return PatternKind::PerfectShuffle;
  }

 protected:
  NodeId permute(NodeId src) const override {
    const NodeId mask = (1u << bits_) - 1u;
    return ((src << 1) | (src >> (bits_ - 1))) & mask;
  }
};

/// Transpose: swap the two halves of the address bits (matrix transpose
/// on a 2^(b/2) x 2^(b/2) grid). For odd b the middle bit stays put.
class TransposePattern final : public BitPermutationPattern {
 public:
  using BitPermutationPattern::BitPermutationPattern;
  PatternKind kind() const noexcept override { return PatternKind::Transpose; }

 protected:
  NodeId permute(NodeId src) const override {
    const unsigned half = bits_ / 2;
    const NodeId low = src & ((1u << half) - 1u);
    const NodeId high = (src >> (bits_ - half)) & ((1u << half) - 1u);
    NodeId mid = 0;
    if (bits_ % 2) mid = (src >> half) & 1u;
    NodeId dst = (low << (bits_ - half)) | high;
    if (bits_ % 2) dst |= mid << half;
    return dst;
  }
};

/// Tornado: per dimension, move just under half-way around the ring
/// (the classic adversary for minimal adaptive routing in tori).
class TornadoPattern final : public TrafficPattern {
 public:
  explicit TornadoPattern(const topo::KAryNCube& t) : topo_(&t) {}
  NodeId destination(NodeId src, util::Rng&) const override {
    topo::Coords c = topo_->coords_of(src);
    const auto k = topo_->radix();
    const auto shift = static_cast<std::uint16_t>((k + 1) / 2 - 1);
    for (unsigned d = 0; d < topo_->dims(); ++d) {
      c[d] = static_cast<std::uint16_t>((c[d] + shift) % k);
    }
    return topo_->node_at(c);
  }
  PatternKind kind() const noexcept override { return PatternKind::Tornado; }

 private:
  const topo::KAryNCube* topo_;
};

/// NeighborPlus: destination is the next node along dimension 0; purely
/// local traffic, useful as a low-contention control workload.
class NeighborPlusPattern final : public TrafficPattern {
 public:
  explicit NeighborPlusPattern(const topo::KAryNCube& t) : topo_(&t) {}
  NodeId destination(NodeId src, util::Rng&) const override {
    return topo_->neighbor(src, topo::make_channel(0, topo::Dir::Plus));
  }
  PatternKind kind() const noexcept override {
    return PatternKind::NeighborPlus;
  }

 private:
  const topo::KAryNCube* topo_;
};

/// Hotspot: with probability `fraction` target a fixed hotspot node,
/// otherwise uniform.
class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(NodeId num_nodes, HotspotParams p)
      : uniform_(num_nodes), params_(p) {
    if (p.hotspot >= num_nodes) {
      throw std::invalid_argument("hotspot node out of range");
    }
    if (p.fraction < 0.0 || p.fraction > 1.0) {
      throw std::invalid_argument("hotspot fraction must be in [0,1]");
    }
  }
  NodeId destination(NodeId src, util::Rng& rng) const override {
    if (src != params_.hotspot && rng.bernoulli(params_.fraction)) {
      return params_.hotspot;
    }
    return uniform_.destination(src, rng);
  }
  PatternKind kind() const noexcept override { return PatternKind::Hotspot; }
  bool deterministic() const noexcept override { return false; }

 private:
  UniformPattern uniform_;
  HotspotParams params_;
};

}  // namespace

PatternKind parse_pattern(std::string_view name) {
  if (name == "uniform") return PatternKind::Uniform;
  if (name == "butterfly") return PatternKind::Butterfly;
  if (name == "complement") return PatternKind::Complement;
  if (name == "bit-reversal" || name == "bitreversal") {
    return PatternKind::BitReversal;
  }
  if (name == "perfect-shuffle" || name == "shuffle") {
    return PatternKind::PerfectShuffle;
  }
  if (name == "transpose") return PatternKind::Transpose;
  if (name == "tornado") return PatternKind::Tornado;
  if (name == "neighbor") return PatternKind::NeighborPlus;
  if (name == "hotspot") return PatternKind::Hotspot;
  throw std::invalid_argument("unknown traffic pattern: " +
                              std::string(name));
}

std::string_view pattern_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::Uniform: return "uniform";
    case PatternKind::Butterfly: return "butterfly";
    case PatternKind::Complement: return "complement";
    case PatternKind::BitReversal: return "bit-reversal";
    case PatternKind::PerfectShuffle: return "perfect-shuffle";
    case PatternKind::Transpose: return "transpose";
    case PatternKind::Tornado: return "tornado";
    case PatternKind::NeighborPlus: return "neighbor";
    case PatternKind::Hotspot: return "hotspot";
  }
  return "unknown";
}

std::unique_ptr<TrafficPattern> make_pattern(PatternKind kind,
                                             const topo::KAryNCube& topo,
                                             const HotspotParams& params) {
  switch (kind) {
    case PatternKind::Uniform:
      return std::make_unique<UniformPattern>(topo.num_nodes());
    case PatternKind::Butterfly:
      return std::make_unique<ButterflyPattern>(address_bits(topo));
    case PatternKind::Complement:
      return std::make_unique<ComplementPattern>(address_bits(topo));
    case PatternKind::BitReversal:
      return std::make_unique<BitReversalPattern>(address_bits(topo));
    case PatternKind::PerfectShuffle:
      return std::make_unique<PerfectShufflePattern>(address_bits(topo));
    case PatternKind::Transpose:
      return std::make_unique<TransposePattern>(address_bits(topo));
    case PatternKind::Tornado:
      return std::make_unique<TornadoPattern>(topo);
    case PatternKind::NeighborPlus:
      return std::make_unique<NeighborPlusPattern>(topo);
    case PatternKind::Hotspot:
      return std::make_unique<HotspotPattern>(topo.num_nodes(), params);
  }
  throw std::invalid_argument("unknown pattern kind");
}

double active_node_fraction(const TrafficPattern& pattern,
                            const topo::KAryNCube& topo, util::Rng& rng) {
  if (!pattern.deterministic()) return 1.0;
  NodeId active = 0;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (pattern.destination(n, rng) != n) ++active;
  }
  return static_cast<double>(active) / static_cast<double>(topo.num_nodes());
}

}  // namespace wormsim::traffic
