// Per-node message arrival processes.
//
// The paper (§4.1): "Each node generates messages independently,
// according to an exponential distribution" — i.e. a Poisson arrival
// process per node. We keep continuous arrival times internally and
// release messages on the cycle boundary they fall in, so the offered
// rate is exact even when the mean inter-arrival is not an integer
// number of cycles. A Bernoulli (geometric inter-arrival) process is
// also provided for cross-checking.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/rng.hpp"
#include "util/small_vector.hpp"

namespace wormsim::traffic {

enum class ProcessKind { Exponential, Bernoulli, Bursty };

ProcessKind parse_process(std::string_view name);
std::string_view process_name(ProcessKind kind);

/// next_poll_hint() value meaning "this process will never generate
/// again unless set_rate() is called" (rate 0 sources).
inline constexpr std::uint64_t kNeverPoll = ~std::uint64_t{0};

class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;

  /// Number of messages this node generates during cycle `cycle`.
  /// Cycles must be polled in non-decreasing order.
  virtual unsigned arrivals(std::uint64_t cycle, util::Rng& rng) = 0;

  /// Earliest cycle > `now` at which a future arrivals() call could
  /// return non-zero or advance internal state, given that arrivals(now)
  /// has just been called. Skipping arrivals() calls strictly before the
  /// hint leaves the process (and the caller's RNG stream) in exactly
  /// the state per-cycle polling would have produced — the contract the
  /// active-set simulation core relies on for bit-identical results.
  /// kNeverPoll means "never again until set_rate()". Processes that
  /// cannot look ahead return now + 1 (poll every cycle); that is the
  /// safe default.
  virtual std::uint64_t next_poll_hint(std::uint64_t now) const {
    return now + 1;
  }

  /// Change the arrival rate (messages/node/cycle) mid-run; used by
  /// bursty workload studies.
  virtual void set_rate(double msgs_per_cycle) = 0;
  virtual double rate() const noexcept = 0;

  virtual ProcessKind kind() const noexcept = 0;
};

/// Poisson process: exponential inter-arrival times accumulated in
/// continuous time.
class ExponentialProcess final : public InjectionProcess {
 public:
  explicit ExponentialProcess(double msgs_per_cycle);

  unsigned arrivals(std::uint64_t cycle, util::Rng& rng) override;
  std::uint64_t next_poll_hint(std::uint64_t now) const override;
  void set_rate(double msgs_per_cycle) override;
  double rate() const noexcept override { return rate_; }
  ProcessKind kind() const noexcept override {
    return ProcessKind::Exponential;
  }

 private:
  double rate_;
  double next_arrival_ = -1.0;  // < 0 → first arrival not yet drawn
};

/// Bernoulli process: at most one arrival per cycle, probability = rate.
class BernoulliProcess final : public InjectionProcess {
 public:
  explicit BernoulliProcess(double msgs_per_cycle);

  unsigned arrivals(std::uint64_t cycle, util::Rng& rng) override;
  void set_rate(double msgs_per_cycle) override;
  double rate() const noexcept override { return rate_; }
  ProcessKind kind() const noexcept override { return ProcessKind::Bernoulli; }

 private:
  double rate_;
};

/// Markov-modulated on/off Poisson process: bursts of elevated rate
/// separated by idle periods, with the configured long-run average rate.
/// Models the bursty application traffic the paper's introduction cites
/// as the practical reason saturation prevention matters [Flich'99,
/// Silla'98].
class BurstyProcess final : public InjectionProcess {
 public:
  struct Params {
    /// Fraction of time spent in the ON state (0 < duty <= 1).
    double duty_cycle = 0.25;
    /// Mean length of an ON burst, cycles (exponentially distributed).
    double mean_burst_cycles = 500.0;
    /// true: all nodes share one burst schedule (application-phase
    /// behaviour — the whole machine bursts together, which is what
    /// transiently saturates a large network). false: independent
    /// per-node schedules (their aggregate load smooths out as the node
    /// count grows).
    bool synchronized = false;
    /// Seed for the burst-phase schedule; Workload sets it per node for
    /// independent bursts or to one shared value when synchronized.
    std::uint64_t phase_seed = 0;
  };

  BurstyProcess(double msgs_per_cycle, Params params);

  unsigned arrivals(std::uint64_t cycle, util::Rng& rng) override;
  std::uint64_t next_poll_hint(std::uint64_t now) const override;
  void set_rate(double msgs_per_cycle) override;
  double rate() const noexcept override { return mean_rate_; }
  ProcessKind kind() const noexcept override { return ProcessKind::Bursty; }

  bool on() const noexcept { return on_; }
  /// Instantaneous rate while a burst is active.
  double burst_rate() const noexcept { return mean_rate_ / params_.duty_cycle; }

 private:
  double mean_rate_;
  Params params_;
  util::Rng phase_rng_;  // burst schedule; shared seed => shared schedule
  bool on_ = false;
  std::uint64_t phase_ends_ = 0;  // cycle the current ON/OFF phase ends
  double next_arrival_ = -1.0;
  bool initialized_ = false;
};

std::unique_ptr<InjectionProcess> make_process(
    ProcessKind kind, double msgs_per_cycle,
    const BurstyProcess::Params& bursty_params = {});

}  // namespace wormsim::traffic
