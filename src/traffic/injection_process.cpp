#include "traffic/injection_process.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace wormsim::traffic {

ProcessKind parse_process(std::string_view name) {
  if (name == "exponential" || name == "poisson") {
    return ProcessKind::Exponential;
  }
  if (name == "bernoulli") return ProcessKind::Bernoulli;
  if (name == "bursty") return ProcessKind::Bursty;
  throw std::invalid_argument("unknown injection process: " +
                              std::string(name));
}

std::string_view process_name(ProcessKind kind) {
  switch (kind) {
    case ProcessKind::Exponential: return "exponential";
    case ProcessKind::Bernoulli: return "bernoulli";
    case ProcessKind::Bursty: return "bursty";
  }
  return "unknown";
}

namespace {

void check_rate(double rate) {
  if (rate < 0.0) throw std::invalid_argument("injection rate must be >= 0");
}

/// Cycle containing the continuous arrival time `t`, saturating to
/// kNeverPoll for times beyond the representable cycle range (tiny
/// rates draw astronomically distant arrivals).
std::uint64_t arrival_cycle(double t) {
  constexpr double kMaxCycle = 1.8e19;  // < 2^64, safe to cast
  if (!(t < kMaxCycle)) return kNeverPoll;
  return static_cast<std::uint64_t>(t);
}

}  // namespace

ExponentialProcess::ExponentialProcess(double msgs_per_cycle)
    : rate_(msgs_per_cycle) {
  check_rate(msgs_per_cycle);
}

unsigned ExponentialProcess::arrivals(std::uint64_t cycle, util::Rng& rng) {
  if (rate_ <= 0.0) return 0;
  if (next_arrival_ < 0.0) {
    next_arrival_ = static_cast<double>(cycle) + rng.exponential(rate_);
  }
  unsigned count = 0;
  const double cycle_end = static_cast<double>(cycle) + 1.0;
  while (next_arrival_ < cycle_end) {
    ++count;
    next_arrival_ += rng.exponential(rate_);
  }
  return count;
}

std::uint64_t ExponentialProcess::next_poll_hint(std::uint64_t now) const {
  if (rate_ <= 0.0) return kNeverPoll;
  if (next_arrival_ < 0.0) return now + 1;  // first draw still pending
  // After arrivals(now), next_arrival_ >= now + 1; every arrivals() call
  // strictly before its cycle returns 0 without touching the RNG.
  return std::max(arrival_cycle(next_arrival_), now + 1);
}

void ExponentialProcess::set_rate(double msgs_per_cycle) {
  check_rate(msgs_per_cycle);
  rate_ = msgs_per_cycle;
  next_arrival_ = -1.0;  // redraw with the new rate
}

BernoulliProcess::BernoulliProcess(double msgs_per_cycle)
    : rate_(msgs_per_cycle) {
  check_rate(msgs_per_cycle);
  if (msgs_per_cycle > 1.0) {
    throw std::invalid_argument("bernoulli rate must be <= 1 msg/cycle");
  }
}

unsigned BernoulliProcess::arrivals(std::uint64_t /*cycle*/, util::Rng& rng) {
  return rng.bernoulli(rate_) ? 1u : 0u;
}

void BernoulliProcess::set_rate(double msgs_per_cycle) {
  check_rate(msgs_per_cycle);
  if (msgs_per_cycle > 1.0) {
    throw std::invalid_argument("bernoulli rate must be <= 1 msg/cycle");
  }
  rate_ = msgs_per_cycle;
}

BurstyProcess::BurstyProcess(double msgs_per_cycle, Params params)
    : mean_rate_(msgs_per_cycle),
      params_(params),
      phase_rng_(params.phase_seed) {
  check_rate(msgs_per_cycle);
  if (params.duty_cycle <= 0.0 || params.duty_cycle > 1.0) {
    throw std::invalid_argument("bursty duty_cycle must be in (0, 1]");
  }
  if (params.mean_burst_cycles <= 0.0) {
    throw std::invalid_argument("bursty mean_burst_cycles must be > 0");
  }
}

unsigned BurstyProcess::arrivals(std::uint64_t cycle, util::Rng& rng) {
  if (mean_rate_ <= 0.0) return 0;
  // The ON/OFF schedule comes from phase_rng_, which Workload seeds per
  // node (independent bursts) or identically for every node
  // (synchronized application phases). Arrival times within a burst
  // always use the caller's per-node stream.
  if (!initialized_) {
    initialized_ = true;
    on_ = phase_rng_.bernoulli(params_.duty_cycle);
    const double mean = on_ ? params_.mean_burst_cycles
                            : params_.mean_burst_cycles *
                                  (1.0 - params_.duty_cycle) /
                                  params_.duty_cycle;
    phase_ends_ =
        cycle + 1 +
        static_cast<std::uint64_t>(phase_rng_.exponential(1.0 / mean));
  }
  while (cycle >= phase_ends_) {
    on_ = !on_;
    next_arrival_ = -1.0;  // redraw within the new phase
    const double mean = on_ ? params_.mean_burst_cycles
                            : params_.mean_burst_cycles *
                                  (1.0 - params_.duty_cycle) /
                                  params_.duty_cycle;
    phase_ends_ +=
        1 + static_cast<std::uint64_t>(phase_rng_.exponential(1.0 / mean));
  }
  if (!on_) return 0;

  const double rate = burst_rate();
  if (next_arrival_ < 0.0) {
    next_arrival_ = static_cast<double>(cycle) + rng.exponential(rate);
  }
  unsigned count = 0;
  const double cycle_end = static_cast<double>(cycle) + 1.0;
  while (next_arrival_ < cycle_end) {
    ++count;
    next_arrival_ += rng.exponential(rate);
  }
  return count;
}

std::uint64_t BurstyProcess::next_poll_hint(std::uint64_t now) const {
  if (mean_rate_ <= 0.0) return kNeverPoll;
  if (!initialized_) return now + 1;
  std::uint64_t hint;
  if (!on_) {
    // Idle phase: nothing until the ON transition at phase_ends_, and
    // the transition must be polled at exactly that cycle (the first
    // in-burst arrival is drawn relative to the polling cycle).
    hint = phase_ends_;
  } else if (next_arrival_ < 0.0) {
    hint = now + 1;  // in-burst arrival not yet drawn
  } else {
    hint = std::min(arrival_cycle(next_arrival_), phase_ends_);
  }
  return std::max(hint, now + 1);
}

void BurstyProcess::set_rate(double msgs_per_cycle) {
  check_rate(msgs_per_cycle);
  mean_rate_ = msgs_per_cycle;
  next_arrival_ = -1.0;
}

std::unique_ptr<InjectionProcess> make_process(
    ProcessKind kind, double msgs_per_cycle,
    const BurstyProcess::Params& bursty_params) {
  switch (kind) {
    case ProcessKind::Exponential:
      return std::make_unique<ExponentialProcess>(msgs_per_cycle);
    case ProcessKind::Bernoulli:
      return std::make_unique<BernoulliProcess>(msgs_per_cycle);
    case ProcessKind::Bursty:
      return std::make_unique<BurstyProcess>(msgs_per_cycle, bursty_params);
  }
  throw std::invalid_argument("unknown process kind");
}

}  // namespace wormsim::traffic
