#include "traffic/workload.hpp"

#include <stdexcept>

namespace wormsim::traffic {

Workload::Workload(const topo::KAryNCube& topo, const WorkloadConfig& cfg,
                   std::uint64_t seed)
    : topo_(topo), cfg_(cfg) {
  const double mean_len = cfg.length.mean();
  if (mean_len <= 0) throw std::invalid_argument("message length must be > 0");
  msg_rate_ = cfg.offered_flits_per_node_cycle / mean_len;
  // Patterns capture a pointer to our owned topology copy, so they stay
  // valid for the Workload's lifetime (Workload is not movable).
  pattern_ = make_pattern(cfg.pattern, topo_, cfg.hotspot);

  util::Rng root(seed);
  nodes_.resize(topo.num_nodes());
  traffic::BurstyProcess::Params bursty = cfg_.bursty;
  std::uint64_t node_index = 0;
  for (auto& n : nodes_) {
    n.rng = root.split();
    // Synchronized bursts: one shared phase schedule for the whole
    // machine; otherwise a distinct schedule per node.
    bursty.phase_seed = cfg_.bursty.synchronized
                            ? seed ^ 0xB0B5ULL
                            : seed ^ (0x9e3779b97f4a7c15ULL * ++node_index);
    n.process = make_process(cfg.process, msg_rate_, bursty);
  }
}

void Workload::poll(topo::NodeId node, std::uint64_t cycle,
                    util::SmallVector<GeneratedMessage, 8>& out) {
  auto& pn = nodes_[node];
  unsigned count = pn.process->arrivals(cycle, pn.rng);
  while (count-- > 0 && !out.full()) {
    const topo::NodeId dst = pattern_->destination(node, pn.rng);
    if (dst == node) continue;  // inactive node under this pattern
    out.push_back({dst, cfg_.length.sample(pn.rng)});
  }
}

void Workload::set_offered_load(double flits_per_node_cycle) {
  cfg_.offered_flits_per_node_cycle = flits_per_node_cycle;
  msg_rate_ = flits_per_node_cycle / cfg_.length.mean();
  for (auto& n : nodes_) n.process->set_rate(msg_rate_);
  ++epoch_;  // outstanding next_poll hints are now stale
}

}  // namespace wormsim::traffic
