#include "harness/telemetry.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/log.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace wormsim::harness {

namespace {

void emit_config(util::JsonWriter& w, const config::SimConfig& cfg) {
  w.key("config");
  w.begin_object();
  w.field("k", cfg.k);
  w.field("n", cfg.n);
  w.field("vcs", cfg.sim.net.num_vcs);
  w.field("buf_flits", cfg.sim.net.buf_flits);
  w.field("inj_channels", cfg.sim.net.inj_channels);
  w.field("eje_channels", cfg.sim.net.eje_channels);
  w.field("routing", routing::algorithm_name(cfg.sim.algorithm));
  w.field("selection", routing::selection_name(cfg.sim.selection));
  w.field("core", sim::sim_core_name(cfg.sim.core));
  w.field("pattern", traffic::pattern_name(cfg.workload.pattern));
  w.field("msg_len", cfg.workload.length.fixed);
  w.field("deadlock_threshold", cfg.sim.detection.threshold);
  w.field("warmup", cfg.protocol.warmup);
  w.field("measure", cfg.protocol.measure);
  w.field("drain_max", cfg.protocol.drain_max);
  w.field("seed", cfg.seed);
  w.field("fault_schedule_events",
          static_cast<std::uint64_t>(cfg.sim.faults.size()));
  w.field("flow_control", sim::flow_control_name(cfg.sim.flow.scheme));
  if (cfg.sim.flow.scheme == sim::FlowControl::Credit) {
    w.field("credit_return_delay", cfg.sim.flow.credit_return_delay);
  }
  w.end_object();
}

void emit_result(util::JsonWriter& w, const metrics::SimResult& r) {
  w.key("result");
  w.begin_object();
  w.field("latency_mean", r.latency_mean);
  w.field("latency_stddev", r.latency_stddev);
  w.field("latency_p50", r.latency_p50);
  w.field("latency_p95", r.latency_p95);
  w.field("latency_p99", r.latency_p99);
  w.field("accepted_flits_per_node_cycle", r.accepted_flits_per_node_cycle);
  w.field("deadlock_detections", r.deadlock_detections);
  w.field("deadlock_pct", r.deadlock_pct);
  w.field("messages_generated", r.messages_generated);
  w.field("messages_injected", r.messages_injected);
  w.field("messages_delivered", r.messages_delivered);
  w.field("messages_lost", r.messages_lost);
  w.field("fault_events", r.fault_events);
  w.field("lut_rebuilds", r.lut_rebuilds);
  w.field("avg_queue_len", r.avg_queue_len);
  w.field("max_queue_len", r.max_queue_len);
  w.field("probe_pct_a", r.probe.pct_a());
  w.field("probe_pct_b", r.probe.pct_b());
  w.field("probe_pct_either", r.probe.pct_either());
  w.field("total_cycles", r.total_cycles);
  w.field("fully_drained", r.fully_drained);
  w.field("saturated", r.saturated);
  w.end_object();
}

/// Wall-clock-dependent diagnostics, quarantined under "perf" so the
/// rest of a record is reproducible bit-for-bit for a fixed seed.
void emit_perf(util::JsonWriter& w, const metrics::SimResult& r) {
  w.key("perf");
  w.begin_object();
  w.field("wall_seconds", r.wall_seconds);
  w.field("cycles_per_second", r.cycles_per_second);
  w.field("scan_skip_ratio", r.scan_skip_ratio);
  w.field("avg_active_links", r.avg_active_links);
  w.field("avg_active_nodes", r.avg_active_nodes);
  w.field("route_memo_hit_rate", r.route_memo_hit_rate);
  w.end_object();
}

}  // namespace

void write_sweep_telemetry(std::ostream& out, const SweepSpec& spec,
                           const std::vector<SweepPoint>& points,
                           const metrics::SweepStats* stats) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    util::JsonWriter w(out);
    w.begin_object();
    w.field("schema", kTelemetrySchema);
    w.field("kind", "point");
    w.field("point", static_cast<std::uint64_t>(i));
    w.field("mechanism", core::limiter_name(p.limiter));
    w.field("offered", p.offered);
    config::SimConfig cfg = spec.base;
    cfg.sim.limiter.kind = p.limiter;
    cfg.workload.offered_flits_per_node_cycle = p.offered;
    cfg.seed = util::derive_stream_seed(spec.base.seed, i);
    emit_config(w, cfg);
    emit_result(w, p.result);
    emit_perf(w, p.result);
    w.end_object();
    out << "\n";
  }

  util::JsonWriter w(out);
  w.begin_object();
  w.field("schema", kTelemetrySchema);
  w.field("kind", "summary");
  w.field("points", static_cast<std::uint64_t>(points.size()));
  if (stats) {
    w.field("simulations", stats->simulations);
    w.field("jobs", stats->jobs);
    w.field("sim_cycles", stats->sim_cycles);
    w.key("perf");
    w.begin_object();
    w.field("wall_seconds", stats->wall_seconds);
    w.field("points_per_second", stats->points_per_second());
    w.field("cycles_per_second", stats->cycles_per_second());
    w.end_object();
  }
  if (spec.tracer) {
    w.key("trace");
    w.begin_object();
    w.field("events_recorded", spec.tracer->events_recorded());
    w.field("events_dropped", spec.tracer->events_dropped());
    w.end_object();
  }
  w.end_object();
  out << "\n";
}

void capture_spatial(const config::SimConfig& base, core::LimiterKind limiter,
                     double offered, const std::string& prefix) {
  config::SimConfig cfg = base;
  cfg.sim.limiter.kind = limiter;
  cfg.workload.offered_flits_per_node_cycle = offered;

  const topo::KAryNCube topo(cfg.k, cfg.n);
  metrics::SpatialMetrics spatial(
      topo.num_nodes(), topo.num_nodes() * topo.num_channels(),
      cfg.sim.net.num_vcs);
  config::RunHooks hooks;
  hooks.spatial = &spatial;
  const metrics::SimResult r = config::run_experiment(cfg, hooks);

  const auto write = [&](const char* suffix, auto&& fn) {
    const std::string path = prefix + suffix;
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    fn(out);
    obs::logf(obs::LogLevel::Info, "wrote %s\n", path.c_str());
  };
  write("_channels.csv", [&](std::ostream& out) {
    spatial.write_channel_csv(out, topo, r.total_cycles);
  });
  write("_nodes.csv", [&](std::ostream& out) {
    spatial.write_node_csv(out, topo, r.total_cycles);
  });
  write("_vc_occupancy.csv", [&](std::ostream& out) {
    spatial.write_vc_occupancy_csv(out, topo);
  });
}

ObsSession::ObsSession(const util::ArgParser& args)
    : metrics_path_(args.get_string("metrics-out", "")),
      trace_path_(args.get_string("trace", "")),
      spatial_prefix_(args.get_string("spatial-out", "")),
      spatial_limiter_(args.get_string("spatial-limiter", "none")),
      spatial_load_(args.get_double("spatial-load", 1.2)) {
  if (!trace_path_.empty() || !metrics_path_.empty()) {
    tracer_ = std::make_unique<obs::Tracer>(
        static_cast<std::size_t>(args.get_uint(
            "trace-capacity", std::size_t{1} << 16)));
  }
}

ObsSession::~ObsSession() = default;

void ObsSession::attach(SweepSpec& spec) { spec.tracer = tracer_.get(); }

void ObsSession::finish(const SweepSpec& spec,
                        const std::vector<SweepPoint>& points,
                        const metrics::SweepStats* stats) {
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_);
    if (!out) throw std::runtime_error("cannot open " + metrics_path_);
    write_sweep_telemetry(out, spec, points, stats);
    obs::logf(obs::LogLevel::Info, "wrote %s (%zu point records)\n",
              metrics_path_.c_str(), points.size());
  }
  if (!trace_path_.empty() && tracer_) {
    std::ofstream out(trace_path_);
    if (!out) throw std::runtime_error("cannot open " + trace_path_);
    tracer_->write_chrome_trace(out);
    obs::logf(obs::LogLevel::Info,
              "wrote %s (%llu events, %llu dropped)\n", trace_path_.c_str(),
              static_cast<unsigned long long>(tracer_->events_recorded()),
              static_cast<unsigned long long>(tracer_->events_dropped()));
  }
  if (!spatial_prefix_.empty()) {
    capture_spatial(spec.base, core::parse_limiter(spatial_limiter_),
                    spatial_load_, spatial_prefix_);
  }
}

}  // namespace wormsim::harness
