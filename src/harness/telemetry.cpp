#include "harness/telemetry.hpp"

#include <fstream>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "obs/log.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace wormsim::harness {

namespace {

void emit_config(util::JsonWriter& w, const config::SimConfig& cfg) {
  w.key("config");
  w.begin_object();
  w.field("k", cfg.k);
  w.field("n", cfg.n);
  w.field("vcs", cfg.sim.net.num_vcs);
  w.field("buf_flits", cfg.sim.net.buf_flits);
  w.field("inj_channels", cfg.sim.net.inj_channels);
  w.field("eje_channels", cfg.sim.net.eje_channels);
  w.field("routing", routing::algorithm_name(cfg.sim.algorithm));
  w.field("selection", routing::selection_name(cfg.sim.selection));
  w.field("core", sim::sim_core_name(cfg.sim.core));
  w.field("pattern", traffic::pattern_name(cfg.workload.pattern));
  w.field("msg_len", cfg.workload.length.fixed);
  w.field("deadlock_threshold", cfg.sim.detection.threshold);
  w.field("warmup", cfg.protocol.warmup);
  w.field("measure", cfg.protocol.measure);
  w.field("drain_max", cfg.protocol.drain_max);
  w.field("seed", cfg.seed);
  w.field("fault_schedule_events",
          static_cast<std::uint64_t>(cfg.sim.faults.size()));
  w.field("flow_control", sim::flow_control_name(cfg.sim.flow.scheme));
  if (cfg.sim.flow.scheme == sim::FlowControl::Credit) {
    w.field("credit_return_delay", cfg.sim.flow.credit_return_delay);
  }
  w.end_object();
}

void emit_result(util::JsonWriter& w, const metrics::SimResult& r) {
  w.key("result");
  w.begin_object();
  w.field("latency_mean", r.latency_mean);
  w.field("latency_stddev", r.latency_stddev);
  w.field("latency_p50", r.latency_p50);
  w.field("latency_p95", r.latency_p95);
  w.field("latency_p99", r.latency_p99);
  w.field("accepted_flits_per_node_cycle", r.accepted_flits_per_node_cycle);
  w.field("deadlock_detections", r.deadlock_detections);
  w.field("deadlock_pct", r.deadlock_pct);
  w.field("messages_generated", r.messages_generated);
  w.field("messages_injected", r.messages_injected);
  w.field("messages_delivered", r.messages_delivered);
  w.field("messages_lost", r.messages_lost);
  w.field("fault_events", r.fault_events);
  w.field("lut_rebuilds", r.lut_rebuilds);
  w.field("avg_queue_len", r.avg_queue_len);
  w.field("max_queue_len", r.max_queue_len);
  w.field("probe_pct_a", r.probe.pct_a());
  w.field("probe_pct_b", r.probe.pct_b());
  w.field("probe_pct_either", r.probe.pct_either());
  w.field("total_cycles", r.total_cycles);
  w.field("fully_drained", r.fully_drained);
  w.field("saturated", r.saturated);
  w.end_object();
}

/// Deterministic online-statistics sections. Emitted BEFORE "perf":
/// consumers strip everything from the "perf" key to end of line when
/// comparing records across job counts, and these sections are exact.
void emit_online(util::JsonWriter& w, const metrics::OnlineStats& online) {
  const metrics::LogHistogram& h = online.latency_hist();
  w.key("latency_hist");
  w.begin_object();
  w.field("count", h.count());
  w.field("p50", h.quantile(0.50));
  w.field("p90", h.quantile(0.90));
  w.field("p99", h.quantile(0.99));
  w.field("p999", h.quantile(0.999));
  w.field("max", h.max_value());
  w.key("buckets");
  w.begin_array();
  h.for_each_bucket([&](const metrics::LogHistogram::Bucket& b) {
    w.begin_array();
    w.value(b.lo);
    w.value(b.hi);
    w.value(b.count);
    w.end_array();
  });
  w.end_array();
  w.end_object();

  std::uint64_t saturating = 0;
  for (const auto& win : online.windows())
    if (win.saturating) ++saturating;
  w.key("saturation");
  w.begin_object();
  w.field("saturated", online.saturated());
  w.key("onset_cycle");
  if (online.onset_cycle())
    w.value(*online.onset_cycle());
  else
    w.value_null();
  w.field("windows", static_cast<std::uint64_t>(online.windows().size()));
  w.field("saturating_windows", saturating);
  w.field("window_cycles", online.config().window_cycles);
  w.end_object();
}

/// Wall-clock-dependent diagnostics, quarantined under "perf" so the
/// rest of a record is reproducible bit-for-bit for a fixed seed.
/// Shard count and the memory estimate live here too: they vary with
/// the execution strategy, never the simulated results, so consumers
/// that strip "perf" still see byte-identical records across --shards.
/// `online` (nullable) contributes the phase-profiler attribution.
void emit_perf(util::JsonWriter& w, const config::SimConfig& cfg,
               const metrics::SimResult& r,
               const metrics::OnlineStats* online) {
  w.key("perf");
  w.begin_object();
  w.field("wall_seconds", r.wall_seconds);
  w.field("cycles_per_second", r.cycles_per_second);
  w.field("scan_skip_ratio", r.scan_skip_ratio);
  w.field("avg_active_links", r.avg_active_links);
  w.field("avg_active_nodes", r.avg_active_nodes);
  w.field("route_memo_hit_rate", r.route_memo_hit_rate);
  w.key("shards");
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(cfg.sim.shards));
  w.field("commit_decisions", r.commit_decisions);
  w.field("commit_conflicts", r.commit_conflicts);
  w.end_object();
  const config::MemoryFootprint mem = config::estimate_memory(cfg);
  w.key("memory");
  w.begin_object();
  w.field("network_bytes", mem.network_bytes);
  w.field("lut_bytes", mem.lut_bytes);
  w.field("status_bytes", mem.status_bytes);
  w.field("active_set_bytes", mem.active_set_bytes);
  w.field("total_bytes", mem.total_bytes());
  w.field("bytes_per_node", mem.bytes_per_node());
  w.end_object();
  if (online && online->profile_enabled()) {
    const metrics::PhaseProfiler& prof = online->profiler();
    w.key("profile");
    w.begin_object();
    w.field("sampled_cycles", prof.sampled_cycles());
    w.field("total_ns", prof.total_ns());
    w.key("phase_ns");
    w.begin_object();
    for (std::size_t p = 0; p < metrics::kPhaseCount; ++p) {
      const auto phase = static_cast<metrics::Phase>(p);
      w.field(metrics::phase_name(phase), prof.phase_ns(phase));
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
}

/// Smallest offered load the detector flagged for `limiter`; nullopt
/// when no point of that mechanism saturated (or none carried stats).
std::optional<double> saturation_load(const std::vector<SweepPoint>& points,
                                      core::LimiterKind limiter) {
  std::optional<double> load;
  for (const SweepPoint& p : points) {
    if (p.limiter != limiter || !p.online || !p.online->saturated()) continue;
    if (!load || p.offered < *load) load = p.offered;
  }
  return load;
}

}  // namespace

void write_sweep_telemetry(std::ostream& out, const SweepSpec& spec,
                           const std::vector<SweepPoint>& points,
                           const metrics::SweepStats* stats) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    util::JsonWriter w(out);
    w.begin_object();
    w.field("schema", kTelemetrySchema);
    w.field("kind", "point");
    w.field("point", static_cast<std::uint64_t>(i));
    w.field("mechanism", core::limiter_name(p.limiter));
    w.field("offered", p.offered);
    config::SimConfig cfg = spec.base;
    cfg.sim.limiter.kind = p.limiter;
    cfg.workload.offered_flits_per_node_cycle = p.offered;
    cfg.seed = util::derive_stream_seed(spec.base.seed, i);
    emit_config(w, cfg);
    emit_result(w, p.result);
    if (p.online) emit_online(w, *p.online);
    emit_perf(w, cfg, p.result, p.online.get());
    w.end_object();
    out << "\n";
  }

  bool any_online = false;
  for (const SweepPoint& p : points) any_online |= p.online != nullptr;

  util::JsonWriter w(out);
  w.begin_object();
  w.field("schema", kTelemetrySchema);
  w.field("kind", "summary");
  w.field("points", static_cast<std::uint64_t>(points.size()));
  if (any_online) {
    w.key("saturation_load");
    w.begin_object();
    for (const auto limiter : spec.limiters) {
      w.key(core::limiter_name(limiter));
      if (const auto load = saturation_load(points, limiter))
        w.value(*load);
      else
        w.value_null();
    }
    w.end_object();
  }
  if (stats) {
    w.field("simulations", stats->simulations);
    w.field("jobs", stats->jobs);
    w.field("sim_cycles", stats->sim_cycles);
    w.key("perf");
    w.begin_object();
    w.field("wall_seconds", stats->wall_seconds);
    w.field("points_per_second", stats->points_per_second());
    w.field("cycles_per_second", stats->cycles_per_second());
    w.end_object();
  }
  if (spec.tracer) {
    w.key("trace");
    w.begin_object();
    w.field("events_recorded", spec.tracer->events_recorded());
    w.field("events_dropped", spec.tracer->events_dropped());
    w.end_object();
  }
  w.end_object();
  out << "\n";
}

void write_sweep_timeseries(std::ostream& out, const SweepSpec& spec,
                            const std::vector<SweepPoint>& points) {
  std::uint64_t total_windows = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    if (!p.online) continue;
    const std::uint32_t nodes = p.online->num_nodes();
    for (std::size_t j = 0; j < p.online->windows().size(); ++j) {
      const metrics::Window& win = p.online->windows()[j];
      ++total_windows;
      util::JsonWriter w(out);
      w.begin_object();
      w.field("schema", kTimeseriesSchema);
      w.field("kind", "window");
      w.field("point", static_cast<std::uint64_t>(i));
      w.field("mechanism", core::limiter_name(p.limiter));
      w.field("offered", p.offered);
      w.field("window", static_cast<std::uint64_t>(j));
      w.field("start_cycle", win.start_cycle);
      w.field("cycles", win.cycles);
      w.field("offered_flits", win.offered_flits);
      w.field("accepted_flits", win.accepted_flits);
      const double denom =
          static_cast<double>(win.cycles) * static_cast<double>(nodes);
      w.field("offered_flits_node_cycle",
              denom > 0 ? static_cast<double>(win.offered_flits) / denom : 0.0);
      w.field("accepted_flits_node_cycle",
              denom > 0 ? static_cast<double>(win.accepted_flits) / denom
                        : 0.0);
      w.field("injected", win.injected);
      w.field("delivered", win.delivered);
      w.field("deadlocks", win.deadlocks);
      w.field("credit_messages", win.credit_messages);
      w.field("in_flight_flits", win.end.in_flight_flits);
      w.field("blocked_headers", win.end.blocked_headers);
      w.field("free_vcs", win.end.free_vcs);
      w.field("total_vcs", win.end.total_vcs);
      w.field("free_vc_fraction", win.free_vc_fraction());
      w.field("queue_total", win.end.queue_total);
      w.field("latency_count", win.latency_count);
      w.field("latency_p99", win.latency_p99);
      w.field("saturating", win.saturating);
      w.end_object();
      out << "\n";
    }
  }

  util::JsonWriter w(out);
  w.begin_object();
  w.field("schema", kTimeseriesSchema);
  w.field("kind", "summary");
  w.field("points", static_cast<std::uint64_t>(points.size()));
  w.field("windows", total_windows);
  w.field("window_cycles", spec.online_config.window_cycles);
  w.end_object();
  out << "\n";
}

void capture_spatial(const config::SimConfig& base, core::LimiterKind limiter,
                     double offered, const std::string& prefix) {
  config::SimConfig cfg = base;
  cfg.sim.limiter.kind = limiter;
  cfg.workload.offered_flits_per_node_cycle = offered;

  const topo::KAryNCube topo(cfg.k, cfg.n);
  metrics::SpatialMetrics spatial(
      topo.num_nodes(), topo.num_nodes() * topo.num_channels(),
      cfg.sim.net.num_vcs);
  config::RunHooks hooks;
  hooks.spatial = &spatial;
  const metrics::SimResult r = config::run_experiment(cfg, hooks);

  const auto write = [&](const char* suffix, auto&& fn) {
    const std::string path = prefix + suffix;
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    fn(out);
    obs::logf(obs::LogLevel::Info, "wrote %s\n", path.c_str());
  };
  write("_channels.csv", [&](std::ostream& out) {
    spatial.write_channel_csv(out, topo, r.total_cycles);
  });
  write("_nodes.csv", [&](std::ostream& out) {
    spatial.write_node_csv(out, topo, r.total_cycles);
  });
  write("_vc_occupancy.csv", [&](std::ostream& out) {
    spatial.write_vc_occupancy_csv(out, topo);
  });
}

ObsSession::ObsSession(const util::ArgParser& args)
    : metrics_path_(args.get_string("metrics-out", "")),
      timeseries_path_(args.get_string("timeseries-out", "")),
      trace_path_(args.get_string("trace", "")),
      spatial_prefix_(args.get_string("spatial-out", "")),
      spatial_limiter_(args.get_string("spatial-limiter", "none")),
      spatial_load_(args.get_double("spatial-load", 1.2)),
      online_window_(args.get_uint("online-window", 256)),
      profile_period_(0) {
  if (args.has("profile")) {
    // Bare "--profile" parses as the string "true": default period 64.
    const std::string v = args.get_string("profile", "true");
    profile_period_ = v == "true" ? 64 : std::stoull(v);
  }
  if (!trace_path_.empty() || !metrics_path_.empty()) {
    tracer_ = std::make_unique<obs::Tracer>(
        static_cast<std::size_t>(args.get_uint(
            "trace-capacity", std::size_t{1} << 16)));
  }
}

ObsSession::~ObsSession() = default;

void ObsSession::attach(SweepSpec& spec) {
  spec.tracer = tracer_.get();
  if (!metrics_path_.empty() || !timeseries_path_.empty()) {
    spec.online = true;
    spec.online_config.window_cycles = online_window_;
    spec.online_config.profile_period = profile_period_;
  }
}

void ObsSession::finish(const SweepSpec& spec,
                        const std::vector<SweepPoint>& points,
                        const metrics::SweepStats* stats) {
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_);
    if (!out) throw std::runtime_error("cannot open " + metrics_path_);
    write_sweep_telemetry(out, spec, points, stats);
    obs::logf(obs::LogLevel::Info, "wrote %s (%zu point records)\n",
              metrics_path_.c_str(), points.size());
  }
  if (!timeseries_path_.empty()) {
    std::ofstream out(timeseries_path_);
    if (!out) throw std::runtime_error("cannot open " + timeseries_path_);
    write_sweep_timeseries(out, spec, points);
    obs::logf(obs::LogLevel::Info, "wrote %s\n", timeseries_path_.c_str());
  }
  if (!trace_path_.empty() && tracer_) {
    std::ofstream out(trace_path_);
    if (!out) throw std::runtime_error("cannot open " + trace_path_);
    tracer_->write_chrome_trace(out);
    obs::logf(obs::LogLevel::Info,
              "wrote %s (%llu events, %llu dropped)\n", trace_path_.c_str(),
              static_cast<unsigned long long>(tracer_->events_recorded()),
              static_cast<unsigned long long>(tracer_->events_dropped()));
  }
  if (!spatial_prefix_.empty()) {
    capture_spatial(spec.base, core::parse_limiter(spatial_limiter_),
                    spatial_load_, spatial_prefix_);
  }
}

}  // namespace wormsim::harness
