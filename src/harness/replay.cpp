#include "harness/replay.hpp"

namespace wormsim::harness {

bool TraceReplayer::pump_and_step(sim::Simulator& sim) {
  const auto& records = trace_->records();
  const std::uint64_t now = sim.cycle();
  while (pos_ < records.size() && records[pos_].cycle == now) {
    const auto& r = records[pos_++];
    sim.push_message(r.src, r.dst, r.length);
  }
  sim.step();
  return pos_ < records.size() || now < trace_->horizon();
}

void TraceReplayer::run_to_completion(sim::Simulator& sim,
                                      std::uint64_t drain_cycles) {
  while (pump_and_step(sim)) {
  }
  const std::uint64_t limit = sim.cycle() + drain_cycles;
  while (sim.cycle() < limit &&
         (sim.messages_in_flight() > 0 || sim.source_queue_total() > 0 ||
          sim.recovery_pending() > 0)) {
    sim.step();
  }
}

}  // namespace wormsim::harness
