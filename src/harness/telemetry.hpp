// Machine-readable run telemetry for sweep harnesses.
//
// `write_sweep_telemetry` emits one schema-versioned JSON line per
// sweep point (config echo, the full SimResult, engine performance
// counters, tracer drop counts) plus a trailing summary record, so a
// whole bench run can be joined, diffed and plotted without parsing
// banners. Records are written in point-index order after the sweep
// finishes, which makes the file deterministic for a fixed seed — for
// any --jobs count — modulo the wall-clock fields, which are isolated
// under the "perf" key so consumers (and the determinism test) can
// strip them wholesale.
//
// `write_sweep_timeseries` emits the companion `wormsim.timeseries/1`
// stream: one "window" record per (point, recording window) from the
// per-point OnlineStats, plus a trailing summary. Every field is an
// integer derived from simulation state, so the file is byte-identical
// for a fixed seed at any --jobs count. docs/TELEMETRY.md documents
// both schemas field by field.
//
// `ObsSession` bundles the observability command-line surface shared
// by every bench/example:
//   --metrics-out FILE     JSONL telemetry (one record per point)
//   --timeseries-out FILE  wormsim.timeseries/1 JSONL (windowed series)
//   --online-window N      recording-window width in cycles (default 256)
//   --profile [N]          per-phase cycle-loop profiler, sampling every
//                          N cycles (default 64); reported under "perf"
//   --trace FILE           Chrome trace-event JSON (Perfetto-loadable)
//   --trace-capacity N     per-thread tracer ring capacity (default 64k)
//   --spatial-out PREFIX   after the sweep, run one instrumented
//                          simulation and write PREFIX_channels.csv,
//                          PREFIX_nodes.csv, PREFIX_vc_occupancy.csv
//   --spatial-load X       offered load for that run (default 1.2)
//   --spatial-limiter M    mechanism for that run (default none)
//
// Telemetry (--metrics-out) or timeseries (--timeseries-out) enable the
// per-point online statistics: point records gain "latency_hist" (the
// streaming log-bucketed histogram) and "saturation" (the onset
// detector's verdict), and the summary gains per-mechanism
// "saturation_load" — the smallest offered load the detector flagged.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "metrics/spatial.hpp"

namespace wormsim::harness {

inline constexpr std::string_view kTelemetrySchema = "wormsim.telemetry/2";
inline constexpr std::string_view kTimeseriesSchema = "wormsim.timeseries/1";

/// One "point" JSONL record per sweep point (index order), then one
/// "summary" record. `stats` and `spec.tracer` may be null; their
/// sections are omitted accordingly. Points carrying OnlineStats gain
/// "latency_hist"/"saturation" sections (emitted before "perf": they
/// are deterministic, "perf" is the volatile tail).
void write_sweep_telemetry(std::ostream& out, const SweepSpec& spec,
                           const std::vector<SweepPoint>& points,
                           const metrics::SweepStats* stats);

/// One `wormsim.timeseries/1` "window" JSONL record per recording
/// window of every point carrying OnlineStats, then one "summary"
/// record. Deterministic for a fixed seed at any --jobs count.
void write_sweep_timeseries(std::ostream& out, const SweepSpec& spec,
                            const std::vector<SweepPoint>& points);

/// Run one instrumented simulation of `base` (limiter/load overridden)
/// and write the spatial CSV tables to `<prefix>_channels.csv`,
/// `<prefix>_nodes.csv` and `<prefix>_vc_occupancy.csv`.
void capture_spatial(const config::SimConfig& base, core::LimiterKind limiter,
                     double offered, const std::string& prefix);

/// Per-binary observability session: parses the flags above, owns the
/// tracer, and writes every requested output after the sweep.
class ObsSession {
 public:
  explicit ObsSession(const util::ArgParser& args);
  ~ObsSession();

  /// Attach the tracer (if tracing or telemetry was requested) and
  /// enable per-point online statistics (if telemetry or timeseries
  /// output was requested) on the sweep about to run.
  void attach(SweepSpec& spec);

  /// Write telemetry/trace/spatial outputs. Call once, after the sweep.
  void finish(const SweepSpec& spec, const std::vector<SweepPoint>& points,
              const metrics::SweepStats* stats);

  obs::Tracer* tracer() noexcept { return tracer_.get(); }

 private:
  std::string metrics_path_;
  std::string timeseries_path_;
  std::string trace_path_;
  std::string spatial_prefix_;
  std::string spatial_limiter_;
  double spatial_load_;
  std::uint64_t online_window_;
  std::uint64_t profile_period_;
  std::unique_ptr<obs::Tracer> tracer_;
};

}  // namespace wormsim::harness
