// Trace replay driver: feed a recorded Trace into a Simulator cycle by
// cycle. A replayed trace reproduces exactly what the equivalent live
// Workload would have generated (messages enter the source queues at
// the same cycles in the same order).
#pragma once

#include "sim/simulator.hpp"
#include "traffic/trace.hpp"

namespace wormsim::harness {

class TraceReplayer {
 public:
  explicit TraceReplayer(const traffic::Trace& trace) : trace_(&trace) {}

  /// Push every record generated at the simulator's current cycle, then
  /// step once. Returns false once the trace is exhausted AND the
  /// current cycle is past its horizon (the caller may keep stepping to
  /// drain).
  bool pump_and_step(sim::Simulator& sim);

  /// Drive the simulator through the whole trace plus up to
  /// `drain_cycles` extra cycles or until the network drains.
  void run_to_completion(sim::Simulator& sim, std::uint64_t drain_cycles);

  std::size_t replayed() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ >= trace_->size(); }

 private:
  const traffic::Trace* trace_;
  std::size_t pos_ = 0;
};

}  // namespace wormsim::harness
