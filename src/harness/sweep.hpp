// Offered-load sweep harness shared by the figure benches and examples.
//
// A sweep runs one simulation per (limiter, offered-load) point and
// prints CSV rows compatible with the paper's figures: latency and
// accepted traffic versus offered traffic, per mechanism.
//
// Parallel execution: points are fully independent, so the engine
// submits each one to a work-stealing thread pool (`jobs` workers;
// 0 = WORMSIM_JOBS env or hardware concurrency, 1 = the serial code
// path with no pool). Every point derives its own RNG stream from the
// base seed by index (util::derive_stream_seed), and results land in
// pre-sized slots indexed by point, so CSV output is bit-identical
// regardless of thread count or scheduling order.
//
// Scale control: `apply_scale_env` honours WORMSIM_FAST=1 (shrink to the
// 64-node small preset and shorten the windows) so the full bench suite
// stays runnable on modest machines; the committed outputs record which
// mode produced them.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "metrics/collector.hpp"
#include "metrics/online/online_stats.hpp"
#include "metrics/sweep_stats.hpp"
#include "obs/tracer.hpp"
#include "util/stats.hpp"
#include "util/cli.hpp"

namespace wormsim::harness {

struct SweepPoint {
  core::LimiterKind limiter;
  double offered;
  metrics::SimResult result;
  /// Per-point streaming statistics (latency histogram, windowed time
  /// series, saturation verdict); null unless SweepSpec::online was set.
  std::shared_ptr<metrics::OnlineStats> online;
};

struct SweepSpec {
  config::SimConfig base;
  std::vector<core::LimiterKind> limiters;
  std::vector<double> offered_loads;
  /// Called after each point finishes (progress reporting); may be
  /// empty. Invocations are serialized behind a mutex, so the callback
  /// needs no locking of its own — but under `jobs > 1` points complete
  /// in an arbitrary order, so it must not assume sweep order.
  std::function<void(const SweepPoint&)> on_point;
  /// Worker threads: 0 = WORMSIM_JOBS env override or hardware
  /// concurrency; 1 = serial fallback path (no thread pool at all).
  unsigned jobs = 0;
  /// Optional out-param: wall-clock/throughput counters for this sweep.
  metrics::SweepStats* stats = nullptr;
  /// Optional event tracer. Each simulation is bracketed with
  /// begin_point/end_point (pid = flattened grid index, which matches
  /// the telemetry record index) and attached for the duration of the
  /// run. Purely observational: results are unchanged.
  obs::Tracer* tracer = nullptr;
  /// Emit a "[done/total] mechanism @ load ... eta" line on stderr
  /// after every point (obs::logf at Info level).
  bool progress = false;
  /// Attach a per-point metrics::OnlineStats (streaming histograms,
  /// windowed time series, saturation detector) configured by
  /// `online_config`. Results land in SweepPoint::online. All recorded
  /// quantities are integers derived from simulation state, so
  /// telemetry built from them is byte-identical at any `jobs`.
  bool online = false;
  metrics::OnlineConfig online_config{};
};

/// Run every (limiter, load) combination; each point uses a fresh
/// simulator seeded deterministically from the base seed (stream split
/// by point index — thread-count independent).
std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

/// Emit the standard figure CSV:
/// mechanism,offered,latency_avg,latency_sd,accepted,deadlock_pct,...
void write_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& points);

/// One sweep point aggregated over several independent seeds: reports
/// mean and spread so figure shapes can be checked against run-to-run
/// noise.
struct ReplicatedPoint {
  core::LimiterKind limiter;
  double offered = 0.0;
  unsigned replications = 0;
  util::RunningStats latency;       // of per-run latency means
  util::RunningStats accepted;      // of per-run accepted traffic
  util::RunningStats deadlock_pct;  // of per-run deadlock percentages
};

/// Like run_sweep but each point is run `replications` times with
/// decorrelated seeds (one derived stream per simulation). Replications
/// execute in parallel under `spec.jobs`, but per-run results are
/// accumulated into slots first and folded into the RunningStats in
/// replication-index order, so the reported mean/sd are identical no
/// matter which replication finishes first.
std::vector<ReplicatedPoint> run_replicated_sweep(const SweepSpec& spec,
                                                  unsigned replications);

/// CSV with mean and sample standard deviation per metric.
void write_replicated_csv(std::ostream& out,
                          const std::vector<ReplicatedPoint>& points);

/// Evenly spaced loads in [lo, hi].
std::vector<double> load_range(double lo, double hi, unsigned points);

/// Apply command-line overrides (--k, --n, --vcs, --msg-len, --pattern,
/// --warmup, --measure, --seed, ...) and the WORMSIM_FAST environment
/// switch to a base config. Used by every bench binary so they share
/// flags.
void apply_common_flags(config::SimConfig& cfg, const util::ArgParser& args);
void apply_scale_env(config::SimConfig& cfg);

/// Materialize a `--faults <spec>` flag into cfg.sim.faults, where
/// <spec> is either a schedule file path or a `transient:...` preset
/// (see fault/schedule.hpp). Must run AFTER apply_common_flags and
/// apply_scale_env: presets pick random links from the *final*
/// topology, and WORMSIM_FAST=1 shrinks `n`. No-op without the flag.
void apply_fault_flag(config::SimConfig& cfg, const util::ArgParser& args);

/// Read the `--jobs N` flag for SweepSpec::jobs (0 = auto: WORMSIM_JOBS
/// env override or hardware concurrency). Shared by every bench/example
/// so the knob is spelled the same everywhere.
unsigned jobs_flag(const util::ArgParser& args);

/// Human banner describing a config (topology, router, workload).
std::string describe(const config::SimConfig& cfg);

}  // namespace wormsim::harness
