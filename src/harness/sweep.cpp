#include "harness/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace wormsim::harness {

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  std::vector<SweepPoint> points;
  points.reserve(spec.limiters.size() * spec.offered_loads.size());
  unsigned index = 0;
  for (const auto limiter : spec.limiters) {
    for (const double offered : spec.offered_loads) {
      config::SimConfig cfg = spec.base;
      cfg.sim.limiter.kind = limiter;
      cfg.workload.offered_flits_per_node_cycle = offered;
      // Decorrelate points while keeping the sweep reproducible.
      cfg.seed = spec.base.seed + 0x9e3779b9ULL * ++index;
      SweepPoint point{limiter, offered, config::run_experiment(cfg)};
      if (spec.on_point) spec.on_point(point);
      points.push_back(std::move(point));
    }
  }
  return points;
}

void write_sweep_csv(std::ostream& out,
                     const std::vector<SweepPoint>& points) {
  util::CsvWriter csv(out);
  csv.header({"mechanism", "offered_flits_node_cycle", "latency_avg_cycles",
              "latency_sd_cycles", "latency_p99_cycles",
              "accepted_flits_node_cycle", "deadlock_pct", "avg_queue_len",
              "fully_drained", "saturated"});
  for (const auto& p : points) {
    const auto& r = p.result;
    csv.row(core::limiter_name(p.limiter), p.offered, r.latency_mean,
            r.latency_stddev, r.latency_p99, r.accepted_flits_per_node_cycle,
            r.deadlock_pct, r.avg_queue_len,
            static_cast<int>(r.fully_drained), static_cast<int>(r.saturated));
  }
}

std::vector<ReplicatedPoint> run_replicated_sweep(const SweepSpec& spec,
                                                  unsigned replications) {
  std::vector<ReplicatedPoint> points;
  if (replications == 0) return points;
  points.reserve(spec.limiters.size() * spec.offered_loads.size());
  unsigned index = 0;
  for (const auto limiter : spec.limiters) {
    for (const double offered : spec.offered_loads) {
      ReplicatedPoint agg;
      agg.limiter = limiter;
      agg.offered = offered;
      agg.replications = replications;
      for (unsigned rep = 0; rep < replications; ++rep) {
        config::SimConfig cfg = spec.base;
        cfg.sim.limiter.kind = limiter;
        cfg.workload.offered_flits_per_node_cycle = offered;
        cfg.seed = spec.base.seed + 0x9e3779b9ULL * ++index;
        const metrics::SimResult r = config::run_experiment(cfg);
        agg.latency.add(r.latency_mean);
        agg.accepted.add(r.accepted_flits_per_node_cycle);
        agg.deadlock_pct.add(r.deadlock_pct);
        if (spec.on_point) spec.on_point(SweepPoint{limiter, offered, r});
      }
      points.push_back(std::move(agg));
    }
  }
  return points;
}

void write_replicated_csv(std::ostream& out,
                          const std::vector<ReplicatedPoint>& points) {
  util::CsvWriter csv(out);
  csv.header({"mechanism", "offered_flits_node_cycle", "replications",
              "latency_mean", "latency_run_sd", "accepted_mean",
              "accepted_run_sd", "deadlock_pct_mean", "deadlock_pct_run_sd"});
  for (const auto& p : points) {
    csv.row(core::limiter_name(p.limiter), p.offered, p.replications,
            p.latency.mean(), std::sqrt(p.latency.sample_variance()),
            p.accepted.mean(), std::sqrt(p.accepted.sample_variance()),
            p.deadlock_pct.mean(),
            std::sqrt(p.deadlock_pct.sample_variance()));
  }
}

std::vector<double> load_range(double lo, double hi, unsigned points) {
  std::vector<double> out;
  if (points == 0) return out;
  if (points == 1) {
    out.push_back(lo);
    return out;
  }
  out.reserve(points);
  for (unsigned i = 0; i < points; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(points - 1));
  }
  return out;
}

void apply_common_flags(config::SimConfig& cfg, const util::ArgParser& args) {
  cfg.k = static_cast<unsigned>(args.get_uint("k", cfg.k));
  cfg.n = static_cast<unsigned>(args.get_uint("n", cfg.n));
  cfg.sim.net.num_vcs =
      static_cast<unsigned>(args.get_uint("vcs", cfg.sim.net.num_vcs));
  cfg.sim.net.buf_flits =
      static_cast<unsigned>(args.get_uint("buf", cfg.sim.net.buf_flits));
  cfg.workload.length.fixed = static_cast<std::uint32_t>(
      args.get_uint("msg-len", cfg.workload.length.fixed));
  if (auto p = args.get("pattern")) {
    cfg.workload.pattern = traffic::parse_pattern(*p);
  }
  if (auto r = args.get("routing")) {
    cfg.sim.algorithm = routing::parse_algorithm(*r);
  }
  if (auto s = args.get("selection")) {
    cfg.sim.selection = routing::parse_selection(*s);
  }
  cfg.sim.detection.threshold = static_cast<std::uint32_t>(
      args.get_uint("deadlock-threshold", cfg.sim.detection.threshold));
  cfg.protocol.warmup = args.get_uint("warmup", cfg.protocol.warmup);
  cfg.protocol.measure = args.get_uint("measure", cfg.protocol.measure);
  cfg.protocol.drain_max = args.get_uint("drain", cfg.protocol.drain_max);
  cfg.seed = args.get_uint("seed", cfg.seed);
}

void apply_scale_env(config::SimConfig& cfg) {
  const char* fast = std::getenv("WORMSIM_FAST");
  if (fast && fast[0] == '1') {
    cfg.n = 2;  // 64-node torus
    cfg.protocol.warmup = std::min<std::uint64_t>(cfg.protocol.warmup, 3000);
    cfg.protocol.measure =
        std::min<std::uint64_t>(cfg.protocol.measure, 10000);
    cfg.protocol.drain_max =
        std::min<std::uint64_t>(cfg.protocol.drain_max, 10000);
  }
}

std::string describe(const config::SimConfig& cfg) {
  std::ostringstream os;
  const topo::KAryNCube t(cfg.k, cfg.n);
  os << "# " << cfg.k << "-ary " << cfg.n << "-cube (" << t.num_nodes()
     << " nodes), " << cfg.sim.net.num_vcs << " VCs x "
     << cfg.sim.net.buf_flits << "-flit buffers, routing="
     << routing::algorithm_name(cfg.sim.algorithm)
     << ", selection=" << routing::selection_name(cfg.sim.selection)
     << ", pattern=" << traffic::pattern_name(cfg.workload.pattern)
     << ", msg=" << cfg.workload.length.fixed << " flits"
     << ", detect=" << cfg.sim.detection.threshold << " cycles"
     << ", warmup=" << cfg.protocol.warmup
     << ", measure=" << cfg.protocol.measure << ", seed=" << cfg.seed;
  return os.str();
}

}  // namespace wormsim::harness
