#include "harness/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "fault/schedule.hpp"
#include "obs/log.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wormsim::harness {

namespace {

/// The flattened (limiter, load) grid in sweep order. The position in
/// this vector is both the output slot and the RNG stream index, which
/// is what makes the parallel engine's results independent of thread
/// count and completion order.
struct GridPoint {
  core::LimiterKind limiter;
  double offered;
};

std::vector<GridPoint> flatten_grid(const SweepSpec& spec) {
  std::vector<GridPoint> grid;
  grid.reserve(spec.limiters.size() * spec.offered_loads.size());
  for (const auto limiter : spec.limiters) {
    for (const double offered : spec.offered_loads) {
      grid.push_back({limiter, offered});
    }
  }
  return grid;
}

std::string point_label(const GridPoint& p) {
  std::ostringstream os;
  os << core::limiter_name(p.limiter) << " @ " << p.offered;
  return os.str();
}

/// Serialized (caller holds the progress mutex) per-point progress line.
class ProgressMeter {
 public:
  ProgressMeter(bool enabled, std::uint64_t total)
      : enabled_(enabled),
        total_(total),
        start_(std::chrono::steady_clock::now()) {}

  void on_done(const GridPoint& p, const metrics::SimResult& r) {
    ++done_;
    // Progress is purely informational: skip even the formatting work
    // when the leveled logger would drop the line (--log-level warn).
    if (!enabled_ || !obs::log_enabled(obs::LogLevel::Info)) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double eta =
        done_ ? elapsed / static_cast<double>(done_) *
                    static_cast<double>(total_ - done_)
              : 0.0;
    obs::logf(obs::LogLevel::Info,
              "[%llu/%llu] %s: latency=%.1f accepted=%.4f dl=%.2f%%%s "
              "(%.1fs elapsed, eta %.0fs)\n",
              static_cast<unsigned long long>(done_),
              static_cast<unsigned long long>(total_),
              point_label(p).c_str(), r.latency_mean,
              r.accepted_flits_per_node_cycle, r.deadlock_pct,
              r.saturated ? " saturated" : "", elapsed, eta);
  }

 private:
  bool enabled_;
  std::uint64_t done_ = 0;
  std::uint64_t total_;
  std::chrono::steady_clock::time_point start_;
};

config::SimConfig point_config(const SweepSpec& spec, const GridPoint& p,
                               std::uint64_t stream) {
  config::SimConfig cfg = spec.base;
  cfg.sim.limiter.kind = p.limiter;
  cfg.workload.offered_flits_per_node_cycle = p.offered;
  // Decorrelated, order-independent per-simulation stream.
  cfg.seed = util::derive_stream_seed(spec.base.seed, stream);
  return cfg;
}

/// Guard against --jobs x --shards oversubscription: `jobs` concurrent
/// simulations each spinning up a shard crew must fit within the
/// machine's hardware threads, or every crew barrier degenerates into a
/// scheduler fight. Returns the (possibly clamped) per-simulation shard
/// count and warns once when the request was reduced. Shard counts only
/// shrink here, never grow, and the sharded core is bit-exact at any
/// shard count, so clamping cannot change results.
unsigned effective_shards(const SweepSpec& spec, unsigned jobs) {
  const unsigned requested = spec.base.sim.shards;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned eff =
      util::ThreadPool::clamp_shards_for_jobs(requested, jobs, hw);
  const unsigned resolved = requested == 0 ? hw : requested;
  if (eff != resolved) {
    obs::logf(obs::LogLevel::Warn,
              "clamping shards %u -> %u: %u jobs x %u shards would "
              "oversubscribe %u hardware threads\n",
              resolved, eff, jobs, resolved, hw);
  }
  return eff;
}

class SweepTimer {
 public:
  SweepTimer(metrics::SweepStats* stats, unsigned jobs,
             std::uint64_t points, std::uint64_t simulations)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {
    if (!stats_) return;
    stats_->jobs = jobs;
    stats_->points = points;
    stats_->simulations = simulations;
  }
  ~SweepTimer() {
    if (!stats_) return;
    stats_->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
  }

 private:
  metrics::SweepStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  const std::vector<GridPoint> grid = flatten_grid(spec);
  const unsigned jobs = util::ThreadPool::resolve_jobs(spec.jobs);
  const unsigned shards = effective_shards(spec, jobs);
  const SweepTimer timer(spec.stats, jobs, grid.size(), grid.size());

  std::vector<SweepPoint> points(grid.size());
  std::mutex progress_mu;
  ProgressMeter meter(spec.progress, grid.size());
  config::RunHooks hooks;
  hooks.tracer = spec.tracer;
  util::parallel_for(grid.size(), jobs, [&](std::size_t i) {
    config::SimConfig cfg = point_config(spec, grid[i], i);
    cfg.sim.shards = shards;
    if (spec.tracer) {
      spec.tracer->begin_point(static_cast<std::uint32_t>(i),
                               point_label(grid[i]));
    }
    // Per-point hooks copy: the online recorder is per-simulation
    // state, so each task attaches its own (the shared tracer/spatial
    // observers are internally synchronized, OnlineStats is not).
    config::RunHooks task_hooks = hooks;
    std::shared_ptr<metrics::OnlineStats> online;
    if (spec.online) {
      online = std::make_shared<metrics::OnlineStats>(
          topo::KAryNCube(cfg.k, cfg.n).num_nodes(), spec.online_config);
      task_hooks.online = online.get();
    }
    SweepPoint point{grid[i].limiter, grid[i].offered,
                     config::run_experiment(cfg, task_hooks),
                     std::move(online)};
    if (spec.tracer) {
      spec.tracer->end_point(static_cast<std::uint32_t>(i),
                             point.result.total_cycles);
    }
    {
      const std::lock_guard<std::mutex> lock(progress_mu);
      meter.on_done(grid[i], point.result);
      if (spec.on_point) spec.on_point(point);
    }
    points[i] = std::move(point);
  });
  if (spec.stats) {
    for (const auto& p : points) spec.stats->sim_cycles += p.result.total_cycles;
  }
  return points;
}

void write_sweep_csv(std::ostream& out,
                     const std::vector<SweepPoint>& points) {
  util::CsvWriter csv(out);
  csv.header({"mechanism", "offered_flits_node_cycle", "latency_avg_cycles",
              "latency_sd_cycles", "latency_p99_cycles",
              "accepted_flits_node_cycle", "deadlock_pct", "avg_queue_len",
              "fully_drained", "saturated"});
  for (const auto& p : points) {
    const auto& r = p.result;
    csv.row(core::limiter_name(p.limiter), p.offered, r.latency_mean,
            r.latency_stddev, r.latency_p99, r.accepted_flits_per_node_cycle,
            r.deadlock_pct, r.avg_queue_len,
            static_cast<int>(r.fully_drained), static_cast<int>(r.saturated));
  }
}

std::vector<ReplicatedPoint> run_replicated_sweep(const SweepSpec& spec,
                                                  unsigned replications) {
  std::vector<ReplicatedPoint> points;
  if (replications == 0) return points;
  const std::vector<GridPoint> grid = flatten_grid(spec);
  const std::uint64_t total =
      static_cast<std::uint64_t>(grid.size()) * replications;
  const unsigned jobs = util::ThreadPool::resolve_jobs(spec.jobs);
  const unsigned shards = effective_shards(spec, jobs);
  const SweepTimer timer(spec.stats, jobs, grid.size(), total);

  // Every (point, replication) simulation is one task. Results land in
  // slots first; folding into the RunningStats happens afterwards in
  // replication-index order, because Welford accumulation is
  // order-sensitive in the last bits — folding in completion order
  // would make the reported mean/sd depend on thread scheduling.
  std::vector<metrics::SimResult> runs(total);
  std::mutex progress_mu;
  ProgressMeter meter(spec.progress, total);
  config::RunHooks hooks;
  hooks.tracer = spec.tracer;
  util::parallel_for(total, jobs, [&](std::size_t task) {
    const GridPoint& p = grid[task / replications];
    config::SimConfig cfg = point_config(spec, p, task);
    cfg.sim.shards = shards;
    if (spec.tracer) {
      spec.tracer->begin_point(
          static_cast<std::uint32_t>(task),
          point_label(p) + " rep " +
              std::to_string(task % replications));
    }
    runs[task] = config::run_experiment(cfg, hooks);
    if (spec.tracer) {
      spec.tracer->end_point(static_cast<std::uint32_t>(task),
                             runs[task].total_cycles);
    }
    {
      const std::lock_guard<std::mutex> lock(progress_mu);
      meter.on_done(p, runs[task]);
      if (spec.on_point) spec.on_point(SweepPoint{p.limiter, p.offered,
                                                  runs[task]});
    }
  });
  if (spec.stats) {
    for (const auto& r : runs) spec.stats->sim_cycles += r.total_cycles;
  }

  points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ReplicatedPoint agg;
    agg.limiter = grid[i].limiter;
    agg.offered = grid[i].offered;
    agg.replications = replications;
    for (unsigned rep = 0; rep < replications; ++rep) {
      const metrics::SimResult& r = runs[i * replications + rep];
      agg.latency.add(r.latency_mean);
      agg.accepted.add(r.accepted_flits_per_node_cycle);
      agg.deadlock_pct.add(r.deadlock_pct);
    }
    points.push_back(std::move(agg));
  }
  return points;
}

void write_replicated_csv(std::ostream& out,
                          const std::vector<ReplicatedPoint>& points) {
  util::CsvWriter csv(out);
  csv.header({"mechanism", "offered_flits_node_cycle", "replications",
              "latency_mean", "latency_run_sd", "accepted_mean",
              "accepted_run_sd", "deadlock_pct_mean", "deadlock_pct_run_sd"});
  for (const auto& p : points) {
    csv.row(core::limiter_name(p.limiter), p.offered, p.replications,
            p.latency.mean(), std::sqrt(p.latency.sample_variance()),
            p.accepted.mean(), std::sqrt(p.accepted.sample_variance()),
            p.deadlock_pct.mean(),
            std::sqrt(p.deadlock_pct.sample_variance()));
  }
}

std::vector<double> load_range(double lo, double hi, unsigned points) {
  std::vector<double> out;
  if (points == 0) return out;
  if (points == 1) {
    out.push_back(lo);
    return out;
  }
  out.reserve(points);
  for (unsigned i = 0; i < points; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(points - 1));
  }
  return out;
}

void apply_common_flags(config::SimConfig& cfg, const util::ArgParser& args) {
  cfg.k = static_cast<unsigned>(args.get_uint("k", cfg.k));
  cfg.n = static_cast<unsigned>(args.get_uint("n", cfg.n));
  cfg.sim.net.num_vcs =
      static_cast<unsigned>(args.get_uint("vcs", cfg.sim.net.num_vcs));
  cfg.sim.net.buf_flits =
      static_cast<unsigned>(args.get_uint("buf", cfg.sim.net.buf_flits));
  cfg.workload.length.fixed = static_cast<std::uint32_t>(
      args.get_uint("msg-len", cfg.workload.length.fixed));
  if (auto p = args.get("pattern")) {
    cfg.workload.pattern = traffic::parse_pattern(*p);
  }
  if (auto r = args.get("routing")) {
    cfg.sim.algorithm = routing::parse_algorithm(*r);
  }
  if (auto s = args.get("selection")) {
    cfg.sim.selection = routing::parse_selection(*s);
  }
  if (auto c = args.get("core")) {
    cfg.sim.core = sim::parse_sim_core(*c);
  }
  if (auto fc = args.get("flow-control")) {
    cfg.sim.flow.scheme = sim::parse_flow_control(*fc);
  }
  cfg.sim.flow.credit_return_delay = static_cast<unsigned>(args.get_uint(
      "credit-delay", cfg.sim.flow.credit_return_delay));
  cfg.sim.detection.threshold = static_cast<std::uint32_t>(
      args.get_uint("deadlock-threshold", cfg.sim.detection.threshold));
  cfg.sim.shards =
      static_cast<unsigned>(args.get_uint("shards", cfg.sim.shards));
  cfg.protocol.warmup = args.get_uint("warmup", cfg.protocol.warmup);
  cfg.protocol.measure = args.get_uint("measure", cfg.protocol.measure);
  cfg.protocol.drain_max = args.get_uint("drain", cfg.protocol.drain_max);
  cfg.seed = args.get_uint("seed", cfg.seed);
  if (auto lv = args.get("log-level")) {
    obs::set_log_level(obs::parse_log_level(*lv));
  }
}

void apply_fault_flag(config::SimConfig& cfg, const util::ArgParser& args) {
  if (auto spec = args.get("faults")) {
    const topo::KAryNCube topo(cfg.k, cfg.n);
    cfg.sim.faults = fault::load_faults(*spec, topo, cfg.seed);
  }
}

unsigned jobs_flag(const util::ArgParser& args) {
  return static_cast<unsigned>(args.get_uint("jobs", 0));
}

void apply_scale_env(config::SimConfig& cfg) {
  const char* fast = std::getenv("WORMSIM_FAST");
  if (fast && fast[0] == '1') {
    cfg.n = 2;  // 64-node torus
    cfg.protocol.warmup = std::min<std::uint64_t>(cfg.protocol.warmup, 3000);
    cfg.protocol.measure =
        std::min<std::uint64_t>(cfg.protocol.measure, 10000);
    cfg.protocol.drain_max =
        std::min<std::uint64_t>(cfg.protocol.drain_max, 10000);
  }
}

std::string describe(const config::SimConfig& cfg) {
  std::ostringstream os;
  const topo::KAryNCube t(cfg.k, cfg.n);
  os << "# " << cfg.k << "-ary " << cfg.n << "-cube (" << t.num_nodes()
     << " nodes), " << cfg.sim.net.num_vcs << " VCs x "
     << cfg.sim.net.buf_flits << "-flit buffers, routing="
     << routing::algorithm_name(cfg.sim.algorithm)
     << ", selection=" << routing::selection_name(cfg.sim.selection)
     << ", pattern=" << traffic::pattern_name(cfg.workload.pattern)
     << ", msg=" << cfg.workload.length.fixed << " flits"
     << ", detect=" << cfg.sim.detection.threshold << " cycles"
     << ", core=" << sim::sim_core_name(cfg.sim.core)
     << ", warmup=" << cfg.protocol.warmup
     << ", measure=" << cfg.protocol.measure << ", seed=" << cfg.seed;
  // Only non-empty schedules appear, so fault-free banners (and any CSV
  // that embeds them) stay byte-identical to pre-fault-subsystem output.
  if (!cfg.sim.faults.empty()) {
    os << ", faults=" << cfg.sim.faults.size() << " events";
  }
  // Same convention for flow control: wormhole (the default) is silent.
  if (cfg.sim.flow.scheme != sim::FlowControl::Wormhole) {
    os << ", flow-control=" << sim::flow_control_name(cfg.sim.flow.scheme);
    if (cfg.sim.flow.scheme == sim::FlowControl::Credit) {
      os << " (credit-delay=" << cfg.sim.flow.credit_return_delay << ")";
    }
  }
  // And for sharding: 1 (the sequential path) is silent; 0 means "one
  // per hardware thread" and is reported verbatim. The sweep harness
  // may still clamp this down when jobs x shards would oversubscribe
  // the machine, so the banner flags the value as a request.
  if (cfg.sim.shards != 1) {
    os << ", shards=" << cfg.sim.shards
       << " (clamped if jobs x shards exceeds hardware threads)";
  }
  const config::MemoryFootprint mem = config::estimate_memory(cfg);
  os << "\n# memory: " << std::fixed << std::setprecision(1)
     << mem.bytes_per_node() << " B/node ("
     << mem.total_bytes() / 1024 << " KiB total: network "
     << mem.network_bytes / 1024 << ", lut " << mem.lut_bytes / 1024
     << ", status " << mem.status_bytes / 1024 << ", active-sets "
     << mem.active_set_bytes / 1024 << ")";
  return os.str();
}

}  // namespace wormsim::harness
