#include "metrics/collector.hpp"

namespace wormsim::metrics {

Collector::Collector(NodeId num_nodes, Cycle window_start, Cycle window_end)
    : window_start_(window_start),
      window_end_(window_end),
      fairness_(num_nodes) {}

SimResult Collector::finish(NodeId num_nodes) const {
  SimResult r;
  r.latency_mean = latency_.mean();
  r.latency_stddev = latency_.stddev();
  r.latency_min = latency_.min();
  r.latency_max = latency_.max();
  r.latency_p50 = latency_hist_.quantile(0.50);
  r.latency_p95 = latency_hist_.quantile(0.95);
  r.latency_p99 = latency_hist_.quantile(0.99);

  const double window =
      static_cast<double>(window_end_ - window_start_);
  if (window > 0 && num_nodes > 0) {
    r.accepted_flits_per_node_cycle =
        static_cast<double>(flits_ejected_window_) /
        (window * static_cast<double>(num_nodes));
  }

  r.deadlock_detections = deadlocks_window_;
  r.messages_injected_window = injected_window_;
  r.deadlock_pct =
      injected_window_
          ? 100.0 * static_cast<double>(deadlocks_window_) /
                static_cast<double>(injected_window_)
          : 0.0;

  r.messages_generated = generated_;
  r.messages_injected = injected_;
  r.messages_delivered = delivered_;
  r.measured_delivered = measured_delivered_;
  r.measured_generated = measured_generated_;
  r.messages_lost = lost_;

  r.avg_queue_len = queue_len_.mean();
  r.max_queue_len = static_cast<std::uint64_t>(queue_len_.max());

  r.probe = probe_;
  return r;
}

}  // namespace wormsim::metrics
