// Spatial (per-channel / per-node) metrics: localizes *where* a network
// saturates, which whole-run aggregates (SimResult) cannot do.
//
// The simulator feeds counters through O(1) hooks and a periodic link
// sweep, all gated behind a branch-on-null pointer — the structure only
// observes, never participates, so attaching it cannot perturb results
// (enforced by tests/sim/test_core_equivalence). Link and node ids use
// the simulator's indexing (link = node * num_channels + out_channel
// for network links), which is reconstructible from the topology alone,
// so the CSV exporters need only a KAryNCube to annotate rows with
// endpoints, dimensions and grid coordinates for heatmap rendering
// (tools/plot_figures.py --heatmap).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "topology/kary_ncube.hpp"

namespace wormsim::metrics {

class SpatialMetrics {
 public:
  /// Sized for `num_nodes` nodes and `num_links` *network* links with
  /// `num_vcs` virtual channels each (injection links are not tracked:
  /// their occupancy is visible in the per-node queue counters).
  SpatialMetrics(std::uint32_t num_nodes, std::uint32_t num_links,
                 unsigned num_vcs);

  // --- Hooks the simulator drives (hot only while attached) -----------
  void on_injected(std::uint32_t node) noexcept { ++nodes_[node].injected; }
  void on_ejected_flit(std::uint32_t node) noexcept {
    ++nodes_[node].ejected_flits;
  }
  void on_queue_sample(std::uint32_t node, std::uint64_t depth) noexcept {
    NodeCounters& n = nodes_[node];
    n.queue_sum += depth;
    ++n.queue_samples;
    if (depth > n.queue_max) n.queue_max = depth;
  }
  /// Periodic sample of one link's allocated-VC count (0..num_vcs).
  void on_link_occupancy_sample(std::uint32_t link,
                                unsigned busy_vcs) noexcept {
    ++occ_hist_[link * (num_vcs_ + 1) + busy_vcs];
  }
  /// Final copy of a link's cumulative flit counter (end of run).
  void set_link_flits(std::uint32_t link, std::uint64_t flits) noexcept {
    link_flits_[link] = flits;
  }

  // --- Accessors -------------------------------------------------------
  std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(link_flits_.size());
  }
  unsigned num_vcs() const noexcept { return num_vcs_; }
  std::uint64_t link_flits(std::uint32_t link) const noexcept {
    return link_flits_[link];
  }
  std::uint64_t occupancy_samples(std::uint32_t link,
                                  unsigned busy_vcs) const noexcept {
    return occ_hist_[link * (num_vcs_ + 1) + busy_vcs];
  }
  std::uint64_t node_injected(std::uint32_t node) const noexcept {
    return nodes_[node].injected;
  }
  std::uint64_t node_ejected_flits(std::uint32_t node) const noexcept {
    return nodes_[node].ejected_flits;
  }
  std::uint64_t node_queue_max(std::uint32_t node) const noexcept {
    return nodes_[node].queue_max;
  }
  double node_queue_avg(std::uint32_t node) const noexcept {
    const NodeCounters& n = nodes_[node];
    return n.queue_samples ? static_cast<double>(n.queue_sum) /
                                 static_cast<double>(n.queue_samples)
                           : 0.0;
  }
  /// Mean allocated VCs on `link` over all occupancy samples.
  double mean_busy_vcs(std::uint32_t link) const noexcept;

  /// Fold another identically-shaped instance into this one: counters
  /// and sample sums add, queue_max takes the max. Every operation is
  /// associative and commutative, so partial observers (e.g. one per
  /// simulation shard over disjoint nodes/links) can be merged in any
  /// order and always reproduce the single sequential observer.
  void merge(const SpatialMetrics& other) noexcept;

  void reset() noexcept;

  // --- CSV exporters ---------------------------------------------------
  // The topology must match the one the feeding simulator ran on
  // (ids are positional). `cycles` converts flit counters to
  // utilization in flits/cycle.

  /// Per-physical-channel table:
  /// link,src,dst,dim,dir,src_x,src_y,flits_carried,utilization,mean_busy_vcs
  void write_channel_csv(std::ostream& out, const topo::KAryNCube& topo,
                         std::uint64_t cycles) const;
  /// Per-node table:
  /// node,x,y,coords,injected_msgs,ejected_flits,queue_avg,queue_max
  void write_node_csv(std::ostream& out, const topo::KAryNCube& topo,
                      std::uint64_t cycles) const;
  /// Long-format VC-occupancy histogram:
  /// link,src,dst,dim,dir,busy_vcs,samples
  void write_vc_occupancy_csv(std::ostream& out,
                              const topo::KAryNCube& topo) const;

 private:
  struct NodeCounters {
    std::uint64_t injected = 0;
    std::uint64_t ejected_flits = 0;
    std::uint64_t queue_sum = 0;
    std::uint64_t queue_samples = 0;
    std::uint64_t queue_max = 0;
  };

  unsigned num_vcs_;
  std::vector<NodeCounters> nodes_;
  std::vector<std::uint64_t> link_flits_;
  std::vector<std::uint64_t> occ_hist_;  // [link][0..num_vcs] flattened
};

}  // namespace wormsim::metrics
