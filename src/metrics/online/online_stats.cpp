#include "metrics/online/online_stats.hpp"

namespace wormsim::metrics {

namespace {
/// Windows with fewer deliveries than this don't update the latency
/// baseline: their percentiles are dominated by pipeline-fill noise.
constexpr std::uint64_t kBaselineMinDeliveries = 8;
}  // namespace

OnlineStats::OnlineStats(std::uint32_t num_nodes, const OnlineConfig& cfg)
    : cfg_(cfg), num_nodes_(num_nodes) {
  if (cfg_.window_cycles == 0) cfg_.window_cycles = 1;
  if (cfg_.onset_windows == 0) cfg_.onset_windows = 1;
}

void OnlineStats::close_window(Cycle t, const WindowSample& sample) {
  cur_.start_cycle = cur_start_;
  cur_.cycles = t + 1 - cur_start_;
  cur_.end = sample;
  cur_.credit_messages = sample.credit_messages - last_credit_messages_;
  last_credit_messages_ = sample.credit_messages;
  cur_.latency_count = window_hist_.count();
  cur_.latency_p99 = window_hist_.quantile(0.99);
  detect(cur_);
  windows_.push_back(cur_);
  cur_ = Window{};
  window_hist_.reset();
  cur_start_ = t + 1;
}

void OnlineStats::finish(Cycle now, const WindowSample& sample) {
  if (finished_) return;
  finished_ = true;
  if (now > cur_start_) close_window(now - 1, sample);
}

void OnlineStats::detect(Window& w) {
  const std::size_t index = windows_.size();  // index w will occupy

  // Signals. Occupancy starvation (from the limiter's status registers)
  // is the necessary condition: it separates genuine network saturation
  // from source-side overload, and is exactly what ALO's "at least one
  // completely free channel" rule keeps from happening.
  const bool starved =
      w.end.total_vcs != 0 &&
      static_cast<double>(w.end.free_vcs) <
          cfg_.free_vc_floor * static_cast<double>(w.end.total_vcs);
  const bool deficit =
      w.offered_flits > 0 &&
      static_cast<double>(w.accepted_flits) <
          cfg_.deficit_ratio * static_cast<double>(w.offered_flits);
  const bool blowup =
      baseline_p99_ > 0 && w.latency_count > 0 &&
      static_cast<double>(w.latency_p99) >
          cfg_.latency_blowup * static_cast<double>(baseline_p99_);
  const bool collapse =
      peak_accepted_ > 0 && w.accepted_flits * 2 < peak_accepted_;
  w.saturating = starved && (deficit || blowup || collapse);

  const bool settling = index < cfg_.settle_windows;
  if (!settling) {
    // Baselines are monotone (min / max), so post-saturation windows
    // can never corrupt them; settle windows are excluded because the
    // network is still filling.
    if (w.latency_count >= kBaselineMinDeliveries &&
        (baseline_p99_ == 0 || w.latency_p99 < baseline_p99_))
      baseline_p99_ = w.latency_p99;
    peak_accepted_ = std::max(peak_accepted_, w.accepted_flits);
  }

  if (settling || !w.saturating) {
    consecutive_ = 0;
    return;
  }
  ++consecutive_;
  if (!saturated_ && consecutive_ >= cfg_.onset_windows) {
    saturated_ = true;
    const std::size_t first = index + 1 - cfg_.onset_windows;
    onset_cycle_ = first == index ? w.start_cycle : windows_[first].start_cycle;
  }
}

}  // namespace wormsim::metrics
