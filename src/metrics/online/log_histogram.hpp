// Log-bucketed (HDR-style) streaming histogram for latency distributions.
//
// Values are bucketed exactly below kSubBuckets and into kSubBuckets
// sub-buckets per power-of-two octave above that, giving a bounded
// relative error of 1/kSubBuckets (~3%) at any magnitude. All state is
// integer counts, so merging two histograms is an element-wise add:
// exactly associative and commutative, which keeps sweep telemetry
// byte-identical regardless of how work was partitioned across threads.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wormsim::metrics {

class LogHistogram {
 public:
  /// log2 of the number of sub-buckets per octave.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;

  struct Bucket {
    std::uint64_t lo = 0;     ///< smallest value mapped to this bucket
    std::uint64_t hi = 0;     ///< largest value mapped to this bucket
    std::uint64_t count = 0;  ///< recorded samples in [lo, hi]
  };

  void add(std::uint64_t value, std::uint64_t count = 1) {
    const std::size_t i = bucket_index(value);
    if (bins_.size() <= i) bins_.resize(i + 1, 0);
    bins_[i] += count;
    total_ += count;
    max_ = std::max(max_, value);
  }

  /// Element-wise count merge; order of merges never changes the result.
  void merge(const LogHistogram& other) {
    if (bins_.size() < other.bins_.size()) bins_.resize(other.bins_.size(), 0);
    for (std::size_t i = 0; i < other.bins_.size(); ++i)
      bins_[i] += other.bins_[i];
    total_ += other.total_;
    max_ = std::max(max_, other.max_);
  }

  /// Zero all counts but keep bucket storage (cheap per-window reuse).
  void reset() {
    std::fill(bins_.begin(), bins_.end(), 0);
    total_ = 0;
    max_ = 0;
  }

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t max_value() const noexcept { return max_; }

  /// Value at quantile q in [0, 1]: the upper bound of the first bucket
  /// whose cumulative count reaches ceil(q * total). Integer-exact for
  /// values below kSubBuckets; within one sub-bucket otherwise.
  std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    double target_f = std::ceil(q * static_cast<double>(total_));
    auto target = static_cast<std::uint64_t>(target_f);
    target = std::clamp<std::uint64_t>(target, 1, total_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      cum += bins_[i];
      if (cum >= target) return std::min(bucket_high(i), max_);
    }
    return max_;
  }

  /// Visit non-empty buckets in increasing value order.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      if (bins_[i] != 0)
        fn(Bucket{bucket_low(i), bucket_high(i), bins_[i]});
    }
  }

  bool operator==(const LogHistogram& other) const {
    if (total_ != other.total_ || max_ != other.max_) return false;
    const std::size_t n = std::max(bins_.size(), other.bins_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t a = i < bins_.size() ? bins_[i] : 0;
      const std::uint64_t b = i < other.bins_.size() ? other.bins_[i] : 0;
      if (a != b) return false;
    }
    return true;
  }

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned shift = std::bit_width(v) - 1 - kSubBits;
    const std::uint64_t sub = v >> shift;  // in [kSubBuckets, 2*kSubBuckets)
    return static_cast<std::size_t>(shift * kSubBuckets + sub);
  }

  static std::uint64_t bucket_low(std::size_t i) noexcept {
    if (i < 2 * kSubBuckets) return i;
    const std::uint64_t shift = i / kSubBuckets - 1;
    const std::uint64_t sub = kSubBuckets + i % kSubBuckets;
    return sub << shift;
  }

  static std::uint64_t bucket_high(std::size_t i) noexcept {
    if (i < 2 * kSubBuckets) return i;
    const std::uint64_t shift = i / kSubBuckets - 1;
    const std::uint64_t sub = kSubBuckets + i % kSubBuckets;
    return ((sub + 1) << shift) - 1;
  }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace wormsim::metrics
