// Per-phase cycle-loop self-profiler.
//
// When enabled (--profile), the simulator times each phase of a sampled
// cycle (every profile_period cycles) with a monotonic clock and
// attributes the cost here. Results are wall-clock and therefore
// nondeterministic; they are only ever exported inside the telemetry
// "perf" section, which consumers treat as volatile.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace wormsim::metrics {

enum class Phase : std::uint8_t {
  Fault = 0,
  Generate,
  Arrivals,
  Eject,
  Route,
  Transmit,
  Inject,
  // Sharded evaluate/commit sub-phases: on a multi-shard simulator the
  // profiled cycle runs the split route/transmit pipeline, and the time
  // lands in these buckets instead of Route/Transmit. Appended after
  // the classic phases so existing telemetry field order is preserved.
  RouteEval,
  RouteCommit,
  TransmitEval,
  TransmitCommit,
  kCount
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

constexpr std::string_view phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::Fault: return "fault";
    case Phase::Generate: return "generate";
    case Phase::Arrivals: return "arrivals";
    case Phase::Eject: return "eject";
    case Phase::Route: return "route";
    case Phase::Transmit: return "transmit";
    case Phase::Inject: return "inject";
    case Phase::RouteEval: return "route_eval";
    case Phase::RouteCommit: return "route_commit";
    case Phase::TransmitEval: return "transmit_eval";
    case Phase::TransmitCommit: return "transmit_commit";
    case Phase::kCount: break;
  }
  return "?";
}

class PhaseProfiler {
 public:
  using clock = std::chrono::steady_clock;

  /// Time one phase of a sampled cycle. `fn` is the phase body.
  template <typename Fn>
  void time(Phase p, Fn&& fn) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    ns_[static_cast<std::size_t>(p)] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  }

  void count_sample() noexcept { ++sampled_cycles_; }

  std::uint64_t sampled_cycles() const noexcept { return sampled_cycles_; }
  std::uint64_t phase_ns(Phase p) const noexcept {
    return ns_[static_cast<std::size_t>(p)];
  }
  std::uint64_t total_ns() const noexcept {
    std::uint64_t sum = 0;
    for (auto v : ns_) sum += v;
    return sum;
  }
  /// Fraction of sampled time spent in phase p (0 when nothing sampled).
  double share(Phase p) const noexcept {
    const std::uint64_t tot = total_ns();
    return tot == 0 ? 0.0
                    : static_cast<double>(phase_ns(p)) /
                          static_cast<double>(tot);
  }

 private:
  std::array<std::uint64_t, kPhaseCount> ns_{};
  std::uint64_t sampled_cycles_ = 0;
};

}  // namespace wormsim::metrics
