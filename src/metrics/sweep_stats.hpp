// Wall-clock accounting for one harness sweep.
//
// A sweep point is one CSV row; a simulation is one run_experiment call
// (points × replications for replicated sweeps). The harness fills one
// of these per sweep so benches can print the engine's throughput and
// the speedup from `--jobs` is visible next to the figures it produces.
#pragma once

#include <cstdint>
#include <string>

namespace wormsim::metrics {

struct SweepStats {
  unsigned jobs = 0;              // worker count the engine actually used
  std::uint64_t points = 0;       // CSV rows produced
  std::uint64_t simulations = 0;  // run_experiment calls (>= points)
  std::uint64_t sim_cycles = 0;   // simulated cycles, summed over runs
  double wall_seconds = 0.0;

  double points_per_second() const noexcept;
  double simulations_per_second() const noexcept;
  /// Aggregate simulated cycles per wall second across all workers —
  /// the sweep engine's core-speed figure of merit (scales with both
  /// `jobs` and the per-simulator cycle rate).
  double cycles_per_second() const noexcept;

  /// One human line for bench stderr, e.g.
  /// "28 points (28 sims, 1.2M cycles) in 12.41 s — 2.3 points/s,
  ///  96.7k cycles/s, jobs=4".
  std::string summary() const;
};

}  // namespace wormsim::metrics
