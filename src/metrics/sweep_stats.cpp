#include "metrics/sweep_stats.hpp"

#include <cstdio>

namespace wormsim::metrics {

double SweepStats::points_per_second() const noexcept {
  return wall_seconds > 0.0 ? static_cast<double>(points) / wall_seconds
                            : 0.0;
}

double SweepStats::simulations_per_second() const noexcept {
  return wall_seconds > 0.0
             ? static_cast<double>(simulations) / wall_seconds
             : 0.0;
}

std::string SweepStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%llu points (%llu sims) in %.2f s — %.2f points/s, jobs=%u",
                static_cast<unsigned long long>(points),
                static_cast<unsigned long long>(simulations), wall_seconds,
                points_per_second(), jobs);
  return buf;
}

}  // namespace wormsim::metrics
