#include "metrics/sweep_stats.hpp"

#include <cstdio>

namespace wormsim::metrics {

double SweepStats::points_per_second() const noexcept {
  return wall_seconds > 0.0 ? static_cast<double>(points) / wall_seconds
                            : 0.0;
}

double SweepStats::simulations_per_second() const noexcept {
  return wall_seconds > 0.0
             ? static_cast<double>(simulations) / wall_seconds
             : 0.0;
}

double SweepStats::cycles_per_second() const noexcept {
  return wall_seconds > 0.0
             ? static_cast<double>(sim_cycles) / wall_seconds
             : 0.0;
}

std::string SweepStats::summary() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%llu points (%llu sims, %.1fM cycles) in %.2f s — "
                "%.2f points/s, %.0fk cycles/s, jobs=%u",
                static_cast<unsigned long long>(points),
                static_cast<unsigned long long>(simulations),
                static_cast<double>(sim_cycles) / 1e6, wall_seconds,
                points_per_second(), cycles_per_second() / 1e3, jobs);
  return buf;
}

}  // namespace wormsim::metrics
