// Per-interval time series of network behaviour: lets studies see the
// *transient* dynamics (burst onsets, saturation collapse, recovery)
// that whole-run averages hide.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace wormsim::metrics {

class TimeSeries {
 public:
  struct Interval {
    std::uint64_t start_cycle = 0;
    std::uint64_t flits_ejected = 0;
    std::uint64_t messages_injected = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t deadlock_detections = 0;
    util::RunningStats latency;     // of deliveries in this interval
    std::uint64_t queue_total = 0;  // sampled at interval end
  };

  explicit TimeSeries(std::uint64_t interval_cycles)
      : interval_(interval_cycles ? interval_cycles : 1) {}

  std::uint64_t interval_cycles() const noexcept { return interval_; }

  void on_flits_ejected(std::uint64_t cycle, std::uint32_t count) {
    at(cycle).flits_ejected += count;
  }
  void on_injected(std::uint64_t cycle) { ++at(cycle).messages_injected; }
  void on_delivered(std::uint64_t cycle, double latency) {
    Interval& iv = at(cycle);
    ++iv.messages_delivered;
    iv.latency.add(latency);
  }
  void on_deadlock(std::uint64_t cycle) { ++at(cycle).deadlock_detections; }
  void on_queue_sample(std::uint64_t cycle, std::uint64_t total) {
    at(cycle).queue_total = total;
  }

  const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }

  /// Accepted traffic of one interval in flits/node/cycle.
  double accepted(std::size_t index, std::uint32_t num_nodes) const {
    return static_cast<double>(intervals_[index].flits_ejected) /
           (static_cast<double>(interval_) * num_nodes);
  }

 private:
  Interval& at(std::uint64_t cycle) {
    const std::size_t index = cycle / interval_;
    while (intervals_.size() <= index) {
      Interval iv;
      iv.start_cycle = intervals_.size() * interval_;
      intervals_.push_back(iv);
    }
    return intervals_[index];
  }

  std::uint64_t interval_;
  std::vector<Interval> intervals_;
};

}  // namespace wormsim::metrics
