// Measurement collection and the per-run result record.
//
// Paper metric definitions (§4): latency = cycles from generation to
// delivery, including source-queue time; traffic = flit reception rate
// in flits/node/cycle; detected deadlocks = messages detected as
// deadlocked over total messages sent (injected).
#pragma once

#include <cstdint>
#include <string>

#include "util/stats.hpp"

namespace wormsim::metrics {

using Cycle = std::uint64_t;
using NodeId = std::uint32_t;

/// ALO routing-occurrence statistics (the paper's Figure 2): fraction of
/// routing operations where (a) every useful physical channel had a free
/// VC, (b) some useful physical channel was completely free.
struct ProbeStats {
  std::uint64_t samples = 0;
  std::uint64_t rule_a = 0;
  std::uint64_t rule_b = 0;
  std::uint64_t either = 0;

  double pct_a() const noexcept {
    return samples ? 100.0 * static_cast<double>(rule_a) / static_cast<double>(samples) : 0.0;
  }
  double pct_b() const noexcept {
    return samples ? 100.0 * static_cast<double>(rule_b) / static_cast<double>(samples) : 0.0;
  }
  double pct_either() const noexcept {
    return samples ? 100.0 * static_cast<double>(either) / static_cast<double>(samples) : 0.0;
  }
};

/// Everything one simulation run reports.
struct SimResult {
  // Configuration echo
  double offered_flits_per_node_cycle = 0.0;
  std::string pattern;
  std::string limiter;
  std::uint32_t message_length = 0;

  // Latency (measured messages: generated inside the window and
  // delivered before the run ended)
  double latency_mean = 0.0;
  double latency_stddev = 0.0;
  double latency_min = 0.0;
  double latency_max = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;

  // Throughput
  double accepted_flits_per_node_cycle = 0.0;

  // Deadlocks (during the measurement window)
  std::uint64_t deadlock_detections = 0;
  std::uint64_t messages_injected_window = 0;
  double deadlock_pct = 0.0;  // detections / injected, in percent

  // Volume
  std::uint64_t messages_generated = 0;
  std::uint64_t messages_injected = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t measured_delivered = 0;
  std::uint64_t measured_generated = 0;
  std::uint64_t messages_lost = 0;  // dropped by fault reconfiguration

  // Source queues
  double avg_queue_len = 0.0;
  std::uint64_t max_queue_len = 0;

  // Probe (Figure 2)
  ProbeStats probe;

  // Run bookkeeping
  Cycle warmup_cycles = 0;
  Cycle measure_cycles = 0;
  Cycle total_cycles = 0;
  bool fully_drained = false;  // every measured message was delivered
  bool saturated = false;      // source queues grew without bound
  double wall_seconds = 0.0;

  // Simulation-core diagnostics (excluded from sweep CSVs so result
  // files stay byte-identical across cores; see write_sweep_csv).
  std::string core;               // "dense" | "active"
  double cycles_per_second = 0.0; // simulated cycles per wall second
  double scan_skip_ratio = 0.0;   // fraction of dense scan slots skipped
  double avg_active_links = 0.0;  // mean occupied network links / cycle
  double avg_active_nodes = 0.0;  // mean active-set nodes / cycle (active core)
  double route_memo_hit_rate = 0.0;  // blocked-header re-routes avoided
  // Sharded evaluate/commit speculation (zero on the sequential path):
  // decisions replayed by the commit phases, and how many an earlier
  // commit invalidated (re-run inline).
  std::uint64_t commit_decisions = 0;
  std::uint64_t commit_conflicts = 0;

  // Fault injection (all zero on healthy runs; also excluded from sweep
  // CSVs, which never carry fault columns)
  std::uint64_t fault_events = 0;  // schedule events applied so far
  std::uint64_t lut_rebuilds = 0;  // routing-table reconfigurations
};

/// Streaming collector the simulator feeds; produces a SimResult.
class Collector {
 public:
  Collector(NodeId num_nodes, Cycle window_start, Cycle window_end);

  bool in_window(Cycle t) const noexcept {
    return t >= window_start_ && t < window_end_;
  }

  void on_generated(Cycle t) noexcept {
    ++generated_;
    if (in_window(t)) ++measured_generated_;
  }
  void on_injected(NodeId node, Cycle t, bool counts_fairness) noexcept {
    ++injected_;
    if (in_window(t)) {
      ++injected_window_;
      if (counts_fairness) fairness_.increment(node);
    }
  }
  void on_delivered(Cycle gen_time, Cycle now, bool measured) noexcept {
    ++delivered_;
    if (measured) {
      ++measured_delivered_;
      const auto lat = static_cast<double>(now - gen_time);
      latency_.add(lat);
      latency_hist_.add(lat);
    }
  }
  void on_flits_ejected(Cycle t, std::uint32_t count) noexcept {
    if (in_window(t)) flits_ejected_window_ += count;
  }
  void on_deadlock(Cycle t) noexcept {
    if (in_window(t)) ++deadlocks_window_;
  }
  void on_probe(Cycle t, bool rule_a, bool rule_b) noexcept {
    if (!in_window(t)) return;
    ++probe_.samples;
    probe_.rule_a += rule_a;
    probe_.rule_b += rule_b;
    probe_.either += (rule_a || rule_b);
  }
  void on_queue_sample(std::size_t len) noexcept {
    queue_len_.add(static_cast<double>(len));
  }
  /// A message that will never be delivered: its destination died or
  /// became unreachable (fault reconfiguration).
  void on_lost(bool measured) noexcept {
    ++lost_;
    if (measured) ++measured_lost_;
  }

  std::uint64_t measured_generated() const noexcept {
    return measured_generated_;
  }
  std::uint64_t measured_delivered() const noexcept {
    return measured_delivered_;
  }
  std::uint64_t measured_lost() const noexcept { return measured_lost_; }
  const util::FairnessCounters& fairness() const noexcept { return fairness_; }

  /// Finalize into a SimResult (the caller fills the config echo and
  /// run-bookkeeping fields it owns).
  SimResult finish(NodeId num_nodes) const;

 private:
  Cycle window_start_;
  Cycle window_end_;

  util::RunningStats latency_;
  util::Histogram latency_hist_{1.0, 1u << 20};
  util::RunningStats queue_len_;
  util::FairnessCounters fairness_;
  ProbeStats probe_;

  std::uint64_t generated_ = 0;
  std::uint64_t measured_generated_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t injected_window_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t measured_delivered_ = 0;
  std::uint64_t flits_ejected_window_ = 0;
  std::uint64_t deadlocks_window_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t measured_lost_ = 0;
};

}  // namespace wormsim::metrics
