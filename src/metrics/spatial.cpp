#include "metrics/spatial.hpp"

#include <string>

#include "util/csv.hpp"

namespace wormsim::metrics {

SpatialMetrics::SpatialMetrics(std::uint32_t num_nodes,
                               std::uint32_t num_links, unsigned num_vcs)
    : num_vcs_(num_vcs),
      nodes_(num_nodes),
      link_flits_(num_links, 0),
      occ_hist_(static_cast<std::size_t>(num_links) * (num_vcs + 1), 0) {}

double SpatialMetrics::mean_busy_vcs(std::uint32_t link) const noexcept {
  std::uint64_t samples = 0;
  std::uint64_t weighted = 0;
  for (unsigned v = 0; v <= num_vcs_; ++v) {
    const std::uint64_t c = occupancy_samples(link, v);
    samples += c;
    weighted += c * v;
  }
  return samples ? static_cast<double>(weighted) /
                       static_cast<double>(samples)
                 : 0.0;
}

void SpatialMetrics::merge(const SpatialMetrics& other) noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeCounters& o = other.nodes_[i];
    NodeCounters& n = nodes_[i];
    n.injected += o.injected;
    n.ejected_flits += o.ejected_flits;
    n.queue_sum += o.queue_sum;
    n.queue_samples += o.queue_samples;
    if (o.queue_max > n.queue_max) n.queue_max = o.queue_max;
  }
  for (std::size_t i = 0; i < link_flits_.size(); ++i) {
    link_flits_[i] += other.link_flits_[i];
  }
  for (std::size_t i = 0; i < occ_hist_.size(); ++i) {
    occ_hist_[i] += other.occ_hist_[i];
  }
}

void SpatialMetrics::reset() noexcept {
  nodes_.assign(nodes_.size(), NodeCounters{});
  link_flits_.assign(link_flits_.size(), 0);
  occ_hist_.assign(occ_hist_.size(), 0);
}

namespace {

std::string coords_string(const topo::KAryNCube& topo, topo::NodeId node) {
  const topo::Coords c = topo.coords_of(node);
  std::string s;
  for (unsigned d = 0; d < topo.dims(); ++d) {
    if (d) s.push_back('.');
    s += std::to_string(c[d]);
  }
  return s;
}

}  // namespace

void SpatialMetrics::write_channel_csv(std::ostream& out,
                                       const topo::KAryNCube& topo,
                                       std::uint64_t cycles) const {
  util::CsvWriter csv(out);
  csv.header({"link", "src", "dst", "dim", "dir", "src_x", "src_y",
              "flits_carried", "utilization", "mean_busy_vcs"});
  const unsigned channels = topo.num_channels();
  for (std::uint32_t l = 0; l < num_links(); ++l) {
    const auto src = static_cast<topo::NodeId>(l / channels);
    const auto ch = static_cast<topo::ChannelId>(l % channels);
    const topo::NodeId dst = topo.neighbor(src, ch);
    const char* dir =
        topo::channel_dir(ch) == topo::Dir::Plus ? "plus" : "minus";
    const double util =
        cycles ? static_cast<double>(link_flits_[l]) /
                     static_cast<double>(cycles)
               : 0.0;
    csv.row(l, src, dst, topo::channel_dim(ch), dir, topo.coord(src, 0),
            topo.dims() > 1 ? topo.coord(src, 1) : 0, link_flits_[l], util,
            mean_busy_vcs(l));
  }
}

void SpatialMetrics::write_node_csv(std::ostream& out,
                                    const topo::KAryNCube& topo,
                                    std::uint64_t cycles) const {
  util::CsvWriter csv(out);
  csv.header({"node", "x", "y", "coords", "injected_msgs", "ejected_flits",
              "ejected_flits_per_cycle", "queue_avg", "queue_max"});
  for (std::uint32_t n = 0; n < num_nodes(); ++n) {
    const NodeCounters& c = nodes_[n];
    const double eject_rate =
        cycles ? static_cast<double>(c.ejected_flits) /
                     static_cast<double>(cycles)
               : 0.0;
    csv.row(n, topo.coord(n, 0), topo.dims() > 1 ? topo.coord(n, 1) : 0,
            coords_string(topo, n), c.injected, c.ejected_flits, eject_rate,
            node_queue_avg(n), c.queue_max);
  }
}

void SpatialMetrics::write_vc_occupancy_csv(std::ostream& out,
                                            const topo::KAryNCube& topo) const {
  util::CsvWriter csv(out);
  csv.header({"link", "src", "dst", "dim", "dir", "busy_vcs", "samples"});
  const unsigned channels = topo.num_channels();
  for (std::uint32_t l = 0; l < num_links(); ++l) {
    const auto src = static_cast<topo::NodeId>(l / channels);
    const auto ch = static_cast<topo::ChannelId>(l % channels);
    const topo::NodeId dst = topo.neighbor(src, ch);
    const char* dir =
        topo::channel_dir(ch) == topo::Dir::Plus ? "plus" : "minus";
    for (unsigned v = 0; v <= num_vcs_; ++v) {
      csv.row(l, src, dst, topo::channel_dim(ch), dir, v,
              occupancy_samples(l, v));
    }
  }
}

}  // namespace wormsim::metrics
