#include "core/cost_model.hpp"

#include "core/alo_gates.hpp"

namespace wormsim::core {

unsigned count_bits(unsigned n) {
  unsigned bits = 0;
  while ((1u << bits) <= n) ++bits;
  return bits;
}

namespace {

/// Population counter over `inputs` status bits: a tree of full adders.
/// A standard Wallace-style popcount of n bits costs about n full
/// adders' worth of hardware; we report it as adder bits.
unsigned popcount_adder_bits(unsigned inputs) { return inputs; }

HardwareCost alo_cost(unsigned channels, unsigned vcs) {
  HardwareCost cost;
  cost.combinational_gates = AloGateCircuit(channels, vcs).gate_count();
  // No thresholds: no registers, comparators or adders (paper §3).
  return cost;
}

HardwareCost lf_cost(unsigned channels, unsigned vcs) {
  // LF counts busy useful VCs and compares against a linear function of
  // the useful-VC count:
  //  * mask status register with the routing vector: channels*vcs ANDs
  //  * popcount both the busy-useful bits and the useful bits
  //  * multiply/shift for the linear threshold (approximated as one
  //    adder pass over the count width) and one comparator
  HardwareCost cost;
  const unsigned status_bits = channels * vcs;
  const unsigned width = count_bits(status_bits);
  cost.combinational_gates = status_bits /* useful masking */ +
                             status_bits /* busy inversion */;
  cost.adder_bits = popcount_adder_bits(status_bits) * 2 + width;
  cost.comparator_bits = width;
  return cost;
}

HardwareCost dril_cost(unsigned channels, unsigned vcs) {
  // DRIL = LF-style busy counting plus per-node dynamic state: the
  // frozen threshold register, the saturation-detection timer and the
  // relaxation timer, each compared every cycle.
  HardwareCost cost = lf_cost(channels, vcs);
  const unsigned width = count_bits(channels * vcs);
  const unsigned timer_bits = 16;  // detection / relaxation timers
  cost.register_bits = width /* threshold */ + 2 * timer_bits + 1 /*frozen*/;
  cost.comparator_bits += width + 2 * timer_bits;
  cost.adder_bits += 2 * timer_bits;  // timer increments
  return cost;
}

}  // namespace

HardwareCost estimate_cost(LimiterKind kind, unsigned channels,
                           unsigned vcs) {
  switch (kind) {
    case LimiterKind::None: return {};
    case LimiterKind::ALO: return alo_cost(channels, vcs);
    case LimiterKind::LF: return lf_cost(channels, vcs);
    case LimiterKind::DRIL: return dril_cost(channels, vcs);
  }
  return {};
}

}  // namespace wormsim::core
