// Gate-level model of the paper's Figure 3 hardware implementation of
// the ALO mechanism.
//
// The circuit takes the virtual-channel status register (one busy bit
// per VC) and the routing function's useful-channel vector, and computes
// INJECTION PERMITTED through seven gate stages:
//
//   C_c = OR over v of FREE(c, v)     -- channel c has >= 1 free VC
//   D_c = AND over v of FREE(c, v)    -- channel c is completely free
//   B_c = C_c OR NOT USEFUL_c         -- mask rule (a) to useful channels
//   E_c = D_c AND USEFUL_c            -- mask rule (b) to useful channels
//   A   = AND over c of B_c           -- rule (a): all useful partially free
//   F   = OR  over c of E_c           -- rule (b): some useful completely free
//   G   = A OR F                      -- injection permitted
//
// This model exists to (1) document the hardware cost claimed in the
// paper — pure combinational logic, no registers or comparators — and
// (2) be property-tested for equivalence against the behavioural
// predicate in alo.hpp. It also reports a gate inventory.
#pragma once

#include <cstdint>

#include "core/limiter.hpp"

namespace wormsim::core {

/// Combinational evaluation of the Figure-3 circuit.
///
/// `busy_bits` packs the VC status register: bit (c * num_vcs + v) set
/// means VC v of physical channel c is busy. `useful_mask` has bit c set
/// for useful physical channels. Supports num_channels * num_vcs <= 64.
class AloGateCircuit {
 public:
  AloGateCircuit(unsigned num_channels, unsigned num_vcs);

  /// Value of the G gate: injection permitted.
  bool evaluate(std::uint64_t busy_bits, std::uint32_t useful_mask) const;

  /// Intermediate wires, for the gate-level tests.
  struct Wires {
    std::uint32_t c_gates = 0;  // per-channel "has a free VC"
    std::uint32_t d_gates = 0;  // per-channel "completely free"
    std::uint32_t b_gates = 0;
    std::uint32_t e_gates = 0;
    bool a_gate = false;
    bool f_gate = false;
    bool g_gate = false;
  };
  Wires trace(std::uint64_t busy_bits, std::uint32_t useful_mask) const;

  /// Two-input-gate-equivalent count of the circuit, substantiating the
  /// paper's "only some logic gates are required" cost claim.
  unsigned gate_count() const noexcept;

  unsigned num_channels() const noexcept { return channels_; }
  unsigned num_vcs() const noexcept { return vcs_; }

  /// Pack a ChannelStatus row into the busy-bits format.
  static std::uint64_t pack_busy_bits(const ChannelStatus& status,
                                      NodeId node);

 private:
  unsigned channels_;
  unsigned vcs_;
};

}  // namespace wormsim::core
