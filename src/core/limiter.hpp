// Message injection limitation ("congestion control") mechanisms —
// the paper's subject. A limiter decides, for the message at the head
// of a node's source queue, whether it may enter the network this cycle.
//
// Mechanisms provided:
//   * None — no restriction (the paper's baseline that saturates).
//   * ALO  — "At Least One", the paper's contribution (§3): inject iff
//            every useful physical output channel has at least one free
//            VC, or some useful physical channel is completely free.
//            Threshold-free.
//   * LF   — Linear Function [López/Martínez/Duato/Petrini, PCRCW'97]:
//            inject iff the number of busy useful virtual output
//            channels stays below a threshold that is a linear function
//            of the number of useful VCs.
//   * DRIL — Dynamically Reduced Injection Limitation
//            [López/Martínez/Duato, ICPP'98]: each node freezes its own
//            busy-VC threshold when it first observes saturation; nodes
//            freeze at different times, which is the source of the
//            unfairness the paper's Figure 4 demonstrates.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "routing/routing.hpp"
#include "topology/kary_ncube.hpp"

namespace wormsim::core {

using topo::ChannelId;
using topo::NodeId;

enum class LimiterKind { None, ALO, LF, DRIL };

LimiterKind parse_limiter(std::string_view name);
std::string_view limiter_name(LimiterKind kind);

/// Read-only view of the virtual-output-channel status register of one
/// node, implemented by the simulator's Network. Bit v of
/// free_vc_mask(node, c) is set iff VC v of physical output channel c is
/// not allocated to any message.
class ChannelStatus {
 public:
  virtual ~ChannelStatus() = default;
  virtual unsigned num_phys_channels() const = 0;
  virtual unsigned num_vcs() const = 0;
  virtual std::uint32_t free_vc_mask(NodeId node, ChannelId c) const = 0;
};

/// Everything a limiter may inspect when deciding on one injection.
struct InjectionRequest {
  NodeId node = 0;
  NodeId dst = 0;
  std::uint32_t length_flits = 0;
  /// Result of executing the routing function at the source node for
  /// this message (the paper's step 1).
  const routing::RouteResult* route = nullptr;
  std::uint64_t cycle = 0;
  /// Cycles the message has waited at the head of the source queue.
  std::uint64_t head_wait = 0;
  /// Current source queue length at this node.
  std::size_t queue_len = 0;
};

class InjectionLimiter {
 public:
  virtual ~InjectionLimiter() = default;

  /// May the message be injected this cycle?
  virtual bool allow(const InjectionRequest& req,
                     const ChannelStatus& status) = 0;

  /// Notification that a message was injected at `node` (for mechanisms
  /// that track per-node state).
  virtual void on_injected(NodeId /*node*/, std::uint64_t /*cycle*/) {}

  /// Reset all dynamic state (e.g. between sweep points).
  virtual void reset() {}

  virtual LimiterKind kind() const noexcept = 0;
};

/// The "no restriction" baseline. Public (not factory-internal) so the
/// simulator's dispatch resolution can recognize it by type — kind()
/// cannot discriminate shipped limiters from user subclasses that reuse
/// a LimiterKind tag (see examples/custom_limiter.cpp).
class NoLimiter final : public InjectionLimiter {
 public:
  bool allow(const InjectionRequest&, const ChannelStatus&) override {
    return true;
  }
  LimiterKind kind() const noexcept override { return LimiterKind::None; }
};

struct LimiterConfig {
  LimiterKind kind = LimiterKind::None;
  /// LF: inject iff busy_useful_vcs <= floor(lf_alpha * useful_vcs).
  double lf_alpha = 0.625;
  /// DRIL: head-of-queue wait (cycles) that makes a node decide the
  /// network is entering saturation and freeze its threshold. Defaults
  /// tuned on the paper's 8-ary 3-cube so DRIL is throughput-competitive
  /// (as reported in the original ICPP'98 evaluation) while keeping its
  /// characteristic unfairness.
  std::uint64_t dril_detect_wait = 8;
  /// DRIL: safety margin subtracted from the busy-VC count sampled at
  /// freeze time.
  unsigned dril_margin = 4;
  /// DRIL: every this many cycles a frozen node relaxes its threshold by
  /// one busy VC (a frozen threshold that reaches the total VC count
  /// unfreezes the node).
  std::uint64_t dril_relax_period = 2048;
};

/// Factory; `num_nodes` lets stateful mechanisms size their tables.
std::unique_ptr<InjectionLimiter> make_limiter(const LimiterConfig& cfg,
                                               NodeId num_nodes);

}  // namespace wormsim::core
