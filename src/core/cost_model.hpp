// Hardware cost model for the injection-limitation mechanisms.
//
// The paper's §3 cost argument: ALO is pure combinational logic on the
// VC status register — "As the mechanism does not need any threshold,
// there is neither need for registers nor comparators" — whereas the
// busy-VC-counting mechanisms (LF, DRIL) need a population counter over
// the status register, a comparator against the threshold, and (DRIL)
// per-node threshold/timer registers. This model turns that argument
// into numbers: two-input-gate equivalents, register bits and
// comparator bits per router, parameterized by channel/VC counts.
//
// Gate-equivalent conventions (standard synthesis rules of thumb):
//   * NOT = 1, AND2/OR2 = 1, XOR2 = 3, 1-bit full adder = 5
//   * n-input AND/OR reduction = (n-1) two-input gates
//   * n-bit comparator (greater/less) = 5n gate equivalents
//   * 1 register bit = 6 gate equivalents (D flip-flop), also reported
//     separately because registers cost clocking, not just area
#pragma once

#include <string_view>

#include "core/limiter.hpp"

namespace wormsim::core {

struct HardwareCost {
  unsigned combinational_gates = 0;  // two-input-gate equivalents
  unsigned register_bits = 0;
  unsigned comparator_bits = 0;
  unsigned adder_bits = 0;

  /// Single-number summary: gates + 6 per register bit + 5 per
  /// comparator bit + 5 per adder bit.
  unsigned total_gate_equivalents() const noexcept {
    return combinational_gates + 6 * register_bits + 5 * comparator_bits +
           5 * adder_bits;
  }
  /// The paper's qualitative criterion: any sequential state at all?
  bool needs_registers() const noexcept { return register_bits > 0; }
  bool needs_comparators() const noexcept { return comparator_bits > 0; }
};

/// Per-router cost of one mechanism for a router with `channels`
/// physical channels and `vcs` virtual channels per channel.
/// Counter/threshold widths are ceil(log2(channels*vcs + 1)) bits.
HardwareCost estimate_cost(LimiterKind kind, unsigned channels, unsigned vcs);

/// ceil(log2(n + 1)): bits needed to hold counts 0..n.
unsigned count_bits(unsigned n);

}  // namespace wormsim::core
