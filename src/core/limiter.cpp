#include "core/limiter.hpp"

#include <stdexcept>
#include <string>

#include "core/alo.hpp"
#include "core/dril.hpp"
#include "core/linear_function.hpp"

namespace wormsim::core {

LimiterKind parse_limiter(std::string_view name) {
  if (name == "none") return LimiterKind::None;
  if (name == "alo") return LimiterKind::ALO;
  if (name == "lf" || name == "linear") return LimiterKind::LF;
  if (name == "dril") return LimiterKind::DRIL;
  throw std::invalid_argument("unknown limiter: " + std::string(name));
}

std::string_view limiter_name(LimiterKind kind) {
  switch (kind) {
    case LimiterKind::None: return "none";
    case LimiterKind::ALO: return "alo";
    case LimiterKind::LF: return "lf";
    case LimiterKind::DRIL: return "dril";
  }
  return "unknown";
}

std::unique_ptr<InjectionLimiter> make_limiter(const LimiterConfig& cfg,
                                               NodeId num_nodes) {
  switch (cfg.kind) {
    case LimiterKind::None:
      return std::make_unique<NoLimiter>();
    case LimiterKind::ALO:
      return std::make_unique<AloLimiter>();
    case LimiterKind::LF:
      return std::make_unique<LinearFunctionLimiter>(cfg.lf_alpha);
    case LimiterKind::DRIL:
      return std::make_unique<DrilLimiter>(num_nodes, cfg.dril_detect_wait,
                                           cfg.dril_margin,
                                           cfg.dril_relax_period);
  }
  throw std::invalid_argument("unknown limiter kind");
}

}  // namespace wormsim::core
