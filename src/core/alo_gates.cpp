#include "core/alo_gates.hpp"

#include <stdexcept>

namespace wormsim::core {

AloGateCircuit::AloGateCircuit(unsigned num_channels, unsigned num_vcs)
    : channels_(num_channels), vcs_(num_vcs) {
  if (num_channels == 0 || num_vcs == 0 ||
      num_channels * num_vcs > 64 || num_channels > 32) {
    throw std::invalid_argument(
        "AloGateCircuit supports up to 32 channels and 64 total VCs");
  }
}

AloGateCircuit::Wires AloGateCircuit::trace(std::uint64_t busy_bits,
                                            std::uint32_t useful_mask) const {
  Wires w;
  const std::uint64_t vc_field = (vcs_ >= 64) ? ~0ULL : ((1ULL << vcs_) - 1);
  for (unsigned c = 0; c < channels_; ++c) {
    const std::uint64_t busy = (busy_bits >> (c * vcs_)) & vc_field;
    const std::uint64_t free = ~busy & vc_field;
    if (free != 0) w.c_gates |= 1u << c;          // C: OR of free bits
    if (free == vc_field) w.d_gates |= 1u << c;   // D: AND of free bits
  }
  const std::uint32_t chan_field = (1u << channels_) - 1u;
  useful_mask &= chan_field;
  w.b_gates = (w.c_gates | ~useful_mask) & chan_field;  // B: C OR NOT useful
  w.e_gates = w.d_gates & useful_mask;                  // E: D AND useful
  w.a_gate = w.b_gates == chan_field;                   // A: AND reduction
  w.f_gate = w.e_gates != 0;                            // F: OR reduction
  w.g_gate = w.a_gate || w.f_gate;                      // G
  return w;
}

bool AloGateCircuit::evaluate(std::uint64_t busy_bits,
                              std::uint32_t useful_mask) const {
  return trace(busy_bits, useful_mask).g_gate;
}

unsigned AloGateCircuit::gate_count() const noexcept {
  // Two-input-gate equivalents per stage:
  //   C_c: (vcs-1) OR gates per channel (after inverting busy bits;
  //        inverters counted once per VC bit).
  //   D_c: (vcs-1) AND gates per channel.
  //   B_c: 1 OR + 1 NOT per channel. E_c: 1 AND per channel.
  //   A: (channels-1) ANDs. F: (channels-1) ORs. G: 1 OR.
  const unsigned inverters = channels_ * vcs_;
  const unsigned c_gates = channels_ * (vcs_ - 1);
  const unsigned d_gates = channels_ * (vcs_ - 1);
  const unsigned be_gates = channels_ * 3;
  const unsigned reductions = 2 * (channels_ - 1) + 1;
  return inverters + c_gates + d_gates + be_gates + reductions;
}

std::uint64_t AloGateCircuit::pack_busy_bits(const ChannelStatus& status,
                                             NodeId node) {
  const unsigned vcs = status.num_vcs();
  const std::uint64_t vc_field = (1ULL << vcs) - 1;
  std::uint64_t bits = 0;
  for (unsigned c = 0; c < status.num_phys_channels(); ++c) {
    const std::uint64_t free =
        status.free_vc_mask(node, static_cast<ChannelId>(c));
    bits |= ((~free) & vc_field) << (c * vcs);
  }
  return bits;
}

}  // namespace wormsim::core
