#include "core/alo.hpp"

#include <bit>

namespace wormsim::core {

AloConditions evaluate_alo(const ChannelStatus& status, NodeId node,
                           std::uint32_t useful_phys_mask) {
  AloConditions cond;
  cond.all_useful_partially_free = true;
  const std::uint32_t all_vcs = (1u << status.num_vcs()) - 1u;
  const unsigned channels = status.num_phys_channels();
  for (unsigned c = 0; c < channels; ++c) {
    if (!(useful_phys_mask & (1u << c))) continue;
    const std::uint32_t free = status.free_vc_mask(node, static_cast<ChannelId>(c));
    if (free == 0) cond.all_useful_partially_free = false;
    if (free == all_vcs) cond.any_useful_completely_free = true;
  }
  return cond;
}

AloConditions evaluate_alo_routed(const ChannelStatus& status, NodeId node,
                                  const routing::RouteResult& route) {
  AloConditions cond;
  cond.all_useful_partially_free = true;
  const std::uint32_t all_vcs = (1u << status.num_vcs()) - 1u;
  const unsigned channels = status.num_phys_channels();
  // Union of usable VCs per physical channel over all candidates.
  std::uint32_t usable[32] = {};
  for (const auto& cand : route.candidates) {
    usable[cand.channel] |= cand.vc_mask;
  }
  for (unsigned c = 0; c < channels; ++c) {
    if (!(route.useful_phys_mask & (1u << c))) continue;
    const std::uint32_t free =
        status.free_vc_mask(node, static_cast<ChannelId>(c));
    const std::uint32_t mask = usable[c] ? usable[c] : all_vcs;
    if ((free & mask) == 0) cond.all_useful_partially_free = false;
    if (free == all_vcs) cond.any_useful_completely_free = true;
  }
  return cond;
}

AloConditions evaluate_alo_row(const std::uint8_t* free_row, unsigned num_vcs,
                               std::uint32_t useful_phys_mask) {
  AloConditions cond;
  cond.all_useful_partially_free = true;
  const std::uint32_t all_vcs = (1u << num_vcs) - 1u;
  for (std::uint32_t m = useful_phys_mask; m != 0; m &= m - 1) {
    const std::uint32_t free = free_row[std::countr_zero(m)];
    if (free == 0) cond.all_useful_partially_free = false;
    if (free == all_vcs) cond.any_useful_completely_free = true;
  }
  return cond;
}

AloConditions evaluate_alo_routed_row(const std::uint8_t* free_row,
                                      unsigned num_vcs,
                                      const routing::RouteResult& route) {
  AloConditions cond;
  cond.all_useful_partially_free = true;
  const std::uint32_t all_vcs = (1u << num_vcs) - 1u;
  std::uint32_t usable[32] = {};
  for (const auto& cand : route.candidates) {
    usable[cand.channel] |= cand.vc_mask;
  }
  for (std::uint32_t m = route.useful_phys_mask; m != 0; m &= m - 1) {
    const unsigned c = static_cast<unsigned>(std::countr_zero(m));
    const std::uint32_t free = free_row[c];
    const std::uint32_t mask = usable[c] ? usable[c] : all_vcs;
    if ((free & mask) == 0) cond.all_useful_partially_free = false;
    if (free == all_vcs) cond.any_useful_completely_free = true;
  }
  return cond;
}

bool AloLimiter::allow(const InjectionRequest& req,
                       const ChannelStatus& status) {
  return evaluate_alo_routed(status, req.node, *req.route).allow();
}

}  // namespace wormsim::core
