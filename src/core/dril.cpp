#include "core/dril.hpp"

#include <algorithm>
#include <bit>

namespace wormsim::core {

DrilLimiter::DrilLimiter(NodeId num_nodes, std::uint64_t detect_wait,
                         unsigned margin, std::uint64_t relax_period,
                         unsigned /*num_vcs_hint*/)
    : detect_wait_(detect_wait),
      margin_(margin),
      relax_period_(relax_period == 0 ? 1 : relax_period),
      state_(num_nodes) {}

unsigned DrilLimiter::busy_total(const ChannelStatus& status, NodeId node) {
  const unsigned vcs = status.num_vcs();
  const std::uint32_t vc_field = (1u << vcs) - 1u;
  unsigned busy = 0;
  for (unsigned c = 0; c < status.num_phys_channels(); ++c) {
    const std::uint32_t free =
        status.free_vc_mask(node, static_cast<ChannelId>(c)) & vc_field;
    busy += vcs - static_cast<unsigned>(std::popcount(free));
  }
  return busy;
}

unsigned DrilLimiter::busy_total_row(const std::uint8_t* free_row,
                                     unsigned num_phys, unsigned num_vcs) {
  unsigned busy = 0;
  for (unsigned c = 0; c < num_phys; ++c) {
    busy += num_vcs - static_cast<unsigned>(std::popcount(
                          static_cast<std::uint32_t>(free_row[c])));
  }
  return busy;
}

bool DrilLimiter::allow(const InjectionRequest& req,
                        const ChannelStatus& status) {
  return allow_with_busy(req, busy_total(status, req.node),
                         status.num_phys_channels() * status.num_vcs());
}

bool DrilLimiter::allow_row(const InjectionRequest& req,
                            const std::uint8_t* free_row, unsigned num_phys,
                            unsigned num_vcs) {
  return allow_with_busy(req, busy_total_row(free_row, num_phys, num_vcs),
                         num_phys * num_vcs);
}

bool DrilLimiter::allow_with_busy(const InjectionRequest& req, unsigned busy,
                                  unsigned total_vcs) {
  NodeState& st = state_[req.node];

  if (!st.frozen) {
    if (req.head_wait > detect_wait_) {
      // Entering saturation: freeze the threshold at the busy count seen
      // right now, minus the safety margin.
      st.frozen = true;
      st.threshold = busy > margin_ ? busy - margin_ : 1;
      st.threshold = std::max(1u, std::min(st.threshold, total_vcs));
      st.last_relax = req.cycle;
    } else {
      return true;  // unrestricted until saturation is detected
    }
  }

  // Periodic relaxation; unfreeze once fully relaxed.
  while (req.cycle - st.last_relax >= relax_period_) {
    st.last_relax += relax_period_;
    if (++st.threshold >= total_vcs) {
      st.frozen = false;
      return true;
    }
  }

  return busy < st.threshold;
}

void DrilLimiter::reset() {
  for (auto& st : state_) st = NodeState{};
}

}  // namespace wormsim::core
