// DRIL — Dynamically Reduced Injection Limitation [López, Martínez,
// Duato: ICPP'98].
//
// Each node starts unrestricted. When it first observes the network
// entering saturation (here: the head of its source queue has waited
// more than `detect_wait` cycles), it freezes a personal threshold equal
// to the busy output-VC count sampled at that moment minus a margin, and
// from then on injects only while the current busy count stays below the
// frozen threshold. Every `relax_period` cycles a frozen node relaxes
// its threshold by one; reaching the total VC count unfreezes it.
//
// Because nodes freeze at different times they end up with different
// thresholds: nodes that freeze early restrict themselves harder, reduce
// traffic in their area, and let later nodes freeze looser thresholds —
// exactly the unfairness the paper reports in Figure 4 ("some nodes may
// begin to apply strict restrictions before others do").
#pragma once

#include <vector>

#include "core/limiter.hpp"

namespace wormsim::core {

class DrilLimiter final : public InjectionLimiter {
 public:
  DrilLimiter(NodeId num_nodes, std::uint64_t detect_wait, unsigned margin,
              std::uint64_t relax_period, unsigned num_vcs_hint = 0);

  bool allow(const InjectionRequest& req, const ChannelStatus& status) override;
  void reset() override;
  LimiterKind kind() const noexcept override { return LimiterKind::DRIL; }

  /// Introspection for tests and the fairness study.
  bool frozen(NodeId node) const { return state_[node].frozen; }
  unsigned threshold(NodeId node) const { return state_[node].threshold; }

  /// Busy count over ALL output VCs of the node (DRIL monitors total
  /// occupancy, not just useful channels).
  static unsigned busy_total(const ChannelStatus& status, NodeId node);
  /// Row-based twin of busy_total for the devirtualized cycle loop.
  static unsigned busy_total_row(const std::uint8_t* free_row,
                                 unsigned num_phys, unsigned num_vcs);

  /// Bit-identical to allow() but fed from a contiguous free-mask row.
  /// Does not read req.route — DRIL monitors total occupancy only.
  bool allow_row(const InjectionRequest& req, const std::uint8_t* free_row,
                 unsigned num_phys, unsigned num_vcs);

 private:
  bool allow_with_busy(const InjectionRequest& req, unsigned busy,
                       unsigned total_vcs);

  struct NodeState {
    bool frozen = false;
    unsigned threshold = 0;
    std::uint64_t last_relax = 0;
  };

  std::uint64_t detect_wait_;
  unsigned margin_;
  std::uint64_t relax_period_;
  std::vector<NodeState> state_;
};

}  // namespace wormsim::core
