// ALO ("At Least One") — the paper's injection limitation mechanism.
#pragma once

#include <cstdint>

#include "core/limiter.hpp"

namespace wormsim::core {

/// Decomposed evaluation of the two ALO rules, reusable by the Figure-2
/// routing-occurrence probe and by tests.
struct AloConditions {
  bool all_useful_partially_free = false;  // rule (a)
  bool any_useful_completely_free = false;  // rule (b)
  bool allow() const noexcept {
    return all_useful_partially_free || any_useful_completely_free;
  }
};

/// Evaluate both rules for a node given the useful-physical-channel mask
/// produced by the routing function. A mask of zero (no useful channels,
/// i.e. message already at destination) permits injection vacuously.
/// This is the paper's formulation, which (its footnote 1) assumes every
/// VC of a physical channel is usable by the message — true for TFAR.
AloConditions evaluate_alo(const ChannelStatus& status, NodeId node,
                           std::uint32_t useful_phys_mask);

/// Routing-aware generalization: rule (a) checks each useful physical
/// channel for a free VC *among the VCs the routing function actually
/// offers on it* (the union of candidate vc_masks), while rule (b)
/// keeps its physical meaning (every VC of the channel free). For TFAR
/// the candidate masks cover all VCs and this reduces exactly to
/// evaluate_alo(); for restricted routing (e.g. Duato's protocol, where
/// escape VCs are usable only on the DOR channel) it prevents
/// permanently-idle escape VCs from masking congestion.
AloConditions evaluate_alo_routed(const ChannelStatus& status, NodeId node,
                                  const routing::RouteResult& route);

/// Row-based twins of the two evaluators for the devirtualized cycle
/// loop: `free_row[c]` holds the free-VC mask of physical channel c of
/// one node, laid out contiguously (sim::Network::free_mask_row). They
/// return bit-identical conditions to their ChannelStatus counterparts
/// (asserted by tests/core/test_alo.cpp property cases).
AloConditions evaluate_alo_row(const std::uint8_t* free_row, unsigned num_vcs,
                               std::uint32_t useful_phys_mask);
AloConditions evaluate_alo_routed_row(const std::uint8_t* free_row,
                                      unsigned num_vcs,
                                      const routing::RouteResult& route);

class AloLimiter final : public InjectionLimiter {
 public:
  bool allow(const InjectionRequest& req, const ChannelStatus& status) override;
  LimiterKind kind() const noexcept override { return LimiterKind::ALO; }
};

}  // namespace wormsim::core
