#include "core/linear_function.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace wormsim::core {

LinearFunctionLimiter::LinearFunctionLimiter(double alpha) : alpha_(alpha) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("LF alpha must be in [0, 1]");
  }
}

LinearFunctionLimiter::Counts LinearFunctionLimiter::count_useful(
    const ChannelStatus& status, NodeId node,
    const routing::RouteResult& route) {
  Counts counts;
  const unsigned vcs = status.num_vcs();
  const std::uint32_t vc_field = (1u << vcs) - 1u;
  for (unsigned c = 0; c < status.num_phys_channels(); ++c) {
    if (!(route.useful_phys_mask & (1u << c))) continue;
    const std::uint32_t free =
        status.free_vc_mask(node, static_cast<ChannelId>(c)) & vc_field;
    counts.total += vcs;
    counts.busy += vcs - static_cast<unsigned>(std::popcount(free));
  }
  return counts;
}

LinearFunctionLimiter::Counts LinearFunctionLimiter::count_useful_row(
    const std::uint8_t* free_row, unsigned num_vcs,
    std::uint32_t useful_phys_mask) {
  Counts counts;
  for (std::uint32_t m = useful_phys_mask; m != 0; m &= m - 1) {
    const std::uint32_t free = free_row[std::countr_zero(m)];
    counts.total += num_vcs;
    counts.busy += num_vcs - static_cast<unsigned>(std::popcount(free));
  }
  return counts;
}

bool LinearFunctionLimiter::decide(const Counts& counts) const {
  if (counts.total == 0) return true;  // no useful channels: vacuous
  const auto threshold =
      static_cast<unsigned>(std::floor(alpha_ * counts.total));
  return counts.busy <= threshold;
}

bool LinearFunctionLimiter::allow(const InjectionRequest& req,
                                  const ChannelStatus& status) {
  return decide(count_useful(status, req.node, *req.route));
}

bool LinearFunctionLimiter::allow_row(const InjectionRequest& req,
                                      const std::uint8_t* free_row,
                                      unsigned num_vcs) const {
  return decide(
      count_useful_row(free_row, num_vcs, req.route->useful_phys_mask));
}

}  // namespace wormsim::core
