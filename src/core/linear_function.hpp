// LF — Linear Function injection limitation [López, Martínez, Duato,
// Petrini: "On the Reduction of Deadlock Frequency by Limiting Message
// Injection in Wormhole Networks", PCRCW'97].
//
// Traffic is estimated locally by counting busy useful virtual output
// channels (useful = returned by the routing function for the message).
// Injection is allowed while the busy count stays at or below a
// threshold that is a linear function of the number of useful VCs:
//
//     allow  iff  busy_useful_vcs <= floor(alpha * useful_vcs)
//
// The original paper adapts the threshold to a guess of the current
// destination distribution; exposing alpha as a parameter captures the
// same linear-threshold family (see DESIGN.md, Substitutions).
#pragma once

#include "core/limiter.hpp"

namespace wormsim::core {

class LinearFunctionLimiter final : public InjectionLimiter {
 public:
  explicit LinearFunctionLimiter(double alpha);

  bool allow(const InjectionRequest& req, const ChannelStatus& status) override;
  LimiterKind kind() const noexcept override { return LimiterKind::LF; }

  double alpha() const noexcept { return alpha_; }

  /// Busy/total useful VC counts for one request; shared with tests.
  struct Counts {
    unsigned busy = 0;
    unsigned total = 0;
  };
  static Counts count_useful(const ChannelStatus& status, NodeId node,
                             const routing::RouteResult& route);
  /// Row-based twin of count_useful for the devirtualized cycle loop;
  /// `free_row[c]` = free-VC mask of physical channel c of the node.
  static Counts count_useful_row(const std::uint8_t* free_row,
                                 unsigned num_vcs,
                                 std::uint32_t useful_phys_mask);

  /// Bit-identical to allow() but fed from a contiguous free-mask row.
  bool allow_row(const InjectionRequest& req, const std::uint8_t* free_row,
                 unsigned num_vcs) const;

 private:
  bool decide(const Counts& counts) const;

  double alpha_;
};

}  // namespace wormsim::core
