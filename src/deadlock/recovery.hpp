// Per-node queues of absorbed (deadlocked) messages awaiting software
// re-injection.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "deadlock/detection.hpp"

namespace wormsim::deadlock {

using MsgId = std::uint32_t;
using NodeId = std::uint32_t;
using Cycle = std::uint64_t;

class RecoveryManager {
 public:
  explicit RecoveryManager(NodeId num_nodes) : queues_(num_nodes) {}

  /// Absorbed message becomes re-injectable at `ready` (absorption +
  /// software handling cost already added by the caller).
  void enqueue(NodeId node, MsgId msg, Cycle ready) {
    queues_[node].push_back({msg, ready});
    ++pending_;
  }

  /// Is the oldest absorbed message at `node` ready for re-injection?
  bool has_ready(NodeId node, Cycle now) const noexcept {
    return !queues_[node].empty() && queues_[node].front().ready <= now;
  }

  MsgId pop(NodeId node) {
    const MsgId id = queues_[node].front().msg;
    queues_[node].pop_front();
    --pending_;
    return id;
  }

  std::size_t pending(NodeId node) const noexcept {
    return queues_[node].size();
  }
  std::size_t pending_total() const noexcept { return pending_; }

  void clear() {
    for (auto& q : queues_) q.clear();
    pending_ = 0;
  }

 private:
  struct Entry {
    MsgId msg;
    Cycle ready;
  };
  std::vector<std::deque<Entry>> queues_;
  std::size_t pending_ = 0;
};

}  // namespace wormsim::deadlock
