// Per-node queues of absorbed (deadlocked) messages awaiting software
// re-injection.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "deadlock/detection.hpp"

namespace wormsim::deadlock {

using MsgId = std::uint32_t;
using NodeId = std::uint32_t;
using Cycle = std::uint64_t;

class RecoveryManager {
 public:
  explicit RecoveryManager(NodeId num_nodes) : queues_(num_nodes) {}

  /// Absorbed message becomes re-injectable at `ready` (absorption +
  /// software handling cost already added by the caller).
  void enqueue(NodeId node, MsgId msg, Cycle ready) {
    queues_[node].push_back({msg, ready});
    ++pending_;
  }

  /// Is the oldest absorbed message at `node` ready for re-injection?
  bool has_ready(NodeId node, Cycle now) const noexcept {
    return !queues_[node].empty() && queues_[node].front().ready <= now;
  }

  MsgId pop(NodeId node) {
    const MsgId id = queues_[node].front().msg;
    queues_[node].pop_front();
    --pending_;
    return id;
  }

  std::size_t pending(NodeId node) const noexcept {
    return queues_[node].size();
  }
  std::size_t pending_total() const noexcept { return pending_; }

  void clear() {
    for (auto& q : queues_) q.clear();
    pending_ = 0;
  }

  /// Remove every queued entry for which `drop(node, msg)` returns true
  /// (fault reconfiguration: the re-injection node died or the
  /// destination became unreachable from it). Removed (node, msg) pairs
  /// are appended to `removed` in deterministic node-then-FIFO order.
  template <typename Pred>
  void purge(Pred&& drop, std::vector<std::pair<NodeId, MsgId>>& removed) {
    for (NodeId node = 0; node < queues_.size(); ++node) {
      auto& q = queues_[node];
      for (std::size_t i = 0; i < q.size();) {
        if (drop(node, q[i].msg)) {
          removed.emplace_back(node, q[i].msg);
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
          --pending_;
        } else {
          ++i;
        }
      }
    }
  }

 private:
  struct Entry {
    MsgId msg;
    Cycle ready;
  };
  std::vector<std::deque<Entry>> queues_;
  std::size_t pending_ = 0;
};

}  // namespace wormsim::deadlock
