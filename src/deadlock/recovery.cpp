// RecoveryManager is header-only; this TU anchors the library target.
#include "deadlock/recovery.hpp"

namespace wormsim::deadlock {}
