// Deadlock detection configuration.
//
// The paper uses the FC3D mechanism [López/Martínez/Duato, HPCA workshop
// '98] with a 32-cycle threshold. FC3D cuts false positives by watching
// flow-control signals: a message is presumed deadlocked only when it
// has been blocked while no flit of it moves anywhere. We approximate
// that exactly at the message level: a message whose header holds a
// network channel and none of whose flits has advanced (injected,
// forwarded or ejected) for `threshold` cycles is declared deadlocked
// (see DESIGN.md, Substitutions).
//
// Exemptions, mirroring what FC3D can observe:
//  * messages whose header is still in an injection channel hold no
//    network channel and cannot close a dependency cycle;
//  * messages whose header reached the destination always drain through
//    an ejection port.
#pragma once

#include <cstdint>

namespace wormsim::deadlock {

struct DetectionConfig {
  bool enabled = true;
  /// Cycles of whole-message inactivity before a deadlock is presumed
  /// (paper §4.1: 32).
  std::uint32_t threshold = 32;
};

/// Software-based recovery [Martínez/López/Duato/Pinkston, ICPP'97]: the
/// deadlocked message is absorbed by the node currently holding its
/// header and later re-injected from there toward the original
/// destination. The modelled cost of the software path is
/// `base_delay + message_length` cycles between absorption and
/// re-injection eligibility.
struct RecoveryConfig {
  std::uint32_t base_delay = 32;
};

}  // namespace wormsim::deadlock
