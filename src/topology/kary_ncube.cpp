#include "topology/kary_ncube.hpp"

#include <stdexcept>
#include <string>

namespace wormsim::topo {

KAryNCube::KAryNCube(unsigned k, unsigned n) : k_(k), n_(n) {
  if (k < 2) throw std::invalid_argument("k-ary n-cube requires k >= 2");
  if (n < 1 || n > kMaxDims) {
    throw std::invalid_argument("k-ary n-cube requires 1 <= n <= " +
                                std::to_string(kMaxDims));
  }
  std::uint64_t count = 1;
  stride_[0] = 1;
  for (unsigned d = 0; d < n; ++d) {
    count *= k;
    if (count > 1u << 24) {
      throw std::invalid_argument("network too large (> 2^24 nodes)");
    }
    stride_[d + 1] = static_cast<NodeId>(count);
  }
  num_nodes_ = static_cast<NodeId>(count);
}

Coords KAryNCube::coords_of(NodeId node) const noexcept {
  Coords c{};
  for (unsigned d = 0; d < n_; ++d) {
    c[d] = static_cast<std::uint16_t>((node / stride_[d]) % k_);
  }
  return c;
}

NodeId KAryNCube::node_at(const Coords& c) const noexcept {
  NodeId node = 0;
  for (unsigned d = 0; d < n_; ++d) {
    node += static_cast<NodeId>(c[d]) * stride_[d];
  }
  return node;
}

std::uint16_t KAryNCube::coord(NodeId node, unsigned dim) const noexcept {
  return static_cast<std::uint16_t>((node / stride_[dim]) % k_);
}

NodeId KAryNCube::neighbor(NodeId node, ChannelId c) const noexcept {
  const unsigned d = channel_dim(c);
  const auto x = coord(node, d);
  const unsigned next =
      channel_dir(c) == Dir::Plus
          ? (x + 1u) % k_
          : (x + k_ - 1u) % k_;
  return node + (static_cast<NodeId>(next) - x) * stride_[d];
}

DimRoute KAryNCube::dim_route(std::uint16_t from,
                              std::uint16_t to) const noexcept {
  DimRoute r;
  if (from == to) return r;
  const unsigned fwd = (to + k_ - from) % k_;  // hops going Plus
  const unsigned bwd = k_ - fwd;               // hops going Minus
  if (fwd < bwd) {
    r.dirs_mask = 1u << static_cast<unsigned>(Dir::Plus);
    r.distance = static_cast<std::uint16_t>(fwd);
  } else if (bwd < fwd) {
    r.dirs_mask = 1u << static_cast<unsigned>(Dir::Minus);
    r.distance = static_cast<std::uint16_t>(bwd);
  } else {  // tie (even k, half-way destination): both directions minimal
    r.dirs_mask = 0b11;
    r.distance = static_cast<std::uint16_t>(fwd);
  }
  return r;
}

std::uint32_t KAryNCube::useful_channels_mask(NodeId from,
                                              NodeId to) const noexcept {
  std::uint32_t mask = 0;
  for (unsigned d = 0; d < n_; ++d) {
    const DimRoute r = dim_route(coord(from, d), coord(to, d));
    if (r.dirs_mask & (1u << static_cast<unsigned>(Dir::Plus))) {
      mask |= 1u << make_channel(d, Dir::Plus);
    }
    if (r.dirs_mask & (1u << static_cast<unsigned>(Dir::Minus))) {
      mask |= 1u << make_channel(d, Dir::Minus);
    }
  }
  return mask;
}

unsigned KAryNCube::distance(NodeId from, NodeId to) const noexcept {
  unsigned total = 0;
  for (unsigned d = 0; d < n_; ++d) {
    total += dim_route(coord(from, d), coord(to, d)).distance;
  }
  return total;
}

double KAryNCube::average_distance_uniform() const noexcept {
  // Average over all (src, dst) pairs including src == dst, per
  // dimension: mean minimal ring distance.
  double per_dim;
  if (k_ % 2 == 0) {
    per_dim = static_cast<double>(k_) / 4.0;
  } else {
    per_dim = static_cast<double>(k_ * k_ - 1) / (4.0 * static_cast<double>(k_));
  }
  return per_dim * n_;
}

}  // namespace wormsim::topo
