#include "topology/fault_mask.hpp"

namespace wormsim::topo {

FaultMask::FaultMask(const KAryNCube& topo)
    : topo_(&topo),
      link_killed_(
          static_cast<std::size_t>(topo.num_nodes()) * topo.num_channels(), 0),
      node_dead_(topo.num_nodes(), 0) {}

void FaultMask::set_link(NodeId node, ChannelId channel, bool killed) {
  std::uint8_t& bit = link_killed_[index(node, channel)];
  if ((bit != 0) == killed) return;
  bit = killed ? 1 : 0;
  if (killed) {
    ++killed_links_;
  } else {
    --killed_links_;
  }
}

void FaultMask::kill_link(NodeId node, ChannelId channel) {
  set_link(node, channel, true);
  // The reverse direction of the same physical link: the neighbor's
  // output channel in the opposite direction of the same dimension.
  set_link(topo_->neighbor(node, channel),
           static_cast<ChannelId>(channel ^ 1u), true);
}

void FaultMask::restore_link(NodeId node, ChannelId channel) {
  set_link(node, channel, false);
  set_link(topo_->neighbor(node, channel),
           static_cast<ChannelId>(channel ^ 1u), false);
}

void FaultMask::kill_node(NodeId node) {
  if (node_dead_[node] != 0) return;
  node_dead_[node] = 1;
  ++dead_nodes_;
}

void FaultMask::restore_node(NodeId node) {
  if (node_dead_[node] == 0) return;
  node_dead_[node] = 0;
  --dead_nodes_;
}

}  // namespace wormsim::topo
