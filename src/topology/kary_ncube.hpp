// Bidirectional k-ary n-cube (torus) topology.
//
// Node addressing: mixed-radix little-endian — coordinate of dimension 0
// is the least significant digit of the node id.
//
// Physical channel indexing at a node: channel c in [0, 2n) encodes
// dimension d = c / 2 and direction (c % 2 == 0 → "plus", increasing
// coordinate; c % 2 == 1 → "minus"). The paper's 8-ary 3-cube therefore
// has 6 physical output channels per node.
#pragma once

#include <array>
#include <cstdint>

namespace wormsim::topo {

using NodeId = std::uint32_t;
using ChannelId = std::uint8_t;  // per-node physical channel index

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr unsigned kMaxDims = 8;

using Coords = std::array<std::uint16_t, kMaxDims>;

/// Direction along one dimension.
enum class Dir : std::uint8_t { Plus = 0, Minus = 1 };

constexpr ChannelId make_channel(unsigned dim, Dir dir) noexcept {
  return static_cast<ChannelId>(dim * 2 + static_cast<unsigned>(dir));
}
constexpr unsigned channel_dim(ChannelId c) noexcept { return c / 2u; }
constexpr Dir channel_dir(ChannelId c) noexcept {
  return static_cast<Dir>(c % 2u);
}

/// Minimal-route description for one dimension: which directions are
/// minimal (bit 0 = plus, bit 1 = minus; both set on a k/2 tie in an
/// even-radix ring) and how many hops remain along a minimal direction.
struct DimRoute {
  std::uint8_t dirs_mask = 0;
  std::uint16_t distance = 0;
};

class KAryNCube {
 public:
  /// k >= 2 (radix per dimension), 1 <= n <= kMaxDims.
  KAryNCube(unsigned k, unsigned n);

  unsigned radix() const noexcept { return k_; }
  unsigned dims() const noexcept { return n_; }
  NodeId num_nodes() const noexcept { return num_nodes_; }
  unsigned num_channels() const noexcept { return 2 * n_; }
  /// Total unidirectional network links.
  std::uint64_t num_links() const noexcept {
    return static_cast<std::uint64_t>(num_nodes_) * num_channels();
  }

  Coords coords_of(NodeId node) const noexcept;
  NodeId node_at(const Coords& c) const noexcept;
  std::uint16_t coord(NodeId node, unsigned dim) const noexcept;

  /// The node reached by following output channel `c` from `node`.
  NodeId neighbor(NodeId node, ChannelId c) const noexcept;

  /// The input channel index at the receiving node for a flit sent on
  /// output channel `c` (the opposite direction in the same dimension:
  /// a flit leaving on (d, Plus) arrives on the receiver's (d, Plus)
  /// *input* port — we index input ports by the sender's channel
  /// direction so that input port (d, Plus) carries traffic moving in
  /// the plus direction).
  static constexpr ChannelId input_port_for(ChannelId c) noexcept { return c; }

  /// Minimal-route info for one dimension between two coordinates.
  DimRoute dim_route(std::uint16_t from, std::uint16_t to) const noexcept;

  /// Bitmask over the 2n output channels that move `from` strictly
  /// closer to `to` (the "useful physical output channels" of the
  /// paper). Zero iff from == to.
  std::uint32_t useful_channels_mask(NodeId from, NodeId to) const noexcept;

  /// Minimal hop distance.
  unsigned distance(NodeId from, NodeId to) const noexcept;

  /// Average minimal distance under uniform traffic (analytic: n*k/4 for
  /// even k, n*(k*k-1)/(4k) for odd k).
  double average_distance_uniform() const noexcept;

  /// Dateline virtual-channel class for deadlock-free ring traversal
  /// (Dally/Seitz address comparison): a message at coordinate `here`
  /// heading to coordinate `dest` in direction `dir` uses class 0 until
  /// it crosses the wraparound link and class 1 afterwards. Derivable
  /// without history: going Plus the wraparound is still ahead iff
  /// dest < here; going Minus iff dest > here.
  static std::uint8_t dateline_class(std::uint16_t here, std::uint16_t dest,
                                     Dir dir) noexcept {
    if (dir == Dir::Plus) return dest < here ? 0 : 1;
    return dest > here ? 0 : 1;
  }

 private:
  unsigned k_;
  unsigned n_;
  NodeId num_nodes_;
  std::array<NodeId, kMaxDims + 1> stride_{};  // k^d for digit extraction
};

}  // namespace wormsim::topo
