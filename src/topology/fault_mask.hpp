// Dead-component mask over a k-ary n-cube: which physical links and
// nodes have failed, queried by the routing-table rebuild and the
// simulator's fault surgery.
//
// Raw link kills are always symmetric: killing output channel `c` of
// `node` also kills the reverse direction (neighbor(node, c), c ^ 1),
// modelling a cable fault that takes down both directions at once.
// Node kills layer on top without touching the raw link bits, so
// link_dead() reports a link dead while either endpoint node is dead
// and restoring the node revives exactly the links that were not also
// killed explicitly.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/kary_ncube.hpp"

namespace wormsim::topo {

class FaultMask {
 public:
  explicit FaultMask(const KAryNCube& topo);

  /// Kill/restore one physical link (both directions). Idempotent.
  void kill_link(NodeId node, ChannelId channel);
  void restore_link(NodeId node, ChannelId channel);
  /// Kill/restore one node. Idempotent.
  void kill_node(NodeId node);
  void restore_node(NodeId node);

  /// Raw kill bit of the directed link (node, channel).
  bool link_killed(NodeId node, ChannelId channel) const noexcept {
    return link_killed_[index(node, channel)] != 0;
  }
  bool node_dead(NodeId node) const noexcept { return node_dead_[node] != 0; }

  /// Effective status: killed outright, or either endpoint node dead.
  bool link_dead(NodeId node, ChannelId channel) const noexcept {
    return link_killed_[index(node, channel)] != 0 || node_dead_[node] != 0 ||
           node_dead_[topo_->neighbor(node, channel)] != 0;
  }

  bool any() const noexcept { return killed_links_ + dead_nodes_ > 0; }
  /// Directed links with the raw kill bit set (2 per physical fault).
  std::size_t killed_links() const noexcept { return killed_links_; }
  std::size_t dead_nodes() const noexcept { return dead_nodes_; }

  const KAryNCube& topology() const noexcept { return *topo_; }

 private:
  std::size_t index(NodeId node, ChannelId channel) const noexcept {
    return static_cast<std::size_t>(node) * topo_->num_channels() + channel;
  }
  void set_link(NodeId node, ChannelId channel, bool killed);

  const KAryNCube* topo_;
  std::vector<std::uint8_t> link_killed_;  // [node * num_channels + c]
  std::vector<std::uint8_t> node_dead_;
  std::size_t killed_links_ = 0;
  std::size_t dead_nodes_ = 0;
};

}  // namespace wormsim::topo
