// Whole-experiment configuration and the paper's presets.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"
#include "traffic/workload.hpp"

namespace wormsim::config {

/// One fully-specified simulation experiment.
struct SimConfig {
  unsigned k = 8;
  unsigned n = 3;
  sim::SimulatorConfig sim{};
  traffic::WorkloadConfig workload{};
  sim::RunProtocol protocol{};
  std::uint64_t seed = 1;
};

/// The paper's §4.1 configuration: bidirectional 8-ary 3-cube (512
/// nodes), 3 VCs per physical channel with 4-flit buffers, 4 injection
/// and ejection channels per node, TFAR routing, FC3D-style detection
/// with a 32-cycle threshold, software-based recovery, exponential
/// per-node injection, uniform destinations, 16-flit messages.
SimConfig paper_base();

/// Reduced-scale variant for fast benches and CI: 8-ary 2-cube (64
/// nodes), same router parameters. The qualitative saturation behaviour
/// is preserved; see EXPERIMENTS.md for the scale note.
SimConfig small_base();

/// Throws std::invalid_argument on inconsistent settings.
void validate(const SimConfig& cfg);

/// Analytic memory footprint of one simulation instance: the large
/// O(nodes) / O(links) arrays, computed from sizeofs without
/// constructing anything. Lets callers (and validate()) reason about
/// 32k-node configs before committing gigabytes.
struct MemoryFootprint {
  std::uint64_t nodes = 0;
  std::uint64_t network_bytes = 0;     // links, VC state, eject ports
  std::uint64_t lut_bytes = 0;         // tabulated routing (0 = passthrough)
  std::uint64_t status_bytes = 0;      // per-link status rows + route memo
  std::uint64_t active_set_bytes = 0;  // bitmap index sets + gen bookkeeping
  std::uint64_t total_bytes() const noexcept {
    return network_bytes + lut_bytes + status_bytes + active_set_bytes;
  }
  double bytes_per_node() const noexcept {
    return nodes ? static_cast<double>(total_bytes()) /
                       static_cast<double>(nodes)
                 : 0.0;
  }
};

/// Estimate the footprint of `cfg` (validates nothing; safe on any
/// syntactically sane config).
MemoryFootprint estimate_memory(const SimConfig& cfg);

/// Build a ready-to-run Simulator (topology + workload wired up).
std::unique_ptr<sim::Simulator> build_simulator(const SimConfig& cfg);

/// Optional observers to attach to a run. All are borrowed (caller
/// keeps ownership) and may be null; null hooks leave the simulator's
/// hot path untouched.
struct RunHooks {
  obs::Tracer* tracer = nullptr;
  metrics::SpatialMetrics* spatial = nullptr;
  metrics::OnlineStats* online = nullptr;
};

/// Convenience: build, run the protocol, return the result.
metrics::SimResult run_experiment(const SimConfig& cfg);

/// As above, with observers attached for the duration of the run.
/// `hooks.spatial` must be sized for the config's topology
/// (num_nodes, num_nodes * 2n channels, num_vcs); end-of-run link
/// counters are copied into it before returning.
metrics::SimResult run_experiment(const SimConfig& cfg,
                                  const RunHooks& hooks);

}  // namespace wormsim::config
