#include "config/presets.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fault/schedule.hpp"
#include "routing/routing_lut.hpp"

namespace wormsim::config {

SimConfig paper_base() {
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 3;
  cfg.sim.net.num_vcs = 3;
  cfg.sim.net.buf_flits = 4;
  cfg.sim.net.inj_channels = 4;
  cfg.sim.net.eje_channels = 4;
  cfg.sim.net.link_delay = 2;     // crossbar + channel, one cycle each
  cfg.sim.routing_delay = 1;      // routing, one cycle
  cfg.sim.algorithm = routing::Algorithm::TFAR;
  cfg.sim.selection = routing::SelectionPolicy::MaxFreeVcs;
  cfg.sim.detection.enabled = true;
  cfg.sim.detection.threshold = 32;
  cfg.sim.recovery.base_delay = 32;
  cfg.sim.limiter.kind = core::LimiterKind::None;
  cfg.workload.pattern = traffic::PatternKind::Uniform;
  cfg.workload.process = traffic::ProcessKind::Exponential;
  cfg.workload.length.kind = traffic::LengthDist::Kind::Fixed;
  cfg.workload.length.fixed = 16;
  cfg.workload.offered_flits_per_node_cycle = 0.1;
  cfg.protocol.warmup = 10000;
  cfg.protocol.measure = 30000;
  cfg.protocol.drain_max = 30000;
  cfg.seed = 20000501;  // IPPS 2000
  return cfg;
}

SimConfig small_base() {
  SimConfig cfg = paper_base();
  cfg.n = 2;  // 8-ary 2-cube, 64 nodes
  cfg.protocol.warmup = 5000;
  cfg.protocol.measure = 15000;
  cfg.protocol.drain_max = 20000;
  return cfg;
}

void validate(const SimConfig& cfg) {
  if (cfg.k < 2) throw std::invalid_argument("k must be >= 2");
  if (cfg.n < 1 || cfg.n > topo::kMaxDims) {
    throw std::invalid_argument("n out of range");
  }
  if (cfg.workload.length.mean() <= 0) {
    throw std::invalid_argument("message length must be positive");
  }
  if (cfg.workload.offered_flits_per_node_cycle < 0) {
    throw std::invalid_argument("offered load must be >= 0");
  }
  if (cfg.sim.algorithm == routing::Algorithm::TFAR &&
      !cfg.sim.detection.enabled) {
    throw std::invalid_argument(
        "TFAR is not deadlock-free: deadlock detection must be enabled");
  }
  if (cfg.protocol.measure == 0) {
    throw std::invalid_argument("measurement window must be non-empty");
  }
  if (cfg.sim.flow.scheme == sim::FlowControl::Vct) {
    // Whole-packet admission: a packet longer than the buffer could
    // never claim a network VC and would wedge its source forever.
    const auto& len = cfg.workload.length;
    const std::uint32_t longest =
        len.kind == traffic::LengthDist::Kind::Bimodal
            ? std::max(len.short_len, len.long_len)
            : len.fixed;
    if (longest > cfg.sim.net.buf_flits) {
      throw std::invalid_argument(
          "virtual cut-through needs buf_flits >= the longest message (" +
          std::to_string(longest) + " flits)");
    }
  }
  // NetworkParams and routing constraints are validated by their
  // constructors; trigger them early for a clear error site.
  const topo::KAryNCube topo(cfg.k, cfg.n);
  sim::Network probe_net(topo, cfg.sim.net);
  (void)routing::make_routing(cfg.sim.algorithm, topo, cfg.sim.net.num_vcs);
  if (!cfg.sim.faults.empty()) {
    if (cfg.sim.algorithm != routing::Algorithm::TFAR) {
      throw std::invalid_argument(
          "fault schedules require TFAR routing (the only algorithm with a "
          "reachability-aware LUT rebuild)");
    }
    const std::size_t nodes = topo.num_nodes();
    if (nodes * nodes > routing::RoutingLut::kMaxEntries) {
      throw std::invalid_argument(
          "fault schedules need a tabulable network (too many nodes for the "
          "routing LUT)");
    }
    fault::validate(cfg.sim.faults, topo);
  }
}

std::unique_ptr<sim::Simulator> build_simulator(const SimConfig& cfg) {
  validate(cfg);
  const topo::KAryNCube topo(cfg.k, cfg.n);
  auto workload =
      std::make_unique<traffic::Workload>(topo, cfg.workload, cfg.seed);
  sim::SimulatorConfig sc = cfg.sim;
  sc.seed = cfg.seed;
  return std::make_unique<sim::Simulator>(topo, sc, std::move(workload));
}

metrics::SimResult run_experiment(const SimConfig& cfg) {
  auto simulator = build_simulator(cfg);
  return simulator->run(cfg.protocol);
}

metrics::SimResult run_experiment(const SimConfig& cfg,
                                  const RunHooks& hooks) {
  auto simulator = build_simulator(cfg);
  simulator->set_tracer(hooks.tracer);
  simulator->set_spatial(hooks.spatial);
  simulator->set_online(hooks.online);
  metrics::SimResult r = simulator->run(cfg.protocol);
  simulator->finish_spatial();
  simulator->finish_online();
  return r;
}

}  // namespace wormsim::config
