#include "config/presets.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fault/schedule.hpp"
#include "routing/routing_lut.hpp"

namespace wormsim::config {

SimConfig paper_base() {
  SimConfig cfg;
  cfg.k = 8;
  cfg.n = 3;
  cfg.sim.net.num_vcs = 3;
  cfg.sim.net.buf_flits = 4;
  cfg.sim.net.inj_channels = 4;
  cfg.sim.net.eje_channels = 4;
  cfg.sim.net.link_delay = 2;     // crossbar + channel, one cycle each
  cfg.sim.routing_delay = 1;      // routing, one cycle
  cfg.sim.algorithm = routing::Algorithm::TFAR;
  cfg.sim.selection = routing::SelectionPolicy::MaxFreeVcs;
  cfg.sim.detection.enabled = true;
  cfg.sim.detection.threshold = 32;
  cfg.sim.recovery.base_delay = 32;
  cfg.sim.limiter.kind = core::LimiterKind::None;
  cfg.workload.pattern = traffic::PatternKind::Uniform;
  cfg.workload.process = traffic::ProcessKind::Exponential;
  cfg.workload.length.kind = traffic::LengthDist::Kind::Fixed;
  cfg.workload.length.fixed = 16;
  cfg.workload.offered_flits_per_node_cycle = 0.1;
  cfg.protocol.warmup = 10000;
  cfg.protocol.measure = 30000;
  cfg.protocol.drain_max = 30000;
  cfg.seed = 20000501;  // IPPS 2000
  return cfg;
}

SimConfig small_base() {
  SimConfig cfg = paper_base();
  cfg.n = 2;  // 8-ary 2-cube, 64 nodes
  cfg.protocol.warmup = 5000;
  cfg.protocol.measure = 15000;
  cfg.protocol.drain_max = 20000;
  return cfg;
}

MemoryFootprint estimate_memory(const SimConfig& cfg) {
  MemoryFootprint f;
  const auto& net = cfg.sim.net;
  std::uint64_t nodes = 1;
  for (unsigned d = 0; d < cfg.n; ++d) nodes *= cfg.k;
  f.nodes = nodes;
  const std::uint64_t net_links = nodes * (2 * cfg.n);
  const std::uint64_t inj_links = nodes * net.inj_channels;
  const std::uint64_t links = net_links + inj_links;
  // One VC slot per (net link, vc) plus one per injection link; each
  // Link embeds its in-flight pipeline ring, so sizeof covers it.
  const std::uint64_t slots = net_links * net.num_vcs + inj_links;
  f.network_bytes = links * sizeof(sim::Link) +
                    slots * sizeof(sim::VcState) +
                    nodes * net.eje_channels * sizeof(sim::EjectPort);
  // Tabulated routing: one packed 4-byte entry per (node, dst) pair.
  // Above kMaxEntries the LUT silently degrades to passthrough (no
  // allocation), and validate() rejects fault schedules there.
  const bool active = cfg.sim.core == sim::SimCore::Active;
  if ((active && cfg.sim.fastpath.routing_lut) || !cfg.sim.faults.empty()) {
    if (nodes * nodes <= routing::RoutingLut::kMaxEntries) {
      f.lut_bytes = nodes * nodes * 4;
    }
  }
  // SoA status rows: per-net-link free/admissible masks and epoch
  // counters, plus the per-slot slot->router map and route memo.
  f.status_bytes = net_links * (sizeof(std::uint8_t) * 2 +
                                sizeof(std::uint64_t)) +
                   slots * sizeof(topo::NodeId);
  if (active && cfg.sim.fastpath.route_memo) {
    f.status_bytes += slots * sim::Simulator::route_memo_entry_bytes();
  }
  // Active-set bitmaps: tenant + arrival over net links; eject, inject
  // and generator-dense over nodes; plus the per-node generator
  // subscription byte.
  const auto bitmap_bytes = [](std::uint64_t n) {
    return (n + 63) / 64 * sizeof(std::uint64_t);
  };
  f.active_set_bytes =
      2 * bitmap_bytes(net_links) + 3 * bitmap_bytes(nodes) + nodes;
  return f;
}

void validate(const SimConfig& cfg) {
  if (cfg.k < 2) throw std::invalid_argument("k must be >= 2");
  if (cfg.n < 1 || cfg.n > topo::kMaxDims) {
    throw std::invalid_argument("n out of range");
  }
  if (cfg.workload.length.mean() <= 0) {
    throw std::invalid_argument("message length must be positive");
  }
  if (cfg.workload.offered_flits_per_node_cycle < 0) {
    throw std::invalid_argument("offered load must be >= 0");
  }
  if (cfg.sim.algorithm == routing::Algorithm::TFAR &&
      !cfg.sim.detection.enabled) {
    throw std::invalid_argument(
        "TFAR is not deadlock-free: deadlock detection must be enabled");
  }
  if (cfg.protocol.measure == 0) {
    throw std::invalid_argument("measurement window must be non-empty");
  }
  if (cfg.sim.flow.scheme == sim::FlowControl::Vct) {
    // Whole-packet admission: a packet longer than the buffer could
    // never claim a network VC and would wedge its source forever.
    const auto& len = cfg.workload.length;
    const std::uint32_t longest =
        len.kind == traffic::LengthDist::Kind::Bimodal
            ? std::max(len.short_len, len.long_len)
            : len.fixed;
    if (longest > cfg.sim.net.buf_flits) {
      throw std::invalid_argument(
          "virtual cut-through needs buf_flits >= the longest message (" +
          std::to_string(longest) + " flits)");
    }
  }
  if (cfg.sim.shards != 1 && cfg.sim.core == sim::SimCore::Dense) {
    throw std::invalid_argument(
        "shards != 1 requires the active core (the dense reference core "
        "stays single-threaded)");
  }
  // NetworkParams and routing constraints are validated by their
  // constructors; trigger them early for a clear error site.
  const topo::KAryNCube topo(cfg.k, cfg.n);
  sim::Network probe_net(topo, cfg.sim.net);
  (void)routing::make_routing(cfg.sim.algorithm, topo, cfg.sim.net.num_vcs);
  if (!cfg.sim.faults.empty()) {
    if (cfg.sim.algorithm != routing::Algorithm::TFAR) {
      throw std::invalid_argument(
          "fault schedules require TFAR routing (the only algorithm with a "
          "reachability-aware LUT rebuild)");
    }
    const std::uint64_t nodes = topo.num_nodes();
    if (nodes * nodes > routing::RoutingLut::kMaxEntries) {
      // Refuse up front with the arithmetic instead of letting a 32k-node
      // config attempt a multi-gigabyte LUT tabulation.
      throw std::invalid_argument(
          "fault schedules need a tabulable network: " +
          std::to_string(nodes) + " nodes would need a " +
          std::to_string(nodes * nodes * 4 / (1024 * 1024)) +
          " MiB routing LUT, over the " +
          std::to_string(routing::RoutingLut::kMaxEntries * 4 /
                         (1024 * 1024)) +
          " MiB budget; shrink the network or drop the fault schedule");
    }
    fault::validate(cfg.sim.faults, topo);
  }
}

std::unique_ptr<sim::Simulator> build_simulator(const SimConfig& cfg) {
  validate(cfg);
  const topo::KAryNCube topo(cfg.k, cfg.n);
  auto workload =
      std::make_unique<traffic::Workload>(topo, cfg.workload, cfg.seed);
  sim::SimulatorConfig sc = cfg.sim;
  sc.seed = cfg.seed;
  return std::make_unique<sim::Simulator>(topo, sc, std::move(workload));
}

metrics::SimResult run_experiment(const SimConfig& cfg) {
  auto simulator = build_simulator(cfg);
  return simulator->run(cfg.protocol);
}

metrics::SimResult run_experiment(const SimConfig& cfg,
                                  const RunHooks& hooks) {
  auto simulator = build_simulator(cfg);
  simulator->set_tracer(hooks.tracer);
  simulator->set_spatial(hooks.spatial);
  simulator->set_online(hooks.online);
  metrics::SimResult r = simulator->run(cfg.protocol);
  simulator->finish_spatial();
  simulator->finish_online();
  return r;
}

}  // namespace wormsim::config
