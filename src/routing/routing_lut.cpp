#include "routing/routing_lut.hpp"

namespace wormsim::routing {

using topo::ChannelId;
using topo::NodeId;

RoutingLut::RoutingLut(const RoutingFunction& fn, const topo::KAryNCube& topo,
                       std::size_t max_entries)
    : fn_(&fn),
      algo_(fn.algorithm()),
      num_vcs_(fn.num_vcs()),
      nodes_(topo.num_nodes()) {
  const std::size_t pairs =
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(nodes_);
  if (pairs > max_entries) return;  // passthrough mode

  entries_.resize(pairs);
  RouteResult r;
  for (NodeId here = 0; here < nodes_; ++here) {
    for (NodeId dst = 0; dst < nodes_; ++dst) {
      if (here == dst) continue;  // route() precondition: here != dst
      fn.route(here, dst, r);
      Entry& e = entries_[static_cast<std::size_t>(here) * nodes_ + dst];
      e.useful = static_cast<std::uint16_t>(r.useful_phys_mask);
      switch (algo_) {
        case Algorithm::TFAR:
          break;  // fully determined by the useful mask
        case Algorithm::DOR: {
          const Candidate& c = r.candidates[0];
          e.det_channel = c.channel;
          e.det_class = c.vc_mask == 0b1u ? 0 : 1;
          break;
        }
        case Algorithm::Duato: {
          const Candidate& esc = r.candidates[r.candidates.size() - 1];
          e.det_channel = esc.channel;
          e.det_class = esc.vc_mask == 0b01u ? 0 : 1;
          break;
        }
      }
    }
  }
}

void RoutingLut::expand(const Entry& e, RouteResult& out) const {
  out.clear();
  const std::uint32_t mask = e.useful;
  out.useful_phys_mask = mask;
  const std::uint32_t all_vcs = (1u << num_vcs_) - 1u;
  switch (algo_) {
    case Algorithm::TFAR: {
      for (std::uint32_t m = mask; m != 0; m &= m - 1) {
        const auto c = static_cast<ChannelId>(
            __builtin_ctz(m));  // ascending channel order
        out.candidates.push_back({c, all_vcs, /*escape=*/false});
      }
      break;
    }
    case Algorithm::DOR: {
      const std::uint32_t vcs = e.det_class == 0 ? 0b1u : (all_vcs & ~0b1u);
      out.candidates.push_back({e.det_channel, vcs, /*escape=*/false});
      break;
    }
    case Algorithm::Duato: {
      const std::uint32_t adaptive = all_vcs & ~0b11u;
      for (std::uint32_t m = mask; m != 0; m &= m - 1) {
        const auto c = static_cast<ChannelId>(__builtin_ctz(m));
        out.candidates.push_back({c, adaptive, /*escape=*/false});
      }
      const std::uint32_t esc_vcs = e.det_class == 0 ? 0b01u : 0b10u;
      out.candidates.push_back({e.det_channel, esc_vcs, /*escape=*/true});
      break;
    }
  }
}

}  // namespace wormsim::routing
