#include "routing/routing_lut.hpp"

#include <limits>
#include <stdexcept>

namespace wormsim::routing {

using topo::ChannelId;
using topo::NodeId;

RoutingLut::RoutingLut(const RoutingFunction& fn, const topo::KAryNCube& topo,
                       std::size_t max_entries)
    : fn_(&fn),
      topo_(&topo),
      algo_(fn.algorithm()),
      num_vcs_(fn.num_vcs()),
      nodes_(topo.num_nodes()) {
  const std::size_t pairs =
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(nodes_);
  if (pairs > max_entries) return;  // passthrough mode

  entries_.resize(pairs);
  tabulate();
}

void RoutingLut::tabulate() {
  RouteResult r;
  for (NodeId here = 0; here < nodes_; ++here) {
    for (NodeId dst = 0; dst < nodes_; ++dst) {
      Entry& e = entries_[static_cast<std::size_t>(here) * nodes_ + dst];
      if (here == dst) {
        e = Entry{};
        continue;  // route() precondition: here != dst
      }
      fn_->route(here, dst, r);
      e.useful = static_cast<std::uint16_t>(r.useful_phys_mask);
      e.det_channel = 0;
      e.det_class = 0;
      switch (algo_) {
        case Algorithm::TFAR:
          break;  // fully determined by the useful mask
        case Algorithm::DOR: {
          const Candidate& c = r.candidates[0];
          e.det_channel = c.channel;
          e.det_class = c.vc_mask == 0b1u ? 0 : 1;
          break;
        }
        case Algorithm::Duato: {
          const Candidate& esc = r.candidates[r.candidates.size() - 1];
          e.det_channel = esc.channel;
          e.det_class = esc.vc_mask == 0b01u ? 0 : 1;
          break;
        }
      }
    }
  }
}

void RoutingLut::rebuild(const topo::FaultMask* faults) {
  const bool faulty = faults != nullptr && faults->any();
  if (entries_.empty()) {
    if (faulty) {
      throw std::invalid_argument(
          "RoutingLut::rebuild: passthrough mode cannot route around faults");
    }
    return;
  }
  if (!faulty) {
    // Restore path: re-run the construction-time tabulation so the
    // healthy table comes back bit-exact.
    tabulate();
    return;
  }
  if (algo_ != Algorithm::TFAR) {
    throw std::invalid_argument(
        "RoutingLut::rebuild: fault-aware routes require TFAR (deterministic "
        "algorithms have no alternative paths to bend around faults)");
  }

  // One reverse BFS per destination over the alive graph. On a healthy
  // torus the BFS distance equals the minimal hop distance, so the
  // useful mask below coincides with TFAR's minimal-channel mask; dead
  // components simply drop out of the frontier.
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  const unsigned channels = topo_->num_channels();
  std::vector<std::uint32_t> dist(nodes_);
  std::vector<NodeId> frontier;
  std::vector<NodeId> next;
  for (NodeId dst = 0; dst < nodes_; ++dst) {
    dist.assign(nodes_, kInf);
    frontier.clear();
    if (!faults->node_dead(dst)) {
      dist[dst] = 0;
      frontier.push_back(dst);
    }
    std::uint32_t depth = 0;
    while (!frontier.empty()) {
      ++depth;
      next.clear();
      for (const NodeId u : frontier) {
        for (unsigned c = 0; c < channels; ++c) {
          // Expanding backwards along (v -> u) uses the same edge set:
          // kills are symmetric, so alive(u, c) iff alive(v, c ^ 1).
          if (faults->link_dead(u, static_cast<ChannelId>(c))) continue;
          const NodeId v = topo_->neighbor(u, static_cast<ChannelId>(c));
          if (dist[v] != kInf) continue;
          dist[v] = depth;
          next.push_back(v);
        }
      }
      frontier.swap(next);
    }
    for (NodeId here = 0; here < nodes_; ++here) {
      Entry& e = entries_[static_cast<std::size_t>(here) * nodes_ + dst];
      e.det_channel = 0;
      e.det_class = 0;
      std::uint32_t useful = 0;
      if (here != dst && dist[here] != kInf &&
          !faults->node_dead(here)) {
        for (unsigned c = 0; c < channels; ++c) {
          if (faults->link_dead(here, static_cast<ChannelId>(c))) continue;
          const NodeId v = topo_->neighbor(here, static_cast<ChannelId>(c));
          if (dist[v] != kInf && dist[v] + 1 == dist[here]) {
            useful |= 1u << c;
          }
        }
      }
      e.useful = static_cast<std::uint16_t>(useful);  // 0 = unreachable
    }
  }
}

void RoutingLut::expand(const Entry& e, RouteResult& out) const {
  out.clear();
  const std::uint32_t mask = e.useful;
  out.useful_phys_mask = mask;
  const std::uint32_t all_vcs = (1u << num_vcs_) - 1u;
  switch (algo_) {
    case Algorithm::TFAR: {
      for (std::uint32_t m = mask; m != 0; m &= m - 1) {
        const auto c = static_cast<ChannelId>(
            __builtin_ctz(m));  // ascending channel order
        out.candidates.push_back({c, all_vcs, /*escape=*/false});
      }
      break;
    }
    case Algorithm::DOR: {
      const std::uint32_t vcs = e.det_class == 0 ? 0b1u : (all_vcs & ~0b1u);
      out.candidates.push_back({e.det_channel, vcs, /*escape=*/false});
      break;
    }
    case Algorithm::Duato: {
      const std::uint32_t adaptive = all_vcs & ~0b11u;
      for (std::uint32_t m = mask; m != 0; m &= m - 1) {
        const auto c = static_cast<ChannelId>(__builtin_ctz(m));
        out.candidates.push_back({c, adaptive, /*escape=*/false});
      }
      const std::uint32_t esc_vcs = e.det_class == 0 ? 0b01u : 0b10u;
      out.candidates.push_back({e.det_channel, esc_vcs, /*escape=*/true});
      break;
    }
  }
}

}  // namespace wormsim::routing
