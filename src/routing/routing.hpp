// Routing functions.
//
// All routing here is minimal: a candidate always moves the message
// closer to its destination. Three algorithms are provided:
//
//  * TFAR  — True Fully Adaptive Routing [Martínez et al. ICPP'97], the
//            paper's §4.1 choice: any virtual channel of any useful
//            physical channel. Not deadlock-free on its own; pairs with
//            deadlock detection + recovery.
//  * DOR   — deterministic dimension-order routing, made deadlock-free
//            on the torus with Dally/Seitz dateline virtual-channel
//            classes (class 0 = VC 0 before the wraparound, class 1 =
//            the remaining VCs after it).
//  * Duato — Duato's deadlock-avoidance protocol: fully adaptive minimal
//            routing on the "adaptive" VCs (2..V-1) plus an escape layer
//            (VCs 0..1) that implements dateline DOR. Requires >= 3 VCs.
//
// A routing function returns an ordered candidate list (adaptive
// candidates first, escape candidates last) plus the mask of useful
// physical channels that the ALO injection-limitation mechanism needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "topology/kary_ncube.hpp"
#include "util/small_vector.hpp"

namespace wormsim::routing {

enum class Algorithm { TFAR, DOR, Duato };

Algorithm parse_algorithm(std::string_view name);
std::string_view algorithm_name(Algorithm a);

/// One admissible (physical channel, virtual channel set) option.
struct Candidate {
  topo::ChannelId channel = 0;
  std::uint32_t vc_mask = 0;  // usable VCs on that physical channel
  bool escape = false;        // escape-layer candidate (Duato only)
};

struct RouteResult {
  util::SmallVector<Candidate, 2 * topo::kMaxDims + 2> candidates;
  /// All physical channels that move the message closer to its
  /// destination, regardless of VC restrictions — the "useful physical
  /// output channels" the ALO mechanism inspects.
  std::uint32_t useful_phys_mask = 0;

  void clear() noexcept {
    candidates.clear();
    useful_phys_mask = 0;
  }
};

class RoutingFunction {
 public:
  virtual ~RoutingFunction() = default;

  /// Candidates for a message currently at `here` destined to `dst`
  /// (`here != dst`). `out` is cleared first.
  virtual void route(topo::NodeId here, topo::NodeId dst,
                     RouteResult& out) const = 0;

  virtual Algorithm algorithm() const noexcept = 0;
  /// True if the routing function admits cyclic channel dependencies
  /// and therefore requires a deadlock detection/recovery mechanism.
  virtual bool needs_deadlock_recovery() const noexcept = 0;
  unsigned num_vcs() const noexcept { return num_vcs_; }

 protected:
  RoutingFunction(const topo::KAryNCube& topo, unsigned num_vcs)
      : topo_(&topo), num_vcs_(num_vcs) {}
  const topo::KAryNCube& topo() const noexcept { return *topo_; }
  std::uint32_t all_vcs_mask() const noexcept {
    return (1u << num_vcs_) - 1u;
  }

 private:
  const topo::KAryNCube* topo_;
  unsigned num_vcs_;
};

std::unique_ptr<RoutingFunction> make_routing(Algorithm a,
                                              const topo::KAryNCube& topo,
                                              unsigned num_vcs);

}  // namespace wormsim::routing
