// Precomputed routing lookup table.
//
// All shipped routing functions are *static*: the candidate list and the
// useful-physical-channel mask depend only on (here, dst), never on
// channel status. That makes the whole routing function tabulable at
// network-construction time. The table stores one compact 4-byte entry
// per (here, dst) pair — the useful mask plus the deterministic
// dimension-order hop (channel + dateline class) — and re-expands it
// into the exact RouteResult the wrapped function would have produced,
// in the same candidate order:
//
//   * TFAR  — one candidate per set bit of the useful mask, ascending
//             channel order, all VCs usable.
//   * DOR   — the single stored deterministic hop with its dateline
//             class mask.
//   * Duato — adaptive candidates as TFAR (VCs 2..V-1), then the stored
//             deterministic hop as the escape candidate (VC 0 or 1 by
//             dateline class).
//
// Networks too large to tabulate (> max_entries (here, dst) pairs) fall
// back to calling the wrapped function — route() is then a passthrough,
// so callers never need to care. A status-dependent routing function
// added in the future must NOT be wrapped in a RoutingLut (or must use
// the passthrough mode); the blocked-header route memo in the simulator
// makes the same staticness assumption.
//
// tests/routing/test_routing_lut.cpp asserts LUT/on-the-fly equality
// exhaustively over small cubes and randomly over larger ones.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing.hpp"
#include "topology/fault_mask.hpp"

namespace wormsim::routing {

class RoutingLut {
 public:
  /// Default tabulation budget: 4M entries = 16 MiB, i.e. up to a
  /// 2048-node network. The paper's 8-ary 3-cube (512 nodes) needs
  /// 256K entries / 1 MiB.
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 22;

  /// `fn` must outlive the LUT. `max_entries` below nodes^2 selects the
  /// passthrough mode (exposed for tests; production callers use the
  /// default).
  RoutingLut(const RoutingFunction& fn, const topo::KAryNCube& topo,
             std::size_t max_entries = kMaxEntries);

  /// False when the network exceeded the tabulation budget and route()
  /// forwards to the wrapped function.
  bool tabulated() const noexcept { return !entries_.empty(); }

  /// Bit-identical replacement for fn.route(here, dst, out).
  void route(topo::NodeId here, topo::NodeId dst, RouteResult& out) const {
    if (entries_.empty()) {
      fn_->route(here, dst, out);
      return;
    }
    expand(entries_[static_cast<std::size_t>(here) * nodes_ + dst], out);
  }

  Algorithm algorithm() const noexcept { return algo_; }

  /// Retabulate the table, O(table size). With a null or empty fault
  /// mask this reproduces the original routes bit-exactly (the
  /// construction-time tabulation re-runs). With faults present the
  /// table switches to BFS-shortest-path routes over the alive graph
  /// (TFAR only: every alive channel one hop closer to dst becomes a
  /// candidate, so routes bend around dead components and may leave the
  /// minimal quadrant). Throws std::invalid_argument for a non-empty
  /// mask in passthrough mode or under a deterministic algorithm.
  void rebuild(const topo::FaultMask* faults);

  /// After a fault-aware rebuild: is dst reachable from `here` over the
  /// alive graph? Healthy tables report every pair reachable.
  bool reachable(topo::NodeId here, topo::NodeId dst) const noexcept {
    if (here == dst) return true;
    if (entries_.empty()) return true;
    return entries_[static_cast<std::size_t>(here) * nodes_ + dst].useful != 0;
  }

 private:
  struct Entry {
    std::uint16_t useful = 0;      // useful physical channel mask
    std::uint8_t det_channel = 0;  // DOR hop channel (DOR/Duato escape)
    std::uint8_t det_class = 0;    // its dateline VC class (0 or 1)
  };

  void tabulate();
  void expand(const Entry& e, RouteResult& out) const;

  const RoutingFunction* fn_;
  const topo::KAryNCube* topo_;
  Algorithm algo_;
  unsigned num_vcs_;
  topo::NodeId nodes_;
  std::vector<Entry> entries_;
};

}  // namespace wormsim::routing
