#include "routing/selection.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace wormsim::routing {

SelectionPolicy parse_selection(std::string_view name) {
  if (name == "max-free" || name == "maxfree") {
    return SelectionPolicy::MaxFreeVcs;
  }
  if (name == "first-fit" || name == "firstfit") {
    return SelectionPolicy::FirstFit;
  }
  if (name == "round-robin" || name == "roundrobin") {
    return SelectionPolicy::RoundRobin;
  }
  throw std::invalid_argument("unknown selection policy: " +
                              std::string(name));
}

std::string_view selection_name(SelectionPolicy p) {
  switch (p) {
    case SelectionPolicy::MaxFreeVcs: return "max-free";
    case SelectionPolicy::FirstFit: return "first-fit";
    case SelectionPolicy::RoundRobin: return "round-robin";
  }
  return "unknown";
}

namespace {

std::uint8_t lowest_vc(std::uint32_t mask) {
  return static_cast<std::uint8_t>(std::countr_zero(mask));
}

// The two availability sources — the virtual FreeVcView and the
// contiguous SoA row — feed one selection template so the policies
// cannot drift apart.
struct VirtView {
  const FreeVcView* view;
  std::uint32_t free_vc_mask(topo::ChannelId c) const {
    return view->free_vc_mask(c);
  }
};

struct RowView {
  const std::uint8_t* row;
  std::uint32_t free_vc_mask(topo::ChannelId c) const { return row[c]; }
};

/// Scan candidates in [begin, end) with the given policy; all candidates
/// in the range have the same escape flag.
template <typename View>
std::optional<Pick> select_range(const RouteResult& route, std::size_t begin,
                                 std::size_t end, View view,
                                 SelectionPolicy policy,
                                 std::uint32_t rr_state) {
  const std::size_t count = end - begin;
  if (count == 0) return std::nullopt;

  switch (policy) {
    case SelectionPolicy::FirstFit: {
      for (std::size_t i = begin; i < end; ++i) {
        const Candidate& c = route.candidates[i];
        const std::uint32_t usable = view.free_vc_mask(c.channel) & c.vc_mask;
        if (usable) return Pick{c.channel, lowest_vc(usable), c.escape};
      }
      return std::nullopt;
    }
    case SelectionPolicy::RoundRobin: {
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t i = begin + (j + rr_state) % count;
        const Candidate& c = route.candidates[i];
        const std::uint32_t usable = view.free_vc_mask(c.channel) & c.vc_mask;
        if (usable) return Pick{c.channel, lowest_vc(usable), c.escape};
      }
      return std::nullopt;
    }
    case SelectionPolicy::MaxFreeVcs: {
      std::optional<Pick> best;
      int best_free = -1;
      for (std::size_t j = 0; j < count; ++j) {
        // Rotate the scan start so ties rotate across channels instead
        // of always favouring low channel indices.
        const std::size_t i = begin + (j + rr_state) % count;
        const Candidate& c = route.candidates[i];
        const std::uint32_t usable = view.free_vc_mask(c.channel) & c.vc_mask;
        if (!usable) continue;
        const int free = std::popcount(usable);
        if (free > best_free) {
          best_free = free;
          best = Pick{c.channel, lowest_vc(usable), c.escape};
        }
      }
      return best;
    }
  }
  return std::nullopt;
}

template <typename View>
std::optional<Pick> select_impl(const RouteResult& route, View view,
                                SelectionPolicy policy,
                                std::uint32_t rr_state) {
  // Candidates are ordered adaptive-first by the routing functions; find
  // the adaptive/escape boundary.
  std::size_t escape_begin = route.candidates.size();
  for (std::size_t i = 0; i < route.candidates.size(); ++i) {
    if (route.candidates[i].escape) {
      escape_begin = i;
      break;
    }
  }
  if (auto pick =
          select_range(route, 0, escape_begin, view, policy, rr_state)) {
    return pick;
  }
  return select_range(route, escape_begin, route.candidates.size(), view,
                      policy, rr_state);
}

}  // namespace

std::optional<Pick> Selector::select(const RouteResult& route,
                                     const FreeVcView& view,
                                     std::uint32_t rr_state) const {
  return select_impl(route, VirtView{&view}, policy_, rr_state);
}

std::optional<Pick> Selector::select(const RouteResult& route,
                                     const std::uint8_t* free_row,
                                     std::uint32_t rr_state) const {
  return select_impl(route, RowView{free_row}, policy_, rr_state);
}

}  // namespace wormsim::routing
