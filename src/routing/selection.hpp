// Selection function: picks one (physical channel, VC) among the
// admissible candidates with a free VC.
//
// The paper's ALO mechanism assumes the routing algorithm "tries to
// minimize virtual channel multiplexing" (§3) so that busy VCs spread
// evenly across physical channels. The default MaxFreeVcs policy does
// exactly that: among candidate channels it prefers the one with the
// most free usable VCs. FirstFit and RoundRobin are provided for
// ablation studies of that assumption.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "routing/routing.hpp"

namespace wormsim::routing {

enum class SelectionPolicy { MaxFreeVcs, FirstFit, RoundRobin };

SelectionPolicy parse_selection(std::string_view name);
std::string_view selection_name(SelectionPolicy p);

struct Pick {
  topo::ChannelId channel = 0;
  std::uint8_t vc = 0;
  bool escape = false;
};

/// Read-only view of output VC availability at one router, supplied by
/// the simulator. free_vc_mask(c) has bit v set iff VC v of physical
/// channel c is unallocated AND its receiving buffer is empty enough to
/// accept a header (i.e. selectable right now).
class FreeVcView {
 public:
  virtual ~FreeVcView() = default;
  virtual std::uint32_t free_vc_mask(topo::ChannelId channel) const = 0;
};

class Selector {
 public:
  explicit Selector(SelectionPolicy policy) : policy_(policy) {}

  /// Choose an output among `route.candidates` with at least one free
  /// usable VC. Adaptive candidates are always preferred over escape
  /// ones (Duato's protocol requirement). `rr_state` is a per-router
  /// counter the caller increments to rotate RoundRobin decisions.
  std::optional<Pick> select(const RouteResult& route, const FreeVcView& view,
                             std::uint32_t rr_state) const;

  /// Devirtualized overload for the cycle-loop hot path: `free_row[c]`
  /// holds free_vc_mask(c) for every physical channel of one router,
  /// laid out contiguously (sim::Network::free_mask_row). Bit-identical
  /// decisions to the virtual-view overload — both instantiate the same
  /// selection template.
  std::optional<Pick> select(const RouteResult& route,
                             const std::uint8_t* free_row,
                             std::uint32_t rr_state) const;

  SelectionPolicy policy() const noexcept { return policy_; }

 private:
  SelectionPolicy policy_;
};

}  // namespace wormsim::routing
