#include "routing/routing.hpp"

#include <stdexcept>
#include <string>

namespace wormsim::routing {

using topo::ChannelId;
using topo::Dir;
using topo::KAryNCube;
using topo::NodeId;

Algorithm parse_algorithm(std::string_view name) {
  if (name == "tfar") return Algorithm::TFAR;
  if (name == "dor") return Algorithm::DOR;
  if (name == "duato") return Algorithm::Duato;
  throw std::invalid_argument("unknown routing algorithm: " +
                              std::string(name));
}

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::TFAR: return "tfar";
    case Algorithm::DOR: return "dor";
    case Algorithm::Duato: return "duato";
  }
  return "unknown";
}

namespace {

/// True Fully Adaptive Routing: every VC of every useful physical
/// channel is admissible.
class TfarRouting final : public RoutingFunction {
 public:
  TfarRouting(const KAryNCube& t, unsigned vcs) : RoutingFunction(t, vcs) {}

  void route(NodeId here, NodeId dst, RouteResult& out) const override {
    out.clear();
    const std::uint32_t mask = topo().useful_channels_mask(here, dst);
    out.useful_phys_mask = mask;
    const std::uint32_t vcs = all_vcs_mask();
    for (unsigned c = 0; c < topo().num_channels(); ++c) {
      if (mask & (1u << c)) {
        out.candidates.push_back(
            {static_cast<ChannelId>(c), vcs, /*escape=*/false});
      }
    }
  }

  Algorithm algorithm() const noexcept override { return Algorithm::TFAR; }
  bool needs_deadlock_recovery() const noexcept override { return true; }
};

/// Shared helper: the deterministic dimension-order hop with dateline VC
/// classes. Returns the single admissible candidate for DOR, which is
/// also Duato's escape path.
Candidate dor_candidate(const KAryNCube& t, NodeId here, NodeId dst,
                        std::uint32_t class0_mask,
                        std::uint32_t class1_mask) {
  for (unsigned d = 0; d < t.dims(); ++d) {
    const auto from = t.coord(here, d);
    const auto to = t.coord(dst, d);
    if (from == to) continue;
    const topo::DimRoute r = t.dim_route(from, to);
    // Deterministic tie-break: prefer Plus when both directions are
    // minimal (even radix, half-way destination).
    const Dir dir = (r.dirs_mask & (1u << static_cast<unsigned>(Dir::Plus)))
                        ? Dir::Plus
                        : Dir::Minus;
    const std::uint8_t cls = KAryNCube::dateline_class(from, to, dir);
    Candidate cand;
    cand.channel = topo::make_channel(d, dir);
    cand.vc_mask = cls == 0 ? class0_mask : class1_mask;
    return cand;
  }
  // here == dst is a precondition violation.
  return Candidate{};
}

/// Deterministic dimension-order routing. VC 0 forms dateline class 0;
/// the remaining VCs form class 1. Deadlock-free on the torus
/// (Dally/Seitz): within a ring, class-0 channels are only used before
/// the wraparound crossing and class-1 channels after it, and
/// dimensions are totally ordered.
class DorRouting final : public RoutingFunction {
 public:
  DorRouting(const KAryNCube& t, unsigned vcs) : RoutingFunction(t, vcs) {
    if (vcs < 2) {
      throw std::invalid_argument(
          "DOR on a torus needs >= 2 VCs for dateline classes");
    }
  }

  void route(NodeId here, NodeId dst, RouteResult& out) const override {
    out.clear();
    out.useful_phys_mask = topo().useful_channels_mask(here, dst);
    const std::uint32_t class0 = 0b1;
    const std::uint32_t class1 = all_vcs_mask() & ~class0;
    Candidate cand = dor_candidate(topo(), here, dst, class0, class1);
    cand.escape = false;
    out.candidates.push_back(cand);
  }

  Algorithm algorithm() const noexcept override { return Algorithm::DOR; }
  bool needs_deadlock_recovery() const noexcept override { return false; }
};

/// Duato's deadlock-avoidance protocol: adaptive VCs (2..V-1) on every
/// useful physical channel, escape VCs (0..1) restricted to dateline
/// DOR. The escape layer's deadlock freedom extends to the whole
/// network [Duato, IEEE TPDS Dec. 1993].
class DuatoRouting final : public RoutingFunction {
 public:
  DuatoRouting(const KAryNCube& t, unsigned vcs) : RoutingFunction(t, vcs) {
    if (vcs < 3) {
      throw std::invalid_argument(
          "Duato's protocol on a torus needs >= 3 VCs (2 escape + >= 1 "
          "adaptive)");
    }
  }

  void route(NodeId here, NodeId dst, RouteResult& out) const override {
    out.clear();
    const std::uint32_t mask = topo().useful_channels_mask(here, dst);
    out.useful_phys_mask = mask;
    const std::uint32_t adaptive = all_vcs_mask() & ~0b11u;
    for (unsigned c = 0; c < topo().num_channels(); ++c) {
      if (mask & (1u << c)) {
        out.candidates.push_back(
            {static_cast<ChannelId>(c), adaptive, /*escape=*/false});
      }
    }
    Candidate esc = dor_candidate(topo(), here, dst, 0b01, 0b10);
    esc.escape = true;
    out.candidates.push_back(esc);
  }

  Algorithm algorithm() const noexcept override { return Algorithm::Duato; }
  bool needs_deadlock_recovery() const noexcept override { return false; }
};

}  // namespace

std::unique_ptr<RoutingFunction> make_routing(Algorithm a,
                                              const KAryNCube& topo,
                                              unsigned num_vcs) {
  if (num_vcs < 1 || num_vcs > 32) {
    throw std::invalid_argument("num_vcs must be in [1, 32]");
  }
  switch (a) {
    case Algorithm::TFAR:
      return std::make_unique<TfarRouting>(topo, num_vcs);
    case Algorithm::DOR:
      return std::make_unique<DorRouting>(topo, num_vcs);
    case Algorithm::Duato:
      return std::make_unique<DuatoRouting>(topo, num_vcs);
  }
  throw std::invalid_argument("unknown routing algorithm");
}

}  // namespace wormsim::routing
