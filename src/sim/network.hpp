// Network: flat state container for every link, VC buffer and ejection
// port, with the status queries the routing selector and the injection
// limiters consume. All control flow lives in Simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "core/limiter.hpp"
#include "routing/selection.hpp"
#include "sim/channel.hpp"
#include "sim/types.hpp"
#include "topology/kary_ncube.hpp"
#include "util/active_set.hpp"

namespace wormsim::sim {

struct NetworkParams {
  unsigned num_vcs = 3;       // virtual channels per physical channel
  unsigned buf_flits = 4;     // per-VC buffer depth
  unsigned inj_channels = 4;  // injection channels per node
  unsigned eje_channels = 4;  // ejection channels per node
  unsigned link_delay = 2;    // crossbar + channel cycles per hop
};

class Network final : public core::ChannelStatus {
 public:
  Network(const topo::KAryNCube& topo, const NetworkParams& params);

  // --- Identity / indexing -------------------------------------------
  const topo::KAryNCube& topology() const noexcept { return *topo_; }
  const NetworkParams& params() const noexcept { return params_; }

  LinkId num_net_links() const noexcept { return num_net_links_; }
  LinkId num_inj_links() const noexcept { return num_inj_links_; }
  LinkId num_links() const noexcept { return num_net_links_ + num_inj_links_; }

  LinkId net_link(NodeId node, ChannelId out_channel) const noexcept {
    return node * topo_->num_channels() + out_channel;
  }
  LinkId inj_link(NodeId node, unsigned channel) const noexcept {
    return num_net_links_ + node * params_.inj_channels +
           static_cast<LinkId>(channel);
  }
  bool is_injection(LinkId link) const noexcept {
    return link >= num_net_links_;
  }
  /// VCs on a link: params.num_vcs for network links, 1 for injection.
  unsigned vcs_on(LinkId link) const noexcept {
    return is_injection(link) ? 1u : params_.num_vcs;
  }

  Link& link(LinkId id) noexcept { return links_[id]; }
  const Link& link(LinkId id) const noexcept { return links_[id]; }

  VcState& vc(VcRef ref) noexcept { return vcs_[vc_index(ref)]; }
  const VcState& vc(VcRef ref) const noexcept { return vcs_[vc_index(ref)]; }

  EjectPort& eject_port(NodeId node, unsigned port) noexcept {
    return eject_[node * params_.eje_channels + port];
  }
  const EjectPort& eject_port(NodeId node, unsigned port) const noexcept {
    return eject_[node * params_.eje_channels + port];
  }

  // --- Status queries --------------------------------------------------
  // core::ChannelStatus: the per-node virtual output channel register.
  unsigned num_phys_channels() const override { return topo_->num_channels(); }
  unsigned num_vcs() const override { return params_.num_vcs; }
  std::uint32_t free_vc_mask(NodeId node, ChannelId c) const override;

  /// Index of a free ejection port at `node`, or -1.
  int find_free_eject_port(NodeId node) const noexcept;
  /// Index of an injection link at `node` whose VC is free, or -1.
  int find_free_inj_channel(NodeId node) const noexcept;

  /// Every VC in the network idle, every pipeline empty (used by drain
  /// checks and tests).
  bool quiescent() const noexcept;

  /// Total flits currently buffered plus in flight (invariant checks).
  std::uint64_t flits_in_network() const noexcept;

  // --- State mutation helpers ------------------------------------------
  /// Claim downstream VC `out` for `msg`, linking it after `from`.
  void allocate_out_vc(VcRef from, VcRef out, MsgId msg, Cycle now) noexcept;
  /// Bind the worm ending at `from` to ejection port `port` of its
  /// destination node.
  void bind_eject(VcRef from, NodeId node, unsigned port, MsgId msg) noexcept;
  /// Move one flit out of `from` along its allocated output. The caller
  /// has checked transmissibility. Returns true if the tail left `from`
  /// (the VC was freed).
  bool transmit_flit(VcRef from, std::uint32_t msg_length, Cycle now) noexcept;
  /// Deliver arrived in-flight flits for `link` up to cycle `now`,
  /// invoking `on_header(VcRef)` for each header flit that enters an
  /// empty buffer (so the simulator can enroll it for routing).
  template <typename OnNewHeader>
  void process_arrivals(LinkId link_id, Cycle now, OnNewHeader&& on_header) {
    Link& l = links_[link_id];
    while (!l.in_flight.empty() && l.in_flight.front().arrival <= now) {
      const auto entry = l.in_flight.front();
      VcState& v = vc({link_id, entry.vc});
      assert(v.msg == entry.msg);
      if (v.in_count == 0) {
        v.header_arrival = now;
        on_header(VcRef{link_id, entry.vc});
      }
      ++v.in_count;
      v.last_activity = now;
      l.in_flight.pop();
    }
    if (l.in_flight.empty() && link_id < num_net_links_) {
      arrival_links_.erase(link_id);
    }
  }
  /// Free one VC unconditionally (deadlock absorption).
  void force_free(VcRef ref) noexcept;

  /// Drop every in-flight flit of `msg` on `link` (deadlock absorption),
  /// keeping the pending-arrival set coherent. Returns flits removed.
  unsigned absorb_drop(LinkId link, MsgId msg) noexcept;

  /// Mark/unmark tenancy in the link's active mask.
  void set_active(VcRef ref, bool active) noexcept;

  // --- Active sets ------------------------------------------------------
  // Maintained unconditionally (transitions are O(1)); the active-set
  // core iterates them, the dense core ignores them, and the coherence
  // checks compare them against a full rescan in either mode.

  /// Network links with at least one allocated (tenant) VC — exactly the
  /// links whose active_vc_mask is non-zero.
  const util::ActiveSet& tenant_links() const noexcept {
    return tenant_links_;
  }
  /// Network links with at least one flit in their in-flight pipeline.
  const util::ActiveSet& arrival_links() const noexcept {
    return arrival_links_;
  }

 private:
  std::size_t vc_index(VcRef ref) const noexcept {
    if (ref.link < num_net_links_) {
      return static_cast<std::size_t>(ref.link) * params_.num_vcs + ref.vc;
    }
    return net_vc_count_ + (ref.link - num_net_links_);
  }

  const topo::KAryNCube* topo_;
  NetworkParams params_;
  LinkId num_net_links_ = 0;
  LinkId num_inj_links_ = 0;
  std::size_t net_vc_count_ = 0;

  std::vector<Link> links_;
  std::vector<VcState> vcs_;
  std::vector<EjectPort> eject_;

  util::ActiveSet tenant_links_;   // net links with active_vc_mask != 0
  util::ActiveSet arrival_links_;  // net links with non-empty in_flight
};

/// Adapter giving the routing Selector a per-node view of free output
/// VCs (stack-allocated in the allocation loop).
class NodeFreeVcView final : public routing::FreeVcView {
 public:
  NodeFreeVcView(const Network& net, NodeId node) noexcept
      : net_(&net), node_(node) {}
  std::uint32_t free_vc_mask(ChannelId channel) const override {
    return net_->free_vc_mask(node_, channel);
  }

 private:
  const Network* net_;
  NodeId node_;
};

}  // namespace wormsim::sim
