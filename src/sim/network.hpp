// Network: flat state container for every link, VC buffer and ejection
// port, with the status queries the routing selector and the injection
// limiters consume. All control flow lives in Simulator.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/limiter.hpp"
#include "routing/selection.hpp"
#include "sim/channel.hpp"
#include "sim/types.hpp"
#include "topology/kary_ncube.hpp"
#include "util/active_set.hpp"

namespace wormsim::sim {

struct NetworkParams {
  unsigned num_vcs = 3;       // virtual channels per physical channel
  unsigned buf_flits = 4;     // per-VC buffer depth
  unsigned inj_channels = 4;  // injection channels per node
  unsigned eje_channels = 4;  // ejection channels per node
  unsigned link_delay = 2;    // crossbar + channel cycles per hop
};

class Network final : public core::ChannelStatus {
 public:
  Network(const topo::KAryNCube& topo, const NetworkParams& params);

  // --- Identity / indexing -------------------------------------------
  const topo::KAryNCube& topology() const noexcept { return *topo_; }
  const NetworkParams& params() const noexcept { return params_; }

  LinkId num_net_links() const noexcept { return num_net_links_; }
  LinkId num_inj_links() const noexcept { return num_inj_links_; }
  LinkId num_links() const noexcept { return num_net_links_ + num_inj_links_; }

  LinkId net_link(NodeId node, ChannelId out_channel) const noexcept {
    return node * topo_->num_channels() + out_channel;
  }
  LinkId inj_link(NodeId node, unsigned channel) const noexcept {
    return num_net_links_ + node * params_.inj_channels +
           static_cast<LinkId>(channel);
  }
  bool is_injection(LinkId link) const noexcept {
    return link >= num_net_links_;
  }
  /// VCs on a link: params.num_vcs for network links, 1 for injection.
  unsigned vcs_on(LinkId link) const noexcept {
    return is_injection(link) ? 1u : params_.num_vcs;
  }

  Link& link(LinkId id) noexcept { return links_[id]; }
  const Link& link(LinkId id) const noexcept { return links_[id]; }

  /// Dense [0, num_vc_slots()) index of a VC (net-link VCs first, then
  /// one slot per injection link) — key for per-VC side tables like the
  /// simulator's route memo.
  std::size_t vc_flat_index(VcRef ref) const noexcept { return vc_index(ref); }
  std::size_t num_vc_slots() const noexcept { return vcs_.size(); }

  VcState& vc(VcRef ref) noexcept { return vcs_[vc_index(ref)]; }
  const VcState& vc(VcRef ref) const noexcept { return vcs_[vc_index(ref)]; }

  EjectPort& eject_port(NodeId node, unsigned port) noexcept {
    return eject_[node * params_.eje_channels + port];
  }
  const EjectPort& eject_port(NodeId node, unsigned port) const noexcept {
    return eject_[node * params_.eje_channels + port];
  }

  // --- Status queries --------------------------------------------------
  // core::ChannelStatus: the per-node virtual output channel register.
  unsigned num_phys_channels() const override { return topo_->num_channels(); }
  unsigned num_vcs() const override { return params_.num_vcs; }
  std::uint32_t free_vc_mask(NodeId node, ChannelId c) const override;

  /// SoA view of the free-VC masks: one byte per network link, rows of
  /// num_phys_channels() bytes per node (net_link layout). free_row[c]
  /// == free_vc_mask(node, c). Lets the cycle loop evaluate selection
  /// and the ALO/LF/DRIL rules without virtual ChannelStatus reads.
  const std::uint8_t* free_mask_row(NodeId node) const noexcept {
    return free_mask_.data() +
           static_cast<std::size_t>(node) * topo_->num_channels();
  }

  /// Monotonic per-network-link change counter: bumped on every
  /// set_active touching the link, i.e. whenever its free-VC mask may
  /// have changed. Equal epoch (and thus equal epoch sums over a set of
  /// links) guarantees the masks are unchanged — the invalidation key
  /// for the simulator's blocked-header route memo.
  std::uint64_t link_epoch(LinkId link) const noexcept {
    return link_epoch_[link];
  }

  /// Epoch row of one node's output links (num_phys_channels() entries,
  /// net_link layout): row[c] == link_epoch(net_link(node, c)).
  const std::uint64_t* link_epoch_row(NodeId node) const noexcept {
    return link_epoch_.data() +
           static_cast<std::size_t>(node) * topo_->num_channels();
  }

  /// Contiguous VcState row of one *network* link (vcs_on(link) slots).
  VcState* vc_row(LinkId link) noexcept {
    assert(link < num_net_links_);
    return vcs_.data() + static_cast<std::size_t>(link) * params_.num_vcs;
  }

  /// Contiguous VcState row of one node's injection-channel VCs
  /// (params.inj_channels slots — injection links are laid out per node
  /// after all network-link VCs).
  VcState* inj_vc_row(NodeId node) noexcept {
    return vcs_.data() + net_vc_count_ +
           static_cast<std::size_t>(node) * params_.inj_channels;
  }
  const VcState* inj_vc_row(NodeId node) const noexcept {
    return vcs_.data() + net_vc_count_ +
           static_cast<std::size_t>(node) * params_.inj_channels;
  }

  /// Index of a free ejection port at `node`, or -1.
  int find_free_eject_port(NodeId node) const noexcept;
  /// Index of an injection link at `node` whose VC is free, or -1.
  int find_free_inj_channel(NodeId node) const noexcept;

  /// Every VC in the network idle, every pipeline empty (used by drain
  /// checks and tests).
  bool quiescent() const noexcept;

  /// Total flits currently buffered plus in flight (invariant checks).
  std::uint64_t flits_in_network() const noexcept;

  // --- State mutation helpers ------------------------------------------
  /// Claim downstream VC `out` for `msg`, linking it after `from`.
  void allocate_out_vc(VcRef from, VcRef out, MsgId msg, Cycle now) noexcept;
  /// Bind the worm ending at `from` to ejection port `port` of its
  /// destination node.
  void bind_eject(VcRef from, NodeId node, unsigned port, MsgId msg) noexcept;
  /// Move one flit out of `from` along its allocated output. The caller
  /// has checked transmissibility. Returns true if the tail left `from`
  /// (the VC was freed). Defined inline: this is the single hottest
  /// Network mutator in the saturated regime.
  bool transmit_flit(VcRef from, std::uint32_t msg_length,
                     Cycle now) noexcept {
    VcState& u = vc(from);
    assert(u.buffered() > 0 && u.out_kind == VcState::OutKind::Vc);
    VcState& d = vc(u.out);
    assert(d.occupancy < params_.buf_flits);

    Link& out_link = links_[u.out.link];
    out_link.in_flight.push(now + params_.link_delay, u.out.vc, u.msg);
    arrival_links_.insert(u.out.link);
    ++out_link.flits_carried;
    ++d.occupancy;
    ++u.out_count;
    --u.occupancy;
    u.last_activity = now;

    if (u.out_count == msg_length) {
      // Tail left: free this VC; downstream will receive no more flits
      // from it.
      d.upstream = VcRef{};
      set_active(from, false);
      u.clear();
      return true;
    }
    return false;
  }
  /// Deliver arrived in-flight flits for `link` up to cycle `now`,
  /// invoking `on_header(VcRef)` for each header flit that enters an
  /// empty buffer (so the simulator can enroll it for routing).
  template <typename OnNewHeader>
  void process_arrivals(LinkId link_id, Cycle now, OnNewHeader&& on_header) {
    if (process_arrivals_sharded(link_id, now,
                                 std::forward<OnNewHeader>(on_header))) {
      arrival_links_.adjust_size(-1);
    }
  }

  /// process_arrivals for the sharded core: when the pipeline drains it
  /// clears the link's pending-arrival bit without touching the set's
  /// shared size counter (each word is owned by one shard; the counter
  /// is not). Returns true iff the bit was cleared; the caller batches
  /// the count back in via `adjust_arrival_links` at the barrier.
  template <typename OnNewHeader>
  bool process_arrivals_sharded(LinkId link_id, Cycle now,
                                OnNewHeader&& on_header) {
    // Only network links have in-flight pipelines (injection writes
    // buffers directly), so the VC row lookup can be hoisted.
    assert(link_id < num_net_links_);
    Link& l = links_[link_id];
    VcState* const row =
        vcs_.data() + static_cast<std::size_t>(link_id) * params_.num_vcs;
    while (!l.in_flight.empty() && l.in_flight.front().arrival <= now) {
      const auto entry = l.in_flight.front();
      VcState& v = row[entry.vc];
      assert(v.msg == entry.msg);
      if (v.in_count == 0) {
        v.header_arrival = now;
        on_header(VcRef{link_id, entry.vc});
      }
      ++v.in_count;
      v.last_activity = now;
      l.in_flight.pop();
    }
    if (l.in_flight.empty()) {
      return arrival_links_.erase_unsized(link_id);
    }
    return false;
  }

  /// Fold the per-shard pending-arrival erase deltas back into the
  /// arrival set's size at the per-cycle barrier.
  void adjust_arrival_links(std::ptrdiff_t delta) noexcept {
    arrival_links_.adjust_size(delta);
  }
  /// Free one VC unconditionally (deadlock absorption).
  void force_free(VcRef ref) noexcept;

  /// Drop every in-flight flit of `msg` on `link` (deadlock absorption),
  /// keeping the pending-arrival set coherent. Returns flits removed.
  unsigned absorb_drop(LinkId link, MsgId msg) noexcept;

  /// Mark/unmark tenancy in the link's active mask. The SOLE writer of
  /// active_vc_mask, which is what keeps the SoA free-mask mirror and
  /// the per-link epochs coherent. Inline: called on every tenancy
  /// transition.
  void set_active(VcRef ref, bool active) noexcept {
    Link& l = links_[ref.link];
    if (active) {
      l.active_vc_mask |= static_cast<std::uint8_t>(1u << ref.vc);
    } else {
      l.active_vc_mask &= static_cast<std::uint8_t>(~(1u << ref.vc));
    }
    if (ref.link < num_net_links_) {
      free_mask_[ref.link] =
          static_cast<std::uint8_t>(~l.active_vc_mask) & vc_field_[ref.link];
      ++link_epoch_[ref.link];
      if (l.active_vc_mask != 0) {
        tenant_links_.insert(ref.link);
      } else {
        tenant_links_.erase(ref.link);
      }
    }
  }

  // --- Dead links (fault injection) ------------------------------------
  /// Zero / restore a network link's admissible-VC field. A dead link's
  /// free mask reads 0, so no selection, limiter or injection scan can
  /// pick it; its epoch bumps so memoized routes re-validate. The
  /// caller must have torn down every tenant and drained the in-flight
  /// pipeline before killing.
  void set_link_dead(LinkId link, bool dead) noexcept {
    assert(link < num_net_links_);
    assert(!dead || (links_[link].active_vc_mask == 0 &&
                     links_[link].in_flight.empty()));
    vc_field_[link] =
        dead ? 0 : static_cast<std::uint8_t>((1u << params_.num_vcs) - 1u);
    free_mask_[link] =
        static_cast<std::uint8_t>(~links_[link].active_vc_mask) &
        vc_field_[link];
    ++link_epoch_[link];
  }
  bool link_dead(LinkId link) const noexcept {
    return link < num_net_links_ && vc_field_[link] == 0;
  }
  /// Bump every network link's epoch — a routing-table rebuild changes
  /// which candidates are valid even where free masks did not move.
  void bump_all_epochs() noexcept {
    for (std::uint64_t& e : link_epoch_) ++e;
  }

  // --- Active sets ------------------------------------------------------
  // Maintained unconditionally (transitions are O(1)); the active-set
  // core iterates them, the dense core ignores them, and the coherence
  // checks compare them against a full rescan in either mode.

  /// Network links with at least one allocated (tenant) VC — exactly the
  /// links whose active_vc_mask is non-zero.
  const util::ActiveSet& tenant_links() const noexcept {
    return tenant_links_;
  }
  /// Network links with at least one flit in their in-flight pipeline.
  const util::ActiveSet& arrival_links() const noexcept {
    return arrival_links_;
  }

 private:
  std::size_t vc_index(VcRef ref) const noexcept {
    if (ref.link < num_net_links_) {
      return static_cast<std::size_t>(ref.link) * params_.num_vcs + ref.vc;
    }
    return net_vc_count_ + (ref.link - num_net_links_);
  }

  const topo::KAryNCube* topo_;
  NetworkParams params_;
  LinkId num_net_links_ = 0;
  LinkId num_inj_links_ = 0;
  std::size_t net_vc_count_ = 0;

  std::vector<Link> links_;
  std::vector<VcState> vcs_;
  std::vector<EjectPort> eject_;

  // SoA mirrors for the cycle-loop fast path, maintained by set_active
  // (the sole writer of active_vc_mask). Net links only.
  std::vector<std::uint8_t> free_mask_;    // ~active_vc_mask & vc_field
  std::vector<std::uint8_t> vc_field_;     // admissible VCs; 0 = dead link
  std::vector<std::uint64_t> link_epoch_;  // bumped per set_active

  util::ActiveSet tenant_links_;   // net links with active_vc_mask != 0
  util::ActiveSet arrival_links_;  // net links with non-empty in_flight
};

/// Adapter giving the routing Selector a per-node view of free output
/// VCs (stack-allocated in the allocation loop).
class NodeFreeVcView final : public routing::FreeVcView {
 public:
  NodeFreeVcView(const Network& net, NodeId node) noexcept
      : net_(&net), node_(node) {}
  std::uint32_t free_vc_mask(ChannelId channel) const override {
    return net_->free_vc_mask(node_, channel);
  }

 private:
  const Network* net_;
  NodeId node_;
};

}  // namespace wormsim::sim
