// Cycle-accurate wormhole simulator.
//
// Timing model (paper §4.1: routing, crossbar and channel each take one
// cycle):
//   * a header arriving at a router input becomes routable after
//     `routing_delay` cycles (default 1);
//   * a granted flit reaches the next router's buffer `link_delay`
//     cycles after leaving (default 2 = crossbar + channel);
//   * each physical link carries at most one flit per cycle; virtual
//     channels multiplex it demand-slotted with round-robin arbitration;
//   * ejection ports consume one flit per cycle.
// Per-hop header latency is therefore routing_delay + link_delay = 3
// cycles, with data flits pipelined at one flit/cycle.
//
// Phase order within a cycle: generate → arrivals → eject → route →
// transmit → inject → detect. A flit can arrive and be forwarded in the
// same cycle (pipelining); a header routed in `route` sends its first
// flit in the same cycle's `transmit`.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/limiter.hpp"
#include "deadlock/detection.hpp"
#include "deadlock/recovery.hpp"
#include "metrics/collector.hpp"
#include "metrics/timeseries.hpp"
#include "routing/routing.hpp"
#include "routing/selection.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "traffic/workload.hpp"

namespace wormsim::sim {

struct SimulatorConfig {
  NetworkParams net{};
  routing::Algorithm algorithm = routing::Algorithm::TFAR;
  routing::SelectionPolicy selection = routing::SelectionPolicy::MaxFreeVcs;
  unsigned routing_delay = 1;
  core::LimiterConfig limiter{};
  deadlock::DetectionConfig detection{};
  deadlock::RecoveryConfig recovery{};
  std::uint64_t seed = 1;
};

/// Warm-up / measurement / drain protocol for one run.
struct RunProtocol {
  Cycle warmup = 5000;
  Cycle measure = 20000;
  /// Extra cycles (with traffic still flowing) allowed for measured
  /// messages to drain before the run is cut off.
  Cycle drain_max = 30000;
};

class Simulator {
 public:
  /// `workload` may be null: no autonomous traffic (tests drive the
  /// network through push_message()).
  Simulator(const topo::KAryNCube& topo, const SimulatorConfig& cfg,
            std::unique_ptr<traffic::Workload> workload);
  // Network and the routing function hold pointers into topo_.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Driving ----------------------------------------------------------
  void step();
  void step_cycles(Cycle n) {
    for (Cycle i = 0; i < n; ++i) step();
  }
  Cycle cycle() const noexcept { return cycle_; }

  /// Enqueue one message directly at `src`'s source queue (test hook and
  /// trace-driven workloads). Returns false for src == dst.
  bool push_message(NodeId src, NodeId dst, std::uint32_t length);

  /// Run the full warm-up / measure / drain protocol and summarize.
  metrics::SimResult run(const RunProtocol& protocol);

  // --- Introspection ----------------------------------------------------
  const topo::KAryNCube& topology() const noexcept { return topo_; }
  Network& network() noexcept { return net_; }
  const Network& network() const noexcept { return net_; }
  const routing::RoutingFunction& routing_function() const noexcept {
    return *routing_;
  }
  core::InjectionLimiter& limiter() noexcept { return *limiter_; }
  /// Replace the injection-limitation mechanism with a user-supplied
  /// one (the extension seam for out-of-tree mechanisms); null is
  /// ignored. Takes effect from the next cycle.
  void set_limiter(std::unique_ptr<core::InjectionLimiter> limiter) {
    if (limiter) limiter_ = std::move(limiter);
  }
  traffic::Workload* workload() noexcept { return workload_.get(); }
  const metrics::Collector& collector() const noexcept { return collector_; }

  /// Record per-interval dynamics (accepted traffic, latency, deadlocks,
  /// queue depth) from now on; pass 0 to disable. Survives run().
  void enable_timeseries(Cycle interval_cycles) {
    timeseries_ = interval_cycles
                      ? std::make_unique<metrics::TimeSeries>(interval_cycles)
                      : nullptr;
  }
  const metrics::TimeSeries* timeseries() const noexcept {
    return timeseries_.get();
  }
  const SimulatorConfig& config() const noexcept { return cfg_; }

  std::size_t messages_in_flight() const noexcept { return active_.size(); }
  std::size_t source_queue_len(NodeId node) const noexcept {
    return queues_[node].size();
  }
  std::size_t source_queue_total() const noexcept;
  std::size_t recovery_pending() const noexcept {
    return recovery_.pending_total();
  }
  std::uint64_t total_deadlock_detections() const noexcept {
    return deadlock_events_;
  }
  std::uint64_t total_delivered() const noexcept { return delivered_; }

  /// All in-flight message ids (diagnostics/tests).
  const std::vector<MsgId>& active_messages() const noexcept {
    return active_;
  }
  const Message& message(MsgId id) const noexcept { return pool_[id]; }

 private:
  struct PendingMessage {
    NodeId dst = 0;
    std::uint32_t length = 0;
    Cycle gen_time = 0;
    bool measured = false;
  };

  void phase_generate(Cycle t);
  void phase_arrivals(Cycle t);
  void phase_eject(Cycle t);
  void phase_route(Cycle t);
  void phase_transmit(Cycle t);
  void phase_inject(Cycle t);

  /// FC3D condition: every VC the routing function offered has shown no
  /// flow-control activity for the detection threshold. Reads the
  /// candidates currently in route_buf_.
  bool requested_channels_frozen(NodeId node, Cycle t) const;

  void enroll_for_routing(VcRef ref);
  void start_injection(NodeId node, unsigned inj_channel, MsgId id, Cycle t);
  void absorb_deadlocked(MsgId id, Cycle t);
  void deliver(MsgId id, Cycle t);
  void activate(MsgId id);
  void deactivate(MsgId id);

  topo::KAryNCube topo_;
  SimulatorConfig cfg_;
  Network net_;
  std::unique_ptr<routing::RoutingFunction> routing_;
  routing::Selector selector_;
  std::unique_ptr<core::InjectionLimiter> limiter_;
  std::unique_ptr<traffic::Workload> workload_;
  deadlock::RecoveryManager recovery_;
  metrics::Collector collector_;
  std::unique_ptr<metrics::TimeSeries> timeseries_;

  MessagePool pool_;
  std::vector<MsgId> active_;

  std::vector<std::deque<PendingMessage>> queues_;
  std::vector<Cycle> head_since_;     // cycle the current queue head became head
  std::vector<std::uint32_t> alloc_rr_;  // per-node selector rotation

  std::vector<VcRef> pending_route_;
  routing::RouteResult route_buf_;
  util::SmallVector<traffic::GeneratedMessage, 8> gen_buf_;

  Cycle cycle_ = 0;
  std::uint64_t deadlock_events_ = 0;
  std::uint64_t delivered_ = 0;
  bool probe_enabled_ = true;
};

}  // namespace wormsim::sim
