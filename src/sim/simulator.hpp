// Cycle-accurate wormhole simulator.
//
// Timing model (paper §4.1: routing, crossbar and channel each take one
// cycle):
//   * a header arriving at a router input becomes routable after
//     `routing_delay` cycles (default 1);
//   * a granted flit reaches the next router's buffer `link_delay`
//     cycles after leaving (default 2 = crossbar + channel);
//   * each physical link carries at most one flit per cycle; virtual
//     channels multiplex it demand-slotted with round-robin arbitration;
//   * ejection ports consume one flit per cycle.
// Per-hop header latency is therefore routing_delay + link_delay = 3
// cycles, with data flits pipelined at one flit/cycle.
//
// Phase order within a cycle: generate → arrivals → eject → route →
// transmit → inject → detect. A flit can arrive and be forwarded in the
// same cycle (pipelining); a header routed in `route` sends its first
// flit in the same cycle's `transmit`.
//
// Simulation cores: the same phase logic runs in one of two modes.
//   * SimCore::Dense — the reference core: every phase scans every
//     link/node and skips idle ones with a per-element guard.
//   * SimCore::Active (default) — per-cycle cost proportional to the
//     *active* components: each phase iterates an incrementally
//     maintained active set (util::ActiveSet bitmaps, ascending index
//     order — the same visit order as the dense scan, which is what
//     makes the two cores bit-identical). Components enqueue themselves
//     on state transitions (flit push, queue push, recovery enqueue,
//     eject bind) and lazily retire when drained. Message generation is
//     scheduled by each injection process's next_poll_hint, so idle
//     sources are not polled at all.
// tests/sim/test_core_equivalence.cpp enforces byte-identical results.
#pragma once

#include <bit>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "core/limiter.hpp"
#include "deadlock/detection.hpp"
#include "deadlock/recovery.hpp"
#include "fault/manager.hpp"
#include "fault/schedule.hpp"
#include "metrics/collector.hpp"
#include "metrics/online/online_stats.hpp"
#include "metrics/spatial.hpp"
#include "metrics/timeseries.hpp"
#include "obs/tracer.hpp"
#include "routing/routing.hpp"
#include "routing/routing_lut.hpp"
#include "routing/selection.hpp"
#include "sim/flow_control.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "traffic/workload.hpp"
#include "util/thread_pool.hpp"

namespace wormsim::sim {

/// Which cycle-loop implementation drives the phases (results are
/// bit-identical; only the per-cycle cost differs).
enum class SimCore : std::uint8_t { Dense, Active };

SimCore parse_sim_core(std::string_view name);
std::string_view sim_core_name(SimCore core) noexcept;

/// Saturated-regime fast-path toggles. They apply to the Active core
/// only — the Dense core always runs the reference virtual-dispatch
/// path, which is what makes test_core_equivalence a differential test
/// of the optimizations. Results are bit-identical for every toggle
/// combination; the switches exist for that test and for perf triage.
struct FastPathConfig {
  /// Tabulate the routing function per (node, dst) at construction and
  /// answer cycle-loop route queries from the table.
  bool routing_lut = true;
  /// Blocked headers cache their candidate list and skip both re-route
  /// and re-selection until the free-VC mask of some candidate link
  /// changes (per-link epoch counters).
  bool route_memo = true;
  /// Resolve the injection-limiter and selection dispatch once per
  /// simulator instead of per virtual call inside the cycle loop.
  /// Custom limiters installed via set_limiter() fall back to the
  /// virtual path automatically.
  bool static_dispatch = true;
  /// Resolve the flow-control scheme dispatch once per simulator:
  /// Wormhole/VCT short-circuit to the inline occupancy test and Credit
  /// is called non-virtually. Off = every gate and hook goes through
  /// the FlowControlScheme interface (the dense core's reference path).
  bool fc_dispatch = true;
};

struct SimulatorConfig {
  NetworkParams net{};
  routing::Algorithm algorithm = routing::Algorithm::TFAR;
  routing::SelectionPolicy selection = routing::SelectionPolicy::MaxFreeVcs;
  unsigned routing_delay = 1;
  core::LimiterConfig limiter{};
  deadlock::DetectionConfig detection{};
  deadlock::RecoveryConfig recovery{};
  /// Deterministic fault schedule (empty = no fault subsystem at all:
  /// the cycle loop's only cost is one branch on a null manager).
  /// Non-empty schedules require TFAR routing and a tabulable network —
  /// reconfiguration routes around failures by rebuilding the LUT.
  fault::FaultSchedule faults{};
  /// Flow-control scheme gating flit advance and VC admission
  /// (default: the paper's wormhole model).
  FlowControlConfig flow{};
  SimCore core = SimCore::Active;
  FastPathConfig fastpath{};
  /// Shard the single simulation across threads (active core only):
  /// the node/link bitmaps are partitioned into contiguous 64-bit-word
  /// ranges, one per shard. Generate/arrivals/eject run shard-parallel
  /// with their side effects drained through per-shard mailboxes at a
  /// deterministic barrier; route and transmit run as a shard-parallel
  /// read-only *evaluate* pass over per-shard decision lanes followed
  /// by a serial *commit* replay in ascending shard order, with
  /// link-epoch/stamp conflict detection falling back to inline
  /// re-evaluation — results are bit-exact vs `shards = 1` at any
  /// count. 1 = the unmodified sequential path; 0 = one shard per
  /// hardware thread. The effective count is clamped to the number of
  /// 64-node bitmap words, so small networks silently degenerate to
  /// sequential execution.
  unsigned shards = 1;
  std::uint64_t seed = 1;
};

/// Per-cycle scan accounting: how much per-phase iteration work the
/// core actually did versus what a dense scan would have done. The
/// active-link count is exact simulation state (identical across
/// cores); active nodes and the skip ratio describe the active-set
/// machinery, so the dense core reports 0 active nodes and a 0 ratio.
struct CoreScanStats {
  std::uint64_t cycles = 0;
  std::uint64_t scan_visited = 0;      // loop entries executed
  std::uint64_t scan_total = 0;        // entries a dense scan would execute
  std::uint64_t active_links_sum = 0;  // tenant links, summed per cycle
  std::uint64_t active_nodes_sum = 0;  // injection-active nodes, per cycle
  std::uint64_t route_evals = 0;       // routing-function/LUT evaluations
  std::uint64_t route_memo_hits = 0;   // blocked-header re-routes avoided
  std::uint64_t commit_decisions = 0;  // speculative decisions replayed
  std::uint64_t commit_conflicts = 0;  // decisions invalidated -> re-run

  /// Fraction of dense scan work skipped (0 for the dense core).
  double skipped_scan_ratio() const noexcept {
    return scan_total ? 1.0 - static_cast<double>(scan_visited) /
                                  static_cast<double>(scan_total)
                      : 0.0;
  }
  double avg_active_links() const noexcept {
    return cycles ? static_cast<double>(active_links_sum) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  double avg_active_nodes() const noexcept {
    return cycles ? static_cast<double>(active_nodes_sum) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  /// Fraction of route queries answered by the blocked-header memo
  /// (0 when the memo is off or nothing ever blocked).
  double route_memo_hit_rate() const noexcept {
    const std::uint64_t asked = route_evals + route_memo_hits;
    return asked ? static_cast<double>(route_memo_hits) /
                       static_cast<double>(asked)
                 : 0.0;
  }
  /// Fraction of sharded evaluate decisions an earlier commit
  /// invalidated (0 on the sequential path, which never speculates).
  double commit_conflict_rate() const noexcept {
    return commit_decisions ? static_cast<double>(commit_conflicts) /
                                  static_cast<double>(commit_decisions)
                            : 0.0;
  }
  /// Counter deltas since `earlier` (per-run windows inside one
  /// simulator lifetime).
  CoreScanStats since(const CoreScanStats& earlier) const noexcept {
    CoreScanStats d;
    d.cycles = cycles - earlier.cycles;
    d.scan_visited = scan_visited - earlier.scan_visited;
    d.scan_total = scan_total - earlier.scan_total;
    d.active_links_sum = active_links_sum - earlier.active_links_sum;
    d.active_nodes_sum = active_nodes_sum - earlier.active_nodes_sum;
    d.route_evals = route_evals - earlier.route_evals;
    d.route_memo_hits = route_memo_hits - earlier.route_memo_hits;
    d.commit_decisions = commit_decisions - earlier.commit_decisions;
    d.commit_conflicts = commit_conflicts - earlier.commit_conflicts;
    return d;
  }
};

/// Warm-up / measurement / drain protocol for one run.
struct RunProtocol {
  Cycle warmup = 5000;
  Cycle measure = 20000;
  /// Extra cycles (with traffic still flowing) allowed for measured
  /// messages to drain before the run is cut off.
  Cycle drain_max = 30000;
};

class Simulator {
 public:
  /// `workload` may be null: no autonomous traffic (tests drive the
  /// network through push_message()).
  Simulator(const topo::KAryNCube& topo, const SimulatorConfig& cfg,
            std::unique_ptr<traffic::Workload> workload);
  // Network and the routing function hold pointers into topo_.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Driving ----------------------------------------------------------
  void step();
  void step_cycles(Cycle n) {
    for (Cycle i = 0; i < n; ++i) step();
  }
  Cycle cycle() const noexcept { return cycle_; }

  /// Enqueue one message directly at `src`'s source queue (test hook and
  /// trace-driven workloads). Returns false for src == dst.
  bool push_message(NodeId src, NodeId dst, std::uint32_t length);

  /// Run the full warm-up / measure / drain protocol and summarize.
  metrics::SimResult run(const RunProtocol& protocol);

  // --- Introspection ----------------------------------------------------
  const topo::KAryNCube& topology() const noexcept { return topo_; }
  Network& network() noexcept { return net_; }
  const Network& network() const noexcept { return net_; }
  const routing::RoutingFunction& routing_function() const noexcept {
    return *routing_;
  }
  core::InjectionLimiter& limiter() noexcept { return *limiter_; }
  /// Replace the injection-limitation mechanism with a user-supplied
  /// one (the extension seam for out-of-tree mechanisms); null is
  /// ignored. Takes effect from the next cycle.
  void set_limiter(std::unique_ptr<core::InjectionLimiter> limiter) {
    if (!limiter) return;
    limiter_ = std::move(limiter);
    resolve_limiter_dispatch();
  }
  traffic::Workload* workload() noexcept { return workload_.get(); }
  const metrics::Collector& collector() const noexcept { return collector_; }

  /// Record per-interval dynamics (accepted traffic, latency, deadlocks,
  /// queue depth) from now on; pass 0 to disable. Survives run().
  void enable_timeseries(Cycle interval_cycles) {
    timeseries_ = interval_cycles
                      ? std::make_unique<metrics::TimeSeries>(interval_cycles)
                      : nullptr;
  }
  const metrics::TimeSeries* timeseries() const noexcept {
    return timeseries_.get();
  }

  /// Attach an event tracer (nullptr detaches). Observation only: every
  /// hook is a branch-on-null, results are bit-identical with or
  /// without it, and the instrumented-off hot path stays unchanged
  /// (bench/micro_mechanism --obs-overhead-json gates this).
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Attach per-channel/per-node spatial metrics (nullptr detaches).
  /// Counters are fed incrementally plus a periodic link-occupancy
  /// sweep; call `finish_spatial()` after the run to copy the
  /// cumulative link flit counters in.
  void set_spatial(metrics::SpatialMetrics* spatial) noexcept {
    spatial_ = spatial;
  }
  metrics::SpatialMetrics* spatial() const noexcept { return spatial_; }
  /// Copy end-of-run link utilization counters into the attached
  /// SpatialMetrics (no-op when none is attached).
  void finish_spatial();

  /// Attach streaming online statistics (nullptr detaches): latency
  /// histogram, windowed time series, saturation-onset detector and the
  /// optional phase profiler. Same contract as the tracer: every hook
  /// branches on null and attaching never changes simulation results.
  void set_online(metrics::OnlineStats* online) noexcept { online_ = online; }
  metrics::OnlineStats* online() const noexcept { return online_; }
  /// Flush the final (possibly partial) recording window into the
  /// attached OnlineStats (no-op when none is attached).
  void finish_online();

  const SimulatorConfig& config() const noexcept { return cfg_; }

  SimCore core() const noexcept { return cfg_.core; }
  /// Effective shard count after clamping (1 = sequential path).
  unsigned shards() const noexcept { return shards_eff_; }
  /// Bytes per VC slot consumed by the blocked-header route memo
  /// (sizeof of a private struct, exported for memory-footprint math).
  static std::size_t route_memo_entry_bytes() noexcept;
  /// Cumulative scan accounting since construction.
  const CoreScanStats& scan_stats() const noexcept { return scan_; }

  /// Active-set coherence: the Network link sets exactly mirror link
  /// state, the node sets cover every active node, and the incremental
  /// counters match a recount. Returns false and fills `why` (if
  /// non-null) on the first violation. Cheap enough for test loops; the
  /// debug build runs it periodically via an assert.
  bool check_active_sets(std::string* why = nullptr) const;
  /// Message conservation: generated == delivered + in network/queues +
  /// lost-to-faults, and an empty network holds zero flits. Same
  /// reporting convention.
  bool check_conservation(std::string* why = nullptr) const;
  /// Fault coherence (trivially true without a fault schedule): the
  /// network's dead-link fields mirror the fault mask, dead links carry
  /// no tenants/flits and advertise no free VCs, dead nodes hold no
  /// queued, recovering or ejecting traffic, and no live in-network
  /// message targets a dead destination. Same reporting convention.
  bool check_fault_invariants(std::string* why = nullptr) const;
  /// Flow-control invariants: no buffer over/underflow in any scheme;
  /// under Credit additionally per-slot credit conservation (credits
  /// consumed == occupancy + returns on the wire). Same convention.
  bool check_flow_control(std::string* why = nullptr) const {
    return flow_->check(net_, why);
  }

  const FlowControlScheme& flow_control() const noexcept { return *flow_; }

  std::size_t messages_in_flight() const noexcept { return active_.size(); }
  std::size_t source_queue_len(NodeId node) const noexcept {
    return queues_[node].size();
  }
  std::size_t source_queue_total() const noexcept { return queue_total_; }
  std::size_t recovery_pending() const noexcept {
    return recovery_.pending_total();
  }
  std::uint64_t total_deadlock_detections() const noexcept {
    return deadlock_events_;
  }
  std::uint64_t total_delivered() const noexcept { return delivered_; }
  /// Messages dropped by fault reconfiguration (destination dead or
  /// unreachable); part of the conservation identity.
  std::uint64_t total_lost() const noexcept { return lost_total_; }
  /// Schedule events applied so far (kills + restores).
  std::uint64_t fault_events_applied() const noexcept { return fault_events_; }
  /// Routing-table reconfigurations triggered by fault events.
  std::uint64_t lut_rebuilds() const noexcept { return lut_rebuilds_; }
  /// Null when the fault schedule is empty.
  const fault::FaultManager* fault_manager() const noexcept {
    return faults_.get();
  }

  /// All in-flight message ids (diagnostics/tests).
  const std::vector<MsgId>& active_messages() const noexcept {
    return active_;
  }
  const Message& message(MsgId id) const noexcept { return pool_[id]; }

 private:
  struct PendingMessage {
    NodeId dst = 0;
    std::uint32_t length = 0;
    Cycle gen_time = 0;
    bool measured = false;
  };

  void phase_generate(Cycle t);
  void phase_arrivals(Cycle t);
  void phase_eject(Cycle t);
  void phase_route(Cycle t);
  void phase_transmit(Cycle t);
  void phase_inject(Cycle t);

  // Shard-parallel forms of the phases (see the "sharded core" section
  // below). Generate/arrivals/eject have exclusively element-local
  // per-element work and park cross-shard side effects in mailboxes.
  // Route and transmit arbitrate shared resources (free-VC masks,
  // ejection ports, the one-flit-per-link budget) whose outcome depends
  // on global visit order, so they split into a shard-parallel
  // *evaluate* pass — read-only w.r.t. shared state, one speculative
  // decision per work item — and a serial *commit* replay in ascending
  // shard order (= ascending id order = the sequential arbitration
  // order). A commit that mutates state stamps the slots/nodes/links it
  // touched; a later decision whose inputs carry this cycle's stamp is
  // invalidated and falls back to inline re-evaluation, which keeps
  // results bit-exact vs `shards = 1`. Inject stays sequential (one
  // global message-pool allocator and FIFO fairness accounting).
  void phase_generate_sharded(Cycle t);
  void phase_arrivals_sharded(Cycle t);
  void phase_eject_sharded(Cycle t);
  void phase_route_sharded(Cycle t);     // route_evaluate + route_commit
  void phase_transmit_sharded(Cycle t);  // transmit_evaluate + _commit
  void route_evaluate(Cycle t);
  void route_commit(Cycle t);
  void transmit_evaluate(Cycle t);
  void transmit_commit(Cycle t);
  /// True when this step may take the sharded path: more than one
  /// effective shard and no tracer attached (the tracer records
  /// per-event inside what would be the parallel region; rather than
  /// buffering that stream too, traced runs take the sequential path —
  /// observation must not change results anyway).
  bool use_sharded_step() const noexcept {
    return crew_ != nullptr && tracer_ == nullptr;
  }
  /// The step() phase sequence with each phase timed into the attached
  /// OnlineStats' profiler (taken only on sampled cycles).
  void run_phases_profiled(Cycle t);
  /// Snapshot the instantaneous state the online window recorder wants
  /// (in-flight flits, blocked headers, free-VC occupancy from the
  /// limiter-visible status registers, queue depth, credit messages).
  metrics::WindowSample online_sample();

  struct ShardLane;  // defined below with the sharded-core state

  // Per-element phase bodies shared by both cores (the cores differ
  // only in which elements they visit).
  void eject_node(NodeId node, Cycle t);
  /// `vcs`/`cap` are the network's num_vcs and buf_flits, hoisted by
  /// phase_transmit so the per-link call avoids the parameter loads.
  void transmit_link(LinkId l, Cycle t, unsigned vcs, unsigned cap);
  void inject_node(NodeId node, Cycle t);
  /// One pending_route_ entry of the sequential route phase, start to
  /// finish (parked check through allocation). Returns true when the
  /// entry was resolved and swap-removed from pending_route_ (the
  /// caller must then re-examine index i), false when it stays pending.
  /// Also serves as the commit phase's inline fallback for invalidated
  /// decisions — it stamps every slot/node it mutates.
  bool route_entry(std::size_t i, Cycle t, Cycle routing_delay,
                   bool detect_on, Cycle threshold);
  /// Speculative read-only twin of route_entry: computes entry i's
  /// decision into route_dec_[i], using only lane-local scratch.
  void route_evaluate_entry(std::size_t i, Cycle t, Cycle routing_delay,
                            bool detect_on, Cycle threshold,
                            ShardLane& lane);
  /// Read-only twin of transmit_link's arbitration scan: the VC index
  /// that would send a flit across link l this cycle, or -1.
  int evaluate_transmit_link(LinkId l, unsigned vcs, unsigned cap);
  /// The kQueueSamplePeriod spatial sweep (per-node queue depths +
  /// per-VC link occupancy histogram), fanned out across the crew over
  /// the node/link ranges each shard owns — every sample is an
  /// element-local write into the shard's own rows.
  void sample_spatial_sharded(Cycle t);

  /// Source-queue push shared by push_message and phase_generate:
  /// maintains the queue total, conservation counter and the
  /// injection-active node set.
  void enqueue_source(NodeId node, NodeId dst, std::uint32_t length,
                      Cycle t);
  /// Poll the workload for `node` at cycle `t` (both cores), then — in
  /// the active core — re-subscribe the node according to its process's
  /// next_poll_hint (every-cycle set, timed heap, or nothing for rate-0
  /// sources until a workload mutation bumps the epoch).
  void poll_node(NodeId node, Cycle t);
  void poll_and_reschedule(NodeId node, Cycle t);
  /// Sharded poll: identical rescheduling logic, but generated messages
  /// are parked in shard `s`'s mailbox (enqueue_source replays them at
  /// the barrier) and set mutations use the unsized bitmap ops with a
  /// per-shard size delta.
  void poll_and_reschedule_sharded(NodeId node, Cycle t, unsigned s);
  /// Sharded eject_node: flit movement on the (exclusively owned) VC
  /// and ejection-port state happens inline; credits, metrics hooks and
  /// delivery are parked in the mailbox for ordered replay.
  void eject_node_sharded(NodeId node, Cycle t, unsigned s);

  /// FC3D condition: every VC the routing function offered has shown no
  /// flow-control activity for the detection threshold. On failure,
  /// `*earliest` is set to the first future cycle at which the witness
  /// VC's inactivity could reach the threshold — a lower bound on when
  /// detection could fire (last_activity is monotone), which the route
  /// memo caches to skip re-evaluation until then.
  bool requested_channels_frozen(NodeId node, Cycle t,
                                 const routing::RouteResult& route,
                                 Cycle* earliest) const;

  /// Route query shared by both cores: LUT when tabulated, virtual
  /// routing function otherwise. Counts into scan_.route_evals.
  void route_at(NodeId node, NodeId dst, routing::RouteResult& out) {
    ++scan_.route_evals;
    route_lookup(node, dst, out);
  }

  /// route_at without the counter bump: the shard-parallel evaluate
  /// pass calls this (counting into its per-decision delta instead, so
  /// a conflicted decision's discarded work never skews route_evals).
  void route_lookup(NodeId node, NodeId dst,
                    routing::RouteResult& out) const {
    if (lut_) {
      lut_->route(node, dst, out);
    } else {
      routing_->route(node, dst, out);
    }
  }

  /// Sum of the free-mask epochs of every candidate output link of
  /// `route` at `node`. Epochs are monotone, so an equal sum means no
  /// candidate's free-VC mask changed — the route-memo freshness key.
  /// Sum of the epoch counters of `node`'s output links selected by the
  /// candidate-channel bitmask (each distinct link counted once). The
  /// mask form keeps the hot re-check loop on one small integer instead
  /// of walking candidate records.
  std::uint64_t candidate_epoch_sum(NodeId node,
                                    std::uint32_t cand_mask) const {
    const std::uint64_t* row = net_.link_epoch_row(node);
    std::uint64_t sum = 0;
    for (std::uint32_t m = cand_mask; m != 0; m &= m - 1) {
      sum += row[std::countr_zero(m)];
    }
    return sum;
  }

  /// Union of a route's candidate physical channels as a bitmask.
  static std::uint32_t candidate_channel_mask(
      const routing::RouteResult& route) {
    std::uint32_t mask = 0;
    for (const auto& cand : route.candidates) mask |= 1u << cand.channel;
    return mask;
  }

  /// Map the installed limiter to its enum-tagged fast-dispatch case
  /// (by concrete type, not kind() — user subclasses may reuse a kind
  /// tag) and recompute which fast paths are enabled.
  void resolve_limiter_dispatch();

  // --- Flow-control gates and hooks (see flow_control.hpp). The
  // fast-dispatch forms reduce to the pre-interface inline code for
  // Wormhole/VCT and a non-virtual call for Credit; with fc_virtual_
  // (dense core, or fc_dispatch off) everything goes through the
  // interface — which is what makes the core-equivalence tests a
  // differential check of this dispatch layer too.

  /// May one more flit advance toward VC slot `slot`? The caller has
  /// already checked occupancy < cap, so schemes whose gate is exactly
  /// that test (veto_sends() false, resolved once into fc_vetoes_) are
  /// never consulted — in either dispatch mode.
  bool fc_may_send(std::size_t slot, std::uint8_t occupancy,
                   unsigned cap) const {
    if (!fc_vetoes_) return true;
    if (fc_virtual_) return flow_->may_send(slot, occupancy, cap);
    if (credit_) return credit_->may_send(slot, occupancy, cap);
    return occupancy < cap;
  }
  /// May a header claim a free downstream VC for this packet? Schemes
  /// that admit unconditionally (gates_admission() false, resolved
  /// once into fc_admits_) skip the per-claim call entirely.
  bool fc_admit(std::uint32_t msg_length, unsigned cap) const {
    if (!fc_admits_) return true;
    if (fc_virtual_) return flow_->admit(msg_length, cap);
    return fc_kind_ != FlowControl::Vct || msg_length <= cap;
  }
  // The per-flit event hooks are gated on fc_tracks_ (resolved once
  // from FlowControlScheme::tracks_flits): stateless schemes never pay
  // a virtual call per flit, in either dispatch mode. Only the
  // send/admit *decisions* stay virtual under fc_virtual_.
  void fc_on_sent(std::size_t slot, Cycle t) {
    if (!fc_tracks_) return;
    if (fc_virtual_) {
      flow_->on_flit_sent(slot, t);
    } else if (credit_) {
      credit_->on_flit_sent(slot, t);
    }
  }
  void fc_on_drained(std::size_t slot, Cycle t) {
    if (!fc_tracks_) return;
    if (fc_virtual_) {
      flow_->on_flit_drained(slot, t);
    } else if (credit_) {
      credit_->on_flit_drained(slot, t);
    }
  }
  void fc_on_reset(std::size_t slot) {
    if (!fc_tracks_) return;
    if (fc_virtual_) {
      flow_->on_slot_reset(slot);
    } else if (credit_) {
      credit_->on_slot_reset(slot);
    }
  }
  /// Free-mask row the injection limiters and the Figure-2 probe read:
  /// the raw Network register, except under Credit where VCs with
  /// outstanding credits are masked out (a channel is only completely
  /// free once its credits came home). Selection does NOT use this —
  /// claimability is a tenancy property in every scheme, which is what
  /// keeps the route memo's epoch keys exact.
  const std::uint8_t* fc_status_row(NodeId node) {
    return fc_status_row_into(node, fc_row_buf_.data());
  }
  /// fc_status_row writing into a caller-supplied scratch buffer of
  /// num_channels bytes — the reentrant form the shard-parallel
  /// evaluate pass uses with its per-lane scratch (the shared
  /// fc_row_buf_ would race across shards).
  const std::uint8_t* fc_status_row_into(NodeId node,
                                         std::uint8_t* buf) const {
    if (!credit_) return net_.free_mask_row(node);
    const unsigned chans = topo_.num_channels();
    const unsigned vcs = net_.params().num_vcs;
    credit_->filter_free_row(
        net_.free_mask_row(node),
        static_cast<std::size_t>(net_.net_link(node, 0)) * vcs, chans, vcs,
        buf);
    return buf;
  }
  /// ChannelStatus the virtual limiter path reads (same filtering).
  const core::ChannelStatus& fc_channel_status() const noexcept {
    return credit_ ? static_cast<const core::ChannelStatus&>(credit_status_)
                   : static_cast<const core::ChannelStatus&>(net_);
  }

  void enroll_for_routing(VcRef ref);
  void start_injection(NodeId node, unsigned inj_channel, MsgId id, Cycle t);
  /// Free every VC the worm occupies (head-to-tail upstream walk),
  /// including an ejection-port binding, and reset the message record
  /// to its pre-injection state. Shared by deadlock absorption and
  /// fault surgery.
  void teardown_worm(MsgId id, Cycle t);
  void absorb_deadlocked(MsgId id, Cycle t);
  void deliver(MsgId id, Cycle t);
  void activate(MsgId id);
  void deactivate(MsgId id);

  // --- Fault injection & dynamic reconfiguration -----------------------
  /// Apply due schedule events, tear traffic off dying components,
  /// rebuild the routing table and purge undeliverable messages.
  void apply_faults(Cycle t);
  /// Tear down a live worm and hand it to deadlock recovery at the node
  /// its header had reached (the DBR-style reuse of the recovery path).
  void fault_absorb(MsgId id, Cycle t);
  /// Mirror the fault mask into the network's dead-link fields, tearing
  /// down every worm crossing a newly dead link first.
  void sync_dead_links(Cycle t);
  /// Drop every active, recovery-queued or source-queued message whose
  /// destination died or became unreachable.
  void purge_undeliverable(Cycle t);
  /// Clear a dying node's source queue and tear down worms occupying
  /// its injection channels.
  void kill_node_state(NodeId node, Cycle t);
  /// Both endpoints alive and a route exists on the alive graph.
  bool deliverable(NodeId from, NodeId dst) const;
  void count_lost(bool measured);
  /// Deactivate + release an in-network/recovery message as lost.
  void drop_active_message(MsgId id, Cycle t);

  topo::KAryNCube topo_;
  SimulatorConfig cfg_;
  Network net_;
  std::unique_ptr<routing::RoutingFunction> routing_;
  routing::Selector selector_;
  std::unique_ptr<core::InjectionLimiter> limiter_;
  /// Tabulated routing (active core with fastpath.routing_lut; null
  /// otherwise — route_at falls back to the virtual function). Always
  /// built, in either core, when a fault schedule is present:
  /// reconfiguration works by rebuilding this table, and both cores
  /// must route from the same one to stay bit-identical.
  std::unique_ptr<routing::RoutingLut> lut_;
  std::unique_ptr<traffic::Workload> workload_;
  /// Null when cfg.faults is empty — the provably-no-op fast path, like
  /// the branch-on-null tracer.
  std::unique_ptr<fault::FaultManager> faults_;
  deadlock::RecoveryManager recovery_;
  metrics::Collector collector_;
  std::unique_ptr<metrics::TimeSeries> timeseries_;
  obs::Tracer* tracer_ = nullptr;            // non-owning; null = off
  metrics::SpatialMetrics* spatial_ = nullptr;  // non-owning; null = off
  metrics::OnlineStats* online_ = nullptr;      // non-owning; null = off

  MessagePool pool_;
  std::vector<MsgId> active_;

  std::vector<std::deque<PendingMessage>> queues_;
  std::vector<Cycle> head_since_;     // cycle the current queue head became head
  std::vector<std::uint32_t> alloc_rr_;  // per-node selector rotation

  /// Route-pending work item. `msg` and `slot` are enrollment-time
  /// snapshots: `slot` saves the flat-index recompute each visit, and
  /// `msg` lets the scan prove an entry unchanged-and-still-blocked
  /// from the route memo alone, without loading its VcState. A stale
  /// snapshot (the tenancy ended) simply fails the memo key comparison
  /// and takes the full path, which detects and drops the entry.
  struct PendingRoute {
    VcRef ref;
    MsgId msg = kNoMsg;
    std::uint32_t slot = 0;
  };
  std::vector<PendingRoute> pending_route_;
  routing::RouteResult route_buf_;
  util::SmallVector<traffic::GeneratedMessage, 8> gen_buf_;

  // --- Saturated-regime fast path (active core only) -------------------
  /// Per-VC-slot route memo for blocked headers. The cached route is a
  /// pure function of (node, dst) — node is fixed per slot — so an
  /// entry stays valid across tenancies; `dst` is the lookup key.
  /// `epoch_sum` snapshots candidate_epoch_sum at the last failed
  /// selection: while it is unchanged the header is still blocked and
  /// both the route and the selection are skipped.
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};
  struct RouteMemo {
    /// Tenancy key: set when this slot's header blocks, cleared when
    /// the tenancy ends (successful allocation or absorption). While it
    /// matches the slot's VcState::msg, the header is a known
    /// blocked-in-transit retry and the Message record and eject check
    /// are skipped entirely.
    MsgId msg = kNoMsg;
    /// Route key: the cached candidates are valid for any tenancy with
    /// this destination (routing is a pure function of (node, dst)).
    NodeId dst = topo::kInvalidNode;
    /// Union of route.candidates channels, the epoch-sum footprint.
    std::uint32_t cand_mask = 0;
    /// candidate_epoch_sum at the last failed selection; equal sum ⇒
    /// no candidate mask changed ⇒ provably still blocked.
    std::uint64_t epoch_sum = kNoEpoch;
    /// Earliest cycle FC3D detection could fire for this tenancy: the
    /// last failed guard (message progress or witness-VC activity plus
    /// threshold). Both sources are monotone, so skipping evaluation
    /// until then is exact, not heuristic. Reset on tenancy change.
    Cycle no_detect_before = 0;
    routing::RouteResult route;
  };
  std::vector<RouteMemo> route_memo_;  // empty when the memo is off
  /// Router node owning each VC slot's output side (the link's dst),
  /// indexed like route_memo_ — replaces a Link load in phase_route.
  std::vector<NodeId> vc_node_;

  /// Enum-tagged limiter dispatch for the cycle loop; Virtual = run the
  /// InjectionLimiter interface (custom limiters, or dispatch off).
  enum class LimiterFast : std::uint8_t { Virtual, None, Alo, Lf, Dril };
  LimiterFast limiter_fast_ = LimiterFast::Virtual;
  bool memo_on_ = false;            // active core && fastpath.route_memo
  bool static_dispatch_on_ = false; // active core && fastpath.static_dispatch

  // --- Flow control (resolved once at construction) --------------------
  std::unique_ptr<FlowControlScheme> flow_;
  /// Non-null iff the scheme is Credit (set in either dispatch mode —
  /// the fast path calls the same object non-virtually, so both modes
  /// mutate identical state and stay bit-identical).
  CreditFlowControl* credit_ = nullptr;
  FlowControl fc_kind_ = FlowControl::Wormhole;
  bool fc_virtual_ = true;  // dense core, or fastpath.fc_dispatch off
  bool fc_tracks_ = false;  // scheme consumes the per-flit event stream
  bool fc_vetoes_ = true;   // scheme's may_send can veto past occupancy
  bool fc_admits_ = true;   // scheme's admit can reject a VC claim
  CreditChannelStatus credit_status_;
  std::vector<std::uint8_t> fc_row_buf_;  // fc_status_row scratch

  // --- Active-set state (maintained in both cores where the cost is
  // O(1) per transition; consumed only by the active core) -------------
  util::ActiveSet eject_nodes_;   // nodes with >= 1 busy ejection port
  util::ActiveSet inject_nodes_;  // occupied inj VC, queued msg or
                                  // pending recovery (lazily pruned)

  // Generation scheduling (active core): a node is subscribed in
  // exactly one place — gen_dense_ (poll every cycle), its owner
  // shard's timed heap (poll at the hinted cycle) or nowhere (rate-0
  // source). gen_where_ tracks which, for O(1) transitions and
  // coherence checks. The heap is partitioned by node ownership — one
  // heap per shard, gen_heaps_[0] being the whole heap when sequential
  // — so each shard pops its own due nodes with no shared state; the
  // due set is identical to a single heap's because "due" is a
  // per-node property (top <= t per heap).
  enum class GenSub : std::uint8_t { None, EveryCycle, Timed };
  using GenHeap =
      std::priority_queue<std::pair<Cycle, NodeId>,
                          std::vector<std::pair<Cycle, NodeId>>,
                          std::greater<>>;
  util::ActiveSet gen_dense_;
  std::vector<GenHeap> gen_heaps_;  // one per shard; [0] when sequential
  std::vector<GenSub> gen_where_;
  std::uint64_t gen_epoch_ = ~std::uint64_t{0};  // forces initial refill

  // --- Sharded core (see DESIGN.md "Sharded simulation core") ----------
  // Ownership: shard s owns the contiguous 64-bit-word ranges
  // node_words [node_word_lo_[s], node_word_lo_[s+1]) and net-link
  // words [link_word_lo_[s], link_word_lo_[s+1]) of every bitmap. A
  // word is only ever mutated by its owner inside a parallel phase, so
  // bitmap RMW is race-free; the sets' shared size counters are
  // reconciled from per-lane deltas at the barrier.
  /// One deferred eject event per ejected flit: credits, metrics and
  /// (for tail flits) tenancy release + delivery, replayed in shard
  /// order — which equals the sequential core's ascending-node order.
  struct EjectEvent {
    VcRef src;
    MsgId msg = kNoMsg;
    std::uint32_t slot = 0;   // valid iff credit
    bool credit = false;      // non-injection source: fc_on_drained
    bool completed = false;   // tail ejected: release + deliver
  };
  /// One deferred generated message (enqueue_source replayed in shard
  /// order; per-node FIFO order is preserved because each node is
  /// polled once per cycle by exactly one shard).
  struct GenEvent {
    NodeId node = 0;
    NodeId dst = 0;
    std::uint32_t length = 0;
  };

  // --- Route/transmit evaluate-commit decisions ------------------------
  /// How a pending_route_ entry resolved in the evaluate pass. The
  /// commit replay applies the recorded outcome verbatim unless a
  /// stamp shows an earlier commit touched the entry's inputs.
  enum class RouteDecKind : std::uint8_t {
    Park,        // parked check failed: count a memo hit, keep entry
    Stale,       // tenancy ended elsewhere: drop entry
    Wait,        // routing delay not elapsed: keep entry
    AtDestWait,  // at destination, no free ejection port: keep entry
    AtDestBind,  // at destination: bind ejection port, drop entry
    Blocked,     // no VC claimable: memo/probe updates, keep entry
    Absorb,      // FC3D deadlock detection fired: absorb, drop entry
    Alloc,       // claimed an output VC: allocate, drop entry
  };
  /// One speculative per-entry decision, index-aligned with
  /// pending_route_. Memo side effects are carried as explicit
  /// write-intent flags so the commit performs exactly the sequential
  /// path's stores, in its order.
  struct RouteDecision {
    RouteDecKind kind = RouteDecKind::Wait;
    std::uint8_t evals = 0;        // scan_.route_evals delta
    std::uint8_t hits = 0;         // scan_.route_memo_hits delta
    std::uint8_t vc = 0;           // Alloc: picked VC
    bool fresh_route = false;      // memo: store route/dst/cand_mask
    bool write_epoch = false;      // memo: store epoch_sum
    bool tenancy_reset = false;    // memo: store msg, clear ndb
    bool write_ndb = false;        // memo: store ndb
    bool probe = false;            // Figure-2 probe fired this entry
    bool probe_a = false;
    bool probe_b = false;
    int port = -1;                 // AtDestBind: ejection port
    ChannelId channel = 0;         // Alloc: picked channel
    MsgId msg = kNoMsg;
    NodeId dst = topo::kInvalidNode;   // fresh_route: route key
    std::uint32_t cand_mask = 0;       // fresh_route: epoch footprint
    std::uint64_t epoch_sum = 0;       // write_epoch payload
    Cycle ndb = 0;                     // write_ndb payload
    routing::RouteResult route;        // valid iff fresh_route
  };
  /// One per-link transmit decision: the VC whose flit advances across
  /// `link` this cycle (vcn == -1: arbitration found nothing to send —
  /// still recorded, because an earlier commit can free budget that
  /// flips no-send into send, which the stamp check catches).
  struct TransmitDecision {
    LinkId link = 0;
    std::int16_t vcn = -1;
  };
  /// Per-shard mailbox. Written by exactly one shard between barriers,
  /// drained by the sequential commit that follows. Padded to a cache
  /// line so neighboring lanes don't false-share.
  struct alignas(64) ShardLane {
    std::vector<GenEvent> gen_events;
    std::vector<PendingRoute> enrolls;
    std::vector<EjectEvent> ejects;
    std::vector<TransmitDecision> xmits;   // transmit_evaluate output
    util::SmallVector<traffic::GeneratedMessage, 8> gen_buf;
    routing::RouteResult route_scratch;    // route_evaluate_entry scratch
    std::vector<std::uint8_t> fc_row;      // fc_status_row_into scratch
    std::uint64_t visited = 0;             // scan_visited delta
    std::uint64_t ejected_flits = 0;       // batched per-cycle flit count
    std::uint64_t free_vcs = 0;            // online_sample partial sum
    std::ptrdiff_t gen_dense_delta = 0;    // unsized insert/erase balance
    std::ptrdiff_t arrival_delta = 0;
    std::ptrdiff_t eject_delta = 0;
  };
  std::vector<ShardLane> lanes_;
  std::unique_ptr<util::ShardCrew> crew_;  // null when shards_eff_ == 1
  unsigned shards_eff_ = 1;
  std::vector<std::size_t> node_word_lo_;  // size shards_eff_+1
  std::vector<std::size_t> link_word_lo_;  // size shards_eff_+1
  std::vector<std::uint32_t> word_shard_;  // node word -> owning shard

  unsigned shard_of_node(NodeId node) const noexcept {
    return shards_eff_ == 1 ? 0u : word_shard_[node >> 6];
  }

  // --- Evaluate/commit conflict detection (multi-shard only) -----------
  // Write-stamps at the granularity of a decision's input footprint: a
  // commit that mutates a VC slot stamps it, one that changes a node's
  // arbitration state (free masks, epochs, alloc_rr_, ejection ports,
  // out-VC activity) stamps the node, and a flit send stamps the
  // upstream link. A decision whose own stamps carry the current cycle
  // was computed against pre-commit state and re-runs inline. Stamps
  // init to kStampNever, NOT 0 — cycle 0 is a real simulated cycle.
  static constexpr Cycle kStampNever = ~Cycle{0};
  std::vector<RouteDecision> route_dec_;     // index-aligned w/ pending_route_
  std::vector<Cycle> route_slot_stamp_;      // per VC slot (flat index)
  std::vector<Cycle> route_node_stamp_;      // per node
  std::vector<Cycle> transmit_link_stamp_;   // per link (incl. injection)

  void stamp_route_slot(std::size_t slot, Cycle t) noexcept {
    if (!route_slot_stamp_.empty()) route_slot_stamp_[slot] = t;
  }
  void stamp_route_node(NodeId node, Cycle t) noexcept {
    if (!route_node_stamp_.empty()) route_node_stamp_[node] = t;
  }
  void stamp_transmit_link(LinkId l, Cycle t) noexcept {
    if (!transmit_link_stamp_.empty()) transmit_link_stamp_[l] = t;
  }

  CoreScanStats scan_;
  std::size_t queue_total_ = 0;         // sum of queues_[*].size()
  std::uint64_t generated_total_ = 0;   // every source-queue push ever

  Cycle cycle_ = 0;
  std::uint64_t deadlock_events_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_total_ = 0;    // dropped by fault reconfiguration
  std::uint64_t fault_events_ = 0;  // schedule events applied
  std::uint64_t lut_rebuilds_ = 0;  // fault-triggered retabulations
  std::vector<fault::FaultEvent> fault_buf_;
  std::vector<std::pair<deadlock::NodeId, deadlock::MsgId>> purge_buf_;
  bool probe_enabled_ = true;
};

}  // namespace wormsim::sim
