#include "sim/utilization.hpp"

#include <algorithm>
#include <limits>

namespace wormsim::sim {

UtilizationSummary summarize_utilization(const Network& net,
                                         std::uint64_t cycles) {
  UtilizationSummary s;
  if (cycles == 0 || net.num_net_links() == 0) return s;
  const auto& topo = net.topology();
  s.per_dim.assign(topo.dims(), 0.0);
  std::vector<std::uint64_t> per_dim_links(topo.dims(), 0);

  double sum = 0.0;
  s.min = std::numeric_limits<double>::infinity();
  std::uint64_t idle = 0;
  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    const Link& link = net.link(l);
    const double u =
        static_cast<double>(link.flits_carried) / static_cast<double>(cycles);
    sum += u;
    s.max = std::max(s.max, u);
    s.min = std::min(s.min, u);
    idle += (link.flits_carried == 0);
    const unsigned dim = topo::channel_dim(link.src_channel);
    s.per_dim[dim] += u;
    ++per_dim_links[dim];
  }
  s.mean = sum / net.num_net_links();
  s.imbalance = s.mean > 0 ? s.max / s.mean : 0.0;
  s.idle_fraction =
      static_cast<double>(idle) / static_cast<double>(net.num_net_links());
  for (unsigned d = 0; d < topo.dims(); ++d) {
    if (per_dim_links[d]) s.per_dim[d] /= static_cast<double>(per_dim_links[d]);
  }
  return s;
}

void reset_utilization(Network& net) {
  for (LinkId l = 0; l < net.num_links(); ++l) {
    net.link(l).flits_carried = 0;
  }
}

}  // namespace wormsim::sim
