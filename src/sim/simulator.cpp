#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/alo.hpp"
#include "core/dril.hpp"
#include "core/linear_function.hpp"

namespace wormsim::sim {

namespace {
constexpr Cycle kForever = std::numeric_limits<Cycle>::max();
constexpr Cycle kQueueSamplePeriod = 64;
}  // namespace

SimCore parse_sim_core(std::string_view name) {
  if (name == "dense") return SimCore::Dense;
  if (name == "active") return SimCore::Active;
  throw std::invalid_argument("unknown sim core (dense|active): " +
                              std::string(name));
}

std::string_view sim_core_name(SimCore core) noexcept {
  switch (core) {
    case SimCore::Dense: return "dense";
    case SimCore::Active: return "active";
  }
  return "unknown";
}

Simulator::Simulator(const topo::KAryNCube& topo, const SimulatorConfig& cfg,
                     std::unique_ptr<traffic::Workload> workload)
    : topo_(topo),
      cfg_(cfg),
      net_(topo_, cfg.net),
      routing_(routing::make_routing(cfg.algorithm, topo_, cfg.net.num_vcs)),
      selector_(cfg.selection),
      limiter_(core::make_limiter(cfg.limiter, topo_.num_nodes())),
      workload_(std::move(workload)),
      recovery_(topo_.num_nodes()),
      collector_(topo_.num_nodes(), 0, kForever),
      queues_(topo_.num_nodes()),
      head_since_(topo_.num_nodes(), 0),
      alloc_rr_(topo_.num_nodes(), 0),
      eject_nodes_(topo_.num_nodes()),
      inject_nodes_(topo_.num_nodes()),
      gen_dense_(topo_.num_nodes()),
      gen_where_(topo_.num_nodes(), GenSub::None) {
  if (cfg.routing_delay < 1 || cfg.routing_delay > 8) {
    throw std::invalid_argument("routing_delay must be in [1, 8]");
  }
  // Fast paths are an active-core property: the dense core stays the
  // reference virtual-dispatch implementation so that the byte-identity
  // tests double as a differential check of these optimizations.
  const bool active = cfg_.core == SimCore::Active;
  if (active && cfg_.fastpath.routing_lut) {
    lut_ = std::make_unique<routing::RoutingLut>(*routing_, topo_);
  }
  if (!cfg_.faults.empty()) {
    fault::validate(cfg_.faults, topo_);
    if (cfg_.algorithm != routing::Algorithm::TFAR) {
      throw std::invalid_argument(
          "fault schedules require TFAR routing (reconfiguration has no "
          "alternative paths under a deterministic algorithm)");
    }
    // Reconfiguration routes around failures by rebuilding the LUT, so
    // the table must exist in either core — the dense core included,
    // or the two cores would diverge the moment a fault fires. The LUT
    // is bit-identical to the wrapped function, so forcing it here
    // cannot perturb pre-fault behavior.
    if (!lut_) {
      lut_ = std::make_unique<routing::RoutingLut>(*routing_, topo_);
    }
    if (!lut_->tabulated()) {
      throw std::invalid_argument(
          "fault schedules need a tabulable network (too many nodes for "
          "the routing-LUT budget)");
    }
    faults_ = std::make_unique<fault::FaultManager>(topo_, cfg_.faults);
  }
  memo_on_ = active && cfg_.fastpath.route_memo;
  if (memo_on_) route_memo_.resize(net_.num_vc_slots());
  static_dispatch_on_ = active && cfg_.fastpath.static_dispatch;
  resolve_limiter_dispatch();
  // Flow-control scheme, resolved once like the limiter dispatch above.
  // The dense core stays on the virtual interface so core equivalence
  // doubles as a differential test of the fast dispatch.
  flow_ = make_flow_control(cfg_.flow, net_.num_vc_slots());
  fc_kind_ = flow_->kind();
  credit_ = fc_kind_ == FlowControl::Credit
                ? static_cast<CreditFlowControl*>(flow_.get())
                : nullptr;
  fc_virtual_ = !(active && cfg_.fastpath.fc_dispatch);
  fc_tracks_ = flow_->tracks_flits();
  fc_vetoes_ = flow_->veto_sends();
  fc_admits_ = flow_->gates_admission();
  if (credit_) credit_status_.bind(net_, *credit_);
  fc_row_buf_.resize(topo_.num_channels());
  // Per-slot owning router node (the link's dst): a contiguous 4-byte
  // lookup in phase_route instead of a Link record load.
  vc_node_.resize(net_.num_vc_slots());
  for (LinkId l = 0; l < net_.num_links(); ++l) {
    const NodeId dst = net_.link(l).dst;
    for (unsigned vc = 0; vc < net_.vcs_on(l); ++vc) {
      vc_node_[net_.vc_flat_index({l, static_cast<std::uint8_t>(vc)})] = dst;
    }
  }
  // Sharded core: resolve the shard count (0 = one per hardware
  // thread), clamp to the number of 64-node bitmap words so every
  // shard owns at least one word, and build the contiguous word
  // partition of the node and net-link bitmaps. shards_eff_ == 1
  // leaves the sequential path untouched (no crew, no lanes).
  if (cfg_.shards != 1 && !active) {
    throw std::invalid_argument(
        "--shards > 1 requires the active core (the dense reference "
        "core stays single-threaded)");
  }
  const unsigned shards_req =
      cfg_.shards == 0 ? std::max(1u, std::thread::hardware_concurrency())
                       : cfg_.shards;
  const auto node_words =
      static_cast<unsigned>(std::max<std::size_t>(1, gen_dense_.word_count()));
  shards_eff_ = active ? std::min(shards_req, node_words) : 1u;
  gen_heaps_.resize(shards_eff_);
  if (shards_eff_ > 1) {
    crew_ = std::make_unique<util::ShardCrew>(shards_eff_);
    lanes_.resize(shards_eff_);
    const std::size_t nw = gen_dense_.word_count();
    const std::size_t lw = net_.arrival_links().word_count();
    node_word_lo_.resize(shards_eff_ + 1);
    link_word_lo_.resize(shards_eff_ + 1);
    word_shard_.resize(nw);
    for (unsigned s = 0; s < shards_eff_; ++s) {
      const auto [n_lo, n_hi] = util::ShardCrew::slice(nw, s, shards_eff_);
      const auto [l_lo, l_hi] = util::ShardCrew::slice(lw, s, shards_eff_);
      node_word_lo_[s] = n_lo;
      node_word_lo_[s + 1] = n_hi;
      link_word_lo_[s] = l_lo;
      link_word_lo_[s + 1] = l_hi;
      for (std::size_t w = n_lo; w < n_hi; ++w) word_shard_[w] = s;
    }
    for (ShardLane& lane : lanes_) lane.fc_row.resize(topo_.num_channels());
    // Conflict stamps for the route/transmit evaluate-commit protocol.
    // kStampNever, not 0: cycle 0 is a real simulated cycle and a zero
    // init would mark everything dirty on the first commit.
    route_slot_stamp_.assign(net_.num_vc_slots(), kStampNever);
    route_node_stamp_.assign(topo_.num_nodes(), kStampNever);
    transmit_link_stamp_.assign(net_.num_links(), kStampNever);
  }
}

std::size_t Simulator::route_memo_entry_bytes() noexcept {
  return sizeof(RouteMemo);
}

void Simulator::resolve_limiter_dispatch() {
  core::InjectionLimiter* l = limiter_.get();
  if (dynamic_cast<core::NoLimiter*>(l) != nullptr) {
    limiter_fast_ = LimiterFast::None;
  } else if (dynamic_cast<core::AloLimiter*>(l) != nullptr) {
    limiter_fast_ = LimiterFast::Alo;
  } else if (dynamic_cast<core::LinearFunctionLimiter*>(l) != nullptr) {
    limiter_fast_ = LimiterFast::Lf;
  } else if (dynamic_cast<core::DrilLimiter*>(l) != nullptr) {
    limiter_fast_ = LimiterFast::Dril;
  } else {
    limiter_fast_ = LimiterFast::Virtual;  // user-supplied mechanism
  }
}

void Simulator::enqueue_source(NodeId node, NodeId dst, std::uint32_t length,
                               Cycle t) {
  if (faults_ && !deliverable(node, dst)) {
    // The source cannot know the destination died, but queueing the
    // message would wedge the FIFO head forever: count it generated and
    // immediately lost instead. (Generation at a dead node itself is
    // suppressed in poll_node.)
    ++generated_total_;
    collector_.on_generated(t);
    if (online_) online_->on_generated(length);
    count_lost(collector_.in_window(t));
    return;
  }
  queues_[node].push_back({dst, length, t, collector_.in_window(t)});
  if (queues_[node].size() == 1) head_since_[node] = t;
  ++queue_total_;
  ++generated_total_;
  inject_nodes_.insert(node);
  collector_.on_generated(t);
  if (online_) online_->on_generated(length);
  if (tracer_) {
    tracer_->record(t, obs::EventKind::QueueEnqueue, node,
                    /*aux8=*/0, static_cast<std::uint16_t>(length),
                    static_cast<std::uint32_t>(queues_[node].size()));
  }
}

bool Simulator::push_message(NodeId src, NodeId dst, std::uint32_t length) {
  if (src == dst || length == 0) return false;
  enqueue_source(src, dst, length, cycle_);
  return true;
}

void Simulator::step() {
  const Cycle t = cycle_;
  scan_.cycles += 1;
  scan_.scan_total +=
      2 * static_cast<std::uint64_t>(net_.num_net_links()) +
      3 * static_cast<std::uint64_t>(topo_.num_nodes());
  if (fc_tracks_) {
    if (fc_virtual_) {
      flow_->begin_cycle(t);
    } else if (credit_) {
      credit_->begin_cycle(t);
    }
  }
  if (online_ && online_->profile_due(t)) {
    run_phases_profiled(t);
  } else if (use_sharded_step()) {
    // Sharded cycle: generate/arrivals/eject fan out across the crew
    // (their per-element work is element-local); route and transmit
    // fan out as a read-only evaluate pass whose speculative decisions
    // a serial commit replays in sequential arbitration order (stale
    // ones detected by write-stamps and re-run inline). Inject stays
    // sequential — one global allocator and FIFO fairness accounting.
    if (faults_ && faults_->due(t)) apply_faults(t);
    phase_generate_sharded(t);
    phase_arrivals_sharded(t);
    phase_eject_sharded(t);
    phase_route_sharded(t);
    phase_transmit_sharded(t);
    phase_inject(t);
  } else {
    if (faults_ && faults_->due(t)) apply_faults(t);
    phase_generate(t);
    phase_arrivals(t);
    phase_eject(t);
    phase_route(t);
    phase_transmit(t);
    phase_inject(t);
  }
  scan_.active_links_sum += net_.tenant_links().size();
  scan_.active_nodes_sum +=
      cfg_.core == SimCore::Active ? inject_nodes_.size() : 0;
  if (t % kQueueSamplePeriod == 0) {
    const std::size_t total = queue_total_;
    collector_.on_queue_sample(total);
    if (timeseries_) timeseries_->on_queue_sample(t, total);
    if (spatial_) {
      if (use_sharded_step()) {
        sample_spatial_sharded(t);
      } else {
        for (NodeId node = 0; node < topo_.num_nodes(); ++node) {
          spatial_->on_queue_sample(node, queues_[node].size());
        }
        for (LinkId l = 0; l < net_.num_net_links(); ++l) {
          spatial_->on_link_occupancy_sample(
              l,
              static_cast<unsigned>(std::popcount(net_.link(l).active_vc_mask)));
        }
      }
    }
#ifndef NDEBUG
    std::string why;
    assert(check_active_sets(&why) && why.c_str());
    assert(check_conservation(&why) && why.c_str());
    assert(check_fault_invariants(&why) && why.c_str());
    assert(check_flow_control(&why) && why.c_str());
#endif
  }
  if (online_ && online_->window_closes(t)) {
    online_->close_window(t, online_sample());
  }
  ++cycle_;
}

void Simulator::run_phases_profiled(Cycle t) {
  metrics::PhaseProfiler& prof = online_->profiler();
  prof.time(metrics::Phase::Fault, [&] {
    if (faults_ && faults_->due(t)) apply_faults(t);
  });
  if (use_sharded_step()) {
    // Sharded profiled cycle: time the same phases the unprofiled
    // sharded step runs, with route/transmit split into their
    // evaluate/commit sub-phases so speculation cost is attributable.
    prof.time(metrics::Phase::Generate, [&] { phase_generate_sharded(t); });
    prof.time(metrics::Phase::Arrivals, [&] { phase_arrivals_sharded(t); });
    prof.time(metrics::Phase::Eject, [&] { phase_eject_sharded(t); });
    prof.time(metrics::Phase::RouteEval, [&] { route_evaluate(t); });
    prof.time(metrics::Phase::RouteCommit, [&] { route_commit(t); });
    prof.time(metrics::Phase::TransmitEval, [&] { transmit_evaluate(t); });
    prof.time(metrics::Phase::TransmitCommit, [&] { transmit_commit(t); });
  } else {
    prof.time(metrics::Phase::Generate, [&] { phase_generate(t); });
    prof.time(metrics::Phase::Arrivals, [&] { phase_arrivals(t); });
    prof.time(metrics::Phase::Eject, [&] { phase_eject(t); });
    prof.time(metrics::Phase::Route, [&] { phase_route(t); });
    prof.time(metrics::Phase::Transmit, [&] { phase_transmit(t); });
  }
  prof.time(metrics::Phase::Inject, [&] { phase_inject(t); });
  prof.count_sample();
}

metrics::WindowSample Simulator::online_sample() {
  metrics::WindowSample s;
  s.in_flight_flits = net_.flits_in_network();
  s.blocked_headers = pending_route_.size();
  const unsigned chans = topo_.num_channels();
  const unsigned vcs = net_.params().num_vcs;
  const std::uint8_t vc_mask =
      static_cast<std::uint8_t>((1u << vcs) - 1u);
  std::uint64_t free_vcs = 0;
  if (crew_) {
    // Per-shard partial sums over the owned node ranges (read-only,
    // per-lane scratch rows), folded in shard order. Integer addition
    // is exactly associative, so this equals the serial scan.
    const NodeId nodes = topo_.num_nodes();
    crew_->run([&](unsigned sh) {
      ShardLane& lane = lanes_[sh];
      const auto lo = static_cast<NodeId>(node_word_lo_[sh] * 64);
      const auto hi = static_cast<NodeId>(
          std::min<std::size_t>(node_word_lo_[sh + 1] * 64, nodes));
      std::uint64_t sum = 0;
      for (NodeId node = lo; node < hi; ++node) {
        const std::uint8_t* row = fc_status_row_into(node, lane.fc_row.data());
        for (unsigned c = 0; c < chans; ++c) {
          sum += static_cast<unsigned>(std::popcount(
              static_cast<std::uint8_t>(row[c] & vc_mask)));
        }
      }
      lane.free_vcs = sum;
    });
    for (unsigned sh = 0; sh < shards_eff_; ++sh) {
      free_vcs += lanes_[sh].free_vcs;
      lanes_[sh].free_vcs = 0;
    }
  } else {
    for (NodeId node = 0; node < topo_.num_nodes(); ++node) {
      const std::uint8_t* row = fc_status_row(node);
      for (unsigned c = 0; c < chans; ++c) {
        free_vcs += static_cast<unsigned>(std::popcount(
            static_cast<std::uint8_t>(row[c] & vc_mask)));
      }
    }
  }
  s.free_vcs = free_vcs;
  s.total_vcs = static_cast<std::uint64_t>(topo_.num_nodes()) * chans * vcs;
  s.queue_total = queue_total_;
  s.credit_messages = flow_->credit_messages();
  return s;
}

void Simulator::finish_online() {
  if (!online_) return;
  online_->finish(cycle_, online_sample());
}

// --- Generation -------------------------------------------------------

void Simulator::poll_node(NodeId node, Cycle t) {
  // Dead sources are silent; skipping the poll leaves the per-node
  // generator state untouched, so it resumes cleanly on restore (both
  // cores skip identically).
  if (faults_ && faults_->mask().node_dead(node)) return;
  gen_buf_.clear();
  workload_->poll(node, t, gen_buf_);
  for (const auto& g : gen_buf_) {
    enqueue_source(node, g.dst, g.length_flits, t);
  }
}

void Simulator::poll_and_reschedule(NodeId node, Cycle t) {
  scan_.scan_visited += 1;
  poll_node(node, t);
  const std::uint64_t hint = workload_->next_poll(node, t);
  if (hint == traffic::kNeverPoll) {
    gen_dense_.erase(node);
    gen_where_[node] = GenSub::None;
  } else if (hint <= t + 1) {
    gen_dense_.insert(node);
    gen_where_[node] = GenSub::EveryCycle;
  } else {
    gen_dense_.erase(node);
    // Always the owner shard's heap, so the heap partition stays
    // coherent when sequential and sharded cycles interleave (profiled
    // cycles, observer attach/detach).
    gen_heaps_[shard_of_node(node)].push({hint, node});
    gen_where_[node] = GenSub::Timed;
  }
}

void Simulator::poll_and_reschedule_sharded(NodeId node, Cycle t,
                                            unsigned s) {
  ShardLane& lane = lanes_[s];
  lane.visited += 1;
  // Same dead-source rule as poll_node, but generated messages are
  // parked in the shard mailbox: enqueue_source touches cross-shard
  // state (counters, the inject set, the collector), so the commit
  // replays it under the barrier.
  if (!(faults_ && faults_->mask().node_dead(node))) {
    lane.gen_buf.clear();
    workload_->poll(node, t, lane.gen_buf);
    for (const auto& g : lane.gen_buf) {
      lane.gen_events.push_back({node, g.dst, g.length_flits});
    }
  }
  const std::uint64_t hint = workload_->next_poll(node, t);
  if (hint == traffic::kNeverPoll) {
    lane.gen_dense_delta -= gen_dense_.erase_unsized(node) ? 1 : 0;
    gen_where_[node] = GenSub::None;
  } else if (hint <= t + 1) {
    lane.gen_dense_delta += gen_dense_.insert_unsized(node) ? 1 : 0;
    gen_where_[node] = GenSub::EveryCycle;
  } else {
    lane.gen_dense_delta -= gen_dense_.erase_unsized(node) ? 1 : 0;
    gen_heaps_[s].push({hint, node});
    gen_where_[node] = GenSub::Timed;
  }
}

void Simulator::phase_generate(Cycle t) {
  if (!workload_) return;
  const NodeId nodes = topo_.num_nodes();
  if (cfg_.core == SimCore::Dense) {
    scan_.scan_visited += nodes;
    for (NodeId node = 0; node < nodes; ++node) poll_node(node, t);
    return;
  }
  // A workload mutation (set_offered_load) invalidates every
  // outstanding hint: drop the timed subscriptions and re-poll every
  // node from the next cycle on, exactly as the dense core would.
  if (workload_->mutation_epoch() != gen_epoch_) {
    gen_epoch_ = workload_->mutation_epoch();
    for (GenHeap& heap : gen_heaps_) heap = {};
    for (NodeId node = 0; node < nodes; ++node) {
      gen_dense_.insert(node);
      gen_where_[node] = GenSub::EveryCycle;
    }
  }
  // Every-cycle processes first, then due timed ones. Order matters for
  // subscription exclusivity, not results: a heap pop may re-subscribe
  // its node into gen_dense_, which must not be re-visited this cycle —
  // per-node generator state is independent, so cross-node poll order
  // itself is free (which is also why draining the per-shard heaps one
  // after another is equivalent to a single global heap: "due" is a
  // per-node property).
  gen_dense_.for_each(
      [&](std::size_t node) { poll_and_reschedule(static_cast<NodeId>(node), t); });
  for (GenHeap& heap : gen_heaps_) {
    while (!heap.empty() && heap.top().first <= t) {
      const NodeId node = heap.top().second;
      heap.pop();
      assert(gen_where_[node] == GenSub::Timed);
      poll_and_reschedule(node, t);
    }
  }
}

void Simulator::phase_generate_sharded(Cycle t) {
  if (!workload_) return;
  // The epoch refill is rare (a workload mutation) and touches every
  // node's subscription: run it sequentially before the fan-out.
  if (workload_->mutation_epoch() != gen_epoch_) {
    gen_epoch_ = workload_->mutation_epoch();
    for (GenHeap& heap : gen_heaps_) heap = {};
    const NodeId nodes = topo_.num_nodes();
    for (NodeId node = 0; node < nodes; ++node) {
      gen_dense_.insert(node);
      gen_where_[node] = GenSub::EveryCycle;
    }
  }
  // Fan out: each shard polls the dense subscribers in its node-word
  // range, then its own due timed nodes. All mutated state is
  // shard-local (per-node workload state, gen_where_, owned bitmap
  // words, the shard heap, the mailbox).
  crew_->run([&](unsigned s) {
    gen_dense_.for_each_in_words(
        node_word_lo_[s], node_word_lo_[s + 1], [&](std::size_t node) {
          poll_and_reschedule_sharded(static_cast<NodeId>(node), t, s);
        });
    GenHeap& heap = gen_heaps_[s];
    while (!heap.empty() && heap.top().first <= t) {
      const NodeId node = heap.top().second;
      heap.pop();
      assert(gen_where_[node] == GenSub::Timed);
      poll_and_reschedule_sharded(node, t, s);
    }
  });
  // Commit: replay the parked generations in shard order. Cross-node
  // enqueue order is commutative (per-node queues, summed counters),
  // and per-node order is preserved — each node generated in exactly
  // one shard — so this equals the sequential core's state exactly.
  std::ptrdiff_t dense_delta = 0;
  for (unsigned s = 0; s < shards_eff_; ++s) {
    ShardLane& lane = lanes_[s];
    scan_.scan_visited += lane.visited;
    lane.visited = 0;
    dense_delta += lane.gen_dense_delta;
    lane.gen_dense_delta = 0;
    for (const GenEvent& g : lane.gen_events) {
      enqueue_source(g.node, g.dst, g.length, t);
    }
    lane.gen_events.clear();
  }
  gen_dense_.adjust_size(dense_delta);
}

// --- Arrivals ---------------------------------------------------------

void Simulator::phase_arrivals(Cycle t) {
  if (cfg_.core == SimCore::Dense) {
    const LinkId n = net_.num_net_links();
    scan_.scan_visited += n;
    for (LinkId l = 0; l < n; ++l) {
      if (net_.link(l).in_flight.empty()) continue;
      net_.process_arrivals(l, t,
                            [this](VcRef ref) { enroll_for_routing(ref); });
    }
    return;
  }
  scan_.scan_visited += net_.arrival_links().size();
  net_.arrival_links().for_each([&](std::size_t l) {
    net_.process_arrivals(static_cast<LinkId>(l), t,
                          [this](VcRef ref) { enroll_for_routing(ref); });
  });
}

void Simulator::phase_arrivals_sharded(Cycle t) {
  // The sequential core charges the pre-iteration set size; compute it
  // before the erase deltas land.
  scan_.scan_visited += net_.arrival_links().size();
  crew_->run([&](unsigned s) {
    ShardLane& lane = lanes_[s];
    net_.arrival_links().for_each_in_words(
        link_word_lo_[s], link_word_lo_[s + 1], [&](std::size_t l) {
          // All VcState/in-flight mutation is local to the link, and
          // each link has exactly one owner. New headers are parked in
          // the mailbox; concatenating the mailboxes in shard order
          // reproduces the sequential enrollment order, because
          // for_each visits links ascending and the shard ranges are
          // ascending and disjoint.
          const bool erased = net_.process_arrivals_sharded(
              static_cast<LinkId>(l), t, [&](VcRef ref) {
                VcState& v = net_.vc(ref);
                if (!v.pending_route) {
                  v.pending_route = true;
                  lane.enrolls.push_back(
                      {ref, v.msg,
                       static_cast<std::uint32_t>(net_.vc_flat_index(ref))});
                }
              });
          lane.arrival_delta -= erased ? 1 : 0;
        });
  });
  std::ptrdiff_t delta = 0;
  for (unsigned s = 0; s < shards_eff_; ++s) {
    ShardLane& lane = lanes_[s];
    delta += lane.arrival_delta;
    lane.arrival_delta = 0;
    pending_route_.insert(pending_route_.end(), lane.enrolls.begin(),
                          lane.enrolls.end());
    lane.enrolls.clear();
  }
  net_.adjust_arrival_links(delta);
}

void Simulator::enroll_for_routing(VcRef ref) {
  VcState& v = net_.vc(ref);
  if (!v.pending_route) {
    v.pending_route = true;
    pending_route_.push_back(
        {ref, v.msg, static_cast<std::uint32_t>(net_.vc_flat_index(ref))});
  }
}

// --- Ejection ---------------------------------------------------------

void Simulator::eject_node(NodeId node, Cycle t) {
  const unsigned ports = net_.params().eje_channels;
  for (unsigned p = 0; p < ports; ++p) {
    EjectPort& port = net_.eject_port(node, p);
    if (!port.busy()) continue;
    VcState& u = net_.vc(port.src);
    if (u.buffered() == 0) continue;
    Message& m = pool_[port.msg];
    ++u.out_count;
    --u.occupancy;
    u.last_activity = t;
    m.last_progress = t;
    // Ejected flits return credits like forwarded ones — except from an
    // injection VC, which sits outside the credit loop (a recovery
    // re-injection at the absorb node can eject straight from one when
    // that node happens to be the destination).
    if (!net_.is_injection(port.src.link)) {
      fc_on_drained(net_.vc_flat_index(port.src), t);
    }
    collector_.on_flits_ejected(t, 1);
    if (timeseries_) timeseries_->on_flits_ejected(t, 1);
    if (online_) online_->on_flits_ejected(1);
    if (spatial_) spatial_->on_ejected_flit(node);
    if (u.out_count == m.length) {
      net_.set_active(port.src, false);
      if (tracer_) {
        tracer_->record(t, obs::EventKind::VcRelease, port.src.link,
                        port.src.vc, 0, port.msg);
      }
      u.clear();
      const MsgId id = port.msg;
      port.msg = kNoMsg;
      port.src = VcRef{};
      deliver(id, t);
    }
  }
}

void Simulator::phase_eject(Cycle t) {
  if (cfg_.core == SimCore::Dense) {
    const NodeId nodes = topo_.num_nodes();
    scan_.scan_visited += nodes;
    for (NodeId node = 0; node < nodes; ++node) eject_node(node, t);
    return;
  }
  const unsigned ports = net_.params().eje_channels;
  scan_.scan_visited += eject_nodes_.size();
  eject_nodes_.for_each([&](std::size_t node) {
    eject_node(static_cast<NodeId>(node), t);
    bool any_busy = false;
    for (unsigned p = 0; p < ports; ++p) {
      any_busy |= net_.eject_port(static_cast<NodeId>(node), p).busy();
    }
    if (!any_busy) eject_nodes_.erase(node);
  });
}

void Simulator::eject_node_sharded(NodeId node, Cycle t, unsigned s) {
  ShardLane& lane = lanes_[s];
  const unsigned ports = net_.params().eje_channels;
  for (unsigned p = 0; p < ports; ++p) {
    EjectPort& port = net_.eject_port(node, p);
    if (!port.busy()) continue;
    VcState& u = net_.vc(port.src);
    if (u.buffered() == 0) continue;
    // The upstream VC may live on a link word another shard owns, but
    // no other shard touches it this phase: eject is the only writer of
    // VcStates here and each VC feeds at most one ejection port.
    Message& m = pool_[port.msg];
    ++u.out_count;
    --u.occupancy;
    u.last_activity = t;
    m.last_progress = t;
    // Per-flit counting hooks are additive over the cycle, so the lane
    // batches one count per shard (merged at the barrier) and the
    // spatial per-node counter — owned by this shard — lands inline.
    ++lane.ejected_flits;
    if (spatial_) spatial_->on_ejected_flit(node);
    EjectEvent ev;
    ev.src = port.src;
    ev.msg = port.msg;
    ev.credit = !net_.is_injection(port.src.link);
    if (ev.credit) {
      ev.slot = static_cast<std::uint32_t>(net_.vc_flat_index(port.src));
    }
    ev.completed = u.out_count == m.length;
    if (ev.completed) {
      u.clear();
      port.msg = kNoMsg;
      port.src = VcRef{};
    }
    // Only events with order-sensitive commit work are parked: credit
    // returns (when the scheme consumes them) and tail completions.
    if ((ev.credit && fc_tracks_) || ev.completed) lane.ejects.push_back(ev);
  }
}

void Simulator::phase_eject_sharded(Cycle t) {
  scan_.scan_visited += eject_nodes_.size();
  const unsigned ports = net_.params().eje_channels;
  crew_->run([&](unsigned s) {
    ShardLane& lane = lanes_[s];
    eject_nodes_.for_each_in_words(
        node_word_lo_[s], node_word_lo_[s + 1], [&](std::size_t node) {
          eject_node_sharded(static_cast<NodeId>(node), t, s);
          bool any_busy = false;
          for (unsigned p = 0; p < ports; ++p) {
            any_busy |=
                net_.eject_port(static_cast<NodeId>(node), p).busy();
          }
          if (!any_busy) {
            lane.eject_delta -= eject_nodes_.erase_unsized(node) ? 1 : 0;
          }
        });
  });
  // Replay in shard order == ascending node order == the sequential
  // core's event order: credit returns, then (for tails) tenancy
  // release and delivery. deliver() feeds the latency Welford
  // accumulator and recycles pool ids, both of which are
  // order-sensitive — the ordered replay is what keeps them exact. The
  // counting hooks (collector/timeseries/online flit counts) are
  // additive within the cycle, so they land as one batch per lane.
  std::ptrdiff_t delta = 0;
  for (unsigned s = 0; s < shards_eff_; ++s) {
    ShardLane& lane = lanes_[s];
    delta += lane.eject_delta;
    lane.eject_delta = 0;
    if (lane.ejected_flits != 0) {
      const auto count = static_cast<std::uint32_t>(lane.ejected_flits);
      lane.ejected_flits = 0;
      collector_.on_flits_ejected(t, count);
      if (timeseries_) timeseries_->on_flits_ejected(t, count);
      if (online_) online_->on_flits_ejected(count);
    }
    for (const EjectEvent& ev : lane.ejects) {
      if (ev.credit) fc_on_drained(ev.slot, t);
      if (ev.completed) {
        net_.set_active(ev.src, false);
        deliver(ev.msg, t);
      }
    }
    lane.ejects.clear();
  }
  eject_nodes_.adjust_size(delta);
}

// --- Sharded spatial sampling -----------------------------------------

void Simulator::sample_spatial_sharded(Cycle t) {
  (void)t;
  // Every sample is an element-local store into the sampled node's or
  // link's own spatial rows, and each element has exactly one owner —
  // no mailboxes needed, and per-element results match the serial
  // sweep bit for bit.
  const std::size_t nodes = topo_.num_nodes();
  const std::size_t links = net_.num_net_links();
  crew_->run([&](unsigned s) {
    const std::size_t n_lo = node_word_lo_[s] * 64;
    const std::size_t n_hi = std::min(node_word_lo_[s + 1] * 64, nodes);
    for (std::size_t node = n_lo; node < n_hi; ++node) {
      spatial_->on_queue_sample(static_cast<NodeId>(node),
                                queues_[node].size());
    }
    const std::size_t l_lo = link_word_lo_[s] * 64;
    const std::size_t l_hi = std::min(link_word_lo_[s + 1] * 64, links);
    for (std::size_t l = l_lo; l < l_hi; ++l) {
      spatial_->on_link_occupancy_sample(
          static_cast<LinkId>(l),
          static_cast<unsigned>(std::popcount(
              net_.link(static_cast<LinkId>(l)).active_vc_mask)));
    }
  });
}

// --- Routing ----------------------------------------------------------

bool Simulator::route_entry(std::size_t i, Cycle t, Cycle routing_delay,
                            bool detect_on, Cycle threshold) {
  const PendingRoute e = pending_route_[i];
  // Parked-entry check: if the enrollment snapshot still matches the
  // memo's tenancy key, this header already blocked; an equal epoch
  // sum proves every candidate mask is unchanged (still blocked) and
  // a detection bound in the future proves the FC3D guards cannot
  // pass either — the whole visit is a no-op, decided without
  // touching the VcState or Message record.
  if (memo_on_) {
    const RouteMemo& pm = route_memo_[e.slot];
    if (pm.msg == e.msg && t < pm.no_detect_before &&
        candidate_epoch_sum(vc_node_[e.slot], pm.cand_mask) == pm.epoch_sum) {
      ++scan_.route_memo_hits;
      return false;
    }
  }
  const VcRef ref = e.ref;
  VcState& v = net_.vc(ref);
  if (!v.pending_route) {
    // Stale entry (the worm was absorbed by deadlock recovery).
    pending_route_[i] = pending_route_.back();
    pending_route_.pop_back();
    return true;
  }
  if (t < v.header_arrival + routing_delay) return false;
  const std::size_t slot = e.slot;
  const NodeId node = vc_node_[slot];

  // Route lookup. The memo slot caches this VC's candidate list — a
  // pure function of (node, dst), node being fixed per slot, so an
  // entry even survives across tenancies and is keyed by dst alone.
  // When additionally no candidate link's free-VC mask changed since
  // the last failed selection (equal epoch sum), the header is
  // provably still blocked and selection is skipped as well. The
  // tenancy key memo->msg marks a header already observed blocked in
  // transit this tenancy: its retries touch neither the Message
  // record nor the destination check (both settled on first sight).
  RouteMemo* memo = nullptr;
  const routing::RouteResult* route = &route_buf_;
  std::uint64_t epoch_sum = 0;
  bool still_blocked = false;
  if (memo_on_ && route_memo_[slot].msg == v.msg) {
    memo = &route_memo_[slot];
    ++scan_.route_memo_hits;
    route = &memo->route;
    epoch_sum = candidate_epoch_sum(node, memo->cand_mask);
    still_blocked = epoch_sum == memo->epoch_sum;
  } else {
    Message& m = pool_[v.msg];
    if (node == m.dst) {
      m.at_destination = true;
      const int port = net_.find_free_eject_port(node);
      if (port < 0) return false;  // wait for an ejection channel
      net_.bind_eject(ref, node, static_cast<unsigned>(port), v.msg);
      eject_nodes_.insert(node);
      m.last_progress = t;
      v.pending_route = false;
      stamp_route_slot(slot, t);
      stamp_route_node(node, t);
      pending_route_[i] = pending_route_.back();
      pending_route_.pop_back();
      return true;
    }
    if (memo_on_) {
      memo = &route_memo_[slot];
      if (memo->dst == m.dst) {
        ++scan_.route_memo_hits;
      } else {
        route_at(node, m.dst, memo->route);
        memo->dst = m.dst;
        memo->epoch_sum = kNoEpoch;
        memo->cand_mask = candidate_channel_mask(memo->route);
      }
      route = &memo->route;
      epoch_sum = candidate_epoch_sum(node, memo->cand_mask);
      still_blocked = epoch_sum == memo->epoch_sum;
    } else {
      route_at(node, m.dst, route_buf_);
    }
  }
  if (probe_enabled_ && !v.probed) {
    v.probed = true;
    const auto cond =
        static_dispatch_on_
            ? core::evaluate_alo_row(fc_status_row(node),
                                     net_.params().num_vcs,
                                     route->useful_phys_mask)
            : core::evaluate_alo(fc_channel_status(), node,
                                 route->useful_phys_mask);
    collector_.on_probe(t, cond.all_useful_partially_free,
                        cond.any_useful_completely_free);
    if (tracer_) {
      const std::uint8_t rules = static_cast<std::uint8_t>(
          (cond.all_useful_partially_free ? 1u : 0u) |
          (cond.any_useful_completely_free ? 2u : 0u));
      tracer_->record(t, obs::EventKind::AloProbe, node, rules);
    }
  }
  std::optional<routing::Pick> pick;
  // VCT's whole-packet admission gates the claim itself; a failed
  // admission leaves the header blocked exactly like a failed
  // selection (and the memo's still-blocked proof stays exact: the
  // admission verdict is a constant of the tenancy).
  if (!still_blocked && fc_admit(v.msg_length, net_.params().buf_flits)) {
    if (static_dispatch_on_) {
      pick = selector_.select(*route, net_.free_mask_row(node),
                              alloc_rr_[node]);
    } else {
      const NodeFreeVcView view(net_, node);
      pick = selector_.select(*route, view, alloc_rr_[node]);
    }
  }
  if (!pick) {
    if (memo != nullptr) {
      if (!still_blocked) memo->epoch_sum = epoch_sum;
      if (memo->msg != v.msg) {
        memo->msg = v.msg;      // tenancy key; cleared on success/absorb
        memo->no_detect_before = 0;  // prior tenancy's bound is void
      }
    }
    // Blocked. FC3D-style deadlock presumption: the header has waited
    // at least `threshold` cycles, no flit of the message has moved,
    // and every virtual channel the routing function offers has shown
    // no flow-control activity for `threshold` cycles either — i.e.
    // the messages holding them are frozen too. Headers still inside
    // an injection channel hold no network resources and are exempt.
    // Every failed guard yields a monotone lower bound on the first
    // cycle detection could succeed (kForever for exempt headers);
    // the memo skips re-evaluation — and, with an unchanged epoch
    // sum, the whole visit — until that bound.
    if (!detect_on || net_.is_injection(ref.link)) {
      if (memo != nullptr) memo->no_detect_before = kForever;
    } else if (t - v.header_arrival < threshold) {
      if (memo != nullptr) {
        memo->no_detect_before = v.header_arrival + threshold;
      }
    } else if (memo == nullptr || t >= memo->no_detect_before) {
      const Message& m = pool_[v.msg];
      Cycle earliest = 0;
      if (t - m.last_progress < threshold) {
        if (memo != nullptr) {
          memo->no_detect_before = m.last_progress + threshold;
        }
      } else if (requested_channels_frozen(node, t, *route, &earliest)) {
        absorb_deadlocked(v.msg, t);
        pending_route_[i] = pending_route_.back();
        pending_route_.pop_back();
        return true;
      } else if (memo != nullptr) {
        memo->no_detect_before = earliest;
      }
    }
    // Retry next cycle. The stamp covers the memo/probed writes above:
    // a duplicate entry for this slot (stale enrollment followed by a
    // fresh one) must not replay a decision computed before them.
    stamp_route_slot(slot, t);
    return false;
  }
  ++alloc_rr_[node];
  const VcRef out{net_.net_link(node, pick->channel), pick->vc};
  net_.allocate_out_vc(ref, out, v.msg, t);
  if (memo != nullptr) memo->msg = kNoMsg;
  if (tracer_) {
    tracer_->record(t, obs::EventKind::VcAlloc, out.link, out.vc, 0, v.msg);
  }
  Message& m = pool_[v.msg];
  m.head = out;
  m.entered_network = true;
  m.last_progress = t;
  v.pending_route = false;
  stamp_route_slot(slot, t);
  stamp_route_node(node, t);
  pending_route_[i] = pending_route_.back();
  pending_route_.pop_back();
  return true;
}

void Simulator::phase_route(Cycle t) {
  const Cycle routing_delay = cfg_.routing_delay;
  const bool detect_on = cfg_.detection.enabled;
  const Cycle threshold = cfg_.detection.threshold;
  for (std::size_t i = 0; i < pending_route_.size();) {
    if (!route_entry(i, t, routing_delay, detect_on, threshold)) ++i;
  }
}

// --- Sharded routing: speculative evaluate + ordered commit -----------

void Simulator::route_evaluate_entry(std::size_t i, Cycle t,
                                     Cycle routing_delay, bool detect_on,
                                     Cycle threshold, ShardLane& lane) {
  const PendingRoute e = pending_route_[i];
  RouteDecision& d = route_dec_[i];
  d.evals = 0;
  d.hits = 0;
  d.fresh_route = false;
  d.write_epoch = false;
  d.tenancy_reset = false;
  d.write_ndb = false;
  d.probe = false;
  // Mirror of route_entry, step for step, but read-only w.r.t. shared
  // state: every store route_entry would perform is recorded as a
  // write intent in the decision instead. Divergence between the two
  // bodies is a correctness bug the lock-step suites catch.
  if (memo_on_) {
    const RouteMemo& pm = route_memo_[e.slot];
    if (pm.msg == e.msg && t < pm.no_detect_before &&
        candidate_epoch_sum(vc_node_[e.slot], pm.cand_mask) == pm.epoch_sum) {
      d.kind = RouteDecKind::Park;
      d.hits = 1;
      return;
    }
  }
  const VcRef ref = e.ref;
  const VcState& v = net_.vc(ref);
  if (!v.pending_route) {
    d.kind = RouteDecKind::Stale;
    return;
  }
  if (t < v.header_arrival + routing_delay) {
    d.kind = RouteDecKind::Wait;
    return;
  }
  const std::size_t slot = e.slot;
  const NodeId node = vc_node_[slot];

  const RouteMemo* memo = nullptr;
  const routing::RouteResult* route = &lane.route_scratch;
  std::uint64_t epoch_sum = 0;
  bool still_blocked = false;
  // memo->no_detect_before as the detection ladder would read it: the
  // sequential body zeroes it on tenancy reset before the ladder runs.
  Cycle ndb_now = 0;
  if (memo_on_ && route_memo_[slot].msg == v.msg) {
    memo = &route_memo_[slot];
    d.hits = 1;
    route = &memo->route;
    epoch_sum = candidate_epoch_sum(node, memo->cand_mask);
    still_blocked = epoch_sum == memo->epoch_sum;
    ndb_now = memo->no_detect_before;
  } else {
    const Message& m = pool_[v.msg];
    if (node == m.dst) {
      d.msg = v.msg;
      const int port = net_.find_free_eject_port(node);
      if (port < 0) {
        d.kind = RouteDecKind::AtDestWait;
        return;
      }
      d.kind = RouteDecKind::AtDestBind;
      d.port = port;
      return;
    }
    if (memo_on_) {
      memo = &route_memo_[slot];
      if (memo->dst == m.dst) {
        d.hits = 1;
        route = &memo->route;
        epoch_sum = candidate_epoch_sum(node, memo->cand_mask);
        still_blocked = epoch_sum == memo->epoch_sum;
      } else {
        d.evals = 1;
        route_lookup(node, m.dst, lane.route_scratch);
        d.fresh_route = true;
        d.dst = m.dst;
        d.cand_mask = candidate_channel_mask(lane.route_scratch);
        epoch_sum = candidate_epoch_sum(node, d.cand_mask);
        // The sequential body compares against the kNoEpoch it just
        // stored — real epoch sums never equal the sentinel.
        still_blocked = epoch_sum == kNoEpoch;
      }
    } else {
      d.evals = 1;
      route_lookup(node, m.dst, lane.route_scratch);
    }
  }
  if (probe_enabled_ && !v.probed) {
    d.probe = true;
    const auto cond =
        static_dispatch_on_
            ? core::evaluate_alo_row(
                  fc_status_row_into(node, lane.fc_row.data()),
                  net_.params().num_vcs, route->useful_phys_mask)
            : core::evaluate_alo(fc_channel_status(), node,
                                 route->useful_phys_mask);
    d.probe_a = cond.all_useful_partially_free;
    d.probe_b = cond.any_useful_completely_free;
  }
  std::optional<routing::Pick> pick;
  if (!still_blocked && fc_admit(v.msg_length, net_.params().buf_flits)) {
    if (static_dispatch_on_) {
      pick = selector_.select(*route, net_.free_mask_row(node),
                              alloc_rr_[node]);
    } else {
      const NodeFreeVcView view(net_, node);
      pick = selector_.select(*route, view, alloc_rr_[node]);
    }
  }
  if (!pick) {
    d.kind = RouteDecKind::Blocked;
    d.msg = v.msg;
    if (memo != nullptr) {
      if (!still_blocked) {
        d.write_epoch = true;
        d.epoch_sum = epoch_sum;
      }
      if (memo->msg != v.msg) d.tenancy_reset = true;
    }
    if (!detect_on || net_.is_injection(ref.link)) {
      if (memo != nullptr) {
        d.write_ndb = true;
        d.ndb = kForever;
      }
    } else if (t - v.header_arrival < threshold) {
      if (memo != nullptr) {
        d.write_ndb = true;
        d.ndb = v.header_arrival + threshold;
      }
    } else if (memo == nullptr || t >= (d.tenancy_reset ? 0 : ndb_now)) {
      const Message& m = pool_[v.msg];
      Cycle earliest = 0;
      if (t - m.last_progress < threshold) {
        if (memo != nullptr) {
          d.write_ndb = true;
          d.ndb = m.last_progress + threshold;
        }
      } else if (requested_channels_frozen(node, t, *route, &earliest)) {
        d.kind = RouteDecKind::Absorb;
      } else if (memo != nullptr) {
        d.write_ndb = true;
        d.ndb = earliest;
      }
    }
  } else {
    d.kind = RouteDecKind::Alloc;
    d.msg = v.msg;
    d.channel = pick->channel;
    d.vc = pick->vc;
  }
  // The scratch route survives only until this lane's next entry: keep
  // a copy when the commit must install it into the memo.
  if (d.fresh_route) d.route = lane.route_scratch;
}

void Simulator::route_evaluate(Cycle t) {
  const std::size_t n = pending_route_.size();
  route_dec_.resize(n);
  if (n == 0) return;
  const Cycle routing_delay = cfg_.routing_delay;
  const bool detect_on = cfg_.detection.enabled;
  const Cycle threshold = cfg_.detection.threshold;
  crew_->run([&](unsigned s) {
    const auto [lo, hi] = util::ShardCrew::slice(n, s, shards_eff_);
    ShardLane& lane = lanes_[s];
    for (std::size_t i = lo; i < hi; ++i) {
      route_evaluate_entry(i, t, routing_delay, detect_on, threshold, lane);
    }
  });
}

void Simulator::route_commit(Cycle t) {
  const Cycle routing_delay = cfg_.routing_delay;
  const bool detect_on = cfg_.detection.enabled;
  const Cycle threshold = cfg_.detection.threshold;
  for (std::size_t i = 0; i < pending_route_.size();) {
    const PendingRoute e = pending_route_[i];
    const RouteDecision& d = route_dec_[i];
    ++scan_.commit_decisions;
    // A decision is valid iff no earlier commit touched its inputs:
    // its slot (memo, VcState, worm teardown walking through it) or
    // its routing node (free masks, epochs, alloc_rr_, ejection ports,
    // out-VC activity, credit registers). Stamps are conservative —
    // a false positive just re-runs the sequential body inline.
    if (route_slot_stamp_[e.slot] == t ||
        route_node_stamp_[vc_node_[e.slot]] == t) {
      ++scan_.commit_conflicts;
      if (route_entry(i, t, routing_delay, detect_on, threshold)) {
        if (i + 1 != route_dec_.size()) {
          route_dec_[i] = std::move(route_dec_.back());
        }
        route_dec_.pop_back();
      } else {
        ++i;
      }
      continue;
    }
    bool removed = false;
    switch (d.kind) {
      case RouteDecKind::Park:
        scan_.route_memo_hits += d.hits;
        break;
      case RouteDecKind::Wait:
        break;
      case RouteDecKind::Stale:
        pending_route_[i] = pending_route_.back();
        pending_route_.pop_back();
        removed = true;
        break;
      case RouteDecKind::AtDestWait:
        pool_[d.msg].at_destination = true;
        break;
      case RouteDecKind::AtDestBind: {
        Message& m = pool_[d.msg];
        m.at_destination = true;
        const NodeId node = vc_node_[e.slot];
        net_.bind_eject(e.ref, node, static_cast<unsigned>(d.port), d.msg);
        eject_nodes_.insert(node);
        m.last_progress = t;
        net_.vc(e.ref).pending_route = false;
        stamp_route_slot(e.slot, t);
        stamp_route_node(node, t);
        pending_route_[i] = pending_route_.back();
        pending_route_.pop_back();
        removed = true;
        break;
      }
      case RouteDecKind::Blocked:
      case RouteDecKind::Absorb: {
        scan_.route_evals += d.evals;
        scan_.route_memo_hits += d.hits;
        if (memo_on_) {
          RouteMemo& memo = route_memo_[e.slot];
          if (d.fresh_route) {
            memo.route = d.route;
            memo.dst = d.dst;
            memo.epoch_sum = kNoEpoch;
            memo.cand_mask = d.cand_mask;
          }
          if (d.write_epoch) memo.epoch_sum = d.epoch_sum;
          if (d.tenancy_reset) {
            memo.msg = d.msg;
            memo.no_detect_before = 0;
          }
          if (d.write_ndb) memo.no_detect_before = d.ndb;
        }
        if (d.probe) {
          net_.vc(e.ref).probed = true;
          collector_.on_probe(t, d.probe_a, d.probe_b);
        }
        if (d.kind == RouteDecKind::Absorb) {
          // teardown_worm stamps every slot and source node the walk
          // releases, which is what invalidates later decisions that
          // saw the worm's channels as held.
          absorb_deadlocked(d.msg, t);
          pending_route_[i] = pending_route_.back();
          pending_route_.pop_back();
          removed = true;
        } else {
          stamp_route_slot(e.slot, t);
        }
        break;
      }
      case RouteDecKind::Alloc: {
        scan_.route_evals += d.evals;
        scan_.route_memo_hits += d.hits;
        const NodeId node = vc_node_[e.slot];
        if (memo_on_) {
          RouteMemo& memo = route_memo_[e.slot];
          if (d.fresh_route) {
            memo.route = d.route;
            memo.dst = d.dst;
            memo.epoch_sum = kNoEpoch;
            memo.cand_mask = d.cand_mask;
          }
          memo.msg = kNoMsg;
        }
        if (d.probe) {
          net_.vc(e.ref).probed = true;
          collector_.on_probe(t, d.probe_a, d.probe_b);
        }
        ++alloc_rr_[node];
        const VcRef out{net_.net_link(node, d.channel), d.vc};
        net_.allocate_out_vc(e.ref, out, d.msg, t);
        Message& m = pool_[d.msg];
        m.head = out;
        m.entered_network = true;
        m.last_progress = t;
        net_.vc(e.ref).pending_route = false;
        stamp_route_slot(e.slot, t);
        stamp_route_node(node, t);
        pending_route_[i] = pending_route_.back();
        pending_route_.pop_back();
        removed = true;
        break;
      }
    }
    if (removed) {
      if (i + 1 != route_dec_.size()) {
        route_dec_[i] = std::move(route_dec_.back());
      }
      route_dec_.pop_back();
    } else {
      ++i;
    }
  }
}

void Simulator::phase_route_sharded(Cycle t) {
  route_evaluate(t);
  route_commit(t);
}

// --- Transmission -----------------------------------------------------

void Simulator::transmit_link(LinkId l, Cycle t, unsigned vcs, unsigned cap) {
  Link& link = net_.link(l);
  if (link.active_vc_mask == 0) return;
  // Round-robin across this physical channel's allocated VCs: pick the
  // first whose upstream buffer has a flit and whose own buffer has
  // room. rr_next stays in [0, vcs), so the rotation is an
  // increment-with-wrap instead of a modulo.
  VcState* const row = net_.vc_row(l);
  const std::size_t slot_base = static_cast<std::size_t>(l) * vcs;
  std::uint8_t vcn = link.rr_next;
  for (unsigned j = 0; j < vcs; ++j, vcn = vcn + 1u == vcs ? 0 : vcn + 1u) {
    if (!(link.active_vc_mask & (1u << vcn))) continue;
    [[maybe_unused]] const VcRef ref{l, vcn};
    VcState& w = row[vcn];
    // Cheap structural checks first; the scheme veto runs last so it is
    // consulted only when a send is otherwise possible (every scheme's
    // may_send implies occupancy < cap, so the physical-space check is
    // a pure pre-filter, not a semantic change).
    if (w.occupancy >= cap) continue;
    if (!w.upstream.valid()) continue;
    VcState& u = net_.vc(w.upstream);
    if (u.buffered() == 0) continue;
    if (!fc_may_send(slot_base + vcn, w.occupancy, cap)) continue;
    assert(u.out_kind == VcState::OutKind::Vc && u.out == ref);
    const VcRef up = w.upstream;  // transmit may clear it when the tail leaves
    const MsgId msg = w.msg;
    const bool freed = net_.transmit_flit(up, w.msg_length, t);
    fc_on_sent(slot_base + vcn, t);
    if (!net_.is_injection(up.link)) {
      fc_on_drained(net_.vc_flat_index(up), t);
    }
    if (freed && tracer_) {
      tracer_->record(t, obs::EventKind::VcRelease, up.link, up.vc, 0, msg);
    }
    pool_[msg].last_progress = t;
    link.rr_next = vcn + 1u == vcs ? 0 : static_cast<std::uint8_t>(vcn + 1u);
    // Every upstream-side effect of this send (drained buffer, freed
    // tail, returned credit) lives on up.link: stamp it so a later
    // speculative decision that read that state pre-send re-runs.
    stamp_transmit_link(up.link, t);
    break;  // one flit per physical link per cycle
  }
}

void Simulator::phase_transmit(Cycle t) {
  const unsigned vcs = net_.params().num_vcs;
  const unsigned cap = net_.params().buf_flits;
  if (cfg_.core == SimCore::Dense) {
    const LinkId n = net_.num_net_links();
    scan_.scan_visited += n;
    for (LinkId l = 0; l < n; ++l) transmit_link(l, t, vcs, cap);
    return;
  }
  scan_.scan_visited += net_.tenant_links().size();
  net_.tenant_links().for_each([&](std::size_t l) {
    transmit_link(static_cast<LinkId>(l), t, vcs, cap);
  });
}

// --- Sharded transmission: speculative evaluate + ordered commit ------

int Simulator::evaluate_transmit_link(LinkId l, unsigned vcs, unsigned cap) {
  // Read-only twin of transmit_link's arbitration scan: same rotation,
  // same gate order, but the winning VC is returned instead of sent.
  const Link& link = net_.link(l);
  if (link.active_vc_mask == 0) return -1;
  const VcState* const row = net_.vc_row(l);
  const std::size_t slot_base = static_cast<std::size_t>(l) * vcs;
  std::uint8_t vcn = link.rr_next;
  for (unsigned j = 0; j < vcs; ++j, vcn = vcn + 1u == vcs ? 0 : vcn + 1u) {
    if (!(link.active_vc_mask & (1u << vcn))) continue;
    const VcState& w = row[vcn];
    if (w.occupancy >= cap) continue;
    if (!w.upstream.valid()) continue;
    const VcState& u = net_.vc(w.upstream);
    if (u.buffered() == 0) continue;
    if (!fc_may_send(slot_base + vcn, w.occupancy, cap)) continue;
    return vcn;
  }
  return -1;
}

void Simulator::transmit_evaluate(Cycle t) {
  (void)t;
  const unsigned vcs = net_.params().num_vcs;
  const unsigned cap = net_.params().buf_flits;
  scan_.scan_visited += net_.tenant_links().size();
  crew_->run([&](unsigned s) {
    ShardLane& lane = lanes_[s];
    net_.tenant_links().for_each_in_words(
        link_word_lo_[s], link_word_lo_[s + 1], [&](std::size_t l) {
          // A no-send verdict (-1) is recorded too: an earlier commit
          // can drain this link's upstream or return a credit, turning
          // no-send into send — the stamp check catches exactly that.
          lane.xmits.push_back(
              {static_cast<LinkId>(l),
               static_cast<std::int16_t>(evaluate_transmit_link(
                   static_cast<LinkId>(l), vcs, cap))});
        });
  });
}

void Simulator::transmit_commit(Cycle t) {
  const unsigned vcs = net_.params().num_vcs;
  const unsigned cap = net_.params().buf_flits;
  // Lanes in shard order = ascending link order = the sequential scan
  // order. A send's only cross-link side effects land on its upstream
  // link (drained buffer, freed tail, credit return), so one stamp per
  // send is the exact conflict footprint.
  for (unsigned s = 0; s < shards_eff_; ++s) {
    ShardLane& lane = lanes_[s];
    for (const TransmitDecision& d : lane.xmits) {
      ++scan_.commit_decisions;
      if (transmit_link_stamp_[d.link] == t) {
        ++scan_.commit_conflicts;
        transmit_link(d.link, t, vcs, cap);
        continue;
      }
      if (d.vcn < 0) continue;
      Link& link = net_.link(d.link);
      VcState& w = net_.vc_row(d.link)[d.vcn];
      const VcRef up = w.upstream;  // cleared when the tail leaves
      const MsgId msg = w.msg;
      assert(net_.vc(up).out_kind == VcState::OutKind::Vc &&
             net_.vc(up).out ==
                 (VcRef{d.link, static_cast<std::uint8_t>(d.vcn)}));
      net_.transmit_flit(up, w.msg_length, t);
      fc_on_sent(static_cast<std::size_t>(d.link) * vcs +
                     static_cast<std::size_t>(d.vcn),
                 t);
      if (!net_.is_injection(up.link)) {
        fc_on_drained(net_.vc_flat_index(up), t);
      }
      pool_[msg].last_progress = t;
      link.rr_next = static_cast<unsigned>(d.vcn) + 1u == vcs
                         ? 0
                         : static_cast<std::uint8_t>(d.vcn + 1);
      stamp_transmit_link(up.link, t);
    }
    lane.xmits.clear();
  }
}

void Simulator::phase_transmit_sharded(Cycle t) {
  transmit_evaluate(t);
  transmit_commit(t);
}

// --- Injection --------------------------------------------------------

void Simulator::start_injection(NodeId node, unsigned inj_channel, MsgId id,
                                Cycle t) {
  const VcRef ref{net_.inj_link(node, inj_channel), 0};
  VcState& v = net_.vc(ref);
  assert(v.free());
  v.clear();
  v.msg = id;
  v.msg_length = pool_[id].length;
  v.in_count = 1;  // the header flit is written immediately
  v.occupancy = 1;
  v.header_arrival = t;
  net_.set_active(ref, true);
  if (tracer_) {
    tracer_->record(t, obs::EventKind::VcAlloc, ref.link, ref.vc, 0, id);
  }

  Message& m = pool_[id];
  m.head = ref;
  m.in_network = true;
  m.at_destination = false;
  m.entered_network = false;
  m.last_progress = t;
  m.inject_time = t;
  enroll_for_routing(ref);
}

void Simulator::inject_node(NodeId node, Cycle t) {
  const unsigned inj = net_.params().inj_channels;
  const unsigned cap = net_.params().buf_flits;

  // 1. Stream body flits of messages already owning an injection
  //    channel (one flit per channel per cycle, space permitting).
  VcState* const inj_row = net_.inj_vc_row(node);
  for (unsigned i = 0; i < inj; ++i) {
    VcState& v = inj_row[i];
    if (v.free()) continue;
    if (v.in_count < v.msg_length && v.occupancy < cap) {
      ++v.in_count;
      ++v.occupancy;
      pool_[v.msg].last_progress = t;
    }
  }

  // 2. Start new tenancies on free injection channels: absorbed
  //    (deadlock-recovered) messages first — they were already in the
  //    network and bypass the injection limiter — then the source
  //    queue in FIFO order (the paper: queued messages have priority
  //    over newer ones).
  while (true) {
    const int ch = net_.find_free_inj_channel(node);
    if (ch < 0) break;

    if (recovery_.has_ready(node, t)) {
      const MsgId id = recovery_.pop(node);
      if (tracer_) {
        tracer_->record(t, obs::EventKind::RecoveryReinject, node, 0, 0, id);
      }
      start_injection(node, static_cast<unsigned>(ch), id, t);
      continue;
    }

    if (queues_[node].empty()) break;
    const PendingMessage& pm = queues_[node].front();

    core::InjectionRequest req;
    req.node = node;
    req.dst = pm.dst;
    req.length_flits = pm.length;
    req.route = &route_buf_;
    req.cycle = t;
    req.head_wait = t - head_since_[node];
    req.queue_len = queues_[node].size();
    // Gate decision. With static dispatch the limiter resolved to its
    // concrete type once per simulator: None and DRIL never read the
    // route, so the routing step is skipped entirely; ALO and LF route
    // through the LUT and evaluate on the contiguous free-mask row.
    // Custom limiters (LimiterFast::Virtual) take the interface path.
    bool allowed;
    if (static_dispatch_on_ && limiter_fast_ != LimiterFast::Virtual) {
      const std::uint8_t* row = fc_status_row(node);
      const unsigned vcs = net_.params().num_vcs;
      switch (limiter_fast_) {
        case LimiterFast::None:
          allowed = true;
          break;
        case LimiterFast::Alo:
          route_at(node, pm.dst, route_buf_);
          allowed = core::evaluate_alo_routed_row(row, vcs, route_buf_).allow();
          break;
        case LimiterFast::Lf:
          route_at(node, pm.dst, route_buf_);
          allowed = static_cast<core::LinearFunctionLimiter*>(limiter_.get())
                        ->allow_row(req, row, vcs);
          break;
        case LimiterFast::Dril:
          allowed = static_cast<core::DrilLimiter*>(limiter_.get())
                        ->allow_row(req, row, topo_.num_channels(), vcs);
          break;
        case LimiterFast::Virtual:
          allowed = false;  // unreachable: guarded above
          break;
      }
    } else {
      route_at(node, pm.dst, route_buf_);
      allowed = limiter_->allow(req, fc_channel_status());
    }
    if (!allowed) {
      if (tracer_) {
        tracer_->record(t, obs::EventKind::GateBlock, node,
                        static_cast<std::uint8_t>(cfg_.limiter.kind),
                        static_cast<std::uint16_t>(pm.length),
                        static_cast<std::uint32_t>(std::min<Cycle>(
                            req.head_wait,
                            std::numeric_limits<std::uint32_t>::max())));
      }
      break;  // FIFO: head blocks the rest
    }
    if (tracer_) {
      tracer_->record(t, obs::EventKind::GateAllow, node,
                      static_cast<std::uint8_t>(cfg_.limiter.kind),
                      static_cast<std::uint16_t>(pm.length),
                      static_cast<std::uint32_t>(std::min<Cycle>(
                          req.head_wait,
                          std::numeric_limits<std::uint32_t>::max())));
    }

    const MsgId id = pool_.allocate();
    Message& m = pool_[id];
    m.src = node;
    m.dst = pm.dst;
    m.length = pm.length;
    m.gen_time = pm.gen_time;
    m.measured = pm.measured;
    queues_[node].pop_front();
    --queue_total_;
    head_since_[node] = t;
    if (tracer_) {
      tracer_->record(t, obs::EventKind::QueueDequeue, node, 0,
                      static_cast<std::uint16_t>(m.length),
                      static_cast<std::uint32_t>(queues_[node].size()));
    }
    if (spatial_) spatial_->on_injected(node);

    activate(id);
    start_injection(node, static_cast<unsigned>(ch), id, t);
    collector_.on_injected(node, t, /*counts_fairness=*/true);
    if (timeseries_) timeseries_->on_injected(t);
    if (online_) online_->on_injected();
    limiter_->on_injected(node, t);
  }
}

void Simulator::phase_inject(Cycle t) {
  if (cfg_.core == SimCore::Dense) {
    const NodeId nodes = topo_.num_nodes();
    scan_.scan_visited += nodes;
    for (NodeId node = 0; node < nodes; ++node) inject_node(node, t);
    return;
  }
  const unsigned inj = net_.params().inj_channels;
  scan_.scan_visited += inject_nodes_.size();
  inject_nodes_.for_each([&](std::size_t n) {
    const auto node = static_cast<NodeId>(n);
    inject_node(node, t);
    // Retire once fully idle: no injection tenancy to stream, nothing
    // queued, nothing awaiting recovery re-injection. Any future event
    // (queue push, recovery enqueue) re-inserts the node.
    if (queues_[node].empty() && recovery_.pending(node) == 0) {
      const VcState* const inj_row = net_.inj_vc_row(node);
      bool any_occupied = false;
      for (unsigned i = 0; i < inj; ++i) {
        any_occupied |= !inj_row[i].free();
      }
      if (!any_occupied) inject_nodes_.erase(node);
    }
  });
}

// --- Deadlock handling ------------------------------------------------

bool Simulator::requested_channels_frozen(
    NodeId node, Cycle t, const routing::RouteResult& route,
    Cycle* earliest) const {
  const Cycle threshold = cfg_.detection.threshold;
  for (const auto& cand : route.candidates) {
    const LinkId out_link = net_.net_link(node, cand.channel);
    std::uint32_t vcs = cand.vc_mask;
    while (vcs) {
      const auto v = static_cast<std::uint8_t>(std::countr_zero(vcs));
      vcs &= vcs - 1;
      const VcState& w = net_.vc({out_link, v});
      // A free VC here would have made allocation succeed; a busy one
      // with recent flit movement means the holder is alive.
      if (t - w.last_activity < threshold) {
        *earliest = w.last_activity + threshold;
        return false;
      }
    }
  }
  return true;
}

void Simulator::teardown_worm(MsgId id, Cycle t) {
  Message& m = pool_[id];
  // The header's slot may carry this tenancy's blocked-memo key; end it.
  if (memo_on_) route_memo_[net_.vc_flat_index(m.head)].msg = kNoMsg;
  // Deadlocked worms are never eject-bound (at-destination headers are
  // exempt from detection), but fault surgery can hit one mid-delivery:
  // release the ejection port too.
  VcState& head_vc = net_.vc(m.head);
  if (head_vc.out_kind == VcState::OutKind::Eject) {
    EjectPort& port =
        net_.eject_port(net_.link(m.head.link).dst, head_vc.eject_port);
    assert(port.msg == id);
    port.msg = kNoMsg;
    port.src = VcRef{};
    // A freed ejection port changes what at-destination headers at this
    // node can bind this cycle.
    stamp_route_node(net_.link(m.head.link).dst, t);
  }
  VcRef cur = m.head;
  while (cur.valid()) {
    const VcRef up = net_.vc(cur).upstream;
    net_.absorb_drop(cur.link, id);
    net_.vc(cur).pending_route = false;  // lazily dropped from the list
    net_.force_free(cur);
    // The slot's buffered and in-flight flits just vanished: restore
    // its full credit stock and invalidate returns still on the wire.
    fc_on_reset(net_.vc_flat_index(cur));
    // The walk frees this slot (its own pending entry turns stale) and
    // flips free masks, epochs and credit registers of the source
    // node's status rows — invalidate decisions keyed on either.
    stamp_route_slot(net_.vc_flat_index(cur), t);
    if (!net_.is_injection(cur.link)) {
      stamp_route_node(net_.link(cur.link).src, t);
    }
    if (tracer_) {
      tracer_->record(t, obs::EventKind::VcRelease, cur.link, cur.vc, 0, id);
    }
    cur = up;
  }
  m.head = VcRef{};
  m.in_network = false;
  m.at_destination = false;
  m.entered_network = false;
  m.last_progress = t;
}

void Simulator::absorb_deadlocked(MsgId id, Cycle t) {
  Message& m = pool_[id];
  ++m.deadlock_detections;
  ++deadlock_events_;
  collector_.on_deadlock(t);
  if (timeseries_) timeseries_->on_deadlock(t);
  if (online_) online_->on_deadlock();

  const NodeId absorb_node = net_.link(m.head.link).dst;
  if (tracer_) {
    tracer_->record(t, obs::EventKind::DeadlockDetect, absorb_node, 0,
                    static_cast<std::uint16_t>(m.length), id);
  }
  teardown_worm(id, t);
  recovery_.enqueue(absorb_node, id,
                    t + cfg_.recovery.base_delay + m.length);
  inject_nodes_.insert(absorb_node);
}

// --- Fault injection & dynamic reconfiguration ------------------------

void Simulator::count_lost(bool measured) {
  ++lost_total_;
  collector_.on_lost(measured);
}

void Simulator::drop_active_message(MsgId id, Cycle t) {
  (void)t;
  count_lost(pool_[id].measured);
  deactivate(id);
  pool_.release(id);
}

bool Simulator::deliverable(NodeId from, NodeId dst) const {
  const topo::FaultMask& mask = faults_->mask();
  if (mask.node_dead(from) || mask.node_dead(dst)) return false;
  return from == dst || lut_->reachable(from, dst);
}

void Simulator::fault_absorb(MsgId id, Cycle t) {
  // Same software-recovery path as a deadlocked worm (the DBR reuse):
  // tear the worm down and re-enqueue it at the node its header had
  // reached, minus the deadlock accounting — this message is a fault
  // casualty, not a presumed deadlock. If the absorb node itself died
  // (its header was entering it), purge_undeliverable drops the entry.
  const NodeId absorb_node = net_.link(pool_[id].head.link).dst;
  teardown_worm(id, t);
  recovery_.enqueue(absorb_node, id,
                    t + cfg_.recovery.base_delay + pool_[id].length);
  inject_nodes_.insert(absorb_node);
}

void Simulator::kill_node_state(NodeId node, Cycle t) {
  // Source-queued messages die with their node.
  auto& q = queues_[node];
  for (const PendingMessage& pm : q) count_lost(pm.measured);
  queue_total_ -= q.size();
  q.clear();
  // Worms still inside the node's injection channels are torn down like
  // any displaced worm; their absorb node is the dead node itself, so
  // purge_undeliverable drops them right after.
  VcState* const inj_row = net_.inj_vc_row(node);
  const unsigned inj = net_.params().inj_channels;
  for (unsigned i = 0; i < inj; ++i) {
    if (!inj_row[i].free()) fault_absorb(inj_row[i].msg, t);
  }
}

void Simulator::sync_dead_links(Cycle t) {
  const topo::FaultMask& mask = faults_->mask();
  for (LinkId l = 0; l < net_.num_net_links(); ++l) {
    const Link& lk = net_.link(l);
    const bool dead = mask.link_dead(lk.src, lk.src_channel);
    if (dead == net_.link_dead(l)) continue;
    if (dead) {
      // Every worm crossing the dying link is displaced into recovery.
      // teardown clears the link's tenant bits (and drains its
      // in-flight pipeline) as it walks, so this loop terminates.
      while (lk.active_vc_mask != 0) {
        const auto vcn = static_cast<std::uint8_t>(
            std::countr_zero(static_cast<unsigned>(lk.active_vc_mask)));
        fault_absorb(net_.vc(VcRef{l, vcn}).msg, t);
      }
    }
    net_.set_link_dead(l, dead);
  }
}

void Simulator::purge_undeliverable(Cycle t) {
  // In-network worms whose destination died or became unreachable from
  // the node their header has reached. Swap-remove iteration: stay on
  // index i after a drop.
  for (std::size_t i = 0; i < active_.size();) {
    const MsgId id = active_[i];
    const Message& m = pool_[id];
    if (m.in_network) {
      const NodeId here = net_.link(m.head.link).dst;
      if (!deliverable(here, m.dst)) {
        teardown_worm(id, t);
        drop_active_message(id, t);
        continue;
      }
    }
    ++i;
  }
  // Recovery-queued messages whose re-injection node died or whose
  // destination is no longer reachable from it.
  purge_buf_.clear();
  recovery_.purge(
      [this](deadlock::NodeId node, deadlock::MsgId id) {
        return !deliverable(node, pool_[id].dst);
      },
      purge_buf_);
  for (const auto& [node, id] : purge_buf_) {
    (void)node;
    drop_active_message(id, t);
  }
  // Source-queued messages to dead or unreachable destinations (a dead
  // node's own queue was already cleared by kill_node_state).
  for (NodeId node = 0; node < topo_.num_nodes(); ++node) {
    auto& q = queues_[node];
    if (q.empty()) continue;
    bool head_changed = false;
    for (std::size_t qi = 0; qi < q.size();) {
      if (!deliverable(node, q[qi].dst)) {
        count_lost(q[qi].measured);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(qi));
        --queue_total_;
        head_changed |= qi == 0;
      } else {
        ++qi;
      }
    }
    if (head_changed && !q.empty()) head_since_[node] = t;
  }
}

void Simulator::apply_faults(Cycle t) {
  fault_buf_.clear();
  faults_->take_due(t, fault_buf_);
  assert(!fault_buf_.empty());
  for (const fault::FaultEvent& e : fault_buf_) {
    ++fault_events_;
    if (tracer_) {
      obs::EventKind kind = obs::EventKind::FaultLinkKill;
      switch (e.kind) {
        case fault::FaultKind::LinkKill:
          kind = obs::EventKind::FaultLinkKill;
          break;
        case fault::FaultKind::LinkRestore:
          kind = obs::EventKind::FaultLinkRestore;
          break;
        case fault::FaultKind::NodeKill:
          kind = obs::EventKind::FaultNodeKill;
          break;
        case fault::FaultKind::NodeRestore:
          kind = obs::EventKind::FaultNodeRestore;
          break;
      }
      tracer_->record(t, kind, e.node, e.channel);
    }
    if (e.kind == fault::FaultKind::NodeKill) kill_node_state(e.node, t);
  }
  sync_dead_links(t);
  // O(table) reconfiguration: retabulate the LUT on the alive graph,
  // bump every link epoch and flush the route memo, so every blocked
  // header re-routes against the new table next phase_route.
  lut_->rebuild(&faults_->mask());
  ++lut_rebuilds_;
  net_.bump_all_epochs();
  if (memo_on_) {
    for (RouteMemo& memo : route_memo_) memo = RouteMemo{};
  }
  if (tracer_) {
    tracer_->record(
        t, obs::EventKind::FaultLutRebuild, 0, 0,
        static_cast<std::uint16_t>(faults_->mask().dead_nodes()),
        static_cast<std::uint32_t>(faults_->mask().killed_links()));
  }
  purge_undeliverable(t);
}

// --- Delivery / bookkeeping -------------------------------------------

void Simulator::deliver(MsgId id, Cycle t) {
  const Message& m = pool_[id];
  collector_.on_delivered(m.gen_time, t, m.measured);
  if (timeseries_) {
    timeseries_->on_delivered(t, static_cast<double>(t - m.gen_time));
  }
  if (online_) online_->on_delivered(t - m.gen_time, m.measured);
  ++delivered_;
  deactivate(id);
  pool_.release(id);
}

void Simulator::activate(MsgId id) {
  pool_[id].active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(id);
}

void Simulator::deactivate(MsgId id) {
  const std::uint32_t pos = pool_[id].active_pos;
  const MsgId last = active_.back();
  active_[pos] = last;
  pool_[last].active_pos = pos;
  active_.pop_back();
}

// --- Coherence / conservation checks ----------------------------------

bool Simulator::check_active_sets(std::string* why) const {
  const auto fail = [why](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  const Network& net = net_;

  // Link sets are exact mirrors of link state in either core.
  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    const bool tenant = net.link(l).active_vc_mask != 0;
    if (tenant != net.tenant_links().contains(l)) {
      return fail("tenant_links incoherent at link " + std::to_string(l));
    }
    const bool arriving = !net.link(l).in_flight.empty();
    if (arriving != net.arrival_links().contains(l)) {
      return fail("arrival_links incoherent at link " + std::to_string(l));
    }
  }
  if (net.tenant_links().size() != net.tenant_links().recount() ||
      net.arrival_links().size() != net.arrival_links().recount()) {
    return fail("link set count drifted from bitmap population");
  }

  // Node sets cover every active node (they prune lazily, so they may
  // temporarily hold extra members — and the dense core never prunes).
  const unsigned ports = net.params().eje_channels;
  const unsigned inj = net.params().inj_channels;
  std::size_t queue_sum = 0;
  for (NodeId node = 0; node < topo_.num_nodes(); ++node) {
    queue_sum += queues_[node].size();
    bool busy = false;
    for (unsigned p = 0; p < ports; ++p) busy |= net.eject_port(node, p).busy();
    if (busy && !eject_nodes_.contains(node)) {
      return fail("busy ejection port not in eject set, node " +
                  std::to_string(node));
    }
    bool inject_active = !queues_[node].empty() || recovery_.pending(node) > 0;
    for (unsigned i = 0; i < inj; ++i) {
      inject_active |= !net.vc({net.inj_link(node, i), 0}).free();
    }
    if (inject_active && !inject_nodes_.contains(node)) {
      return fail("active node not in inject set, node " +
                  std::to_string(node));
    }
  }
  if (queue_sum != queue_total_) {
    return fail("incremental queue total drifted from recount");
  }
  if (eject_nodes_.size() != eject_nodes_.recount() ||
      inject_nodes_.size() != inject_nodes_.recount()) {
    return fail("node set count drifted from bitmap population");
  }

  // Generation subscriptions (active core): each node sits in exactly
  // the place gen_where_ says, and nowhere twice.
  if (cfg_.core == SimCore::Active && workload_) {
    std::size_t dense_n = 0, timed_n = 0;
    for (NodeId node = 0; node < topo_.num_nodes(); ++node) {
      const bool in_dense = gen_dense_.contains(node);
      if (in_dense != (gen_where_[node] == GenSub::EveryCycle)) {
        return fail("gen_dense_ disagrees with gen_where_ at node " +
                    std::to_string(node));
      }
      dense_n += in_dense;
      timed_n += gen_where_[node] == GenSub::Timed;
    }
    std::size_t heap_n = 0;
    for (const GenHeap& heap : gen_heaps_) heap_n += heap.size();
    if (timed_n != heap_n) {
      return fail("gen heaps hold duplicate or orphan subscriptions");
    }
    if (dense_n + timed_n > topo_.num_nodes()) {
      return fail("duplicate generation subscription");
    }
  }
  return true;
}

bool Simulator::check_conservation(std::string* why) const {
  const auto fail = [why](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  const std::uint64_t accounted =
      delivered_ + active_.size() + queue_total_ + lost_total_;
  if (generated_total_ != accounted) {
    return fail("message conservation violated: generated=" +
                std::to_string(generated_total_) + " delivered=" +
                std::to_string(delivered_) + " in-flight=" +
                std::to_string(active_.size()) + " queued=" +
                std::to_string(queue_total_) + " lost=" +
                std::to_string(lost_total_));
  }
  if (active_.empty() && net_.flits_in_network() != 0) {
    return fail("no active messages but " +
                std::to_string(net_.flits_in_network()) +
                " flits still in the network");
  }
  return true;
}

bool Simulator::check_fault_invariants(std::string* why) const {
  const auto fail = [why](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (!faults_) return true;
  const topo::FaultMask& mask = faults_->mask();

  for (LinkId l = 0; l < net_.num_net_links(); ++l) {
    const Link& lk = net_.link(l);
    const bool dead = mask.link_dead(lk.src, lk.src_channel);
    if (dead != net_.link_dead(l)) {
      return fail("dead-link field out of sync with fault mask at link " +
                  std::to_string(l));
    }
    if (!dead) continue;
    if (lk.active_vc_mask != 0) {
      return fail("dead link " + std::to_string(l) + " has tenant VCs");
    }
    if (!lk.in_flight.empty()) {
      return fail("dead link " + std::to_string(l) +
                  " still carries in-flight flits");
    }
    if (net_.free_vc_mask(lk.src, lk.src_channel) != 0) {
      return fail("dead link " + std::to_string(l) + " advertises free VCs");
    }
  }

  const unsigned ports = net_.params().eje_channels;
  const unsigned inj = net_.params().inj_channels;
  for (NodeId node = 0; node < topo_.num_nodes(); ++node) {
    if (!mask.node_dead(node)) continue;
    for (unsigned p = 0; p < ports; ++p) {
      if (net_.eject_port(node, p).busy()) {
        return fail("dead node " + std::to_string(node) +
                    " has a busy ejection port");
      }
    }
    const VcState* const inj_row = net_.inj_vc_row(node);
    for (unsigned i = 0; i < inj; ++i) {
      if (!inj_row[i].free()) {
        return fail("dead node " + std::to_string(node) +
                    " has an occupied injection channel");
      }
    }
    if (!queues_[node].empty()) {
      return fail("dead node " + std::to_string(node) +
                  " has a non-empty source queue");
    }
    if (recovery_.pending(node) != 0) {
      return fail("dead node " + std::to_string(node) +
                  " has pending recovery re-injections");
    }
  }

  // No live message is headed for a dead destination: it could never
  // drain and would wedge a resource forever.
  for (const MsgId id : active_) {
    const Message& m = pool_[id];
    if (mask.node_dead(m.dst)) {
      return fail("message " + std::to_string(id) +
                  " still live but targets dead node " +
                  std::to_string(m.dst));
    }
  }
  return true;
}

void Simulator::finish_spatial() {
  if (!spatial_) return;
  for (LinkId l = 0; l < net_.num_net_links(); ++l) {
    spatial_->set_link_flits(l, net_.link(l).flits_carried);
  }
}

// --- Run protocol -----------------------------------------------------

metrics::SimResult Simulator::run(const RunProtocol& protocol) {
  const auto wall_start = std::chrono::steady_clock::now();
  const CoreScanStats scan_start = scan_;
  collector_ = metrics::Collector(topo_.num_nodes(), cycle_ + protocol.warmup,
                                  cycle_ + protocol.warmup + protocol.measure);
  const Cycle measure_end = cycle_ + protocol.warmup + protocol.measure;
  const std::size_t queue_at_start = source_queue_total();
  while (cycle_ < measure_end) step();
  const std::size_t queue_at_measure_end = source_queue_total();

  // Lost messages can never drain; the identity accounts for them so a
  // run with mid-measurement faults still terminates promptly.
  const Cycle drain_end = measure_end + protocol.drain_max;
  while (cycle_ < drain_end &&
         collector_.measured_delivered() + collector_.measured_lost() <
             collector_.measured_generated()) {
    step();
  }

  metrics::SimResult r = collector_.finish(topo_.num_nodes());
  r.warmup_cycles = protocol.warmup;
  r.measure_cycles = protocol.measure;
  r.total_cycles = cycle_;
  r.fully_drained =
      collector_.measured_delivered() + collector_.measured_lost() >=
      collector_.measured_generated();
  r.fault_events = fault_events_;
  r.lut_rebuilds = lut_rebuilds_;
  // Heuristic saturation flag: source queues grew substantially during
  // the measurement window.
  r.saturated = queue_at_measure_end >
                queue_at_start + topo_.num_nodes() / 2 + 8;
  r.limiter = std::string(core::limiter_name(cfg_.limiter.kind));
  if (workload_) {
    r.pattern = std::string(
        traffic::pattern_name(workload_->config().pattern));
    r.offered_flits_per_node_cycle =
        workload_->config().offered_flits_per_node_cycle;
    r.message_length = workload_->config().length.fixed;
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const CoreScanStats window = scan_.since(scan_start);
  r.core = std::string(sim_core_name(cfg_.core));
  r.cycles_per_second =
      r.wall_seconds > 0.0
          ? static_cast<double>(window.cycles) / r.wall_seconds
          : 0.0;
  r.scan_skip_ratio = window.skipped_scan_ratio();
  r.avg_active_links = window.avg_active_links();
  r.avg_active_nodes = window.avg_active_nodes();
  r.route_memo_hit_rate = window.route_memo_hit_rate();
  r.commit_decisions = window.commit_decisions;
  r.commit_conflicts = window.commit_conflicts;
  return r;
}

}  // namespace wormsim::sim
