#include "sim/network.hpp"

#include <cassert>
#include <stdexcept>

namespace wormsim::sim {

Network::Network(const topo::KAryNCube& topo, const NetworkParams& params)
    : topo_(&topo), params_(params) {
  if (params.num_vcs < 1 || params.num_vcs > 8) {
    throw std::invalid_argument("num_vcs must be in [1, 8]");
  }
  if (params.buf_flits < 1 || params.buf_flits > 255) {
    throw std::invalid_argument("buf_flits must be in [1, 255]");
  }
  if (params.inj_channels < 1 || params.eje_channels < 1) {
    throw std::invalid_argument("need >= 1 injection and ejection channel");
  }
  if (params.link_delay < 1 || params.link_delay > InFlightQueue::kMaxDelay) {
    throw std::invalid_argument("link_delay out of range");
  }

  const NodeId nodes = topo.num_nodes();
  num_net_links_ = nodes * topo.num_channels();
  num_inj_links_ = nodes * params.inj_channels;
  net_vc_count_ = static_cast<std::size_t>(num_net_links_) * params.num_vcs;

  links_.resize(num_net_links_ + num_inj_links_);
  vcs_.resize(net_vc_count_ + num_inj_links_);
  eject_.resize(static_cast<std::size_t>(nodes) * params.eje_channels);
  free_mask_.assign(num_net_links_,
                    static_cast<std::uint8_t>((1u << params.num_vcs) - 1u));
  vc_field_.assign(num_net_links_,
                   static_cast<std::uint8_t>((1u << params.num_vcs) - 1u));
  link_epoch_.assign(num_net_links_, 0);
  tenant_links_.reset(num_net_links_);
  arrival_links_.reset(num_net_links_);

  for (NodeId node = 0; node < nodes; ++node) {
    for (unsigned c = 0; c < topo.num_channels(); ++c) {
      Link& l = links_[net_link(node, static_cast<ChannelId>(c))];
      l.src = node;
      l.src_channel = static_cast<ChannelId>(c);
      l.dst = topo.neighbor(node, static_cast<ChannelId>(c));
    }
    for (unsigned i = 0; i < params.inj_channels; ++i) {
      Link& l = links_[inj_link(node, i)];
      l.src = topo::kInvalidNode;
      l.dst = node;
    }
  }
}

std::uint32_t Network::free_vc_mask(NodeId node, ChannelId c) const {
  // A VC is free iff unallocated; tenancy implies the active bit. The
  // SoA mirror is kept equal to ~active_vc_mask & vc_field by
  // set_active, the sole writer of active_vc_mask.
  return free_mask_[net_link(node, c)];
}

int Network::find_free_eject_port(NodeId node) const noexcept {
  for (unsigned p = 0; p < params_.eje_channels; ++p) {
    if (!eject_port(node, p).busy()) return static_cast<int>(p);
  }
  return -1;
}

int Network::find_free_inj_channel(NodeId node) const noexcept {
  const VcState* row = inj_vc_row(node);
  for (unsigned i = 0; i < params_.inj_channels; ++i) {
    if (row[i].free()) return static_cast<int>(i);
  }
  return -1;
}

bool Network::quiescent() const noexcept {
  for (const auto& l : links_) {
    if (l.active_vc_mask != 0 || !l.in_flight.empty()) return false;
  }
  for (const auto& p : eject_) {
    if (p.busy()) return false;
  }
  return true;
}

std::uint64_t Network::flits_in_network() const noexcept {
  std::uint64_t total = 0;
  for (const auto& v : vcs_) {
    if (!v.free()) total += v.buffered();
  }
  for (const auto& l : links_) total += l.in_flight.size();
  return total;
}

void Network::allocate_out_vc(VcRef from, VcRef out, MsgId msg,
                              Cycle now) noexcept {
  VcState& upstream = vc(from);
  VcState& downstream = vc(out);
  assert(downstream.free() && downstream.occupancy == 0);
  downstream.clear();
  downstream.msg = msg;
  downstream.msg_length = upstream.msg_length;  // propagate down the worm
  downstream.upstream = from;
  downstream.last_activity = now;  // fresh tenancy counts as activity
  upstream.out_kind = VcState::OutKind::Vc;
  upstream.out = out;
  set_active(out, true);
}

void Network::bind_eject(VcRef from, NodeId node, unsigned port,
                         MsgId msg) noexcept {
  VcState& upstream = vc(from);
  EjectPort& p = eject_port(node, port);
  assert(!p.busy());
  p.msg = msg;
  p.src = from;
  upstream.out_kind = VcState::OutKind::Eject;
  upstream.eject_port = static_cast<std::uint8_t>(port);
}

unsigned Network::absorb_drop(LinkId link, MsgId msg) noexcept {
  Link& l = links_[link];
  const unsigned dropped = l.in_flight.drop_message(msg);
  if (l.in_flight.empty() && link < num_net_links_) {
    arrival_links_.erase(link);
  }
  return dropped;
}

void Network::force_free(VcRef ref) noexcept {
  VcState& v = vc(ref);
  if (v.out_kind == VcState::OutKind::Vc && vc(v.out).msg == v.msg) {
    vc(v.out).upstream = VcRef{};
  }
  set_active(ref, false);
  v.clear();
}

}  // namespace wormsim::sim
