// Message bookkeeping and pooled storage.
//
// Flits are not materialized individually: a virtual channel holds a
// contiguous run of one message's flits, so per-VC in/out counters plus
// the message length describe every flit position exactly (see
// channel.hpp). The Message records end-to-end identity, timing and the
// worm's most-downstream VC, from which the whole occupied chain is
// reachable via per-VC upstream references.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace wormsim::sim {

struct Message {
  NodeId src = 0;        // original generating node (stable across recovery)
  NodeId dst = 0;
  std::uint32_t length = 0;  // flits, header and tail included

  Cycle gen_time = 0;      // generation (enqueue at source) cycle
  Cycle inject_time = 0;   // cycle the header entered an injection channel

  /// Most-downstream VC allocated to this worm; invalid while the
  /// message sits in a source/recovery queue.
  VcRef head{};

  /// Cycle any flit of this message last moved (injected, forwarded or
  /// ejected) — drives FC3D-style inactivity detection.
  Cycle last_progress = 0;

  std::uint16_t deadlock_detections = 0;  // times absorbed by recovery
  bool measured = false;    // generated inside the measurement window
  bool in_network = false;  // holds at least one VC
  /// Header is at (or bound to an ejection port of) the destination;
  /// such messages always drain and are exempt from deadlock detection.
  bool at_destination = false;
  /// Header has left the injection channel into a network VC at least
  /// once this tenancy; only then can the message participate in a
  /// network deadlock.
  bool entered_network = false;

  std::uint32_t active_pos = 0;  // index in the simulator's active list
};

/// Pool with free-list reuse; MsgId is the slot index. Slots are never
/// reclaimed while referenced by any VC, queue or active list.
class MessagePool {
 public:
  MsgId allocate() {
    if (!free_.empty()) {
      const MsgId id = free_.back();
      free_.pop_back();
      slots_[id] = Message{};
      return id;
    }
    slots_.emplace_back();
    return static_cast<MsgId>(slots_.size() - 1);
  }

  void release(MsgId id) { free_.push_back(id); }

  Message& operator[](MsgId id) noexcept { return slots_[id]; }
  const Message& operator[](MsgId id) const noexcept { return slots_[id]; }

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t live() const noexcept { return slots_.size() - free_.size(); }

 private:
  std::vector<Message> slots_;
  std::vector<MsgId> free_;
};

}  // namespace wormsim::sim
