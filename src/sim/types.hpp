// Shared simulator identifiers.
#pragma once

#include <cstdint>

#include "topology/kary_ncube.hpp"

namespace wormsim::sim {

using topo::ChannelId;
using topo::NodeId;
using Cycle = std::uint64_t;
using MsgId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr MsgId kNoMsg = ~MsgId{0};
inline constexpr LinkId kNoLink = ~LinkId{0};

/// Reference to one virtual-channel buffer anywhere in the system
/// (network input VC or injection VC; the link index space distinguishes
/// them — see Network).
struct VcRef {
  LinkId link = kNoLink;
  std::uint8_t vc = 0;

  bool valid() const noexcept { return link != kNoLink; }
  friend bool operator==(const VcRef& a, const VcRef& b) noexcept {
    return a.link == b.link && a.vc == b.vc;
  }
};

}  // namespace wormsim::sim
