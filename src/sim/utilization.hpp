// Physical-link utilization analysis: how evenly a workload loads the
// network, where the hot links are, and per-dimension balance.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace wormsim::sim {

struct UtilizationSummary {
  double mean = 0.0;  // flits per link per cycle, network links only
  double max = 0.0;
  double min = 0.0;
  /// max / mean; 1.0 = perfectly balanced.
  double imbalance = 0.0;
  /// Mean utilization per topology dimension (both directions pooled).
  std::vector<double> per_dim;
  /// Fraction of network links that carried no flit at all.
  double idle_fraction = 0.0;
};

/// Summarize flit counters accumulated over `cycles` cycles of
/// simulation (counters are cumulative; pass the cycle span they cover).
UtilizationSummary summarize_utilization(const Network& net,
                                         std::uint64_t cycles);

/// Reset all link flit counters (e.g. after warm-up).
void reset_utilization(Network& net);

}  // namespace wormsim::sim
