#include "sim/flow_control.hpp"

#include <stdexcept>

#include "sim/network.hpp"

namespace wormsim::sim {

FlowControl parse_flow_control(std::string_view name) {
  if (name == "wormhole") return FlowControl::Wormhole;
  if (name == "credit") return FlowControl::Credit;
  if (name == "vct") return FlowControl::Vct;
  throw std::invalid_argument(
      "unknown flow-control scheme (wormhole|credit|vct): " +
      std::string(name));
}

std::string_view flow_control_name(FlowControl scheme) noexcept {
  switch (scheme) {
    case FlowControl::Wormhole: return "wormhole";
    case FlowControl::Credit: return "credit";
    case FlowControl::Vct: return "vct";
  }
  return "unknown";
}

namespace {

bool fail(std::string* why, const std::string& msg) {
  if (why) *why = msg;
  return false;
}

/// Buffer sanity every scheme guarantees: no VC holds more flits than
/// its capacity, counters never run backwards, and the credit-tracked
/// occupancy covers everything actually buffered.
bool check_buffers(const Network& net, std::string* why) {
  const unsigned cap = net.params().buf_flits;
  const unsigned vcs = net.params().num_vcs;
  for (LinkId l = 0; l < net.num_net_links(); ++l) {
    for (unsigned v = 0; v < vcs; ++v) {
      const VcState& w = net.vc({l, static_cast<std::uint8_t>(v)});
      if (w.occupancy > cap) {
        return fail(why, "buffer overflow: occupancy " +
                             std::to_string(w.occupancy) + " > cap " +
                             std::to_string(cap) + " at link " +
                             std::to_string(l) + " vc " + std::to_string(v));
      }
      if (w.in_count < w.out_count) {
        return fail(why, "buffer underflow: out_count " +
                             std::to_string(w.out_count) + " > in_count " +
                             std::to_string(w.in_count) + " at link " +
                             std::to_string(l) + " vc " + std::to_string(v));
      }
      if (w.buffered() > w.occupancy) {
        return fail(why, "occupancy undercounts buffered flits at link " +
                             std::to_string(l) + " vc " + std::to_string(v));
      }
    }
  }
  return true;
}

}  // namespace

bool FlowControlScheme::check(const Network& net, std::string* why) const {
  return check_buffers(net, why);
}

bool CreditFlowControl::check(const Network& net, std::string* why) const {
  if (!check_buffers(net, why)) return false;
  const unsigned cap = net.params().buf_flits;
  const unsigned vcs = net.params().num_vcs;
  // Credit conservation per network slot: credits consumed equal the
  // flits the downstream buffer still accounts for (buffered plus in
  // flight toward it) plus the returns currently on the wire for the
  // live generation.
  const std::size_t net_slots =
      static_cast<std::size_t>(net.num_net_links()) * vcs;
  std::vector<std::uint32_t> pending(net_slots, 0);
  for (const PendingReturn& r : returns_) {
    if (r.slot < net_slots && gen_[r.slot] == r.gen) ++pending[r.slot];
  }
  for (std::size_t slot = 0; slot < net_slots; ++slot) {
    const auto l = static_cast<LinkId>(slot / vcs);
    const auto v = static_cast<std::uint8_t>(slot % vcs);
    const VcState& w = net.vc({l, v});
    if (in_use_[slot] > cap) {
      return fail(why, "credit overdraft: in_use " +
                           std::to_string(in_use_[slot]) + " > cap " +
                           std::to_string(cap) + " at link " +
                           std::to_string(l) + " vc " + std::to_string(v));
    }
    const std::uint32_t expected = w.occupancy + pending[slot];
    if (in_use_[slot] != expected) {
      return fail(why, "credit conservation violated at link " +
                           std::to_string(l) + " vc " + std::to_string(v) +
                           ": in_use " + std::to_string(in_use_[slot]) +
                           " != occupancy " + std::to_string(w.occupancy) +
                           " + pending returns " +
                           std::to_string(pending[slot]));
    }
  }
  // Injection buffers live outside the credit loop.
  for (std::size_t slot = net_slots; slot < in_use_.size(); ++slot) {
    if (in_use_[slot] != 0) {
      return fail(why, "injection slot " + std::to_string(slot) +
                           " acquired credits");
    }
  }
  return true;
}

std::unique_ptr<FlowControlScheme> make_flow_control(
    const FlowControlConfig& cfg, std::size_t num_slots) {
  switch (cfg.scheme) {
    case FlowControl::Wormhole:
      return std::make_unique<WormholeFlowControl>();
    case FlowControl::Credit:
      return std::make_unique<CreditFlowControl>(num_slots,
                                                 cfg.credit_return_delay);
    case FlowControl::Vct:
      return std::make_unique<VctFlowControl>();
  }
  throw std::invalid_argument("invalid flow-control scheme");
}

}  // namespace wormsim::sim
