// Pluggable flow-control schemes: the policy that decides when a flit
// may advance into a downstream VC buffer and when a header may claim
// one, factored out of the Simulator cycle loop.
//
// Three schemes:
//   * Wormhole (default) — the paper's model: the sender tracks the
//     receiver's buffer through an ideal zero-latency credit loop, so
//     the gate is simply occupancy < capacity. Byte-identical to the
//     pre-interface simulator under every core / fast-path combination.
//   * Credit — explicit credit-based backpressure (the Graphite
//     buffer-management-message model): the sender holds one credit per
//     downstream buffer slot, consumes one per flit sent, and gets it
//     back `credit_return_delay` cycles after the flit leaves the
//     downstream buffer. With delay 0 the credit loop is ideal and the
//     scheme degenerates to exactly Wormhole. Injection-channel buffers
//     are node-local (no wire to cross) and stay outside the credit
//     loop.
//   * Vct — virtual cut-through: a header may claim a downstream VC
//     only if the buffer can hold the entire packet, so a blocked
//     packet always fits where it stops instead of stalling mid-link.
//     Requires buf_flits >= the longest message (config::validate
//     enforces this for harness runs).
//
// Dispatch mirrors the limiter fast path (see DESIGN.md): the Simulator
// resolves the scheme once at construction. The dense core always runs
// the virtual interface; the active core short-circuits Wormhole/Vct to
// the inline occupancy test and calls Credit non-virtually, keeping the
// hot path free of per-flit virtual calls.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/limiter.hpp"
#include "sim/types.hpp"

namespace wormsim::sim {

class Network;

enum class FlowControl : std::uint8_t { Wormhole, Credit, Vct };

FlowControl parse_flow_control(std::string_view name);
std::string_view flow_control_name(FlowControl scheme) noexcept;

struct FlowControlConfig {
  FlowControl scheme = FlowControl::Wormhole;
  /// Credit only: cycles between a flit leaving a downstream buffer and
  /// the freed slot becoming visible to the sender again (the return
  /// wire latency). 0 = ideal credit loop = Wormhole behavior.
  unsigned credit_return_delay = 2;
};

/// One scheme instance per Simulator, sized to its VC-slot table (the
/// Network's flat per-VC index space: net-link VCs first, then one slot
/// per injection link).
class FlowControlScheme {
 public:
  virtual ~FlowControlScheme() = default;

  virtual FlowControl kind() const noexcept = 0;
  std::string_view name() const noexcept { return flow_control_name(kind()); }

  /// Whether the scheme consumes the per-flit event stream (on_flit_*,
  /// on_slot_reset, begin_cycle). Resolved once by the Simulator at
  /// construction: schemes that return false (the stateless gates —
  /// Wormhole, Vct) never pay a virtual call on the per-flit paths,
  /// only on the send/admit decisions themselves.
  virtual bool tracks_flits() const noexcept { return false; }

  /// Whether may_send can veto a send the physical occupancy check
  /// already allows. The transmit loop pre-filters on occupancy < cap
  /// (a flit can never enter a full buffer under any scheme), so a
  /// scheme whose gate is exactly that test — Wormhole, Vct — returns
  /// false here and is never consulted per send. Resolved once by the
  /// Simulator, like tracks_flits. Default true: a custom scheme that
  /// overrides may_send is consulted unless it opts out.
  virtual bool veto_sends() const noexcept { return true; }

  /// Whether admit can reject a header's claim on a free VC. Only Vct
  /// does among the shipped schemes; Wormhole and Credit admit
  /// unconditionally and skip the per-claim virtual call. Resolved
  /// once, same contract as veto_sends.
  virtual bool gates_admission() const noexcept { return true; }

  /// Start-of-cycle housekeeping (credit returns coming due).
  virtual void begin_cycle(Cycle /*now*/) {}

  /// May one more flit be sent toward VC slot `slot`, whose buffer
  /// currently shows `occupancy` of `cap` flits? `occupancy` already
  /// counts in-flight flits. The simulator pre-filters on physical
  /// space, so this is only consulted when occupancy < cap and a flit
  /// is actually ready to move — a scheme may veto a physically
  /// possible send (credit debt), never permit an impossible one.
  virtual bool may_send(std::size_t slot, std::uint8_t occupancy,
                        unsigned cap) const = 0;

  /// May a header claim a free downstream VC for a `msg_length`-flit
  /// packet? (VCT's whole-packet admission; a free VC's buffer is
  /// always empty, so `cap` is exactly the space available.)
  virtual bool admit(std::uint32_t msg_length, unsigned cap) const = 0;

  /// A flit left for VC slot `slot` (it now counts in the slot's
  /// occupancy).
  virtual void on_flit_sent(std::size_t /*slot*/, Cycle /*now*/) {}

  /// A flit left VC slot `slot`'s buffer (forwarded downstream or
  /// ejected) — the event that eventually returns a credit.
  virtual void on_flit_drained(std::size_t /*slot*/, Cycle /*now*/) {}

  /// VC slot `slot` was forcibly emptied (deadlock absorption or fault
  /// surgery tore the tenant down, dropping buffered and in-flight
  /// flits alike).
  virtual void on_slot_reset(std::size_t /*slot*/) {}

  /// Scheme-internal invariants against the network's ground truth
  /// (same reporting convention as Simulator::check_active_sets).
  virtual bool check(const Network& net, std::string* why) const;

  /// Total buffer-management messages (credit returns) ever sent.
  virtual std::uint64_t credit_messages() const noexcept { return 0; }
};

class WormholeFlowControl final : public FlowControlScheme {
 public:
  FlowControl kind() const noexcept override { return FlowControl::Wormhole; }
  bool veto_sends() const noexcept override { return false; }
  bool gates_admission() const noexcept override { return false; }
  bool may_send(std::size_t, std::uint8_t occupancy,
                unsigned cap) const override {
    return occupancy < cap;
  }
  bool admit(std::uint32_t, unsigned) const override { return true; }
};

class CreditFlowControl final : public FlowControlScheme {
 public:
  CreditFlowControl(std::size_t num_slots, unsigned return_delay)
      : delay_(return_delay), in_use_(num_slots, 0), gen_(num_slots, 0) {}

  FlowControl kind() const noexcept override { return FlowControl::Credit; }

  bool tracks_flits() const noexcept override { return true; }
  bool veto_sends() const noexcept override { return true; }
  bool gates_admission() const noexcept override { return false; }

  void begin_cycle(Cycle now) override {
    while (!returns_.empty() && returns_.front().due <= now) {
      const PendingReturn r = returns_.front();
      returns_.pop_front();
      // A teardown since the flit drained bumped the slot's generation
      // and already restored every credit; drop the stale return.
      if (gen_[r.slot] == r.gen) --in_use_[r.slot];
    }
  }

  bool may_send(std::size_t slot, std::uint8_t, unsigned cap) const override {
    return in_use_[slot] < cap;
  }
  bool admit(std::uint32_t, unsigned) const override { return true; }

  void on_flit_sent(std::size_t slot, Cycle) override { ++in_use_[slot]; }

  void on_flit_drained(std::size_t slot, Cycle now) override {
    ++credit_messages_;
    if (delay_ == 0) {
      --in_use_[slot];
    } else {
      // Constant delay keeps the queue sorted by construction.
      returns_.push_back({now + delay_, slot, gen_[slot]});
    }
  }

  void on_slot_reset(std::size_t slot) override {
    in_use_[slot] = 0;
    ++gen_[slot];
  }

  std::uint16_t in_use(std::size_t slot) const noexcept {
    return in_use_[slot];
  }

  /// Copy `chans` free-mask bytes from `raw` into `out`, clearing each
  /// VC bit whose slot (base `slot_base`, `vcs` per channel) still has
  /// outstanding credits — a VC is only *completely* free to the
  /// limiter's status register once its credits all came home.
  void filter_free_row(const std::uint8_t* raw, std::size_t slot_base,
                       unsigned chans, unsigned vcs,
                       std::uint8_t* out) const noexcept {
    for (unsigned c = 0; c < chans; ++c) {
      std::uint8_t m = raw[c];
      const std::size_t base = slot_base + static_cast<std::size_t>(c) * vcs;
      for (unsigned v = 0; v < vcs; ++v) {
        if (in_use_[base + v] != 0) {
          m = static_cast<std::uint8_t>(m & ~(1u << v));
        }
      }
      out[c] = m;
    }
  }

  bool check(const Network& net, std::string* why) const override;

  std::uint64_t credit_messages() const noexcept override {
    return credit_messages_;
  }

 private:
  struct PendingReturn {
    Cycle due = 0;
    std::size_t slot = 0;
    std::uint32_t gen = 0;
  };

  unsigned delay_;
  /// Credits outstanding per slot: flits sent toward it minus returns
  /// received. >= the slot's occupancy at all times (returns lag the
  /// drain), which keeps transmit_flit's occupancy < cap assert safe.
  std::vector<std::uint16_t> in_use_;
  /// Bumped on slot reset so in-flight returns from a torn-down tenancy
  /// cannot underflow the fresh credit count.
  std::vector<std::uint32_t> gen_;
  std::deque<PendingReturn> returns_;  // sorted: constant delay, FIFO drains
  std::uint64_t credit_messages_ = 0;
};

class VctFlowControl final : public FlowControlScheme {
 public:
  FlowControl kind() const noexcept override { return FlowControl::Vct; }
  bool veto_sends() const noexcept override { return false; }
  bool gates_admission() const noexcept override { return true; }
  bool may_send(std::size_t, std::uint8_t occupancy,
                unsigned cap) const override {
    return occupancy < cap;
  }
  bool admit(std::uint32_t msg_length, unsigned cap) const override {
    return msg_length <= cap;
  }
};

/// Per-node ChannelStatus view that a Credit scheme substitutes for the
/// raw Network register: VCs with outstanding credits read as busy.
class CreditChannelStatus final : public core::ChannelStatus {
 public:
  CreditChannelStatus() = default;
  void bind(const core::ChannelStatus& base,
            const CreditFlowControl& credit) noexcept {
    base_ = &base;
    credit_ = &credit;
  }
  unsigned num_phys_channels() const override {
    return base_->num_phys_channels();
  }
  unsigned num_vcs() const override { return base_->num_vcs(); }
  std::uint32_t free_vc_mask(core::NodeId node,
                             core::ChannelId c) const override {
    std::uint32_t m = base_->free_vc_mask(node, c);
    const unsigned vcs = base_->num_vcs();
    const std::size_t base =
        (static_cast<std::size_t>(node) * base_->num_phys_channels() +
         static_cast<std::size_t>(c)) *
        vcs;
    for (unsigned v = 0; v < vcs; ++v) {
      if (credit_->in_use(base + v) != 0) m &= ~(1u << v);
    }
    return m;
  }

 private:
  const core::ChannelStatus* base_ = nullptr;
  const CreditFlowControl* credit_ = nullptr;
};

std::unique_ptr<FlowControlScheme> make_flow_control(
    const FlowControlConfig& cfg, std::size_t num_slots);

}  // namespace wormsim::sim
