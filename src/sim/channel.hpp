// Virtual-channel buffers, physical links and their in-flight pipelines.
//
// Layout: every physical channel of the network is a unidirectional
// Link; its VC buffers physically sit at the receiving router's input,
// while allocation status is what the sending router's "virtual channel
// status register" shows (the two are the same state — exactly as in
// hardware, where the sender tracks the receiver's buffers via credits).
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace wormsim::sim {

/// State of one virtual-channel buffer (one tenancy = one message from
/// header acceptance to tail departure).
struct VcState {
  MsgId msg = kNoMsg;

  /// Length of the tenant message in flits, mirrored here at tenancy
  /// creation (start of injection / VC allocation) so the per-cycle
  /// streaming loops need no Message-pool lookup for tail detection.
  std::uint32_t msg_length = 0;

  /// Flits of the tenant that have entered / left this buffer. The flit
  /// at the head of the buffer has message-relative index `out_count`;
  /// the buffer currently holds `in_count - out_count` flits; the header
  /// is at the head iff out_count == 0 and the buffer is non-empty.
  std::uint32_t in_count = 0;
  std::uint32_t out_count = 0;

  /// Buffered flits plus flits in flight toward this buffer (the
  /// credit-tracked occupancy the sender checks).
  std::uint8_t occupancy = 0;

  enum class OutKind : std::uint8_t { None, Vc, Eject };
  OutKind out_kind = OutKind::None;
  VcRef out{};                 // downstream VC (OutKind::Vc)
  std::uint8_t eject_port = 0; // bound port (OutKind::Eject)

  /// Feeder of this buffer: the upstream VC the worm occupies, or
  /// invalid when source-fed (injection VC) or fully drained upstream.
  VcRef upstream{};

  /// Cycle the header flit entered this buffer; routable from
  /// header_arrival + routing_delay onwards.
  Cycle header_arrival = 0;

  /// Cycle a flit last entered or left this buffer (flow-control
  /// activity, the signal FC3D-style deadlock detection watches).
  Cycle last_activity = 0;

  bool pending_route = false;  // enrolled in the simulator's route list
  bool probed = false;         // Figure-2 probe taken for this tenancy

  std::uint32_t buffered() const noexcept { return in_count - out_count; }
  bool free() const noexcept { return msg == kNoMsg; }
  bool header_at_head() const noexcept {
    return msg != kNoMsg && out_count == 0 && in_count > 0;
  }

  void clear() noexcept { *this = VcState{}; }
};

/// Fixed-delay link pipeline: at most one flit enters per cycle, so a
/// ring of `delay + 1` entries always suffices.
class InFlightQueue {
 public:
  static constexpr unsigned kMaxDelay = 7;

  struct Entry {
    Cycle arrival = 0;
    std::uint8_t vc = 0;
    MsgId msg = kNoMsg;
  };

  bool empty() const noexcept { return count_ == 0; }
  unsigned size() const noexcept { return count_; }

  void push(Cycle arrival, std::uint8_t vc, MsgId msg) noexcept {
    assert(count_ < kMaxDelay + 1);
    ring_[(head_ + count_) % (kMaxDelay + 1)] = Entry{arrival, vc, msg};
    ++count_;
  }

  const Entry& front() const noexcept {
    assert(count_ > 0);
    return ring_[head_];
  }

  void pop() noexcept {
    assert(count_ > 0);
    head_ = (head_ + 1) % (kMaxDelay + 1);
    --count_;
  }

  /// Drop every in-flight flit belonging to `msg` (deadlock-recovery
  /// absorption); returns the number removed.
  unsigned drop_message(MsgId msg) noexcept {
    unsigned kept = 0, dropped = 0;
    Entry tmp[kMaxDelay + 1];
    while (count_ > 0) {
      if (front().msg == msg) {
        ++dropped;
      } else {
        tmp[kept++] = front();
      }
      pop();
    }
    head_ = 0;
    for (unsigned i = 0; i < kept; ++i) ring_[i] = tmp[i];
    count_ = static_cast<std::uint8_t>(kept);
    return dropped;
  }

 private:
  Entry ring_[kMaxDelay + 1];
  std::uint8_t head_ = 0;
  std::uint8_t count_ = 0;
};

/// One unidirectional physical channel (or injection channel). VC
/// storage lives in the Network's flat array; the Link carries topology
/// endpoints, arbitration state and the in-flight pipeline.
struct Link {
  NodeId src = topo::kInvalidNode;  // kInvalidNode for injection links
  NodeId dst = topo::kInvalidNode;
  ChannelId src_channel = 0;  // output-channel index at src (network links)

  InFlightQueue in_flight{};
  std::uint8_t rr_next = 0;          // round-robin VC arbitration pointer
  std::uint8_t active_vc_mask = 0;   // bit v set iff VC v has a tenant
  std::uint64_t flits_carried = 0;   // cumulative utilization counter
};

/// Ejection port: consumes one flit per cycle from the bound VC.
struct EjectPort {
  MsgId msg = kNoMsg;
  VcRef src{};
  bool busy() const noexcept { return msg != kNoMsg; }
};

}  // namespace wormsim::sim
