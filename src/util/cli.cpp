#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

namespace wormsim::util {

namespace {

bool looks_like_key(std::string_view s) {
  return s.size() > 2 && s.substr(0, 2) == "--";
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!looks_like_key(arg)) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      kv_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      continue;
    }
    // "--key value" when the next token is not itself a key; else a flag.
    if (i + 1 < argc && !looks_like_key(argv[i + 1])) {
      kv_.emplace(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      kv_.emplace(std::string(arg), "true");
    }
  }
}

bool ArgParser::has(std::string_view key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  used_[it->first] = true;
  return true;
}

std::optional<std::string> ArgParser::get(std::string_view key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  used_[it->first] = true;
  return it->second;
}

std::string ArgParser::get_string(std::string_view key,
                                  std::string_view def) const {
  if (auto v = get(key)) return *v;
  return std::string(def);
}

long long ArgParser::get_int(std::string_view key, long long def) const {
  const auto v = get(key);
  if (!v) return def;
  long long out = 0;
  const auto res = std::from_chars(v->data(), v->data() + v->size(), out);
  if (res.ec != std::errc{} || res.ptr != v->data() + v->size()) {
    throw std::invalid_argument("--" + std::string(key) +
                                " expects an integer, got '" + *v + "'");
  }
  return out;
}

unsigned long long ArgParser::get_uint(std::string_view key,
                                       unsigned long long def) const {
  const long long v = get_int(key, static_cast<long long>(def));
  if (v < 0) {
    throw std::invalid_argument("--" + std::string(key) +
                                " expects a non-negative integer");
  }
  return static_cast<unsigned long long>(v);
}

double ArgParser::get_double(std::string_view key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + std::string(key) +
                                " expects a number, got '" + *v + "'");
  }
}

bool ArgParser::get_bool(std::string_view key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("--" + std::string(key) +
                              " expects a boolean, got '" + *v + "'");
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (!used_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace wormsim::util
