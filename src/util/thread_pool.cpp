#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace wormsim::util {

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("WORMSIM_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<unsigned>(std::min<unsigned long>(v, 1024));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned count = resolve_jobs(workers);
  queues_.resize(count);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++in_flight_;
  }
  work_ready_.notify_one();
}

bool ThreadPool::take_task(std::size_t self, Task& out) {
  if (!queues_[self].empty()) {
    out = std::move(queues_[self].front());
    queues_[self].pop_front();
    return true;
  }
  // Steal from the back of a sibling's deque (classic work stealing:
  // owner takes the front, thieves take the opposite end).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(self + k) % queues_.size()];
    if (!victim.empty()) {
      out = std::move(victim.back());
      victim.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (take_task(self, task)) {
      lock.unlock();
      try {
        task();
      } catch (...) {
        lock.lock();
        if (!first_error_) first_error_ = std::current_exception();
        lock.unlock();
      }
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      if (--in_flight_ == 0) all_done_.notify_all();
      continue;
    }
    // Even when stopping, drain every queued task first (graceful
    // shutdown); exit only once nothing is left to run.
    if (stopping_) return;
    work_ready_.wait(lock);
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& body) {
  const unsigned resolved = ThreadPool::resolve_jobs(jobs);
  if (resolved <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(resolved, n)));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &body] { body(i); });
  }
  pool.wait();
}

}  // namespace wormsim::util
