#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace wormsim::util {

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("WORMSIM_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<unsigned>(std::min<unsigned long>(v, 1024));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned count = resolve_jobs(workers);
  queues_.resize(count);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++in_flight_;
  }
  work_ready_.notify_one();
}

bool ThreadPool::take_task(std::size_t self, Task& out) {
  if (!queues_[self].empty()) {
    out = std::move(queues_[self].front());
    queues_[self].pop_front();
    return true;
  }
  // Steal from the back of a sibling's deque (classic work stealing:
  // owner takes the front, thieves take the opposite end).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(self + k) % queues_.size()];
    if (!victim.empty()) {
      out = std::move(victim.back());
      victim.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (take_task(self, task)) {
      lock.unlock();
      try {
        task();
      } catch (...) {
        lock.lock();
        if (!first_error_) first_error_ = std::current_exception();
        lock.unlock();
      }
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      if (--in_flight_ == 0) all_done_.notify_all();
      continue;
    }
    // Even when stopping, drain every queued task first (graceful
    // shutdown); exit only once nothing is left to run.
    if (stopping_) return;
    work_ready_.wait(lock);
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

// --- ShardCrew ---------------------------------------------------------

namespace {
// One crew per thread may be mid-run at a time; the flag catches both
// self-nesting and cross-crew nesting from inside a shard body.
thread_local bool tls_in_shard_body = false;
}  // namespace

ShardCrew::ShardCrew(unsigned shards)
    : errors_(shards == 0 ? 1 : shards), shards_(shards == 0 ? 1 : shards) {
  workers_.reserve(shards_ - 1);
  for (unsigned s = 1; s < shards_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardCrew::~ShardCrew() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardCrew::run_shard(unsigned shard) {
  tls_in_shard_body = true;
  try {
    (*body_)(shard);
  } catch (...) {
    errors_[shard] = std::current_exception();
  }
  tls_in_shard_body = false;
}

void ShardCrew::worker_loop(unsigned shard) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    start_.wait(lock,
                [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    lock.unlock();
    run_shard(shard);
    lock.lock();
    if (--remaining_ == 0) done_.notify_all();
  }
}

void ShardCrew::run(const Body& body) {
  if (tls_in_shard_body) {
    throw std::logic_error(
        "ShardCrew::run called from inside a shard body (nested "
        "fork/join regions are not supported)");
  }
  if (shards_ == 1) {
    // No workers, no barrier: plain inline call, exceptions propagate
    // naturally.
    tls_in_shard_body = true;
    try {
      body(0);
    } catch (...) {
      tls_in_shard_body = false;
      throw;
    }
    tls_in_shard_body = false;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    remaining_ = shards_;
    ++generation_;
  }
  start_.notify_all();
  run_shard(0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (--remaining_ > 0) {
      done_.wait(lock, [this] { return remaining_ == 0; });
    }
    body_ = nullptr;
  }
  // Join barrier passed: every shard's writes (including error slots)
  // are visible. Report the lowest shard's failure for determinism.
  for (unsigned s = 0; s < shards_; ++s) {
    if (errors_[s]) {
      std::exception_ptr err = errors_[s];
      for (unsigned k = s; k < shards_; ++k) errors_[k] = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& body) {
  const unsigned resolved = ThreadPool::resolve_jobs(jobs);
  if (resolved <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(resolved, n)));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &body] { body(i); });
  }
  pool.wait();
}

}  // namespace wormsim::util
