// Fixed-capacity inline vector used on the simulator's hot paths
// (routing candidate lists, free-VC lists). No heap allocation, no
// exceptions on the fast path; exceeding capacity is a programming error
// checked by assert.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>

namespace wormsim::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is intended for POD-ish hot-path data");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  void push_back(const T& v) noexcept {
    assert(size_ < N && "SmallVector capacity exceeded");
    data_[size_++] = v;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) noexcept {
    assert(size_ < N && "SmallVector capacity exceeded");
    data_[size_++] = T{static_cast<Args&&>(args)...};
  }

  void clear() noexcept { size_ = 0; }
  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }

  std::size_t size() const noexcept { return size_; }
  static constexpr std::size_t capacity() noexcept { return N; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == N; }

  T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }

  T& back() noexcept { return (*this)[size_ - 1]; }
  const T& back() const noexcept { return (*this)[size_ - 1]; }
  T& front() noexcept { return (*this)[0]; }
  const T& front() const noexcept { return (*this)[0]; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

 private:
  T data_[N];
  std::size_t size_ = 0;
};

}  // namespace wormsim::util
