#include "util/csv.hpp"

#include <charconv>
#include <cmath>

namespace wormsim::util {

std::string CsvWriter::escape(std::string_view value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::format(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 10);
  return std::string(buf, res.ptr);
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << cells[i];
  }
  *out_ << '\n';
  ++rows_;
}

}  // namespace wormsim::util
